// Vulnerability window walkthrough — the paper's full story on one CVE:
//
//  1. A vulnerable engine (CVE-2019-17026 unpatched) runs the public
//     exploit: the payload executes (control-flow hijack).
//  2. The maintainer fingerprints the demonstrator code (JIT DNA).
//  3. Users install the fingerprint; JITBULL disables the matched passes
//     per function, and a *variant* of the exploit (renamed by a
//     Terser-like mangler) is neutralized while the engine keeps JITing.
//  4. The patch ships: the fingerprint is removed, overhead returns to 0.
package main

import (
	"fmt"
	"log"

	"github.com/jitbull/jitbull"
)

func main() {
	vuln, err := jitbull.VulnerabilityByID("CVE-2019-17026")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s (%s, CVSS %.1f) ==\n", vuln.CVE, vuln.Engine, vuln.CVSS)
	fmt.Printf("window: %s -> %s (%d days)\n\n", vuln.Reported, vuln.Patched, vuln.Window())

	// Step 0: the vulnerability window opens — the engine has the bug.
	bugs := vuln.Bug()

	// Step 1: the public exploit against the unprotected vulnerable engine.
	fmt.Println("[1] running the public PoC on the unprotected vulnerable engine...")
	eng, err := jitbull.New(vuln.Demonstrator, jitbull.Config{Bugs: bugs})
	if err != nil {
		log.Fatal(err)
	}
	_, runErr := eng.Run()
	if jitbull.IsHijack(runErr) {
		fmt.Printf("    PAYLOAD EXECUTED: %v\n\n", runErr)
	} else {
		log.Fatalf("expected the exploit to fire, got %v", runErr)
	}

	// Step 2: the maintainer fingerprints the demonstrator code.
	fmt.Println("[2] extracting the demonstrator's JIT DNA (maintainer side)...")
	vdc, err := jitbull.Fingerprint(vuln.CVE, vuln.Demonstrator, bugs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    fingerprinted %d JITed function(s)\n\n", len(vdc.DNAs))

	// Step 3: users install the fingerprint; an attacker ships a variant.
	fmt.Println("[3] attacker ships a renamed/mangled variant; engine is protected...")
	variant, err := jitbull.RenameVariant(vuln.Demonstrator)
	if err != nil {
		log.Fatal(err)
	}
	db := &jitbull.Database{}
	db.Add(vdc)
	protected, err := jitbull.New(variant, jitbull.Config{Bugs: bugs})
	if err != nil {
		log.Fatal(err)
	}
	det := jitbull.Protect(protected, db)
	_, runErr = protected.Run()
	if jitbull.IsHijack(runErr) || jitbull.IsCrash(runErr) {
		log.Fatalf("JITBULL missed the variant: %v", runErr)
	}
	fmt.Println("    variant NEUTRALIZED; matched optimization passes:")
	seen := map[string]bool{}
	for _, m := range det.Matches {
		if !seen[m.Pass] {
			seen[m.Pass] = true
			fmt.Printf("      - %s (similar to %s's function %s)\n", m.Pass, m.CVE, m.VDCFunc)
		}
	}
	fmt.Printf("    engine stats: %d JITed, %d with passes disabled, %d forced to interpreter\n\n",
		protected.Stats().NrJIT, protected.Stats().NrDisJIT, protected.Stats().NrNoJIT)

	// Step 4: patch day — remove the fingerprint.
	fmt.Println("[4] patch applied: fingerprint removed; JITBULL cost back to zero.")
	db.Remove(vuln.CVE)
	fmt.Printf("    database size: %d\n", db.Size())
}

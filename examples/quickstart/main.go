// Quickstart: run a nanojs script on the tiered engine and watch a hot
// function get JIT-compiled, then protect the engine with an (empty)
// JITBULL database — which, per the paper's §V, costs nothing until a
// vulnerability fingerprint is installed.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/jitbull/jitbull"
)

const script = `
function dot(a, b, n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = s + a[i] * b[i];
  }
  return s;
}

var xs = new Array(64);
var ys = new Array(64);
for (var i = 0; i < 64; i++) {
  xs[i] = i * 0.5;
  ys[i] = 64 - i;
}

var result = 0;
for (var round = 0; round < 2000; round++) {
  result = dot(xs, ys, 64);
}
print("dot product:", result);
`

func main() {
	eng, err := jitbull.New(script, jitbull.Config{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	// Install JITBULL with an empty database: Active() is false, so the
	// engine takes no IR snapshots at all — zero overhead.
	db := &jitbull.Database{}
	jitbull.Protect(eng, db)

	if _, err := eng.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nengine stats: %+v\n", eng.Stats())
	fmt.Println("`dot` was Ion-compiled after 1500 calls (the paper's §II threshold)")
	fmt.Println("optimization pipeline:", len(jitbull.PassNames()), "passes")
}

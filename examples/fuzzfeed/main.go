// Fuzzer feed — the paper's §IV-A observation that "VDCs do not need to
// originate from human experts; one way to use JITBULL is to feed the
// output of JIT fuzzers directly to its database".
//
// This example plays a miniature JIT fuzzer: it mutates a seed script's
// numeric parameters, runs each mutant on the vulnerable engine, and the
// moment a mutant *crashes* the engine it is fingerprinted straight into
// the JITBULL database. A later, unrelated exploit of the same bug is then
// neutralized — no human analysis in the loop.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/jitbull/jitbull"
)

// seed is a plausible fuzzer corpus entry: two arrays, index arithmetic.
// The %IDX% hole is where the fuzzer plugs mutated indexes.
const seed = `
function probe(a, b, idx) {
  var t = b[idx + 1] + b[idx + 2];
  var u = a[idx] + a[idx + 3];
  var s = a[idx] + a[idx + 3];
  return t + u - s;
}
var big = new Array(30000);
var small = new Array(8);
var acc = 0;
for (var i = 0; i < 2000; i++) { acc += probe(small, big, 3); }
acc += probe(small, big, %IDX%);
`

func mutant(idx int) string {
	return strings.Replace(seed, "%IDX%", fmt.Sprint(idx), 1)
}

func main() {
	// The engine is inside the CVE-2019-9810 vulnerability window.
	vuln, err := jitbull.VulnerabilityByID("CVE-2019-9810")
	if err != nil {
		log.Fatal(err)
	}
	bugs := vuln.Bug()

	db := &jitbull.Database{}
	fmt.Println("fuzzing (mutating the probe index)...")
	crashes := 0
	for round, idx := range []int{1, 2, 4, 3000, 25000} {
		eng, err := jitbull.New(mutant(idx), jitbull.Config{Bugs: bugs})
		if err != nil {
			log.Fatal(err)
		}
		_, runErr := eng.Run()
		status := "ok"
		if jitbull.IsCrash(runErr) {
			status = "CRASH — fingerprinting into the DB"
			crashes++
			vdc, ferr := jitbull.Fingerprint(fmt.Sprintf("FUZZ-%04d", round), mutant(idx), bugs, 0)
			if ferr != nil {
				log.Fatal(ferr)
			}
			db.Add(vdc)
		}
		fmt.Printf("  mutant idx=%-6d -> %s\n", idx, status)
	}
	if crashes == 0 {
		log.Fatal("fuzzer found no crash; expected at least one")
	}
	fmt.Printf("\ndatabase now holds %d fuzzer-produced fingerprint(s)\n\n", db.Size())

	// A human-written exploit for the same root bug arrives later…
	fmt.Println("running the real CVE-2019-9810 exploit against the protected engine...")
	protected, err := jitbull.New(vuln.Demonstrator, jitbull.Config{Bugs: bugs})
	if err != nil {
		log.Fatal(err)
	}
	det := jitbull.Protect(protected, db)
	_, runErr := protected.Run()
	if jitbull.IsCrash(runErr) || jitbull.IsHijack(runErr) {
		log.Fatalf("exploit got through: %v", runErr)
	}
	fmt.Println("  exploit NEUTRALIZED by the fuzzer-sourced fingerprint")
	passSet := map[string]bool{}
	for _, m := range det.Matches {
		passSet[m.Pass] = true
	}
	for p := range passSet {
		fmt.Printf("  matched pass: %s\n", p)
	}

	// Control: without protection the same exploit crashes the engine.
	unprotected, err := jitbull.New(vuln.Demonstrator, jitbull.Config{Bugs: bugs})
	if err != nil {
		log.Fatal(err)
	}
	if _, runErr := unprotected.Run(); !jitbull.IsCrash(runErr) {
		log.Fatalf("control run should crash, got %v", runErr)
	}
	fmt.Println("  (control: the same exploit crashes an unprotected engine)")
}

package jitbull

// Full-corpus golden-equivalence suite: the interned, index-backed
// core.Detector must produce exactly the go/no-go decision sequence of
// core.ReferenceDetector (the retained pre-optimization implementation) on
// whole engine runs — the benign Octane corpus, every vulnerability
// demonstrator, and a generated program sweep.

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/experiments"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/progen"
	"github.com/jitbull/jitbull/internal/vulndb"
)

// decisionLog wraps a policy and records every CompileDecision it returns
// to the engine.
type decisionLog struct {
	inner     engine.Policy
	decisions []engine.CompileDecision
}

func (d *decisionLog) Active() bool { return d.inner.Active() }

func (d *decisionLog) BeginCompile(fn string) (passes.Observer, func() engine.CompileDecision) {
	obs, finish := d.inner.BeginCompile(fn)
	return obs, func() engine.CompileDecision {
		dec := finish()
		d.decisions = append(d.decisions, dec)
		return dec
	}
}

// runLogged executes src with the given policy installed and returns the
// decision sequence, final stats, and the run error (if any).
func runLogged(t *testing.T, src string, cfg engine.Config, p engine.Policy) ([]engine.CompileDecision, engine.Stats, error) {
	t.Helper()
	e, err := engine.New(src, cfg)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	log := &decisionLog{inner: p}
	e.SetPolicy(log)
	_, runErr := e.Run()
	return log.decisions, e.Stats(), runErr
}

// checkRunEquivalence runs one program under both detectors and asserts
// identical decision sequences, stats, and run outcome. Decisions drive
// engine behavior (pass disabling, recompilation, tier choice), so
// matching stats confirm the whole runs stayed in lockstep.
func checkRunEquivalence(t *testing.T, name, src string, cfg engine.Config, db *core.Database) {
	t.Helper()
	fastDec, fastStats, fastErr := runLogged(t, src, cfg, core.NewDetector(db))
	refDec, refStats, refErr := runLogged(t, src, cfg, core.NewReferenceDetector(db))
	if !reflect.DeepEqual(fastDec, refDec) {
		t.Errorf("%s: decision sequences diverged\nfast %+v\nref  %+v", name, fastDec, refDec)
	}
	if fastStats != refStats {
		t.Errorf("%s: stats diverged\nfast %+v\nref  %+v", name, fastStats, refStats)
	}
	if (fastErr == nil) != (refErr == nil) || (fastErr != nil && fastErr.Error() != refErr.Error()) {
		t.Errorf("%s: run errors diverged: %v vs %v", name, fastErr, refErr)
	}
	if len(fastDec) == 0 {
		t.Errorf("%s: no Ion compilations observed; equivalence check is vacuous", name)
	}
}

func TestDecisionEquivalenceOctane(t *testing.T) {
	for _, n := range []int{1, 4} {
		db, bugs, err := experiments.BuildDB(n, 100)
		if err != nil {
			t.Fatal(err)
		}
		cfg := engine.Config{IonThreshold: 100, Bugs: bugs}
		for _, b := range octane.All() {
			checkRunEquivalence(t, fmt.Sprintf("%s/#%d", b.Name, n), b.Source(1), cfg, db)
		}
	}
}

func TestDecisionEquivalenceVulnDemonstrators(t *testing.T) {
	db, bugs, err := experiments.BuildDB(4, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vulndb.All() {
		// Run each demonstrator in its own vulnerability window (its bug
		// active) plus the shared 4-VDC window, against the 4-VDC database.
		for _, tc := range []struct {
			tag  string
			bugs passes.BugSet
		}{{"own-bug", v.Bug()}, {"window-bugs", bugs}} {
			cfg := engine.Config{IonThreshold: 300, Bugs: tc.bugs}
			checkRunEquivalence(t, v.CVE+"/"+tc.tag, v.Demonstrator, cfg, db)
		}
	}
}

func TestDecisionEquivalenceGenerated(t *testing.T) {
	db, bugs, err := experiments.BuildDB(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{IonThreshold: 100, Bugs: bugs}
	for seed := int64(1); seed <= 20; seed++ {
		src := progen.Generate(seed, progen.Options{Funcs: 4, MaxStmts: 8, Train: 150})
		checkRunEquivalence(t, fmt.Sprintf("progen-%d", seed), src, cfg, db)
	}
}

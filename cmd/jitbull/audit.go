package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/jitbull/jitbull"
)

// cmdAudit reads a JSONL audit log (written with `jitbull run -audit`),
// filters it, and prints the matching events plus a per-verdict summary.
func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	verdict := fs.String("verdict", "", "only events with this verdict (go, disable-pass, nojit, compile-error, quarantine, requalify, permanent)")
	fnName := fs.String("func", "", "only events for this function")
	cve := fs.String("cve", "", "only events with a match attributed to this CVE")
	asJSON := fs.Bool("json", false, "print matching events as JSON lines instead of the report form")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("audit: exactly one audit JSONL file expected")
	}
	events, err := jitbull.ReadAuditFile(fs.Arg(0))
	if err != nil {
		return err
	}

	matches := func(ev jitbull.AuditEvent) bool {
		if *verdict != "" && ev.Verdict != jitbull.Verdict(*verdict) {
			return false
		}
		if *fnName != "" && ev.Func != *fnName {
			return false
		}
		if *cve != "" {
			found := false
			for _, m := range ev.Matches {
				if m.CVE == *cve {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}

	shown := 0
	byVerdict := map[jitbull.Verdict]int{}
	enc := json.NewEncoder(os.Stdout)
	for _, ev := range events {
		if !matches(ev) {
			continue
		}
		shown++
		byVerdict[ev.Verdict]++
		if *asJSON {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		} else {
			fmt.Println(ev)
		}
	}
	if !*asJSON {
		parts := make([]string, 0, len(byVerdict))
		for v, n := range byVerdict {
			parts = append(parts, fmt.Sprintf("%s=%d", v, n))
		}
		sort.Strings(parts)
		fmt.Fprintf(os.Stderr, "audit: %d/%d event(s) shown", shown, len(events))
		if len(parts) > 0 {
			fmt.Fprintf(os.Stderr, " (%s)", strings.Join(parts, " "))
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}

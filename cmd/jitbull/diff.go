package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/jitbull/jitbull/internal/difftest"
	"github.com/jitbull/jitbull/internal/progen"
)

// cmdDiff runs the differential-execution oracle: one script (or a range of
// generated programs) under the full configuration matrix, reporting any
// divergence from the interpreter and optionally shrinking the offending
// program to a minimal reproducer.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	seed := fs.Int64("seed", -1, "run the generated program with this seed")
	seeds := fs.Int("seeds", 0, "sweep generated seeds 0..N-1")
	bugsFlag := fs.String("bugs", "", "comma-separated CVE ids of injected bugs to activate in the JIT cells")
	shrink := fs.Bool("shrink", false, "minimize a diverging program before printing it")
	withJitbull := fs.Bool("jitbull", false, "add a JITBULL-protected cell (builds a VDC database first; slow)")
	variants := fs.Bool("variants", true, "add renamed and minified source-transform cells")
	checkIR := fs.Bool("checkir", true, "add a cell that runs the SSA verifier after every pass")
	if err := fs.Parse(args); err != nil {
		return err
	}
	configs := difftest.Matrix(difftest.Options{
		Bugs:     parseBugs(*bugsFlag),
		JITBULL:  *withJitbull,
		Variants: *variants,
		CheckIR:  *checkIR,
	})

	type prog struct {
		label string
		src   string
	}
	var progs []prog
	switch {
	case fs.NArg() == 1:
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		progs = append(progs, prog{fs.Arg(0), string(src)})
	case fs.NArg() != 0:
		return fmt.Errorf("diff: at most one script expected")
	case *seed >= 0:
		progs = append(progs, prog{fmt.Sprintf("seed %d", *seed), progen.Generate(*seed, progen.Options{})})
	case *seeds > 0:
		for s := int64(0); s < int64(*seeds); s++ {
			progs = append(progs, prog{fmt.Sprintf("seed %d", s), progen.Generate(s, progen.Options{})})
		}
	default:
		return fmt.Errorf("diff: need a script, -seed, or -seeds")
	}
	fmt.Printf("matrix: %d configurations, reference %s\n", len(configs), configs[0].Name)

	diverged := 0
	for _, p := range progs {
		_, divs := difftest.Diff(p.src, configs)
		if len(divs) == 0 {
			fmt.Printf("%s: ok\n", p.label)
			continue
		}
		diverged++
		fmt.Print(difftest.Report(p.label, divs))
		src := p.src
		if *shrink {
			min, minDivs := difftest.ShrinkDivergence(src, configs)
			fmt.Printf("shrunk %d -> %d statements\n", difftest.StatementCount(src), difftest.StatementCount(min))
			fmt.Print(difftest.Report(p.label+" (shrunk)", minDivs))
			src = min
		}
		fmt.Printf("program:\n%s\n", src)
	}
	if diverged > 0 {
		return fmt.Errorf("%d of %d programs diverged", diverged, len(progs))
	}
	fmt.Printf("%d program(s), no divergences\n", len(progs))
	return nil
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/jitbull/jitbull/internal/difftest"
)

// cmdChaos runs the randomized fault-injection campaign from the command
// line: N generated programs × randomized fault schedules, each checked
// for escaped panics, interpreter divergence, and 1:1 fault accounting.
// Failures are written as JSON reproducers (seed + plan + program).
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	runs := fs.Int("runs", 200, "number of randomized fault-schedule runs")
	seed := fs.Int64("seed", 1, "base seed (run i uses seed+i for program and schedule)")
	rules := fs.Int("rules", 3, "max fault rules per schedule")
	out := fs.String("out", "", "write failure reproducers (JSON) to this file")
	traceDir := fs.String("trace", "", "replay each failure with a tracer and write Chrome traces into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("chaos: unexpected arguments %v", fs.Args())
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("chaos: create trace dir: %w", err)
		}
	}
	res := difftest.Chaos(difftest.ChaosOptions{Seed: *seed, Runs: *runs, MaxRules: *rules, TraceDir: *traceDir})
	fmt.Printf("chaos: %s\n", res.Summary())
	for i, f := range res.Failures {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Failures)-i)
			break
		}
		fmt.Printf("  %s\n", f)
	}
	if *out != "" && len(res.Failures) > 0 {
		data, err := json.MarshalIndent(res.Failures, "", "  ")
		if err != nil {
			return fmt.Errorf("chaos: marshal reproducers: %w", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return fmt.Errorf("chaos: write reproducers: %w", err)
		}
		fmt.Printf("chaos: wrote %d reproducer(s) to %s\n", len(res.Failures), *out)
	}
	if !res.OK() {
		return fmt.Errorf("chaos: %d run(s) violated an invariant", len(res.Failures))
	}
	return nil
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/jitbull/jitbull/internal/difftest"
	"github.com/jitbull/jitbull/internal/faults"
)

// cmdChaos runs the randomized fault-injection campaign from the command
// line: N generated programs × randomized fault schedules, each checked
// for escaped panics, interpreter divergence, and 1:1 fault accounting.
// Failures are written as JSON reproducers (seed + plan + program);
// -replay re-executes a reproducer file deterministically. -osr arms the
// tier-transition machinery (OSR + speculation, hot-loop corpus), which
// -points osr,deopt campaigns and their reproducers require to reach the
// transitions at all.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	runs := fs.Int("runs", 200, "number of randomized fault-schedule runs")
	seed := fs.Int64("seed", 1, "base seed (run i uses seed+i for program and schedule)")
	rules := fs.Int("rules", 3, "max fault rules per schedule")
	out := fs.String("out", "", "write failure reproducers (JSON) to this file")
	traceDir := fs.String("trace", "", "replay each failure with a tracer and write Chrome traces into this directory")
	pointsFlag := fs.String("points", "", "comma-separated injection points to restrict schedules to (e.g. osr,deopt)")
	osr := fs.Bool("osr", false, "arm OSR + speculation and generate the hot-loop corpus (required for the osr/deopt points)")
	replayPath := fs.String("replay", "", "re-execute the reproducers in this JSON file instead of running a campaign")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("chaos: unexpected arguments %v", fs.Args())
	}
	points, err := parsePoints(*pointsFlag)
	if err != nil {
		return err
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("chaos: create trace dir: %w", err)
		}
	}
	o := difftest.ChaosOptions{
		Seed: *seed, Runs: *runs, MaxRules: *rules, TraceDir: *traceDir,
		Points: points, OSR: *osr, Speculate: *osr, HotLoops: *osr,
	}
	if *replayPath != "" {
		return chaosReplay(*replayPath, o)
	}
	res := difftest.Chaos(o)
	fmt.Printf("chaos: %s\n", res.Summary())
	for i, f := range res.Failures {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Failures)-i)
			break
		}
		fmt.Printf("  %s\n", f)
	}
	if *out != "" && len(res.Failures) > 0 {
		data, err := json.MarshalIndent(res.Failures, "", "  ")
		if err != nil {
			return fmt.Errorf("chaos: marshal reproducers: %w", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return fmt.Errorf("chaos: write reproducers: %w", err)
		}
		fmt.Printf("chaos: wrote %d reproducer(s) to %s\n", len(res.Failures), *out)
	}
	if !res.OK() {
		return fmt.Errorf("chaos: %d run(s) violated an invariant", len(res.Failures))
	}
	return nil
}

// chaosReplay re-executes every reproducer in path under the campaign
// options — chaos runs are deterministic, so each either reproduces or the
// engine no longer exhibits it.
func chaosReplay(path string, o difftest.ChaosOptions) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: read reproducers: %w", err)
	}
	var failures []difftest.ChaosFailure
	if err := json.Unmarshal(data, &failures); err != nil {
		return fmt.Errorf("chaos: parse reproducers: %w", err)
	}
	reproduced := 0
	for i, f := range failures {
		fired, fail := difftest.Replay(f, o)
		switch {
		case fail != nil:
			reproduced++
			fmt.Printf("reproducer %d (seed %d): REPRODUCED (%d fault(s) fired)\n  %s\n", i, f.RunSeed, fired, fail)
		default:
			fmt.Printf("reproducer %d (seed %d): no longer reproduces (%d fault(s) fired)\n", i, f.RunSeed, fired)
		}
	}
	fmt.Printf("chaos: %d/%d reproducer(s) reproduced\n", reproduced, len(failures))
	if reproduced > 0 {
		return fmt.Errorf("chaos: %d reproducer(s) still failing", reproduced)
	}
	return nil
}

// parsePoints resolves a comma-separated -points list against the
// registered injection points.
func parsePoints(list string) ([]faults.Point, error) {
	if list == "" {
		return nil, nil
	}
	known := faults.KnownPoints()
	var out []faults.Point
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p := faults.Point(s)
		ok := false
		for _, k := range known {
			if p == k {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("chaos: unknown point %q (known: %v)", s, known)
		}
		out = append(out, p)
	}
	return out, nil
}

// Command jitbull runs nanojs scripts on the simulated tiered engine, with
// optional injected vulnerabilities (a simulated vulnerability window) and
// optional JITBULL protection from a VDC DNA database.
//
// Examples:
//
//	jitbull run script.js
//	jitbull run -bugs CVE-2019-17026 exploit.js          # vulnerable engine
//	jitbull fingerprint -cve CVE-2019-17026 -db db.json poc.js
//	jitbull run -bugs CVE-2019-17026 -db db.json exploit.js  # protected
//	jitbull vulns                                        # list built-in CVEs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/jitbull/jitbull"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jitbull:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "fingerprint":
		return cmdFingerprint(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	case "chaos":
		return cmdChaos(args[1:])
	case "audit":
		return cmdAudit(args[1:])
	case "dna":
		return cmdDNA(args[1:])
	case "store":
		return cmdStore(args[1:])
	case "journey":
		return cmdJourney(args[1:])
	case "vulns":
		return cmdVulns()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  jitbull run [-nojit] [-nofuse] [-nomc] [-osr] [-speculate] [-threshold N] [-bugs CVE,...]
              [-db file] [-stats] [-async [-jit-workers N]] [-cache] [-store dir]
              [-trace file] [-audit file] [-metrics] [-metrics-addr addr]
              [-journey file] [-flight dir] [-watchdog]
              [-octane name [-scale N]] [script.js]
  jitbull journey [-fn name] [-json] journey.json
  jitbull journey [-fn name] [-json] [-threshold N] [-osr] [-speculate] [-async]
                  (-octane name [-scale N] | script.js)
  jitbull fingerprint -cve CVE-... [-bugs CVE,...] [-threshold N] -db file script.js
  jitbull diff [-seed N | -seeds N] [-bugs CVE,...] [-shrink] [-jitbull] script.js
  jitbull chaos [-runs N] [-seed N] [-rules N] [-points p,...] [-osr]
                [-out reproducers.json] [-replay reproducers.json] [-trace dir]
  jitbull audit [-verdict v] [-func name] [-cve CVE] [-json] audit.jsonl
  jitbull dna verify db.json
  jitbull store verify [-quarantine] dir
  jitbull store chaos [-runs N] [-seed N] [-out reproducers.json] [-dir scratch]
  jitbull vulns`)
}

// benchByName resolves a -octane name case-insensitively.
func benchByName(name string) (jitbull.Benchmark, error) {
	for _, b := range jitbull.Benchmarks() {
		if strings.EqualFold(b.Name, name) {
			return b, nil
		}
	}
	return jitbull.BenchmarkByName(name) // exact lookup's error text lists nothing extra
}

func parseBugs(list string) jitbull.BugSet {
	bugs := jitbull.BugSet{}
	for _, c := range strings.Split(list, ",") {
		if c = strings.TrimSpace(c); c != "" {
			bugs[c] = true
		}
	}
	return bugs
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	noJIT := fs.Bool("nojit", false, "disable the JIT (interpreter only)")
	noFuse := fs.Bool("nofuse", false, "disable superinstruction fusion: Ion runs on the unfused per-op native tier")
	noMC := fs.Bool("nomc", false, "disable the machine-code tier: Ion stays on the threaded dispatch tiers (default off on supported amd64 hosts)")
	threshold := fs.Int("threshold", 0, "Ion compilation threshold (default 1500)")
	bugsFlag := fs.String("bugs", "", "comma-separated CVE ids of injected bugs to activate")
	dbPath := fs.String("db", "", "VDC DNA database to protect with")
	stats := fs.Bool("stats", false, "print engine statistics after the run")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the compile path to this file")
	auditPath := fs.String("audit", "", "stream the policy-decision audit log (JSONL) to this file ('-' for stderr)")
	metrics := fs.Bool("metrics", false, "print the metrics registry (JSON) to stderr after the run")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /audit.json and /debug/pprof on this address during the run")
	octaneName := fs.String("octane", "", "run a built-in benchmark instead of a script file")
	scale := fs.Int("scale", 1, "outer-loop scale for -octane")
	osr := fs.Bool("osr", false, "enable loop-header on-stack replacement: hot loops tier up mid-flight instead of at the next call boundary")
	speculate := fs.Bool("speculate", false, "enable type speculation: guarded fast paths that deoptimize back to the interpreter when an assumption breaks")
	async := fs.Bool("async", false, "compile off-thread: keep executing in the baseline tier while Ion runs on a background worker")
	jitWorkers := fs.Int("jit-workers", 0, "background compile workers for -async (0 = GOMAXPROCS)")
	cacheFlag := fs.Bool("cache", false, "enable the shared compilation cache (artifact + JITBULL verdict, keyed by canonical bytecode hash)")
	storeDir := fs.String("store", "", "persist the compilation cache in this directory (implies -cache): artifacts and verdicts survive restarts")
	journeyPath := fs.String("journey", "", "record tier-journey waypoints; write them as JSON to this file after the run ('-' renders ASCII timelines to stderr)")
	flightDir := fs.String("flight", "", "arm the tail-sampling flight recorder: anomalous episodes (p99 compile outliers, faults, watchdog anomalies) are dumped as Chrome traces into this directory")
	watchdogFlag := fs.Bool("watchdog", false, "arm the anomaly watchdog (deopt storms, quarantine spikes, cache-miss regressions, verdict-rate shifts, perf divergence)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var src string
	switch {
	case *octaneName != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("run: -octane and a script file are mutually exclusive")
		}
		b, err := benchByName(*octaneName)
		if err != nil {
			return err
		}
		src = b.Source(*scale)
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("run: exactly one script (or -octane name) expected")
	}

	cfg := jitbull.Config{
		DisableJIT:   *noJIT,
		NoFuse:       *noFuse,
		NoMC:         *noMC,
		IonThreshold: *threshold,
		OSR:          *osr,
		Speculate:    *speculate,
		Bugs:         parseBugs(*bugsFlag),
		Out:          os.Stdout,
	}
	// The queue/cache metrics live in a shared registry so -stats can
	// report them after the run.
	var jitReg *jitbull.Registry
	if *async || *cacheFlag || *storeDir != "" || *watchdogFlag {
		jitReg = jitbull.NewRegistry()
		cfg.Metrics = jitReg
	}
	if *async {
		queue := jitbull.NewQueue(*jitWorkers, 0, jitReg)
		defer queue.Close()
		cfg.Queue = queue
	}
	var codeCache *jitbull.CodeCache
	if *cacheFlag || *storeDir != "" {
		codeCache = jitbull.NewCodeCache(jitReg)
		cfg.Cache = codeCache
	}
	var ring *jitbull.Ring
	var flight *jitbull.FlightRecorder
	var sinks jitbull.MultiSink
	if *tracePath != "" {
		ring = jitbull.NewRing(0)
		sinks = append(sinks, ring)
	}
	if *flightDir != "" {
		flight = jitbull.NewFlightRecorder(*flightDir, jitbull.FlightOptions{})
		sinks = append(sinks, flight)
	}
	switch len(sinks) {
	case 0:
	case 1:
		cfg.Tracer = jitbull.NewTracer(sinks[0])
	default:
		cfg.Tracer = jitbull.NewTracer(sinks)
	}
	var journal *jitbull.Journal
	if *journeyPath != "" {
		journal = jitbull.NewJournal(0)
		cfg.Journal = journal
	}
	var auditFile *os.File
	if *auditPath != "" {
		w := os.Stderr
		if *auditPath != "-" {
			f, err := os.Create(*auditPath)
			if err != nil {
				return err
			}
			auditFile = f
			w = f
		}
		cfg.Audit = jitbull.NewAuditLog(w)
	}
	var wdog *jitbull.Watchdog
	if *watchdogFlag {
		if cfg.Audit == nil {
			// Anomaly audit events should land beside the engine's policy
			// verdicts (and be served at /audit.json) even without -audit.
			cfg.Audit = jitbull.NewAuditLog(nil)
		}
		wdog = jitbull.NewWatchdog(jitbull.WatchdogOptions{
			Audit:   cfg.Audit,
			Flight:  flight,
			Metrics: jitReg,
		})
		cfg.Watchdog = wdog
	}
	eng, err := jitbull.New(src, cfg)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		srv, addr, err := jitbull.StartOpsServer(*metricsAddr, jitbull.OpsState{
			Reg:      eng.MetricsSink(),
			Audit:    eng.Audit(),
			Watchdog: wdog,
			Journal:  journal,
			Flight:   flight,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "jitbull: ops server on http://%s/ (/metrics, /metrics.prom, /healthz, /audit.json, /journey.json, /flight.json, /debug/pprof/)\n", addr)
		defer srv.Close()
	}
	var det *jitbull.Detector
	if *dbPath != "" {
		db, err := jitbull.LoadDatabaseFailSafe(*dbPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jitbull: DNA database unusable (%v)\njitbull: failing safe: JIT disabled for every function\n", err)
		}
		det = jitbull.Protect(eng, db)
	}
	if *storeDir != "" {
		st, err := jitbull.OpenStoreWith(*storeDir, jitbull.StoreOptions{
			Metrics:  eng.MetricsSink(),
			Audit:    eng.Audit(),
			Watchdog: wdog,
			Tracer:   cfg.Tracer,
		})
		if err != nil {
			return err
		}
		jitbull.AttachStore(codeCache, st, jitbull.NewCacheCodec(det))
	}
	_, runErr := eng.Run()
	switch {
	case jitbull.IsHijack(runErr):
		fmt.Fprintf(os.Stderr, "!! PAYLOAD EXECUTED: %v\n", runErr)
	case jitbull.IsCrash(runErr):
		fmt.Fprintf(os.Stderr, "!! ENGINE CRASH: %v\n", runErr)
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "script error: %v\n", runErr)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "stats: %+v\n", eng.Stats())
		sink := eng.MetricsSink()
		fmt.Fprintf(os.Stderr, "native tier: fused_ops=%d fuse_supers=%d block_budget_checks=%d\n",
			sink.Counter("native.fused_ops").Value(),
			sink.Counter("native.fuse_supers").Value(),
			sink.Counter("native.block_budget_checks").Value())
		fmt.Fprintf(os.Stderr, "top-tier attribution: mc=%d fused=%d switch=%d (functions by installed executor)\n",
			sink.Counter("native.tier.mc").Value(),
			sink.Counter("native.tier.fused").Value(),
			sink.Counter("native.tier.switch").Value())
		if jitReg != nil {
			fmt.Fprintf(os.Stderr, "jit queue/cache: cache.hits=%d cache.misses=%d jit.queue_depth_hwm=%d jit.queue_enqueued=%d\n",
				jitReg.Counter("cache.hits").Value(), jitReg.Counter("cache.misses").Value(),
				jitReg.Gauge("jit.queue_depth_hwm").Value(), jitReg.Counter("jit.queue_enqueued").Value())
		}
		if *storeDir != "" {
			fmt.Fprintf(os.Stderr, "store: hits=%d misses=%d puts=%d put_drops=%d quarantined=%d retries=%d faults_injected=%d tier_hits=%d\n",
				sink.Counter("store.hits").Value(), sink.Counter("store.misses").Value(),
				sink.Counter("store.puts").Value(), sink.Counter("store.put_drops").Value(),
				sink.Counter("store.quarantined").Value(), sink.Counter("store.retries").Value(),
				sink.Counter("store.faults_injected").Value(), sink.Counter("cache.tier_hits").Value())
		}
		if wdog != nil {
			fmt.Fprintln(os.Stderr, wdog.Summary())
		}
		if journal != nil {
			fmt.Fprintf(os.Stderr, "journey: %d event(s) across %d function(s)\n",
				journal.Total(), len(journal.Funcs()))
		}
		if det != nil && len(det.Matches) > 0 {
			fmt.Fprintf(os.Stderr, "jitbull matches:\n")
			for _, m := range det.Matches {
				attr := ""
				if chain := m.Chain(); chain != "" {
					attr = fmt.Sprintf(" via %s chain %s", m.Side, chain)
				}
				fmt.Fprintf(os.Stderr, "  %s (VDC fn %s) matched pass %s%s\n", m.CVE, m.VDCFunc, m.Pass, attr)
			}
		}
	}
	if *tracePath != "" {
		if err := jitbull.SaveChromeTrace(*tracePath, ring.Events()); err != nil {
			return fmt.Errorf("run: save trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "jitbull: wrote %d trace event(s) to %s (open in chrome://tracing)\n",
			ring.Len(), *tracePath)
	}
	if flight != nil {
		if err := flight.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "jitbull: flight recorder dump error: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "jitbull: flight recorder dumped %d episode(s) to %s\n",
			len(flight.Episodes()), *flightDir)
	}
	if *journeyPath != "" {
		if *journeyPath == "-" {
			fmt.Fprint(os.Stderr, journal.RenderAll())
		} else {
			f, err := os.Create(*journeyPath)
			if err != nil {
				return fmt.Errorf("run: save journey: %w", err)
			}
			werr := journal.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("run: save journey: %w", werr)
			}
			fmt.Fprintf(os.Stderr, "jitbull: wrote %d journey event(s) to %s (render with: jitbull journey %s)\n",
				journal.Total(), *journeyPath, *journeyPath)
		}
	}
	if *metrics {
		if err := eng.MetricsSink().WriteJSON(os.Stderr); err != nil {
			return fmt.Errorf("run: write metrics: %w", err)
		}
	}
	if auditFile != nil {
		if err := auditFile.Close(); err != nil {
			return fmt.Errorf("run: close audit log: %w", err)
		}
		if err := eng.Audit().WriteErr(); err != nil {
			return fmt.Errorf("run: audit log stream: %w", err)
		}
	}
	if runErr != nil && !jitbull.IsHijack(runErr) && !jitbull.IsCrash(runErr) {
		return nil // script-level errors already reported
	}
	return nil
}

func cmdFingerprint(args []string) error {
	fs := flag.NewFlagSet("fingerprint", flag.ContinueOnError)
	cve := fs.String("cve", "", "CVE identifier for the fingerprint")
	bugsFlag := fs.String("bugs", "", "injected bugs active during extraction (defaults to the CVE itself)")
	threshold := fs.Int("threshold", 0, "Ion compilation threshold")
	dbPath := fs.String("db", "", "database file to create or update")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cve == "" || *dbPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("fingerprint: need -cve, -db and one script")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bugs := parseBugs(*bugsFlag)
	if len(bugs) == 0 {
		bugs = jitbull.BugSet{*cve: true}
	}
	vdc, err := jitbull.Fingerprint(*cve, string(src), bugs, *threshold)
	if err != nil {
		return err
	}
	db := &jitbull.Database{}
	if _, statErr := os.Stat(*dbPath); statErr == nil {
		if db, err = jitbull.LoadDatabase(*dbPath); err != nil {
			return err
		}
	}
	db.Add(vdc)
	if err := db.Save(*dbPath); err != nil {
		return err
	}
	fmt.Printf("fingerprinted %s (%d JITed functions) into %s (%d VDCs total)\n",
		*cve, len(vdc.DNAs), *dbPath, db.Size())
	return nil
}

func cmdVulns() error {
	fmt.Println("Implemented vulnerabilities (injectable with -bugs):")
	for _, v := range jitbull.Vulnerabilities() {
		fmt.Printf("  %-16s %-10s CVSS %.1f  %-8s window %s..%s  host pass %s\n",
			v.CVE, v.Engine, v.CVSS, v.Outcome, v.Reported, v.Patched, v.HostPass)
	}
	return nil
}

package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/jitbull/jitbull"
	"github.com/jitbull/jitbull/internal/obs"
)

// cmdJourney renders tier-journey timelines: the per-function answer to
// "why is this function in this tier, and what happened along the way?".
// It has two modes. Given a journey.json file (written by
// `jitbull run -journey file`) it renders the saved journal. Given a
// script or -octane name it runs the program with a journal attached and
// renders the result directly — the one-command path for interactive
// triage.
func cmdJourney(args []string) error {
	fs := flag.NewFlagSet("journey", flag.ContinueOnError)
	fn := fs.String("fn", "", "render only this function's timeline")
	jsonOut := fs.Bool("json", false, "emit the journal as JSON instead of ASCII timelines")
	threshold := fs.Int("threshold", 0, "Ion compilation threshold for run mode (default 1500)")
	osr := fs.Bool("osr", false, "run mode: enable loop-header on-stack replacement")
	speculate := fs.Bool("speculate", false, "run mode: enable type speculation")
	async := fs.Bool("async", false, "run mode: compile off-thread")
	octaneName := fs.String("octane", "", "run a built-in benchmark instead of reading a file")
	scale := fs.Int("scale", 1, "outer-loop scale for -octane")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var journal *jitbull.Journal
	switch {
	case *octaneName != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("journey: -octane and a file argument are mutually exclusive")
		}
		b, err := benchByName(*octaneName)
		if err != nil {
			return err
		}
		journal, err = journeyRun(b.Source(*scale), *threshold, *osr, *speculate, *async)
		if err != nil {
			return err
		}
	case fs.NArg() == 1:
		path := fs.Arg(0)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// A saved journal is a JSON object; anything else is a script to run.
		if strings.HasSuffix(path, ".json") {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			journal, err = obs.DecodeJourney(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("journey: %s: %w", path, err)
			}
		} else {
			if journal, err = journeyRun(string(data), *threshold, *osr, *speculate, *async); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("journey: exactly one input (journey.json, script.js, or -octane name) expected")
	}

	if *jsonOut {
		if *fn != "" {
			return fmt.Errorf("journey: -fn and -json are mutually exclusive (filter the JSON downstream)")
		}
		return journal.WriteJSON(os.Stdout)
	}
	if *fn != "" {
		tl := journal.RenderTimeline(*fn)
		if tl == "" {
			return fmt.Errorf("journey: no events recorded for function %q (known: %s)",
				*fn, strings.Join(journal.Funcs(), ", "))
		}
		fmt.Print(tl)
		return nil
	}
	if out := journal.RenderAll(); out != "" {
		fmt.Print(out)
		return nil
	}
	fmt.Println("journey: no events recorded (nothing got warm enough to tier?)")
	return nil
}

// journeyRun executes src with a journal attached and returns the
// journal. Script output is suppressed — the timelines are the product.
func journeyRun(src string, threshold int, osr, speculate, async bool) (*jitbull.Journal, error) {
	journal := jitbull.NewJournal(0)
	cfg := jitbull.Config{
		IonThreshold: threshold,
		OSR:          osr,
		Speculate:    speculate,
		Journal:      journal,
	}
	if async {
		queue := jitbull.NewQueue(0, 0, nil)
		defer queue.Close()
		cfg.Queue = queue
	}
	eng, err := jitbull.New(src, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := eng.Run(); err != nil && !jitbull.IsHijack(err) && !jitbull.IsCrash(err) {
		fmt.Fprintf(os.Stderr, "journey: script error: %v\n", err)
	}
	return journal, nil
}

package main

// Offline integrity tooling: `jitbull dna verify` for the VDC DNA
// database, `jitbull store verify` for the persistent artifact/verdict
// store, and `jitbull store chaos` for the disk-fault campaign. All three
// exit non-zero when they find corruption (or an invariant violation), so
// CI and operators can gate on them directly.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/difftest"
	"github.com/jitbull/jitbull/internal/store"
)

// cmdDNA dispatches the dna subcommands.
func cmdDNA(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("dna: missing subcommand (verify)")
	}
	switch args[0] {
	case "verify":
		return cmdDNAVerify(args[1:])
	default:
		return fmt.Errorf("dna: unknown subcommand %q", args[0])
	}
}

// cmdDNAVerify loads a DNA database through the full envelope discipline
// (format, version, crc32c) plus structural validation, and reports what
// it found. Any failure — unreadable, corrupt, version-skewed, or
// structurally invalid — is an error, i.e. a non-zero exit.
func cmdDNAVerify(args []string) error {
	fs := flag.NewFlagSet("dna verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("dna verify: exactly one database file expected")
	}
	path := fs.Arg(0)
	db, err := core.LoadDatabase(path)
	if err != nil {
		return fmt.Errorf("dna verify: %s: %w", path, err)
	}
	if err := db.Validate(); err != nil {
		return fmt.Errorf("dna verify: %s: %w", path, err)
	}
	nDNAs := 0
	for _, v := range db.VDCs {
		nDNAs += len(v.DNAs)
	}
	fmt.Printf("dna verify: %s OK (%d VDCs, %d function DNAs, fingerprint %016x)\n",
		path, db.Size(), nDNAs, db.Fingerprint())
	return nil
}

// cmdStore dispatches the store subcommands.
func cmdStore(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("store: missing subcommand (verify, chaos)")
	}
	switch args[0] {
	case "verify":
		return cmdStoreVerify(args[1:])
	case "chaos":
		return cmdStoreChaos(args[1:])
	default:
		return fmt.Errorf("store: unknown subcommand %q", args[0])
	}
}

// cmdStoreVerify runs the offline integrity scan over a store directory.
// With -quarantine, untrustworthy records are moved aside (the same
// degradation a live Get applies); without it the scan is read-only.
// Any problem found exits non-zero.
func cmdStoreVerify(args []string) error {
	fs := flag.NewFlagSet("store verify", flag.ContinueOnError)
	quar := fs.Bool("quarantine", false, "move untrustworthy records into the quarantine directory instead of only reporting them")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("store verify: exactly one store directory expected")
	}
	dir := fs.Arg(0)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return fmt.Errorf("store verify: %w", err)
	}
	rep, err := st.Verify(*quar)
	if err != nil {
		return fmt.Errorf("store verify: %w", err)
	}
	for _, p := range rep.Problems {
		fmt.Printf("store verify: BAD %s: %s\n", p.Path, p.Reason)
	}
	fmt.Printf("store verify: %s: %d record(s) checked, %d OK, %d problem(s), %d quarantined\n",
		dir, rep.Checked, rep.OK, len(rep.Problems), rep.Quarantined)
	if len(rep.Problems) > 0 {
		return fmt.Errorf("store verify: %d corrupt record(s)", len(rep.Problems))
	}
	return nil
}

// cmdStoreChaos runs the disk-fault chaos campaign: every (store point ×
// fault kind) cell swept deterministically, each run checked for escaped
// panics, interpreter divergence, wrong verdicts, 1:1 fault accounting
// and surviving corrupt records. Failures are written as JSON
// reproducers compatible with the compile-path campaign's format.
func cmdStoreChaos(args []string) error {
	fs := flag.NewFlagSet("store chaos", flag.ContinueOnError)
	runs := fs.Int("runs", 216, "number of runs (216 = 9 full point-by-kind sweeps)")
	seed := fs.Int64("seed", 1, "base seed (run i uses seed+i for program and schedule)")
	out := fs.String("out", "", "write failure reproducers (JSON) to this file")
	dir := fs.String("dir", "", "scratch root for the per-run store directories (default: a temp dir, removed afterwards)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("store chaos: unexpected arguments %v", fs.Args())
	}
	scratch := *dir
	if scratch == "" {
		tmp, err := os.MkdirTemp("", "jitbull-store-chaos-")
		if err != nil {
			return fmt.Errorf("store chaos: %w", err)
		}
		defer os.RemoveAll(tmp)
		scratch = tmp
	} else if err := os.MkdirAll(scratch, 0o755); err != nil {
		return fmt.Errorf("store chaos: %w", err)
	}
	res := difftest.StoreChaos(difftest.StoreChaosOptions{Seed: *seed, Runs: *runs, Dir: scratch})
	fmt.Printf("store chaos: %s\n", res.Summary())
	for i, f := range res.Failures {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Failures)-i)
			break
		}
		fmt.Printf("  %s\n", f)
	}
	if *out != "" && len(res.Failures) > 0 {
		data, err := json.MarshalIndent(res.Failures, "", "  ")
		if err != nil {
			return fmt.Errorf("store chaos: marshal reproducers: %w", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return fmt.Errorf("store chaos: write reproducers: %w", err)
		}
		fmt.Printf("store chaos: wrote %d reproducer(s) to %s\n", len(res.Failures), *out)
	}
	if res.FaultsFired == 0 {
		return fmt.Errorf("store chaos: no faults fired — the store boundary was never exercised")
	}
	if !res.OK() {
		return fmt.Errorf("store chaos: %d run(s) violated an invariant", len(res.Failures))
	}
	return nil
}

// Command dna extracts and inspects JIT DNA.
//
//	dna extract [-bugs CVE,...] [-threshold N] script.js   # print DNA as JSON
//	dna diff a.json b.json                                  # compare two dumps
//	dna passes                                              # list pipeline passes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/jitbull/jitbull"
	"github.com/jitbull/jitbull/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dna:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dna extract|diff|passes ...")
	}
	switch args[0] {
	case "extract":
		return cmdExtract(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	case "passes":
		for i, name := range jitbull.PassNames() {
			fmt.Printf("%2d  %s\n", i+1, name)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	bugsFlag := fs.String("bugs", "", "comma-separated CVE ids to activate during compilation")
	threshold := fs.Int("threshold", 0, "Ion compilation threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("extract: one script expected")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bugs := jitbull.BugSet{}
	for _, c := range strings.Split(*bugsFlag, ",") {
		if c = strings.TrimSpace(c); c != "" {
			bugs[c] = true
		}
	}
	vdc, err := jitbull.Fingerprint("(extract)", string(src), bugs, *threshold)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(vdc.DNAs, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func cmdDiff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff: two DNA dump files expected")
	}
	a, err := loadDump(args[0])
	if err != nil {
		return err
	}
	b, err := loadDump(args[1])
	if err != nil {
		return err
	}
	for _, da := range a {
		for _, db := range b {
			var passNames []string
			for p := range da.Passes {
				if _, ok := db.Passes[p]; ok {
					passNames = append(passNames, p)
				}
			}
			sort.Strings(passNames)
			for _, p := range passNames {
				if core.SimilarDeltas(da.Passes[p], db.Passes[p], core.DefaultRatio, core.DefaultThr) {
					fmt.Printf("MATCH %s(%s) ~ %s(%s) at pass %s\n",
						args[0], da.FuncName, args[1], db.FuncName, p)
				}
			}
		}
	}
	return nil
}

func loadDump(path string) ([]core.DNA, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dnas []core.DNA
	if err := json.Unmarshal(data, &dnas); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return dnas, nil
}

// Command jitbull-bench regenerates every table and figure of the paper's
// evaluation. With no flags it runs everything.
//
//	jitbull-bench -table1 -table2 -window    # static tables
//	jitbull-bench -security                  # §VI-B detection matrix
//	jitbull-bench -fig4                      # false-positive rates
//	jitbull-bench -fig5 -scale 5 -repeats 3  # execution times
//	jitbull-bench -fig6                      # scalability #1..#8
//	jitbull-bench -core                      # hot-path micro-benchmarks
//
// Corpus experiments fan out across -workers engines. -core writes its
// measurements (including the retained reference implementation as the
// pre-optimization baseline) to -benchout as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/experiments"
)

// benchMeta is the provenance header stamped into every BENCH_*.json file:
// which revision produced the numbers and under what configuration, so a
// committed baseline is never compared against measurements from a
// different tree or scale.
type benchMeta struct {
	Git       string `json:"git"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Scale     int    `json:"scale"`
	Repeats   int    `json:"repeats"`
	Threshold int    `json:"threshold"`
}

// benchFile is the on-disk shape of every BENCH_*.json: a meta header plus
// the benchmark-specific payload. Readers of older headerless files (a
// bare array or report object) must keep accepting both shapes — see
// obsGate.
type benchFile struct {
	Meta    benchMeta `json:"meta"`
	Results any       `json:"results"`
}

// gitDescribe resolves the working tree's revision; "unknown" when git is
// unavailable (e.g. running from an exported tarball).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeBench stamps the provenance header and writes path.
func writeBench(path string, results any, cfg experiments.Config) error {
	f := benchFile{
		Meta: benchMeta{
			Git:       gitDescribe(),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Scale:     cfg.Scale,
			Repeats:   cfg.Repeats,
			Threshold: cfg.IonThreshold,
		},
		Results: results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s)\n", path, f.Meta.Git)
	return nil
}

func main() {
	var (
		table1    = flag.Bool("table1", false, "print the Table I vulnerability survey")
		table2    = flag.Bool("table2", false, "print the execution environment (Table II)")
		window    = flag.Bool("window", false, "print the vulnerability-window analysis (§III-C/§VI-D)")
		security  = flag.Bool("security", false, "run the §VI-B security matrix")
		fig4      = flag.Bool("fig4", false, "run the Figure 4 false-positive experiment")
		fig5      = flag.Bool("fig5", false, "run the Figure 5 execution-time experiment")
		fig6      = flag.Bool("fig6", false, "run the Figure 6 scalability experiment")
		ablation  = flag.Bool("ablation", false, "sweep the comparator's Thr/Ratio settings")
		coreB     = flag.Bool("core", false, "run the core hot-path micro-benchmarks")
		obsB      = flag.Bool("obs", false, "run the observability micro-benchmarks")
		jitqB     = flag.Bool("jitqueue", false, "run the off-thread-compilation / shared-cache benchmark with its regression gates")
		nativeB   = flag.Bool("native", false, "run the superinstruction-tier benchmark with its regression gates")
		osrB      = flag.Bool("osr", false, "run the loop-header OSR tier-up benchmark with its regression gates")
		warmB     = flag.Bool("warmstart", false, "run the persistent-store warm-start benchmark with its regression gates")
		mcB       = flag.Bool("mc", false, "run the machine-code-tier benchmark with its regression gates")
		benchout  = flag.String("benchout", "BENCH_core.json", "output file for -core results")
		obsout    = flag.String("obsout", "BENCH_obs.json", "output file for -obs results")
		jitqout   = flag.String("jitqueueout", "BENCH_jitqueue.json", "output file for -jitqueue results")
		nativeout = flag.String("nativeout", "BENCH_native.json", "output file for -native results")
		osrout    = flag.String("osrout", "BENCH_osr.json", "output file for -osr results")
		warmout   = flag.String("warmstartout", "BENCH_warmstart.json", "output file for -warmstart results")
		mcout     = flag.String("mcout", "BENCH_mc.json", "output file for -mc results")
		corebase  = flag.String("corebase", "BENCH_core.json", "recorded core baseline the -obs regression gate compares against ('' disables the gate)")
		scale     = flag.Int("scale", 4, "benchmark iteration scale for timing experiments")
		repeats   = flag.Int("repeats", 3, "timing repetitions (minimum reported)")
		thr       = flag.Int("threshold", 100, "Ion compilation threshold for benchmark runs")
		workers   = flag.Int("workers", 1, "worker pool size for corpus experiments (0 = GOMAXPROCS)")
	)
	flag.Parse()
	all := !(*table1 || *table2 || *window || *security || *fig4 || *fig5 || *fig6 || *ablation || *coreB || *obsB || *jitqB || *nativeB || *osrB || *warmB || *mcB)
	cfg := experiments.Config{IonThreshold: *thr, Repeats: *repeats, Scale: *scale, Workers: *workers}

	if err := run(all, *table1, *table2, *window, *security, *fig4, *fig5, *fig6, *ablation, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
		os.Exit(1)
	}
	if *coreB {
		if err := runCore(*benchout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
			os.Exit(1)
		}
	}
	if *obsB {
		if err := runObs(*obsout, *corebase, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
			os.Exit(1)
		}
	}
	if *jitqB {
		if err := runJitQueue(*jitqout, *corebase, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
			os.Exit(1)
		}
	}
	if *nativeB {
		if err := runNative(*nativeout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
			os.Exit(1)
		}
	}
	if *osrB {
		if err := runOSR(*osrout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
			os.Exit(1)
		}
	}
	if *warmB {
		if err := runWarmStart(*warmout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
			os.Exit(1)
		}
	}
	if *mcB {
		if err := runMC(*mcout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jitbull-bench:", err)
			os.Exit(1)
		}
	}
}

// mcGateKernelSpeedup is the primary -mc regression gate: real machine
// code must beat the fused threaded dispatch loop by this geomean factor
// at the executor boundary, on the same kernels the fused tier itself is
// gated on. Anything lower means the tier is not paying for its W^X pages.
const mcGateKernelSpeedup = 2.0

// mcGateOctaneSpeedup is the engine-level -mc gate: whole-run wall clock
// on the octane-analogue corpus (interpreter warm-up, compile pipeline and
// hook traffic included) must still improve by this geomean factor.
const mcGateOctaneSpeedup = 1.4

// runMC runs the machine-code-tier benchmark, writes BENCH_mc.json, and
// enforces its gates: kernel geomean mc-vs-fused speedup >= 2.0x, engine
// octane geomean >= 1.4x, bit-identical behavior (value, result global,
// output, VM steps, policy verdicts) between the mc and NoMC cells, and a
// divergence-free generated-program sweep. On platforms without the tier
// the report records Supported=false and the gates do not apply.
func runMC(path string, cfg experiments.Config) error {
	rep, err := experiments.MCBench(cfg)
	if err != nil {
		return fmt.Errorf("mc bench: %w", err)
	}
	fmt.Print(experiments.RenderMC(rep))
	if err := writeBench(path, rep, cfg); err != nil {
		return err
	}
	if !rep.Supported {
		fmt.Printf("mc gate: tier unsupported on %s; gates skipped\n", rep.Arch)
		return nil
	}
	if !rep.Identical {
		return fmt.Errorf("mc gate: mc/nomc behavior diverged: %s", rep.Mismatch)
	}
	if rep.SweepDiverged > 0 {
		return fmt.Errorf("mc gate: %d/%d generated programs diverged (%s)",
			rep.SweepDiverged, rep.SweepPrograms, rep.SweepFirstDiver)
	}
	if rep.KernelMismatch != "" {
		return fmt.Errorf("mc gate: kernel behavior diverged: %s", rep.KernelMismatch)
	}
	if rep.KernelGeomean < mcGateKernelSpeedup {
		return fmt.Errorf("mc gate: kernel geomean machine-code speedup %.2fx below the %.1fx budget",
			rep.KernelGeomean, mcGateKernelSpeedup)
	}
	if rep.GeomeanSpeedup < mcGateOctaneSpeedup {
		return fmt.Errorf("mc gate: octane geomean speedup %.2fx below the %.1fx budget",
			rep.GeomeanSpeedup, mcGateOctaneSpeedup)
	}
	return nil
}

// warmStartGateSpeedup is the -warmstart regression gate: replaying a
// compile-heavy program's artifacts and verdicts from the persistent
// store must beat recompiling them by this factor.
const warmStartGateSpeedup = 5.0

// runWarmStart runs the persistent-store warm-start benchmark, writes
// BENCH_warmstart.json, and enforces its gates: zero pipeline executions
// in the warm process (checked inside the bench) and a >= 5x warm-hit
// speedup over a cold compile.
func runWarmStart(path string, cfg experiments.Config) error {
	dir, err := os.MkdirTemp("", "jitbull-warmstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := experiments.WarmStartBench(dir, cfg)
	if err != nil {
		return fmt.Errorf("warmstart bench: %w", err)
	}
	fmt.Print(experiments.RenderWarmStart(rep))
	if err := writeBench(path, rep, cfg); err != nil {
		return err
	}
	if rep.WarmCompiles != 0 {
		return fmt.Errorf("warmstart gate: warm process ran %d pipeline(s), want 0", rep.WarmCompiles)
	}
	if rep.Speedup < warmStartGateSpeedup {
		return fmt.Errorf("warmstart gate: warm start only %.1fx faster than a cold boot (budget %.0fx)",
			rep.Speedup, warmStartGateSpeedup)
	}
	return nil
}

// osrGateSpeedup is the -osr regression gate: on the single-long-call
// corpus, the OSR cell (back-edge compile + mid-loop entry) must beat the
// call-boundary-only cell by this geomean factor. The corpus is exactly
// the workload call-boundary installs cannot serve — a single call that
// never returns to an install point — so anything near 1.0x means the
// transfer machinery is not paying for itself.
const osrGateSpeedup = 1.2

// runOSR runs the OSR tier-up benchmark, writes BENCH_osr.json, and
// enforces its gates: geomean osr-vs-boundary speedup >= 1.2x, at least
// one mid-loop entry per bench, zero entries in the boundary cell, and
// identical semantics (value, result global, output, errors) across the
// cells.
func runOSR(path string, cfg experiments.Config) error {
	rep, err := experiments.OSRBench(cfg)
	if err != nil {
		return fmt.Errorf("osr bench: %w", err)
	}
	fmt.Print(experiments.RenderOSR(rep))
	if err := writeBench(path, rep, cfg); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("osr gate: boundary/osr behavior diverged: %s", rep.Mismatch)
	}
	if len(rep.NeverEntered) > 0 {
		return fmt.Errorf("osr gate: bench(es) never entered mid-loop: %v", rep.NeverEntered)
	}
	if rep.GeomeanSpeedup < osrGateSpeedup {
		return fmt.Errorf("osr gate: geomean mid-loop tier-up speedup %.2fx below the %.1fx budget",
			rep.GeomeanSpeedup, osrGateSpeedup)
	}
	return nil
}

// nativeGateSpeedup is the -native regression gate: the fused dispatch
// loop must beat the unfused reference by this geomean factor on the
// octane-analogue kernel corpus, measured at the native.Exec boundary.
// (Whole-engine wall clock is reported alongside but not gated: it is
// dominated by hook calls and interpreter warm-up, which fusion must not
// change.)
const nativeGateSpeedup = 1.5

// runNative runs the superinstruction-tier benchmark, writes
// BENCH_native.json, and enforces its gates: kernel geomean
// fused-vs-unfused speedup >= 1.5x, bit-identical behavior (value, result
// global, output, VM steps, policy verdicts) on every engine-level
// benchmark and every kernel, and a divergence-free generated-program
// sweep.
func runNative(path string, cfg experiments.Config) error {
	rep, err := experiments.NativeBench(cfg)
	if err != nil {
		return fmt.Errorf("native bench: %w", err)
	}
	fmt.Print(experiments.RenderNative(rep))
	if err := writeBench(path, rep, cfg); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("native gate: fused/unfused behavior diverged: %s", rep.Mismatch)
	}
	if rep.SweepDiverged > 0 {
		return fmt.Errorf("native gate: %d/%d generated programs diverged (%s)",
			rep.SweepDiverged, rep.SweepPrograms, rep.SweepFirstDiver)
	}
	if rep.KernelMismatch != "" {
		return fmt.Errorf("native gate: kernel behavior diverged: %s", rep.KernelMismatch)
	}
	if rep.KernelGeomean < nativeGateSpeedup {
		return fmt.Errorf("native gate: kernel geomean fused speedup %.2fx below the %.1fx budget",
			rep.KernelGeomean, nativeGateSpeedup)
	}
	return nil
}

// runJitQueue runs the off-thread-compilation / shared-cache benchmark,
// writes BENCH_jitqueue.json, and enforces its regression gates: the warm
// fleet re-run must eliminate >= 90% of pipeline executions, a cached hit
// must beat a cold compile >= 5x, policy verdicts must be identical in
// every mode, and (via the obs gate) the untraced sync compile path must
// stay within 5% of the recorded BENCH_core.json baseline.
func runJitQueue(path, corebase string, cfg experiments.Config) error {
	rep, err := experiments.JitQueueBench(cfg)
	if err != nil {
		return fmt.Errorf("jitqueue bench: %w", err)
	}
	fmt.Print(experiments.RenderJitQueue(rep))
	if err := writeBench(path, rep, cfg); err != nil {
		return err
	}
	if !rep.VerdictsIdentical {
		return fmt.Errorf("jitqueue gate: policy verdicts diverged across modes: %s", rep.VerdictMismatch)
	}
	if rep.PipelineEliminatedPct < 90 {
		return fmt.Errorf("jitqueue gate: warm fleet re-run eliminated only %.1f%% of pipeline executions (budget 90%%)",
			rep.PipelineEliminatedPct)
	}
	if rep.CachedSpeedup < 5 {
		return fmt.Errorf("jitqueue gate: cached hit only %.1fx faster than a cold compile (budget 5x)", rep.CachedSpeedup)
	}
	if rep.StallEliminatedPct < 90 {
		return fmt.Errorf("jitqueue gate: async kept %.1f%% of compile stalls on the execution thread (budget: move >= 90%% off-thread)",
			100-rep.StallEliminatedPct)
	}
	if rep.NumCPU > 1 && len(rep.Modes) > 1 && rep.Modes[1].Speedup < 1 {
		// Timing, so advisory: flag it loudly without failing CI on noise.
		fmt.Printf("jitqueue: WARNING: async mode was not faster than sync (%.2fx)\n", rep.Modes[1].Speedup)
	}
	if corebase == "" {
		return nil
	}
	return obsGate(corebase)
}

// coreResult is one BENCH_core.json record.
type coreResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// runCore measures every experiments.CoreBenchmarks entry via
// testing.Benchmark and writes the results to path as JSON.
func runCore(path string, cfg experiments.Config) error {
	var results []coreResult
	for _, cb := range experiments.CoreBenchmarks() {
		r := testing.Benchmark(cb.Bench)
		res := coreResult{
			Name:        cb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-24s %12.1f ns/op %10d B/op %8d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		results = append(results, res)
	}
	fmt.Println()
	return writeBench(path, results, cfg)
}

// obsGateBench is the BENCH_core.json entry the -obs regression gate
// re-measures: the detector finish step rides the fully instrumented
// compile path, so a disabled-probe slowdown shows up here first.
const obsGateBench = "DetectorFinish/4VDC"

// obsGateTolerance is the accepted slowdown of the disabled-probe path
// relative to the recorded baseline (5%).
const obsGateTolerance = 1.05

// runObs measures every experiments.ObsBenchmarks entry, writes the
// results to path, and — when corebase names a readable BENCH_core.json —
// re-measures the gate benchmark and fails if the disabled-probe compile
// path regressed beyond the tolerance.
func runObs(path, corebase string, cfg experiments.Config) error {
	var results []coreResult
	for _, cb := range experiments.ObsBenchmarks() {
		r := testing.Benchmark(cb.Bench)
		res := coreResult{
			Name:        cb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-24s %12.1f ns/op %10d B/op %8d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		results = append(results, res)
	}
	byName := map[string]coreResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if off, traced := byName["CompileOctane/off"], byName["CompileOctane/traced"]; off.NsPerOp > 0 {
		fmt.Printf("\ntracing overhead on the compile-heavy run: %.1f%% (off %.0f ns/op, traced %.0f ns/op)\n",
			100*(traced.NsPerOp/off.NsPerOp-1), off.NsPerOp, traced.NsPerOp)
	}
	if err := writeBench(path, results, cfg); err != nil {
		return err
	}
	if corebase == "" {
		return nil
	}
	return obsGate(corebase)
}

// obsGate re-measures the gate benchmark (best of 3) against the recorded
// baseline. The compile-path probes compile to one nil check each when
// observability is off; this is the regression budget for that claim.
func obsGate(corebase string) error {
	data, err := os.ReadFile(corebase)
	if err != nil {
		return fmt.Errorf("obs gate: read baseline: %w", err)
	}
	// Accept both baseline shapes: the current {meta, results} wrapper and
	// the pre-header bare array.
	var baseline []coreResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		var wrapped struct {
			Results []coreResult `json:"results"`
		}
		if werr := json.Unmarshal(data, &wrapped); werr != nil || wrapped.Results == nil {
			return fmt.Errorf("obs gate: parse baseline: %w", err)
		}
		baseline = wrapped.Results
	}
	var base *coreResult
	for i := range baseline {
		if baseline[i].Name == obsGateBench {
			base = &baseline[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("obs gate: baseline %s lacks %q", corebase, obsGateBench)
	}
	var bench func(b *testing.B)
	for _, cb := range experiments.CoreBenchmarks() {
		if cb.Name == obsGateBench {
			bench = cb.Bench
			break
		}
	}
	if bench == nil {
		return fmt.Errorf("obs gate: core benchmark %q not found", obsGateBench)
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(bench)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best == 0 || ns < best {
			best = ns
		}
	}
	ratio := best / base.NsPerOp
	fmt.Printf("obs gate: %s %.1f ns/op vs baseline %.1f ns/op (%.2fx, budget %.2fx)\n",
		obsGateBench, best, base.NsPerOp, ratio, obsGateTolerance)
	if ratio > obsGateTolerance {
		return fmt.Errorf("obs gate: disabled-probe compile path regressed %.1f%% over %s (budget 5%%)",
			100*(ratio-1), corebase)
	}
	return nil
}

func run(all, table1, table2, window, security, fig4, fig5, fig6, ablation bool, cfg experiments.Config) error {
	if all || table2 {
		fmt.Println(experiments.TableII())
	}
	if all || table1 {
		fmt.Println(experiments.TableI())
	}
	if all || window {
		fmt.Println(experiments.WindowReport())
	}
	if all || security {
		secCfg := cfg
		secCfg.IonThreshold = 300 // demonstrators train 2000+ calls
		rows, err := experiments.SecurityMatrix(secCfg)
		if err != nil {
			return fmt.Errorf("security matrix: %w", err)
		}
		fmt.Println(experiments.RenderSecurityMatrix(rows))
	}
	if all || fig4 {
		for _, n := range []int{1, 4} {
			rows, err := experiments.FalsePositives(n, cfg)
			if err != nil {
				return fmt.Errorf("figure 4 (#%d): %w", n, err)
			}
			fmt.Println(experiments.RenderFalsePositives(n, rows))
		}
	}
	if all || fig5 {
		rows, err := experiments.Performance(nil, cfg)
		if err != nil {
			return fmt.Errorf("figure 5: %w", err)
		}
		fmt.Println(experiments.RenderPerformance(rows))
	}
	if all || fig6 {
		rows, err := experiments.Scalability(nil, 8, cfg)
		if err != nil {
			return fmt.Errorf("figure 6: %w", err)
		}
		fmt.Println(experiments.RenderScalability(rows))
	}
	if all || ablation {
		ablCfg := cfg
		ablCfg.IonThreshold = 300 // demonstrators train 2000+ calls
		rows, err := experiments.ThresholdAblation(ablCfg)
		if err != nil {
			return fmt.Errorf("ablation: %w", err)
		}
		fmt.Println(experiments.RenderAblation(rows))
	}
	return nil
}

package jitbull

// Benchmark harness: one testing.B entry per table/figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md calls
// out. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Custom metrics carry the figure data (percentages, rates); ns/op carries
// the raw execution times. cmd/jitbull-bench renders the same data as the
// paper-formatted text tables.

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/experiments"
	"github.com/jitbull/jitbull/internal/octane"
)

const benchIonThreshold = 100

// benchRun executes src once under the given config/database.
func benchRun(b *testing.B, src string, cfg engine.Config, db *core.Database) {
	b.Helper()
	e, err := engine.New(src, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if db != nil {
		e.SetPolicy(core.NewDetector(db))
	}
	if _, err := e.Run(); err != nil {
		b.Fatalf("run: %v", err)
	}
}

// BenchmarkFig5ExecutionTimes regenerates Figure 5: every corpus program
// (including Microbench1/2) under NoJIT, JIT, and JITBULL with 0, 1 and 4
// VDCs installed.
func BenchmarkFig5ExecutionTimes(b *testing.B) {
	db1, bugs1, err := experiments.BuildDB(1, benchIonThreshold)
	if err != nil {
		b.Fatal(err)
	}
	db4, bugs4, err := experiments.BuildDB(4, benchIonThreshold)
	if err != nil {
		b.Fatal(err)
	}
	emptyDB := &core.Database{}
	configs := []struct {
		name string
		cfg  engine.Config
		db   *core.Database
	}{
		{"NoJIT", engine.Config{DisableJIT: true}, nil},
		{"JIT", engine.Config{IonThreshold: benchIonThreshold}, nil},
		{"JITBULL#0", engine.Config{IonThreshold: benchIonThreshold}, emptyDB},
		{"JITBULL#1", engine.Config{IonThreshold: benchIonThreshold, Bugs: bugs1}, db1},
		{"JITBULL#4", engine.Config{IonThreshold: benchIonThreshold, Bugs: bugs4}, db4},
	}
	for _, bench := range octane.All() {
		src := bench.Source(2)
		for _, c := range configs {
			b.Run(bench.Name+"/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchRun(b, src, c.cfg, c.db)
				}
			})
		}
	}
}

// BenchmarkFig4FalsePositives regenerates Figure 4: the benign corpus on a
// vulnerable engine with 1 and 4 VDC fingerprints installed. The
// percentages are reported as custom metrics per benchmark.
func BenchmarkFig4FalsePositives(b *testing.B) {
	for _, dbSize := range []int{1, 4} {
		dbSize := dbSize
		b.Run(map[int]string{1: "DB1", 4: "DB4"}[dbSize], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.FalsePositives(dbSize, experiments.Config{IonThreshold: benchIonThreshold, Repeats: 1, Scale: 4})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var dis, nojit, njit float64
					for _, r := range rows {
						dis += float64(r.NrDisJIT)
						nojit += float64(r.NrNoJIT)
						njit += float64(r.NrJIT)
					}
					b.ReportMetric(100*dis/njit, "%passdis")
					b.ReportMetric(100*nojit/njit, "%nojit")
				}
			}
		})
	}
}

// BenchmarkFig6Scalability regenerates Figure 6: execution time with 1..8
// VDCs installed, on the two benchmarks the paper highlights (Splay = min
// overhead, TypeScript = max).
func BenchmarkFig6Scalability(b *testing.B) {
	for _, name := range []string{"Splay", "TypeScript"} {
		bench, err := octane.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		src := bench.Source(2)
		for n := 1; n <= 8; n++ {
			db, bugs, err := experiments.BuildDB(n, benchIonThreshold)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(bench.Name+"/#"+string(rune('0'+n)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchRun(b, src, engine.Config{IonThreshold: benchIonThreshold, Bugs: bugs}, db)
				}
			})
		}
	}
}

// BenchmarkTable1Catalog covers the Table I survey path (catalogue
// generation and window statistics).
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.TableI()
		_ = experiments.WindowReport()
	}
}

// BenchmarkSecurityMatrix regenerates the §VI-B detection matrix and
// reports the detection rate as a metric (paper: 100%).
func BenchmarkSecurityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SecurityMatrix(experiments.Config{IonThreshold: 300, Repeats: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			d, tot := experiments.DetectionRate(rows)
			b.ReportMetric(100*float64(d)/float64(tot), "%detected")
		}
	}
}

// ---- Core micro-benchmarks (hot-path costs; see DESIGN.md) ----

// coreBenchGroup runs every experiments.CoreBenchmarks entry under the
// given top-level group as sub-benchmarks ("/ref" entries are the retained
// pre-optimization implementation, the speedup baseline).
func coreBenchGroup(b *testing.B, prefix string) {
	b.Helper()
	for _, cb := range experiments.CoreBenchmarks() {
		if name, ok := strings.CutPrefix(cb.Name, prefix); ok {
			if name == "" {
				name = "fast"
			}
			b.Run(strings.TrimPrefix(name, "/"), cb.Bench)
		}
	}
}

// obsBenchGroup is coreBenchGroup over the observability set.
func obsBenchGroup(b *testing.B, prefix string) {
	b.Helper()
	for _, cb := range experiments.ObsBenchmarks() {
		if name, ok := strings.CutPrefix(cb.Name, prefix); ok {
			if name == "" {
				name = "fast"
			}
			b.Run(strings.TrimPrefix(name, "/"), cb.Bench)
		}
	}
}

// BenchmarkObsSpan measures a trace span begin/end pair, disabled (the
// nil-tracer cost every compile pays) and recording into a ring.
func BenchmarkObsSpan(b *testing.B) { obsBenchGroup(b, "Span") }

// BenchmarkObsCompileOctane measures a compile-heavy corpus run with
// observability off, traced, and with the full stack attached.
func BenchmarkObsCompileOctane(b *testing.B) { obsBenchGroup(b, "CompileOctane") }

// BenchmarkExtractDelta measures one Δ extraction (Algorithm 1) over a
// representative before/after snapshot pair.
func BenchmarkExtractDelta(b *testing.B) { coreBenchGroup(b, "ExtractDelta") }

// BenchmarkCompareChains measures one COMPARECHAINS call over two 64-chain
// sets with 50% overlap.
func BenchmarkCompareChains(b *testing.B) { coreBenchGroup(b, "CompareChains") }

// BenchmarkDetectorFinish measures the detector's finish step (DNA vs
// whole database) across every function of a corpus program, with 0, 1 and
// 4 VDC fingerprints installed.
func BenchmarkDetectorFinish(b *testing.B) { coreBenchGroup(b, "DetectorFinish") }

// ---- Ablations (design choices called out in DESIGN.md) ----

// BenchmarkAblationDNAExtraction isolates the Δ-extraction cost: one Ion
// compilation of a representative hot function with and without the
// JITBULL observer installed (the paper's "no overhead with an empty DB"
// claim depends on this gap being paid only when VDCs are installed).
func BenchmarkAblationDNAExtraction(b *testing.B) {
	bench, err := octane.ByName("TypeScript")
	if err != nil {
		b.Fatal(err)
	}
	db1, bugs1, err := experiments.BuildDB(1, benchIonThreshold)
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Source(1)
	b.Run("compile-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRun(b, src, engine.Config{IonThreshold: benchIonThreshold}, nil)
		}
	})
	b.Run("compile+extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRun(b, src, engine.Config{IonThreshold: benchIonThreshold, Bugs: bugs1}, db1)
		}
	})
}

// BenchmarkAblationThresholdRatio sweeps the comparator's Thr and Ratio
// settings (paper: Thr=3, Ratio=50%) and reports the resulting
// false-positive rate on the corpus, quantifying the
// sensitivity/precision trade-off behind the defaults.
func BenchmarkAblationThresholdRatio(b *testing.B) {
	db, bugs, err := experiments.BuildDB(4, benchIonThreshold)
	if err != nil {
		b.Fatal(err)
	}
	sweep := []struct {
		name  string
		thr   int
		ratio float64
	}{
		{"Thr1_Ratio25", 1, 0.25},
		{"Thr3_Ratio50", 3, 0.50}, // the paper's setting
		{"Thr5_Ratio75", 5, 0.75},
	}
	for _, s := range sweep {
		s := s
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var dis, njit float64
				for _, bench := range octane.Suite() {
					e, err := engine.New(bench.Source(1), engine.Config{IonThreshold: benchIonThreshold, Bugs: bugs})
					if err != nil {
						b.Fatal(err)
					}
					det := core.NewDetector(db)
					det.Thr = s.thr
					det.Ratio = s.ratio
					e.SetPolicy(det)
					if _, err := e.Run(); err != nil {
						b.Fatal(err)
					}
					dis += float64(e.Stats().NrDisJIT + e.Stats().NrNoJIT)
					njit += float64(e.Stats().NrJIT)
				}
				if i == 0 && njit > 0 {
					b.ReportMetric(100*dis/njit, "%flagged")
				}
			}
		})
	}
}

// BenchmarkAblationNoJITBaseline quantifies what the paper's §III-C
// strawman costs: the full corpus interpreted vs JITed.
func BenchmarkAblationNoJITBaseline(b *testing.B) {
	for _, mode := range []string{"interp", "jit"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, bench := range octane.Microbenches() {
					cfg := engine.Config{DisableJIT: mode == "interp", IonThreshold: benchIonThreshold}
					benchRun(b, bench.Source(1), cfg, nil)
				}
			}
		})
	}
}

// Package jitbull is a from-scratch Go reproduction of "JITBULL: Securing
// JavaScript Runtime with a Go/No-Go Policy for JIT Engine" (Decourcelle,
// Teabe, Hagimont — DSN 2024).
//
// It bundles a complete simulated JavaScript engine (the nanojs language, a
// profiling interpreter, an IonMonkey-style optimizing JIT with ~22 SSA
// optimization passes, and a shared heap arena on which JIT bugs are
// actually exploitable) together with JITBULL itself: per-pass "JIT DNA"
// extraction (Algorithm 1), DNA comparison against a database of
// vulnerability demonstrator fingerprints (Algorithm 2), and the go/no-go
// policy that disables matched optimization passes — or JIT compilation of
// the matching function when a matched pass is mandatory.
//
// Quick start:
//
//	eng, err := jitbull.New(script, jitbull.Config{})
//	db := &jitbull.Database{}
//	db.Add(fingerprint) // from jitbull.Fingerprint or a maintainer update
//	jitbull.Protect(eng, db)
//	result, err := eng.Run()
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-vs-measured evaluation.
package jitbull

import (
	"io"
	"net"
	"net/http"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/store"
	"github.com/jitbull/jitbull/internal/variants"
	"github.com/jitbull/jitbull/internal/vulndb"
)

// Core engine types.
type (
	// Engine is a tiered nanojs runtime (interpreter → baseline → Ion).
	Engine = engine.Engine
	// Config parameterizes an Engine: tier thresholds, injected bugs
	// (the simulated vulnerability window), NoJIT mode, heap size.
	Config = engine.Config
	// Stats carries the per-run counters of the paper's Figure 4
	// (NrJIT, NrDisJIT, NrNoJIT, ...).
	Stats = engine.Stats
	// BugSet selects which injected CVE bugs are active.
	BugSet = passes.BugSet
	// HijackError reports a control-flow hijack (payload execution).
	HijackError = engine.HijackError
	// CompileError is a supervised, stage-attributed JIT-tier failure
	// (surfaced through Config.OnCompileError).
	CompileError = engine.CompileError
)

// JITBULL types.
type (
	// Database holds VDC DNA fingerprints (add on report, remove on patch).
	Database = core.Database
	// VDC is one vulnerability's fingerprint: the DNA of every function
	// its demonstrator code got JIT-compiled.
	VDC = core.VDC
	// DNA is the per-pass delta vector of one JITed function.
	DNA = core.DNA
	// Delta is one pass's removed/added dependency sub-chain sets.
	Delta = core.Delta
	// Detector is the Δ comparator plus go/no-go policy.
	Detector = core.Detector
	// Vulnerability describes one implemented CVE with its demonstrator.
	Vulnerability = vulndb.Vuln
	// Benchmark is one program of the benign evaluation corpus.
	Benchmark = octane.Benchmark
)

// Observability types (see internal/obs): tracing, metrics, and the
// policy-decision audit log, all wired through Config.Tracer,
// Config.Metrics and Config.Audit.
type (
	// Tracer records compile-lifecycle spans and instants into a Sink.
	// A nil *Tracer is the disabled tracer (one nil check per probe).
	Tracer = obs.Tracer
	// TraceEvent is one recorded span or instant.
	TraceEvent = obs.Event
	// Ring is a fixed-capacity trace sink keeping the newest events.
	Ring = obs.Ring
	// Registry is a named-metrics registry (counters, gauges, histograms).
	Registry = obs.Registry
	// AuditLog records one structured event per go/no-go verdict and
	// per compilation-supervisor transition.
	AuditLog = obs.AuditLog
	// AuditEvent is one structured audit record (JSONL on disk).
	AuditEvent = obs.AuditEvent
	// Verdict classifies an audit event ("go", "disable-pass", "nojit", ...).
	Verdict = obs.Verdict
)

// Observability v2 types (see internal/obs): the tier-journey journal,
// the tail-sampling flight recorder, and the anomaly watchdog, wired
// through Config.Journal and Config.Watchdog (and the tracer's sink for
// the flight recorder).
type (
	// Journal records each function's tier journey (interp → warm →
	// compiled → installed → OSR/deopt/quarantine ...) as a compact,
	// bounded event stream; a nil *Journal records nothing.
	Journal = obs.Journal
	// JourneyEvent is one step of a function's tier journey.
	JourneyEvent = obs.JourneyEvent
	// FlightRecorder is a tail-sampling trace sink: it retains every span
	// in a ring but dumps a Chrome-trace episode file only around
	// anomalies (p99 compile outliers, injected faults, watchdog
	// triggers), under a bounded disk budget.
	FlightRecorder = obs.FlightRecorder
	// FlightOptions bounds a FlightRecorder (ring size, dump count/bytes).
	FlightOptions = obs.FlightOptions
	// FlightEpisode describes one dumped anomaly episode.
	FlightEpisode = obs.Episode
	// Watchdog turns engine/store signals into anomaly verdicts through
	// pluggable detectors, driving /healthz and the audit log. A nil
	// *Watchdog ignores every signal.
	Watchdog = obs.Watchdog
	// WatchdogOptions configures the watchdog (detectors, registry,
	// audit log, flight recorder, recovery threshold).
	WatchdogOptions = obs.WatchdogOptions
	// WatchdogSignal is one observation fed to the watchdog's detectors.
	WatchdogSignal = obs.Signal
	// Anomaly is one detector verdict (detector name, function, cause).
	Anomaly = obs.Anomaly
	// OpsState bundles what the ops endpoints serve (/metrics.prom,
	// /healthz, /journey.json, /flight.json, ...).
	OpsState = obs.OpsState
	// MultiSink fans trace events out to several sinks (e.g. a Ring for
	// -trace plus a FlightRecorder).
	MultiSink = obs.MultiSink
	// FaultInjector is the deterministic chaos injector (see
	// internal/faults), wired through Config.Faults.
	FaultInjector = faults.Injector
)

// Off-thread compilation & shared-cache types (see internal/jitqueue):
// wired through Config.Queue and Config.Cache. Both are optional and
// concurrency-safe; a nil pointer means the feature is off and the engine
// compiles inline exactly as before.
type (
	// Queue is a bounded background-compilation service shared by any
	// number of engines. When it is saturated, enqueues fall back to
	// inline compilation (back-pressure, never an unbounded backlog).
	Queue = jitqueue.Queue
	// CodeCache is a cross-engine compilation cache keyed by the
	// canonical (rename/minify-invariant) bytecode hash plus every other
	// compilation input; a hit returns the artifact together with the
	// recorded JITBULL verdict, skipping the pipeline and DNA matching.
	CodeCache = jitqueue.Cache
)

// NewQueue starts a compile queue with the given worker count and job
// capacity (<= 0 select GOMAXPROCS workers / the default capacity). reg
// may be nil; when set it receives the jit.queue_* metrics. Close the
// queue when done.
func NewQueue(workers, capacity int, reg *Registry) *Queue {
	return jitqueue.New(workers, capacity, reg)
}

// NewCodeCache returns an empty shared compilation cache bounded at
// jitqueue.DefaultCacheMaxBytes of accounted artifact footprint (arbitrary
// entries are evicted to stay under the bound). reg may be nil; when set
// it receives the cache.{hits,misses,evictions,bytes,entries} metrics.
func NewCodeCache(reg *Registry) *CodeCache { return jitqueue.NewCache(reg) }

// NewCodeCacheLimited is NewCodeCache with an explicit footprint bound in
// bytes; maxBytes <= 0 removes the bound.
func NewCodeCacheLimited(reg *Registry, maxBytes int64) *CodeCache {
	return jitqueue.NewCacheLimited(reg, maxBytes)
}

// Persistent artifact/verdict store types (see internal/store): an
// on-disk second tier under the CodeCache. Every record is a checksummed,
// key-bound, atomically-written envelope; anything that fails
// verification on read is quarantined and served as a miss (the engine
// just compiles cold), never executed.
type (
	// ArtifactStore is the on-disk store. Attach it under a CodeCache with
	// AttachStore so cached compilations (and their JITBULL verdicts)
	// survive process restarts.
	ArtifactStore = store.Store
	// StoreVerifyReport is the result of an offline integrity scan.
	StoreVerifyReport = store.VerifyReport
	// CacheCodec serializes the engine's cached compilations for the
	// store: artifacts travel as their plain op stream (derived forms are
	// recomputed bit-identically on load) and JITBULL verdicts through the
	// detector's own verdict codec.
	CacheCodec = engine.CacheCodec
	// StoreOptions configures an ArtifactStore (metrics, audit, chaos
	// injector, retry budget, watchdog, tracer).
	StoreOptions = store.Options
)

// OpenStore opens (creating if needed) a persistent artifact store rooted
// at dir. reg and audit may be nil; when set they receive the store.*
// metrics and a quarantine/degradation audit trail.
func OpenStore(dir string, reg *Registry, audit *AuditLog) (*ArtifactStore, error) {
	return store.Open(dir, store.Options{Metrics: reg, Audit: audit})
}

// OpenStoreWith is OpenStore with the full option surface: chaos
// injector, retry budget, anomaly watchdog (one SigStoreCorrupt per
// quarantined record) and tracer (store.get/store.put spans feeding the
// store.{get,put}_ns histogram exemplars).
func OpenStoreWith(dir string, opts StoreOptions) (*ArtifactStore, error) {
	return store.Open(dir, opts)
}

// NewCacheCodec builds the store codec for a fleet protected by detector
// d (nil for an unprotected fleet — verdict-bearing records are then not
// persisted rather than persisted without their verdicts).
func NewCacheCodec(d *Detector) *CacheCodec {
	if d == nil {
		return engine.NewCacheCodec(nil)
	}
	return engine.NewCacheCodec(d)
}

// AttachStore wires a persistent store under a CodeCache as its second
// tier: every publish is written through, and a memory miss consults the
// store before compiling. Call before the engines sharing the cache run.
func AttachStore(c *CodeCache, st *ArtifactStore, codec *CacheCodec) {
	c.AttachTier(st, codec)
}

// NewRing returns a trace ring buffer; capacity <= 0 uses the default (64k).
func NewRing(capacity int) *Ring { return obs.NewRing(capacity) }

// NewTracer returns a tracer recording into sink.
func NewTracer(sink obs.Sink) *Tracer { return obs.NewTracer(sink) }

// NewRegistry returns an empty metrics registry (safe for concurrent use,
// shareable across engines).
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewAuditLog returns an audit log; w may be nil for in-memory-only use,
// or a writer to stream each event as one JSON line.
func NewAuditLog(w io.Writer) *AuditLog { return obs.NewAuditLog(w) }

// SaveChromeTrace writes events as a Chrome trace_event JSON file,
// loadable in chrome://tracing or https://ui.perfetto.dev.
func SaveChromeTrace(path string, events []TraceEvent) error {
	return obs.SaveChromeTrace(path, events)
}

// ReadAuditFile parses a JSONL audit stream written via NewAuditLog.
func ReadAuditFile(path string) ([]AuditEvent, error) { return obs.ReadAuditFile(path) }

// StartDebugServer serves /metrics, /metrics.json, /audit.json and
// /debug/pprof/* on addr (e.g. "127.0.0.1:0"); either of reg and audit may
// be nil. It returns the running server and its bound address.
func StartDebugServer(addr string, reg *Registry, audit *AuditLog) (*http.Server, net.Addr, error) {
	return obs.StartDebugServer(addr, reg, audit)
}

// NewJournal returns a tier-journey journal keeping at most capPerFunc
// events per function (<= 0 uses the default, 256).
func NewJournal(capPerFunc int) *Journal { return obs.NewJournal(capPerFunc) }

// NewFlightRecorder returns a tail-sampling flight recorder dumping
// anomaly episodes as Chrome-trace files under dir. Use it as the
// tracer's sink (alone or in a MultiSink beside a Ring).
func NewFlightRecorder(dir string, opts FlightOptions) *FlightRecorder {
	return obs.NewFlightRecorder(dir, opts)
}

// NewWatchdog returns an anomaly watchdog running the default detector
// set unless opts.Detectors overrides it.
func NewWatchdog(opts WatchdogOptions) *Watchdog { return obs.NewWatchdog(opts) }

// StartOpsServer serves the full operating surface — /metrics,
// /metrics.json, /metrics.prom, /healthz, /audit.json, /journey.json,
// /flight.json and /debug/pprof/* — on addr. Any OpsState field may be
// nil; the matching endpoints degrade gracefully.
func StartOpsServer(addr string, s OpsState) (*http.Server, net.Addr, error) {
	return obs.StartOpsServer(addr, s)
}

// WatchdogProbe adapts a fault injector into a Watchdog seed probe
// (see Watchdog.SetSeedProbe): each watchdog signal evaluates one hit of
// the "watchdog" fault point, letting the chaos campaign seed anomalies
// with the injector's own 1:1 accounting.
func WatchdogProbe(in *FaultInjector) func(detail string) error {
	return faults.WatchdogProbe(in)
}

// New parses, compiles and prepares a nanojs script for execution.
func New(src string, cfg Config) (*Engine, error) { return engine.New(src, cfg) }

// Protect installs a JITBULL detector over db on the engine and returns
// it. With an empty database the engine runs with zero added overhead.
// The detector inherits the engine's audit log and metrics sink, so policy
// verdicts and DNA histograms land beside the compile-path events.
func Protect(e *Engine, db *Database) *Detector {
	d := core.NewDetector(db)
	d.Audit = e.Audit()
	d.Metrics = e.MetricsSink()
	e.SetPolicy(d)
	return d
}

// BenchmarkByName returns one benchmark of the corpus by name.
func BenchmarkByName(name string) (Benchmark, error) { return octane.ByName(name) }

// Fingerprint runs a vulnerability demonstrator code on an engine with the
// given bugs active and a recording policy installed, returning the VDC
// DNA fingerprint to install in a Database (step 1 of the paper's
// workflow). ionThreshold <= 0 uses the engine default (1500).
func Fingerprint(cve, demonstrator string, bugs BugSet, ionThreshold int) (VDC, error) {
	return vulndb.ExtractVDCFromSource(cve, demonstrator, bugs, ionThreshold)
}

// LoadDatabase reads a Database saved with Database.Save, rejecting
// corrupt (torn, truncated, bit-flipped) or structurally invalid files
// with a descriptive error.
func LoadDatabase(path string) (*Database, error) { return core.LoadDatabase(path) }

// LoadDatabaseFailSafe is LoadDatabase for the protection path: on any
// failure it returns a non-nil fail-safe Database — whose policy verdict
// is NoJIT for every function — alongside the error, so a corrupted
// database degrades to "JIT disabled", never to "protection silently off".
func LoadDatabaseFailSafe(path string) (*Database, error) {
	return core.LoadDatabaseFailSafe(path)
}

// Vulnerabilities returns the eight implemented CVEs with their
// demonstrator codes, injectable bugs, and window metadata.
func Vulnerabilities() []Vulnerability { return vulndb.All() }

// VulnerabilityByID looks up one implemented CVE.
func VulnerabilityByID(cve string) (Vulnerability, error) { return vulndb.ByID(cve) }

// Benchmarks returns the Octane-analogue corpus plus the two
// micro-benchmarks.
func Benchmarks() []Benchmark { return octane.All() }

// RenameVariant rewrites every user identifier of a script to mangled
// names (the paper's first variant-generation approach).
func RenameVariant(src string) (string, error) { return variants.Rename(src) }

// MinifyVariant renames identifiers and strips whitespace (the paper's
// second approach).
func MinifyVariant(src string) (string, error) { return variants.Minify(src) }

// PassNames returns the optimization pipeline's pass names in order.
func PassNames() []string { return passes.PassNames() }

// IsCrash reports whether err is a simulated segfault.
func IsCrash(err error) bool { return engine.IsCrash(err) }

// IsHijack reports whether err is a control-flow hijack (payload executed).
func IsHijack(err error) bool { return engine.IsHijack(err) }

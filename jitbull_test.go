package jitbull

// End-to-end tests of the public facade — the API the examples and a
// downstream user consume.

import (
	"strings"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	vuln, err := VulnerabilityByID("CVE-2019-17026")
	if err != nil {
		t.Fatal(err)
	}

	// Unprotected vulnerable engine: payload executes.
	eng, err := New(vuln.Demonstrator, Config{Bugs: vuln.Bug(), IonThreshold: 300})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := eng.Run()
	if !IsHijack(runErr) {
		t.Fatalf("exploit should hijack control flow, got %v", runErr)
	}

	// Fingerprint + protect: the renamed variant is neutralized.
	vdc, err := Fingerprint(vuln.CVE, vuln.Demonstrator, vuln.Bug(), 300)
	if err != nil {
		t.Fatal(err)
	}
	db := &Database{}
	db.Add(vdc)

	variant, err := RenameVariant(vuln.Demonstrator)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := New(variant, Config{Bugs: vuln.Bug(), IonThreshold: 300})
	if err != nil {
		t.Fatal(err)
	}
	det := Protect(prot, db)
	if _, runErr := prot.Run(); IsHijack(runErr) || IsCrash(runErr) {
		t.Fatalf("JITBULL missed the variant: %v", runErr)
	}
	if len(det.Matches) == 0 {
		t.Fatal("no DNA matches recorded")
	}
	if prot.Stats().NrDisJIT == 0 && prot.Stats().NrNoJIT == 0 {
		t.Fatalf("no go/no-go action taken: %+v", prot.Stats())
	}
}

func TestDatabasePersistenceThroughFacade(t *testing.T) {
	vuln, err := VulnerabilityByID("CVE-2019-9810")
	if err != nil {
		t.Fatal(err)
	}
	vdc, err := Fingerprint(vuln.CVE, vuln.Demonstrator, vuln.Bug(), 300)
	if err != nil {
		t.Fatal(err)
	}
	db := &Database{}
	db.Add(vdc)
	path := t.TempDir() + "/db.json"
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 1 || loaded.CVEs()[0] != vuln.CVE {
		t.Fatalf("loaded DB: %+v", loaded.CVEs())
	}
	// The loaded fingerprint must still protect.
	eng, err := New(vuln.Demonstrator, Config{Bugs: vuln.Bug(), IonThreshold: 300})
	if err != nil {
		t.Fatal(err)
	}
	Protect(eng, loaded)
	if _, runErr := eng.Run(); IsCrash(runErr) {
		t.Fatalf("persisted fingerprint failed to protect: %v", runErr)
	}
}

func TestFacadeInventory(t *testing.T) {
	if len(Vulnerabilities()) != 8 {
		t.Fatalf("vulnerabilities = %d, want 8", len(Vulnerabilities()))
	}
	if len(Benchmarks()) != 15 {
		t.Fatalf("benchmarks = %d, want 15 (13 suite + 2 micro)", len(Benchmarks()))
	}
	names := PassNames()
	if len(names) != 23 {
		t.Fatalf("passes = %d, want 23", len(names))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"GVN", "LICM", "RangeAnalysis", "BoundsCheckElimination"} {
		if !strings.Contains(joined, want) {
			t.Errorf("pipeline missing %s", want)
		}
	}
	if _, err := VulnerabilityByID("CVE-0000-1"); err == nil {
		t.Error("unknown CVE should error")
	}
}

func TestMinifyVariantFacade(t *testing.T) {
	out, err := MinifyVariant("var x = 1;\nvar y = x + 2;\n")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "\n\n") || strings.Contains(out, "x") {
		t.Fatalf("not minified/renamed: %q", out)
	}
}

func TestCrashClassification(t *testing.T) {
	vuln, err := VulnerabilityByID("CVE-2019-9813")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(vuln.Demonstrator, Config{Bugs: vuln.Bug(), IonThreshold: 300})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := eng.Run()
	if !IsCrash(runErr) {
		t.Fatalf("want simulated segfault, got %v", runErr)
	}
	if IsHijack(runErr) {
		t.Fatal("crash misclassified as hijack")
	}
}

// Package regalloc compacts the virtual register file of LIR code with a
// linear-scan allocation over the linearized op list. SSA values get dense
// frame slots that are reused once their live interval ends, shrinking the
// per-call frame the native executor allocates.
package regalloc

import (
	"sort"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/obs"
)

// AllocateWith is Allocate under a compile supervisor context (step budget
// and fault injection); fctx may be nil, in which case it cannot fail.
func AllocateWith(c *lir.Code, fctx *faults.CompileCtx) error {
	sp := fctx.Span(obs.CatCompile, "regalloc")
	regsIn := c.NumRegs
	if fctx != nil {
		if err := fctx.Step(faults.PointRegalloc, c.Name, int64(len(c.Ops))); err != nil {
			sp.EndErr(err)
			return err
		}
	}
	Allocate(c)
	sp.End(obs.I("regs_in", int64(regsIn)), obs.I("regs_out", int64(c.NumRegs)))
	return nil
}

// Allocate rewrites c's registers in place and updates NumRegs. Parameters
// keep their slots (the executor copies arguments into registers 0..n-1).
// It also attaches the basic-block metadata (leaders, loop heads) the
// superinstruction fuser consumes — the allocator already walks every
// branch for live-interval extension, so the shape falls out for free.
func Allocate(c *lir.Code) {
	c.Blocks = lir.ComputeBlocks(c)
	n := c.NumRegs
	if n == 0 {
		return
	}
	def := make([]int, n)
	last := make([]int, n)
	for i := range def {
		def[i] = -1
		last[i] = -1
	}
	touch := func(r int32, pc int) {
		if def[r] < 0 {
			def[r] = pc
		}
		last[r] = pc
	}
	forEachReg(c, func(r *int32, pc int, _ bool) { touch(*r, pc) })

	// Parameters are live from entry.
	for p := 0; p < c.NumParams && p < n; p++ {
		if def[p] < 0 {
			def[p] = 0
			last[p] = 0
		} else {
			def[p] = 0
		}
	}

	// Extend intervals across loop back edges: a value defined before the
	// branch target and used inside [target, branch] is still needed on
	// the next iteration.
	for changed := true; changed; {
		changed = false
		for pc, op := range c.Ops {
			if op.Kind != lir.KJump && op.Kind != lir.KBranchFalse {
				continue
			}
			t := int(op.Target)
			if t > pc {
				continue // forward edge
			}
			for r := 0; r < n; r++ {
				if def[r] >= 0 && def[r] < t && last[r] >= t && last[r] < pc {
					last[r] = pc
					changed = true
				}
			}
		}
	}

	// Linear scan: assign slots in order of definition point.
	type interval struct {
		reg      int
		def, end int
	}
	intervals := make([]interval, 0, n)
	for r := 0; r < n; r++ {
		if def[r] >= 0 {
			intervals = append(intervals, interval{reg: r, def: def[r], end: last[r]})
		}
	}
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].def != intervals[j].def {
			return intervals[i].def < intervals[j].def
		}
		return intervals[i].reg < intervals[j].reg
	})

	slotOf := make([]int32, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	// Parameters get their own fixed slots first.
	nextSlot := int32(c.NumParams)
	for p := 0; p < c.NumParams && p < n; p++ {
		slotOf[p] = int32(p)
	}
	type active struct {
		end  int
		slot int32
	}
	var free []int32
	var live []active
	expire := func(pc int) {
		out := live[:0]
		for _, a := range live {
			if a.end < pc {
				free = append(free, a.slot)
			} else {
				out = append(out, a)
			}
		}
		live = out
	}
	for _, iv := range intervals {
		if slotOf[iv.reg] >= 0 {
			continue // parameter
		}
		expire(iv.def)
		var slot int32
		if len(free) > 0 {
			sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
			slot = free[0]
			free = free[1:]
		} else {
			slot = nextSlot
			nextSlot++
		}
		slotOf[iv.reg] = slot
		live = append(live, active{end: iv.end, slot: slot})
	}

	maxSlot := int32(c.NumParams)
	forEachReg(c, func(r *int32, _ int, _ bool) {
		s := slotOf[*r]
		if s < 0 {
			s = 0 // unreachable register; any slot will do
		}
		*r = s
		if s+1 > maxSlot {
			maxSlot = s + 1
		}
	})
	if int(nextSlot) > int(maxSlot) {
		maxSlot = nextSlot
	}
	c.NumRegs = int(maxSlot)
}

// forEachReg visits every register reference in the code (including call
// argument lists). isDef is a best-effort hint, unused by the current
// allocator but kept for future precise liveness.
func forEachReg(c *lir.Code, fn func(r *int32, pc int, isDef bool)) {
	for pc := range c.Ops {
		op := &c.Ops[pc]
		switch op.Kind {
		case lir.KNop, lir.KJump, lir.KRetUndef, lir.KCodeBase, lir.KConst, lir.KLoadGlobal:
			// No register sources.
		case lir.KBranchFalse, lir.KNeg, lir.KNot, lir.KUnbox, lir.KGuardType,
			lir.KElemsHandle, lir.KElemsRaw, lir.KInitLen, lir.KPop, lir.KNewArr,
			lir.KAddrOf, lir.KMove, lir.KMoveTag, lir.KRetNum, lir.KRetObj,
			lir.KStoreGlobalNum, lir.KStoreGlobalObj:
			fn(&op.A, pc, false)
		case lir.KMath:
			fn(&op.A, pc, false)
			fn(&op.B, pc, false)
		case lir.KCall:
			args := c.ArgLists[op.A]
			for i := range args {
				fn(&args[i], pc, false)
			}
		default:
			fn(&op.A, pc, false)
			fn(&op.B, pc, false)
			if op.Kind == lir.KStoreElem {
				fn(&op.C, pc, false)
			}
		}
		switch op.Kind {
		case lir.KConst, lir.KMove, lir.KMoveTag, lir.KAdd, lir.KSub, lir.KMul,
			lir.KDiv, lir.KMod, lir.KPow, lir.KBitAnd, lir.KBitOr, lir.KBitXor,
			lir.KShl, lir.KShr, lir.KUshr, lir.KNeg, lir.KNot, lir.KCmp, lir.KMath,
			lir.KUnbox, lir.KGuardType, lir.KElemsHandle, lir.KElemsRaw,
			lir.KInitLen, lir.KLoadElem, lir.KPush, lir.KPop, lir.KNewArr,
			lir.KAddrOf, lir.KCodeBase, lir.KLoadGlobal, lir.KCall:
			fn(&op.Dst, pc, true)
		}
	}
}

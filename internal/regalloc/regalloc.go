// Package regalloc compacts the virtual register file of LIR code with a
// linear-scan allocation over the linearized op list. SSA values get dense
// frame slots that are reused once their live interval ends, shrinking the
// per-call frame the native executor allocates.
package regalloc

import (
	"sort"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/obs"
)

// AllocateWith is Allocate under a compile supervisor context (step budget
// and fault injection); fctx may be nil, in which case it cannot fail.
func AllocateWith(c *lir.Code, fctx *faults.CompileCtx) error {
	sp := fctx.Span(obs.CatCompile, "regalloc")
	regsIn := c.NumRegs
	if fctx != nil {
		if err := fctx.Step(faults.PointRegalloc, c.Name, int64(len(c.Ops))); err != nil {
			sp.EndErr(err)
			return err
		}
	}
	Allocate(c)
	sp.End(obs.I("regs_in", int64(regsIn)), obs.I("regs_out", int64(c.NumRegs)))
	return nil
}

// Allocate rewrites c's registers in place and updates NumRegs. Parameters
// keep their slots (the executor copies arguments into registers 0..n-1).
// It also attaches the basic-block metadata (leaders, loop heads) the
// superinstruction fuser consumes — the allocator already walks every
// branch for live-interval extension, so the shape falls out for free.
func Allocate(c *lir.Code) {
	c.Blocks = lir.ComputeBlocks(c)
	n := c.NumRegs
	if n == 0 {
		return
	}
	def := make([]int, n)
	last := make([]int, n)
	for i := range def {
		def[i] = -1
		last[i] = -1
	}
	touch := func(r int32, pc int) {
		if def[r] < 0 {
			def[r] = pc
		}
		last[r] = pc
	}
	forEachReg(c, func(r *int32, pc int, _ bool) { touch(*r, pc) })

	// Parameters are live from entry.
	for p := 0; p < c.NumParams && p < n; p++ {
		if def[p] < 0 {
			def[p] = 0
			last[p] = 0
		} else {
			def[p] = 0
		}
	}

	// OSR/deopt side tables reference registers the op stream alone may
	// consider dead: a local unused inside the loop still has to be
	// materializable at the loop header (OSR) and recoverable at a
	// speculated call (deopt). Extend those intervals to the referencing
	// pc BEFORE the back-edge fixpoint, so the fixpoint then carries them
	// around the loop — a frame-map register must never share a slot with
	// any value live in the loop, or OSR materialization would clobber it.
	extendSlots := func(slots []lir.FrameSlot, pc int) {
		for _, s := range slots {
			r := s.Reg
			if r < 0 || int(r) >= n {
				continue
			}
			if def[r] < 0 {
				def[r] = pc
			}
			if last[r] < pc {
				last[r] = pc
			}
		}
	}
	for _, e := range c.OSREntries {
		extendSlots(e.Slots, int(e.PC))
	}
	for pc, op := range c.Ops {
		if op.Kind == lir.KCallSpec && op.Target >= 0 && int(op.Target) < len(c.DeoptExits) {
			extendSlots(c.DeoptExits[op.Target].Slots, pc)
		}
	}

	// Extend intervals across loop back edges: a value defined before the
	// branch target and used inside [target, branch] is still needed on
	// the next iteration.
	for changed := true; changed; {
		changed = false
		for pc, op := range c.Ops {
			if op.Kind != lir.KJump && op.Kind != lir.KBranchFalse {
				continue
			}
			t := int(op.Target)
			if t > pc {
				continue // forward edge
			}
			for r := 0; r < n; r++ {
				if def[r] >= 0 && def[r] < t && last[r] >= t && last[r] < pc {
					last[r] = pc
					changed = true
				}
			}
		}
	}

	// Linear scan: assign slots in order of definition point.
	type interval struct {
		reg      int
		def, end int
	}
	intervals := make([]interval, 0, n)
	for r := 0; r < n; r++ {
		if def[r] >= 0 {
			intervals = append(intervals, interval{reg: r, def: def[r], end: last[r]})
		}
	}
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].def != intervals[j].def {
			return intervals[i].def < intervals[j].def
		}
		return intervals[i].reg < intervals[j].reg
	})

	slotOf := make([]int32, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	// Parameters get their own fixed slots first.
	nextSlot := int32(c.NumParams)
	for p := 0; p < c.NumParams && p < n; p++ {
		slotOf[p] = int32(p)
	}
	type active struct {
		end  int
		slot int32
	}
	var free []int32
	var live []active
	expire := func(pc int) {
		out := live[:0]
		for _, a := range live {
			if a.end < pc {
				free = append(free, a.slot)
			} else {
				out = append(out, a)
			}
		}
		live = out
	}
	for _, iv := range intervals {
		if slotOf[iv.reg] >= 0 {
			continue // parameter
		}
		expire(iv.def)
		var slot int32
		if len(free) > 0 {
			sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
			slot = free[0]
			free = free[1:]
		} else {
			slot = nextSlot
			nextSlot++
		}
		slotOf[iv.reg] = slot
		live = append(live, active{end: iv.end, slot: slot})
	}

	maxSlot := int32(c.NumParams)
	forEachReg(c, func(r *int32, _ int, _ bool) {
		s := slotOf[*r]
		if s < 0 {
			s = 0 // unreachable register; any slot will do
		}
		*r = s
		if s+1 > maxSlot {
			maxSlot = s + 1
		}
	})
	if int(nextSlot) > int(maxSlot) {
		maxSlot = nextSlot
	}
	c.NumRegs = int(maxSlot)

	// Rewrite the side tables with the same mapping as the op stream.
	mapSlots := func(slots []lir.FrameSlot) {
		for i := range slots {
			s := slotOf[slots[i].Reg]
			if s < 0 {
				s = 0
			}
			slots[i].Reg = s
		}
	}
	for i := range c.OSREntries {
		mapSlots(c.OSREntries[i].Slots)
	}
	for i := range c.DeoptExits {
		mapSlots(c.DeoptExits[i].Slots)
	}
	markEligible(c)
}

// markEligible decides, per OSR entry, whether transferring into the native
// frame at that loop header is sound: every register live at the header (in
// the post-allocation code) must be covered by the entry's frame map, since
// OSR materialization zeroes the frame and writes only frame-map registers.
// The one class of uncovered live registers the entry can absorb is
// rematerializable constants (see the reaching-defs pass below); anything
// else — hoisted handles, sunk temporaries — makes the entry ineligible.
//
// Deopt-exit registers need no extra treatment here: an exit slot's register
// is either the same definition the header frame map materializes or one
// written by ops on the path from the header to the speculated call.
func markEligible(c *lir.Code) {
	if len(c.OSREntries) == 0 {
		return
	}
	nOps := len(c.Ops)
	nRegs := c.NumRegs
	words := (nRegs + 63) / 64
	if words == 0 {
		words = 1
	}

	// Per-op register references, uses before defs (forEachReg's order).
	type ref struct {
		reg   int32
		isDef bool
	}
	refs := make([][]ref, nOps)
	forEachReg(c, func(r *int32, pc int, isDef bool) {
		refs[pc] = append(refs[pc], ref{*r, isDef})
	})

	// Block structure from the leaders regalloc already computed.
	var starts []int32
	for _, l := range c.Blocks.Leaders {
		if int(l) < nOps {
			starts = append(starts, l)
		}
	}
	nb := len(starts)
	if nb == 0 {
		return
	}
	blockOf := make(map[int32]int, nb)
	for i, s := range starts {
		blockOf[s] = i
	}
	end := func(i int) int {
		if i+1 < nb {
			return int(starts[i+1])
		}
		return nOps
	}

	bitset := func() []uint64 { return make([]uint64, words) }
	set := func(b []uint64, r int32) {
		if r >= 0 && int(r) < nRegs {
			b[r/64] |= 1 << (uint(r) % 64)
		}
	}
	has := func(b []uint64, r int32) bool {
		return r >= 0 && int(r) < nRegs && b[r/64]&(1<<(uint(r)%64)) != 0
	}

	gen := make([][]uint64, nb)
	kill := make([][]uint64, nb)
	succs := make([][]int, nb)
	for i := 0; i < nb; i++ {
		gen[i], kill[i] = bitset(), bitset()
		for pc := int(starts[i]); pc < end(i); pc++ {
			for _, rf := range refs[pc] {
				if rf.isDef {
					set(kill[i], rf.reg)
				} else if !has(kill[i], rf.reg) {
					set(gen[i], rf.reg)
				}
			}
		}
		lastOp := &c.Ops[end(i)-1]
		addSucc := func(target int32) {
			if bi, ok := blockOf[target]; ok {
				succs[i] = append(succs[i], bi)
			}
		}
		switch lastOp.Kind {
		case lir.KJump:
			addSucc(lastOp.Target)
		case lir.KBranchFalse:
			addSucc(lastOp.Target)
			if end(i) < nOps {
				addSucc(int32(end(i)))
			}
		case lir.KRetNum, lir.KRetObj, lir.KRetUndef:
			// No successors.
		default:
			if end(i) < nOps {
				addSucc(int32(end(i)))
			}
		}
	}

	liveIn := make([][]uint64, nb)
	for i := range liveIn {
		liveIn[i] = bitset()
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			out := bitset()
			for _, s := range succs[i] {
				for w := 0; w < words; w++ {
					out[w] |= liveIn[s][w]
				}
			}
			for w := 0; w < words; w++ {
				nv := gen[i][w] | (out[w] &^ kill[i][w])
				if nv != liveIn[i][w] {
					liveIn[i][w] = nv
					changed = true
				}
			}
		}
	}

	// Reaching definitions, block level, one lattice value per register:
	// rdNone (no def on any path yet), a unique def pc, or rdMulti. After
	// allocation many SSA values share one slot, so "the slot is written
	// several times somewhere" says nothing about a given loop header —
	// what matters is which def *reaches* it. GVN parks loop-invariant
	// constants in the preheader, where they are the unique reaching def
	// of their slot even when the same slot served an earlier loop; those
	// the OSR prologue can rematerialize instead of rejecting the entry.
	const (
		rdNone  = int32(-1)
		rdMulti = int32(-2)
	)
	preds := make([][]int, nb)
	for i, ss := range succs {
		for _, s := range ss {
			preds[s] = append(preds[s], i)
		}
	}
	lastDef := make([][]int32, nb)
	for i := 0; i < nb; i++ {
		lastDef[i] = make([]int32, nRegs)
		for r := range lastDef[i] {
			lastDef[i][r] = rdNone
		}
		for pc := int(starts[i]); pc < end(i); pc++ {
			for _, rf := range refs[pc] {
				if rf.isDef && rf.reg >= 0 && int(rf.reg) < nRegs {
					lastDef[i][rf.reg] = int32(pc)
				}
			}
		}
	}
	merge := func(a, b int32) int32 {
		switch {
		case a == rdNone:
			return b
		case b == rdNone:
			return a
		case a == b:
			return a
		default:
			return rdMulti
		}
	}
	rdIn := make([][]int32, nb)
	rdOut := make([][]int32, nb)
	for i := 0; i < nb; i++ {
		rdIn[i] = make([]int32, nRegs)
		rdOut[i] = make([]int32, nRegs)
		for r := 0; r < nRegs; r++ {
			rdIn[i][r] = rdNone
			rdOut[i][r] = lastDef[i][r]
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < nb; i++ {
			for r := 0; r < nRegs; r++ {
				v := rdNone
				for _, p := range preds[i] {
					v = merge(v, rdOut[p][r])
				}
				if v != rdIn[i][r] {
					rdIn[i][r] = v
					changed = true
				}
				o := lastDef[i][r]
				if o == rdNone {
					o = v
				}
				if o != rdOut[i][r] {
					rdOut[i][r] = o
					changed = true
				}
			}
		}
	}

	for ei := range c.OSREntries {
		e := &c.OSREntries[ei]
		bi, ok := blockOf[e.PC]
		if !ok {
			e.Eligible = false
			continue
		}
		covered := bitset()
		objSlot := bitset()  // frame-map registers holding array handles
		elemsReg := bitset() // registers resolved to elements addresses (RematElems)
		for _, s := range e.Slots {
			set(covered, s.Reg)
			if s.Kind == lir.SlotObj {
				set(objSlot, s.Reg)
			}
		}
		e.Consts = nil
		e.Remats = nil
		var unresolved []int32
		for r := int32(0); int(r) < nRegs; r++ {
			if has(liveIn[bi], r) && !has(covered, r) {
				unresolved = append(unresolved, r)
			}
		}
		// Resolve uncovered live registers to prologue rematerializations,
		// sweeping to a fixpoint because a cached length (KInitLen) depends
		// on a cached elements address (KElemsHandle) that may carry a
		// higher register number. The sweep order puts dependencies first
		// in e.Remats.
		for progress := true; progress && len(unresolved) > 0; {
			progress = false
			next := unresolved[:0]
			for _, r := range unresolved {
				d := rdIn[bi][r]
				switch {
				case d >= 0 && c.Ops[d].Kind == lir.KConst:
					e.Consts = append(e.Consts, lir.ConstSlot{Reg: r, Imm: c.Ops[d].Imm})
				case d >= 0 && c.Ops[d].Kind == lir.KElemsHandle && has(objSlot, c.Ops[d].A):
					// A preheader-cached elements address of an array the
					// frame map materializes: re-derive it from the array
					// handle. The unique-reaching-def lattice guarantees the
					// cache the loop body reads is this one.
					e.Remats = append(e.Remats, lir.RematOp{Kind: lir.RematElems, Reg: r, Src: c.Ops[d].A})
					set(elemsReg, r)
				case d >= 0 && c.Ops[d].Kind == lir.KInitLen && has(elemsReg, c.Ops[d].A):
					// A preheader-cached length read through a re-derived
					// elements address; the hoist proved it loop-invariant.
					e.Remats = append(e.Remats, lir.RematOp{Kind: lir.RematLen, Reg: r, Src: c.Ops[d].A})
				default:
					next = append(next, r)
					continue
				}
				progress = true
			}
			unresolved = next
		}
		e.Eligible = len(unresolved) == 0
	}
}

// forEachReg visits every register reference in the code (including call
// argument lists). isDef is a best-effort hint, unused by the current
// allocator but kept for future precise liveness.
func forEachReg(c *lir.Code, fn func(r *int32, pc int, isDef bool)) {
	for pc := range c.Ops {
		op := &c.Ops[pc]
		switch op.Kind {
		case lir.KNop, lir.KJump, lir.KRetUndef, lir.KCodeBase, lir.KConst, lir.KLoadGlobal,
			lir.KOSRPoint:
			// No register sources. (KOSRPoint's frame map is a side table,
			// handled explicitly by Allocate, not an op-stream reference.)
		case lir.KBranchFalse, lir.KNeg, lir.KNot, lir.KUnbox, lir.KGuardType,
			lir.KElemsHandle, lir.KElemsRaw, lir.KInitLen, lir.KPop, lir.KNewArr,
			lir.KAddrOf, lir.KMove, lir.KMoveTag, lir.KRetNum, lir.KRetObj,
			lir.KStoreGlobalNum, lir.KStoreGlobalObj:
			fn(&op.A, pc, false)
		case lir.KMath:
			fn(&op.A, pc, false)
			fn(&op.B, pc, false)
		case lir.KCall, lir.KCallSpec:
			args := c.ArgLists[op.A]
			for i := range args {
				fn(&args[i], pc, false)
			}
		default:
			fn(&op.A, pc, false)
			fn(&op.B, pc, false)
			if op.Kind == lir.KStoreElem {
				fn(&op.C, pc, false)
			}
		}
		switch op.Kind {
		case lir.KConst, lir.KMove, lir.KMoveTag, lir.KAdd, lir.KSub, lir.KMul,
			lir.KDiv, lir.KMod, lir.KPow, lir.KBitAnd, lir.KBitOr, lir.KBitXor,
			lir.KShl, lir.KShr, lir.KUshr, lir.KNeg, lir.KNot, lir.KCmp, lir.KMath,
			lir.KUnbox, lir.KGuardType, lir.KElemsHandle, lir.KElemsRaw,
			lir.KInitLen, lir.KLoadElem, lir.KPush, lir.KPop, lir.KNewArr,
			lir.KAddrOf, lir.KCodeBase, lir.KLoadGlobal, lir.KCall, lir.KCallSpec:
			fn(&op.Dst, pc, true)
		}
	}
}

package regalloc

import (
	"testing"

	"github.com/jitbull/jitbull/internal/lir"
)

// mk builds a tiny LIR program by hand.
func mk(numParams int, ops ...lir.Op) *lir.Code {
	c := &lir.Code{Name: "t", NumParams: numParams, Ops: ops}
	max := int32(numParams)
	visit := func(r int32) {
		if r+1 > max {
			max = r + 1
		}
	}
	for _, op := range ops {
		visit(op.Dst)
		visit(op.A)
		visit(op.B)
		visit(op.C)
	}
	c.NumRegs = int(max)
	return c
}

func TestAllocateReusesDeadSlots(t *testing.T) {
	// r2 and r3 have disjoint lifetimes; they must share a slot.
	c := mk(1,
		lir.Op{Kind: lir.KConst, Dst: 2, Imm: 1},
		lir.Op{Kind: lir.KAdd, Dst: 4, A: 2, B: 0},
		lir.Op{Kind: lir.KConst, Dst: 3, Imm: 2}, // r2 dead here
		lir.Op{Kind: lir.KAdd, Dst: 5, A: 3, B: 4},
		lir.Op{Kind: lir.KRetNum, A: 5},
	)
	before := c.NumRegs
	Allocate(c)
	if c.NumRegs >= before {
		t.Fatalf("no compaction: %d -> %d", before, c.NumRegs)
	}
	// Semantics must be preserved: recompute manually.
	if c.Ops[0].Dst == c.Ops[1].Dst {
		t.Fatal("def of r2 clobbered by its user's dst")
	}
}

func TestAllocateKeepsParamSlots(t *testing.T) {
	c := mk(2,
		lir.Op{Kind: lir.KAdd, Dst: 3, A: 0, B: 1},
		lir.Op{Kind: lir.KRetNum, A: 3},
	)
	Allocate(c)
	if c.Ops[0].A != 0 || c.Ops[0].B != 1 {
		t.Fatalf("parameters must keep registers 0..n-1: %+v", c.Ops[0])
	}
}

func TestAllocateLoopLiveness(t *testing.T) {
	// r2 is defined before the loop and read inside it; it must not share
	// a slot with anything written inside the loop.
	c := mk(1,
		lir.Op{Kind: lir.KConst, Dst: 2, Imm: 7}, // loop-invariant
		lir.Op{Kind: lir.KConst, Dst: 3, Imm: 0}, // induction
		// pc 2: loop body
		lir.Op{Kind: lir.KAdd, Dst: 4, A: 3, B: 2},
		lir.Op{Kind: lir.KMove, Dst: 3, A: 4},
		lir.Op{Kind: lir.KCmp, Dst: 5, A: 3, B: 0, Aux: 1},
		lir.Op{Kind: lir.KBranchFalse, A: 5, Target: 7},
		lir.Op{Kind: lir.KJump, Target: 2},
		lir.Op{Kind: lir.KRetNum, A: 3},
	)
	Allocate(c)
	inv := c.Ops[0].Dst
	for pc := 2; pc <= 6; pc++ {
		if c.Ops[pc].Kind != lir.KBranchFalse && c.Ops[pc].Kind != lir.KJump &&
			c.Ops[pc].Dst == inv {
			t.Fatalf("loop-invariant slot %d clobbered at pc %d: %+v", inv, pc, c.Ops[pc])
		}
	}
}

func TestAllocateEmptyCode(t *testing.T) {
	c := &lir.Code{Name: "empty"}
	Allocate(c) // must not panic
	c2 := mk(0, lir.Op{Kind: lir.KRetUndef})
	Allocate(c2)
}

func TestAllocateCallArgs(t *testing.T) {
	c := &lir.Code{
		Name:      "callargs",
		NumParams: 1,
		ArgLists:  [][]int32{{2, 3}},
		Ops: []lir.Op{
			{Kind: lir.KConst, Dst: 2, Imm: 1},
			{Kind: lir.KConst, Dst: 3, Imm: 2},
			{Kind: lir.KCall, Dst: 4, A: 0, Aux: 1},
			{Kind: lir.KRetNum, A: 4},
		},
		NumRegs: 5,
	}
	Allocate(c)
	// Both argument registers must stay distinct and alive up to the call.
	if c.ArgLists[0][0] == c.ArgLists[0][1] {
		t.Fatalf("call args merged: %v", c.ArgLists[0])
	}
}

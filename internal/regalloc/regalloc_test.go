package regalloc

import (
	"testing"

	"github.com/jitbull/jitbull/internal/lir"
)

// mk builds a tiny LIR program by hand.
func mk(numParams int, ops ...lir.Op) *lir.Code {
	c := &lir.Code{Name: "t", NumParams: numParams, Ops: ops}
	max := int32(numParams)
	visit := func(r int32) {
		if r+1 > max {
			max = r + 1
		}
	}
	for _, op := range ops {
		visit(op.Dst)
		visit(op.A)
		visit(op.B)
		visit(op.C)
	}
	c.NumRegs = int(max)
	return c
}

func TestAllocateReusesDeadSlots(t *testing.T) {
	// r2 and r3 have disjoint lifetimes; they must share a slot.
	c := mk(1,
		lir.Op{Kind: lir.KConst, Dst: 2, Imm: 1},
		lir.Op{Kind: lir.KAdd, Dst: 4, A: 2, B: 0},
		lir.Op{Kind: lir.KConst, Dst: 3, Imm: 2}, // r2 dead here
		lir.Op{Kind: lir.KAdd, Dst: 5, A: 3, B: 4},
		lir.Op{Kind: lir.KRetNum, A: 5},
	)
	before := c.NumRegs
	Allocate(c)
	if c.NumRegs >= before {
		t.Fatalf("no compaction: %d -> %d", before, c.NumRegs)
	}
	// Semantics must be preserved: recompute manually.
	if c.Ops[0].Dst == c.Ops[1].Dst {
		t.Fatal("def of r2 clobbered by its user's dst")
	}
}

func TestAllocateKeepsParamSlots(t *testing.T) {
	c := mk(2,
		lir.Op{Kind: lir.KAdd, Dst: 3, A: 0, B: 1},
		lir.Op{Kind: lir.KRetNum, A: 3},
	)
	Allocate(c)
	if c.Ops[0].A != 0 || c.Ops[0].B != 1 {
		t.Fatalf("parameters must keep registers 0..n-1: %+v", c.Ops[0])
	}
}

func TestAllocateLoopLiveness(t *testing.T) {
	// r2 is defined before the loop and read inside it; it must not share
	// a slot with anything written inside the loop.
	c := mk(1,
		lir.Op{Kind: lir.KConst, Dst: 2, Imm: 7}, // loop-invariant
		lir.Op{Kind: lir.KConst, Dst: 3, Imm: 0}, // induction
		// pc 2: loop body
		lir.Op{Kind: lir.KAdd, Dst: 4, A: 3, B: 2},
		lir.Op{Kind: lir.KMove, Dst: 3, A: 4},
		lir.Op{Kind: lir.KCmp, Dst: 5, A: 3, B: 0, Aux: 1},
		lir.Op{Kind: lir.KBranchFalse, A: 5, Target: 7},
		lir.Op{Kind: lir.KJump, Target: 2},
		lir.Op{Kind: lir.KRetNum, A: 3},
	)
	Allocate(c)
	inv := c.Ops[0].Dst
	for pc := 2; pc <= 6; pc++ {
		if c.Ops[pc].Kind != lir.KBranchFalse && c.Ops[pc].Kind != lir.KJump &&
			c.Ops[pc].Dst == inv {
			t.Fatalf("loop-invariant slot %d clobbered at pc %d: %+v", inv, pc, c.Ops[pc])
		}
	}
}

func TestAllocateEmptyCode(t *testing.T) {
	c := &lir.Code{Name: "empty"}
	Allocate(c) // must not panic
	c2 := mk(0, lir.Op{Kind: lir.KRetUndef})
	Allocate(c2)
}

// arrayLoopOSR builds the GVN shape of an array loop: elements address,
// length, and a stride constant all hoisted to the preheader, so their
// registers are live across the header with no interpreter local backing
// them. The OSR entry's frame map carries only the real locals (array
// handle, induction variable, accumulator).
func arrayLoopOSR() *lir.Code {
	c := mk(1,
		lir.Op{Kind: lir.KGuardType, Dst: 0, A: 0, Aux: 1}, // 0: array param
		lir.Op{Kind: lir.KConst, Dst: 1, Imm: 0},           // 1: i = 0
		lir.Op{Kind: lir.KConst, Dst: 2, Imm: 0},           // 2: s = 0
		lir.Op{Kind: lir.KElemsHandle, Dst: 3, A: 0},       // 3: hoisted elems
		lir.Op{Kind: lir.KInitLen, Dst: 4, A: 3},           // 4: hoisted len
		lir.Op{Kind: lir.KConst, Dst: 5, Imm: 3},           // 5: hoisted stride
		lir.Op{Kind: lir.KOSRPoint, Aux: 0},                // 6: loop header
		lir.Op{Kind: lir.KCmp, Dst: 6, A: 1, B: 4, Aux: 1}, // 7: i < len
		lir.Op{Kind: lir.KBranchFalse, A: 6, Target: 16},   // 8
		lir.Op{Kind: lir.KBoundsCheck, A: 1, B: 4},         // 9
		lir.Op{Kind: lir.KLoadElem, Dst: 7, A: 3, B: 1},    // 10
		lir.Op{Kind: lir.KMul, Dst: 7, A: 7, B: 5},         // 11
		lir.Op{Kind: lir.KAdd, Dst: 2, A: 2, B: 7},         // 12
		lir.Op{Kind: lir.KConst, Dst: 7, Imm: 1},           // 13
		lir.Op{Kind: lir.KAdd, Dst: 1, A: 1, B: 7},         // 14
		lir.Op{Kind: lir.KJump, Target: 6},                 // 15: back edge
		lir.Op{Kind: lir.KRetNum, A: 2},                    // 16
	)
	c.OSREntries = []lir.OSREntry{{
		Ordinal: 0, PC: 6,
		Slots: []lir.FrameSlot{
			{Slot: 0, Reg: 0, Kind: lir.SlotObj},
			{Slot: 1, Reg: 1, Kind: lir.SlotNum},
			{Slot: 2, Reg: 2, Kind: lir.SlotNum},
		},
	}}
	return c
}

// TestMarkEligibleRematerializesArrayAccessors: the hoisted elems address
// and the length read through it must land in the entry's Remats table —
// in dependency order, rooted at the frame map's object slot — and the
// hoisted stride in Consts, leaving the entry eligible.
func TestMarkEligibleRematerializesArrayAccessors(t *testing.T) {
	c := arrayLoopOSR()
	Allocate(c)
	// Allocate rewrites registers in place; read the hoisted defs after.
	length, stride := c.Ops[4].Dst, c.Ops[5].Dst
	e := &c.OSREntries[0]
	if !e.Eligible {
		t.Fatalf("array loop with hoisted accessors must stay eligible: %+v", e)
	}
	if len(e.Consts) != 1 || e.Consts[0].Imm != 3 || e.Consts[0].Reg != stride {
		t.Fatalf("stride not rematerialized as a const: %+v", e.Consts)
	}
	if len(e.Remats) != 2 {
		t.Fatalf("want [elems, len] remats, got %+v", e.Remats)
	}
	if e.Remats[0].Kind != lir.RematElems || e.Remats[0].Reg != c.Ops[3].Dst ||
		e.Remats[0].Src != e.Slots[0].Reg {
		t.Fatalf("elems remat must re-derive from the frame map's array slot: %+v (slots %+v)",
			e.Remats[0], e.Slots)
	}
	if e.Remats[1].Kind != lir.RematLen || e.Remats[1].Reg != length ||
		e.Remats[1].Src != e.Remats[0].Reg {
		t.Fatalf("length remat must read through the re-derived elems register (dependency order): %+v",
			e.Remats)
	}
}

// TestMarkEligibleRejectsUnrootedElems: a KElemsHandle whose source is not
// an object slot in the frame map cannot be re-derived at entry (the
// prologue would read a number as an array handle) — the entry must be
// ineligible, not silently wrong.
func TestMarkEligibleRejectsUnrootedElems(t *testing.T) {
	c := arrayLoopOSR()
	c.OSREntries[0].Slots[0].Kind = lir.SlotNum
	Allocate(c)
	if c.OSREntries[0].Eligible {
		t.Fatalf("elems over a non-object slot must reject the entry: %+v", c.OSREntries[0])
	}
	if len(c.OSREntries[0].Remats) != 0 {
		t.Fatalf("rejected entry must not carry remats: %+v", c.OSREntries[0].Remats)
	}
}

// TestMarkEligibleRejectsNonRematerializable: a preheader temporary that is
// neither a constant nor an array accessor (here n+n) is live across the
// header with no way to reconstruct it — the entry must be ineligible.
func TestMarkEligibleRejectsNonRematerializable(t *testing.T) {
	c := mk(1,
		lir.Op{Kind: lir.KUnbox, Dst: 0, A: 0},             // 0
		lir.Op{Kind: lir.KConst, Dst: 1, Imm: 0},           // 1: i = 0
		lir.Op{Kind: lir.KAdd, Dst: 2, A: 0, B: 0},         // 2: hoisted n+n
		lir.Op{Kind: lir.KOSRPoint, Aux: 0},                // 3: header
		lir.Op{Kind: lir.KCmp, Dst: 3, A: 1, B: 0, Aux: 1}, // 4
		lir.Op{Kind: lir.KBranchFalse, A: 3, Target: 8},    // 5
		lir.Op{Kind: lir.KAdd, Dst: 1, A: 1, B: 2},         // 6
		lir.Op{Kind: lir.KJump, Target: 3},                 // 7
		lir.Op{Kind: lir.KRetNum, A: 1},                    // 8
	)
	c.OSREntries = []lir.OSREntry{{
		Ordinal: 0, PC: 3,
		Slots: []lir.FrameSlot{
			{Slot: 0, Reg: 0, Kind: lir.SlotNum},
			{Slot: 1, Reg: 1, Kind: lir.SlotNum},
		},
	}}
	Allocate(c)
	if c.OSREntries[0].Eligible {
		t.Fatal("uncoverable preheader temporary must reject the entry")
	}
}

func TestAllocateCallArgs(t *testing.T) {
	c := &lir.Code{
		Name:      "callargs",
		NumParams: 1,
		ArgLists:  [][]int32{{2, 3}},
		Ops: []lir.Op{
			{Kind: lir.KConst, Dst: 2, Imm: 1},
			{Kind: lir.KConst, Dst: 3, Imm: 2},
			{Kind: lir.KCall, Dst: 4, A: 0, Aux: 1},
			{Kind: lir.KRetNum, A: 4},
		},
		NumRegs: 5,
	}
	Allocate(c)
	// Both argument registers must stay distinct and alive up to the call.
	if c.ArgLists[0][0] == c.ArgLists[0][1] {
		t.Fatalf("call args merged: %v", c.ArgLists[0])
	}
}

package heap

import (
	"testing"
	"testing/quick"
)

func TestAllocAndAccess(t *testing.T) {
	a := New(1024)
	h, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := a.Length(h); n != 4 {
		t.Fatalf("length = %d, want 4", n)
	}
	if c, _ := a.Capacity(h); c != 4 {
		t.Fatalf("capacity = %d, want 4", c)
	}
	if err := a.Set(h, 2, 3.5); err != nil {
		t.Fatal(err)
	}
	v, present, crash := a.Get(h, 2)
	if crash != nil || !present || v != 3.5 {
		t.Fatalf("Get = %v %v %v", v, present, crash)
	}
}

func TestHolesReadAsAbsent(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(4)
	if _, present, _ := a.Get(h, 10); present {
		t.Error("read past length should be a hole")
	}
	if _, present, _ := a.Get(h, -1); present {
		t.Error("negative index should be a hole")
	}
}

func TestAdjacentAllocation(t *testing.T) {
	a := New(1024)
	h1, _ := a.Alloc(8)
	h2, _ := a.Alloc(8)
	e1, _ := a.Elems(h1)
	e2, _ := a.Elems(h2)
	// h2's header must sit immediately after h1's payload.
	if e2 != e1+8+2 {
		t.Fatalf("arrays not adjacent: elems %d and %d", e1, e2)
	}
}

func TestRawOOBWriteCorruptsNeighbourLength(t *testing.T) {
	a := New(1024)
	h1, _ := a.Alloc(8)
	h2, _ := a.Alloc(8)
	e1, _ := a.Elems(h1)
	// Simulate a JITed store whose bounds check was wrongly eliminated:
	// index 8 lands exactly on h2's length header.
	if crash := a.RawStore(e1+8, 1e9); crash != nil {
		t.Fatalf("in-heap raw store must not crash: %v", crash)
	}
	if n, _ := a.Length(h2); n != 1e9 {
		t.Fatalf("neighbour length = %d, want corrupted 1e9", n)
	}
}

func TestCorruptedLengthGivesReadPrimitive(t *testing.T) {
	a := New(1024)
	h1, _ := a.Alloc(8)
	h2, _ := a.Alloc(8)
	a.Set(h2, 0, 77)
	e1, _ := a.Elems(h1)
	e2, _ := a.Elems(h2)
	a.RawStore(e1+8, 1e9) // corrupt h2.length... wait, e1+8 is h2's header
	_ = e2
	// h2's length is now huge; interpreter-style Get trusts it, so h1 can't
	// but h2 can read far beyond its capacity — i.e. an arena read primitive.
	if n, _ := a.Length(h2); n != 1e9 {
		t.Fatal("setup failed")
	}
	v, present, crash := a.Get(h2, 0)
	if crash != nil || !present || v != 77 {
		t.Fatalf("sanity read failed: %v %v %v", v, present, crash)
	}
	// Reading within the mapped heap but outside h2's real capacity works.
	if _, present, crash := a.Get(h2, 100); a.Top() > e2+100 && (crash != nil || !present) {
		t.Fatalf("read primitive blocked: present=%v crash=%v", present, crash)
	}
}

func TestUnmappedAccessCrashes(t *testing.T) {
	a := New(256)
	h, _ := a.Alloc(4)
	e, _ := a.Elems(h)
	// Far beyond the allocation top, inside the unmapped gap.
	if crash := a.RawStore(e+200, 1); crash == nil {
		t.Fatal("store into unmapped gap must crash")
	}
	if a.Crashed() == nil {
		t.Fatal("crash must be recorded")
	}
	if _, crash := a.RawLoad(-5); crash == nil {
		t.Fatal("negative address must crash")
	}
}

func TestCodeRegionIntegrity(t *testing.T) {
	a := New(256)
	if a.CodeIntegrityViolation() != -1 {
		t.Fatal("fresh arena must have intact code region")
	}
	if !a.CodePointerOK(3) {
		t.Fatal("code pointer 3 must start intact")
	}
	// The code region is mapped: a precise OOB write can reach it (W^X
	// violation through the corrupted-array primitive).
	if crash := a.RawStore(a.CodeBase()+3, 123); crash != nil {
		t.Fatalf("write to code region: %v", crash)
	}
	if a.CodePointerOK(3) {
		t.Fatal("overwrite must be detected")
	}
	if a.CodeIntegrityViolation() != 3 {
		t.Fatalf("violation index = %d, want 3", a.CodeIntegrityViolation())
	}
}

func TestShrinkReclaimsTail(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(12)
	if err := a.SetLength(h, 4); err != nil {
		t.Fatal(err)
	}
	if n, _ := a.Length(h); n != 4 {
		t.Fatalf("length = %d", n)
	}
	if c, _ := a.Capacity(h); c != 4 {
		t.Fatalf("capacity = %d, want shrunk to 4", c)
	}
	// The shrunken array was the top allocation, so its reclaimed tail
	// folds back into bump space (no tracked free block)...
	if a.FreeBlocks() != 0 {
		t.Fatalf("free blocks = %d, want 0 (tail folded into bump space)", a.FreeBlocks())
	}
	// ...and a following allocation still lands right inside the reclaimed
	// tail, adjacent to the shrunken array — the heap-grooming step of the
	// exploit chain.
	e, _ := a.Elems(h)
	h2, _ := a.Alloc(4)
	e2, _ := a.Elems(h2)
	if e2 != e+4+2 {
		t.Fatalf("groomed alloc at %d, want %d (inside reclaimed tail)", e2, e+4+2)
	}
}

func TestShrinkOfInteriorArrayTracksFreeBlock(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(12)
	if _, err := a.Alloc(4); err != nil { // pin the top so the tail cannot fold
		t.Fatal(err)
	}
	if err := a.SetLength(h, 4); err != nil {
		t.Fatal(err)
	}
	if a.FreeBlocks() != 1 {
		t.Fatalf("free blocks = %d, want 1", a.FreeBlocks())
	}
	e, _ := a.Elems(h)
	h2, _ := a.Alloc(6)
	e2, _ := a.Elems(h2)
	if e2 != e+4+2 {
		t.Fatalf("groomed alloc at %d, want %d (inside reclaimed tail)", e2, e+4+2)
	}
}

func TestFreeListCoalesces(t *testing.T) {
	a := New(1 << 12)
	h1, _ := a.Alloc(20)
	h2, _ := a.Alloc(20)
	if _, err := a.Alloc(2); err != nil { // pin the top
		t.Fatal(err)
	}
	a.SetLength(h2, 2) // frees 18 cells
	a.SetLength(h1, 2) // frees 18 cells adjacent (after h1's new tail)... separate blocks
	// Churn: repeated grow/shrink must not leak arena space to
	// fragmentation.
	before := a.Top()
	for i := 0; i < 200; i++ {
		a.SetLength(h1, 40) // grow (realloc)
		a.SetLength(h1, 2)  // shrink
	}
	if a.Top() > before+200 {
		t.Fatalf("fragmentation leak: top grew from %d to %d", before, a.Top())
	}
}

func TestShrinkTooSmallTailKeepsCapacity(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(5)
	a.SetLength(h, 4) // tail of 1 cell is below minFreeCells
	if c, _ := a.Capacity(h); c != 5 {
		t.Fatalf("capacity = %d, want unchanged 5", c)
	}
	if n, _ := a.Length(h); n != 4 {
		t.Fatalf("length = %d, want 4", n)
	}
}

func TestGrowWithinCapacityAfterShrinkViaSetLength(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(8)
	a.Set(h, 5, 42)
	a.SetLength(h, 10) // grow within... capacity is 8, so this reallocates
	if n, _ := a.Length(h); n != 10 {
		t.Fatalf("length = %d", n)
	}
	v, present, _ := a.Get(h, 5)
	if !present || v != 42 {
		t.Fatalf("element lost across growth: %v %v", v, present)
	}
	if v, present, _ := a.Get(h, 9); !present || v != 0 {
		t.Fatalf("new slot should read as 0 (initialized), got %v %v", v, present)
	}
}

func TestSetBeyondCapacityGrows(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(2)
	if err := a.Set(h, 10, 7); err != nil {
		t.Fatal(err)
	}
	if n, _ := a.Length(h); n != 11 {
		t.Fatalf("length = %d, want 11", n)
	}
	if v, present, _ := a.Get(h, 10); !present || v != 7 {
		t.Fatalf("grown element: %v %v", v, present)
	}
}

func TestSetBetweenLengthAndCapacityExtends(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(8)
	a.SetLength(h, 2) // tail reclaimed? 8-2=6 >= 3 so capacity shrinks to 2
	h2, _ := a.Alloc(2)
	_ = h2
	// Fresh array with capacity > length via push-driven growth.
	h3, _ := a.Alloc(0)
	a.Push(h3, 1) // capacity grows to >= 4
	c, _ := a.Capacity(h3)
	if c < 4 {
		t.Fatalf("capacity after push = %d", c)
	}
	a.Set(h3, 2, 9) // within capacity, beyond length
	if n, _ := a.Length(h3); n != 3 {
		t.Fatalf("length = %d, want 3", n)
	}
}

func TestPushPop(t *testing.T) {
	a := New(1024)
	h, _ := a.Alloc(0)
	for i := 0; i < 10; i++ {
		if _, err := a.Push(h, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := a.Length(h); n != 10 {
		t.Fatalf("length = %d", n)
	}
	for i := 9; i >= 0; i-- {
		v, ok := a.Pop(h)
		if !ok || v != float64(i) {
			t.Fatalf("pop %d: %v %v", i, v, ok)
		}
	}
	if _, ok := a.Pop(h); ok {
		t.Fatal("pop of empty array should report not-ok")
	}
}

func TestOOM(t *testing.T) {
	a := New(64)
	if _, err := a.Alloc(1000); err == nil {
		t.Fatal("expected OOM")
	}
	// The arena must still work after a failed allocation.
	h, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Set(h, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	a := New(256)
	h, _ := a.Alloc(4)
	a.RawStore(a.CodeBase()+1, 0) // corrupt code region
	_ = h
	a.Reset()
	if a.Top() != 0 || a.HandleCount() != 0 || a.CodeIntegrityViolation() != -1 {
		t.Fatal("Reset must restore a pristine arena")
	}
}

func TestFirstFitReusesFreedBlocks(t *testing.T) {
	a := New(1 << 10)
	h1, _ := a.Alloc(20)
	if _, err := a.Alloc(2); err != nil { // pin the top so the tail stays a tracked block
		t.Fatal(err)
	}
	topAfter := a.Top()
	a.SetLength(h1, 2) // frees 18 cells into the free list
	h2, _ := a.Alloc(10)
	if a.Top() != topAfter {
		t.Fatalf("allocation should have been served from the free list")
	}
	e1, _ := a.Elems(h1)
	e2, _ := a.Elems(h2)
	if e2 != e1+2+2 {
		t.Fatalf("h2 at %d, want carved at %d", e2, e1+4)
	}
}

func TestPropertyGetSetRoundTrip(t *testing.T) {
	a := New(1 << 14)
	h, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint8, v float64) bool {
		i := int(idx) % 64
		if err := a.Set(h, i, v); err != nil {
			return false
		}
		got, present, crash := a.Get(h, i)
		return crash == nil && present && (got == v || (got != got && v != v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyLengthNeverNegative(t *testing.T) {
	a := New(1 << 14)
	h, _ := a.Alloc(16)
	f := func(n uint16) bool {
		if err := a.SetLength(h, int(n%200)); err != nil {
			return false
		}
		got, _ := a.Length(h)
		return got == int(n%200)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if err := a.SetLength(h, -1); err == nil {
		t.Error("negative length must be rejected")
	}
}

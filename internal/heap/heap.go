// Package heap implements the shared array arena used by every execution
// tier of the jitbull runtime.
//
// The arena models a JS engine heap closely enough that JIT-bug exploits are
// *observable*:
//
//   - Arrays are allocated contiguously: a header of two cells (length,
//     capacity) immediately followed by the payload cells. Adjacent
//     allocations sit next to each other, so an out-of-bounds write through
//     one array corrupts its neighbour's header — the classic first step of
//     the CVE-2019-17026 proof of concept.
//   - Shrinking an array via `.length = n` reclaims the tail cells into a
//     free list (SpiderMonkey reclaims shrunken elements), enabling
//     heap-grooming: a later allocation can be placed inside the reclaimed
//     region.
//   - The element-access fast path *trusts the length header* (as real
//     engines trust the butterfly/elements header), so corrupting a length
//     cell yields an arbitrary arena read/write primitive.
//   - A "JIT code" region at the top of the address space holds one code
//     pointer per compiled function. Overwriting one and then calling the
//     function models a control-flow hijack ("payload executed").
//   - Accesses outside the mapped regions (past the allocation top, or in
//     the guard gap below the code region) are a simulated segfault: the
//     arena records a crash and execution aborts.
package heap

import (
	"errors"
	"fmt"
)

// Default sizes. DefaultHeapCells bounds script data; CodeRegionCells bounds
// the number of JIT-compiled functions whose code pointers are tracked.
const (
	DefaultHeapCells = 1 << 17
	CodeRegionCells  = 128

	headerCells = 2 // length, capacity
	// minFreeCells is the smallest tail worth reclaiming: enough for a
	// header plus one element.
	minFreeCells = headerCells + 1
)

// codeSentinel is the expected value of code-pointer cell i. Values are
// exactly representable in float64, so any overwrite is detectable.
func codeSentinel(i int) float64 { return 1e15 + float64(i)*7 }

// ErrOOM is returned when the arena cannot satisfy an allocation.
var ErrOOM = errors.New("arena out of memory")

// CrashError is the simulated segfault raised by an access to unmapped
// arena memory.
type CrashError struct {
	Addr int
	Op   string
}

// Error implements the error interface.
func (e *CrashError) Error() string {
	return fmt.Sprintf("segmentation fault: %s at unmapped address %d", e.Op, e.Addr)
}

type freeBlock struct {
	off  int
	size int
}

// Arena is the shared heap. It is not safe for concurrent use; each Runtime
// owns one.
type Arena struct {
	cells    []float64
	top      int // bump pointer; [0, top) is mapped heap
	codeBase int // [codeBase, len(cells)) is the mapped code region
	free     []freeBlock
	handles  []int // handle -> header offset
	crash    *CrashError
}

// New creates an arena with heapCells of heap plus the code region. If
// heapCells is <= 0, DefaultHeapCells is used.
func New(heapCells int) *Arena {
	if heapCells <= 0 {
		heapCells = DefaultHeapCells
	}
	a := &Arena{
		cells:    make([]float64, heapCells+CodeRegionCells),
		codeBase: heapCells,
	}
	for i := 0; i < CodeRegionCells; i++ {
		a.cells[a.codeBase+i] = codeSentinel(i)
	}
	return a
}

// Reset returns the arena to its freshly-created state, keeping the backing
// storage.
func (a *Arena) Reset() {
	for i := 0; i < a.top; i++ {
		a.cells[i] = 0
	}
	a.top = 0
	a.free = a.free[:0]
	a.handles = a.handles[:0]
	a.crash = nil
	for i := 0; i < CodeRegionCells; i++ {
		a.cells[a.codeBase+i] = codeSentinel(i)
	}
}

// Crashed returns the recorded segfault, if any.
func (a *Arena) Crashed() *CrashError { return a.crash }

// CodeBase returns the address of the first code-pointer cell.
func (a *Arena) CodeBase() int { return a.codeBase }

// Size returns the total number of addressable cells.
func (a *Arena) Size() int { return len(a.cells) }

// Top returns the current allocation top (exclusive end of mapped heap).
func (a *Arena) Top() int { return a.top }

// Cells exposes the raw cell array for the machine-code tier, which
// compiles RawLoad/RawStore-equivalent accesses (including the memory-map
// check) inline instead of calling through this package. The slice header
// is stable for the arena's lifetime — cells never reallocates.
func (a *Arena) Cells() []float64 { return a.cells }

// Handles exposes the handle table for the machine-code tier's inline
// KElemsHandle/KAddrOf lowering. Unlike Cells, the backing array moves
// when allocation appends, so callers must re-read this after any
// operation that can allocate.
func (a *Arena) Handles() []int { return a.handles }

// HeaderCells is the per-array header size (length, capacity) — the
// elements-pointer bias the machine-code tier bakes into its inline
// handle-dereference sequence.
const HeaderCells = headerCells

// CodeIntegrityViolation returns the index of the first corrupted
// code-pointer cell, or -1 if the code region is intact.
func (a *Arena) CodeIntegrityViolation() int {
	for i := 0; i < CodeRegionCells; i++ {
		if a.cells[a.codeBase+i] != codeSentinel(i) {
			return i
		}
	}
	return -1
}

// CodePointerOK reports whether function fn's code pointer is intact. Out of
// range functions are considered intact (they have no tracked pointer).
func (a *Arena) CodePointerOK(fn int) bool {
	if fn < 0 || fn >= CodeRegionCells {
		return true
	}
	return a.cells[a.codeBase+fn] == codeSentinel(fn)
}

// mapped reports whether addr is inside a mapped region (heap below top, or
// the code region).
func (a *Arena) mapped(addr int) bool {
	return (addr >= 0 && addr < a.top) || (addr >= a.codeBase && addr < len(a.cells))
}

// RawLoad reads a cell with no bounds discipline beyond the memory map, as
// JIT-compiled code whose bounds check was (possibly wrongly) eliminated
// would. An unmapped access records a crash.
func (a *Arena) RawLoad(addr int) (float64, *CrashError) {
	if !a.mapped(addr) {
		return 0, a.fault(addr, "read")
	}
	return a.cells[addr], nil
}

// RawStore writes a cell with no bounds discipline beyond the memory map.
// An unmapped access records a crash.
func (a *Arena) RawStore(addr int, v float64) *CrashError {
	if !a.mapped(addr) {
		return a.fault(addr, "write")
	}
	a.cells[addr] = v
	return nil
}

func (a *Arena) fault(addr int, op string) *CrashError {
	c := &CrashError{Addr: addr, Op: op}
	if a.crash == nil {
		a.crash = c
	}
	return c
}

// Alloc allocates an array of n elements (capacity n) and returns its
// handle. Allocation is first-fit from the free list, else bump allocation.
func (a *Arena) Alloc(n int) (int32, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative array length %d", n)
	}
	off, err := a.allocBlock(headerCells + n)
	if err != nil {
		return 0, err
	}
	a.cells[off] = float64(n)
	a.cells[off+1] = float64(n)
	for i := 0; i < n; i++ {
		a.cells[off+headerCells+i] = 0
	}
	h := int32(len(a.handles))
	a.handles = append(a.handles, off)
	return h, nil
}

func (a *Arena) allocBlock(need int) (int, error) {
	for i, fb := range a.free {
		if fb.size >= need {
			off := fb.off
			rest := fb.size - need
			if rest >= minFreeCells {
				a.free[i] = freeBlock{off: off + need, size: rest}
			} else {
				// Too small a remainder to track; absorb it into the block.
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return off, nil
		}
	}
	if a.top+need > a.codeBase {
		return 0, fmt.Errorf("%w: need %d cells, %d heap cells free", ErrOOM, need, a.codeBase-a.top)
	}
	off := a.top
	a.top += need
	return off, nil
}

// freeRange returns [off, off+size) to the free list, kept sorted by
// offset with adjacent blocks coalesced (and the top block folded back
// into the bump pointer), so allocation churn cannot fragment the arena
// to death.
func (a *Arena) freeRange(off, size int) {
	if size < minFreeCells {
		return
	}
	for i := 0; i < size; i++ {
		a.cells[off+i] = 0
	}
	// Insert sorted by offset.
	pos := len(a.free)
	for i, fb := range a.free {
		if fb.off > off {
			pos = i
			break
		}
	}
	a.free = append(a.free, freeBlock{})
	copy(a.free[pos+1:], a.free[pos:])
	a.free[pos] = freeBlock{off: off, size: size}
	// Coalesce with the next block, then with the previous one.
	if pos+1 < len(a.free) && a.free[pos].off+a.free[pos].size == a.free[pos+1].off {
		a.free[pos].size += a.free[pos+1].size
		a.free = append(a.free[:pos+1], a.free[pos+2:]...)
	}
	if pos > 0 && a.free[pos-1].off+a.free[pos-1].size == a.free[pos].off {
		a.free[pos-1].size += a.free[pos].size
		a.free = append(a.free[:pos], a.free[pos+1:]...)
		pos--
	}
	// Fold a block touching the top back into bump space.
	if pos < len(a.free) && a.free[pos].off+a.free[pos].size == a.top {
		a.top = a.free[pos].off
		a.free = append(a.free[:pos], a.free[pos+1:]...)
	}
}

// validHandle reports whether h refers to an allocated array.
func (a *Arena) validHandle(h int32) bool {
	return h >= 0 && int(h) < len(a.handles)
}

// HandleCount returns the number of live array handles.
func (a *Arena) HandleCount() int { return len(a.handles) }

// Elems returns the payload base address ("elements pointer") of array h.
// ok is false for an invalid handle — the caller decides whether that is a
// bailout or a crash.
func (a *Arena) Elems(h int32) (int, bool) {
	if !a.validHandle(h) {
		return 0, false
	}
	return a.handles[h] + headerCells, true
}

// Length returns the (trusted) length header of array h.
func (a *Arena) Length(h int32) (int, bool) {
	if !a.validHandle(h) {
		return 0, false
	}
	return int(a.cells[a.handles[h]]), true
}

// Capacity returns the capacity header of array h.
func (a *Arena) Capacity(h int32) (int, bool) {
	if !a.validHandle(h) {
		return 0, false
	}
	return int(a.cells[a.handles[h]+1]), true
}

// LengthAt loads the length cell relative to an elements pointer, as the
// MIR initializedlength instruction does.
func (a *Arena) LengthAt(elems int) (float64, *CrashError) {
	return a.RawLoad(elems - headerCells)
}

// Get reads element idx of array h with interpreter semantics: indices in
// [0, length) are a trusted raw access (the length header is believed, as
// real engines believe the elements header — this is what turns a corrupted
// length into a read primitive); anything else reads as a hole.
// The second result is false when the access was a hole (undefined).
func (a *Arena) Get(h int32, idx int) (float64, bool, *CrashError) {
	if !a.validHandle(h) {
		return 0, false, nil
	}
	off := a.handles[h]
	length := int(a.cells[off])
	if idx < 0 || idx >= length {
		return 0, false, nil
	}
	v, crash := a.RawLoad(off + headerCells + idx)
	return v, crash == nil, crash
}

// Set writes element idx of array h with interpreter semantics: indices in
// [0, length) are a trusted raw store; indices in [length, capacity) extend
// the length (dense-array growth); indices at or beyond capacity trigger a
// reallocation. Negative or absurd indices are ignored (they would be
// property stores in real JS).
func (a *Arena) Set(h int32, idx int, v float64) *CrashError {
	if !a.validHandle(h) || idx < 0 {
		return nil
	}
	off := a.handles[h]
	length := int(a.cells[off])
	capacity := int(a.cells[off+1])
	switch {
	case idx < length:
		return a.RawStore(off+headerCells+idx, v)
	case idx < capacity:
		a.cells[off+headerCells+idx] = v
		a.cells[off] = float64(idx + 1)
		return nil
	default:
		if err := a.grow(h, idx+1); err != nil {
			// Treat allocation failure during growth as a crash so scripts
			// cannot continue with a half-grown array.
			return a.fault(a.top, "grow")
		}
		off = a.handles[h]
		a.cells[off+headerCells+idx] = v
		a.cells[off] = float64(idx + 1)
		return nil
	}
}

// grow reallocates array h to capacity at least need, moving its payload.
func (a *Arena) grow(h int32, need int) error {
	off := a.handles[h]
	length := int(a.cells[off])
	capacity := int(a.cells[off+1])
	newCap := capacity * 2
	if newCap < need {
		newCap = need
	}
	if newCap < 4 {
		newCap = 4
	}
	newOff, err := a.allocBlock(headerCells + newCap)
	if err != nil {
		return err
	}
	copyN := length
	if copyN > capacity {
		copyN = capacity
	}
	a.cells[newOff] = float64(length)
	a.cells[newOff+1] = float64(newCap)
	copy(a.cells[newOff+headerCells:newOff+headerCells+copyN], a.cells[off+headerCells:off+headerCells+copyN])
	for i := copyN; i < newCap; i++ {
		a.cells[newOff+headerCells+i] = 0
	}
	a.handles[h] = newOff
	a.freeRange(off, headerCells+capacity)
	return nil
}

// SetLength implements `arr.length = n`. Shrinking reclaims the tail cells
// into the free list (capacity shrinks with length); growing within capacity
// just writes the header (new slots read as holes); growing beyond capacity
// reallocates.
func (a *Arena) SetLength(h int32, n int) error {
	if !a.validHandle(h) {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("invalid array length %d", n)
	}
	off := a.handles[h]
	length := int(a.cells[off])
	capacity := int(a.cells[off+1])
	switch {
	case n == length:
		return nil
	case n < length:
		tail := capacity - n
		if tail >= minFreeCells {
			a.freeRange(off+headerCells+n, tail)
			a.cells[off+1] = float64(n)
		}
		a.cells[off] = float64(n)
		return nil
	case n <= capacity:
		for i := length; i < n; i++ {
			a.cells[off+headerCells+i] = 0
		}
		a.cells[off] = float64(n)
		return nil
	default:
		if err := a.grow(h, n); err != nil {
			return err
		}
		a.cells[a.handles[h]] = float64(n)
		return nil
	}
}

// Push appends v, growing if needed, and returns the new length.
func (a *Arena) Push(h int32, v float64) (int, error) {
	if !a.validHandle(h) {
		return 0, fmt.Errorf("push on invalid handle %d", h)
	}
	off := a.handles[h]
	length := int(a.cells[off])
	capacity := int(a.cells[off+1])
	if length >= capacity {
		if err := a.grow(h, length+1); err != nil {
			return 0, err
		}
		off = a.handles[h]
	}
	a.cells[off+headerCells+length] = v
	a.cells[off] = float64(length + 1)
	return length + 1, nil
}

// Pop removes and returns the last element. ok is false on an empty array
// (the result is then a hole/undefined).
func (a *Arena) Pop(h int32) (float64, bool) {
	if !a.validHandle(h) {
		return 0, false
	}
	off := a.handles[h]
	length := int(a.cells[off])
	if length <= 0 {
		return 0, false
	}
	v := a.cells[off+headerCells+length-1]
	a.cells[off] = float64(length - 1)
	return v, true
}

// FreeBlocks returns the number of tracked free blocks (for tests and
// diagnostics).
func (a *Arena) FreeBlocks() int { return len(a.free) }

// Package engine implements the tiered nanojs runtime: profiling
// interpreter → baseline → optimizing JIT, mirroring SpiderMonkey's
// structure from the paper's Figure 1. The engine owns invocation
// counters and thresholds (baseline at 100 calls, Ion at 1500 as in §II),
// type-feedback profiling, the OptimizeMIR pipeline with its
// SUCCESS/FAILURE + Recompile protocol (§V), bailouts, and the JITBULL
// policy hook.
package engine

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/interp"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/mc"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

// Default tier thresholds, as described in the paper's §II for
// SpiderMonkey.
const (
	DefaultBaselineThreshold = 100
	DefaultIonThreshold      = 1500

	// maxBailoutsBeforeBlacklist is how many guard failures a compiled
	// function tolerates before the engine gives up optimizing it.
	maxBailoutsBeforeBlacklist = 32

	// maxDeoptsBeforeRequalify is how many speculation-guard deopts one
	// artifact tolerates before the engine discards it and requalifies the
	// function with the TypeSpeculation pass disabled (see osr.go). Low on
	// purpose: every deopt pays a full frame reconstruction, so a loop
	// whose type assumption keeps failing is cheaper unspeculated.
	maxDeoptsBeforeRequalify = 8
)

// HijackError reports a control-flow hijack: a function's JIT code pointer
// was overwritten (the exploit payload "executed").
type HijackError struct {
	FuncIndex int
	FuncName  string
}

// Error implements the error interface.
func (e *HijackError) Error() string {
	return fmt.Sprintf("control-flow hijack: code pointer of %s (fn #%d) overwritten — payload executed", e.FuncName, e.FuncIndex)
}

// CompileDecision is the JITBULL go/no-go verdict for one compilation.
type CompileDecision struct {
	// DisabledPasses lists dangerous passes to disable for this function.
	DisabledPasses []string
	// NoJIT forces interpreter-only execution (scenario 3 of §V: a matched
	// pass is mandatory).
	NoJIT bool
}

// Policy is the JITBULL hook (implemented by internal/core). When Active
// returns false (empty VDC database) the engine takes no snapshots at all.
type Policy interface {
	Active() bool
	// BeginCompile returns an observer to install on the pass pipeline and
	// a finish function producing the decision.
	BeginCompile(fnName string) (passes.Observer, func() CompileDecision)
}

// Config parameterizes an Engine.
type Config struct {
	BaselineThreshold int
	IonThreshold      int
	Bugs              passes.BugSet
	DisableJIT        bool // NoJIT mode: interpreter only
	HeapCells         int
	MaxSteps          int64 // combined interp+native step budget (0 = default)
	Out               io.Writer

	// DisabledPasses names optimization passes skipped for every function
	// (per-pass ablation). Disabling a mandatory pass makes compilation
	// fail, falling back to the interpreter.
	DisabledPasses []string
	// CheckIR runs the SSA verifier after every optimization pass of every
	// compilation, failing the compile (interpreter fallback) with the
	// offending pass named. Used by differential tests and fuzzing.
	CheckIR bool
	// OnCompileError, when set, observes every supervised JIT-tier failure
	// the engine degrades into an interpreter fallback. The error is always
	// a *CompileError; errors.As sees through it to the underlying cause
	// (CheckIR verifier rejections surface as *passes.IRError).
	OnCompileError func(fn string, err error)

	// Faults, when set, is the fault-injection schedule evaluated at every
	// compile-path and dispatch injection point (the chaos suite's driver).
	Faults *faults.Injector
	// CompileStepBudget bounds the abstract work units one compilation
	// attempt may spend (0 = DefaultCompileStepBudget). Exhaustion fails
	// the attempt with a Budget-typed CompileError.
	CompileStepBudget int64
	// QuarantineBackoff is the initial retry delay, in calls, after a
	// contained compile failure (0 = DefaultQuarantineBackoff). It doubles
	// per quarantine round-trip.
	QuarantineBackoff int
	// QuarantineCleanRuns is how many consecutive clean interpreter runs a
	// quarantined function needs before a retry (0 = default).
	QuarantineCleanRuns int
	// MaxCompileAttempts caps quarantine round-trips before the function
	// is permanently interpreter-only (0 = DefaultMaxCompileAttempts).
	MaxCompileAttempts int
	// Passes overrides the optimization pipeline (nil = the standard one).
	// Tests use it to inject deliberately broken passes and prove the
	// supervisor attributes them.
	Passes []passes.Pass
	// NoFuse disables the superinstruction fusion stage: Ion artifacts are
	// executed by the monolithic switch loop instead of the fused
	// direct-threaded backend. Semantics are identical either way (the
	// difftest matrix pins it); this is the escape hatch and the baseline
	// side of the native-tier benchmark.
	NoFuse bool
	// NoMC disables the machine-code tier: installed Ion artifacts stop at
	// the fused direct-threaded executor instead of being lowered to real
	// amd64 code in W^X pages. On platforms without machine-code support
	// the tier is off regardless, so semantics never depend on the flag —
	// the difftest matrix pins mc and threaded execution bit-identical
	// (Result, Steps, bailout points, deopt frames, policy verdicts).
	NoMC bool

	// OSR enables loop-header on-stack replacement: the interpreter counts
	// back edges, triggers compilation from a hot loop (not just a hot call
	// count), and transfers mid-loop into installed Ion code at the loop
	// header by materializing native registers from the frame map. Off by
	// default; semantics (Result, Steps, bailout points, policy verdicts)
	// are bit-identical either way — the difftest matrix pins it.
	OSR bool
	// Speculate enables the TypeSpeculation pass: eligible call results are
	// speculated to numbers, guarded by KCallSpec ops that deoptimize back
	// to the interpreter — with full frame reconstruction — when the
	// assumption fails. Off by default; semantically invisible.
	Speculate bool
	// OSRThreshold is the back-edge count that triggers compilation and
	// entry for a loop-hot function (0 = IonThreshold).
	OSRThreshold int

	// Tracer, when set, records the compile lifecycle as structured span
	// events: warmup trigger, mirbuild, every optimization pass (with
	// input/output instruction counts), DNA extraction, the go/no-go
	// decision, lowering, register allocation, native install, bailouts and
	// injected faults. Nil disables tracing at the cost of one nil check
	// per site (benchmarked in BENCH_obs.json).
	Tracer *obs.Tracer
	// Metrics, when set, is a shared registry the engine's counters and
	// histograms are mirrored into. Several engines may share one registry
	// (RunParallel does): the handles are atomics, so the shared view
	// aggregates without races while each engine's Stats() stays private.
	Metrics *obs.Registry
	// Audit, when set, receives one structured event per compilation
	// supervisor transition (compile errors, quarantine, requalification,
	// permanent demotion). Policy go/no-go verdicts are recorded by the
	// policy itself (core.Detector) into the same log.
	Audit *obs.AuditLog
	// Journal, when set, records the per-function tier-journey event
	// stream: interp → warm → enqueued → compiled → installed → OSR-entry
	// → deopt → requalified → quarantined → cache/store hit, each with
	// cause, tier, and monotonic timestamp. Waypoints land only on tier
	// transitions — never per call — so the hot path pays nil checks.
	Journal *obs.Journal
	// Watchdog, when set, receives anomaly signals (deopts, quarantines,
	// cache hits/misses, verdicts, queue saturation, hot interpreter-
	// pinned functions) at the same hook points that feed metrics.
	Watchdog *obs.Watchdog

	// Queue, when set, moves Ion compilation off-thread: the warmup
	// trigger snapshots the compilation inputs, enqueues a supervised job
	// on the shared background pool, and the function keeps executing in
	// baseline until the artifact is installed at the next call boundary
	// (see async.go for the concurrency contract). When the queue is
	// saturated the engine falls back to a synchronous compile.
	Queue *jitqueue.Queue
	// Cache, when set, is the shared cross-engine compilation cache: a hit
	// installs the compiled artifact and replays the recorded JITBULL
	// verdict without re-running the pipeline or DNA matching. Caching is
	// automatically disabled for configurations whose outcomes are not
	// reproducible from the cache key (custom Passes, fault injection, or
	// a policy that does not implement CachingPolicy).
	Cache *jitqueue.Cache
}

// Stats is a snapshot of the per-run counters the paper's Figure 4
// reports, read from the engine's atomic metrics registry via
// Engine.Stats().
type Stats struct {
	NrJIT      int // functions Ion-compiled (JIT-eligible and hot)
	NrDisJIT   int // of those, compiled with >= 1 pass disabled by JITBULL
	NrNoJIT    int // of those, forced to interpreter-only by JITBULL
	Bailouts   int
	Compiles   int
	Recompiles int
	InterpOnly int // hot but not JIT-eligible (outside the JIT subset)

	// Supervisor counters: every JIT-tier failure the engine contained.
	CompileErrors  int // typed failures recorded (all causes)
	CompilePanics  int // of those, recovered compiler/dispatch panics
	CompileBudgets int // of those, compile step budget exhaustions
	InjectedFaults int // of those, fired by the fault-injection framework
	Quarantined    int // quarantine entries (failed functions parked with backoff)
	Requalified    int // quarantined functions re-promoted after a clean retry

	// Async/cache counters (zero without Config.Queue / Config.Cache).
	CacheHits     int // compilations satisfied from the shared cache
	CacheMisses   int // cacheable triggers that had to compile
	AsyncCompiles int // compile jobs enqueued on the background queue
	AsyncInstalls int // artifacts installed at a safe point after a background compile

	// OSR/deopt counters (zero without Config.OSR / Config.Speculate).
	OSREntries       int // successful mid-loop transfers into Ion code
	DeoptExits       int // speculation-guard failures reconstructed into the interpreter
	LoopsRequalified int // deopt storms that requalified the function without speculation

	// Top-tier attribution: which executor serves each installed artifact
	// (one count per install event, not per call).
	TierMC     int // real machine code in W^X pages
	TierFused  int // fused direct-threaded executor
	TierSwitch int // unfused switch loop (NoFuse artifacts)
}

// statCounter is one engine counter: always present in the engine's
// private registry (the source of the Stats() snapshot) and, when
// Config.Metrics is set, mirrored into that shared registry so parallel
// engines aggregate into one coherent view without races.
type statCounter struct{ local, shared *obs.Counter }

// Inc bumps both sides (the shared side is nil-safe).
func (c statCounter) Inc() { c.local.Inc(); c.shared.Inc() }

// engineMetrics are the engine's counters, resolved once at construction
// so the hot path never takes the registry lock.
type engineMetrics struct {
	nrJIT, nrDisJIT, nrNoJIT       statCounter
	bailouts, compiles, recompiles statCounter
	interpOnly                     statCounter
	compileErrors, compilePanics   statCounter
	compileBudgets, injectedFaults statCounter
	quarantined, requalified       statCounter
	cacheHits, cacheMisses         statCounter
	asyncCompiles, asyncInstalls   statCounter
	osrEntries, deoptExits         statCounter
	loopsRequalified               statCounter
	tierMC, tierFused, tierSwitch  statCounter
}

func newEngineMetrics(local, shared *obs.Registry) engineMetrics {
	pair := func(name string) statCounter {
		return statCounter{local: local.Counter(name), shared: shared.Counter(name)}
	}
	return engineMetrics{
		nrJIT:          pair("engine.nr_jit"),
		nrDisJIT:       pair("engine.nr_dis_jit"),
		nrNoJIT:        pair("engine.nr_no_jit"),
		bailouts:       pair("engine.bailouts"),
		compiles:       pair("engine.compiles"),
		recompiles:     pair("engine.recompiles"),
		interpOnly:     pair("engine.interp_only"),
		compileErrors:  pair("engine.compile_errors"),
		compilePanics:  pair("engine.compile_panics"),
		compileBudgets: pair("engine.compile_budgets"),
		injectedFaults: pair("engine.injected_faults"),
		quarantined:    pair("engine.quarantined"),
		requalified:    pair("engine.requalified"),
		cacheHits:      pair("engine.cache_hits"),
		cacheMisses:    pair("engine.cache_misses"),
		asyncCompiles:  pair("engine.async_compiles"),
		asyncInstalls:  pair("engine.async_installs"),

		osrEntries:       pair("osr.entries"),
		deoptExits:       pair("deopt.exits"),
		loopsRequalified: pair("deopt.loops_requalified"),

		tierMC:     pair("native.tier.mc"),
		tierFused:  pair("native.tier.fused"),
		tierSwitch: pair("native.tier.switch"),
	}
}

type tier int

const (
	tierInterp tier = iota
	tierBaseline
	tierIon
)

// String names the tier for the journey journal and reports.
func (t tier) String() string {
	switch t {
	case tierBaseline:
		return "baseline"
	case tierIon:
		return "ion"
	}
	return "interp"
}

type fnState struct {
	fd   *ast.FuncDecl
	fn   *bytecode.Function
	tier tier

	calls int

	// Type feedback.
	paramTypes []value.Type
	paramBad   []bool
	retType    value.Type
	retBad     bool

	code *lir.Code
	// mcu is the machine-code unit attached to code (nil when the tier is
	// off, unsupported, or the attach was quarantined); mcTried latches
	// one attach attempt per installed artifact. Both always track code:
	// install resets them, discard clears them.
	mcu            *mc.Unit
	mcTried        bool
	jitEligible    bool // mirbuild succeeded at least once
	disabledPasses map[string]bool
	bailouts       int
	counted        bool // already counted in Stats.NrJIT

	// Supervisor state (see supervisor.go).
	quar      quarState
	retryAt   int // earliest call count for a quarantine retry
	backoff   int // current retry delay (doubles per round-trip)
	cleanRuns int // consecutive clean interpreter runs while quarantined
	attempts  int // quarantine round-trips so far

	// Async compilation state (see async.go). inflight is owner-only;
	// pending is the mailbox a background worker parks the finished
	// outcome in, emptied by the owner at the next call boundary.
	inflight bool
	pending  atomic.Pointer[compileOutcome]

	// noJITPinned marks a function permanently interpreter-only because of
	// a policy NoJIT verdict (not unsupported source): the perf-divergence
	// watchdog signal fires for these when they keep getting hot.
	noJITPinned bool

	// OSR/deopt state (see osr.go). backEdges counts interpreter back
	// edges across all activations; osrCooldown parks OSR attempts per
	// entry ordinal after a refused materialization or a bailout there — a
	// loop whose types block one header must not poison the function's
	// other loops; deopts counts guard failures of the current artifact
	// (both reset on install).
	backEdges   int
	osrCooldown map[int]bool
	deopts      int
}

// Engine is a tiered nanojs runtime instance. It is single-owner: all
// execution entry points (Run, CallFunction, Drain) must be called from
// one goroutine. With Config.Queue set, compilation itself runs on
// background workers under the contract documented in async.go — the
// workers never touch fnState or the VM, so the owner goroutine stays
// race-free — and Stats() may be read from any goroutine at any time.
type Engine struct {
	Prog  *bytecode.Program
	VM    *interp.VM
	arena *heap.Arena
	cfg   Config

	fns    []*fnState
	policy Policy
	pool   native.Pool

	// compileMu serializes compilation attempts of this engine across
	// background workers: the policy (core.Detector) and its DNA scratch
	// state are not concurrent-safe.
	compileMu sync.Mutex
	// inflight counts this engine's outstanding background jobs (Drain
	// waits on it).
	inflight sync.WaitGroup

	reg      *obs.Registry // private registry backing Stats()
	m        engineMetrics
	tracer   *obs.Tracer
	audit    *obs.AuditLog
	journal  *obs.Journal
	watchdog *obs.Watchdog
	hijacked *HijackError

	// Exemplar-linked latency histograms, resolved once at construction so
	// the compile path never takes the registry lock. Each bucket retains
	// the span ID of its most recent extreme observation.
	hCompile    *obs.Histogram // compile.ns: one supervised pipeline attempt
	hQueueWait  *obs.Histogram // jit.queue_wait_ns: enqueue → worker pickup
	hInstallLag *obs.Histogram // compile.install_lag_ns: enqueue → safe-point install
	hOSREntry   *obs.Histogram // osr.entry_ns: one entered OSR activation

	// blockChecks mirrors the fused executor's amortized budget checks
	// into native.block_budget_checks; resolved once so the per-call hot
	// path pays a single atomic add.
	blockChecks *obs.Counter

	// testQueueJobHook, when set (tests only), runs inside a background
	// compile job outside the supervisor's recovery — the seam for proving
	// an escaped panic still yields an applyable outcome.
	testQueueJobHook func()
}

var _ interp.Dispatcher = (*Engine)(nil)
var _ native.Hooks = (*Engine)(nil)

// New parses, compiles and prepares src for execution.
func New(src string, cfg Config) (*Engine, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	prog, err := compiler.CompileProgram(astProg)
	if err != nil {
		return nil, err
	}
	prog.Source = src
	return NewFromProgram(prog, astProg, cfg)
}

// NewFromProgram builds an engine over already-compiled code.
func NewFromProgram(prog *bytecode.Program, astProg *ast.Program, cfg Config) (*Engine, error) {
	if cfg.BaselineThreshold <= 0 {
		cfg.BaselineThreshold = DefaultBaselineThreshold
	}
	if cfg.IonThreshold <= 0 {
		cfg.IonThreshold = DefaultIonThreshold
	}
	if cfg.OSRThreshold <= 0 {
		cfg.OSRThreshold = cfg.IonThreshold
	}
	arena := heap.New(cfg.HeapCells)
	vm := interp.New(prog, arena, cfg.Out)
	if cfg.MaxSteps > 0 {
		vm.MaxSteps = cfg.MaxSteps
	}
	e := &Engine{Prog: prog, VM: vm, arena: arena, cfg: cfg}
	e.reg = obs.NewRegistry()
	e.m = newEngineMetrics(e.reg, cfg.Metrics)
	e.tracer = cfg.Tracer
	e.audit = cfg.Audit
	e.journal = cfg.Journal
	e.watchdog = cfg.Watchdog
	e.blockChecks = e.histReg().Counter("native.block_budget_checks")
	e.hCompile = e.histReg().Histogram("compile.ns", obs.LatencyBucketsNs)
	e.hQueueWait = e.histReg().Histogram("jit.queue_wait_ns", obs.LatencyBucketsNs)
	e.hInstallLag = e.histReg().Histogram("compile.install_lag_ns", obs.LatencyBucketsNs)
	e.hOSREntry = e.histReg().Histogram("osr.entry_ns", obs.LatencyBucketsNs)
	if cfg.Faults != nil && cfg.Faults.Trace == nil {
		// Injected faults show up inline in the engine's compile trace.
		cfg.Faults.Trace = cfg.Tracer
	}
	vm.Dispatch = e
	if cfg.OSR && !cfg.DisableJIT {
		// The hook is only installed when OSR is on: a nil hook keeps the
		// interpreter's back-edge path byte-identical to a build without it.
		vm.OSR = e.OnBackEdge
	}

	byName := map[string]*ast.FuncDecl{}
	for _, fd := range astProg.Funcs() {
		byName[fd.Name] = fd
	}
	e.fns = make([]*fnState, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		st := &fnState{fn: fn, fd: byName[fn.Name]}
		st.paramTypes = make([]value.Type, fn.NumParams)
		st.paramBad = make([]bool, fn.NumParams)
		e.fns[i] = st
	}
	return e, nil
}

// SetPolicy installs the JITBULL policy hook (nil removes it).
func (e *Engine) SetPolicy(p Policy) { e.policy = p }

// Stats reads a consistent snapshot of the engine's own counters. The
// counters are atomics, so snapshotting while other engines mutate a
// shared Config.Metrics registry is race-free.
func (e *Engine) Stats() Stats {
	v := func(c statCounter) int { return int(c.local.Value()) }
	return Stats{
		NrJIT:          v(e.m.nrJIT),
		NrDisJIT:       v(e.m.nrDisJIT),
		NrNoJIT:        v(e.m.nrNoJIT),
		Bailouts:       v(e.m.bailouts),
		Compiles:       v(e.m.compiles),
		Recompiles:     v(e.m.recompiles),
		InterpOnly:     v(e.m.interpOnly),
		CompileErrors:  v(e.m.compileErrors),
		CompilePanics:  v(e.m.compilePanics),
		CompileBudgets: v(e.m.compileBudgets),
		InjectedFaults: v(e.m.injectedFaults),
		Quarantined:    v(e.m.quarantined),
		Requalified:    v(e.m.requalified),
		CacheHits:      v(e.m.cacheHits),
		CacheMisses:    v(e.m.cacheMisses),
		AsyncCompiles:  v(e.m.asyncCompiles),
		AsyncInstalls:  v(e.m.asyncInstalls),

		OSREntries:       v(e.m.osrEntries),
		DeoptExits:       v(e.m.deoptExits),
		LoopsRequalified: v(e.m.loopsRequalified),

		TierMC:     v(e.m.tierMC),
		TierFused:  v(e.m.tierFused),
		TierSwitch: v(e.m.tierSwitch),
	}
}

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Metrics returns the engine's private metrics registry (always non-nil):
// the engine counters plus compile-path histograms when no shared
// Config.Metrics registry was provided.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Audit returns the engine's audit log (nil when auditing is disabled).
func (e *Engine) Audit() *obs.AuditLog { return e.audit }

// MetricsSink returns the registry compile-path instrumentation (pass
// latencies, DNA histograms) records into: the shared Config.Metrics when
// one was provided, else the engine's private registry. Policy
// instrumentation should use the same sink so one registry carries the
// whole compile path.
func (e *Engine) MetricsSink() *obs.Registry { return e.histReg() }

// histReg is the registry compile-path histograms record into: the shared
// one when configured, else the engine's own.
func (e *Engine) histReg() *obs.Registry {
	if e.cfg.Metrics != nil {
		return e.cfg.Metrics
	}
	return e.reg
}

// Arena returns the shared heap.
func (e *Engine) Arena() *heap.Arena { return e.arena }

// Hijacked returns the recorded control-flow hijack, if any.
func (e *Engine) Hijacked() *HijackError { return e.hijacked }

// GlobalGet implements native.Hooks.
func (e *Engine) GlobalGet(slot int) value.Value { return e.VM.Globals[slot] }

// GlobalSet implements native.Hooks.
func (e *Engine) GlobalSet(slot int, v value.Value) { e.VM.Globals[slot] = v }

// Globals exposes the global-slot backing array to the machine-code tier's
// inline KLoadGlobal / KStoreGlobalNum fast paths (the optional hooks
// capability; see mc's globalWindow). Semantics are defined by GlobalGet /
// GlobalSet — the window is only a faster route to the same slots.
func (e *Engine) Globals() []value.Value { return e.VM.Globals }

// Random implements native.Hooks.
func (e *Engine) Random() float64 { return e.VM.Random() }

// Run executes the program's top-level code. With a background queue
// attached it drains in-flight compilations before returning, so the
// engine's final state matches what a synchronous engine reaches after
// the same warmup triggers.
func (e *Engine) Run() (value.Value, error) {
	v, err := e.VM.Exec(e.Prog.Main(), nil)
	e.Drain()
	return v, err
}

// Global returns the value of a named global variable (undefined when the
// name does not exist).
func (e *Engine) Global(name string) value.Value {
	for i, n := range e.Prog.GlobalNames {
		if n == name {
			return e.VM.Globals[i]
		}
	}
	return value.Undef()
}

// CallFunction implements the dispatcher: every nanojs call funnels
// through here, where tiering decisions are made.
func (e *Engine) CallFunction(idx int, args []value.Value) (value.Value, error) {
	if idx < 0 || idx >= len(e.fns) {
		return value.Undef(), &interp.RuntimeError{Msg: fmt.Sprintf("unknown function index %d", idx)}
	}
	st := e.fns[idx]

	// Control-flow integrity: calling through an overwritten JIT code
	// pointer means the attacker's payload runs instead of the function.
	if !e.arena.CodePointerOK(idx) {
		h := &HijackError{FuncIndex: idx, FuncName: st.fn.Name}
		if e.hijacked == nil {
			e.hijacked = h
		}
		return value.Undef(), h
	}

	st.calls++
	if st.calls == 1 {
		e.journal.Record(st.fn.Name, obs.StageInterp, "interp", "first call")
	}
	// A policy-pinned (NoJIT) function that keeps getting hot is a real
	// performance cost of the go/no-go verdict: tell the watchdog once,
	// at double the Ion threshold (the == keeps this a single signal).
	if st.noJITPinned && st.calls == 2*e.cfg.IonThreshold {
		e.watchdog.Signal(obs.Signal{Kind: obs.SigHotInterp, Func: st.fn.Name, Value: int64(st.calls)})
	}
	// Safe point: a finished background compilation is installed here, on
	// the owner goroutine, before any tiering decision or dispatch. The
	// inflight gate keeps the hot path free of atomics: pending can only
	// be non-nil between enqueue and apply, and inflight (owner-only)
	// brackets exactly that window.
	if st.inflight {
		if o := st.pending.Swap(nil); o != nil {
			e.applyOutcome(st, o)
		}
	}
	if e.cfg.DisableJIT || st.fd == nil {
		return e.VM.Exec(st.fn, args)
	}

	if st.code == nil {
		e.profile(st, args)
	}
	if st.code == nil && !st.inflight && st.calls >= e.cfg.IonThreshold && e.mayCompile(st) {
		e.compile(idx, st)
	}
	if st.tier == tierInterp && st.calls >= e.cfg.BaselineThreshold {
		st.tier = tierBaseline
		e.journey(st, obs.StageWarm, "calls=%d", st.calls)
	}

	if st.code != nil {
		res, status, err := e.execNative(st, args)
		e.VM.AddSteps(res.Steps)
		if res.Checks > 0 {
			e.blockChecks.Add(res.Checks)
		}
		if err != nil {
			return value.Undef(), err
		}
		if status == native.StatusOK {
			e.observeReturn(st, res.Value())
			return res.Value(), nil
		}
		if status == native.StatusDeopt {
			// A speculation guard failed mid-function: the activation has
			// already performed side effects, so it must resume from the
			// reconstructed frame — never re-run from the top like a bailout.
			v, done, derr := e.handleDeopt(st, res.Deopt)
			if !done {
				return value.Undef(), &interp.RuntimeError{Msg: "deopt exit without a resume site"}
			}
			if derr == nil {
				e.observeReturn(st, v)
			}
			return v, derr
		}
		// Bailout: fall back to the interpreter for this call.
		e.m.bailouts.Inc()
		st.bailouts++
		e.tracer.Instant(obs.CatEngine, "bailout",
			obs.S("fn", st.fn.Name), obs.I("bailouts", int64(st.bailouts)))
		e.journey(st, obs.StageBailout, "bailouts=%d", st.bailouts)
		if st.bailouts >= maxBailoutsBeforeBlacklist {
			e.discardArtifact(st)
			e.demote(st)
			e.quarantine(st, "bailout storm: blacklisted after repeated guard failures")
		}
	}

	v, err := e.VM.Exec(st.fn, args)
	if err == nil {
		e.observeReturn(st, v)
		if st.quar == qQuarantined {
			st.cleanRuns++
		}
	}
	return v, err
}

// journey records one tier-journey waypoint for st, formatting the cause
// lazily so a disabled journal pays only the nil check (plus the
// varargs boxing at the rare transition sites that use it).
func (e *Engine) journey(st *fnState, stage, format string, args ...any) {
	if e.journal == nil {
		return
	}
	cause := format
	if len(args) > 0 {
		cause = fmt.Sprintf(format, args...)
	}
	e.journal.Record(st.fn.Name, stage, st.tier.String(), cause)
}

// profile records argument type feedback for a not-yet-compiled function.
func (e *Engine) profile(st *fnState, args []value.Value) {
	for i := 0; i < len(st.paramTypes); i++ {
		var t value.Type
		if i < len(args) {
			t = args[i].Type()
		}
		switch {
		case st.paramTypes[i] == value.Undefined && st.calls == 1:
			st.paramTypes[i] = t
		case st.paramTypes[i] == t:
		case st.paramTypes[i] == value.Boolean && t == value.Number,
			st.paramTypes[i] == value.Number && t == value.Boolean:
			st.paramTypes[i] = value.Number
		default:
			st.paramBad[i] = true
		}
	}
}

func (e *Engine) observeReturn(st *fnState, v value.Value) {
	if st.code != nil {
		return // feedback only matters before compilation
	}
	t := v.Type()
	switch {
	case st.retType == value.Undefined:
		st.retType = t
	case st.retType == t:
	case st.retType == value.Number && (t == value.Boolean || t == value.Undefined),
		(st.retType == value.Boolean || st.retType == value.Undefined) && t == value.Number:
		st.retType = value.Number
	default:
		st.retBad = true
	}
}

// compile handles one warmup trigger of function idx: a shared-cache hit
// installs the artifact and replays the verdict immediately; otherwise the
// attempt is enqueued on the background queue (when configured) or run
// inline under the supervisor. Every path implements the three scenarios
// of §V with identical verdict accounting; every failure is typed,
// attributed, and degraded per failCompile.
func (e *Engine) compile(idx int, st *fnState) {
	e.tracer.Instant(obs.CatEngine, "compile.trigger",
		obs.S("fn", st.fn.Name), obs.I("calls", int64(st.calls)))
	req := e.newCompileRequest(idx, st)

	if req.cacheable {
		if v, ok, fromTier := e.cfg.Cache.GetTiered(req.key); ok {
			e.m.cacheHits.Inc()
			e.watchdog.Signal(obs.Signal{Kind: obs.SigCacheHit, Func: req.fnName})
			if fromTier {
				e.journey(st, obs.StageStoreHit, "promoted from persistent store")
			} else {
				e.journey(st, obs.StageCacheHit, "shared cache hit")
			}
			e.applyOutcome(st, e.outcomeFromCache(req, v.(*cachedCompile)))
			return
		}
		e.m.cacheMisses.Inc()
		e.watchdog.Signal(obs.Signal{Kind: obs.SigCacheMiss, Func: req.fnName})
	}
	if e.cfg.Queue != nil && e.enqueueCompile(st, req) {
		return
	}

	sp := e.tracer.Begin(obs.CatCompile, "compile")
	start := time.Now()
	o := e.compileAttempt(req)
	dur := int64(time.Since(start))
	e.hCompile.ObserveEx(dur, sp.ID())
	e.watchdog.Signal(obs.Signal{Kind: obs.SigCompile, Func: req.fnName, Value: dur})
	e.maybeCachePut(o)
	if o.cerr != nil {
		e.journey(st, obs.StageCompiled, "fail: stage=%s", o.cerr.Stage)
	} else {
		e.journey(st, obs.StageCompiled, "ok: inline")
	}
	e.applyOutcome(st, o)
	if o.cerr != nil {
		sp.End(obs.S("fn", st.fn.Name), obs.S("result", "fail"), obs.S("stage", o.cerr.Stage), obs.S("source", "inline"))
		return
	}
	sp.End(obs.S("fn", st.fn.Name), obs.S("result", "ok"), obs.S("source", "inline"))
}

// RunScript is a convenience: build an engine for src, run it, and return
// the engine for inspection.
func RunScript(src string, cfg Config) (*Engine, value.Value, error) {
	e, err := New(src, cfg)
	if err != nil {
		return nil, value.Undef(), err
	}
	v, err := e.Run()
	return e, v, err
}

// IsCrash reports whether err is a simulated segfault.
func IsCrash(err error) bool {
	var c *heap.CrashError
	return errors.As(err, &c)
}

// IsHijack reports whether err is a control-flow hijack.
func IsHijack(err error) bool {
	var h *HijackError
	return errors.As(err, &h)
}

// Package engine implements the tiered nanojs runtime: profiling
// interpreter → baseline → optimizing JIT, mirroring SpiderMonkey's
// structure from the paper's Figure 1. The engine owns invocation
// counters and thresholds (baseline at 100 calls, Ion at 1500 as in §II),
// type-feedback profiling, the OptimizeMIR pipeline with its
// SUCCESS/FAILURE + Recompile protocol (§V), bailouts, and the JITBULL
// policy hook.
package engine

import (
	"errors"
	"fmt"
	"io"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/interp"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/mirbuild"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

// Default tier thresholds, as described in the paper's §II for
// SpiderMonkey.
const (
	DefaultBaselineThreshold = 100
	DefaultIonThreshold      = 1500

	// maxBailoutsBeforeBlacklist is how many guard failures a compiled
	// function tolerates before the engine gives up optimizing it.
	maxBailoutsBeforeBlacklist = 32
)

// HijackError reports a control-flow hijack: a function's JIT code pointer
// was overwritten (the exploit payload "executed").
type HijackError struct {
	FuncIndex int
	FuncName  string
}

// Error implements the error interface.
func (e *HijackError) Error() string {
	return fmt.Sprintf("control-flow hijack: code pointer of %s (fn #%d) overwritten — payload executed", e.FuncName, e.FuncIndex)
}

// CompileDecision is the JITBULL go/no-go verdict for one compilation.
type CompileDecision struct {
	// DisabledPasses lists dangerous passes to disable for this function.
	DisabledPasses []string
	// NoJIT forces interpreter-only execution (scenario 3 of §V: a matched
	// pass is mandatory).
	NoJIT bool
}

// Policy is the JITBULL hook (implemented by internal/core). When Active
// returns false (empty VDC database) the engine takes no snapshots at all.
type Policy interface {
	Active() bool
	// BeginCompile returns an observer to install on the pass pipeline and
	// a finish function producing the decision.
	BeginCompile(fnName string) (passes.Observer, func() CompileDecision)
}

// Config parameterizes an Engine.
type Config struct {
	BaselineThreshold int
	IonThreshold      int
	Bugs              passes.BugSet
	DisableJIT        bool // NoJIT mode: interpreter only
	HeapCells         int
	MaxSteps          int64 // combined interp+native step budget (0 = default)
	Out               io.Writer

	// DisabledPasses names optimization passes skipped for every function
	// (per-pass ablation). Disabling a mandatory pass makes compilation
	// fail, falling back to the interpreter.
	DisabledPasses []string
	// CheckIR runs the SSA verifier after every optimization pass of every
	// compilation, failing the compile (interpreter fallback) with the
	// offending pass named. Used by differential tests and fuzzing.
	CheckIR bool
	// OnCompileError, when set, observes every supervised JIT-tier failure
	// the engine degrades into an interpreter fallback. The error is always
	// a *CompileError; errors.As sees through it to the underlying cause
	// (CheckIR verifier rejections surface as *passes.IRError).
	OnCompileError func(fn string, err error)

	// Faults, when set, is the fault-injection schedule evaluated at every
	// compile-path and dispatch injection point (the chaos suite's driver).
	Faults *faults.Injector
	// CompileStepBudget bounds the abstract work units one compilation
	// attempt may spend (0 = DefaultCompileStepBudget). Exhaustion fails
	// the attempt with a Budget-typed CompileError.
	CompileStepBudget int64
	// QuarantineBackoff is the initial retry delay, in calls, after a
	// contained compile failure (0 = DefaultQuarantineBackoff). It doubles
	// per quarantine round-trip.
	QuarantineBackoff int
	// QuarantineCleanRuns is how many consecutive clean interpreter runs a
	// quarantined function needs before a retry (0 = default).
	QuarantineCleanRuns int
	// MaxCompileAttempts caps quarantine round-trips before the function
	// is permanently interpreter-only (0 = DefaultMaxCompileAttempts).
	MaxCompileAttempts int
	// Passes overrides the optimization pipeline (nil = the standard one).
	// Tests use it to inject deliberately broken passes and prove the
	// supervisor attributes them.
	Passes []passes.Pass
}

// Stats are the per-run counters the paper's Figure 4 reports.
type Stats struct {
	NrJIT      int // functions Ion-compiled (JIT-eligible and hot)
	NrDisJIT   int // of those, compiled with >= 1 pass disabled by JITBULL
	NrNoJIT    int // of those, forced to interpreter-only by JITBULL
	Bailouts   int
	Compiles   int
	Recompiles int
	InterpOnly int // hot but not JIT-eligible (outside the JIT subset)

	// Supervisor counters: every JIT-tier failure the engine contained.
	CompileErrors  int // typed failures recorded (all causes)
	CompilePanics  int // of those, recovered compiler/dispatch panics
	CompileBudgets int // of those, compile step budget exhaustions
	InjectedFaults int // of those, fired by the fault-injection framework
	Quarantined    int // quarantine entries (failed functions parked with backoff)
	Requalified    int // quarantined functions re-promoted after a clean retry
}

type tier int

const (
	tierInterp tier = iota
	tierBaseline
	tierIon
)

type fnState struct {
	fd   *ast.FuncDecl
	fn   *bytecode.Function
	tier tier

	calls int

	// Type feedback.
	paramTypes []value.Type
	paramBad   []bool
	retType    value.Type
	retBad     bool

	code           *lir.Code
	jitEligible    bool // mirbuild succeeded at least once
	disabledPasses map[string]bool
	bailouts       int
	counted        bool // already counted in Stats.NrJIT

	// Supervisor state (see supervisor.go).
	quar      quarState
	retryAt   int // earliest call count for a quarantine retry
	backoff   int // current retry delay (doubles per round-trip)
	cleanRuns int // consecutive clean interpreter runs while quarantined
	attempts  int // quarantine round-trips so far
}

// Engine is a tiered nanojs runtime instance. It is not safe for
// concurrent use.
type Engine struct {
	Prog  *bytecode.Program
	VM    *interp.VM
	arena *heap.Arena
	cfg   Config

	fns    []*fnState
	policy Policy
	pool   native.Pool

	Stats    Stats
	hijacked *HijackError
}

var _ interp.Dispatcher = (*Engine)(nil)
var _ native.Hooks = (*Engine)(nil)

// New parses, compiles and prepares src for execution.
func New(src string, cfg Config) (*Engine, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	prog, err := compiler.CompileProgram(astProg)
	if err != nil {
		return nil, err
	}
	prog.Source = src
	return NewFromProgram(prog, astProg, cfg)
}

// NewFromProgram builds an engine over already-compiled code.
func NewFromProgram(prog *bytecode.Program, astProg *ast.Program, cfg Config) (*Engine, error) {
	if cfg.BaselineThreshold <= 0 {
		cfg.BaselineThreshold = DefaultBaselineThreshold
	}
	if cfg.IonThreshold <= 0 {
		cfg.IonThreshold = DefaultIonThreshold
	}
	arena := heap.New(cfg.HeapCells)
	vm := interp.New(prog, arena, cfg.Out)
	if cfg.MaxSteps > 0 {
		vm.MaxSteps = cfg.MaxSteps
	}
	e := &Engine{Prog: prog, VM: vm, arena: arena, cfg: cfg}
	vm.Dispatch = e

	byName := map[string]*ast.FuncDecl{}
	for _, fd := range astProg.Funcs() {
		byName[fd.Name] = fd
	}
	e.fns = make([]*fnState, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		st := &fnState{fn: fn, fd: byName[fn.Name]}
		st.paramTypes = make([]value.Type, fn.NumParams)
		st.paramBad = make([]bool, fn.NumParams)
		e.fns[i] = st
	}
	return e, nil
}

// SetPolicy installs the JITBULL policy hook (nil removes it).
func (e *Engine) SetPolicy(p Policy) { e.policy = p }

// Arena returns the shared heap.
func (e *Engine) Arena() *heap.Arena { return e.arena }

// Hijacked returns the recorded control-flow hijack, if any.
func (e *Engine) Hijacked() *HijackError { return e.hijacked }

// GlobalGet implements native.Hooks.
func (e *Engine) GlobalGet(slot int) value.Value { return e.VM.Globals[slot] }

// GlobalSet implements native.Hooks.
func (e *Engine) GlobalSet(slot int, v value.Value) { e.VM.Globals[slot] = v }

// Random implements native.Hooks.
func (e *Engine) Random() float64 { return e.VM.Random() }

// Run executes the program's top-level code.
func (e *Engine) Run() (value.Value, error) {
	return e.VM.Exec(e.Prog.Main(), nil)
}

// Global returns the value of a named global variable (undefined when the
// name does not exist).
func (e *Engine) Global(name string) value.Value {
	for i, n := range e.Prog.GlobalNames {
		if n == name {
			return e.VM.Globals[i]
		}
	}
	return value.Undef()
}

// CallFunction implements the dispatcher: every nanojs call funnels
// through here, where tiering decisions are made.
func (e *Engine) CallFunction(idx int, args []value.Value) (value.Value, error) {
	if idx < 0 || idx >= len(e.fns) {
		return value.Undef(), &interp.RuntimeError{Msg: fmt.Sprintf("unknown function index %d", idx)}
	}
	st := e.fns[idx]

	// Control-flow integrity: calling through an overwritten JIT code
	// pointer means the attacker's payload runs instead of the function.
	if !e.arena.CodePointerOK(idx) {
		h := &HijackError{FuncIndex: idx, FuncName: st.fn.Name}
		if e.hijacked == nil {
			e.hijacked = h
		}
		return value.Undef(), h
	}

	st.calls++
	if e.cfg.DisableJIT || st.fd == nil {
		return e.VM.Exec(st.fn, args)
	}

	if st.code == nil {
		e.profile(st, args)
	}
	if st.code == nil && st.calls >= e.cfg.IonThreshold && e.mayCompile(st) {
		e.compile(idx, st)
	}
	if st.tier == tierInterp && st.calls >= e.cfg.BaselineThreshold {
		st.tier = tierBaseline
	}

	if st.code != nil {
		res, status, err := e.execNative(st, args)
		e.VM.AddSteps(res.Steps)
		if err != nil {
			return value.Undef(), err
		}
		if status == native.StatusOK {
			e.observeReturn(st, res.Value())
			return res.Value(), nil
		}
		// Bailout: fall back to the interpreter for this call.
		e.Stats.Bailouts++
		st.bailouts++
		if st.bailouts >= maxBailoutsBeforeBlacklist {
			st.code = nil
			e.demote(st)
			e.quarantine(st)
		}
	}

	v, err := e.VM.Exec(st.fn, args)
	if err == nil {
		e.observeReturn(st, v)
		if st.quar == qQuarantined {
			st.cleanRuns++
		}
	}
	return v, err
}

// profile records argument type feedback for a not-yet-compiled function.
func (e *Engine) profile(st *fnState, args []value.Value) {
	for i := 0; i < len(st.paramTypes); i++ {
		var t value.Type
		if i < len(args) {
			t = args[i].Type()
		}
		switch {
		case st.paramTypes[i] == value.Undefined && st.calls == 1:
			st.paramTypes[i] = t
		case st.paramTypes[i] == t:
		case st.paramTypes[i] == value.Boolean && t == value.Number,
			st.paramTypes[i] == value.Number && t == value.Boolean:
			st.paramTypes[i] = value.Number
		default:
			st.paramBad[i] = true
		}
	}
}

func (e *Engine) observeReturn(st *fnState, v value.Value) {
	if st.code != nil {
		return // feedback only matters before compilation
	}
	t := v.Type()
	switch {
	case st.retType == value.Undefined:
		st.retType = t
	case st.retType == t:
	case st.retType == value.Number && (t == value.Boolean || t == value.Undefined),
		(st.retType == value.Boolean || st.retType == value.Undefined) && t == value.Number:
		st.retType = value.Number
	default:
		st.retBad = true
	}
}

// compile attempts Ion compilation of function idx under the supervisor,
// applying the JITBULL policy when installed. It implements the three
// scenarios of §V; every failure is typed, attributed, and degraded per
// failCompile.
func (e *Engine) compile(idx int, st *fnState) {
	if len(e.cfg.DisabledPasses) > 0 && st.disabledPasses == nil {
		st.disabledPasses = map[string]bool{}
		for _, name := range e.cfg.DisabledPasses {
			st.disabledPasses[name] = true
		}
	}
	types := make([]value.Type, len(st.paramTypes))
	copy(types, st.paramTypes)
	for i, bad := range st.paramBad {
		if bad {
			types[i] = value.String // poisoned: mirbuild rejects it
		}
	}
	opts := mirbuild.Options{
		ParamTypes: types,
		GlobalType: func(slot int) value.Type { return e.VM.Globals[slot].Type() },
		ReturnType: func(fnIdx int) value.Type {
			target := e.fns[fnIdx]
			if target.retBad {
				return value.String // poisoned
			}
			if target.retType == value.Undefined {
				return value.Number // undefined flows as NaN
			}
			return target.retType
		},
	}

	code, cerr := e.compileAttempt(st, opts)
	if cerr != nil {
		e.failCompile(st, cerr)
		return
	}
	if !st.counted {
		st.counted = true
		e.Stats.NrJIT++
	}
	st.code = code
	st.tier = tierIon
	st.bailouts = 0
	if st.quar == qQuarantined {
		// A quarantined function compiled cleanly on retry: requalify.
		st.quar = qNone
		st.attempts = 0
		e.Stats.Requalified++
	}
}

// RunScript is a convenience: build an engine for src, run it, and return
// the engine for inspection.
func RunScript(src string, cfg Config) (*Engine, value.Value, error) {
	e, err := New(src, cfg)
	if err != nil {
		return nil, value.Undef(), err
	}
	v, err := e.Run()
	return e, v, err
}

// IsCrash reports whether err is a simulated segfault.
func IsCrash(err error) bool {
	var c *heap.CrashError
	return errors.As(err, &c)
}

// IsHijack reports whether err is a control-flow hijack.
func IsHijack(err error) bool {
	var h *HijackError
	return errors.As(err, &h)
}

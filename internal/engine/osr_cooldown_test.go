package engine

// Regression tests for the per-ordinal OSR cooldown map's lifecycle: the
// map judges ONE artifact, so every path that discards the artifact —
// successful reinstall, bailout-storm blacklist, deopt-storm requalify —
// must drop the map with it. Before the discardArtifact fix, only a
// successful install cleared it, so a function cycling through
// requalification accumulated cooldown entries about code that no longer
// existed, and the stale ordinals pre-parked the NEXT artifact's loop
// headers.

import (
	"testing"

	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/native"
)

// stormEngine builds an engine whose first user function is set up for a
// hand-driven deopt storm.
func stormEngine(t *testing.T) (*Engine, *fnState) {
	t.Helper()
	e, err := New(`function f(x) { return x + 1; } print(f(1));`, Config{OSR: true, Speculate: true})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for _, st := range e.fns {
		if st.fn.Name == "f" {
			return e, st
		}
	}
	t.Fatal("function f not found")
	return nil, nil
}

// TestOSRCooldownClearedOnDeoptStormRequalify drives handleDeopt to the
// requalify threshold with cooldown entries parked and asserts the whole
// OSR/deopt history leaves with the artifact.
func TestOSRCooldownClearedOnDeoptStormRequalify(t *testing.T) {
	e, st := stormEngine(t)
	st.code = &lir.Code{DeoptExits: []lir.DeoptExit{{Ordinal: 0}}}
	st.deopts = maxDeoptsBeforeRequalify - 1
	e.coolDown(st, 1)
	e.coolDown(st, 2)

	_, done, err := e.handleDeopt(st, &native.DeoptState{Exit: 0})
	if err != nil || done {
		t.Fatalf("handleDeopt = done %v, err %v; want the bailout fallback", done, err)
	}
	if st.code != nil {
		t.Fatal("deopt storm did not discard the artifact")
	}
	if !st.disabledPasses["TypeSpeculation"] {
		t.Fatal("deopt storm did not disable TypeSpeculation")
	}
	if len(st.osrCooldown) != 0 {
		t.Errorf("cooldown map survived the requalify discard: %v", st.osrCooldown)
	}
	if st.deopts != 0 {
		t.Errorf("deopt count %d survived the requalify discard", st.deopts)
	}
}

// TestOSRCooldownDoesNotGrowAcrossRecompiles cycles one function through
// repeated cooldown + requalify rounds with a fresh ordinal per round and
// asserts the map never accumulates across cycles — the monotonic-growth
// regression the old install-only clearing allowed.
func TestOSRCooldownDoesNotGrowAcrossRecompiles(t *testing.T) {
	e, st := stormEngine(t)
	for cycle := 0; cycle < 8; cycle++ {
		st.code = &lir.Code{DeoptExits: []lir.DeoptExit{{Ordinal: 0}}}
		st.deopts = maxDeoptsBeforeRequalify - 1
		e.coolDown(st, cycle) // a distinct ordinal every cycle
		if len(st.osrCooldown) != 1 {
			t.Fatalf("cycle %d: cooldown = %d entries before discard, want 1 (stale entries leaked in)",
				cycle, len(st.osrCooldown))
		}
		if _, done, err := e.handleDeopt(st, &native.DeoptState{Exit: 0}); err != nil || done {
			t.Fatalf("cycle %d: handleDeopt = done %v, err %v", cycle, done, err)
		}
		if len(st.osrCooldown) != 0 {
			t.Fatalf("cycle %d: cooldown map grew across recompiles: %v", cycle, st.osrCooldown)
		}
	}
}

// TestOSRCooldownClearedOnBailoutBlacklist pins the same clearing on the
// bailout-storm blacklist path in CallFunction.
func TestOSRCooldownClearedOnBailoutBlacklist(t *testing.T) {
	e, st := stormEngine(t)
	st.code = &lir.Code{}
	e.coolDown(st, 5)
	st.bailouts = maxBailoutsBeforeBlacklist
	e.discardArtifact(st)
	e.demote(st)
	e.quarantine(st, "test: bailout storm")
	if st.code != nil || len(st.osrCooldown) != 0 || st.deopts != 0 {
		t.Errorf("blacklist discard left OSR history behind: code=%v cooldown=%v deopts=%d",
			st.code, st.osrCooldown, st.deopts)
	}
}

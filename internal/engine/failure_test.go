package engine

// Failure-injection tests: resource exhaustion, hostile configurations and
// recovery behavior.

import (
	"errors"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/interp"
)

func TestHeapExhaustionIsAScriptError(t *testing.T) {
	src := `
var keep = new Array(0);
for (var i = 0; i < 100000; i++) {
  keep.push(i);
  var waste = new Array(64);
  waste[0] = i;
}`
	e, err := New(src, Config{HeapCells: 2048, DisableJIT: true})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := e.Run()
	if runErr == nil {
		t.Fatal("expected out-of-memory error")
	}
	var re *interp.RuntimeError
	if !errors.As(runErr, &re) && !IsCrash(runErr) {
		t.Fatalf("OOM should surface as a runtime error or fault, got %T %v", runErr, runErr)
	}
}

func TestStepBudgetCoversNativeCode(t *testing.T) {
	// The hot loop runs in native code; the shared budget must still
	// stop it.
	src := `
function spin(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    for (var j = 0; j < n; j++) { s += i ^ j; }
  }
  return s;
}
var result = 0;
for (var r = 0; r < 100000; r++) { result += spin(1000); }
`
	e, err := New(src, Config{IonThreshold: 5, MaxSteps: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := e.Run()
	if runErr == nil {
		t.Fatal("expected budget exhaustion")
	}
	msg := runErr.Error()
	if !strings.Contains(msg, "budget") {
		t.Fatalf("unexpected error: %v", runErr)
	}
}

func TestDeepNativeRecursion(t *testing.T) {
	src := `
function down(n) {
  if (n <= 0) { return 0; }
  return down(n - 1) + 1;
}
var warm = 0;
for (var i = 0; i < 50; i++) { warm += down(5); }
var result = down(3000);
`
	e, err := New(src, Config{IonThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Global("result").AsNumber(); got != 3000 {
		t.Fatalf("result = %v", got)
	}
	if e.Stats().NrJIT != 1 {
		t.Fatalf("down not JITed: %+v", e.Stats())
	}
}

func TestBailoutBlacklistEventuallyStopsRecompiling(t *testing.T) {
	// A function whose guard fails on every call after compilation: it
	// must be blacklisted, not bail forever.
	src := `
function probe(a, i) { return a[i] + 1; }
var a = [1, 2, 3];
var result = 0;
for (var r = 0; r < 200; r++) { result += probe(a, 0); }
for (var r = 0; r < 200; r++) { result += probe(a, 99); }
`
	e, err := New(src, Config{IonThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Bailouts == 0 {
		t.Fatalf("expected bailouts: %+v", e.Stats())
	}
	if e.Stats().Bailouts > maxBailoutsBeforeBlacklist {
		t.Fatalf("blacklist did not engage: %d bailouts", e.Stats().Bailouts)
	}
}

func TestZeroParamAndManyParamFunctions(t *testing.T) {
	src := `
function zero() { return 7; }
function many(a, b, c, d, e, f, g, h) { return a + b + c + d + e + f + g + h; }
var result = 0;
for (var i = 0; i < 60; i++) {
  result += zero() + many(1, 2, 3, 4, 5, 6, 7, 8);
}
`
	e, err := New(src, Config{IonThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Global("result").AsNumber(); got != 60*(7+36) {
		t.Fatalf("result = %v", got)
	}
	if e.Stats().NrJIT != 2 {
		t.Fatalf("stats: %+v", e.Stats())
	}
}

func TestMissingArgsAtCompiledCallSite(t *testing.T) {
	// Calls with fewer args than params observe Undefined for the missing
	// ones and must not be miscompiled.
	src := `
function f(a, b) { return a + (b === undefined ? 0 : b); }
var result = 0;
for (var i = 0; i < 100; i++) { result += f(1, 2); }
result += f(5);
`
	// f uses ===undefined -> not JIT-able; semantic check only.
	e, err := New(src, Config{IonThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Global("result").AsNumber(); got != 305 {
		t.Fatalf("result = %v", got)
	}
}

func TestEngineRejectsBadSource(t *testing.T) {
	if _, err := New("var = ;", Config{}); err == nil {
		t.Fatal("syntax error must surface from New")
	}
	if _, err := New("undeclared();", Config{}); err == nil {
		t.Fatal("compile error must surface from New")
	}
}

func TestConfigDefaults(t *testing.T) {
	e, err := New("var result = 1;", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.BaselineThreshold != DefaultBaselineThreshold || e.cfg.IonThreshold != DefaultIonThreshold {
		t.Fatalf("defaults not applied: %+v", e.cfg)
	}
}

// Compilation supervisor: every Ion compilation attempt runs under panic
// recovery and a step budget, and every failure — verifier rejection,
// injected fault, compiler panic, budget exhaustion, policy no-go — is
// converted into a typed, stage-attributed CompileError. Failed functions
// are not blacklisted forever: they enter a quarantine that retries with
// exponential backoff once the function has demonstrated sustained clean
// interpreter runs, and only deterministic failures (unsupported source,
// policy NoJIT) or repeated quarantine churn become permanent.
package engine

import (
	"errors"
	"fmt"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/mc"
	"github.com/jitbull/jitbull/internal/mirbuild"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/regalloc"
	"github.com/jitbull/jitbull/internal/value"
)

// Compilation stages, in pipeline order, used for CompileError attribution.
const (
	StageQueue    = "queue"    // background-queue job startup
	StageMIRBuild = "mirbuild" // SSA graph construction from the AST
	StagePasses   = "passes"   // the OptimizeMIR pass pipeline
	StagePolicy   = "policy"   // the JITBULL go/no-go decision
	StageLower    = "lir"      // LIR lowering
	StageRegalloc = "regalloc" // register allocation
	StageFuse     = "fuse"     // superinstruction fusion
	StageMC       = "mc"       // machine-code lowering and W^X install
	StageNative   = "native"   // native-code dispatch
	StageOSR      = "osr"      // loop-header on-stack replacement entry
	StageDeopt    = "deopt"    // speculation-guard deoptimization exit
)

// Supervisor defaults.
const (
	// DefaultCompileStepBudget bounds the abstract work units (roughly IR
	// instructions visited) one compilation attempt may spend.
	DefaultCompileStepBudget = 1 << 20
	// DefaultQuarantineBackoff is the initial retry delay, in calls to the
	// function, after a contained compile failure.
	DefaultQuarantineBackoff = 256
	// DefaultQuarantineCleanRuns is how many consecutive clean interpreter
	// executions a quarantined function must bank before a retry.
	DefaultQuarantineCleanRuns = 32
	// DefaultMaxCompileAttempts caps quarantine round-trips before the
	// function is permanently pinned to the interpreter.
	DefaultMaxCompileAttempts = 4
)

// ErrPolicyNoJIT marks a compilation aborted by the JITBULL policy's
// scenario 3 (a matched pass is mandatory): a security decision, not a
// compiler failure, and always permanent.
var ErrPolicyNoJIT = errors.New("JITBULL policy: function forced to NoJIT")

// CompileError is a supervised, stage-attributed JIT-tier failure.
type CompileError struct {
	Func     string // function being compiled
	Stage    string // Stage* constant where the failure surfaced
	Err      error  // underlying cause (never nil)
	Panicked bool   // recovered from a panic
	Injected bool   // caused by the fault-injection framework
	Budget   bool   // compile step budget exhaustion
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	kind := "error"
	switch {
	case e.Panicked:
		kind = "panic"
	case e.Budget:
		kind = "budget"
	}
	return fmt.Sprintf("compile %s in %s stage %s: %v", kind, e.Func, e.Stage, e.Err)
}

// Unwrap exposes the cause so errors.Is/As see through the supervisor
// (difftest matches *passes.IRError this way).
func (e *CompileError) Unwrap() error { return e.Err }

// quarState is the supervisor's verdict on a function's JIT future.
type quarState int

const (
	qNone        quarState = iota // eligible
	qQuarantined                  // contained failure; retry after backoff + clean runs
	qPermanent                    // unsupported, policy NoJIT, or quarantine churn
)

func (e *Engine) compileStepBudget() int64 {
	if e.cfg.CompileStepBudget > 0 {
		return e.cfg.CompileStepBudget
	}
	return DefaultCompileStepBudget
}

func (e *Engine) quarantineBackoff() int {
	if e.cfg.QuarantineBackoff > 0 {
		return e.cfg.QuarantineBackoff
	}
	return DefaultQuarantineBackoff
}

func (e *Engine) quarantineCleanRuns() int {
	if e.cfg.QuarantineCleanRuns > 0 {
		return e.cfg.QuarantineCleanRuns
	}
	return DefaultQuarantineCleanRuns
}

func (e *Engine) maxCompileAttempts() int {
	if e.cfg.MaxCompileAttempts > 0 {
		return e.cfg.MaxCompileAttempts
	}
	return DefaultMaxCompileAttempts
}

// mayCompile reports whether the supervisor allows a compilation attempt
// for the function right now.
func (e *Engine) mayCompile(st *fnState) bool {
	switch st.quar {
	case qNone:
		return true
	case qQuarantined:
		return st.calls >= st.retryAt && st.cleanRuns >= e.quarantineCleanRuns()
	default:
		return false
	}
}

// quarantine parks the function on the interpreter with exponential
// backoff, escalating to permanent after maxCompileAttempts round-trips.
// reason attributes the transition in the audit log.
func (e *Engine) quarantine(st *fnState, reason string) {
	st.attempts++
	if st.attempts >= e.maxCompileAttempts() {
		st.quar = qPermanent
		e.audit.Record(obs.AuditEvent{
			Func:    st.fn.Name,
			Verdict: obs.VerdictPermanent,
			Reason:  fmt.Sprintf("quarantine attempts exhausted (%d): %s", st.attempts, reason),
		})
		e.journey(st, obs.StagePermanent, "quarantine attempts exhausted (%d)", st.attempts)
		return
	}
	if st.backoff == 0 {
		st.backoff = e.quarantineBackoff()
	} else {
		st.backoff *= 2
	}
	st.quar = qQuarantined
	st.retryAt = st.calls + st.backoff
	st.cleanRuns = 0
	e.m.quarantined.Inc()
	e.audit.Record(obs.AuditEvent{
		Func:    st.fn.Name,
		Verdict: obs.VerdictQuarantine,
		Reason:  reason,
	})
	e.journey(st, obs.StageQuarantined, "%s", reason)
	e.watchdog.Signal(obs.Signal{Kind: obs.SigQuarantine, Func: st.fn.Name, Cause: reason})
}

// demote drops the function's tier to match its remaining execution modes
// after its Ion code is discarded (the stale-tier fix: a blacklisted
// function must not keep reporting tierIon).
func (e *Engine) demote(st *fnState) {
	if st.calls >= e.cfg.BaselineThreshold {
		st.tier = tierBaseline
	} else {
		st.tier = tierInterp
	}
}

// recordCompileError updates the failure counters and surfaces the error
// through Config.OnCompileError.
func (e *Engine) recordCompileError(cerr *CompileError) {
	e.m.compileErrors.Inc()
	if cerr.Panicked {
		e.m.compilePanics.Inc()
	}
	if cerr.Injected {
		e.m.injectedFaults.Inc()
	}
	if cerr.Budget {
		e.m.compileBudgets.Inc()
	}
	e.audit.Record(obs.AuditEvent{
		Func:    cerr.Func,
		Verdict: obs.VerdictCompileError,
		Stage:   cerr.Stage,
		Reason:  cerr.Err.Error(),
	})
	if e.cfg.OnCompileError != nil {
		e.cfg.OnCompileError(cerr.Func, cerr)
	}
}

// newCompileError types an error returned by a compile stage.
func newCompileError(fn, stage string, err error) *CompileError {
	return &CompileError{
		Func:     fn,
		Stage:    stage,
		Err:      err,
		Injected: faults.IsInjected(err),
		Budget:   errors.Is(err, faults.ErrCompileBudget),
	}
}

// panicToCompileError types a recovered panic value.
func panicToCompileError(fn, stage string, r any) *CompileError {
	if f, ok := faults.FromPanic(r); ok {
		return &CompileError{
			Func:     fn,
			Stage:    stage,
			Err:      &faults.InjectedError{Fault: f},
			Panicked: true,
			Injected: true,
		}
	}
	return &CompileError{
		Func:     fn,
		Stage:    stage,
		Err:      fmt.Errorf("compiler panic: %v", r),
		Panicked: true,
	}
}

// failCompile applies the supervisor's degradation policy to a failed
// attempt. Unsupported source is the expected "outside the JIT subset"
// case: permanent and silent, counted as InterpOnly exactly once. Policy
// NoJIT and deterministic mirbuild rejections fail safe to permanent
// interpreter-only execution; everything else (injected faults, panics,
// budget exhaustion, verifier rejections) is contained into quarantine.
func (e *Engine) failCompile(st *fnState, cerr *CompileError) {
	if errors.Is(cerr.Err, mirbuild.ErrUnsupported) && !cerr.Injected {
		st.quar = qPermanent
		if !st.jitEligible {
			e.m.interpOnly.Inc()
		}
		return
	}
	e.recordCompileError(cerr)
	if errors.Is(cerr.Err, ErrPolicyNoJIT) ||
		(cerr.Stage == StageMIRBuild && !cerr.Injected && !cerr.Budget) {
		st.quar = qPermanent
		if errors.Is(cerr.Err, ErrPolicyNoJIT) {
			st.noJITPinned = true
		}
		e.audit.Record(obs.AuditEvent{
			Func:    st.fn.Name,
			Verdict: obs.VerdictPermanent,
			Stage:   cerr.Stage,
			Reason:  cerr.Err.Error(),
		})
		e.journey(st, obs.StagePermanent, "%s", cerr.Err.Error())
		return
	}
	e.quarantine(st, cerr.Error())
}

// compileAttempt is one supervised run of the Ion pipeline: mirbuild →
// passes (+ policy) → lower → regalloc, under panic recovery and a fresh
// step-budget meter. It runs on the owner goroutine for synchronous
// compiles and on a background worker for queued ones, so it only reads
// the immutable request snapshot — all fnState mutation is deferred to
// the returned outcome, applied at a safe point by applyOutcome. Attempts
// of one engine are serialized by compileMu (the policy is not
// concurrent-safe); a panic never escapes.
func (e *Engine) compileAttempt(req *compileRequest) (o *compileOutcome) {
	e.compileMu.Lock()
	defer e.compileMu.Unlock()
	o = &compileOutcome{req: req}
	fctx := &faults.CompileCtx{
		Inj:   e.cfg.Faults,
		Meter: &faults.Meter{Limit: e.compileStepBudget()},
		Func:  req.fnName,
		Trace: e.tracer,
	}
	stage := StageQueue
	defer func() {
		if r := recover(); r != nil {
			o.code = nil
			o.cerr = panicToCompileError(req.fnName, stage, r)
		}
	}()

	if req.async {
		// The queue injection point: stall exhausts this attempt's budget,
		// panic exercises the worker-side supervisor recovery.
		if err := fctx.Step(faults.PointQueue, req.fnName, 0); err != nil {
			o.cerr = newCompileError(req.fnName, stage, err)
			return o
		}
	}

	stage = StageMIRBuild
	opts := req.opts
	opts.Faults = fctx
	g, err := mirbuild.Build(e.Prog, req.fd, opts)
	if err != nil {
		o.cerr = newCompileError(req.fnName, stage, err)
		return o
	}
	o.jitEligible = true

	stage = StagePasses
	var pobs passes.Observer
	var finish func() CompileDecision
	if e.policy != nil && e.policy.Active() {
		pobs, finish = e.policy.BeginCompile(req.fnName)
	}
	if err := passes.RunWith(g, passes.RunOptions{
		Bugs:     e.cfg.Bugs,
		Disabled: req.disabled,
		Observer: pobs,
		CheckIR:  e.cfg.CheckIR,
		Pipeline: e.cfg.Passes,
		Faults:   fctx,
		Metrics:  e.histReg(),
	}); err != nil {
		o.cerr = newCompileError(req.fnName, stage, err)
		return o
	}
	e.m.compiles.Inc()

	if finish != nil {
		stage = StagePolicy
		o.decided = true
		dsp := e.tracer.Begin(obs.CatPolicy, "decide")
		decision := finish()
		if req.cacheable {
			if cp, ok := e.policy.(CachingPolicy); ok {
				o.payload = cp.TakeVerdictPayload()
			}
		}
		if decision.NoJIT {
			// Scenario 3: a matched pass is mandatory — OptimizeMIR returns
			// FAILURE with Recompile=false.
			dsp.End(obs.S("fn", req.fnName), obs.S("verdict", "nojit"))
			o.noJIT = true
			o.cerr = newCompileError(req.fnName, StagePolicy, ErrPolicyNoJIT)
			return o
		}
		if len(decision.DisabledPasses) > 0 {
			dsp.End(obs.S("fn", req.fnName), obs.S("verdict", "disable-pass"),
				obs.I("disabled", int64(len(decision.DisabledPasses))))
			// Scenario 2: FAILURE with Recompile=true — retry with the
			// dangerous passes disabled.
			if req.disabled == nil {
				req.disabled = map[string]bool{}
			}
			grew := false
			for _, name := range decision.DisabledPasses {
				if !req.disabled[name] {
					req.disabled[name] = true
					grew = true
				}
			}
			o.disabled = req.disabled
			if grew {
				o.grew = true
				e.m.recompiles.Inc()
				stage = StageMIRBuild
				g2, err := mirbuild.Build(e.Prog, req.fd, opts)
				if err != nil {
					o.cerr = newCompileError(req.fnName, stage, err)
					return o
				}
				stage = StagePasses
				if err := passes.RunWith(g2, passes.RunOptions{
					Bugs:     e.cfg.Bugs,
					Disabled: req.disabled,
					CheckIR:  e.cfg.CheckIR,
					Pipeline: e.cfg.Passes,
					Faults:   fctx,
					Metrics:  e.histReg(),
				}); err != nil {
					o.cerr = newCompileError(req.fnName, stage, err)
					return o
				}
				g = g2
			}
		} else {
			dsp.End(obs.S("fn", req.fnName), obs.S("verdict", "go"))
		}
	}

	stage = StageLower
	code, err := lir.LowerWith(g, fctx)
	if err != nil {
		o.cerr = newCompileError(req.fnName, stage, err)
		return o
	}
	stage = StageRegalloc
	if err := regalloc.AllocateWith(code, fctx); err != nil {
		o.cerr = newCompileError(req.fnName, stage, err)
		return o
	}
	if !e.cfg.NoFuse {
		stage = StageFuse
		if err := lir.FuseWith(code, fctx, e.histReg()); err != nil {
			o.cerr = newCompileError(req.fnName, stage, err)
			return o
		}
	}
	o.code = code
	return o
}

// mcActive reports whether the machine-code tier is in play for this
// engine: supported by the build and platform, not disabled by
// configuration.
func (e *Engine) mcActive() bool {
	return mc.Supported() && !e.cfg.NoMC && !e.cfg.DisableJIT
}

// topTierName attributes the executor that serves st's installed
// artifact: "mc" (real machine code), "fused" (direct-threaded
// superinstructions), or "switch" (the unfused reference loop).
func topTierName(st *fnState) string {
	switch {
	case st.mcu != nil:
		return "mc"
	case st.code != nil && st.code.Fused != nil:
		return "fused"
	default:
		return "switch"
	}
}

// attachMC lowers st's freshly installed artifact to machine code and
// installs it into W^X pages, making mc the function's top tier. It runs
// once per installed artifact (mcTried latches), on the owner goroutine,
// for every install path — sync compile, async mailbox, shared cache,
// persistent store.
//
// Failure containment mirrors execNative, with one deliberate difference:
// the Ion artifact is already installed and correct, so a fault here —
// injected at mc.emit/mc.install or genuine — must never fail the
// function. The attach is quarantined (recorded as an mc-stage
// CompileError plus a quarantine verdict on the audit log) and the
// function degrades to the threaded tier. mc.ErrUnsupported is legitimate
// tiering, not a failure: silent fallback.
func (e *Engine) attachMC(st *fnState) {
	if st.mcTried || st.code == nil || !e.mcActive() {
		return
	}
	st.mcTried = true
	fctx := &faults.CompileCtx{
		Inj:   e.cfg.Faults,
		Meter: &faults.Meter{Limit: e.compileStepBudget()},
		Func:  st.fn.Name,
		Trace: e.tracer,
	}
	var cerr *CompileError
	func() {
		defer func() {
			if r := recover(); r != nil {
				f, ok := faults.FromPanic(r)
				if !ok {
					panic(r) // genuine engine bug: propagate
				}
				cerr = &CompileError{
					Func:     st.fn.Name,
					Stage:    StageMC,
					Err:      &faults.InjectedError{Fault: f},
					Panicked: true,
					Injected: true,
				}
			}
		}()
		if err := fctx.Step(faults.PointMCEmit, st.fn.Name, 0); err != nil {
			cerr = newCompileError(st.fn.Name, StageMC, err)
			return
		}
		prog, err := mc.Lower(st.code)
		if err != nil {
			if !errors.Is(err, mc.ErrUnsupported) {
				cerr = newCompileError(st.fn.Name, StageMC, err)
			}
			return
		}
		if err := fctx.Step(faults.PointMCInstall, st.fn.Name, 0); err != nil {
			cerr = newCompileError(st.fn.Name, StageMC, err)
			return
		}
		unit, err := mc.Install(prog)
		if err != nil {
			if !errors.Is(err, mc.ErrUnsupported) {
				cerr = newCompileError(st.fn.Name, StageMC, err)
			}
			return
		}
		st.mcu = unit
	}()
	if cerr != nil {
		st.mcu = nil
		e.recordCompileError(cerr)
		e.audit.Record(obs.AuditEvent{
			Func:    st.fn.Name,
			Verdict: obs.VerdictQuarantine,
			Stage:   StageMC,
			Reason:  "machine-code tier quarantined for this artifact: " + cerr.Err.Error(),
		})
		e.journey(st, obs.StageQuarantined, "mc tier: %s", cerr.Err.Error())
	}
}

// execNative dispatches one call into the function's top native tier —
// machine code when a unit is attached, else the threaded/unfused
// executor — with fault containment: an injected dispatch failure (error
// or panic) is recorded as a typed native-stage CompileError and degraded
// to a bailout, so the caller falls back to the interpreter for this call
// with identical semantics. Non-injected panics are genuine engine bugs
// and propagate.
func (e *Engine) execNative(st *fnState, args []value.Value) (res native.Result, status native.Status, err error) {
	budget := e.VM.MaxSteps - e.VM.Steps()
	if e.cfg.Faults == nil {
		if st.mcu != nil {
			res, status, err = st.mcu.Exec(args, e, budget, &e.pool)
			if status == native.StatusBail && err == nil {
				e.tracer.Instant(obs.CatEngine, "native.bail",
					obs.S("fn", st.fn.Name), obs.I("steps", res.Steps))
			}
			return res, status, err
		}
		if !e.tracer.Enabled() {
			// Only injected faults are contained here (genuine panics propagate
			// either way), so without an injector skip the recovery frame — this
			// is the per-call hot path of every production dispatch.
			return native.Exec(st.code, args, e, budget, &e.pool)
		}
		// No injector means no injected panics: still no recovery frame, but
		// route through ExecWith so guard bailouts show up in the trace.
		return native.ExecWith(st.code, args, e, budget, &e.pool, nil, e.tracer)
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := faults.FromPanic(r)
			if !ok {
				panic(r)
			}
			e.recordCompileError(&CompileError{
				Func:     st.fn.Name,
				Stage:    StageNative,
				Err:      &faults.InjectedError{Fault: f},
				Panicked: true,
				Injected: true,
			})
			res, status, err = native.Result{}, native.StatusBail, nil
		}
	}()
	if st.mcu != nil {
		// The machine-code dispatch path evaluates the same native-point
		// injection ExecWith performs for the threaded tiers, then runs the
		// unit; containment below is shared.
		if ferr := e.cfg.Faults.Check(faults.PointNative, st.fn.Name); ferr != nil {
			err = ferr
		} else {
			res, status, err = st.mcu.Exec(args, e, budget, &e.pool)
			if status == native.StatusBail && err == nil {
				e.tracer.Instant(obs.CatEngine, "native.bail",
					obs.S("fn", st.fn.Name), obs.I("steps", res.Steps))
			}
		}
	} else {
		res, status, err = native.ExecWith(st.code, args, e, budget, &e.pool, e.cfg.Faults, e.tracer)
	}
	if err != nil && faults.IsInjected(err) {
		e.recordCompileError(newCompileError(st.fn.Name, StageNative, err))
		return native.Result{}, native.StatusBail, nil
	}
	return res, status, err
}

package engine

// CacheCodec round trip: a real compiled artifact must cross the byte
// boundary and come back execution-equivalent — same ops, same side
// tables, fused form recomputed, verdict payload re-encoded through the
// policy's codec. core.Detector's VerdictCodec half is exercised by its
// own tests and by difftest (core imports engine, so this package uses a
// stub codec for the payload path).

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/lir"
)

// cacheValue pulls the single cached compilation out of c.
func cacheValue(t *testing.T, c *jitqueue.Cache) (jitqueue.Key, *cachedCompile) {
	t.Helper()
	keys := c.Keys()
	if len(keys) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(keys))
	}
	v, ok := c.Get(keys[0])
	if !ok {
		t.Fatalf("cache entry vanished")
	}
	return keys[0], v.(*cachedCompile)
}

func TestCacheCodecRoundTripsRealArtifact(t *testing.T) {
	for _, noFuse := range []bool{false, true} {
		t.Run(fmt.Sprintf("noFuse=%v", noFuse), func(t *testing.T) {
			cache := jitqueue.NewCache(nil)
			runHot(t, Config{IonThreshold: 5, Cache: cache, NoFuse: noFuse})
			_, cc := cacheValue(t, cache)
			if cc.code == nil {
				t.Fatal("compiled artifact missing from the cache value")
			}
			if (cc.code.Fused == nil) != noFuse {
				t.Fatalf("fused form present=%v under NoFuse=%v", cc.code.Fused != nil, noFuse)
			}

			codec := NewCacheCodec(nil)
			data, ok := codec.Encode(cc)
			if !ok {
				t.Fatal("Encode refused a plain artifact")
			}
			back, err := codec.Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			got := back.(*cachedCompile)

			// The executable form must be bit-identical: every op, every side
			// table the native tier reads.
			if !reflect.DeepEqual(got.code.Ops, cc.code.Ops) {
				t.Error("op stream changed across the round trip")
			}
			if !reflect.DeepEqual(got.code.ArgLists, cc.code.ArgLists) {
				t.Error("arg lists changed across the round trip")
			}
			if !reflect.DeepEqual(got.code.OSREntries, cc.code.OSREntries) {
				t.Error("OSR entries changed across the round trip")
			}
			if !reflect.DeepEqual(got.code.DeoptExits, cc.code.DeoptExits) {
				t.Error("deopt exits changed across the round trip")
			}
			if got.code.Name != cc.code.Name || got.code.FuncIndex != cc.code.FuncIndex ||
				got.code.NumParams != cc.code.NumParams || got.code.NumRegs != cc.code.NumRegs {
				t.Errorf("header fields changed: got %s/%d/%d/%d want %s/%d/%d/%d",
					got.code.Name, got.code.FuncIndex, got.code.NumParams, got.code.NumRegs,
					cc.code.Name, cc.code.FuncIndex, cc.code.NumParams, cc.code.NumRegs)
			}
			// The fused stream is recomputed, not persisted; Fuse is
			// deterministic over the ops so presence must match.
			if (got.code.Fused == nil) != (cc.code.Fused == nil) {
				t.Errorf("fused form present=%v after decode, want %v",
					got.code.Fused != nil, cc.code.Fused != nil)
			}
			// omitempty collapses an empty disabled set to nil — semantically
			// identical (applyOutcome only materializes non-empty sets).
			if got.noJIT != cc.noJIT || got.grew != cc.grew || got.jitEligible != cc.jitEligible ||
				(len(got.disabled)+len(cc.disabled) > 0 && !reflect.DeepEqual(got.disabled, cc.disabled)) {
				t.Errorf("verdict flags changed: got %+v want %+v", got, cc)
			}
		})
	}
}

// stubVerdictCodec round-trips payloads as JSON strings.
type stubVerdictCodec struct{}

func (stubVerdictCodec) EncodeVerdict(payload any) ([]byte, error) {
	s, ok := payload.(string)
	if !ok {
		return nil, fmt.Errorf("not a string payload")
	}
	return json.Marshal(s)
}

func (stubVerdictCodec) DecodeVerdict(data []byte) (any, error) {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return s, nil
}

func TestCacheCodecVerdictPayloads(t *testing.T) {
	with := &CacheCodec{Verdicts: stubVerdictCodec{}}
	without := NewCacheCodec(nil)

	cc := &cachedCompile{noJIT: true, jitEligible: true, payload: "verdict-bytes"}

	// A payload-bearing value must not be persisted without a verdict codec.
	if _, ok := without.Encode(cc); ok {
		t.Fatal("Encode persisted a verdict payload with no codec to carry it")
	}
	data, ok := with.Encode(cc)
	if !ok {
		t.Fatal("Encode refused a payload with a codec attached")
	}
	back, err := with.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := back.(*cachedCompile); got.payload != "verdict-bytes" || !got.noJIT {
		t.Errorf("payload round trip: %+v", got)
	}

	// A policied record must not decode on an unpolicied fleet — replaying
	// the artifact without its verdict would drop audit accounting.
	if _, err := without.Decode(data); err == nil {
		t.Error("Decode accepted a verdict-bearing record with no verdict codec")
	}
}

func TestCacheCodecRejections(t *testing.T) {
	codec := NewCacheCodec(nil)

	if _, ok := codec.Encode("not a cachedCompile"); ok {
		t.Error("Encode accepted a foreign value")
	}
	// Non-finite immediates must survive the trip bit-exactly — JSON can't
	// carry NaN, so Imm travels as IEEE-754 bits and a constant-folded NaN
	// (or ±Inf, or -0) must not demote the artifact to memory-only.
	nan := &cachedCompile{jitEligible: true, code: &lir.Code{
		Ops: []lir.Op{
			{Kind: lir.KConst, Imm: math.NaN()},
			{Kind: lir.KConst, Dst: 1, Imm: math.Inf(-1)},
			{Kind: lir.KConst, Dst: 2, Imm: math.Copysign(0, -1)},
		},
	}}
	data, ok := codec.Encode(nan)
	if !ok {
		t.Fatal("Encode refused a NaN immediate (should travel as IEEE-754 bits)")
	}
	back, err := codec.Decode(data)
	if err != nil {
		t.Fatalf("Decode of non-finite immediates: %v", err)
	}
	for i, op := range back.(*cachedCompile).code.Ops {
		got, want := math.Float64bits(op.Imm), math.Float64bits(nan.code.Ops[i].Imm)
		if got != want {
			t.Errorf("op %d: Imm bits %016x, want %016x", i, got, want)
		}
	}

	if _, err := codec.Decode([]byte(`{"v":99,"nojit":true}`)); err == nil {
		t.Error("Decode accepted a version-skewed record")
	}
	if _, err := codec.Decode([]byte(`not json`)); err == nil {
		t.Error("Decode accepted garbage")
	}
	if _, err := codec.Decode([]byte(`{"v":1}`)); err == nil {
		t.Error("Decode accepted a record with neither artifact nor NoJIT")
	}
}

package engine

// Supervisor tests: typed compile-error surfacing, panic containment,
// step budgets, quarantine/requalification, and fault containment at the
// native dispatch boundary.

import (
	"errors"
	"testing"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

// hotSrc drives one JIT-able function well past any test threshold.
const hotSrc = `
function hot(x) {
  var s = 0;
  for (var i = 0; i < 10; i++) { s = s + x + i; }
  return s;
}
var result = 0;
for (var r = 0; r < 100; r++) { result = result + hot(r); }
`

// hotResult is hotSrc's expected final value of `result`:
// sum over r of (10r + 45).
const hotResult = 10*(99*100/2) + 100*45

// runHot executes hotSrc under cfg and checks the semantics held.
func runHot(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(hotSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := e.Global("result").AsNumber(); got != hotResult {
		t.Fatalf("result = %v, want %v (degradation changed semantics)", got, hotResult)
	}
	return e
}

// fn returns the state of the named function.
func (e *Engine) fn(t *testing.T, name string) *fnState {
	t.Helper()
	for _, st := range e.fns {
		if st.fn.Name == name {
			return st
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// breakSSAPass corrupts the graph like the passes package's verifier
// fixture: it kills a definition that still has a use, so CheckIR must
// reject the graph and attribute the breakage to this pass.
type breakSSAPass struct{}

func (breakSSAPass) Name() string      { return "BreakSSA" }
func (breakSSAPass) Disableable() bool { return true }
func (breakSSAPass) Run(g *mir.Graph, _ *passes.Context) error {
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Dead {
				continue
			}
			for _, op := range in.Operands {
				if !op.Dead {
					op.Dead = true
					return nil
				}
			}
		}
	}
	return nil
}

// brokenPipeline splices the corrupting pass into the standard pipeline.
func brokenPipeline() []passes.Pass {
	var pl []passes.Pass
	for _, p := range passes.Pipeline() {
		pl = append(pl, p)
		if p.Name() == "AliasAnalysis" {
			pl = append(pl, breakSSAPass{})
		}
	}
	return pl
}

func TestOnCompileErrorSurfacesVerifierRejection(t *testing.T) {
	var got []error
	e := runHot(t, Config{
		IonThreshold: 5,
		CheckIR:      true,
		Passes:       brokenPipeline(),
		OnCompileError: func(fn string, err error) {
			if fn == "hot" {
				got = append(got, err)
			}
		},
	})
	if len(got) == 0 {
		t.Fatal("verifier rejection never reached OnCompileError")
	}
	var cerr *CompileError
	if !errors.As(got[0], &cerr) {
		t.Fatalf("error is %T, want *CompileError: %v", got[0], got[0])
	}
	if cerr.Stage != StagePasses {
		t.Errorf("stage = %q, want %q", cerr.Stage, StagePasses)
	}
	var ir *passes.IRError
	if !errors.As(got[0], &ir) {
		t.Fatalf("*passes.IRError not reachable through the CompileError chain: %v", got[0])
	}
	if ir.Pass != "BreakSSA" {
		t.Errorf("verifier blamed pass %q, want BreakSSA", ir.Pass)
	}
	if e.Stats().NrJIT != 0 {
		t.Errorf("a rejected compilation was still promoted: %+v", e.Stats())
	}
	if e.Stats().CompileErrors == 0 {
		t.Errorf("no CompileErrors counted: %+v", e.Stats())
	}
}

func TestOnCompileErrorSurfacesRecoveredPanic(t *testing.T) {
	var got []error
	inj := faults.NewInjector(1, faults.Rule{Point: faults.PointPass, Kind: faults.KindPanic, Times: 1})
	e := runHot(t, Config{
		IonThreshold: 5,
		Faults:       inj,
		OnCompileError: func(fn string, err error) {
			got = append(got, err)
		},
	})
	if len(got) == 0 {
		t.Fatal("recovered panic never reached OnCompileError")
	}
	var cerr *CompileError
	if !errors.As(got[0], &cerr) {
		t.Fatalf("error is %T, want *CompileError", got[0])
	}
	if !cerr.Panicked || !cerr.Injected || cerr.Stage != StagePasses {
		t.Errorf("typing wrong: %+v", cerr)
	}
	if e.Stats().CompilePanics == 0 || e.Stats().InjectedFaults != inj.FiredCount() {
		t.Errorf("accounting wrong: stats %+v, fired %d", e.Stats(), inj.FiredCount())
	}
}

func TestCompileStepBudgetFailsTheAttempt(t *testing.T) {
	var got []error
	e := runHot(t, Config{
		IonThreshold:      5,
		CompileStepBudget: 1, // nothing compiles under one step
		OnCompileError:    func(fn string, err error) { got = append(got, err) },
	})
	if e.Stats().CompileBudgets == 0 {
		t.Fatalf("budget exhaustion not counted: %+v", e.Stats())
	}
	if e.Stats().NrJIT != 0 {
		t.Errorf("compiled despite a 1-step budget: %+v", e.Stats())
	}
	var cerr *CompileError
	if len(got) == 0 || !errors.As(got[0], &cerr) || !cerr.Budget {
		t.Fatalf("budget failure not surfaced as a Budget CompileError: %v", got)
	}
	if !errors.Is(got[0], faults.ErrCompileBudget) {
		t.Errorf("ErrCompileBudget not reachable: %v", got[0])
	}
}

func TestQuarantineRetriesAndRequalifies(t *testing.T) {
	// The first compile attempt dies on an injected mirbuild fault; the
	// rule is capped at one firing, so the quarantine retry succeeds.
	inj := faults.NewInjector(1, faults.Rule{Point: faults.PointMIRBuild, Kind: faults.KindError, Times: 1})
	e := runHot(t, Config{
		IonThreshold:        5,
		Faults:              inj,
		QuarantineBackoff:   4,
		QuarantineCleanRuns: 2,
	})
	if e.Stats().Quarantined != 1 || e.Stats().Requalified != 1 {
		t.Fatalf("want one quarantine round-trip ending in requalification: %+v", e.Stats())
	}
	if e.Stats().NrJIT != 1 {
		t.Errorf("requalified function not promoted: %+v", e.Stats())
	}
	st := e.fn(t, "hot")
	if st.quar != qNone || st.code == nil || st.tier != tierIon {
		t.Errorf("state after requalification: quar=%d code=%v tier=%d", st.quar, st.code != nil, st.tier)
	}
}

func TestQuarantineEscalatesToPermanent(t *testing.T) {
	// Every attempt fails: after MaxCompileAttempts the function must be
	// permanently interpreter-only and the engine must stop attempting.
	inj := faults.NewInjector(1, faults.Rule{Point: faults.PointLower, Kind: faults.KindError})
	e := runHot(t, Config{
		IonThreshold:        5,
		Faults:              inj,
		QuarantineBackoff:   2,
		QuarantineCleanRuns: 1,
		MaxCompileAttempts:  3,
	})
	st := e.fn(t, "hot")
	if st.quar != qPermanent {
		t.Fatalf("function not permanent after %d failed attempts (quar=%d)", e.Stats().CompileErrors, st.quar)
	}
	if e.Stats().CompileErrors != 3 {
		t.Errorf("attempts = %d, want exactly MaxCompileAttempts (3)", e.Stats().CompileErrors)
	}
	if e.Stats().Quarantined != 2 {
		t.Errorf("quarantine entries = %d, want 2 (the third failure goes permanent)", e.Stats().Quarantined)
	}
	if e.Stats().NrJIT != 0 {
		t.Errorf("promoted despite permanent failures: %+v", e.Stats())
	}
}

func TestBailoutBoundaryDemotesTierExactlyAtMax(t *testing.T) {
	// The guard fails on every call after compilation: the engine must
	// tolerate exactly maxBailoutsBeforeBlacklist bailouts, then discard
	// the code, demote the tier, and quarantine — with the default backoff
	// no retry fits in this run.
	src := `
function probe(a, i) { return a[i] + 1; }
var a = [1, 2, 3];
var result = 0;
for (var r = 0; r < 200; r++) { result += probe(a, 0); }
for (var r = 0; r < 200; r++) { result += probe(a, 99); }
`
	e, err := New(src, Config{IonThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Bailouts != maxBailoutsBeforeBlacklist {
		t.Fatalf("bailouts = %d, want exactly %d", e.Stats().Bailouts, maxBailoutsBeforeBlacklist)
	}
	st := e.fn(t, "probe")
	if st.code != nil {
		t.Error("blacklisted function kept its Ion code")
	}
	if st.tier == tierIon {
		t.Error("stale tier: blacklisted function still reports tierIon")
	}
	if st.tier != tierBaseline {
		t.Errorf("tier = %d, want tierBaseline (function is past the baseline threshold)", st.tier)
	}
	if st.quar != qQuarantined {
		t.Errorf("quar = %d, want qQuarantined", st.quar)
	}
}

func TestNativeFaultContainment(t *testing.T) {
	for _, kind := range []faults.Kind{faults.KindError, faults.KindPanic} {
		t.Run(string(kind), func(t *testing.T) {
			inj := faults.NewInjector(1, faults.Rule{Point: faults.PointNative, Kind: kind})
			e := runHot(t, Config{IonThreshold: 5, Faults: inj})
			if inj.FiredCount() == 0 {
				t.Fatal("native fault never fired")
			}
			if e.Stats().InjectedFaults != inj.FiredCount() {
				t.Errorf("accounting: fired %d, engine saw %d", inj.FiredCount(), e.Stats().InjectedFaults)
			}
			if e.Stats().Bailouts == 0 {
				t.Error("contained dispatch faults should surface as bailouts")
			}
			if kind == faults.KindPanic && e.Stats().CompilePanics == 0 {
				t.Error("recovered dispatch panic not counted")
			}
		})
	}
}

// driveHot builds an engine over hotSrc and drives the hot function by
// hand for calls iterations, draining after every call when a queue is
// attached so background outcomes apply at deterministic call counts —
// the same counts the synchronous path sees.
func driveHot(t *testing.T, cfg Config, calls int) *Engine {
	t.Helper()
	e, err := New(hotSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, st := range e.fns {
		if st.fn.Name == "hot" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("no hot function")
	}
	args := []value.Value{value.Num(1)}
	for i := 0; i < calls; i++ {
		if _, err := e.CallFunction(idx, args); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		e.Drain()
	}
	return e
}

// TestAsyncQuarantineMatchesSyncBackoff is the quarantine × async
// interaction: a compile job that panics in the background must
// quarantine the function with exactly the backoff schedule and
// escalation the synchronous supervisor applies.
func TestAsyncQuarantineMatchesSyncBackoff(t *testing.T) {
	cfg := func(q *jitqueue.Queue) Config {
		return Config{
			IonThreshold:        5,
			QuarantineBackoff:   4,
			QuarantineCleanRuns: 2,
			MaxCompileAttempts:  3,
			Queue:               q,
			// Every attempt panics inside the pass pipeline.
			Faults: faults.NewInjector(1, faults.Rule{Point: faults.PointPass, Kind: faults.KindPanic}),
		}
	}
	const calls = 200
	syncEng := driveHot(t, cfg(nil), calls)

	q := jitqueue.New(2, 8, nil)
	defer q.Close()
	asyncEng := driveHot(t, cfg(q), calls)

	ss, as := syncEng.Stats(), asyncEng.Stats()
	if as.Quarantined != ss.Quarantined || as.CompilePanics != ss.CompilePanics ||
		as.CompileErrors != ss.CompileErrors || as.NrJIT != ss.NrJIT {
		t.Errorf("supervisor accounting diverged: sync %+v async %+v", ss, as)
	}
	sst, ast := syncEng.fn(t, "hot"), asyncEng.fn(t, "hot")
	if ast.quar != sst.quar || ast.attempts != sst.attempts || ast.backoff != sst.backoff {
		t.Errorf("quarantine state diverged: sync quar=%d attempts=%d backoff=%d, async quar=%d attempts=%d backoff=%d",
			sst.quar, sst.attempts, sst.backoff, ast.quar, ast.attempts, ast.backoff)
	}
	if sst.quar != qPermanent {
		t.Errorf("fixture too weak: expected escalation to permanent, got quar=%d", sst.quar)
	}
	if as.CompileErrors != 3 {
		t.Errorf("attempts = %d, want exactly MaxCompileAttempts (3)", as.CompileErrors)
	}
}

// TestQueueFaultPointStallAndPanic exercises the new `queue` injection
// point: it only fires for background jobs, where a panic must be
// contained by the worker-side supervisor (stage "queue") and a stall
// must exhaust the job's step budget. Either way the function quarantines
// and the pool survives.
func TestQueueFaultPointStallAndPanic(t *testing.T) {
	for _, kind := range []faults.Kind{faults.KindPanic, faults.KindStall} {
		t.Run(string(kind), func(t *testing.T) {
			q := jitqueue.New(1, 8, nil)
			defer q.Close()
			var got []error
			inj := faults.NewInjector(1, faults.Rule{Point: faults.PointQueue, Kind: kind, Times: 1})
			e := driveHot(t, Config{
				IonThreshold:        5,
				QuarantineBackoff:   4,
				QuarantineCleanRuns: 2,
				Queue:               q,
				Faults:              inj,
				OnCompileError:      func(fn string, err error) { got = append(got, err) },
			}, 100)
			if inj.FiredCount() != 1 {
				t.Fatalf("queue fault fired %d times, want 1", inj.FiredCount())
			}
			if len(got) == 0 {
				t.Fatal("queue fault never surfaced as a CompileError")
			}
			var cerr *CompileError
			if !errors.As(got[0], &cerr) || cerr.Stage != StageQueue || !cerr.Injected {
				t.Fatalf("typing wrong: %+v", got[0])
			}
			if kind == faults.KindPanic && !cerr.Panicked {
				t.Errorf("queue panic not marked Panicked: %+v", cerr)
			}
			if len(q.Panics()) != 0 {
				t.Errorf("panic escaped the supervisor into the pool: %v", q.Panics())
			}
			// The capped rule fires once; the quarantine retry then
			// compiles cleanly and requalifies.
			if s := e.Stats(); s.Quarantined != 1 || s.Requalified != 1 || s.NrJIT != 1 {
				t.Errorf("recovery accounting: %+v", s)
			}
		})
	}
}

func TestUnsupportedFunctionStaysPermanentAndUncounted(t *testing.T) {
	// A function outside the JIT subset is the expected InterpOnly case:
	// no CompileError noise, no quarantine churn, exactly one InterpOnly.
	src := `
function s(x) { return "a" + "b"; }
var result = 0;
for (var i = 0; i < 100; i++) { s(i); result = result + 1; }
`
	var got []error
	e, err := New(src, Config{IonThreshold: 5, OnCompileError: func(fn string, err error) { got = append(got, err) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().InterpOnly != 1 || e.Stats().NrJIT != 0 {
		t.Fatalf("stats: %+v", e.Stats())
	}
	if len(got) != 0 {
		t.Errorf("unsupported source surfaced as compile errors: %v", got)
	}
	if st := e.fn(t, "s"); st.quar != qPermanent {
		t.Errorf("unsupported function should be permanently interpreter-only (quar=%d)", st.quar)
	}
}

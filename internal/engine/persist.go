// Cross-process serialization of cached compilations.
//
// The shared cache's values (cachedCompile) are pointers into process
// memory; the persistent second tier (internal/store) needs them as
// self-contained bytes. Two parts do not survive a process boundary
// as-is and get special treatment:
//
//   - the policy verdict payload is opaque to the engine and may carry
//     process-local state (core's interned chain IDs), so it crosses via
//     the policy's own VerdictCodec;
//   - the artifact's derived forms — basic-block metadata and the fused
//     superinstruction stream — are deterministic pure functions of the
//     op stream (lir.ComputeBlocks, lir.Fuse), so only the plain op
//     stream plus a "was fused" bit is persisted and the rest is
//     recomputed on decode. That keeps records small and, more
//     importantly, keeps the executable form bit-identical to a cold
//     compile: both sides run the same fuser over the same ops.
//
// Everything else in lir.Code is already plain exported data and
// round-trips through JSON unchanged. The store wraps these bytes in its
// own checksummed envelope, so this layer can trust what it is handed —
// a record that fails to decode here is version skew, not corruption,
// and degrades to a cache miss.
package engine

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/lir"
)

// VerdictCodec is the optional CachingPolicy extension the persistent
// second tier needs: a recorded verdict payload must be renderable as
// self-contained bytes and reconstructible in another process.
// Implemented by core.Detector (chains travel as strings and are
// re-interned on decode).
type VerdictCodec interface {
	EncodeVerdict(payload any) ([]byte, error)
	DecodeVerdict(data []byte) (any, error)
}

// persistVersion is the engine-record layout version inside the store's
// envelope. Bump on any incompatible change to persistCompile/persistCode;
// a mismatched record decodes to an error and the cache treats it as a
// miss (the store's envelope version covers the container, this one the
// engine payload).
const persistVersion = 1

// persistCode is the on-disk form of one artifact: lir.Code's plain data
// fields, with the derived Blocks/Fused omitted (recomputed on decode).
type persistCode struct {
	Name       string          `json:"name"`
	FuncIndex  int             `json:"func_index"`
	NumParams  int             `json:"num_params"`
	NumRegs    int             `json:"num_regs"`
	Ops        []persistOp     `json:"ops"`
	ArgLists   [][]int32       `json:"arg_lists,omitempty"`
	OSREntries []lir.OSREntry  `json:"osr_entries,omitempty"`
	DeoptExits []lir.DeoptExit `json:"deopt_exits,omitempty"`
}

// persistOp is one op on the wire. Imm travels as its IEEE-754 bit
// pattern: JSON cannot represent NaN or the infinities, and a constant
// folder will happily put them in a KConst — an artifact must round-trip
// bit-exactly (including NaN payload bits and -0) or the warm process
// recompiles and the pipeline-elimination guarantee is gone.
type persistOp struct {
	Kind    lir.Kind `json:"k"`
	Dst     int32    `json:"d,omitempty"`
	A       int32    `json:"a,omitempty"`
	B       int32    `json:"b,omitempty"`
	C       int32    `json:"c,omitempty"`
	Target  int32    `json:"t,omitempty"`
	ImmBits uint64   `json:"i,omitempty"`
	Aux     int32    `json:"x,omitempty"`
}

func persistOps(ops []lir.Op) []persistOp {
	out := make([]persistOp, len(ops))
	for i, op := range ops {
		out[i] = persistOp{
			Kind:    op.Kind,
			Dst:     op.Dst,
			A:       op.A,
			B:       op.B,
			C:       op.C,
			Target:  op.Target,
			ImmBits: math.Float64bits(op.Imm),
			Aux:     op.Aux,
		}
	}
	return out
}

func restoreOps(ops []persistOp) []lir.Op {
	out := make([]lir.Op, len(ops))
	for i, op := range ops {
		out[i] = lir.Op{
			Kind:   op.Kind,
			Dst:    op.Dst,
			A:      op.A,
			B:      op.B,
			C:      op.C,
			Target: op.Target,
			Imm:    math.Float64frombits(op.ImmBits),
			Aux:    op.Aux,
		}
	}
	return out
}

// persistCompile is the on-disk form of one cached compilation.
type persistCompile struct {
	V           int             `json:"v"`
	NoJIT       bool            `json:"nojit,omitempty"`
	Grew        bool            `json:"grew,omitempty"`
	Disabled    []string        `json:"disabled,omitempty"`
	JitEligible bool            `json:"jit_eligible,omitempty"`
	Fused       bool            `json:"fused,omitempty"`
	Code        *persistCode    `json:"code,omitempty"`
	Verdict     json.RawMessage `json:"verdict,omitempty"`
}

// CacheCodec implements jitqueue.Codec over the engine's cache values.
// Verdicts may be nil when the fleet runs without a policy; a value
// carrying a verdict payload is then simply not persisted (ok=false) —
// never persisted without its verdict, which would silently drop audit
// and match accounting on replay.
type CacheCodec struct {
	Verdicts VerdictCodec
}

// NewCacheCodec builds the codec for a fleet protected by policy p (nil
// for an unprotected fleet). The policy must be the same one — or one
// with the same PolicyCacheKey — installed on every engine sharing the
// cache, which is already the cache-key soundness contract.
func NewCacheCodec(p Policy) *CacheCodec {
	c := &CacheCodec{}
	if vc, ok := p.(VerdictCodec); ok {
		c.Verdicts = vc
	}
	return c
}

var _ jitqueue.Codec = (*CacheCodec)(nil)

// Encode implements jitqueue.Codec.
func (c *CacheCodec) Encode(v any) ([]byte, bool) {
	cc, ok := v.(*cachedCompile)
	if !ok {
		return nil, false
	}
	p := persistCompile{
		V:           persistVersion,
		NoJIT:       cc.noJIT,
		Grew:        cc.grew,
		Disabled:    cc.disabled,
		JitEligible: cc.jitEligible,
	}
	if cc.payload != nil {
		if c == nil || c.Verdicts == nil {
			return nil, false
		}
		enc, err := c.Verdicts.EncodeVerdict(cc.payload)
		if err != nil {
			return nil, false
		}
		p.Verdict = enc
	}
	if cc.code != nil {
		p.Fused = cc.code.Fused != nil
		p.Code = &persistCode{
			Name:       cc.code.Name,
			FuncIndex:  cc.code.FuncIndex,
			NumParams:  cc.code.NumParams,
			NumRegs:    cc.code.NumRegs,
			Ops:        persistOps(cc.code.Ops),
			ArgLists:   cc.code.ArgLists,
			OSREntries: cc.code.OSREntries,
			DeoptExits: cc.code.DeoptExits,
		}
	}
	data, err := json.Marshal(p)
	if err != nil {
		// Unmarshalable values stay memory-only (defensive: the op stream's
		// immediates already travel as IEEE-754 bits, so nothing here should
		// be able to trip this).
		return nil, false
	}
	return data, true
}

// Decode implements jitqueue.Codec.
func (c *CacheCodec) Decode(data []byte) (any, error) {
	var p persistCompile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("cache record does not parse: %w", err)
	}
	if p.V != persistVersion {
		return nil, fmt.Errorf("cache record version %d (want %d)", p.V, persistVersion)
	}
	if p.Code == nil && !p.NoJIT {
		return nil, fmt.Errorf("cache record carries neither artifact nor NoJIT verdict")
	}
	if len(p.Verdict) > 0 && (c == nil || c.Verdicts == nil) {
		// A policied record read by an unpolicied fleet: replaying the
		// artifact without its verdict would silently drop audit and match
		// accounting. Degrade to a miss. (Key hygiene makes this unreachable
		// — the policy cache key is part of the jitqueue.Key — but decode
		// must not depend on it.)
		return nil, fmt.Errorf("cache record carries a verdict but no verdict codec is attached")
	}
	cc := &cachedCompile{
		noJIT:       p.NoJIT,
		grew:        p.Grew,
		disabled:    p.Disabled,
		jitEligible: p.JitEligible,
	}
	if len(p.Verdict) > 0 {
		payload, err := c.Verdicts.DecodeVerdict(p.Verdict)
		if err != nil {
			return nil, fmt.Errorf("cache record verdict: %w", err)
		}
		cc.payload = payload
	}
	if p.Code != nil {
		code := &lir.Code{
			Name:       p.Code.Name,
			FuncIndex:  p.Code.FuncIndex,
			NumParams:  p.Code.NumParams,
			NumRegs:    p.Code.NumRegs,
			Ops:        restoreOps(p.Code.Ops),
			ArgLists:   p.Code.ArgLists,
			OSREntries: p.Code.OSREntries,
			DeoptExits: p.Code.DeoptExits,
		}
		if p.Fused {
			// Deterministic recompute: Fuse over the same ops emits the same
			// superinstruction stream a cold compile attached, so fused
			// dispatch behaves bit-identically to the original artifact.
			code.Fused = lir.Fuse(code)
		}
		cc.code = code
	}
	return cc, nil
}

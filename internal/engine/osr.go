// Loop-header on-stack replacement and guard-based deoptimization.
//
// OnBackEdge is the engine half of the OSR contract with the interpreter
// (interp.OSRHook): the VM calls it at every backward unconditional jump
// with an empty operand stack, handing over the live locals. The engine
// counts back edges (so a single long-running call can warm up without
// ever returning to a call boundary), installs pending async artifacts
// mid-loop (the OSR-capable safe point), and — when Ion code with an
// eligible frame map for this loop header exists — transfers execution
// into native code at the equivalent pc by materializing registers from
// the frame map.
//
// The reverse transition is handleDeopt: a KCallSpec speculation guard
// that observes a non-number result returns StatusDeopt with a fully
// reconstructed interpreter frame, and the engine resumes interpretation
// immediately after the guarded store. Both transitions are semantically
// invisible: Result, Steps, bailout points and policy verdicts are
// bit-identical with OSR/deopt on or off (the difftest matrix pins it).
//
// Failure policy: a deopt storm (maxDeoptsBeforeRequalify guard failures
// of one artifact) does not blacklist the function — it discards the
// artifact, disables the TypeSpeculation pass for this function, and lets
// the supervisor's requalification machinery recompile it unspeculated.
package engine

import (
	"time"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/value"
)

// OnBackEdge implements interp.OSRHook. done=false means the interpreter
// keeps running the loop (no artifact, ineligible entry, cooldown, or a
// refused transition — all semantically neutral); done=true means native
// code ran the activation to completion (or deopt-resumed interpretation
// did) and the caller's frame is abandoned.
func (e *Engine) OnBackEdge(fn *bytecode.Function, targetPC int, locals []value.Value) (value.Value, bool, error) {
	idx := fn.Index
	if idx < 0 || idx >= len(e.fns) {
		return value.Undef(), false, nil
	}
	st := e.fns[idx]
	if st.fd == nil {
		return value.Undef(), false, nil
	}

	// Safe point: a background compilation that finished while this loop
	// was spinning installs here, mid-loop, instead of waiting for a call
	// boundary the loop may never reach.
	if st.inflight {
		if o := st.pending.Swap(nil); o != nil {
			e.applyOutcome(st, o)
		}
	}

	st.backEdges++
	if st.code == nil && !st.inflight && st.backEdges >= e.cfg.OSRThreshold && e.mayCompile(st) {
		e.compile(idx, st)
	}
	if st.code == nil {
		return value.Undef(), false, nil
	}

	// Only loop headers with a frame map are entry points, and only when
	// regalloc proved nothing outside the map is live there. The cooldown
	// is per ordinal: a header whose types refused materialization must not
	// park the function's other loops (a warm-up loop spins before the hot
	// one in the same function all the time).
	site, ok := fn.OSRSiteAt(targetPC)
	if !ok || st.osrCooldown[site.Ordinal] {
		return value.Undef(), false, nil
	}
	entryIdx := -1
	for i := range st.code.OSREntries {
		if st.code.OSREntries[i].Ordinal == int32(site.Ordinal) {
			entryIdx = i
			break
		}
	}
	if entryIdx < 0 || !st.code.OSREntries[entryIdx].Eligible {
		return value.Undef(), false, nil
	}

	// Control-flow integrity: entering overwritten code mid-loop would run
	// the attacker's payload. Refusing (rather than erroring) keeps the
	// hijack observation identical to the OSR-off engine, which detects the
	// overwrite at the next call through the pointer.
	if !e.arena.CodePointerOK(idx) {
		return value.Undef(), false, nil
	}

	// Chaos injection point: a fired fault refuses the transition — the
	// interpreter keeps the loop, semantics unchanged — with the same 1:1
	// typed accounting as every compile-path fault.
	if e.transitionFault(faults.PointOSR, StageOSR, st) {
		return value.Undef(), false, nil
	}

	sp := e.tracer.Begin(obs.CatEngine, "osr.enter")
	start := time.Now()
	budget := e.VM.MaxSteps - e.VM.Steps()
	var (
		res     native.Result
		status  native.Status
		err     error
		entered bool
	)
	if st.mcu != nil {
		// Machine-code tier: same frame-map materialization, same strict
		// refusal policy; budget/guard exits delegate to the switch tier so
		// the observable activation is bit-identical to the native path.
		res, status, err, entered = st.mcu.ExecOSR(entryIdx, locals, e, budget, &e.pool)
	} else {
		res, status, err, entered = native.ExecOSR(st.code, entryIdx, locals, e, budget, &e.pool, e.cfg.NoFuse)
	}
	if !entered {
		// Materialization refused (a local's runtime type contradicted the
		// frame map's static kind). Cool this entry down: the types that
		// block it now will block it on every later iteration.
		e.coolDown(st, site.Ordinal)
		sp.End(obs.S("fn", fn.Name), obs.S("result", "declined"))
		return value.Undef(), false, nil
	}
	// The transfer happened: registers were materialized and native code
	// ran, however the activation ends (return, deopt, bailout, error).
	e.m.osrEntries.Inc()
	e.hOSREntry.ObserveEx(int64(time.Since(start)), sp.ID())
	e.journey(st, obs.StageOSREntry, "ordinal=%d", site.Ordinal)
	e.VM.AddSteps(res.Steps)
	if res.Checks > 0 {
		e.blockChecks.Add(res.Checks)
	}
	switch {
	case err != nil:
		sp.End(obs.S("fn", fn.Name), obs.S("result", "error"))
		return value.Undef(), true, err
	case status == native.StatusOK:
		sp.End(obs.S("fn", fn.Name), obs.S("result", "ok"),
			obs.I("ordinal", int64(site.Ordinal)), obs.I("steps", res.Steps))
		return res.Value(), true, nil
	case status == native.StatusDeopt:
		sp.End(obs.S("fn", fn.Name), obs.S("result", "deopt"))
		return e.handleDeopt(st, res.Deopt)
	default: // StatusBail
		sp.End(obs.S("fn", fn.Name), obs.S("result", "bail"))
		e.m.bailouts.Inc()
		st.bailouts++
		e.tracer.Instant(obs.CatEngine, "bailout",
			obs.S("fn", st.fn.Name), obs.I("bailouts", int64(st.bailouts)))
		if st.bailouts >= maxBailoutsBeforeBlacklist {
			e.discardArtifact(st)
			e.demote(st)
			e.quarantine(st, "bailout storm: blacklisted after repeated guard failures")
		} else {
			// The guard that bailed sits inside the loop; without a cooldown
			// every later iteration would re-enter and re-bail.
			e.coolDown(st, site.Ordinal)
		}
		return value.Undef(), false, nil
	}
}

// discardArtifact drops st's compiled code together with the OSR/deopt
// history that judged it: the cooldown ordinals and the deopt count are
// facts about the discarded artifact, not the function. Leaving them
// behind would leak the cooldown map across blacklist/requalify cycles
// (it only used to shrink on a successful install) and pre-poison the
// next artifact's loop headers with verdicts about code that no longer
// exists.
func (e *Engine) discardArtifact(st *fnState) {
	st.code = nil
	// The machine-code unit is compiled from the discarded code; drop it
	// with the artifact (the W^X mapping itself is retired by GC, never
	// unmapped, so a racing stale pointer can't execute unmapped memory).
	st.mcu, st.mcTried = nil, false
	st.osrCooldown = nil
	st.deopts = 0
}

// coolDown parks one OSR entry ordinal for the current artifact; a fresh
// install clears the map (see applyOutcome), as does any artifact discard
// (see discardArtifact).
func (e *Engine) coolDown(st *fnState, ordinal int) {
	if st.osrCooldown == nil {
		st.osrCooldown = make(map[int]bool, 1)
	}
	st.osrCooldown[ordinal] = true
}

// handleDeopt finishes a speculation-guard failure surfaced by the native
// tier (from an OSR entry or a regular call dispatch): account it, apply
// the storm policy, and resume interpretation just past the guarded store
// with the reconstructed frame. The resumed frame runs with OSR disabled
// so a deopted loop cannot immediately re-enter the code it fell out of.
func (e *Engine) handleDeopt(st *fnState, d *native.DeoptState) (value.Value, bool, error) {
	e.m.deoptExits.Inc()
	st.deopts++
	e.tracer.Instant(obs.CatEngine, "deopt.exit",
		obs.S("fn", st.fn.Name), obs.I("exit", int64(d.Exit)), obs.I("deopts", int64(st.deopts)))
	e.journey(st, obs.StageDeopt, "exit=%d deopts=%d", d.Exit, st.deopts)
	e.watchdog.Signal(obs.Signal{Kind: obs.SigDeopt, Func: st.fn.Name, Value: int64(st.deopts), Cause: "speculation guard failed"})

	// Resolve the resume point before any storm handling can discard the
	// artifact the exit index refers into.
	exit := &st.code.DeoptExits[d.Exit]
	site, ok := st.fn.SpecSiteByOrdinal(int(exit.Ordinal))

	// Chaos injection point. Unlike PointOSR the transition cannot be
	// refused — the guard already failed and the native frame is gone, so
	// state reconstruction is mandatory — but the fault is still recorded
	// with full 1:1 accounting before the exit completes.
	e.transitionFault(faults.PointDeopt, StageDeopt, st)

	if st.deopts >= maxDeoptsBeforeRequalify {
		// Deopt storm: the type assumption is simply wrong for this
		// workload. Instead of the old blacklist-only path, requalify the
		// function without speculation — discard the artifact and let the
		// next warmup trigger recompile it with TypeSpeculation disabled.
		e.discardArtifact(st)
		e.demote(st)
		if st.disabledPasses == nil {
			st.disabledPasses = map[string]bool{}
		}
		st.disabledPasses["TypeSpeculation"] = true
		e.m.loopsRequalified.Inc()
		e.audit.Record(obs.AuditEvent{
			Func:    st.fn.Name,
			Verdict: obs.VerdictRequalify,
			Stage:   StageDeopt,
			Reason:  "deopt storm: requalified with TypeSpeculation disabled",
		})
		e.journey(st, obs.StageRequalified, "deopt storm: TypeSpeculation disabled")
	}
	if !ok {
		// No resume site for the exit's ordinal: a frame-map bug, not a
		// user-program condition (the compiler records a SpecSite for every
		// snapshot the builder emits). Fail safe as a bailout.
		e.m.bailouts.Inc()
		st.bailouts++
		return value.Undef(), false, nil
	}

	locals := d.Locals
	if len(locals) < st.fn.NumLocals {
		// Slots past the frame map are dead here (regalloc proved it for
		// entry; the exit's map covers every slot its resume point can
		// read) — pad with undefined like a fresh frame.
		padded := make([]value.Value, st.fn.NumLocals)
		copy(padded, locals)
		for i := len(d.Locals); i < len(padded); i++ {
			padded[i] = value.Undef()
		}
		locals = padded
	}
	v, err := e.VM.ExecFrom(st.fn, locals, site.ResumePC, false)
	return v, true, err
}

// transitionFault evaluates one hit of a tier-transition fault point
// (PointOSR, PointDeopt) with containment: an injected error or panic is
// recorded as a typed, stage-attributed CompileError — the same 1:1
// accounting the chaos suite matches against the injector — and reported
// as refused=true. Non-injected panics are genuine engine bugs and
// propagate.
func (e *Engine) transitionFault(p faults.Point, stage string, st *fnState) (refused bool) {
	if e.cfg.Faults == nil {
		return false
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := faults.FromPanic(r)
			if !ok {
				panic(r)
			}
			e.recordCompileError(&CompileError{
				Func:     st.fn.Name,
				Stage:    stage,
				Err:      &faults.InjectedError{Fault: f},
				Panicked: true,
				Injected: true,
			})
			refused = true
		}
	}()
	if err := e.cfg.Faults.Check(p, st.fn.Name); err != nil {
		e.recordCompileError(newCompileError(st.fn.Name, stage, err))
		return true
	}
	return false
}

package engine

import (
	"math"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
)

// jitCfg returns a config with tiny thresholds so tests exercise the Ion
// tier quickly.
func jitCfg() Config {
	return Config{BaselineThreshold: 3, IonThreshold: 8}
}

// runBoth executes src under NoJIT and under JIT and asserts the `result`
// global and printed output agree, returning the JIT engine.
func runBoth(t *testing.T, src string, bugs passes.BugSet) *Engine {
	t.Helper()
	var outInterp, outJIT strings.Builder

	cfgI := Config{DisableJIT: true, Out: &outInterp}
	eI, _, errI := RunScript(src, cfgI)
	if errI != nil {
		t.Fatalf("interp run: %v", errI)
	}
	cfgJ := jitCfg()
	cfgJ.Out = &outJIT
	cfgJ.Bugs = bugs
	eJ, _, errJ := RunScript(src, cfgJ)
	if errJ != nil {
		t.Fatalf("jit run: %v", errJ)
	}
	ri, rj := eI.Global("result"), eJ.Global("result")
	if !looselySame(ri, rj) {
		t.Fatalf("result mismatch: interp=%v jit=%v", ri, rj)
	}
	if outInterp.String() != outJIT.String() {
		t.Fatalf("output mismatch:\ninterp: %q\njit:    %q", outInterp.String(), outJIT.String())
	}
	return eJ
}

func looselySame(a, b value.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	if a.IsNumber() {
		x, y := a.AsNumber(), b.AsNumber()
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return value.StrictEquals(a, b)
}

const hotLoopSrc = `
function work(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = s + a[i % a.length] * 2 - 1;
  }
  return s;
}
var arr = new Array(16);
for (var i = 0; i < 16; i++) { arr[i] = i * 1.5; }
var result = 0;
for (var r = 0; r < 50; r++) { result = work(arr, 64); }
`

func TestDifferentialHotLoop(t *testing.T) {
	e := runBoth(t, hotLoopSrc, nil)
	if e.Stats().NrJIT < 1 {
		t.Fatalf("hot function was not JITed: %+v", e.Stats())
	}
	if e.Stats().Bailouts != 0 {
		t.Fatalf("unexpected bailouts: %+v", e.Stats())
	}
}

func TestDifferentialCorpus(t *testing.T) {
	corpus := map[string]string{
		"fib": `
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
var result = 0;
for (var i = 0; i < 40; i++) { result = fib(12); }`,
		"mathops": `
function m(x) { return Math.sqrt(x) + Math.abs(-x) + Math.floor(x / 3) + Math.pow(x, 0.5) + Math.min(x, 2) + Math.max(x, 3); }
var result = 0;
for (var i = 0; i < 60; i++) { result += m(i); }`,
		"bitops": `
function b(x) { return ((x & 255) | 16) ^ (x << 2) ^ (x >> 1) ^ (x >>> 3); }
var result = 0;
for (var i = 0; i < 60; i++) { result += b(i * 7); }`,
		"globals": `
var acc = 0;
function bump(x) { acc = acc + x; return acc; }
var result = 0;
for (var i = 0; i < 60; i++) { result = bump(i); }`,
		"arrays": `
function sum(a) { var s = 0; for (var i = 0; i < a.length; i++) { s += a[i]; } return s; }
function fill(a, v) { for (var i = 0; i < a.length; i++) { a[i] = v + i; } }
var a = new Array(32);
var result = 0;
for (var r = 0; r < 40; r++) { fill(a, r); result = sum(a); }`,
		"pushpop": `
function churn(a, n) {
  for (var i = 0; i < n; i++) { a.push(i * 0.5); }
  var s = 0;
  for (var j = 0; j < n; j++) { s += a.pop(); }
  return s;
}
var a = new Array(0);
var result = 0;
for (var r = 0; r < 40; r++) { result += churn(a, 8); }`,
		"branches": `
function cls(x) {
  if (x < 10) { return 1; }
  else if (x < 100) { return 2; }
  return 3;
}
var result = 0;
for (var i = 0; i < 120; i++) { result += cls(i * 3); }`,
		"conditionals": `
function pick(a, b) { return a < b ? a * 2 : b * 3; }
var result = 0;
for (var i = 0; i < 60; i++) { result += pick(i, 30); }`,
		"logical": `
function l(a, b) { return (a && b) + (a || b); }
var result = 0;
for (var i = 0; i < 60; i++) { result += l(i % 3, i % 5); }`,
		"nestedloops": `
function mat(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    for (var j = 0; j < n; j++) { s += i * j; }
  }
  return s;
}
var result = 0;
for (var r = 0; r < 40; r++) { result = mat(6); }`,
		"allocation": `
function makeVec(n) { var v = new Array(n); for (var i = 0; i < n; i++) { v[i] = i; } return v; }
function use(n) { var v = makeVec(n); return v[n - 1] + v.length; }
var result = 0;
for (var r = 0; r < 40; r++) { result += use(8); }`,
		"dowhile": `
function dw(n) { var s = 0; do { s += n; n--; } while (n > 0); return s; }
var result = 0;
for (var r = 0; r < 40; r++) { result = dw(20); }`,
		"updateexprs": `
function u(a) { var t = 0; for (var i = 0; i < a.length; i++) { a[i]++; t += a[i]; } return t; }
var a = [1, 2, 3, 4, 5, 6, 7, 8];
var result = 0;
for (var r = 0; r < 40; r++) { result = u(a); }`,
		"negzero_nan": `
function nz(x) { var q = 0 / x; return (q == q) ? 1 : -1; }
var result = 0;
for (var r = 1; r < 60; r++) { result += nz(r - 30); }`,
		"random": `
function rnd() { return Math.floor(Math.random() * 100); }
var result = 0;
for (var r = 0; r < 60; r++) { result += rnd(); }`,
	}
	for name, src := range corpus {
		src := src
		t.Run(name, func(t *testing.T) {
			runBoth(t, src, nil)
		})
	}
}

func TestDifferentialCorpusWithAllBugsActive(t *testing.T) {
	// The benign corpus must behave identically even on a vulnerable
	// engine: the injected bugs only fire on the exploit idioms.
	bugs := passes.BugSet{}
	for _, cve := range passes.AllCVEs {
		bugs[cve] = true
	}
	src := hotLoopSrc + `
function copyInto(dst, src2, n) {
  for (var i = 0; i < n; i++) { dst[i] = src2[i]; }
  return dst[0];
}
var d = new Array(16);
var s2 = new Array(16);
for (var i = 0; i < 16; i++) { s2[i] = i; }
for (var r = 0; r < 40; r++) { result += copyInto(d, s2, 16); }`
	runBoth(t, src, bugs)
}

func TestPolymorphicFunctionStaysInterpreted(t *testing.T) {
	src := `
function id(x) { return x; }
var a = [1];
var result = 0;
for (var i = 0; i < 30; i++) { result += id(2); }
for (var i = 0; i < 30; i++) { id(a); }
`
	cfg := jitCfg()
	e, _, err := RunScript(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// id was compiled as number->number; the array calls must bail, and
	// results must stay correct.
	if e.Global("result").AsNumber() != 60 {
		t.Fatalf("result = %v", e.Global("result"))
	}
	if e.Stats().Bailouts == 0 {
		t.Fatalf("expected bailouts from polymorphic calls: %+v", e.Stats())
	}
}

func TestUnsupportedFunctionStaysInterpreted(t *testing.T) {
	src := `
function s(x) { return "v" + x; }
var result = "";
for (var i = 0; i < 40; i++) { result = s(i); }
`
	e, _, err := RunScript(src, jitCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().NrJIT != 0 || e.Stats().InterpOnly != 1 {
		t.Fatalf("string function must stay interpreted: %+v", e.Stats())
	}
	if e.Global("result").AsString() != "v39" {
		t.Fatalf("result = %v", e.Global("result"))
	}
}

func TestBailoutFallbackKeepsSemantics(t *testing.T) {
	// Reads beyond length bail out of native code (hole semantics need the
	// interpreter); the result must match pure interpretation.
	src := `
function probe(a, i) { return a[i] + 1; }
var a = [5, 6, 7];
var result = 0;
for (var r = 0; r < 30; r++) { result += probe(a, 1); }
result += probe(a, 99);
`
	e := runBoth(t, src, nil)
	if e.Stats().Bailouts == 0 {
		t.Fatalf("OOB probe should bail: %+v", e.Stats())
	}
}

func TestNoJITModeNeverCompiles(t *testing.T) {
	cfg := Config{DisableJIT: true}
	e, _, err := RunScript(hotLoopSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Compiles != 0 || e.Stats().NrJIT != 0 {
		t.Fatalf("NoJIT mode compiled something: %+v", e.Stats())
	}
}

func TestThresholdRespected(t *testing.T) {
	src := `
function f(x) { return x * 2; }
var result = 0;
for (var i = 0; i < 7; i++) { result += f(i); }
`
	cfg := Config{BaselineThreshold: 3, IonThreshold: 100}
	e, _, err := RunScript(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Compiles != 0 {
		t.Fatalf("cold function compiled: %+v", e.Stats())
	}
}

func TestFunctionReturningArrayIsJITed(t *testing.T) {
	src := `
function mk(n) { var a = new Array(n); for (var i = 0; i < n; i++) { a[i] = i; } return a; }
function total(n) { var a = mk(n); return a[n - 1]; }
var result = 0;
for (var r = 0; r < 40; r++) { result += total(6); }
`
	e := runBoth(t, src, nil)
	if e.Stats().NrJIT < 2 {
		t.Fatalf("array-returning chain not JITed: %+v", e.Stats())
	}
}

func TestEngineStatsCountJITedFunctionsOnce(t *testing.T) {
	e, _, err := RunScript(hotLoopSrc, jitCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().NrJIT != 1 || e.Stats().Compiles != 1 {
		t.Fatalf("stats: %+v", e.Stats())
	}
}

func TestRecursionThroughJIT(t *testing.T) {
	src := `
function fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
var result = 0;
for (var r = 0; r < 40; r++) { result = fact(12); }
`
	runBoth(t, src, nil)
}

func TestVulnerableEngineStillRunsBenignCode(t *testing.T) {
	for _, cve := range passes.AllCVEs {
		cve := cve
		t.Run(cve, func(t *testing.T) {
			runBoth(t, hotLoopSrc, passes.BugSet{cve: true})
		})
	}
}

package engine

import (
	"testing"

	"github.com/jitbull/jitbull/internal/obs"
)

// osrAgainstInterp runs src under the OSR/deopt engine and the clean
// interpreter and asserts value equality, returning the JIT engine for
// stats assertions.
func osrAgainstInterp(t *testing.T, src string, cfg Config) *Engine {
	t.Helper()
	_, want, err := RunScript(src, Config{DisableJIT: true})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	e, got, err := RunScript(src, cfg)
	if err != nil {
		t.Fatalf("jit: %v", err)
	}
	if want.ToString() != got.ToString() {
		t.Fatalf("value divergence: interp=%s jit=%s", want.ToString(), got.ToString())
	}
	return e
}

// TestOSRMidLoopEntry: a single long-running call must tier up from inside
// the loop — back edges trigger the compile and the transfer happens at the
// loop header, without the call ever returning to a call boundary.
func TestOSRMidLoopEntry(t *testing.T) {
	src := `
function weight(a, b) { return (a * 3 + b) % 1000003; }
function hot(n) {
  var s = 0;
  var i = 0;
  while (i < n) {
    var c = weight(i, s);
    s = (s + c + i) % 1000003;
    i = i + 1;
  }
  return s;
}
print(hot(900));
`
	e := osrAgainstInterp(t, src, Config{IonThreshold: 30, BaselineThreshold: 10, OSR: true})
	st := e.Stats()
	if st.OSREntries == 0 {
		t.Fatalf("single long call never entered mid-loop: %+v", st)
	}
	if st.DeoptExits != 0 {
		t.Fatalf("monomorphic helper must not deopt: %+v", st)
	}
}

// TestOSRPerSiteCooldown: the array-stream shape — a short warm-up loop
// that fills the array, then the hot nested loop. The fill loop's back
// edges cross the OSR threshold while s/it/j are still undefined, so the
// transfer at its header is refused; that refusal must park only that
// ordinal, not the function, and the hot loop must still enter mid-loop.
// (With the old function-wide cooldown this recorded zero OSR entries.)
func TestOSRPerSiteCooldown(t *testing.T) {
	src := `
function hot(n, m) {
  var a = new Array(m);
  for (var i = 0; i < m; i++) { a[i] = i; }
  var s = 0;
  var it = 0;
  while (it < n) {
    var j = 0;
    while (j < m) {
      s = (s + a[j]) % 1000003;
      j = j + 1;
    }
    it = it + 1;
  }
  return s;
}
print(hot(200, 64));
`
	e := osrAgainstInterp(t, src, Config{IonThreshold: 30, BaselineThreshold: 10, OSR: true})
	st := e.Stats()
	if st.OSREntries == 0 {
		t.Fatalf("refused warm-up header parked the hot loop: %+v", st)
	}
	if st.DeoptExits != 0 {
		t.Fatalf("unspeculated array loop must not deopt: %+v", st)
	}
}

// TestDeoptKeepsWork: a helper whose return type flips to undefined
// mid-loop fails the speculation guard; the exit must reconstruct the
// interpreter frame (keeping the work done so far) and the final value must
// match the interpreter exactly.
func TestDeoptKeepsWork(t *testing.T) {
	src := `
function flip(p, q) {
  if (p < 400) { return (q * 2 + p) % 1000003; }
  return;
}
function hot(n) {
  var s = 0;
  var i = 0;
  while (i < n) {
    var c = flip(i, s);
    if (c) { s = (s + c + i) % 1000003; }
    i = i + 1;
  }
  return s;
}
print(hot(700));
`
	e := osrAgainstInterp(t, src, Config{IonThreshold: 30, BaselineThreshold: 10, OSR: true, Speculate: true})
	st := e.Stats()
	if st.OSREntries == 0 || st.DeoptExits == 0 {
		t.Fatalf("expected OSR entries and deopt exits, got %+v", st)
	}
}

// TestDeoptStormRequalifies: when one function's speculation guard keeps
// failing across activations, the engine must not blacklist it — it
// discards the artifact, disables TypeSpeculation for the function, records
// a requalify audit verdict, and the recompiled unspeculated code keeps
// running natively with interpreter semantics.
func TestDeoptStormRequalifies(t *testing.T) {
	src := `
function flip(p, q) {
  if (p < 300) { return (q + p * 2) % 1000003; }
  return;
}
function hot(n) {
  var s = 0;
  var i = 0;
  while (i < n) {
    var c = flip(i, s);
    if (c) { s = (s + c) % 1000003; }
    i = i + 1;
  }
  return s;
}
var result = 0;
for (var r = 0; r < 24; r++) { result = (result + hot(600)) % 1000003; }
print(result);
`
	audit := obs.NewAuditLog(nil)
	e := osrAgainstInterp(t, src, Config{
		IonThreshold: 10, BaselineThreshold: 4, OSR: true, Speculate: true, Audit: audit,
	})
	st := e.Stats()
	if st.DeoptExits < maxDeoptsBeforeRequalify {
		t.Fatalf("storm never accumulated: %d deopts, want >= %d", st.DeoptExits, maxDeoptsBeforeRequalify)
	}
	if st.LoopsRequalified == 0 {
		t.Fatalf("deopt storm did not requalify the function: %+v", st)
	}
	requalified := false
	for _, ev := range e.Audit().Events() {
		if ev.Verdict == obs.VerdictRequalify && ev.Stage == StageDeopt {
			requalified = true
		}
	}
	if !requalified {
		t.Fatal("no requalify verdict with the deopt stage in the audit log")
	}
}

package engine

// Off-thread compilation and shared-cache tests: the Engine concurrency
// contract under -race, install-at-safe-point semantics, verdict-counter
// equivalence across sync/async/cached modes, and cache hit/miss
// accounting. See also supervisor_test.go for quarantine × async.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/value"
	"github.com/jitbull/jitbull/internal/variants"
)

// stubCachingPolicy is a minimal CachingPolicy for engine-side plumbing
// tests (core.Detector's implementation is exercised by difftest and the
// experiments bench, which can import both packages).
type stubCachingPolicy struct {
	verdict  CompileDecision
	began    int
	replays  int
	payloads int
}

func (p *stubCachingPolicy) Active() bool { return true }

func (p *stubCachingPolicy) BeginCompile(fn string) (passes.Observer, func() CompileDecision) {
	p.began++
	return nil, func() CompileDecision { return p.verdict }
}

func (p *stubCachingPolicy) PolicyCacheKey() (string, bool) { return "stub", true }

func (p *stubCachingPolicy) TakeVerdictPayload() any {
	p.payloads++
	return &p.verdict
}

func (p *stubCachingPolicy) ReplayVerdict(fn string, payload any) CompileDecision {
	p.replays++
	return *payload.(*CompileDecision)
}

func TestAsyncCompileMatchesSyncVerdicts(t *testing.T) {
	syncEng := runHot(t, Config{IonThreshold: 5})

	q := jitqueue.New(2, 16, nil)
	defer q.Close()
	async := runHot(t, Config{IonThreshold: 5, Queue: q})

	ss, as := syncEng.Stats(), async.Stats()
	if as.NrJIT != ss.NrJIT || as.NrDisJIT != ss.NrDisJIT || as.NrNoJIT != ss.NrNoJIT {
		t.Errorf("verdict counters differ: sync %+v async %+v", ss, as)
	}
	if as.AsyncCompiles == 0 {
		t.Error("no compile job was enqueued")
	}
	if as.AsyncInstalls == 0 {
		t.Error("no artifact was installed from the background queue")
	}
	st := async.fn(t, "hot")
	if st.code == nil || st.tier != tierIon {
		t.Errorf("async compile never installed: code=%v tier=%d", st.code != nil, st.tier)
	}
}

func TestAsyncQueueSaturationFallsBackToSync(t *testing.T) {
	// A zero-worker... not constructible; instead saturate a tiny queue
	// with a blocked worker so Submit rejects and the engine compiles
	// inline.
	gate := make(chan struct{})
	q := jitqueue.New(1, 1, nil)
	defer q.Close()
	q.Submit(jitqueue.Job{Owner: "blocker", Run: func() { <-gate }})
	q.Submit(jitqueue.Job{Owner: "filler", Run: func() {}})
	e := runHot(t, Config{IonThreshold: 5, Queue: q})
	close(gate)
	if e.Stats().NrJIT != 1 {
		t.Errorf("saturated queue should fall back to a synchronous compile: %+v", e.Stats())
	}
	if e.Stats().AsyncCompiles != 0 {
		t.Errorf("job enqueued despite saturation: %+v", e.Stats())
	}
}

func TestSharedCacheHitSkipsPipeline(t *testing.T) {
	reg := obs.NewRegistry()
	cache := jitqueue.NewCache(reg)

	cold := runHot(t, Config{IonThreshold: 5, Cache: cache})
	cs := cold.Stats()
	if cs.CacheMisses == 0 || cs.CacheHits != 0 {
		t.Fatalf("cold engine: %+v", cs)
	}
	if cs.Compiles == 0 {
		t.Fatalf("cold engine never ran the pipeline: %+v", cs)
	}

	warm := runHot(t, Config{IonThreshold: 5, Cache: cache})
	ws := warm.Stats()
	if ws.CacheHits != 1 || ws.Compiles != 0 {
		t.Errorf("warm engine should hit the cache and skip the pipeline: %+v", ws)
	}
	if ws.NrJIT != cs.NrJIT {
		t.Errorf("cached install not counted like a compile: cold %+v warm %+v", cs, ws)
	}
	st := warm.fn(t, "hot")
	if st.code == nil || st.tier != tierIon {
		t.Error("cache hit did not install the artifact")
	}
	if reg.Counter("cache.hits").Value() != 1 {
		t.Errorf("cache.hits = %d, want 1", reg.Counter("cache.hits").Value())
	}
}

func TestSharedCacheKeyIsRenameMinifyInvariant(t *testing.T) {
	cache := jitqueue.NewCache(nil)
	cold := runHot(t, Config{IonThreshold: 5, Cache: cache})
	if cold.Stats().CacheMisses == 0 {
		t.Fatal("cold engine never consulted the cache")
	}
	for _, tf := range []struct {
		name string
		fn   func(string) (string, error)
	}{{"rename", variants.Rename}, {"minify", variants.Minify}} {
		vsrc, err := tf.fn(hotSrc)
		if err != nil {
			t.Fatalf("%s: %v", tf.name, err)
		}
		e, err := New(vsrc, Config{IonThreshold: 5, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if s := e.Stats(); s.CacheHits != 1 || s.Compiles != 0 {
			t.Errorf("%s variant missed the shared cache: %+v", tf.name, s)
		}
	}
}

func TestCacheReplaysPolicyVerdict(t *testing.T) {
	t.Run("disable-pass", func(t *testing.T) {
		cache := jitqueue.NewCache(nil)
		colder := &stubCachingPolicy{verdict: CompileDecision{DisabledPasses: []string{"GVN"}}}
		cold, err := New(hotSrc, Config{IonThreshold: 5, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		cold.SetPolicy(colder)
		if _, err := cold.Run(); err != nil {
			t.Fatal(err)
		}
		if s := cold.Stats(); s.NrDisJIT != 1 || s.Recompiles != 1 {
			t.Fatalf("cold stats: %+v", s)
		}
		if colder.payloads != 1 {
			t.Fatalf("payload not captured: %d", colder.payloads)
		}

		warmer := &stubCachingPolicy{verdict: CompileDecision{DisabledPasses: []string{"GVN"}}}
		warm, err := New(hotSrc, Config{IonThreshold: 5, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		warm.SetPolicy(warmer)
		if _, err := warm.Run(); err != nil {
			t.Fatal(err)
		}
		s := warm.Stats()
		if s.CacheHits != 1 || s.Compiles != 0 || s.Recompiles != 0 {
			t.Errorf("warm engine re-ran the pipeline: %+v", s)
		}
		if s.NrDisJIT != 1 || s.NrJIT != 1 {
			t.Errorf("replayed verdict not counted identically: %+v", s)
		}
		if warmer.replays != 1 || warmer.began != 0 {
			t.Errorf("policy: replays=%d began=%d, want 1/0 (no DNA matching on a hit)", warmer.replays, warmer.began)
		}
		if st := warm.fn(t, "hot"); !st.disabledPasses["GVN"] {
			t.Error("disabled-pass set not restored from the cache")
		}
	})

	t.Run("nojit", func(t *testing.T) {
		cache := jitqueue.NewCache(nil)
		for i, wantHits := range []int{0, 1} {
			p := &stubCachingPolicy{verdict: CompileDecision{NoJIT: true}}
			e, err := New(hotSrc, Config{IonThreshold: 5, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			e.SetPolicy(p)
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			s := e.Stats()
			if s.NrNoJIT != 1 || s.NrJIT != 1 {
				t.Errorf("engine %d: NoJIT verdict counters: %+v", i, s)
			}
			if s.CacheHits != wantHits {
				t.Errorf("engine %d: CacheHits = %d, want %d", i, s.CacheHits, wantHits)
			}
			if wantHits == 1 && s.Compiles != 0 {
				t.Errorf("NoJIT cache hit still ran the pipeline: %+v", s)
			}
			if st := e.fn(t, "hot"); st.quar != qPermanent {
				t.Errorf("engine %d: NoJIT must pin the function to the interpreter (quar=%d)", i, st.quar)
			}
		}
	})
}

func TestRecorderPolicyDisablesCaching(t *testing.T) {
	// A policy that does not implement CachingPolicy (like core.Recorder)
	// must observe every pipeline run: no hits, no misses, no sharing.
	cache := jitqueue.NewCache(nil)
	for i := 0; i < 2; i++ {
		e, err := New(hotSrc, Config{IonThreshold: 5, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		e.SetPolicy(plainPolicy{})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if s := e.Stats(); s.CacheHits != 0 || s.CacheMisses != 0 || s.Compiles == 0 {
			t.Errorf("engine %d: non-caching policy must bypass the cache: %+v", i, s)
		}
	}
	if cache.Len() != 0 {
		t.Errorf("cache has %d entries, want 0", cache.Len())
	}
}

// plainPolicy implements Policy but NOT CachingPolicy.
type plainPolicy struct{}

func (plainPolicy) Active() bool { return true }
func (plainPolicy) BeginCompile(string) (passes.Observer, func() CompileDecision) {
	return nil, func() CompileDecision { return CompileDecision{} }
}

// twoFnSrc declares two independently-hot JIT-able functions so a driver
// can put one into the shared cache while the other compiles.
const twoFnSrc = `
function fa(x) {
  var s = 0;
  for (var i = 0; i < 10; i++) { s = s + x + i; }
  return s;
}
function fb(x) {
  var s = 0;
  for (var i = 0; i < 10; i++) { s = s + x * 2 + i; }
  return s;
}
`

// accountingPolicy is a CachingPolicy that, like core.Detector, mutates
// unsynchronized per-policy state (a map) both when a live Decide
// finishes and when a verdict is replayed from the cache — the state the
// engine's compileMu must serialize.
type accountingPolicy struct {
	seen          map[string]int
	decideStarted chan struct{}
	decideSpin    int // map writes the finish closure performs
}

func (p *accountingPolicy) Active() bool { return true }

func (p *accountingPolicy) BeginCompile(fn string) (passes.Observer, func() CompileDecision) {
	return nil, func() CompileDecision {
		if p.decideStarted != nil {
			close(p.decideStarted)
			p.decideStarted = nil
		}
		for i := 0; i < p.decideSpin; i++ {
			p.seen[fn]++
			time.Sleep(50 * time.Microsecond)
		}
		p.seen[fn]++
		return CompileDecision{}
	}
}

func (p *accountingPolicy) PolicyCacheKey() (string, bool) { return "accounting", true }

func (p *accountingPolicy) TakeVerdictPayload() any { return &CompileDecision{} }

func (p *accountingPolicy) ReplayVerdict(fn string, payload any) CompileDecision {
	p.seen[fn]++
	return *payload.(*CompileDecision)
}

// TestCacheHitReplaySerializedWithQueuedCompile is the -race regression
// for the queue+cache mode: while a background worker is inside a queued
// compile's policy Decide for one function, a cache hit for another
// function on the owner goroutine must not replay its verdict into the
// same policy concurrently — ReplayVerdict takes compileMu like every
// other policy touch.
func TestCacheHitReplaySerializedWithQueuedCompile(t *testing.T) {
	cache := jitqueue.NewCache(nil)

	// Warm fb's cache entry (with its verdict payload) synchronously.
	cold, err := New(twoFnSrc, Config{IonThreshold: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	cold.SetPolicy(&accountingPolicy{seen: map[string]int{}})
	callN(t, cold, "fb", 10)
	if cache.Len() != 1 {
		t.Fatalf("warmup cached %d entries, want 1", cache.Len())
	}

	// The racing engine: fa's compile is queued and held inside Decide by
	// the spinning finish closure while the owner triggers fb's cache hit.
	q := jitqueue.New(1, 8, nil)
	defer q.Close()
	started := make(chan struct{})
	pol := &accountingPolicy{seen: map[string]int{}, decideStarted: started, decideSpin: 400}
	e, err := New(twoFnSrc, Config{IonThreshold: 3, Queue: q, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	e.SetPolicy(pol)
	callN(t, e, "fa", 3) // trigger: enqueued, worker enters Decide
	<-started
	callN(t, e, "fb", 3) // trigger: cache hit → ReplayVerdict mid-Decide
	e.Drain()

	if s := e.Stats(); s.CacheHits != 1 || s.AsyncCompiles != 1 {
		t.Fatalf("fixture did not race a hit against a queued compile: %+v", s)
	}
	if pol.seen["fb"] == 0 {
		t.Error("cache hit never replayed into the policy accounting")
	}
	if st := e.fn(t, "fb"); st.code == nil || st.tier != tierIon {
		t.Error("cache hit did not install fb")
	}
}

// callN drives the named function by hand n times on the owner goroutine
// (no Drain — callers control when outcomes install).
func callN(t *testing.T, e *Engine, name string, n int) {
	t.Helper()
	idx := -1
	for i, st := range e.fns {
		if st.fn.Name == name {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("no function %q", name)
	}
	args := []value.Value{value.Num(1)}
	for i := 0; i < n; i++ {
		if _, err := e.CallFunction(idx, args); err != nil {
			t.Fatalf("%s call %d: %v", name, i, err)
		}
	}
}

// TestEscapedJobPanicStillProducesOutcome: a panic that unwinds a
// background job past compileAttempt's recovery must still park a typed
// failure outcome — quarantining with the normal backoff schedule and
// leaving the function retryable — instead of wedging it inflight
// forever in baseline tier.
func TestEscapedJobPanicStillProducesOutcome(t *testing.T) {
	q := jitqueue.New(1, 8, nil)
	defer q.Close()
	var got []error
	e, err := New(hotSrc, Config{
		IonThreshold:        5,
		QuarantineBackoff:   4,
		QuarantineCleanRuns: 2,
		Queue:               q,
		OnCompileError:      func(fn string, err error) { got = append(got, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	e.testQueueJobHook = func() {
		if !fired {
			fired = true
			panic("escaped: outside the supervisor's recovery")
		}
	}
	args := []value.Value{value.Num(1)}
	idx := -1
	for i, st := range e.fns {
		if st.fn.Name == "hot" {
			idx = i
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := e.CallFunction(idx, args); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		e.Drain()
	}

	if len(q.Panics()) != 1 {
		t.Fatalf("pool recorded %d escaped panics, want 1", len(q.Panics()))
	}
	var cerr *CompileError
	if len(got) == 0 || !errors.As(got[0], &cerr) {
		t.Fatalf("escaped panic never surfaced as a CompileError: %v", got)
	}
	if cerr.Stage != StageQueue || !cerr.Panicked || !errors.Is(cerr, errEscapedPanic) {
		t.Errorf("typing wrong: %+v", cerr)
	}
	// The fabricated outcome follows failCompile semantics: one quarantine
	// round-trip, then the retry (hook fires once) compiles and requalifies.
	if s := e.Stats(); s.Quarantined != 1 || s.Requalified != 1 || s.NrJIT != 1 || s.CompilePanics != 1 {
		t.Errorf("recovery accounting: %+v", s)
	}
	st := e.fn(t, "hot")
	if st.inflight {
		t.Error("function wedged inflight after the escaped panic")
	}
	if st.quar != qNone || st.code == nil || st.tier != tierIon {
		t.Errorf("state after requalification: quar=%d code=%v tier=%d", st.quar, st.code != nil, st.tier)
	}
}

// TestEngineConcurrencyContract is the -race enforcement of the Engine
// concurrency contract: a fleet of engines sharing one queue, cache and
// metrics registry, with Stats() snapshots read concurrently from other
// goroutines while background installs land. Run with -race (CI does).
func TestEngineConcurrencyContract(t *testing.T) {
	reg := obs.NewRegistry()
	q := jitqueue.New(4, 32, reg)
	defer q.Close()
	cache := jitqueue.NewCache(reg)

	const fleet = 6
	engines := make([]*Engine, fleet)
	for i := range engines {
		e, err := New(hotSrc, Config{IonThreshold: 5, Queue: q, Cache: cache, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range engines {
					s := e.Stats() // must be race-free mid-run
					if s.NrJIT < 0 {
						t.Error("impossible snapshot")
						return
					}
				}
			}
		}()
	}

	var runs sync.WaitGroup
	for _, e := range engines {
		runs.Add(1)
		go func(e *Engine) {
			defer runs.Done()
			if _, err := e.Run(); err != nil {
				t.Errorf("run: %v", err)
				return
			}
			if got := e.Global("result").AsNumber(); got != hotResult {
				t.Errorf("result = %v, want %v", got, hotResult)
			}
		}(e)
	}
	runs.Wait()
	close(stop)
	readers.Wait()

	// Every engine reached the same verdict; the fleet compiled the
	// distinct function at most a handful of times (races may compile it
	// more than once, but hits must dominate once warm).
	for i, e := range engines {
		if s := e.Stats(); s.NrJIT != 1 {
			t.Errorf("engine %d: NrJIT = %d, want 1 (%+v)", i, s.NrJIT, s)
		}
	}
}

// TestStatsConsistentUnderConcurrentInstall drives CallFunction by hand
// while a reader snapshots Stats, proving install-at-safe-point never
// tears a snapshot (satellite: consistent Stats() under concurrent
// install).
func TestStatsConsistentUnderConcurrentInstall(t *testing.T) {
	q := jitqueue.New(2, 8, nil)
	defer q.Close()
	e, err := New(hotSrc, Config{IonThreshold: 3, Queue: q})
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, st := range e.fns {
		if st.fn.Name == "hot" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("no hot function")
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := e.Stats()
			if s.AsyncInstalls > s.AsyncCompiles {
				t.Error("snapshot tore: more installs than enqueued compiles")
				return
			}
		}
	}()
	args := []value.Value{value.Num(1)}
	for i := 0; i < 500; i++ {
		if _, err := e.CallFunction(idx, args); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	close(stop)
	<-done
	if s := e.Stats(); s.NrJIT != 1 || s.AsyncInstalls != 1 {
		t.Errorf("stats after drain: %+v", s)
	}
}

package engine

import (
	"reflect"
	"testing"

	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/passes"
)

// tracePolicy is a minimal always-on policy (the engine package cannot
// import core): it observes every pass and vetoes nothing, which is enough
// to light up the dna.extract and decide probes.
type tracePolicy struct{}

func (tracePolicy) Active() bool { return true }

func (tracePolicy) BeginCompile(string) (passes.Observer, func() CompileDecision) {
	return func(int, string, *mir.Snapshot, *mir.Snapshot) {},
		func() CompileDecision { return CompileDecision{} }
}

// TestTraceGoldenCompileSequence pins the event order of one successful
// traced compilation: trigger instant, mirbuild span, one (pass span,
// dna.extract span) pair per pipeline pass, the policy decide span, lir,
// regalloc, native.fuse, the native.install instant, and finally the
// enclosing compile span (spans are recorded at End, so the compile span
// closes the sequence).
func TestTraceGoldenCompileSequence(t *testing.T) {
	ring := obs.NewRing(0)
	cfg := jitCfg()
	cfg.Tracer = obs.NewTracer(ring)
	e, err := New(hotLoopSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPolicy(tracePolicy{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("traced run recorded no events")
	}

	want := []string{"compile.trigger", "mirbuild"}
	for _, pn := range passes.PassNames() {
		want = append(want, pn, "dna.extract")
	}
	want = append(want, "decide", "lir", "regalloc", "native.fuse", "native.install", "compile")

	if len(events) < len(want) {
		t.Fatalf("recorded %d events, want at least %d", len(events), len(want))
	}
	got := make([]string, len(want))
	for i := range want {
		got[i] = events[i].Name
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("first compile's event sequence diverged:\ngot  %v\nwant %v", got, want)
	}

	// Span/instant kinds, categories, and key args of the golden prefix.
	argStr := func(ev obs.Event, key string) (string, bool) {
		for _, a := range ev.Args[:ev.NArgs] {
			if a.Key == key && a.IsStr {
				return a.Str, true
			}
		}
		return "", false
	}
	argInt := func(ev obs.Event, key string) (int64, bool) {
		for _, a := range ev.Args[:ev.NArgs] {
			if a.Key == key && !a.IsStr {
				return a.Val, true
			}
		}
		return 0, false
	}
	for i := range want {
		ev := events[i]
		switch ev.Name {
		case "compile.trigger", "native.install":
			if ev.Kind != obs.KindInstant {
				t.Errorf("%s: kind = %v, want instant", ev.Name, ev.Kind)
			}
		case "mirbuild", "lir", "regalloc", "native.fuse", "compile":
			if ev.Kind != obs.KindSpan || ev.Cat != obs.CatCompile {
				t.Errorf("%s: kind/cat = %v/%q, want span/%q", ev.Name, ev.Kind, ev.Cat, obs.CatCompile)
			}
		case "decide":
			if ev.Cat != obs.CatPolicy {
				t.Errorf("decide: cat = %q, want %q", ev.Cat, obs.CatPolicy)
			}
			if v, ok := argStr(ev, "verdict"); !ok || v != "go" {
				t.Errorf("decide: verdict = %q, want \"go\"", v)
			}
		case "dna.extract":
			if ev.Cat != obs.CatDNA {
				t.Errorf("dna.extract: cat = %q, want %q", ev.Cat, obs.CatDNA)
			}
		default: // an optimization pass
			if ev.Cat != obs.CatPass {
				t.Errorf("%s: cat = %q, want %q", ev.Name, ev.Cat, obs.CatPass)
			}
			if _, ok := argInt(ev, "instrs_in"); !ok {
				t.Errorf("%s: pass span lacks instrs_in", ev.Name)
			}
			if _, ok := argInt(ev, "instrs_out"); !ok {
				t.Errorf("%s: pass span lacks instrs_out", ev.Name)
			}
		}
	}
	if res, ok := argStr(events[len(want)-1], "result"); !ok || res != "ok" {
		t.Errorf("compile span result = %q, want \"ok\"", res)
	}

	// Spans must nest inside the enclosing compile span's interval.
	compile := events[len(want)-1]
	for i := 1; i < len(want)-1; i++ {
		ev := events[i]
		if ev.Kind != obs.KindSpan {
			continue
		}
		if ev.TS < compile.TS || ev.TS+ev.Dur > compile.TS+compile.Dur {
			t.Errorf("%s [%d,%d] escapes the compile span [%d,%d]",
				ev.Name, ev.TS, ev.TS+ev.Dur, compile.TS, compile.TS+compile.Dur)
		}
	}
}

// TestTraceDisabledIsSilent: without a tracer nothing records, and the
// nil-tracer engine accessors stay nil (the zero-overhead contract).
func TestTraceDisabledIsSilent(t *testing.T) {
	e, _, err := RunScript(hotLoopSrc, jitCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e.Tracer() != nil {
		t.Fatal("untraced engine reports a tracer")
	}
	if e.Stats().Compiles == 0 {
		t.Fatal("fixture did not compile anything")
	}
}

// Off-thread tiered compilation and the shared compilation cache.
//
// The synchronous engine compiles Ion inline at the warmup trigger,
// stalling execution for the whole pipeline. With Config.Queue set, the
// trigger instead snapshots every compilation input (type feedback,
// global types, disabled passes), enqueues a supervised job on the
// background pool, and keeps executing in baseline; the finished outcome
// is parked in an atomic mailbox and installed at the next call boundary
// — the engine's safe point — by the owner goroutine, so all fnState and
// quarantine bookkeeping stays single-threaded.
//
// With Config.Cache set, outcomes are additionally published under a
// canonical key (rename/minify-invariant bytecode hash + every other
// compilation input), so a fleet of engines pays for each distinct
// function once: a hit installs the artifact and replays the recorded
// JITBULL verdict without running the pipeline or DNA matching.
//
// Concurrency contract: an Engine remains single-owner — CallFunction,
// Run, Drain and Stats mutation all happen on the goroutine that owns the
// engine. Background workers only ever touch (a) the immutable request
// snapshot, (b) the engine's atomic counters and locked observability
// sinks, (c) the policy, serialized by compileMu, and (d) the per-function
// outcome mailbox. Stats() reads atomics and is safe to call from any
// goroutine at any time.
package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"runtime"
	"sort"
	"time"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/mirbuild"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/value"
)

// CachingPolicy is the optional Policy extension the shared cache needs: a
// policy that can identify its decision inputs and replay a recorded
// verdict. A policy that does not implement it (e.g. core.Recorder, which
// must observe every pipeline run) disables caching for its engine.
type CachingPolicy interface {
	Policy
	// PolicyCacheKey identifies everything the policy's verdict depends on
	// besides the function's DNA (database identity, thresholds). ok=false
	// vetoes caching.
	PolicyCacheKey() (key string, ok bool)
	// TakeVerdictPayload returns an opaque, immutable record of the verdict
	// the policy just produced for the current compilation (nil when none),
	// clearing it. The engine stores it next to the cached artifact.
	TakeVerdictPayload() any
	// ReplayVerdict re-applies a recorded verdict on a cache hit for fnName
	// — re-recording audit events and match accounting exactly as the live
	// Decide would — and returns the decision.
	ReplayVerdict(fnName string, payload any) CompileDecision
}

// errEscapedPanic marks an outcome fabricated because a panic unwound a
// background compile job past the supervisor's recovery: the owner treats
// it like any other contained panic (quarantine with backoff) instead of
// leaving the function inflight forever.
var errEscapedPanic = errors.New("panic escaped the background compile job")

// compileRequest is the immutable snapshot of one compilation's inputs,
// captured on the owner goroutine at trigger time. Workers read it; nobody
// writes it after capture.
type compileRequest struct {
	idx    int
	fnName string
	fd     *ast.FuncDecl
	// opts carries snapshot-backed type closures: async compilation must
	// not read live VM state from a worker.
	opts     mirbuild.Options
	disabled map[string]bool // private copy; grown by the policy recompile
	async    bool
	key      jitqueue.Key
	cacheable  bool
	waitSpan   obs.Span  // compile.queue_wait: begun at enqueue, ended by the worker
	enqueuedAt time.Time // queue-wait / install-lag histogram epoch
}

// compileOutcome is everything a finished attempt needs applied to the
// owning fnState at the safe point.
type compileOutcome struct {
	req         *compileRequest
	code        *lir.Code
	cerr        *CompileError
	jitEligible bool            // mirbuild succeeded
	disabled    map[string]bool // final disabled-pass set (nil = unchanged)
	noJIT       bool            // policy scenario 3 verdict
	grew        bool            // policy scenario 2: disabled set grew
	decided     bool            // the policy produced a verdict for this attempt
	payload     any             // policy verdict record for the cache
	fromCache   bool
}

// cachedCompile is the cache value: the artifact plus the verdict. The
// artifact is installed by pointer — native execution never mutates
// lir.Code, so one compilation serves any number of engines and threads.
type cachedCompile struct {
	code        *lir.Code // nil for a NoJIT verdict
	noJIT       bool
	grew        bool
	disabled    []string // final disabled-pass set, sorted
	jitEligible bool
	payload     any
}

// sizeEstimate approximates the artifact's footprint for cache.bytes.
func (c *cachedCompile) sizeEstimate() int64 {
	s := int64(64)
	if c.code != nil {
		s += int64(len(c.code.Ops)) * 32
	}
	return s
}

// newCompileRequest snapshots every input of one compilation attempt.
// Must run on the owner goroutine.
func (e *Engine) newCompileRequest(idx int, st *fnState) *compileRequest {
	if len(e.cfg.DisabledPasses) > 0 && st.disabledPasses == nil {
		st.disabledPasses = map[string]bool{}
		for _, name := range e.cfg.DisabledPasses {
			st.disabledPasses[name] = true
		}
	}
	params := make([]value.Type, len(st.paramTypes))
	copy(params, st.paramTypes)
	for i, bad := range st.paramBad {
		if bad {
			params[i] = value.String // poisoned: mirbuild rejects it
		}
	}
	gtypes := make([]value.Type, len(e.VM.Globals))
	for i, g := range e.VM.Globals {
		gtypes[i] = g.Type()
	}
	rets := make([]value.Type, len(e.fns))
	for i, target := range e.fns {
		switch {
		case target.retBad:
			rets[i] = value.String // poisoned
		case target.retType == value.Undefined:
			rets[i] = value.Number // undefined flows as NaN
		default:
			rets[i] = target.retType
		}
	}
	var disabled map[string]bool
	if st.disabledPasses != nil {
		disabled = make(map[string]bool, len(st.disabledPasses))
		for name, on := range st.disabledPasses {
			disabled[name] = on
		}
	}
	req := &compileRequest{
		idx:    idx,
		fnName: st.fn.Name,
		fd:     st.fd,
		opts: mirbuild.Options{
			ParamTypes: params,
			GlobalType: func(slot int) value.Type { return gtypes[slot] },
			ReturnType: func(fnIdx int) value.Type { return rets[fnIdx] },
			OSR:        e.cfg.OSR,
			Speculate:  e.cfg.Speculate,
		},
		disabled: disabled,
	}
	req.key, req.cacheable = e.cacheKey(st, params, gtypes, rets, disabled)
	return req
}

// cacheKey digests every compilation input into the shared-cache key.
// ok=false means this engine's configuration is not cacheable: a custom
// pipeline or fault injection makes outcomes non-reproducible, and a
// policy must opt in via CachingPolicy.
func (e *Engine) cacheKey(st *fnState, params, gtypes, rets []value.Type, disabled map[string]bool) (jitqueue.Key, bool) {
	if e.cfg.Cache == nil || e.cfg.Passes != nil || e.cfg.Faults != nil {
		return jitqueue.Key{}, false
	}
	pkey := ""
	if e.policy != nil {
		cp, ok := e.policy.(CachingPolicy)
		if !ok {
			return jitqueue.Key{}, false
		}
		k, ok := cp.PolicyCacheKey()
		if !ok {
			return jitqueue.Key{}, false
		}
		pkey = k
	}

	h := sha256.New()
	var buf [8]byte
	wu32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	ws := func(s string) {
		wu32(uint32(len(s)))
		h.Write([]byte(s))
	}
	ch := st.fn.CanonicalHash()
	h.Write(ch[:])
	// Type feedback the artifact was specialized against: parameters
	// (poison included), every referenced global slot, every callee's
	// assumed return type. Slots and indices are declaration-order stable,
	// so the whole key survives rename/minify.
	wu32(uint32(len(params)))
	for _, t := range params {
		h.Write([]byte{byte(t)})
	}
	slots := map[int]bool{}
	callees := map[int]bool{}
	for _, in := range st.fn.Code {
		switch in.Op {
		case bytecode.OpLoadGlobal, bytecode.OpStoreGlobal:
			slots[int(in.A)] = true
		case bytecode.OpCall:
			callees[int(in.A)] = true
		}
	}
	for _, slot := range sortedInts(slots) {
		wu32(uint32(slot))
		h.Write([]byte{byte(gtypes[slot])})
	}
	for _, idx := range sortedInts(callees) {
		wu32(uint32(idx))
		if idx < len(rets) {
			h.Write([]byte{byte(rets[idx])})
		}
	}
	// Pipeline configuration.
	for _, bug := range sortedSet(map[string]bool(e.cfg.Bugs)) {
		ws(bug)
	}
	h.Write([]byte{0})
	for _, name := range sortedSet(disabled) {
		ws(name)
	}
	if e.cfg.CheckIR {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	// Fused and unfused artifacts execute identically, but the cached
	// *lir.Code carries its fused form by pointer — keep the tiers'
	// artifacts distinct so a NoFuse engine never installs a fused one.
	if e.cfg.NoFuse {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	// OSR frame maps and speculation guards change the artifact's shape
	// (markers, side tables, KCallSpec ops) without changing semantics —
	// keep the variants distinct so an OSR engine never installs an
	// artifact with no OSR entries and vice versa.
	if e.cfg.OSR {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	if e.cfg.Speculate {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	// The machine-code tier attaches per-engine (units never ride the
	// cached artifact), but an mc engine's entries are still keyed apart,
	// tagged with the architecture that would lower them, so any future
	// side-table rider can never be installed cross-tier or cross-arch.
	if e.mcActive() {
		ws("mc/" + runtime.GOARCH)
	} else {
		ws("")
	}
	ws(pkey)
	var k jitqueue.Key
	h.Sum(k[:0])
	return k, true
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v, on := range set {
		if on {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// enqueueCompile hands the attempt to the background pool, reporting
// false when the queue is saturated (the caller compiles synchronously —
// back-pressure degrades to the old inline behavior, never an unbounded
// backlog).
func (e *Engine) enqueueCompile(st *fnState, req *compileRequest) bool {
	req.async = true
	e.tracer.Instant(obs.CatCompile, "compile.enqueue",
		obs.S("fn", req.fnName), obs.I("queue_depth", e.cfg.Queue.Depth()))
	req.waitSpan = e.tracer.Begin(obs.CatCompile, "compile.queue_wait")
	req.enqueuedAt = time.Now()
	e.journey(st, obs.StageEnqueued, "queue depth=%d", e.cfg.Queue.Depth())
	e.inflight.Add(1)
	ok := e.cfg.Queue.Submit(jitqueue.Job{
		Owner: req.fnName,
		Run: func() {
			defer e.inflight.Done()
			// Park whatever outcome exists when the closure unwinds — the
			// placeholder failure if a panic escapes compileAttempt's
			// recovery (cache put, tracer, a hook) — so the owner always has
			// an applyable outcome and the function is never wedged with
			// st.inflight set forever. The panic itself still propagates to
			// the queue's last-resort recorder.
			o := &compileOutcome{req: req, cerr: &CompileError{
				Func: req.fnName, Stage: StageQueue, Err: errEscapedPanic, Panicked: true,
			}}
			defer func() { st.pending.Store(o) }()
			req.waitSpan.End(obs.S("fn", req.fnName))
			e.hQueueWait.ObserveEx(int64(time.Since(req.enqueuedAt)), req.waitSpan.ID())
			if e.testQueueJobHook != nil {
				e.testQueueJobHook()
			}
			sp := e.tracer.Begin(obs.CatCompile, "compile")
			start := time.Now()
			o = e.compileAttempt(req)
			dur := int64(time.Since(start))
			e.hCompile.ObserveEx(dur, sp.ID())
			e.watchdog.Signal(obs.Signal{Kind: obs.SigCompile, Func: req.fnName, Value: dur})
			e.maybeCachePut(o)
			// Journal via the immutable request only: a worker must not read
			// owner-mutated fnState (st.tier), per the concurrency contract.
			if o.cerr != nil {
				e.journal.Record(req.fnName, obs.StageCompiled, "", "fail: stage="+o.cerr.Stage)
				sp.End(obs.S("fn", req.fnName), obs.S("result", "fail"), obs.S("stage", o.cerr.Stage), obs.S("source", "queue"))
			} else {
				e.journal.Record(req.fnName, obs.StageCompiled, "", "ok: queue")
				sp.End(obs.S("fn", req.fnName), obs.S("result", "ok"), obs.S("source", "queue"))
			}
		},
	})
	if !ok {
		e.inflight.Done()
		req.waitSpan.End(obs.S("fn", req.fnName), obs.S("result", "rejected"))
		e.watchdog.Signal(obs.Signal{Kind: obs.SigQueueSaturated, Func: req.fnName, Cause: "inline fallback"})
		req.async = false
		return false
	}
	st.inflight = true
	e.m.asyncCompiles.Inc()
	// Give a worker a scheduling slot right away. On GOMAXPROCS=1 the
	// owner would otherwise spin in the interpreter until the runtime's
	// ~10ms async preemption kicks in, turning every compile window into
	// a fixed 10ms of baseline-tier execution; on multi-core hosts an
	// idle P picks the job up anyway and the yield is a no-op.
	runtime.Gosched()
	return true
}

// maybeCachePut publishes a finished attempt: successful artifacts and
// deterministic NoJIT verdicts, never transient failures. First store
// wins, so racing engines converge on one artifact+verdict.
func (e *Engine) maybeCachePut(o *compileOutcome) {
	if !o.req.cacheable || o.fromCache {
		return
	}
	cc := &cachedCompile{
		grew:        o.grew,
		disabled:    sortedSet(o.disabled),
		jitEligible: o.jitEligible,
		payload:     o.payload,
	}
	switch {
	case o.cerr == nil:
		cc.code = o.code
	case o.noJIT:
		cc.noJIT = true
	default:
		return // transient failure: let the next engine try fresh
	}
	e.cfg.Cache.Put(o.req.key, cc, cc.sizeEstimate())
}

// outcomeFromCache turns a cache hit into an applyable outcome: the
// artifact by pointer, the policy verdict replayed (audit + match
// accounting identical to a live decision), and for NoJIT the same typed
// error the live pipeline produces — so quarantine/permanent semantics
// are bit-for-bit those of a cold compile.
func (e *Engine) outcomeFromCache(req *compileRequest, cc *cachedCompile) *compileOutcome {
	o := &compileOutcome{
		req:         req,
		fromCache:   true,
		jitEligible: cc.jitEligible,
		noJIT:       cc.noJIT,
		grew:        cc.grew,
		decided:     e.policy != nil && e.policy.Active(),
	}
	if cp, ok := e.policy.(CachingPolicy); ok && cc.payload != nil {
		// Replay mutates the policy's match accounting (Detector.seen /
		// Matches / audit), and a queued compile of another function may
		// concurrently be inside BeginCompile/Decide on a worker — so the
		// replay takes compileMu like every other policy touch.
		e.compileMu.Lock()
		cp.ReplayVerdict(req.fnName, cc.payload)
		e.compileMu.Unlock()
	}
	if len(cc.disabled) > 0 {
		m := make(map[string]bool, len(cc.disabled))
		for _, name := range cc.disabled {
			m[name] = true
		}
		o.disabled = m
	}
	if cc.noJIT {
		o.cerr = newCompileError(req.fnName, StagePolicy, ErrPolicyNoJIT)
	} else {
		o.code = cc.code
	}
	return o
}

// applyOutcome installs a finished attempt into the owning fnState. It is
// the single writer of all post-compile engine state — tier, quarantine,
// verdict counters — and always runs on the owner goroutine (inline for
// sync compiles and cache hits, at the next call boundary or Drain for
// async ones), which is what keeps the engine race-free with a background
// queue attached.
func (e *Engine) applyOutcome(st *fnState, o *compileOutcome) {
	st.inflight = false
	if o.jitEligible {
		st.jitEligible = true
	}
	if o.disabled != nil {
		st.disabledPasses = o.disabled
	}
	// Policy verdict accounting, identical across sync, async and cached
	// paths (acceptance: the mode may move *when* a verdict lands, never
	// which verdict or how it is counted).
	if o.grew || o.noJIT {
		if !st.counted {
			st.counted = true
			e.m.nrJIT.Inc()
		}
		if o.grew {
			e.m.nrDisJIT.Inc()
		}
		if o.noJIT {
			e.m.nrNoJIT.Inc()
		}
	}
	if o.decided {
		verdict := string(obs.VerdictGo)
		switch {
		case o.noJIT:
			verdict = string(obs.VerdictNoJIT)
		case o.grew:
			verdict = string(obs.VerdictDisablePass)
		}
		e.watchdog.Signal(obs.Signal{Kind: obs.SigVerdict, Func: st.fn.Name, Cause: verdict})
	}
	if o.cerr != nil {
		e.failCompile(st, o.cerr)
		return
	}
	wasQuarantined := st.quar == qQuarantined
	if !st.counted {
		st.counted = true
		e.m.nrJIT.Inc()
	}
	st.code = o.code
	st.tier = tierIon
	st.bailouts = 0
	// A fresh artifact gets a fresh OSR/deopt history: the cooldown and the
	// deopt count judged the discarded code, not this one.
	st.osrCooldown = nil
	st.deopts = 0
	// A fresh artifact gets a fresh machine-code attach: the unit (or the
	// quarantined attempt) belonged to the discarded code. This is the
	// single attach site for every install path — sync, async, cache,
	// store — so top-tier selection cannot depend on how the artifact
	// arrived.
	st.mcu, st.mcTried = nil, false
	e.attachMC(st)
	switch topTierName(st) {
	case "mc":
		e.m.tierMC.Inc()
	case "fused":
		e.m.tierFused.Inc()
	default:
		e.m.tierSwitch.Inc()
	}
	e.journey(st, obs.StageTier, "top=%s", topTierName(st))
	if wasQuarantined {
		// A quarantined function compiled cleanly on retry: requalify.
		st.quar = qNone
		st.attempts = 0
		e.m.requalified.Inc()
		e.audit.Record(obs.AuditEvent{
			Func:    st.fn.Name,
			Verdict: obs.VerdictRequalify,
			Reason:  "clean recompile after quarantine",
		})
		e.journey(st, obs.StageRequalified, "clean recompile after quarantine")
	}
	if o.fromCache || o.req.async {
		source := "queue"
		if o.fromCache {
			source = "cache"
		} else {
			e.m.asyncInstalls.Inc()
			// Install lag: warmup trigger → safe-point install, the window
			// the function kept executing in baseline. Exemplar-linked to
			// the queue-wait span, whose trace covers the same window.
			e.hInstallLag.ObserveEx(int64(time.Since(o.req.enqueuedAt)), o.req.waitSpan.ID())
		}
		e.tracer.Instant(obs.CatCompile, "compile.install",
			obs.S("fn", st.fn.Name), obs.S("source", source),
			obs.I("ops", int64(len(o.code.Ops))), obs.I("regs", int64(o.code.NumRegs)))
		e.journey(st, obs.StageInstalled, "source=%s ops=%d", source, len(o.code.Ops))
	} else {
		e.tracer.Instant(obs.CatCompile, "native.install",
			obs.S("fn", st.fn.Name), obs.I("ops", int64(len(o.code.Ops))), obs.I("regs", int64(o.code.NumRegs)))
		e.journey(st, obs.StageInstalled, "source=inline ops=%d", len(o.code.Ops))
	}
}

// Drain waits for every in-flight background compilation of this engine
// and applies the outcomes, leaving the engine in the state a synchronous
// engine reaches after the same triggers. Run calls it automatically; call
// it directly when driving CallFunction by hand with a queue attached.
// Owner goroutine only.
func (e *Engine) Drain() {
	if e.cfg.Queue == nil {
		return
	}
	e.inflight.Wait()
	for _, st := range e.fns {
		if o := st.pending.Swap(nil); o != nil {
			e.applyOutcome(st, o)
		}
	}
}

// Package parser implements a recursive-descent parser for the nanojs
// language, producing the AST defined in internal/ast.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/lexer"
	"github.com/jitbull/jitbull/internal/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("parse %s: %s", e.Pos, e.Msg) }

// ErrTooManyErrors is returned when parsing aborts after accumulating too
// many syntax errors.
var ErrTooManyErrors = errors.New("too many syntax errors")

const maxErrors = 20

type parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// Parse parses a nanojs source string into a Program. On syntax errors it
// returns a joined error containing every diagnostic.
func Parse(src string) (*ast.Program, error) {
	lx := lexer.New(src)
	toks := lx.All()
	p := &parser{toks: toks}
	prog := p.parseProgram()
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, le)
	}
	if len(p.errs) > 0 {
		return nil, errors.Join(p.errs...)
	}
	return prog, nil
}

// MustParse parses src and panics on error. It is intended for tests and
// embedded benchmark corpora that are known to be valid.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("MustParse: %v", err))
	}
	return prog
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(format string, args ...any) {
	if len(p.errs) >= maxErrors {
		panic(ErrTooManyErrors)
	}
	p.errs = append(p.errs, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
}

// sync skips tokens until a likely statement boundary, for error recovery.
func (p *parser) sync() {
	for !p.at(token.EOF) {
		if p.accept(token.Semicolon) {
			return
		}
		switch p.cur().Kind {
		case token.RBrace, token.Function, token.Var, token.Let, token.Const,
			token.If, token.While, token.For, token.Return, token.Do:
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	defer func() {
		if r := recover(); r != nil {
			if !errors.Is(asErr(r), ErrTooManyErrors) {
				panic(r)
			}
		}
	}()
	for !p.at(token.EOF) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			prog.Stmts = append(prog.Stmts, s)
		}
		if p.pos == before {
			// No progress: skip the offending token to avoid looping.
			p.errorf("unexpected token %s", p.cur())
			p.next()
		}
	}
	return prog
}

func asErr(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("%v", r)
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.Function:
		return p.parseFuncDecl()
	case token.Var, token.Let, token.Const:
		d := p.parseVarDecl()
		p.expectSemi()
		return d
	case token.LBrace:
		return p.parseBlock()
	case token.If:
		return p.parseIf()
	case token.While:
		return p.parseWhile()
	case token.Do:
		return p.parseDoWhile()
	case token.For:
		return p.parseFor()
	case token.Break:
		t := p.next()
		p.expectSemi()
		return &ast.BreakStmt{BreakPos: t.Pos}
	case token.Continue:
		t := p.next()
		p.expectSemi()
		return &ast.ContinueStmt{ContinuePos: t.Pos}
	case token.Return:
		t := p.next()
		var val ast.Expr
		if !p.at(token.Semicolon) && !p.at(token.RBrace) && !p.at(token.EOF) {
			val = p.parseExpr()
		}
		p.expectSemi()
		return &ast.ReturnStmt{ReturnPos: t.Pos, Value: val}
	case token.Semicolon:
		// Empty statement: an empty block, so `for (...) ;` and `if (...) ;`
		// carry a non-nil body downstream.
		t := p.next()
		return &ast.BlockStmt{Lbrace: t.Pos}
	default:
		x := p.parseExpr()
		p.expectSemi()
		if x == nil {
			return nil
		}
		return &ast.ExprStmt{X: x}
	}
}

// expectSemi consumes a statement-terminating semicolon. nanojs does not
// implement automatic semicolon insertion except before '}' and EOF, which
// keeps real-world benchmark sources parseable while staying simple.
func (p *parser) expectSemi() {
	if p.accept(token.Semicolon) {
		return
	}
	if p.at(token.RBrace) || p.at(token.EOF) {
		return
	}
	p.errorf("expected ';', found %s", p.cur())
	p.sync()
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	fpos := p.expect(token.Function).Pos
	name := p.expect(token.Ident).Literal
	p.expect(token.LParen)
	var params []string
	seen := map[string]bool{}
	for !p.at(token.RParen) && !p.at(token.EOF) {
		id := p.expect(token.Ident)
		if seen[id.Literal] {
			p.errorf("duplicate parameter %q", id.Literal)
		}
		seen[id.Literal] = true
		params = append(params, id.Literal)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	body := p.parseBlock()
	return &ast.FuncDecl{FuncPos: fpos, Name: name, Params: params, Body: body}
}

func (p *parser) parseVarDecl() *ast.VarDecl {
	t := p.next() // var/let/const
	d := &ast.VarDecl{DeclPos: t.Pos, Kind: t.Kind}
	for {
		id := p.expect(token.Ident)
		d.Names = append(d.Names, id.Literal)
		var init ast.Expr
		if p.accept(token.Assign) {
			init = p.parseAssignExpr()
		} else if t.Kind == token.Const {
			p.errorf("const declaration of %q requires an initializer", id.Literal)
		}
		d.Inits = append(d.Inits, init)
		if !p.accept(token.Comma) {
			return d
		}
	}
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBrace).Pos
	blk := &ast.BlockStmt{Lbrace: lb}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
		if p.pos == before {
			p.errorf("unexpected token %s in block", p.cur())
			p.next()
		}
	}
	p.expect(token.RBrace)
	return blk
}

func (p *parser) parseIf() ast.Stmt {
	ipos := p.expect(token.If).Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.Else) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{IfPos: ipos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseWhile() ast.Stmt {
	wpos := p.expect(token.While).Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	body := p.parseStmt()
	return &ast.WhileStmt{WhilePos: wpos, Cond: cond, Body: body}
}

func (p *parser) parseDoWhile() ast.Stmt {
	dpos := p.expect(token.Do).Pos
	body := p.parseStmt()
	p.expect(token.While)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	p.expectSemi()
	return &ast.DoWhileStmt{DoPos: dpos, Body: body, Cond: cond}
}

func (p *parser) parseFor() ast.Stmt {
	fpos := p.expect(token.For).Pos
	p.expect(token.LParen)
	var init ast.Stmt
	switch p.cur().Kind {
	case token.Semicolon:
		p.next()
	case token.Var, token.Let, token.Const:
		init = p.parseVarDecl()
		p.expect(token.Semicolon)
	default:
		init = &ast.ExprStmt{X: p.parseExpr()}
		p.expect(token.Semicolon)
	}
	var cond ast.Expr
	if !p.at(token.Semicolon) {
		cond = p.parseExpr()
	}
	p.expect(token.Semicolon)
	var post ast.Expr
	if !p.at(token.RParen) {
		post = p.parseExpr()
	}
	p.expect(token.RParen)
	body := p.parseStmt()
	return &ast.ForStmt{ForPos: fpos, Init: init, Cond: cond, Post: post, Body: body}
}

// ---- Expressions ----

// parseExpr parses a comma-free expression (nanojs has no comma operator).
func (p *parser) parseExpr() ast.Expr { return p.parseAssignExpr() }

func (p *parser) parseAssignExpr() ast.Expr {
	lhs := p.parseConditional()
	if !p.cur().Kind.IsAssign() {
		return lhs
	}
	op := p.next().Kind
	if !isAssignTarget(lhs) {
		p.errorf("invalid assignment target")
	}
	rhs := p.parseAssignExpr()
	return &ast.AssignExpr{Target: lhs, Op: op, Value: rhs}
}

func isAssignTarget(x ast.Expr) bool {
	switch t := x.(type) {
	case *ast.Ident:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.MemberExpr:
		return t.Name == "length"
	default:
		return false
	}
}

func (p *parser) parseConditional() ast.Expr {
	cond := p.parseLogicalOr()
	if !p.accept(token.Question) {
		return cond
	}
	then := p.parseAssignExpr()
	p.expect(token.Colon)
	els := p.parseAssignExpr()
	return &ast.CondExpr{Cond: cond, Then: then, Else: els}
}

func (p *parser) parseLogicalOr() ast.Expr {
	x := p.parseLogicalAnd()
	for p.at(token.PipePipe) {
		p.next()
		y := p.parseLogicalAnd()
		x = &ast.LogicalExpr{X: x, Op: token.PipePipe, Y: y}
	}
	return x
}

func (p *parser) parseLogicalAnd() ast.Expr {
	x := p.parseBinary(0)
	for p.at(token.AmpAmp) {
		p.next()
		y := p.parseBinary(0)
		x = &ast.LogicalExpr{X: x, Op: token.AmpAmp, Y: y}
	}
	return x
}

// binaryPrec returns the precedence of binary operators handled by
// precedence climbing; higher binds tighter. Returns -1 for non-binary ops.
func binaryPrec(k token.Kind) int {
	switch k {
	case token.Pipe:
		return 1
	case token.Caret:
		return 2
	case token.Amp:
		return 3
	case token.Eq, token.NotEq, token.StrictEq, token.StrictNe:
		return 4
	case token.Lt, token.Gt, token.Le, token.Ge:
		return 5
	case token.Shl, token.Shr, token.Ushr:
		return 6
	case token.Plus, token.Minus:
		return 7
	case token.Star, token.Slash, token.Percent:
		return 8
	case token.StarStar:
		return 9
	default:
		return -1
	}
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := binaryPrec(p.cur().Kind)
		if prec < 0 || prec < minPrec {
			return x
		}
		op := p.next().Kind
		// ** is right-associative; everything else left-associative.
		nextMin := prec + 1
		if op == token.StarStar {
			nextMin = prec
		}
		y := p.parseBinary(nextMin)
		x = &ast.BinaryExpr{X: x, Op: op, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.Minus, token.Plus, token.Bang, token.Tilde, token.Typeof:
		t := p.next()
		x := p.parseUnary()
		if t.Kind == token.Plus {
			// Unary plus is ToNumber; in nanojs all numbers are already
			// numbers, so it is modeled as 0 + x at the AST level.
			return &ast.BinaryExpr{X: &ast.NumberLit{ValuePos: t.Pos, Value: 0, Raw: "0"}, Op: token.Plus, Y: x}
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}
	case token.PlusPlus, token.MinusMinus:
		t := p.next()
		x := p.parseUnary()
		if !isUpdateTarget(x) {
			p.errorf("invalid %s target", t.Kind)
		}
		return &ast.UpdateExpr{OpPos: t.Pos, Op: t.Kind, Prefix: true, Target: x}
	default:
		return p.parsePostfix()
	}
}

func isUpdateTarget(x ast.Expr) bool {
	switch x.(type) {
	case *ast.Ident, *ast.IndexExpr:
		return true
	default:
		return false
	}
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parseCallMember()
	for p.at(token.PlusPlus) || p.at(token.MinusMinus) {
		t := p.next()
		if !isUpdateTarget(x) {
			p.errorf("invalid %s target", t.Kind)
		}
		x = &ast.UpdateExpr{OpPos: t.Pos, Op: t.Kind, Prefix: false, Target: x}
	}
	return x
}

func (p *parser) parseCallMember() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.Dot:
			p.next()
			name := p.expect(token.Ident).Literal
			x = &ast.MemberExpr{X: x, Name: name}
		case token.LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.LParen:
			p.next()
			var args []ast.Expr
			for !p.at(token.RParen) && !p.at(token.EOF) {
				args = append(args, p.parseAssignExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.RParen)
			x = &ast.CallExpr{Callee: x, Args: args}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Number:
		p.next()
		v, err := parseNumber(t.Literal)
		if err != nil {
			p.errorf("bad number literal %q: %v", t.Literal, err)
		}
		return &ast.NumberLit{ValuePos: t.Pos, Value: v, Raw: t.Literal}
	case token.String:
		p.next()
		return &ast.StringLit{ValuePos: t.Pos, Value: t.Literal}
	case token.True:
		p.next()
		return &ast.BoolLit{ValuePos: t.Pos, Value: true}
	case token.False:
		p.next()
		return &ast.BoolLit{ValuePos: t.Pos, Value: false}
	case token.Null:
		p.next()
		return &ast.NullLit{ValuePos: t.Pos}
	case token.Undefined:
		p.next()
		return &ast.UndefinedLit{ValuePos: t.Pos}
	case token.Ident:
		p.next()
		return &ast.Ident{NamePos: t.Pos, Name: t.Literal}
	case token.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	case token.LBracket:
		p.next()
		arr := &ast.ArrayLit{Lbrack: t.Pos}
		for !p.at(token.RBracket) && !p.at(token.EOF) {
			arr.Elems = append(arr.Elems, p.parseAssignExpr())
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RBracket)
		return arr
	case token.New:
		p.next()
		id := p.expect(token.Ident)
		if id.Literal != "Array" {
			p.errorf("nanojs only supports `new Array(n)`, got `new %s`", id.Literal)
		}
		p.expect(token.LParen)
		var n ast.Expr
		if !p.at(token.RParen) {
			n = p.parseExpr()
		} else {
			n = &ast.NumberLit{ValuePos: id.Pos, Value: 0, Raw: "0"}
		}
		p.expect(token.RParen)
		return &ast.NewArray{NewPos: t.Pos, Len: n}
	default:
		p.errorf("unexpected token %s in expression", t)
		p.next()
		return &ast.UndefinedLit{ValuePos: t.Pos}
	}
}

func parseNumber(lit string) (float64, error) {
	if strings.HasPrefix(lit, "0x") || strings.HasPrefix(lit, "0X") {
		u, err := strconv.ParseUint(lit[2:], 16, 64)
		if err != nil {
			return 0, err
		}
		return float64(u), nil
	}
	return strconv.ParseFloat(lit, 64)
}

package parser

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/token"
)

func parseOne(t *testing.T, src string) ast.Stmt {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(prog.Stmts) != 1 {
		t.Fatalf("Parse(%q): want 1 stmt, got %d", src, len(prog.Stmts))
	}
	return prog.Stmts[0]
}

func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	s := parseOne(t, src+";")
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		t.Fatalf("Parse(%q): want ExprStmt, got %T", src, s)
	}
	return es.X
}

func TestFunctionDecl(t *testing.T) {
	s := parseOne(t, "function add(a, b) { return a + b; }")
	fd, ok := s.(*ast.FuncDecl)
	if !ok {
		t.Fatalf("want FuncDecl, got %T", s)
	}
	if fd.Name != "add" {
		t.Errorf("name = %q, want add", fd.Name)
	}
	if len(fd.Params) != 2 || fd.Params[0] != "a" || fd.Params[1] != "b" {
		t.Errorf("params = %v", fd.Params)
	}
	if len(fd.Body.Stmts) != 1 {
		t.Errorf("body stmts = %d, want 1", len(fd.Body.Stmts))
	}
}

func TestPrecedence(t *testing.T) {
	// a + b * c must parse as a + (b * c)
	x := parseExpr(t, "a + b * c")
	add, ok := x.(*ast.BinaryExpr)
	if !ok || add.Op != token.Plus {
		t.Fatalf("want +, got %T", x)
	}
	mul, ok := add.Y.(*ast.BinaryExpr)
	if !ok || mul.Op != token.Star {
		t.Fatalf("rhs: want *, got %T", add.Y)
	}
}

func TestPrecedenceBitwiseVsCompare(t *testing.T) {
	// a & b == c parses as a & (b == c) in JS.
	x := parseExpr(t, "a & b == c")
	and, ok := x.(*ast.BinaryExpr)
	if !ok || and.Op != token.Amp {
		t.Fatalf("want &, got %v", x)
	}
	if eq, ok := and.Y.(*ast.BinaryExpr); !ok || eq.Op != token.Eq {
		t.Fatalf("rhs: want ==, got %T", and.Y)
	}
}

func TestRightAssociativePow(t *testing.T) {
	x := parseExpr(t, "a ** b ** c")
	outer := x.(*ast.BinaryExpr)
	if _, ok := outer.Y.(*ast.BinaryExpr); !ok {
		t.Fatalf("** should be right-associative")
	}
}

func TestAssignChain(t *testing.T) {
	x := parseExpr(t, "a = b = 3")
	outer, ok := x.(*ast.AssignExpr)
	if !ok {
		t.Fatalf("want AssignExpr, got %T", x)
	}
	if _, ok := outer.Value.(*ast.AssignExpr); !ok {
		t.Fatalf("assignment should be right-associative")
	}
}

func TestCompoundAssign(t *testing.T) {
	x := parseExpr(t, "a[i] += 2")
	a, ok := x.(*ast.AssignExpr)
	if !ok || a.Op != token.PlusAssign {
		t.Fatalf("want +=, got %v", x)
	}
	if _, ok := a.Target.(*ast.IndexExpr); !ok {
		t.Fatalf("target: want IndexExpr, got %T", a.Target)
	}
}

func TestLengthAssignment(t *testing.T) {
	x := parseExpr(t, "arr.length = 4")
	a, ok := x.(*ast.AssignExpr)
	if !ok {
		t.Fatalf("want AssignExpr, got %T", x)
	}
	m, ok := a.Target.(*ast.MemberExpr)
	if !ok || m.Name != "length" {
		t.Fatalf("target: want .length member, got %#v", a.Target)
	}
}

func TestCallsAndMembers(t *testing.T) {
	x := parseExpr(t, "Math.sqrt(a[i] + 1)")
	call, ok := x.(*ast.CallExpr)
	if !ok {
		t.Fatalf("want CallExpr, got %T", x)
	}
	m, ok := call.Callee.(*ast.MemberExpr)
	if !ok || m.Name != "sqrt" {
		t.Fatalf("callee: want Math.sqrt member, got %#v", call.Callee)
	}
	if len(call.Args) != 1 {
		t.Fatalf("args = %d, want 1", len(call.Args))
	}
}

func TestNewArray(t *testing.T) {
	x := parseExpr(t, "new Array(16)")
	na, ok := x.(*ast.NewArray)
	if !ok {
		t.Fatalf("want NewArray, got %T", x)
	}
	n, ok := na.Len.(*ast.NumberLit)
	if !ok || n.Value != 16 {
		t.Fatalf("len: got %#v", na.Len)
	}
}

func TestArrayLiteral(t *testing.T) {
	x := parseExpr(t, "[1, 2, 3]")
	arr, ok := x.(*ast.ArrayLit)
	if !ok || len(arr.Elems) != 3 {
		t.Fatalf("want 3-element ArrayLit, got %#v", x)
	}
}

func TestUpdateExprs(t *testing.T) {
	pre := parseExpr(t, "++i")
	if u, ok := pre.(*ast.UpdateExpr); !ok || !u.Prefix || u.Op != token.PlusPlus {
		t.Fatalf("++i: got %#v", pre)
	}
	post := parseExpr(t, "i--")
	if u, ok := post.(*ast.UpdateExpr); !ok || u.Prefix || u.Op != token.MinusMinus {
		t.Fatalf("i--: got %#v", post)
	}
}

func TestConditionalExpr(t *testing.T) {
	x := parseExpr(t, "a < b ? a : b")
	if _, ok := x.(*ast.CondExpr); !ok {
		t.Fatalf("want CondExpr, got %T", x)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	x := parseExpr(t, "a && b || c")
	or, ok := x.(*ast.LogicalExpr)
	if !ok || or.Op != token.PipePipe {
		t.Fatalf("want || at top, got %#v", x)
	}
	if and, ok := or.X.(*ast.LogicalExpr); !ok || and.Op != token.AmpAmp {
		t.Fatalf("lhs: want &&, got %T", or.X)
	}
}

func TestForLoopForms(t *testing.T) {
	tests := []string{
		"for (var i = 0; i < 10; i++) { x = x + i; }",
		"for (i = 0; i < 10; i = i + 1) x = i;",
		"for (;;) { break; }",
		"for (; i < 3;) i++;",
	}
	for _, src := range tests {
		s := parseOne(t, src)
		if _, ok := s.(*ast.ForStmt); !ok {
			t.Errorf("%q: want ForStmt, got %T", src, s)
		}
	}
}

func TestWhileAndDoWhile(t *testing.T) {
	if _, ok := parseOne(t, "while (x) x--;").(*ast.WhileStmt); !ok {
		t.Errorf("while: wrong node type")
	}
	if _, ok := parseOne(t, "do { x--; } while (x);").(*ast.DoWhileStmt); !ok {
		t.Errorf("do-while: wrong node type")
	}
}

func TestIfElseChain(t *testing.T) {
	s := parseOne(t, "if (a) b = 1; else if (c) b = 2; else b = 3;")
	ifs, ok := s.(*ast.IfStmt)
	if !ok {
		t.Fatalf("want IfStmt, got %T", s)
	}
	if _, ok := ifs.Else.(*ast.IfStmt); !ok {
		t.Fatalf("else: want nested IfStmt, got %T", ifs.Else)
	}
}

func TestVarDeclMulti(t *testing.T) {
	s := parseOne(t, "var a = 1, b, c = 3;")
	d, ok := s.(*ast.VarDecl)
	if !ok {
		t.Fatalf("want VarDecl, got %T", s)
	}
	if len(d.Names) != 3 || d.Names[1] != "b" {
		t.Fatalf("names = %v", d.Names)
	}
	if d.Inits[1] != nil {
		t.Fatalf("b should have nil init")
	}
}

func TestSemicolonBeforeBraceOptional(t *testing.T) {
	src := "function f() { return 1 }"
	if _, err := Parse(src); err != nil {
		t.Fatalf("ASI before }: %v", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	tests := []string{
		"function () {}",
		"var = 3;",
		"a +",
		"if a { }",
		"3 = x;",
		"const c;",
		"x.length.length = 1;", // only .length of something is assignable... actually this is valid target by grammar; use a different case
	}
	// Last case is actually accepted by the grammar; replace with a genuine error.
	tests[len(tests)-1] = "for (var i = 0 i < 3; i++) {}"
	for _, src := range tests {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error, got none", src)
		}
	}
}

func TestDuplicateParam(t *testing.T) {
	_, err := Parse("function f(a, a) { return a; }")
	if err == nil || !strings.Contains(err.Error(), "duplicate parameter") {
		t.Fatalf("want duplicate parameter error, got %v", err)
	}
}

func TestErrorRecoveryReportsMultiple(t *testing.T) {
	_, err := Parse("var = 1;\nvar = 2;")
	if err == nil {
		t.Fatal("want errors")
	}
	if n := strings.Count(err.Error(), "parse"); n < 2 {
		t.Errorf("want at least 2 diagnostics, got %d in %q", n, err.Error())
	}
}

func TestWalkVisitsAllIdents(t *testing.T) {
	prog := MustParse("function f(a) { var b = a + g(a); return b; }")
	var idents []string
	ast.Walk(prog, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			idents = append(idents, id.Name)
		}
		return true
	})
	want := []string{"a", "g", "a", "b"}
	if len(idents) != len(want) {
		t.Fatalf("idents = %v, want %v", idents, want)
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on invalid source")
		}
	}()
	MustParse("var = ;")
}

func TestNumberLiteralForms(t *testing.T) {
	tests := map[string]float64{
		"0":     0,
		"42":    42,
		"3.5":   3.5,
		"1e3":   1000,
		"0x10":  16,
		"2.5e2": 250,
	}
	for src, want := range tests {
		x := parseExpr(t, src)
		n, ok := x.(*ast.NumberLit)
		if !ok || n.Value != want {
			t.Errorf("%q: got %#v, want %v", src, x, want)
		}
	}
}

func TestProgramFuncs(t *testing.T) {
	prog := MustParse("function a() {} var x = 1; function b() {}")
	fns := prog.Funcs()
	if len(fns) != 2 || fns[0].Name != "a" || fns[1].Name != "b" {
		t.Fatalf("Funcs() = %v", prog.FuncNames())
	}
}

package parser

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/progen"
)

// TestMalformedInputs is the never-panic table: every malformed input must
// come back as a clean positioned error from Parse, not a panic and not a
// silent success.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty-expr-stmt", "var x = ;"},
		{"missing-semi", "var x = 1 var y = 2"},
		{"unclosed-paren", "var x = (1 + 2;"},
		{"unclosed-brace", "function f() { return 1;"},
		{"unclosed-bracket", "var x = a[1;"},
		{"stray-rbrace", "} var x = 1;"},
		{"operator-noise", "var x = * 3;"},
		{"double-operator", "var x = 1 + + ;"},
		{"if-without-cond", "if () { }"},
		{"for-missing-semis", "for (var i = 0 i < 3 i++) { }"},
		{"while-no-paren", "while true { }"},
		{"func-missing-name", "function (x) { return x; }"},
		{"func-missing-body", "function f(x)"},
		{"duplicate-param", "function f(x, x) { return x; }"},
		{"const-no-init", "const c;"},
		{"break-with-arg", "while (1) { break 5; }"},
		{"unterminated-string", `var s = "abc;`},
		{"unterminated-comment", "var x = 1; /* tail"},
		{"lex-noise", "var @ = 5;"},
		{"assign-to-literal", "3 = x;"},
		{"keyword-as-name", "var for = 1;"},
		{"just-else", "else { }"},
		{"dot-nothing", "var x = a.;"},
		{"call-missing-rparen", "f(1, 2;"},
		{"garbage-bytes", "\x00\x01\x02\x03"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("malformed input parsed cleanly: %q -> %v", tc.src, prog)
			}
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatal("error has no message")
			}
		})
	}
}

// TestDeepNesting checks recursive-descent depth limits: deeply nested
// expressions and blocks must parse (or fail cleanly), never overflow.
func TestDeepNesting(t *testing.T) {
	const depth = 2000
	cases := map[string]string{
		"parens": "var x = " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + ";",
		"blocks": strings.Repeat("{", depth) + "var x = 1;" + strings.Repeat("}", depth),
		"ifs":    strings.Repeat("if (1) { ", depth) + "var x = 1;" + strings.Repeat(" }", depth),
		"unary":  "var x = " + strings.Repeat("-", depth) + "1;",
		"binary": "var x = 1" + strings.Repeat(" + 1", depth) + ";",
		// Unbalanced: must error, not recurse forever.
		"unclosed-parens": "var x = " + strings.Repeat("(", depth) + "1;",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			_, _ = Parse(src) // must terminate without panicking
		})
	}
}

// TestRoundTrip pins the printer against the parser: printing a parsed
// program and re-parsing must yield the identical printed form, over both
// hand-written sources and the generated corpus.
func TestRoundTrip(t *testing.T) {
	sources := []string{
		"var x = 1 + 2 * 3;",
		"function f(a, b) { if (a < b) { return a; } return b; }\nvar result = f(1, 2);",
		"for (var i = 0; i < 10 && i != 7; i++) { i = i; }",
		"do { var x = 1; } while (0);",
		"var s = \"quoted \\\"inner\\\" text\";",
		"while (0) ;",
		"for (0; 0; 0) ;",
	}
	for seed := int64(0); seed < 20; seed++ {
		sources = append(sources, progen.Generate(seed, progen.Options{}))
	}
	for i, src := range sources {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d does not parse: %v\n%s", i, err, src)
		}
		printed := ast.Print(prog, ast.PrintConfig{})
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form of source %d does not re-parse: %v\n%s", i, err, printed)
		}
		if again := ast.Print(prog2, ast.PrintConfig{}); again != printed {
			t.Fatalf("print is not a fixed point for source %d:\n--- first\n%s\n--- second\n%s", i, printed, again)
		}
	}
}

// Package token defines the lexical tokens of the nanojs language, the
// JavaScript subset executed by the jitbull runtime.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The zero value is Illegal so that an uninitialized token is
// never mistaken for a valid one.
const (
	Illegal Kind = iota
	EOF

	// Literals and identifiers.
	Ident  // foo
	Number // 123, 4.5, 0x1f, 1e9
	String // "abc", 'abc'

	// Operators.
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	StarStar // **

	Assign         // =
	PlusAssign     // +=
	MinusAssign    // -=
	StarAssign     // *=
	SlashAssign    // /=
	PercentAssign  // %=
	AmpAssign      // &=
	PipeAssign     // |=
	CaretAssign    // ^=
	ShlAssign      // <<=
	ShrAssign      // >>=
	UshrAssign     // >>>=
	StarStarAssign // **=

	PlusPlus   // ++
	MinusMinus // --

	Eq       // ==
	NotEq    // !=
	StrictEq // ===
	StrictNe // !==
	Lt       // <
	Gt       // >
	Le       // <=
	Ge       // >=

	AmpAmp   // &&
	PipePipe // ||
	Bang     // !

	Amp   // &
	Pipe  // |
	Caret // ^
	Tilde // ~
	Shl   // <<
	Shr   // >>
	Ushr  // >>>

	Question // ?
	Colon    // :

	// Delimiters.
	Comma     // ,
	Semicolon // ;
	Dot       // .
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]

	// Keywords.
	Function
	Var
	Let
	Const
	If
	Else
	While
	Do
	For
	Break
	Continue
	Return
	True
	False
	Null
	Undefined
	New
	Typeof
)

var kindNames = map[Kind]string{
	Illegal:        "ILLEGAL",
	EOF:            "EOF",
	Ident:          "IDENT",
	Number:         "NUMBER",
	String:         "STRING",
	Plus:           "+",
	Minus:          "-",
	Star:           "*",
	Slash:          "/",
	Percent:        "%",
	StarStar:       "**",
	Assign:         "=",
	PlusAssign:     "+=",
	MinusAssign:    "-=",
	StarAssign:     "*=",
	SlashAssign:    "/=",
	PercentAssign:  "%=",
	AmpAssign:      "&=",
	PipeAssign:     "|=",
	CaretAssign:    "^=",
	ShlAssign:      "<<=",
	ShrAssign:      ">>=",
	UshrAssign:     ">>>=",
	StarStarAssign: "**=",
	PlusPlus:       "++",
	MinusMinus:     "--",
	Eq:             "==",
	NotEq:          "!=",
	StrictEq:       "===",
	StrictNe:       "!==",
	Lt:             "<",
	Gt:             ">",
	Le:             "<=",
	Ge:             ">=",
	AmpAmp:         "&&",
	PipePipe:       "||",
	Bang:           "!",
	Amp:            "&",
	Pipe:           "|",
	Caret:          "^",
	Tilde:          "~",
	Shl:            "<<",
	Shr:            ">>",
	Ushr:           ">>>",
	Question:       "?",
	Colon:          ":",
	Comma:          ",",
	Semicolon:      ";",
	Dot:            ".",
	LParen:         "(",
	RParen:         ")",
	LBrace:         "{",
	RBrace:         "}",
	LBracket:       "[",
	RBracket:       "]",
	Function:       "function",
	Var:            "var",
	Let:            "let",
	Const:          "const",
	If:             "if",
	Else:           "else",
	While:          "while",
	Do:             "do",
	For:            "for",
	Break:          "break",
	Continue:       "continue",
	Return:         "return",
	True:           "true",
	False:          "false",
	Null:           "null",
	Undefined:      "undefined",
	New:            "new",
	Typeof:         "typeof",
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"function":  Function,
	"var":       Var,
	"let":       Let,
	"const":     Const,
	"if":        If,
	"else":      Else,
	"while":     While,
	"do":        Do,
	"for":       For,
	"break":     Break,
	"continue":  Continue,
	"return":    Return,
	"true":      True,
	"false":     False,
	"null":      Null,
	"undefined": Undefined,
	"new":       New,
	"typeof":    Typeof,
}

// LookupIdent maps an identifier spelling to its keyword kind, or Ident if it
// is not a reserved word.
func LookupIdent(s string) Kind {
	if k, ok := keywords[s]; ok {
		return k
	}
	return Ident
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position and literal text.
type Token struct {
	Kind    Kind
	Literal string
	Pos     Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Number, String:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Literal)
	default:
		return t.Kind.String()
	}
}

// IsAssign reports whether the kind is an assignment operator (including
// compound assignments).
func (k Kind) IsAssign() bool {
	return k >= Assign && k <= StarStarAssign
}

// CompoundOp returns the underlying binary operator of a compound assignment
// (e.g. PlusAssign → Plus). It returns Illegal for plain Assign and for
// non-assignment kinds.
func (k Kind) CompoundOp() Kind {
	switch k {
	case PlusAssign:
		return Plus
	case MinusAssign:
		return Minus
	case StarAssign:
		return Star
	case SlashAssign:
		return Slash
	case PercentAssign:
		return Percent
	case AmpAssign:
		return Amp
	case PipeAssign:
		return Pipe
	case CaretAssign:
		return Caret
	case ShlAssign:
		return Shl
	case ShrAssign:
		return Shr
	case UshrAssign:
		return Ushr
	case StarStarAssign:
		return StarStar
	default:
		return Illegal
	}
}

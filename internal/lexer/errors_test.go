package lexer

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/token"
)

// TestErrorPaths drives the lexer over malformed inputs: every case must
// reach EOF without panicking and report at least one positioned error.
func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"stray-at", "var x = 1; @"},
		{"stray-hash", "# comment in the wrong language"},
		{"stray-backtick", "`template`"},
		{"stray-dollar-alone", "\x01\x02"},
		{"unterminated-string", `var s = "no closing quote`},
		{"unterminated-string-newline", "var s = \"line\nbreak\";"},
		{"unterminated-single-quote", "var s = 'half"},
		{"unterminated-block-comment", "var x = 1; /* never closed"},
		{"bad-escape", `var s = "\q";`},
		{"lone-backslash", `var s = \;`},
		{"bad-hex-number", "var x = 0xZZ;"},
		{"truncated-hex", "var x = 0x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := New(tc.src)
			toks := l.All()
			if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
				t.Fatalf("token stream does not end in EOF: %v", toks)
			}
			errs := l.Errors()
			if len(errs) == 0 {
				t.Fatalf("malformed input lexed without errors: %q -> %v", tc.src, toks)
			}
			for _, e := range errs {
				if e.Pos.Line <= 0 || e.Msg == "" {
					t.Errorf("error lacks position or message: %+v", e)
				}
			}
		})
	}
}

// TestErrorRecovery checks the lexer keeps producing tokens after an error,
// so the parser can report more than the first problem.
func TestErrorRecovery(t *testing.T) {
	l := New("var x = 1; @ var y = 2;")
	toks := l.All()
	var idents []string
	for _, tok := range toks {
		if tok.Kind == token.Ident {
			idents = append(idents, tok.Literal)
		}
	}
	joined := strings.Join(idents, " ")
	if !strings.Contains(joined, "y") {
		t.Fatalf("lexing stopped at the bad token; idents = %q", joined)
	}
	if len(l.Errors()) == 0 {
		t.Fatal("stray @ produced no error")
	}
}

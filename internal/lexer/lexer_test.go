package lexer

import (
	"testing"

	"github.com/jitbull/jitbull/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	l := New(src)
	var ks []token.Kind
	for _, tok := range l.All() {
		ks = append(ks, tok.Kind)
	}
	if errs := l.Errors(); len(errs) > 0 {
		t.Fatalf("unexpected lex errors for %q: %v", src, errs)
	}
	return ks
}

func TestBasicTokens(t *testing.T) {
	tests := []struct {
		src  string
		want []token.Kind
	}{
		{"", []token.Kind{token.EOF}},
		{"x", []token.Kind{token.Ident, token.EOF}},
		{"42", []token.Kind{token.Number, token.EOF}},
		{"x + y", []token.Kind{token.Ident, token.Plus, token.Ident, token.EOF}},
		{"a[i] = 3;", []token.Kind{token.Ident, token.LBracket, token.Ident, token.RBracket, token.Assign, token.Number, token.Semicolon, token.EOF}},
		{"a.length", []token.Kind{token.Ident, token.Dot, token.Ident, token.EOF}},
		{"function f() {}", []token.Kind{token.Function, token.Ident, token.LParen, token.RParen, token.LBrace, token.RBrace, token.EOF}},
	}
	for _, tt := range tests {
		got := kinds(t, tt.src)
		if len(got) != len(tt.want) {
			t.Fatalf("%q: got %v, want %v", tt.src, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%q token %d: got %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestOperatorsMaximalMunch(t *testing.T) {
	tests := []struct {
		src  string
		want token.Kind
	}{
		{"==", token.Eq},
		{"===", token.StrictEq},
		{"!=", token.NotEq},
		{"!==", token.StrictNe},
		{"<<", token.Shl},
		{">>", token.Shr},
		{">>>", token.Ushr},
		{">>>=", token.UshrAssign},
		{">>=", token.ShrAssign},
		{"<<=", token.ShlAssign},
		{"<=", token.Le},
		{">=", token.Ge},
		{"&&", token.AmpAmp},
		{"||", token.PipePipe},
		{"++", token.PlusPlus},
		{"--", token.MinusMinus},
		{"+=", token.PlusAssign},
		{"-=", token.MinusAssign},
		{"*=", token.StarAssign},
		{"/=", token.SlashAssign},
		{"%=", token.PercentAssign},
		{"&=", token.AmpAssign},
		{"|=", token.PipeAssign},
		{"^=", token.CaretAssign},
		{"**", token.StarStar},
		{"~", token.Tilde},
		{"?", token.Question},
	}
	for _, tt := range tests {
		l := New(tt.src)
		got := l.Next()
		if got.Kind != tt.want {
			t.Errorf("%q: got %v, want %v", tt.src, got.Kind, tt.want)
		}
		if eof := l.Next(); eof.Kind != token.EOF {
			t.Errorf("%q: expected single token then EOF, got trailing %v", tt.src, eof)
		}
	}
}

func TestNumbers(t *testing.T) {
	tests := []struct {
		src string
		lit string
	}{
		{"0", "0"},
		{"123", "123"},
		{"3.25", "3.25"},
		{"0.5", "0.5"},
		{".5", ".5"},
		{"1e9", "1e9"},
		{"1.5e-3", "1.5e-3"},
		{"2E+4", "2E+4"},
		{"0x1f", "0x1f"},
		{"0xFF", "0xFF"},
	}
	for _, tt := range tests {
		l := New(tt.src)
		tok := l.Next()
		if tok.Kind != token.Number || tok.Literal != tt.lit {
			t.Errorf("%q: got %v %q, want Number %q", tt.src, tok.Kind, tok.Literal, tt.lit)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("%q: unexpected errors %v", tt.src, l.Errors())
		}
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`"hello"`, "hello"},
		{`'world'`, "world"},
		{`"a\nb"`, "a\nb"},
		{`"tab\there"`, "tab\there"},
		{`"q\"uote"`, `q"uote`},
		{`'\x41'`, "A"},
		{`"back\\slash"`, `back\slash`},
	}
	for _, tt := range tests {
		l := New(tt.src)
		tok := l.Next()
		if tok.Kind != token.String || tok.Literal != tt.want {
			t.Errorf("%s: got %v %q, want String %q", tt.src, tok.Kind, tok.Literal, tt.want)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("%s: unexpected errors %v", tt.src, l.Errors())
		}
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
x /* block
comment */ y
`
	got := kinds(t, src)
	want := []token.Kind{token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestKeywords(t *testing.T) {
	src := "function var let const if else while do for break continue return true false null undefined new typeof"
	want := []token.Kind{
		token.Function, token.Var, token.Let, token.Const, token.If, token.Else,
		token.While, token.Do, token.For, token.Break, token.Continue,
		token.Return, token.True, token.False, token.Null, token.Undefined,
		token.New, token.Typeof, token.EOF,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	l := New("a\n  b")
	a := l.Next()
	b := l.Next()
	if a.Pos.Line != 1 || a.Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", a.Pos)
	}
	if b.Pos.Line != 2 || b.Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", b.Pos)
	}
}

func TestErrors(t *testing.T) {
	tests := []string{
		`"unterminated`,
		"@",
		"/* unterminated",
		`"bad \q escape"`,
	}
	for _, src := range tests {
		l := New(src)
		l.All()
		if len(l.Errors()) == 0 {
			t.Errorf("%q: expected lex error, got none", src)
		}
	}
}

func TestErrorStringsMentionPosition(t *testing.T) {
	l := New("\n  @")
	l.All()
	errs := l.Errors()
	if len(errs) != 1 {
		t.Fatalf("want 1 error, got %v", errs)
	}
	if got := errs[0].Error(); got == "" || errs[0].Pos.Line != 2 {
		t.Errorf("error %q should carry line 2, got pos %v", got, errs[0].Pos)
	}
}

// Package lexer implements the scanner for the nanojs language.
package lexer

import (
	"fmt"
	"strings"

	"github.com/jitbull/jitbull/internal/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("lex %s: %s", e.Pos, e.Msg) }

// Lexer scans a nanojs source string into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of the next unread byte
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors accumulated so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() {
	for {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns an EOF token
// forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	c := l.peek()
	switch {
	case c == 0:
		// peek's 0 sentinel means end of input — unless a literal NUL byte
		// is embedded in the source, which must be an error, not a silent
		// truncation of everything after it.
		if l.off < len(l.src) {
			l.errorf(pos, "illegal NUL byte")
			l.advance()
			return l.Next()
		}
		return token.Token{Kind: token.EOF, Pos: pos}
	case isIdentStart(c):
		return l.scanIdent(pos)
	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		return l.scanNumber(pos)
	case c == '"' || c == '\'':
		return l.scanString(pos)
	default:
		return l.scanOperator(pos)
	}
}

// All scans the entire input and returns every token including the final EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for isIdentPart(l.peek()) {
		l.advance()
	}
	lit := l.src[start:l.off]
	return token.Token{Kind: token.LookupIdent(lit), Literal: lit, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			l.errorf(pos, "malformed hex literal")
		}
		for isHexDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.Number, Literal: l.src[start:l.off], Pos: pos}
	}
	for isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			// Not an exponent after all (e.g. "1e" followed by ident); this
			// is an error in nanojs rather than a property access.
			l.errorf(pos, "malformed exponent in number literal")
			l.off = save
		} else {
			for isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	lit := l.src[start:l.off]
	if isIdentStart(l.peek()) {
		l.errorf(pos, "identifier starts immediately after numeric literal")
	}
	return token.Token{Kind: token.Number, Literal: lit, Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	quote := l.advance()
	var sb strings.Builder
	for {
		c := l.peek()
		if c == 0 || c == '\n' {
			l.errorf(pos, "unterminated string literal")
			break
		}
		l.advance()
		if c == quote {
			break
		}
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		esc := l.advance()
		switch esc {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case '\\':
			sb.WriteByte('\\')
		case '\'':
			sb.WriteByte('\'')
		case '"':
			sb.WriteByte('"')
		case '0':
			sb.WriteByte(0)
		case 'x':
			hi, lo := l.advance(), l.advance()
			if !isHexDigit(hi) || !isHexDigit(lo) {
				l.errorf(pos, "malformed \\x escape")
				continue
			}
			sb.WriteByte(hexVal(hi)<<4 | hexVal(lo))
		default:
			l.errorf(pos, "unknown escape \\%c", esc)
		}
	}
	return token.Token{Kind: token.String, Literal: sb.String(), Pos: pos}
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}

// scanOperator scans punctuation and operator tokens using maximal munch.
func (l *Lexer) scanOperator(pos token.Pos) token.Token {
	mk := func(k token.Kind, n int) token.Token {
		lit := l.src[l.off : l.off+n]
		for i := 0; i < n; i++ {
			l.advance()
		}
		return token.Token{Kind: k, Literal: lit, Pos: pos}
	}
	c, c1, c2, c3 := l.peek(), l.peekAt(1), l.peekAt(2), l.peekAt(3)
	switch c {
	case '+':
		switch c1 {
		case '+':
			return mk(token.PlusPlus, 2)
		case '=':
			return mk(token.PlusAssign, 2)
		}
		return mk(token.Plus, 1)
	case '-':
		switch c1 {
		case '-':
			return mk(token.MinusMinus, 2)
		case '=':
			return mk(token.MinusAssign, 2)
		}
		return mk(token.Minus, 1)
	case '*':
		if c1 == '*' && c2 == '=' {
			return mk(token.StarStarAssign, 3)
		}
		if c1 == '*' {
			return mk(token.StarStar, 2)
		}
		if c1 == '=' {
			return mk(token.StarAssign, 2)
		}
		return mk(token.Star, 1)
	case '/':
		if c1 == '=' {
			return mk(token.SlashAssign, 2)
		}
		return mk(token.Slash, 1)
	case '%':
		if c1 == '=' {
			return mk(token.PercentAssign, 2)
		}
		return mk(token.Percent, 1)
	case '=':
		if c1 == '=' && c2 == '=' {
			return mk(token.StrictEq, 3)
		}
		if c1 == '=' {
			return mk(token.Eq, 2)
		}
		return mk(token.Assign, 1)
	case '!':
		if c1 == '=' && c2 == '=' {
			return mk(token.StrictNe, 3)
		}
		if c1 == '=' {
			return mk(token.NotEq, 2)
		}
		return mk(token.Bang, 1)
	case '<':
		if c1 == '<' && c2 == '=' {
			return mk(token.ShlAssign, 3)
		}
		if c1 == '<' {
			return mk(token.Shl, 2)
		}
		if c1 == '=' {
			return mk(token.Le, 2)
		}
		return mk(token.Lt, 1)
	case '>':
		if c1 == '>' && c2 == '>' && c3 == '=' {
			return mk(token.UshrAssign, 4)
		}
		if c1 == '>' && c2 == '>' {
			return mk(token.Ushr, 3)
		}
		if c1 == '>' && c2 == '=' {
			return mk(token.ShrAssign, 3)
		}
		if c1 == '>' {
			return mk(token.Shr, 2)
		}
		if c1 == '=' {
			return mk(token.Ge, 2)
		}
		return mk(token.Gt, 1)
	case '&':
		if c1 == '&' {
			return mk(token.AmpAmp, 2)
		}
		if c1 == '=' {
			return mk(token.AmpAssign, 2)
		}
		return mk(token.Amp, 1)
	case '|':
		if c1 == '|' {
			return mk(token.PipePipe, 2)
		}
		if c1 == '=' {
			return mk(token.PipeAssign, 2)
		}
		return mk(token.Pipe, 1)
	case '^':
		if c1 == '=' {
			return mk(token.CaretAssign, 2)
		}
		return mk(token.Caret, 1)
	case '~':
		return mk(token.Tilde, 1)
	case '?':
		return mk(token.Question, 1)
	case ':':
		return mk(token.Colon, 1)
	case ',':
		return mk(token.Comma, 1)
	case ';':
		return mk(token.Semicolon, 1)
	case '.':
		return mk(token.Dot, 1)
	case '(':
		return mk(token.LParen, 1)
	case ')':
		return mk(token.RParen, 1)
	case '{':
		return mk(token.LBrace, 1)
	case '}':
		return mk(token.RBrace, 1)
	case '[':
		return mk(token.LBracket, 1)
	case ']':
		return mk(token.RBracket, 1)
	default:
		l.errorf(pos, "unexpected character %q", c)
		l.advance()
		return token.Token{Kind: token.Illegal, Literal: string(c), Pos: pos}
	}
}

package experiments

// Off-thread compilation & shared-cache benchmark: the three acceptance
// measurements of the jitqueue work, recorded by cmd/jitbull-bench
// -jitqueue into BENCH_jitqueue.json.
//
//  (a) wall-clock of a warmup-heavy octane run, sync vs async tier-up —
//      async keeps executing in the baseline tier while Ion runs on a
//      worker, so the compile stalls leave the run's critical path. The
//      wall-clock reduction needs >= 2 CPUs to materialize (a single-CPU
//      host timeslices the worker against the owner, so async targets
//      parity there); the stall measurement — owner-thread time inside
//      the pipeline, read from the compile spans — shows the stalls
//      moving off-thread deterministically on any host;
//  (b) a RunParallel fleet re-run against a warm shared cache must
//      eliminate >= 90% of Ion pipeline executions (counted, not timed);
//  (c) policy verdicts (NrJIT/NrDisJIT/NrNoJIT) must be identical across
//      sync, async and cached modes — tier-up timing may move, decisions
//      may not. The difftest matrix covers the full-semantics half of
//      this; here the verdict counters are compared per benchmark.
//
// A fourth, gated, measurement isolates the cached-hit fast path: a
// compile-dominated program (big function bodies, minimal execution) run
// cold vs warm, where the warm run replaces every pipeline execution
// with a canonical-hash lookup.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/octane"
)

// JitQueueMode aggregates one compilation mode's corpus run. Wall time is
// split into a compile-time and a run-time column: the octane corpus is
// execution-dominated, so a whole-wall speedup under-reads what moving
// compilation off-thread or behind the cache actually buys — the compile
// column is where those modes differ, the exec column is where they must
// agree.
type JitQueueMode struct {
	Mode    string `json:"mode"`
	TotalNs int64  `json:"total_ns"` // sum of best-of-Repeats wall times
	// CompileNs is the time spent inside Ion pipeline spans on any thread;
	// OwnerCompileNs is the inline subset — pipeline time on the execution
	// thread itself, the part that stalls the run. ExecNs = TotalNs -
	// OwnerCompileNs is the run-time column.
	CompileNs      int64   `json:"compile_ns"`
	OwnerCompileNs int64   `json:"owner_compile_ns"`
	ExecNs         int64   `json:"exec_ns"`
	Compiles       int     `json:"compiles"` // Ion pipeline executions
	AsyncCompiles  int     `json:"async_compiles"`
	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	NrJIT          int     `json:"nr_jit"`
	NrDisJIT       int     `json:"nr_disjit"`
	NrNoJIT        int     `json:"nr_nojit"`
	Speedup        float64 `json:"speedup_vs_sync"`
	// CompileSpeedup and ExecSpeedup compare the two columns separately
	// against sync: compile-side wins (async/cached) no longer drown in
	// the execution-dominated wall clock.
	CompileSpeedup float64 `json:"compile_speedup_vs_sync"`
	ExecSpeedup    float64 `json:"exec_speedup_vs_sync"`

	verdicts map[string][3]int // per-benchmark (NrJIT, NrDisJIT, NrNoJIT)
}

// JitQueueReport is the BENCH_jitqueue.json payload.
type JitQueueReport struct {
	// NumCPU qualifies the wall-clock comparison: off-thread compilation
	// can only overlap work with >= 2 CPUs; on a single-CPU host the
	// async modes target parity and the stall measurement below carries
	// the claim.
	NumCPU int            `json:"num_cpu"`
	Modes  []JitQueueMode `json:"modes"`

	// Owner-thread compile stalls on the warmup-heavy TypeScript run:
	// wall time the execution thread itself spent inside the Ion pipeline
	// (compile spans with source=inline). Async moves these onto queue
	// workers, so the async figure stays 0 unless the queue saturates.
	StallSyncNs        int64   `json:"stall_sync_ns"`
	StallAsyncNs       int64   `json:"stall_async_ns"`
	StallEliminatedPct float64 `json:"stall_eliminated_pct"`

	// Fleet re-run (measurement b).
	FleetColdCompiles     int     `json:"fleet_cold_compiles"`
	FleetWarmCompiles     int     `json:"fleet_warm_compiles"`
	FleetWarmCacheHits    int     `json:"fleet_warm_cache_hits"`
	PipelineEliminatedPct float64 `json:"pipeline_eliminated_pct"`

	// Cached-hit fast path (gate: >= 5x).
	ColdCompileNs int64   `json:"cold_compile_ns"`
	WarmHitNs     int64   `json:"warm_hit_ns"`
	CachedSpeedup float64 `json:"cached_speedup"`

	// Verdict identity across modes (measurement c).
	VerdictsIdentical bool   `json:"verdicts_identical"`
	VerdictMismatch   string `json:"verdict_mismatch,omitempty"`
}

// runMode runs the whole octane corpus serially under one engine
// configuration (best-of-Repeats per benchmark) with a fresh 4-VDC
// detector per run, and aggregates the stats of the final repeat.
func runMode(name string, benches []octane.Benchmark, mk func() engine.Config,
	db *core.Database, cfg Config) (JitQueueMode, error) {
	m := JitQueueMode{Mode: name, verdicts: map[string][3]int{}}
	for _, b := range benches {
		src := b.Source(cfg.Scale)
		var best time.Duration
		var bestCompile, bestOwner int64
		var last engine.Stats
		for r := 0; r < cfg.Repeats; r++ {
			ring := obs.NewRing(1 << 16)
			ecfg := mk()
			ecfg.Tracer = obs.NewTracer(ring)
			e, err := engine.New(src, ecfg)
			if err != nil {
				return m, fmt.Errorf("%s/%s: %w", name, b.Name, err)
			}
			e.SetPolicy(core.NewDetector(db))
			start := time.Now()
			if _, err := e.Run(); err != nil {
				return m, fmt.Errorf("%s/%s: %w", name, b.Name, err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
				bestCompile, bestOwner = compileSpanTime(ring.Events())
			}
			last = e.Stats()
		}
		m.TotalNs += best.Nanoseconds()
		m.CompileNs += bestCompile
		m.OwnerCompileNs += bestOwner
		m.Compiles += last.Compiles
		m.AsyncCompiles += last.AsyncCompiles
		m.CacheHits += last.CacheHits
		m.CacheMisses += last.CacheMisses
		m.NrJIT += last.NrJIT
		m.NrDisJIT += last.NrDisJIT
		m.NrNoJIT += last.NrNoJIT
		m.verdicts[b.Name] = [3]int{last.NrJIT, last.NrDisJIT, last.NrNoJIT}
	}
	m.ExecNs = m.TotalNs - m.OwnerCompileNs
	return m, nil
}

// compileSpanTime sums the Ion pipeline spans of one traced run: total
// across all threads, and the inline (execution-thread, source=inline)
// subset that stalls the run.
func compileSpanTime(events []obs.Event) (total, owner int64) {
	for _, ev := range events {
		if ev.Cat != obs.CatCompile || ev.Name != "compile" {
			continue
		}
		total += ev.Dur
		for _, a := range ev.Args[:ev.NArgs] {
			if a.Key == "source" && a.IsStr && a.Str == "inline" {
				owner += ev.Dur
			}
		}
	}
	return total, owner
}

// JitQueueBench produces the full report. Timing modes run serially
// (Workers only fans out the fleet measurement), matching the discipline
// of the Figure 5 harness.
func JitQueueBench(cfg Config) (*JitQueueReport, error) {
	cfg = cfg.withDefaults()
	db, bugs, err := BuildDB(4, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	benches := octane.All()
	base := engine.Config{IonThreshold: cfg.IonThreshold, Bugs: bugs}

	// (a) + (c): the four modes. The queue lives for the whole comparison;
	// the shared cache is prewarmed once so the cached modes measure warm
	// hits, then reused by async+cached (same keys: same DB pointer).
	queue := jitqueue.New(0, jitqueue.DefaultCapacity, nil)
	defer queue.Close()
	cache := jitqueue.NewCache(nil)
	prewarmCfg := base
	prewarmCfg.Cache = cache
	for _, b := range benches {
		e, err := engine.New(b.Source(cfg.Scale), prewarmCfg)
		if err != nil {
			return nil, err
		}
		e.SetPolicy(core.NewDetector(db))
		if _, err := e.Run(); err != nil {
			return nil, fmt.Errorf("prewarm %s: %w", b.Name, err)
		}
	}
	modes := []struct {
		name string
		mk   func() engine.Config
	}{
		{"sync", func() engine.Config { return base }},
		{"async", func() engine.Config { c := base; c.Queue = queue; return c }},
		{"cached", func() engine.Config { c := base; c.Cache = cache; return c }},
		{"async+cached", func() engine.Config { c := base; c.Queue = queue; c.Cache = cache; return c }},
	}
	rep := &JitQueueReport{}
	for _, md := range modes {
		m, err := runMode(md.name, benches, md.mk, db, cfg)
		if err != nil {
			return nil, err
		}
		rep.Modes = append(rep.Modes, m)
	}
	syncNs := rep.Modes[0].TotalNs
	syncCompileNs := rep.Modes[0].OwnerCompileNs
	syncExecNs := rep.Modes[0].ExecNs
	for i := range rep.Modes {
		m := &rep.Modes[i]
		if m.TotalNs > 0 {
			m.Speedup = float64(syncNs) / float64(m.TotalNs)
		}
		// The compile column compares owner-thread stalls: what the mode
		// removed from the critical path (async keeps compiling, on a
		// worker; cached stops compiling at all).
		if m.OwnerCompileNs > 0 {
			m.CompileSpeedup = float64(syncCompileNs) / float64(m.OwnerCompileNs)
		}
		if m.ExecNs > 0 {
			m.ExecSpeedup = float64(syncExecNs) / float64(m.ExecNs)
		}
	}

	// (c) verdict identity per benchmark across all modes.
	rep.VerdictsIdentical = true
	ref := rep.Modes[0]
	for _, m := range rep.Modes[1:] {
		for _, b := range benches {
			if m.verdicts[b.Name] != ref.verdicts[b.Name] {
				rep.VerdictsIdentical = false
				rep.VerdictMismatch = fmt.Sprintf("%s/%s: %v, sync saw %v",
					m.Mode, b.Name, m.verdicts[b.Name], ref.verdicts[b.Name])
			}
		}
	}

	// (b) fleet re-run: two engines per benchmark sharing one cold cache,
	// fanned out across Workers; then the same fleet again, warm.
	fleetCache := jitqueue.NewCache(nil)
	fleet := func() []RunSpec {
		var specs []RunSpec
		for _, b := range benches {
			c := base
			c.Cache = fleetCache
			for copyN := 0; copyN < 2; copyN++ {
				specs = append(specs, RunSpec{
					Name:   fmt.Sprintf("%s#%d", b.Name, copyN),
					Source: b.Source(cfg.Scale),
					Engine: c,
					DB:     db,
				})
			}
		}
		return specs
	}
	for pass, dst := range []*int{&rep.FleetColdCompiles, &rep.FleetWarmCompiles} {
		for _, oc := range RunParallel(fleet(), cfg.Workers) {
			if oc.Err != nil {
				return nil, fmt.Errorf("fleet pass %d: %s: %w", pass, oc.Name, oc.Err)
			}
			*dst += oc.Stats.Compiles
			if pass == 1 {
				rep.FleetWarmCacheHits += oc.Stats.CacheHits
			}
		}
	}
	if rep.FleetColdCompiles > 0 {
		rep.PipelineEliminatedPct = 100 * (1 - float64(rep.FleetWarmCompiles)/float64(rep.FleetColdCompiles))
	}

	// Cached-hit fast path: compile-dominated program, cold vs warm.
	rep.ColdCompileNs, rep.WarmHitNs, err = measureColdVsWarm(db, cfg)
	if err != nil {
		return nil, err
	}
	if rep.WarmHitNs > 0 {
		rep.CachedSpeedup = float64(rep.ColdCompileNs) / float64(rep.WarmHitNs)
	}

	// Owner-thread compile stalls, sync vs async.
	rep.NumCPU = runtime.NumCPU()
	rep.StallSyncNs, err = measureOwnerStall(base, db, cfg, nil)
	if err != nil {
		return nil, err
	}
	rep.StallAsyncNs, err = measureOwnerStall(base, db, cfg, queue)
	if err != nil {
		return nil, err
	}
	if rep.StallSyncNs > 0 {
		rep.StallEliminatedPct = 100 * (1 - float64(rep.StallAsyncNs)/float64(rep.StallSyncNs))
	}
	return rep, nil
}

// measureOwnerStall runs the warmup-heavy TypeScript benchmark traced and
// sums the compile spans that ran inline on the execution thread.
func measureOwnerStall(base engine.Config, db *core.Database, cfg Config, q *jitqueue.Queue) (int64, error) {
	b, err := octane.ByName("TypeScript")
	if err != nil {
		return 0, err
	}
	ring := obs.NewRing(1 << 16)
	ecfg := base
	ecfg.Queue = q
	ecfg.Tracer = obs.NewTracer(ring)
	e, err := engine.New(b.Source(cfg.Scale), ecfg)
	if err != nil {
		return 0, err
	}
	e.SetPolicy(core.NewDetector(db))
	if _, err := e.Run(); err != nil {
		return 0, err
	}
	var stall int64
	for _, ev := range ring.Events() {
		if ev.Cat != obs.CatCompile || ev.Name != "compile" {
			continue
		}
		for _, a := range ev.Args[:ev.NArgs] {
			if a.Key == "source" && a.IsStr && a.Str == "inline" {
				stall += ev.Dur
			}
		}
	}
	return stall, nil
}

// compileHeavySource builds a program whose run time is dominated by Ion
// compilation: nFuncs functions with big straight-line bodies over an
// array (bounds checks, CSE and licm fodder), each called just past the
// Ion threshold, computing a checksum into `result`.
func compileHeavySource(nFuncs, bodyLines, calls int) string {
	var sb strings.Builder
	sb.WriteString("var arr = new Array(64);\n")
	sb.WriteString("for (var i = 0; i < 64; i++) { arr[i] = i * 3 + 1; }\n")
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&sb, "function f%d(i) {\n  var x = i + %d;\n  var y = 0;\n", f, f)
		for l := 0; l < bodyLines; l++ {
			fmt.Fprintf(&sb, "  y = y + arr[(x + %d) %% 64] * %d - x;\n", l, l%7+1)
			fmt.Fprintf(&sb, "  x = (x * 3 + %d) %% 1024;\n", l%11+1)
		}
		sb.WriteString("  return x + y;\n}\n")
	}
	sb.WriteString("var result = 0;\n")
	fmt.Fprintf(&sb, "for (var c = 0; c < %d; c++) {\n", calls)
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&sb, "  result = result + f%d(c);\n", f)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// measureColdVsWarm times e.Run() (parse excluded) of the compile-heavy
// program with an empty cache per run (cold, full pipeline + DNA
// extraction every time) versus a shared prewarmed cache (warm, every
// trigger is a canonical-hash lookup + install). Best of 5.
func measureColdVsWarm(db *core.Database, cfg Config) (coldNs, warmNs int64, err error) {
	const reps = 5
	src := compileHeavySource(6, 120, 25)
	mkCfg := func(cache *jitqueue.Cache) engine.Config {
		return engine.Config{BaselineThreshold: 5, IonThreshold: 20, Cache: cache}
	}
	run := func(cache *jitqueue.Cache, wantCompiles bool) (int64, error) {
		e, err := engine.New(src, mkCfg(cache))
		if err != nil {
			return 0, err
		}
		e.SetPolicy(core.NewDetector(db))
		start := time.Now()
		if _, err := e.Run(); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		st := e.Stats()
		if wantCompiles && st.Compiles == 0 {
			return 0, fmt.Errorf("cold run executed no pipelines")
		}
		if !wantCompiles && st.Compiles != 0 {
			return 0, fmt.Errorf("warm run executed %d pipelines, want 0", st.Compiles)
		}
		return ns, nil
	}
	for i := 0; i < reps; i++ {
		ns, err := run(jitqueue.NewCache(nil), true)
		if err != nil {
			return 0, 0, err
		}
		if coldNs == 0 || ns < coldNs {
			coldNs = ns
		}
	}
	warm := jitqueue.NewCache(nil)
	if _, err := run(warm, true); err != nil { // prewarm
		return 0, 0, err
	}
	for i := 0; i < reps; i++ {
		ns, err := run(warm, false)
		if err != nil {
			return 0, 0, err
		}
		if warmNs == 0 || ns < warmNs {
			warmNs = ns
		}
	}
	return coldNs, warmNs, nil
}

// RenderJitQueue renders the report for the terminal.
func RenderJitQueue(r *JitQueueReport) string {
	var sb strings.Builder
	sb.WriteString("Off-thread compilation & shared cache (octane corpus, 4 VDCs)\n")
	sb.WriteString("  compile = owner-thread pipeline stalls; exec = total - compile.\n")
	sb.WriteString("  The corpus is execution-dominated: compile is the column async and\n")
	sb.WriteString("  cached modes improve, exec must hold steady.\n")
	sb.WriteString(fmt.Sprintf("  %-14s %12s %11s %12s %9s %9s %7s %7s %7s\n",
		"mode", "total", "compile", "exec", "speedup", "compiles", "async", "hits", "NrJIT"))
	for _, m := range r.Modes {
		sb.WriteString(fmt.Sprintf("  %-14s %12s %11s %12s %8.2fx %9d %7d %7d %7d\n",
			m.Mode, time.Duration(m.TotalNs).Round(time.Millisecond),
			time.Duration(m.OwnerCompileNs).Round(time.Microsecond),
			time.Duration(m.ExecNs).Round(time.Millisecond), m.Speedup,
			m.Compiles, m.AsyncCompiles, m.CacheHits, m.NrJIT))
	}
	sb.WriteString(fmt.Sprintf("  fleet re-run: %d -> %d pipeline executions (%.1f%% eliminated, %d warm hits)\n",
		r.FleetColdCompiles, r.FleetWarmCompiles, r.PipelineEliminatedPct, r.FleetWarmCacheHits))
	sb.WriteString(fmt.Sprintf("  cached hit path: cold %s vs warm %s (%.1fx)\n",
		time.Duration(r.ColdCompileNs).Round(time.Microsecond),
		time.Duration(r.WarmHitNs).Round(time.Microsecond), r.CachedSpeedup))
	sb.WriteString(fmt.Sprintf("  owner-thread compile stalls (TypeScript): sync %s vs async %s (%.1f%% off-thread, %d CPU(s))\n",
		time.Duration(r.StallSyncNs).Round(time.Microsecond),
		time.Duration(r.StallAsyncNs).Round(time.Microsecond), r.StallEliminatedPct, r.NumCPU))
	if r.VerdictsIdentical {
		sb.WriteString("  policy verdicts: identical across all modes\n")
	} else {
		sb.WriteString(fmt.Sprintf("  policy verdicts: MISMATCH (%s)\n", r.VerdictMismatch))
	}
	return sb.String()
}

package experiments

// OSR tier-up benchmark: the acceptance measurement of loop-header
// on-stack replacement, recorded by cmd/jitbull-bench -osr into
// BENCH_osr.json.
//
// The corpus is single long-running calls: each program calls its hot
// function exactly once, so call-boundary hotness counting never reaches
// the compile threshold for it. Two cells run every program:
//
//	boundary — OSR off. Artifacts install only at call boundaries, which
//	           the single call never returns to; helpers invoked inside
//	           the loop still tier up normally. This is the engine before
//	           this change.
//	osr      — OSR on (same thresholds). Back edges trigger the compile
//	           and execution transfers into Ion code at the loop header,
//	           mid-activation.
//
// The gate: the osr cell must beat the boundary cell (geomean wall-clock
// speedup over the corpus) AND every osr cell must record at least one
// mid-loop entry — a "win" that never actually transferred would be
// measuring something else. Semantics are held identical across the
// cells (run value, result global, output, errors); policy verdicts and
// step counts are exempt because the osr cell compiles and natively runs
// the hot function the boundary cell, by construction, never can.

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/jitbull/jitbull/internal/engine"
)

// OSRBenchEntry is one program's boundary-vs-osr measurement.
type OSRBenchEntry struct {
	Name       string  `json:"name"`
	BoundaryNs int64   `json:"boundary_ns"` // OSR off: call-boundary installs only
	OSRNs      int64   `json:"osr_ns"`      // OSR on: mid-loop tier-up
	Speedup    float64 `json:"speedup"`
	Steps      int64   `json:"steps"` // VM steps of the osr cell (tiers charge per-op, so cells differ)

	// Transition counters of the osr cell (the boundary cell's are zero
	// by construction and asserted so).
	OSREntries int `json:"osr_entries"`
	DeoptExits int `json:"deopt_exits"`
}

// OSRBenchReport is the BENCH_osr.json payload.
type OSRBenchReport struct {
	// Gate states the acceptance criterion the driver enforces, so the
	// recorded file carries its own pass condition.
	Gate string `json:"gate"`

	Benches        []OSRBenchEntry `json:"benches"`
	GeomeanSpeedup float64         `json:"geomean_speedup"`

	// Identity across the boundary/osr cells (verdicts and steps exempt,
	// see above).
	Identical bool   `json:"identical"`
	Mismatch  string `json:"mismatch,omitempty"`

	// NeverEntered lists benches whose osr cell recorded no mid-loop
	// entry; any entry here fails the gate.
	NeverEntered []string `json:"never_entered,omitempty"`
}

// OSRGate is the stated acceptance criterion, recorded into the report.
const OSRGate = "mid-loop tier-up (osr cell) must beat call-boundary-only install (boundary cell): geomean speedup >= 1.2x over the single-long-call corpus, with >= 1 OSR entry per bench and bit-identical semantics across cells"

// osrBenchProg is one single-long-call corpus program.
type osrBenchProg struct {
	name      string
	src       string // %d verbs take the scaled iteration count
	iters     int    // per unit of Config.Scale
	speculate bool
}

// osrBenches is the single-long-call corpus. Iteration counts are scaled
// by Config.Scale via the %d verb; each program binds `result` and prints
// it so both observation channels are exercised.
var osrBenches = []osrBenchProg{
	{"spin-sum", // pure loop, no calls: the whole win is the loop body
		`function hot(n) {
			var a = 0;
			var b = 1;
			var i = 0;
			while (i < n) {
				var t = (a + b) %% 1000003;
				a = b;
				b = t;
				i = i + 1;
			}
			return a;
		}
		var result = hot(%d);
		print(result);`, 60000, false},
	{"helper-call", // helper tiers up at its call boundary in BOTH cells;
		// only OSR gets the outer loop there too
		`function weight(a, b) { return (a * 3 + b) %% 1000003; }
		function hot(n) {
			var s = 0;
			var i = 0;
			while (i < n) {
				var c = weight(i, s);
				s = (s + c + i) %% 1000003;
				i = i + 1;
			}
			return s;
		}
		var result = hot(%d);
		print(result);`, 30000, false},
	{"array-stream", // inner loop streams an array through an accumulator
		`function hot(n, m) {
			var a = new Array(m);
			for (var i = 0; i < m; i++) { a[i] = i; }
			var s = 0;
			var it = 0;
			while (it < n) {
				var j = 0;
				while (j < m) {
					s = (s + a[j]) %% 1000003;
					j = j + 1;
				}
				it = it + 1;
			}
			return s;
		}
		var result = hot(%d, 64);
		print(result);`, 500, false},
	{"spec-deopt", // the speculation guard fails mid-run: the deopt exit
		// must keep the first half's work, and the cell must still win
		`function flip(p, q) {
			if (p < %d) { return (q * 2 + p) %% 1000003; }
			return;
		}
		function hot(n) {
			var s = 0;
			var i = 0;
			while (i < n) {
				var c = flip(i, s);
				if (c) { s = (s + c + i) %% 1000003; }
				i = i + 1;
			}
			return s;
		}
		var result = hot(%d);
		print(result);`, 20000, true},
}

// diffSemantic compares two cells on everything except policy verdicts
// and step counts: the osr cell compiles the single-call hot function and
// runs it natively, the boundary cell never can, so verdict counts differ
// by construction and steps are charged per-op of different tiers (LIR
// after regalloc executes fewer ops per iteration than bytecode). The
// fused/unfused and jit/jit+osr step identities live in the native suite
// and the difftest matrix, where both cells run the same tier.
func (a nativeObservation) diffSemantic(b nativeObservation) string {
	switch {
	case a.runValue != b.runValue:
		return fmt.Sprintf("run value %q vs %q", a.runValue, b.runValue)
	case a.resultG != b.resultG:
		return fmt.Sprintf("result global %q vs %q", a.resultG, b.resultG)
	case a.output != b.output:
		return "print output differs"
	case a.errMsg != b.errMsg:
		return fmt.Sprintf("error %q vs %q", a.errMsg, b.errMsg)
	}
	return ""
}

// osrSource instantiates one corpus program at the configured scale.
func osrSource(b osrBenchProg, scale int) string {
	n := b.iters * scale
	if strings.Count(b.src, "%d") == 2 {
		// spec-deopt: the flip point sits mid-loop so the guard fails
		// after real work has accumulated in native registers.
		return fmt.Sprintf(b.src, n/2, n)
	}
	return fmt.Sprintf(b.src, n)
}

// OSRBench produces the report. Timing is strictly serial and interleaved
// (boundary, osr, boundary, osr, ...) so host drift lands on both cells;
// the minimum per cell is compared.
func OSRBench(cfg Config) (*OSRBenchReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Repeats < 5 {
		cfg.Repeats = 5
	}
	db, bugs, err := BuildDB(4, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	rep := &OSRBenchReport{Gate: OSRGate, Identical: true}
	var logSum float64
	for _, b := range osrBenches {
		src := osrSource(b, cfg.Scale)
		// Low, equal thresholds in both cells: the point is the install
		// site, not the warmup length. OSRThreshold defaults to
		// IonThreshold, so the osr cell compiles after 30 back edges —
		// a vanishing fraction of the scaled loop.
		boundary := engine.Config{
			IonThreshold: 30, BaselineThreshold: 10,
			Speculate: b.speculate, Bugs: bugs,
		}
		osr := boundary
		osr.OSR = true

		entry := OSRBenchEntry{Name: b.name}
		var refB, refO nativeObservation
		for r := 0; r < cfg.Repeats; r++ {
			obsB, durB, eb, err := observeNative(src, boundary, db)
			if err != nil {
				return nil, fmt.Errorf("%s boundary: %w", b.name, err)
			}
			obsO, durO, eo, err := observeNative(src, osr, db)
			if err != nil {
				return nil, fmt.Errorf("%s osr: %w", b.name, err)
			}
			if entry.BoundaryNs == 0 || durB.Nanoseconds() < entry.BoundaryNs {
				entry.BoundaryNs = durB.Nanoseconds()
			}
			if entry.OSRNs == 0 || durO.Nanoseconds() < entry.OSRNs {
				entry.OSRNs = durO.Nanoseconds()
			}
			refB, refO = obsB, obsO
			stO := eo.Stats()
			entry.OSREntries = stO.OSREntries
			entry.DeoptExits = stO.DeoptExits
			if stB := eb.Stats(); stB.OSREntries != 0 {
				return nil, fmt.Errorf("%s: boundary cell recorded %d OSR entries with OSR off", b.name, stB.OSREntries)
			}
		}
		entry.Steps = refO.steps
		if d := refB.diffSemantic(refO); d != "" && rep.Identical {
			rep.Identical = false
			rep.Mismatch = fmt.Sprintf("%s: %s", b.name, d)
		}
		if entry.OSREntries == 0 {
			rep.NeverEntered = append(rep.NeverEntered, b.name)
		}
		if entry.OSRNs > 0 {
			entry.Speedup = float64(entry.BoundaryNs) / float64(entry.OSRNs)
			logSum += math.Log(entry.Speedup)
		}
		rep.Benches = append(rep.Benches, entry)
	}
	if n := len(rep.Benches); n > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(n))
	}
	return rep, nil
}

// RenderOSR renders the report for the terminal.
func RenderOSR(r *OSRBenchReport) string {
	var sb strings.Builder
	sb.WriteString("Loop-header OSR tier-up (single long-running-call corpus)\n")
	sb.WriteString("  each program calls its hot function ONCE: without OSR the call\n")
	sb.WriteString("  never returns to an install point, so the loop stays interpreted;\n")
	sb.WriteString("  with OSR the back edges compile it and execution transfers at the\n")
	sb.WriteString("  loop header. Semantics must be identical — speed and the install\n")
	sb.WriteString("  site are the only differences.\n")
	sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %9s %12s %8s %8s\n",
		"benchmark", "boundary", "osr", "speedup", "steps", "entries", "deopts"))
	for _, e := range r.Benches {
		sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %8.2fx %12d %8d %8d\n",
			e.Name, time.Duration(e.BoundaryNs).Round(time.Microsecond),
			time.Duration(e.OSRNs).Round(time.Microsecond), e.Speedup,
			e.Steps, e.OSREntries, e.DeoptExits))
	}
	sb.WriteString(fmt.Sprintf("  geomean speedup: %.2fx\n", r.GeomeanSpeedup))
	if r.Identical {
		sb.WriteString("  boundary/osr behavior: identical on every benchmark\n")
	} else {
		sb.WriteString(fmt.Sprintf("  boundary/osr behavior: MISMATCH (%s)\n", r.Mismatch))
	}
	if len(r.NeverEntered) > 0 {
		sb.WriteString(fmt.Sprintf("  NEVER ENTERED mid-loop: %s\n", strings.Join(r.NeverEntered, ", ")))
	}
	return sb.String()
}

package experiments

// Core micro-benchmarks: fixtures for the JITBULL hot path (Δ extraction,
// chain comparison, the detector's per-compilation finish step), shared by
// the root bench_test.go and by cmd/jitbull-bench -core, which records the
// numbers into BENCH_core.json. The ref4VDC entry runs the retained
// string-based reference implementation over the same fixture — the
// pre-optimization baseline the fast path's speedup is measured against.

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/passes"
)

// CoreBench is one named micro-benchmark.
type CoreBench struct {
	Name  string
	Bench func(b *testing.B)
}

// benchSnapshotPair builds a representative before/after pair: a load loop
// body with nChecks bounds checks, of which the "after" side keeps only
// one in four (what range analysis + bounds-check elimination do to hot
// array code).
func benchSnapshotPair(nChecks int) (before, after *mir.Snapshot) {
	build := func(keepEvery int) *mir.Snapshot {
		s := &mir.Snapshot{FuncName: "bench"}
		add := func(id int, op string, operands ...int) {
			s.Instrs = append(s.Instrs, mir.SnapInstr{ID: id, Opcode: op, Operands: operands})
		}
		add(1, "parameter#0")
		add(2, "unbox", 1)
		add(3, "elements", 2)
		add(4, "initializedlength", 3)
		id := 10
		for i := 0; i < nChecks; i++ {
			add(id, "constant("+strconv.Itoa(i)+")")
			if keepEvery == 1 || i%keepEvery == 0 {
				add(id+1, "boundscheck", id, 4)
				add(id+2, "loadelement", 3, id+1)
			} else {
				add(id+2, "loadelement", 3, id)
			}
			add(id+3, "add", id+2, 2)
			id += 4
		}
		add(id, "return", id-1)
		return s
	}
	return build(1), build(4)
}

// benchChainSets builds two interned chain sets of size n with ~50%
// overlap, the regime CompareChains sees when a candidate is near a VDC.
func benchChainSets(n int) (a, b []uint32) {
	mk := func(tag string, lo, hi int) []string {
		var out []string
		for i := lo; i < hi; i++ {
			out = append(out, fmt.Sprintf("boundscheck→constant(%d)→%s→unbox→parameter#0", i, tag))
		}
		return out
	}
	shared := mk("shared", 0, n/2)
	return core.InternChains(append(mk("a", 0, n-n/2), shared...)),
		core.InternChains(append(mk("b", 0, n-n/2), shared...))
}

// detectorFixture is the shared (expensive) fixture for the finish-step
// benchmarks: the per-pass snapshot feed of every function a benign corpus
// program gets JIT-compiled, plus databases with 0, 1 and 4 VDC
// fingerprints. Replaying the feed through a policy reproduces exactly the
// per-compilation work JITBULL adds to the engine (Δ extraction per pass,
// then the finish-step database comparison).
type detectorFixture struct {
	funcs []capturedCompile
	dbs   map[int]*core.Database
}

// capturedCompile is one compilation's observer feed.
type capturedCompile struct {
	fn    string
	steps []snapStep
}

type snapStep struct {
	idx           int
	pass          string
	before, after *mir.Snapshot
}

// snapCapture is an engine.Policy that records the snapshot feed without
// deciding anything.
type snapCapture struct {
	funcs []capturedCompile
}

func (sc *snapCapture) Active() bool { return true }

func (sc *snapCapture) BeginCompile(fnName string) (passes.Observer, func() engine.CompileDecision) {
	cc := capturedCompile{fn: fnName}
	obs := func(idx int, pass string, before, after *mir.Snapshot) {
		cc.steps = append(cc.steps, snapStep{idx: idx, pass: pass, before: before, after: after})
	}
	finish := func() engine.CompileDecision {
		sc.funcs = append(sc.funcs, cc)
		return engine.CompileDecision{}
	}
	return obs, finish
}

// replay drives one recorded compilation through any policy.
func (cc *capturedCompile) replay(p engine.Policy) engine.CompileDecision {
	obs, finish := p.BeginCompile(cc.fn)
	for _, st := range cc.steps {
		obs(st.idx, st.pass, st.before, st.after)
	}
	return finish()
}

var (
	detFixOnce sync.Once
	detFix     *detectorFixture
	detFixErr  error
)

// loadDetectorFixture captures the snapshot feed of the TypeScript
// benchmark (the paper's worst-case corpus program).
func loadDetectorFixture() (*detectorFixture, error) {
	detFixOnce.Do(func() {
		bench, err := octane.ByName("TypeScript")
		if err != nil {
			detFixErr = err
			return
		}
		e, err := engine.New(bench.Source(1), engine.Config{IonThreshold: 100})
		if err != nil {
			detFixErr = err
			return
		}
		capt := &snapCapture{}
		e.SetPolicy(capt)
		if _, err := e.Run(); err != nil {
			detFixErr = err
			return
		}
		if len(capt.funcs) == 0 {
			detFixErr = fmt.Errorf("fixture captured no compilations")
			return
		}
		fix := &detectorFixture{funcs: capt.funcs, dbs: map[int]*core.Database{0: {}}}
		for _, n := range []int{1, 4} {
			db, _, err := BuildDB(n, 100)
			if err != nil {
				detFixErr = err
				return
			}
			fix.dbs[n] = db
		}
		detFix = fix
	})
	return detFix, detFixErr
}

// CoreBenchmarks returns the micro-benchmark set. Expensive fixtures are
// built lazily on first run, so filtering to a subset stays cheap.
func CoreBenchmarks() []CoreBench {
	finish := func(nVDC int) func(b *testing.B) {
		return func(b *testing.B) {
			fix, err := loadDetectorFixture()
			if err != nil {
				b.Fatal(err)
			}
			det := core.NewDetector(fix.dbs[nVDC])
			fix.funcs[0].replay(det) // build the index outside the timing loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range fix.funcs {
					fix.funcs[j].replay(det)
				}
			}
		}
	}
	return []CoreBench{
		{Name: "ExtractDelta", Bench: func(b *testing.B) {
			before, after := benchSnapshotPair(24)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ExtractDelta(before, after)
			}
		}},
		{Name: "ExtractDelta/ref", Bench: func(b *testing.B) {
			before, after := benchSnapshotPair(24)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RefExtractDelta(before, after)
			}
		}},
		{Name: "CompareChains", Bench: func(b *testing.B) {
			x, y := benchChainSets(64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.CompareChains(x, y, core.DefaultRatio, core.DefaultThr)
			}
		}},
		{Name: "CompareChains/ref", Bench: func(b *testing.B) {
			x, y := benchChainSets(64)
			xs, ys := core.ChainStrings(x), core.ChainStrings(y)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RefCompareChains(xs, ys, core.DefaultRatio, core.DefaultThr)
			}
		}},
		{Name: "DetectorFinish/0VDC", Bench: finish(0)},
		{Name: "DetectorFinish/1VDC", Bench: finish(1)},
		{Name: "DetectorFinish/4VDC", Bench: finish(4)},
		{Name: "DetectorFinish/ref4VDC", Bench: func(b *testing.B) {
			fix, err := loadDetectorFixture()
			if err != nil {
				b.Fatal(err)
			}
			det := core.NewReferenceDetector(fix.dbs[4])
			fix.funcs[0].replay(det)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range fix.funcs {
					fix.funcs[j].replay(det)
				}
				det.Reset() // the reference appends duplicate matches
			}
		}},
	}
}

package experiments

import (
	"testing"

	"github.com/jitbull/jitbull/internal/mc"
)

// TestMCBenchIdentity runs the full -mc measurement once (single repeat —
// the timing numbers are noise at this setting, but every identity field
// is deterministic) and asserts the report's acceptance structure: mc and
// NoMC cells bit-identical on the whole corpus, a clean generated-program
// sweep, and bit-identical kernels at the executor boundary. The speedup
// gates themselves are enforced by cmd/jitbull-bench -mc, where repeats
// make the timing meaningful.
func TestMCBenchIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-corpus measurement; skipped in -short")
	}
	rep, err := MCBench(Config{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Supported {
		if mc.Supported() {
			t.Fatal("report says unsupported on a supported platform")
		}
		t.Skip("machine-code tier not supported on this platform")
	}
	if !rep.Identical {
		t.Errorf("mc/nomc corpus mismatch: %s", rep.Mismatch)
	}
	if rep.SweepDiverged != 0 {
		t.Errorf("generated-program sweep diverged %d/%d: %s",
			rep.SweepDiverged, rep.SweepPrograms, rep.SweepFirstDiver)
	}
	if rep.KernelMismatch != "" {
		t.Errorf("kernel mismatch: %s", rep.KernelMismatch)
	}
	if len(rep.Benches) == 0 || len(rep.Kernels) == 0 {
		t.Fatalf("empty report: %d benches, %d kernels", len(rep.Benches), len(rep.Kernels))
	}
}

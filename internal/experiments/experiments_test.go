package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/jitbull/jitbull/internal/octane"
)

var fastCfg = Config{IonThreshold: 40, Repeats: 1}

func TestSecurityMatrix100Percent(t *testing.T) {
	rows, err := SecurityMatrix(Config{IonThreshold: 300, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("matrix rows = %d, want 16 (4 CVEs x 4 variants)", len(rows))
	}
	detected, total := DetectionRate(rows)
	if detected != total {
		t.Fatalf("detection rate %d/%d, paper reports 100%%:\n%s",
			detected, total, RenderSecurityMatrix(rows))
	}
}

func TestFalsePositivesShapeMatchesFig4(t *testing.T) {
	rows1, err := FalsePositives(1, fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper, DB #1: pass-disable rate 0-5%% for most benchmarks, and the
	// JIT engine is never completely disabled.
	var ts1 float64
	for _, r := range rows1 {
		if r.PctNoJIT != 0 {
			t.Errorf("#1: %s has %%NoJIT = %.1f, paper reports 0", r.Benchmark, r.PctNoJIT)
		}
		if r.Benchmark == "TypeScript" {
			ts1 = r.PctPassDis
		}
	}
	// Paper: only TypeScript shows similarity with CVE-2019-17026 at #1.
	if ts1 == 0 {
		t.Errorf("#1: TypeScript should show a (small) similarity with CVE-2019-17026")
	}

	rows4, err := FalsePositives(4, fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper, DB #4: rates grow (10-65%% depending on benchmark); at least
	// the aggregate must not shrink.
	var sum1, sum4 float64
	for i := range rows4 {
		sum1 += rows1[i].PctPassDis
		sum4 += rows4[i].PctPassDis
	}
	if sum4 < sum1 {
		t.Errorf("FP rate should not shrink with more VDCs: #1 total %.1f vs #4 total %.1f", sum1, sum4)
	}
	t.Logf("\n%s\n%s", RenderFalsePositives(1, rows1), RenderFalsePositives(4, rows4))
}

func TestPerformanceShapeMatchesFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := Performance(nil, Config{IonThreshold: 40, Repeats: 2, Scale: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// NoJIT must be substantially slower than JIT on every benchmark.
		if r.NoJIT <= r.JIT {
			t.Errorf("%s: NoJIT (%v) not slower than JIT (%v)", r.Benchmark, r.NoJIT, r.JIT)
		}
		// JITBULL with an empty DB must be near-free (within noise).
		if ovh := Overhead(r.JB0, r.JIT); ovh > 30 {
			t.Errorf("%s: JB#0 overhead %.1f%%, paper reports ~0", r.Benchmark, ovh)
		}
		// Protected runs must stay far below NoJIT.
		if r.JB4 >= r.NoJIT {
			t.Errorf("%s: JB#4 (%v) not faster than NoJIT (%v)", r.Benchmark, r.JB4, r.NoJIT)
		}
	}
	t.Logf("\n%s", RenderPerformance(rows))
}

func TestScalabilityShapeMatchesFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	benches := pick(t, "Splay", "TypeScript")
	rows, err := Scalability(benches, 8, Config{IonThreshold: 40, Repeats: 2, Scale: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Times) != 8 {
			t.Fatalf("%s: %d series points, want 8", r.Benchmark, len(r.Times))
		}
		// The protected run should never collapse to NoJIT-like times:
		// sanity-bound the #8 overhead.
		if r.Times[7] > r.JIT*8 {
			t.Errorf("%s: #8 time %v looks like a JIT collapse (JIT %v)", r.Benchmark, r.Times[7], r.JIT)
		}
	}
	t.Logf("\n%s", RenderScalability(rows))
}

func TestTablesRender(t *testing.T) {
	t1 := TableI()
	for _, want := range []string{"TurboFan", "IonMonkey", "Chakra JIT", "CVE-2019-17026*"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := TableII()
	if !strings.Contains(t2, "Runtime") {
		t.Errorf("Table II malformed:\n%s", t2)
	}
	w := WindowReport()
	if !strings.Contains(w, "average window") || !strings.Contains(w, "CVE-2019-11707") {
		t.Errorf("window report malformed:\n%s", w)
	}
}

func TestOverheadHelper(t *testing.T) {
	if o := Overhead(150*time.Millisecond, 100*time.Millisecond); o < 49.9 || o > 50.1 {
		t.Errorf("Overhead = %v, want 50", o)
	}
	if o := Overhead(time.Second, 0); o != 0 {
		t.Errorf("Overhead with zero base = %v", o)
	}
}

func pick(t *testing.T, names ...string) []octane.Benchmark {
	t.Helper()
	var out []octane.Benchmark
	for _, n := range names {
		b, err := octane.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestThresholdAblationTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	rows, err := ThresholdAblation(Config{IonThreshold: 300, Repeats: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	var atPaper, loosest, strictest *AblationRow
	for i := range rows {
		switch {
		case rows[i].Thr == 3 && rows[i].Ratio == 0.5:
			atPaper = &rows[i]
		case rows[i].Thr == 1:
			loosest = &rows[i]
		case rows[i].Thr == 6:
			strictest = &rows[i]
		}
	}
	if atPaper == nil || loosest == nil || strictest == nil {
		t.Fatal("sweep rows missing")
	}
	if atPaper.Detected != atPaper.DetectTotal {
		t.Fatalf("paper setting must keep 100%% detection: %+v", atPaper)
	}
	if strictest.Detected >= atPaper.Detected && strictest.Thr > atPaper.Thr {
		// Stricter settings should (weakly) lose detections.
		if strictest.Detected > atPaper.Detected {
			t.Fatalf("stricter setting detected more: %+v vs %+v", strictest, atPaper)
		}
	}
	if loosest.FlaggedPct < atPaper.FlaggedPct {
		t.Fatalf("loosest setting should flag at least as much: %+v vs %+v", loosest, atPaper)
	}
	t.Logf("\n%s", RenderAblation(rows))
}

package experiments

// Observability micro-benchmarks: the cost of every obs primitive (probe
// disabled and enabled), the end-to-end compile-path overhead of tracing a
// corpus program, and the exporters. cmd/jitbull-bench -obs records them
// into BENCH_obs.json and gates the disabled-probe compile path against
// the BENCH_core.json baseline.

import (
	"io"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/octane"
)

// obsCompileBench runs one compile-heavy corpus program per iteration on a
// fresh engine wired per cfg (the observability knobs under test).
func obsCompileBench(mk func() engine.Config) func(b *testing.B) {
	return func(b *testing.B) {
		bench, err := octane.ByName("Richards")
		if err != nil {
			b.Fatal(err)
		}
		src := bench.Source(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := engine.New(src, mk())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchTraceEvents produces a recorded event buffer for the exporter
// benchmark.
func benchTraceEvents(n int) []obs.Event {
	ring := obs.NewRing(n)
	tr := obs.NewTracer(ring)
	for i := 0; i < n/2; i++ {
		sp := tr.Begin(obs.CatPass, "GVN")
		sp.End(obs.I("index", int64(i)), obs.I("instrs_in", 70), obs.I("instrs_out", 60))
	}
	return ring.Events()
}

// ObsBenchmarks returns the observability micro-benchmark set.
func ObsBenchmarks() []CoreBench {
	return []CoreBench{
		// The disabled probe is the price every compile pays when tracing is
		// off — it must stay within noise of a bare function call.
		{Name: "Span/disabled", Bench: func(b *testing.B) {
			var tr *obs.Tracer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Begin(obs.CatPass, "GVN")
				sp.End(obs.I("index", 1))
			}
		}},
		{Name: "Span/ring", Bench: func(b *testing.B) {
			tr := obs.NewTracer(obs.NewRing(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Begin(obs.CatPass, "GVN")
				sp.End(obs.I("index", 1))
			}
		}},
		{Name: "Instant/disabled", Bench: func(b *testing.B) {
			var tr *obs.Tracer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Instant(obs.CatEngine, "bailout", obs.S("fn", "hot"))
			}
		}},
		// The flight recorder as a live sink, never triggering: the steady
		// price of keeping the black box armed.
		{Name: "Span/flight-idle", Bench: func(b *testing.B) {
			fr := obs.NewFlightRecorder(b.TempDir(), obs.FlightOptions{MinSamples: 1 << 30})
			tr := obs.NewTracer(fr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Begin(obs.CatPass, "GVN")
				sp.End(obs.I("index", 1))
			}
		}},
		{Name: "JournalRecord", Bench: func(b *testing.B) {
			j := obs.NewJournal(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.Record("hot", obs.StageDeopt, "ion", "exit=3")
			}
		}},
		{Name: "JournalRecord/disabled", Bench: func(b *testing.B) {
			var j *obs.Journal
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.Record("hot", obs.StageDeopt, "ion", "exit=3")
			}
		}},
		{Name: "WatchdogSignal/clean", Bench: func(b *testing.B) {
			w := obs.NewWatchdog(obs.WatchdogOptions{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Signal(obs.Signal{Kind: obs.SigCompile, Func: "hot", Value: 1000})
			}
		}},
		{Name: "WatchdogSignal/disabled", Bench: func(b *testing.B) {
			var w *obs.Watchdog
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Signal(obs.Signal{Kind: obs.SigCompile, Func: "hot", Value: 1000})
			}
		}},
		{Name: "Counter", Bench: func(b *testing.B) {
			c := obs.NewRegistry().Counter("engine.compiles")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		}},
		{Name: "Histogram", Bench: func(b *testing.B) {
			h := obs.NewRegistry().Histogram("compile.pass_ns", obs.LatencyBucketsNs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Observe(int64(i)&0xffff + 1)
			}
		}},
		{Name: "HistogramExemplar", Bench: func(b *testing.B) {
			h := obs.NewRegistry().Histogram("compile.pass_ns", obs.LatencyBucketsNs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ObserveEx(int64(i)&0xffff+1, uint64(i)+1)
			}
		}},
		{Name: "PromExport", Bench: func(b *testing.B) {
			reg := obs.NewRegistry()
			reg.Counter("engine.compiles").Add(42)
			h := reg.Histogram("compile.pass_ns", obs.LatencyBucketsNs)
			for i := 0; i < 4096; i++ {
				h.ObserveEx(int64(i)&0xffff+1, uint64(i)+1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := reg.WriteProm(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "AuditRecord", Bench: func(b *testing.B) {
			log := obs.NewAuditLog(nil)
			ev := obs.AuditEvent{Func: "victim", Verdict: obs.VerdictGo}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				log.Record(ev)
			}
		}},
		{Name: "ChromeExport/4k", Bench: func(b *testing.B) {
			events := benchTraceEvents(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := obs.WriteChromeTrace(io.Discard, events); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// End-to-end: a compile-heavy corpus run with observability off, with
		// a ring tracer, and with the full stack (tracer + shared registry +
		// audit log).
		{Name: "CompileOctane/off", Bench: obsCompileBench(func() engine.Config {
			return engine.Config{IonThreshold: 100}
		})},
		{Name: "CompileOctane/traced", Bench: obsCompileBench(func() engine.Config {
			return engine.Config{IonThreshold: 100, Tracer: obs.NewTracer(obs.NewRing(0))}
		})},
		{Name: "CompileOctane/full", Bench: obsCompileBench(func() engine.Config {
			return engine.Config{
				IonThreshold: 100,
				Tracer:       obs.NewTracer(obs.NewRing(0)),
				Metrics:      obs.NewRegistry(),
				Audit:        obs.NewAuditLog(nil),
			}
		})},
		// The acceptance bar for the flight recorder: compiled in and armed
		// (ring sink + watchdog + journal) but idle — no anomaly, no dump.
		{Name: "CompileOctane/flight-idle", Bench: func(b *testing.B) {
			dir := b.TempDir()
			obsCompileBench(func() engine.Config {
				fr := obs.NewFlightRecorder(dir, obs.FlightOptions{MinSamples: 1 << 30})
				return engine.Config{
					IonThreshold: 100,
					Tracer:       obs.NewTracer(fr),
					Metrics:      obs.NewRegistry(),
					Audit:        obs.NewAuditLog(nil),
					Watchdog:     obs.NewWatchdog(obs.WatchdogOptions{}),
					Journal:      obs.NewJournal(0),
				}
			})(b)
		}},
	}
}

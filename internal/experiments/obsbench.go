package experiments

// Observability micro-benchmarks: the cost of every obs primitive (probe
// disabled and enabled), the end-to-end compile-path overhead of tracing a
// corpus program, and the exporters. cmd/jitbull-bench -obs records them
// into BENCH_obs.json and gates the disabled-probe compile path against
// the BENCH_core.json baseline.

import (
	"io"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/octane"
)

// obsCompileBench runs one compile-heavy corpus program per iteration on a
// fresh engine wired per cfg (the observability knobs under test).
func obsCompileBench(mk func() engine.Config) func(b *testing.B) {
	return func(b *testing.B) {
		bench, err := octane.ByName("Richards")
		if err != nil {
			b.Fatal(err)
		}
		src := bench.Source(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := engine.New(src, mk())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchTraceEvents produces a recorded event buffer for the exporter
// benchmark.
func benchTraceEvents(n int) []obs.Event {
	ring := obs.NewRing(n)
	tr := obs.NewTracer(ring)
	for i := 0; i < n/2; i++ {
		sp := tr.Begin(obs.CatPass, "GVN")
		sp.End(obs.I("index", int64(i)), obs.I("instrs_in", 70), obs.I("instrs_out", 60))
	}
	return ring.Events()
}

// ObsBenchmarks returns the observability micro-benchmark set.
func ObsBenchmarks() []CoreBench {
	return []CoreBench{
		// The disabled probe is the price every compile pays when tracing is
		// off — it must stay within noise of a bare function call.
		{Name: "Span/disabled", Bench: func(b *testing.B) {
			var tr *obs.Tracer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Begin(obs.CatPass, "GVN")
				sp.End(obs.I("index", 1))
			}
		}},
		{Name: "Span/ring", Bench: func(b *testing.B) {
			tr := obs.NewTracer(obs.NewRing(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Begin(obs.CatPass, "GVN")
				sp.End(obs.I("index", 1))
			}
		}},
		{Name: "Instant/disabled", Bench: func(b *testing.B) {
			var tr *obs.Tracer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Instant(obs.CatEngine, "bailout", obs.S("fn", "hot"))
			}
		}},
		{Name: "Counter", Bench: func(b *testing.B) {
			c := obs.NewRegistry().Counter("engine.compiles")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		}},
		{Name: "Histogram", Bench: func(b *testing.B) {
			h := obs.NewRegistry().Histogram("compile.pass_ns", obs.LatencyBucketsNs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Observe(int64(i)&0xffff + 1)
			}
		}},
		{Name: "AuditRecord", Bench: func(b *testing.B) {
			log := obs.NewAuditLog(nil)
			ev := obs.AuditEvent{Func: "victim", Verdict: obs.VerdictGo}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				log.Record(ev)
			}
		}},
		{Name: "ChromeExport/4k", Bench: func(b *testing.B) {
			events := benchTraceEvents(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := obs.WriteChromeTrace(io.Discard, events); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// End-to-end: a compile-heavy corpus run with observability off, with
		// a ring tracer, and with the full stack (tracer + shared registry +
		// audit log).
		{Name: "CompileOctane/off", Bench: obsCompileBench(func() engine.Config {
			return engine.Config{IonThreshold: 100}
		})},
		{Name: "CompileOctane/traced", Bench: obsCompileBench(func() engine.Config {
			return engine.Config{IonThreshold: 100, Tracer: obs.NewTracer(obs.NewRing(0))}
		})},
		{Name: "CompileOctane/full", Bench: obsCompileBench(func() engine.Config {
			return engine.Config{
				IonThreshold: 100,
				Tracer:       obs.NewTracer(obs.NewRing(0)),
				Metrics:      obs.NewRegistry(),
				Audit:        obs.NewAuditLog(nil),
			}
		})},
	}
}

package experiments

// Superinstruction-tier benchmark: the acceptance measurements of the
// fused, direct-threaded native executor, recorded by cmd/jitbull-bench
// -native into BENCH_native.json.
//
//  (a) wall-clock of the octane-analogue corpus, fused vs NoFuse engines,
//      interleaved best-of-Repeats per benchmark so host noise drifts over
//      both cells equally; the gate is the geometric-mean speedup;
//  (b) semantic identity: the run value, the `result` global, the total VM
//      step count and the policy verdicts (NrJIT/NrDisJIT/NrNoJIT) must be
//      bit-identical between the fused and unfused cells of every
//      benchmark — fusion may only change how fast the answer arrives;
//  (c) a generated-program divergence sweep (fused vs NoFuse, full engine
//      observation) as a second, corpus-independent identity check;
//  (d) the fusion counters of the fused cells — how much of the stream the
//      fuser rewrote and how far the block budget checks were amortized.

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/lir"
	"github.com/jitbull/jitbull/internal/mirbuild"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/progen"
	"github.com/jitbull/jitbull/internal/regalloc"
	"github.com/jitbull/jitbull/internal/value"
)

// NativeBenchEntry is one benchmark's fused-vs-unfused measurement.
type NativeBenchEntry struct {
	Name      string  `json:"name"`
	UnfusedNs int64   `json:"unfused_ns"`
	FusedNs   int64   `json:"fused_ns"`
	Speedup   float64 `json:"speedup"`
	Steps     int64   `json:"steps"` // total VM steps, identical across cells

	// Fusion shape of the fused cell.
	FusedOps     int64 `json:"fused_ops"`   // source ops absorbed into superinstructions
	FuseSupers   int64 `json:"fuse_supers"` // superinstructions emitted
	BudgetChecks int64 `json:"block_budget_checks"`
}

// KernelEntry is one native-tier kernel measurement: a hot loop compiled
// through the full production pipeline (parse, bytecode, MIR, passes, LIR,
// regalloc, fuse) and timed at the native.Exec boundary, fused dispatch vs
// the unfused reference loop. This is where the superinstruction claim
// lives: the engine-level corpus above it is dominated by hook calls and
// interpreter warm-up that fusion cannot (and must not) change.
type KernelEntry struct {
	Name      string  `json:"name"`
	UnfusedNs int64   `json:"unfused_ns"`
	FusedNs   int64   `json:"fused_ns"`
	Speedup   float64 `json:"speedup"`
	Steps     int64   `json:"steps"` // identical across cells

	Supers   int   `json:"supers"`    // superinstructions in the fused stream
	FusedOps int   `json:"fused_ops"` // source ops absorbed into them
	Checks   int64 `json:"block_budget_checks"`
}

// NativeBenchReport is the BENCH_native.json payload.
type NativeBenchReport struct {
	// Engine-level corpus: whole-run wall clock, identity, fusion shape.
	Benches        []NativeBenchEntry `json:"benches"`
	GeomeanSpeedup float64            `json:"geomean_speedup"`

	// Native-tier kernels: the dispatch-loop speedup the perf gate holds
	// to >= 1.5x.
	Kernels        []KernelEntry `json:"kernels"`
	KernelGeomean  float64       `json:"kernel_geomean_speedup"`
	KernelMismatch string        `json:"kernel_mismatch,omitempty"`

	// Identity across the fused/unfused cells (measurement b).
	Identical bool   `json:"identical"`
	Mismatch  string `json:"mismatch,omitempty"`

	// Generated-program sweep (measurement c).
	SweepPrograms   int    `json:"sweep_programs"`
	SweepDiverged   int    `json:"sweep_diverged"`
	SweepFirstDiver string `json:"sweep_first_divergence,omitempty"`
}

// nativeObservation is the behavior of one engine run, compared across the
// fused/unfused cells. (The difftest package owns the full differential
// matrix; it imports this package's progen corpus helpers' siblings, so
// the tiny observation is inlined here rather than imported.)
type nativeObservation struct {
	runValue string
	resultG  string
	output   string
	errMsg   string
	steps    int64
	verdicts [3]int
}

func observeNative(src string, cfg engine.Config, db *core.Database) (nativeObservation, time.Duration, *engine.Engine, error) {
	var out bytes.Buffer
	cfg.Out = &out
	e, err := engine.New(src, cfg)
	if err != nil {
		return nativeObservation{}, 0, nil, err
	}
	e.SetPolicy(core.NewDetector(db))
	start := time.Now()
	v, runErr := e.Run()
	dur := time.Since(start)
	st := e.Stats()
	obs := nativeObservation{
		runValue: v.ToString(),
		resultG:  e.Global("result").ToString(),
		output:   out.String(),
		steps:    e.VM.Steps(),
		verdicts: [3]int{st.NrJIT, st.NrDisJIT, st.NrNoJIT},
	}
	if runErr != nil {
		obs.errMsg = runErr.Error()
	}
	return obs, dur, e, nil
}

func (a nativeObservation) diff(b nativeObservation) string {
	switch {
	case a.runValue != b.runValue:
		return fmt.Sprintf("run value %q vs %q", a.runValue, b.runValue)
	case a.resultG != b.resultG:
		return fmt.Sprintf("result global %q vs %q", a.resultG, b.resultG)
	case a.output != b.output:
		return "print output differs"
	case a.errMsg != b.errMsg:
		return fmt.Sprintf("error %q vs %q", a.errMsg, b.errMsg)
	case a.steps != b.steps:
		return fmt.Sprintf("VM steps %d vs %d", a.steps, b.steps)
	case a.verdicts != b.verdicts:
		return fmt.Sprintf("verdicts %v vs %v", a.verdicts, b.verdicts)
	}
	return ""
}

// NativeBench produces the full report. Timing runs are strictly serial
// and interleaved (unfused, fused, unfused, fused, ...) so slow host drift
// lands on both cells; the minimum per cell is compared.
func NativeBench(cfg Config) (*NativeBenchReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Repeats < 5 {
		cfg.Repeats = 5 // timing gate: more repeats than the table benches
	}
	db, bugs, err := BuildDB(4, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	fused := engine.Config{IonThreshold: cfg.IonThreshold, Bugs: bugs}
	unfused := fused
	unfused.NoFuse = true

	rep := &NativeBenchReport{Identical: true}
	var logSum float64
	for _, b := range octane.All() {
		src := b.Source(cfg.Scale)
		entry := NativeBenchEntry{Name: b.Name}
		var refU, refF nativeObservation
		for r := 0; r < cfg.Repeats; r++ {
			obsU, durU, _, err := observeNative(src, unfused, db)
			if err != nil {
				return nil, fmt.Errorf("%s unfused: %w", b.Name, err)
			}
			obsF, durF, e, err := observeNative(src, fused, db)
			if err != nil {
				return nil, fmt.Errorf("%s fused: %w", b.Name, err)
			}
			if entry.UnfusedNs == 0 || durU.Nanoseconds() < entry.UnfusedNs {
				entry.UnfusedNs = durU.Nanoseconds()
			}
			if entry.FusedNs == 0 || durF.Nanoseconds() < entry.FusedNs {
				entry.FusedNs = durF.Nanoseconds()
			}
			refU, refF = obsU, obsF
			if r == cfg.Repeats-1 {
				sink := e.MetricsSink()
				entry.FusedOps = sink.Counter("native.fused_ops").Value()
				entry.FuseSupers = sink.Counter("native.fuse_supers").Value()
				entry.BudgetChecks = sink.Counter("native.block_budget_checks").Value()
			}
		}
		entry.Steps = refF.steps
		if d := refU.diff(refF); d != "" && rep.Identical {
			rep.Identical = false
			rep.Mismatch = fmt.Sprintf("%s: %s", b.Name, d)
		}
		if entry.FusedNs > 0 {
			entry.Speedup = float64(entry.UnfusedNs) / float64(entry.FusedNs)
			logSum += math.Log(entry.Speedup)
		}
		rep.Benches = append(rep.Benches, entry)
	}
	if n := len(rep.Benches); n > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(n))
	}

	// (c) generated-program sweep: behavior-only, no timing.
	const sweep = 40
	rep.SweepPrograms = sweep
	for seed := int64(0); seed < sweep; seed++ {
		src := progen.Generate(seed, progen.Options{})
		obsU, _, _, err := observeNative(src, unfused, db)
		if err != nil {
			return nil, fmt.Errorf("sweep seed %d unfused: %w", seed, err)
		}
		obsF, _, _, err := observeNative(src, fused, db)
		if err != nil {
			return nil, fmt.Errorf("sweep seed %d fused: %w", seed, err)
		}
		if d := obsU.diff(obsF); d != "" {
			rep.SweepDiverged++
			if rep.SweepFirstDiver == "" {
				rep.SweepFirstDiver = fmt.Sprintf("seed %d: %s", seed, d)
			}
		}
	}

	// Native-tier kernel section (the perf gate).
	if err := benchKernels(rep, cfg.Repeats); err != nil {
		return nil, err
	}
	return rep, nil
}

// nativeKernels are the octane-analogue hot loops of the kernel section:
// each is the inner loop of one corpus benchmark, reduced to a single
// self-contained numeric function so it can be invoked directly at the
// native boundary (no engine, no calls, no globals). The corpus is chosen
// to be dispatch-bound — loop control, register shuffles, accumulation,
// and array traffic — because dispatch is what the fused tier removes.
// Loops dominated by libm calls (fmod, pow) or float<->int conversion
// measure those instead and belong to the engine-level table above.
// Iteration counts are sized so one invocation runs for a few
// milliseconds.
var nativeKernels = []struct {
	name string
	src  string
	args []float64
}{
	{"sum-loop", // the canonical reduce every corpus bench contains
		`function kernel(n) {
			var s = 0;
			for (var i = 0; i < n; i++) { s = s + i; }
			return s;
		}`, []float64{1000000}},
	{"fib-shuffle", // Richards scheduler: rotate state through registers
		`function kernel(n) {
			var a = 0;
			var b = 1;
			for (var i = 0; i < n; i++) {
				var t = a + b;
				a = b;
				b = t;
			}
			return a;
		}`, []float64{900000}},
	{"nested-count", // DeltaBlue: doubly nested constraint sweep
		`function kernel(n, m) {
			var acc = 0;
			for (var i = 0; i < n; i++) {
				for (var j = 0; j < m; j++) { acc = acc + j; }
			}
			return acc;
		}`, []float64{12000, 80}},
	{"poly-eval", // Crypto: Horner-style multiply-accumulate
		`function kernel(n) {
			var acc = 1;
			for (var i = 0; i < n; i++) {
				acc = acc * 1.0000001 + 0.5;
			}
			return acc;
		}`, []float64{900000}},
	{"array-sum", // NavierStokes: stream an array through an accumulator
		`function kernel(n, m) {
			var a = new Array(m);
			for (var i = 0; i < m; i++) { a[i] = i * 0.5; }
			var s = 0;
			for (var it = 0; it < n; it++) {
				for (var j = 0; j < m; j++) { s = s + a[j]; }
			}
			return s;
		}`, []float64{9000, 100}},
	{"ring-queue", // Richards: circular task-queue traffic
		`function kernel(n, m) {
			var q = new Array(m);
			for (var i = 0; i < m; i++) { q[i] = i; }
			var head = 0;
			var acc = 0;
			for (var it = 0; it < n; it++) {
				var v = q[head];
				q[head] = v + 1;
				head = head + 1;
				if (head == m) { head = 0; }
				acc = acc + v;
			}
			return acc;
		}`, []float64{700000, 64}},
}

// compileKernel lowers src's `kernel` function through the production
// pipeline — the same stages the engine's compile supervisor runs — and
// returns the regalloc'd, fused LIR unit.
func compileKernel(src string) (*lir.Code, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	prog, err := compiler.CompileProgram(astProg)
	if err != nil {
		return nil, err
	}
	var fd = astProg.Funcs()
	if len(fd) != 1 {
		return nil, fmt.Errorf("kernel source must declare exactly one function, got %d", len(fd))
	}
	params := make([]value.Type, len(fd[0].Params))
	for i := range params {
		params[i] = value.Number
	}
	g, err := mirbuild.Build(prog, fd[0], mirbuild.Options{
		ParamTypes: params,
		GlobalType: func(int) value.Type { return value.Number },
		ReturnType: func(int) value.Type { return value.Number },
	})
	if err != nil {
		return nil, err
	}
	if err := passes.RunWith(g, passes.RunOptions{}); err != nil {
		return nil, err
	}
	code, err := lir.Lower(g)
	if err != nil {
		return nil, err
	}
	if err := regalloc.AllocateWith(code, nil); err != nil {
		return nil, err
	}
	code.Fused = lir.Fuse(code)
	return code, nil
}

// kernelHooks is the minimal native.Hooks for self-contained kernels: a
// private arena, no globals, no calls.
type kernelHooks struct{ arena *heap.Arena }

func (k *kernelHooks) Arena() *heap.Arena         { return k.arena }
func (k *kernelHooks) GlobalGet(int) value.Value  { return value.Undef() }
func (k *kernelHooks) GlobalSet(int, value.Value) {}
func (k *kernelHooks) Random() float64            { return 0.5 }
func (k *kernelHooks) CallFunction(int, []value.Value) (value.Value, error) {
	return value.Undef(), fmt.Errorf("native kernel bench: kernels must not call")
}

// benchKernels measures the kernel section of the report.
func benchKernels(rep *NativeBenchReport, repeats int) error {
	const kernelBudget = int64(1) << 60
	for _, k := range nativeKernels {
		code, err := compileKernel(k.src)
		if err != nil {
			return fmt.Errorf("kernel %s: %w", k.name, err)
		}
		args := make([]value.Value, len(k.args))
		for i, a := range k.args {
			args[i] = value.Num(a)
		}
		entry := KernelEntry{Name: k.name,
			FusedOps: code.Fused.FusedSrcOps, Supers: code.Fused.Supers}
		var pool native.Pool
		for r := 0; r < repeats; r++ {
			hu := &kernelHooks{arena: heap.New(1 << 16)}
			hf := &kernelHooks{arena: heap.New(1 << 16)}
			t0 := time.Now()
			ru, su, eu := native.ExecUnfused(code, args, hu, kernelBudget, &pool)
			du := time.Since(t0)
			t0 = time.Now()
			rf, sf, ef := native.Exec(code, args, hf, kernelBudget, &pool)
			df := time.Since(t0)
			if eu != nil || su != native.StatusOK {
				return fmt.Errorf("kernel %s unfused: status %v err %v", k.name, su, eu)
			}
			if ef != nil || sf != native.StatusOK {
				return fmt.Errorf("kernel %s fused: status %v err %v", k.name, sf, ef)
			}
			if ru.Kind != rf.Kind || math.Float64bits(ru.Val) != math.Float64bits(rf.Val) || ru.Steps != rf.Steps {
				if rep.KernelMismatch == "" {
					rep.KernelMismatch = fmt.Sprintf("%s: unfused %+v vs fused %+v", k.name, ru, rf)
				}
			}
			if entry.UnfusedNs == 0 || du.Nanoseconds() < entry.UnfusedNs {
				entry.UnfusedNs = du.Nanoseconds()
			}
			if entry.FusedNs == 0 || df.Nanoseconds() < entry.FusedNs {
				entry.FusedNs = df.Nanoseconds()
			}
			entry.Steps = rf.Steps
			entry.Checks = rf.Checks
		}
		if entry.FusedNs > 0 {
			entry.Speedup = float64(entry.UnfusedNs) / float64(entry.FusedNs)
		}
		rep.Kernels = append(rep.Kernels, entry)
	}
	var logSum float64
	for _, e := range rep.Kernels {
		logSum += math.Log(e.Speedup)
	}
	if n := len(rep.Kernels); n > 0 {
		rep.KernelGeomean = math.Exp(logSum / float64(n))
	}
	return nil
}

// RenderNative renders the report for the terminal.
func RenderNative(r *NativeBenchReport) string {
	var sb strings.Builder
	sb.WriteString("Superinstruction fusion + direct-threaded dispatch (octane corpus)\n")
	sb.WriteString("  fused and unfused cells run the same programs through the same\n")
	sb.WriteString("  pipeline; only the native executor differs. Steps and verdicts\n")
	sb.WriteString("  must be identical — speed is the only permitted difference.\n")
	sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %9s %12s %9s %8s %8s\n",
		"benchmark", "unfused", "fused", "speedup", "steps", "fusedops", "supers", "checks"))
	for _, e := range r.Benches {
		sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %8.2fx %12d %9d %8d %8d\n",
			e.Name, time.Duration(e.UnfusedNs).Round(time.Microsecond),
			time.Duration(e.FusedNs).Round(time.Microsecond), e.Speedup,
			e.Steps, e.FusedOps, e.FuseSupers, e.BudgetChecks))
	}
	sb.WriteString(fmt.Sprintf("  geomean speedup: %.2fx\n", r.GeomeanSpeedup))
	if r.Identical {
		sb.WriteString("  fused/unfused behavior: identical on every benchmark\n")
	} else {
		sb.WriteString(fmt.Sprintf("  fused/unfused behavior: MISMATCH (%s)\n", r.Mismatch))
	}
	sb.WriteString(fmt.Sprintf("  generated-program sweep: %d programs, %d diverged",
		r.SweepPrograms, r.SweepDiverged))
	if r.SweepFirstDiver != "" {
		sb.WriteString(fmt.Sprintf(" (%s)", r.SweepFirstDiver))
	}
	sb.WriteString("\n")
	sb.WriteString("\nNative-tier kernels (octane-analogue hot loops at the native.Exec boundary)\n")
	sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %9s %12s %9s %8s %10s\n",
		"kernel", "unfused", "fused", "speedup", "steps", "fusedops", "supers", "checks"))
	for _, e := range r.Kernels {
		sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %8.2fx %12d %9d %8d %10d\n",
			e.Name, time.Duration(e.UnfusedNs).Round(time.Microsecond),
			time.Duration(e.FusedNs).Round(time.Microsecond), e.Speedup,
			e.Steps, e.FusedOps, e.Supers, e.Checks))
	}
	sb.WriteString(fmt.Sprintf("  kernel geomean speedup: %.2fx (the perf gate)\n", r.KernelGeomean))
	if r.KernelMismatch != "" {
		sb.WriteString(fmt.Sprintf("  kernel behavior: MISMATCH (%s)\n", r.KernelMismatch))
	}
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"
)

// RenderSecurityMatrix formats the §VI-B matrix as text.
func RenderSecurityMatrix(rows []SecurityRow) string {
	var sb strings.Builder
	sb.WriteString("Security evaluation (§VI-B): variants vs single-VDC database\n\n")
	fmt.Fprintf(&sb, "  %-16s %-8s %-10s %-12s %s\n", "CVE", "variant", "exploits?", "neutralized?", "matched passes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s %-8s %-10v %-12v %s\n",
			r.CVE, r.Variant, r.ExploitedUnprotected, r.NeutralizedByJITBULL,
			strings.Join(r.MatchedPasses, ","))
	}
	d, tot := DetectionRate(rows)
	fmt.Fprintf(&sb, "\n  detection rate: %d/%d (paper: 100%%)\n", d, tot)
	return sb.String()
}

// RenderFalsePositives formats one Figure 4 series.
func RenderFalsePositives(dbSize int, rows []FPRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 (false positives), #%d VDC(s) in DB:\n\n", dbSize)
	fmt.Fprintf(&sb, "  %-14s %6s %9s %8s %9s %9s %8s\n",
		"benchmark", "NrJIT", "NrDisJIT", "NrNoJIT", "%Safe", "%PassDis", "%NoJIT")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s %6d %9d %8d %8.1f%% %8.1f%% %7.1f%%\n",
			r.Benchmark, r.NrJIT, r.NrDisJIT, r.NrNoJIT, r.PctSafe, r.PctPassDis, r.PctNoJIT)
	}
	return sb.String()
}

// RenderPerformance formats Figure 5.
func RenderPerformance(rows []PerfRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 5 (execution times): NoJIT vs JIT vs JITBULL #0/#1/#4\n\n")
	fmt.Fprintf(&sb, "  %-14s %10s %10s %10s %10s %10s | %9s %8s %8s %8s\n",
		"benchmark", "NoJIT", "JIT", "JB#0", "JB#1", "JB#4",
		"NoJIT ovh", "JB#0 ovh", "JB#1 ovh", "JB#4 ovh")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s %10s %10s %10s %10s %10s | %8.0f%% %+7.1f%% %+7.1f%% %+7.1f%%\n",
			r.Benchmark, fmtDur(r.NoJIT), fmtDur(r.JIT), fmtDur(r.JB0), fmtDur(r.JB1), fmtDur(r.JB4),
			Overhead(r.NoJIT, r.JIT), Overhead(r.JB0, r.JIT), Overhead(r.JB1, r.JIT), Overhead(r.JB4, r.JIT))
	}
	sb.WriteString("\n  (paper: NoJIT 136%-3700% slower; JITBULL overhead 0% at #0, 1%-20% at #1-#4)\n")
	return sb.String()
}

// RenderScalability formats Figure 6.
func RenderScalability(rows []ScaleRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 6 (scalability): overhead vs JIT with #1..#8 VDCs\n\n")
	if len(rows) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %-14s", "benchmark")
	for i := range rows[0].Times {
		fmt.Fprintf(&sb, " %7s", fmt.Sprintf("#%d", i+1))
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s", r.Benchmark)
		for _, t := range r.Times {
			fmt.Fprintf(&sb, " %+6.1f%%", Overhead(t, r.JIT))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\n  (paper: max 22% at #8 (TypeScript), min 5% (Splay); stabilizes beyond #4)\n")
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

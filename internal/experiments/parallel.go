package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
)

// RunSpec describes one engine run for the parallel harness: a program, an
// engine configuration, and optionally a VDC database to enforce (nil runs
// without a policy). Repeats > 1 re-runs the program on fresh engines and
// reports the best wall time, like the serial harness.
type RunSpec struct {
	Name    string
	Source  string
	Engine  engine.Config
	DB      *core.Database
	Repeats int
}

// RunOutcome is the result of one RunSpec.
type RunOutcome struct {
	Name    string
	Stats   engine.Stats
	Elapsed time.Duration // best of Repeats
	Matches []core.Match  // distinct DNA matches, when a DB was installed
	Err     error
}

// RunParallel executes the specs across a pool of workers, each with its
// own engine instances, and returns outcomes in spec order. The specs may
// share one Database: detectors only read it, the compiled match index is
// built once under the database's internal lock, and the chain interner is
// concurrency-safe — so the fan-out is race-free by construction (the
// -race CI job runs experiment tests through this path).
//
// workers <= 0 selects GOMAXPROCS.
func RunParallel(specs []RunSpec, workers int) []RunOutcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	out := make([]RunOutcome, len(specs))
	if len(specs) == 0 {
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				out[i] = runOne(specs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// runOne executes a single spec (Repeats fresh engines, best wall time).
// A panic anywhere in the cell — engine construction, the run itself, a
// user-supplied Out writer — is contained into the cell's outcome instead
// of crashing the worker (and with it the process and every other cell
// of the fan-out).
func runOne(spec RunSpec) (oc RunOutcome) {
	defer func() {
		if r := recover(); r != nil {
			oc.Err = fmt.Errorf("experiment cell %s panicked: %v", spec.Name, r)
		}
	}()
	oc = RunOutcome{Name: spec.Name}
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	for r := 0; r < repeats; r++ {
		e, err := engine.New(spec.Source, spec.Engine)
		if err != nil {
			oc.Err = err
			return oc
		}
		var det *core.Detector
		if spec.DB != nil {
			det = core.NewDetector(spec.DB)
			e.SetPolicy(det)
		}
		start := time.Now()
		if _, err := e.Run(); err != nil {
			oc.Err = err
			return oc
		}
		d := time.Since(start)
		if oc.Elapsed == 0 || d < oc.Elapsed {
			oc.Elapsed = d
		}
		oc.Stats = e.Stats()
		if det != nil {
			oc.Matches = det.Matches
		}
	}
	return oc
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI): the §VI-B security matrix, Figure 4 (false-positive
// rates), Figure 5 (execution times for NoJIT / JIT / JITBULL with 0, 1
// and 4 VDCs), Figure 6 (scalability from 1 to 8 VDCs), plus the Table I
// survey and the §III-C vulnerability-window statistics.
//
// See EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/variants"
	"github.com/jitbull/jitbull/internal/vulndb"
)

// Config parameterizes the experiment harness.
type Config struct {
	// IonThreshold for benchmark runs. The paper's engine uses 1500; the
	// corpus analogues are sized so a lower threshold (default 100) gives
	// the same steady-state tier mix in far less wall time.
	IonThreshold int
	// Repeats per timing measurement (minimum is reported).
	Repeats int
	// Scale multiplies the benchmarks' outer-loop iteration counts for
	// timing experiments, amortizing one-time compilation exactly as the
	// multi-second real Octane runs do.
	Scale int
	// Workers is the size of the worker pool the corpus experiments
	// (FalsePositives, Performance) fan their independent engine runs
	// across. Zero or negative selects GOMAXPROCS. Timing comparisons
	// should use Workers=1 to avoid cross-run scheduler noise.
	Workers int
}

// Defaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.IonThreshold <= 0 {
		c.IonThreshold = 100
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// dbBugs returns the bug set matching a database: during a vulnerability
// window the engine *has* the unpatched bugs whose VDCs are installed.
func dbBugs(cves []string) passes.BugSet {
	bugs := passes.BugSet{}
	for _, c := range cves {
		bugs[c] = true
	}
	return bugs
}

// BuildDB fingerprints the first n implemented vulnerabilities
// (CVE-2019-17026 first, as the paper's #1 case).
func BuildDB(n int, thr int) (*core.Database, passes.BugSet, error) {
	all := vulndb.All()
	if n > len(all) {
		n = len(all)
	}
	db, err := vulndb.BuildDatabase(all[:n], thr)
	if err != nil {
		return nil, nil, err
	}
	return db, dbBugs(db.CVEs()), nil
}

// ---- §VI-B security matrix ----

// SecurityRow is one (CVE, variant) cell of the paper's detection matrix.
type SecurityRow struct {
	CVE                  string
	Variant              string
	ExploitedUnprotected bool
	NeutralizedByJITBULL bool
	MatchedPasses        []string
}

// SecurityMatrix reproduces §VI-B: for each primary CVE, generate the four
// variants and test them against a database holding only the original
// demonstrator's DNA. The paper reports 100% detection.
func SecurityMatrix(cfg Config) ([]SecurityRow, error) {
	cfg = cfg.withDefaults()
	var rows []SecurityRow
	for _, v := range vulndb.Primary() {
		vdc, err := vulndb.ExtractVDC(v, cfg.IonThreshold)
		if err != nil {
			return nil, err
		}
		db := &core.Database{}
		db.Add(vdc)
		renamed, err := variants.Rename(v.Demonstrator)
		if err != nil {
			return nil, err
		}
		minified, err := variants.Minify(v.Demonstrator)
		if err != nil {
			return nil, err
		}
		set := []struct{ name, src string }{
			{"rename", renamed},
			{"minify", minified},
			{"reorder", v.ReorderVariant},
			{"split", v.SplitVariant},
		}
		for _, variant := range set {
			un := vulndb.Run(variant.src, v.Bug(), nil, cfg.IonThreshold)
			prot := vulndb.Run(variant.src, v.Bug(), db, cfg.IonThreshold)
			rows = append(rows, SecurityRow{
				CVE:                  v.CVE,
				Variant:              variant.name,
				ExploitedUnprotected: un.Exploited(),
				NeutralizedByJITBULL: !prot.Exploited() && len(prot.Matches) > 0,
				MatchedPasses:        prot.MatchedPasses(),
			})
		}
	}
	return rows, nil
}

// DetectionRate returns detected/total over the matrix.
func DetectionRate(rows []SecurityRow) (detected, total int) {
	for _, r := range rows {
		total++
		if r.ExploitedUnprotected && r.NeutralizedByJITBULL {
			detected++
		}
	}
	return detected, total
}

// ---- Figure 4: false positives ----

// FPRow is one benchmark bar of Figure 4.
type FPRow struct {
	Benchmark  string
	NrJIT      int
	NrDisJIT   int
	NrNoJIT    int
	PctSafe    float64
	PctPassDis float64
	PctNoJIT   float64
}

// FalsePositives reproduces Figure 4: run the (benign) Octane corpus on an
// engine in a vulnerability window with dbSize VDC fingerprints installed,
// and report the proportion of JITed functions JITBULL wrongly considered
// dangerous.
func FalsePositives(dbSize int, cfg Config) ([]FPRow, error) {
	cfg = cfg.withDefaults()
	db, bugs, err := BuildDB(dbSize, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	benches := octane.Suite()
	specs := make([]RunSpec, len(benches))
	for i, b := range benches {
		specs[i] = RunSpec{
			Name:   b.Name,
			Source: b.Source(cfg.Scale),
			Engine: engine.Config{IonThreshold: cfg.IonThreshold, Bugs: bugs},
			DB:     db,
		}
	}
	var rows []FPRow
	for _, oc := range RunParallel(specs, cfg.Workers) {
		if oc.Err != nil {
			return nil, fmt.Errorf("%s under #%d: %w", oc.Name, dbSize, oc.Err)
		}
		row := FPRow{
			Benchmark: oc.Name,
			NrJIT:     oc.Stats.NrJIT,
			NrDisJIT:  oc.Stats.NrDisJIT,
			NrNoJIT:   oc.Stats.NrNoJIT,
		}
		if row.NrJIT > 0 {
			row.PctPassDis = 100 * float64(row.NrDisJIT) / float64(row.NrJIT)
			row.PctNoJIT = 100 * float64(row.NrNoJIT) / float64(row.NrJIT)
			row.PctSafe = 100 - row.PctPassDis - row.PctNoJIT
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---- Figure 5: execution times ----

// PerfRow is one benchmark group of Figure 5: execution times under the
// five configurations.
type PerfRow struct {
	Benchmark string
	NoJIT     time.Duration
	JIT       time.Duration
	JB0       time.Duration // JITBULL installed, empty DB
	JB1       time.Duration // 1 VDC
	JB4       time.Duration // 4 VDCs
}

// Overhead returns (t/base - 1) as a percentage.
func Overhead(t, base time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(t)/float64(base) - 1)
}

// timeRun measures the best-of-Repeats wall time for one configuration.
func timeRun(src string, cfgE engine.Config, db *core.Database, repeats int) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		e, err := engine.New(src, cfgE)
		if err != nil {
			return 0, err
		}
		if db != nil {
			e.SetPolicy(core.NewDetector(db))
		}
		start := time.Now()
		if _, err := e.Run(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Performance reproduces Figure 5 over the given benchmarks (nil means the
// whole corpus including the two micro-benchmarks).
func Performance(benches []octane.Benchmark, cfg Config) ([]PerfRow, error) {
	cfg = cfg.withDefaults()
	if benches == nil {
		benches = octane.All()
	}
	db1, bugs1, err := BuildDB(1, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	db4, bugs4, err := BuildDB(4, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	emptyDB := &core.Database{}
	// Five configurations per benchmark, fanned out as independent runs.
	// With Workers=1 the measurement discipline is identical to the old
	// serial loop (same order, same best-of-Repeats timing).
	const nCfg = 5
	specs := make([]RunSpec, 0, nCfg*len(benches))
	for _, b := range benches {
		src := b.Source(cfg.Scale)
		base := engine.Config{IonThreshold: cfg.IonThreshold}
		specs = append(specs,
			RunSpec{Name: b.Name + " NoJIT", Source: src, Engine: engine.Config{DisableJIT: true}, Repeats: cfg.Repeats},
			RunSpec{Name: b.Name + " JIT", Source: src, Engine: base, Repeats: cfg.Repeats},
			RunSpec{Name: b.Name + " JB#0", Source: src, Engine: base, DB: emptyDB, Repeats: cfg.Repeats},
			RunSpec{Name: b.Name + " JB#1", Source: src, Engine: engine.Config{IonThreshold: cfg.IonThreshold, Bugs: bugs1}, DB: db1, Repeats: cfg.Repeats},
			RunSpec{Name: b.Name + " JB#4", Source: src, Engine: engine.Config{IonThreshold: cfg.IonThreshold, Bugs: bugs4}, DB: db4, Repeats: cfg.Repeats},
		)
	}
	outcomes := RunParallel(specs, cfg.Workers)
	var rows []PerfRow
	for i, b := range benches {
		group := outcomes[i*nCfg : (i+1)*nCfg]
		for _, oc := range group {
			if oc.Err != nil {
				return nil, fmt.Errorf("%s: %w", oc.Name, oc.Err)
			}
		}
		rows = append(rows, PerfRow{
			Benchmark: b.Name,
			NoJIT:     group[0].Elapsed,
			JIT:       group[1].Elapsed,
			JB0:       group[2].Elapsed,
			JB1:       group[3].Elapsed,
			JB4:       group[4].Elapsed,
		})
	}
	return rows, nil
}

// ---- Figure 6: scalability ----

// ScaleRow is one benchmark series of Figure 6: execution time with #1..#8
// VDCs installed.
type ScaleRow struct {
	Benchmark string
	JIT       time.Duration
	Times     []time.Duration // index i => i+1 VDCs
}

// Scalability reproduces Figure 6 over the given benchmarks (nil = suite).
func Scalability(benches []octane.Benchmark, maxVDCs int, cfg Config) ([]ScaleRow, error) {
	cfg = cfg.withDefaults()
	if benches == nil {
		benches = octane.Suite()
	}
	if maxVDCs <= 0 || maxVDCs > len(vulndb.All()) {
		maxVDCs = len(vulndb.All())
	}
	type dbCfg struct {
		db   *core.Database
		bugs passes.BugSet
	}
	dbs := make([]dbCfg, maxVDCs)
	for n := 1; n <= maxVDCs; n++ {
		db, bugs, err := BuildDB(n, cfg.IonThreshold)
		if err != nil {
			return nil, err
		}
		dbs[n-1] = dbCfg{db: db, bugs: bugs}
	}
	var rows []ScaleRow
	for _, b := range benches {
		row := ScaleRow{Benchmark: b.Name, Times: make([]time.Duration, maxVDCs)}
		var err error
		if row.JIT, err = timeRun(b.Source(cfg.Scale), engine.Config{IonThreshold: cfg.IonThreshold}, nil, cfg.Repeats); err != nil {
			return nil, err
		}
		for n := 1; n <= maxVDCs; n++ {
			t, err := timeRun(b.Source(cfg.Scale),
				engine.Config{IonThreshold: cfg.IonThreshold, Bugs: dbs[n-1].bugs},
				dbs[n-1].db, cfg.Repeats)
			if err != nil {
				return nil, fmt.Errorf("%s #%d: %w", b.Name, n, err)
			}
			row.Times[n-1] = t
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---- Tables and reports ----

// TableI renders the vulnerability survey in the paper's Table I format
// (VDC-available entries marked with *).
func TableI() string {
	var sb strings.Builder
	sb.WriteString("Table I: vulnerabilities in the JIT engines of V8, SpiderMonkey and Chakra (2015-2021)\n")
	sb.WriteString("(* = demonstrator code or write-up available; these are bold in the paper)\n\n")
	byTarget := map[string][]vulndb.CatalogEntry{}
	var order []string
	for _, e := range vulndb.Catalog() {
		if _, ok := byTarget[e.Target]; !ok {
			order = append(order, e.Target)
		}
		byTarget[e.Target] = append(byTarget[e.Target], e)
	}
	for _, target := range order {
		fmt.Fprintf(&sb, "%-12s", target)
		for i, e := range byTarget[target] {
			if i > 0 && i%3 == 0 {
				sb.WriteString("\n            ")
			}
			mark := " "
			if e.HasVDC {
				mark = "*"
			}
			fmt.Fprintf(&sb, " %s%s", e.CVE, mark)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// TableII reports the execution environment, the reproduction's equivalent
// of the paper's hardware table.
func TableII() string {
	var sb strings.Builder
	sb.WriteString("Table II: execution environment (reproduction)\n\n")
	fmt.Fprintf(&sb, "  %-10s %s/%s\n", "Platform", runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(&sb, "  %-10s %d logical CPUs\n", "CPU", runtime.NumCPU())
	fmt.Fprintf(&sb, "  %-10s %s\n", "Runtime", runtime.Version())
	fmt.Fprintf(&sb, "  %-10s simulated tiered engine (interp -> baseline -> ion)\n", "Engine")
	return sb.String()
}

// WindowReport renders the §III-C / §VI-D vulnerability-window analysis.
func WindowReport() string {
	var sb strings.Builder
	sb.WriteString("Vulnerability windows (report date -> patch availability):\n\n")
	vulns := vulndb.All()
	sort.Slice(vulns, func(i, j int) bool { return vulns[i].Reported < vulns[j].Reported })
	for _, v := range vulns {
		fmt.Fprintf(&sb, "  %-16s %s -> %s  (%2d days, %s via %s)\n",
			v.CVE, v.Reported, v.Patched, v.Window(), v.Outcome, v.HostPass)
	}
	fmt.Fprintf(&sb, "\n  average window: %.1f days (paper: ~9 days)\n", vulndb.AverageWindowDays())
	n, cves := vulndb.MaxOverlap(2019)
	sort.Strings(cves)
	fmt.Fprintf(&sb, "  max simultaneous windows in 2019: %d (%s) (paper: 2)\n", n, strings.Join(cves, ", "))
	return sb.String()
}

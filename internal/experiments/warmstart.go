package experiments

// Persistent warm-start benchmark: the store's acceptance measurement,
// recorded by cmd/jitbull-bench -warmstart into BENCH_warmstart.json.
//
// The cell is the cross-process analogue of measureColdVsWarm: the same
// compile-dominated program, but the warm side starts with an EMPTY
// in-memory cache and only the on-disk store surviving — exactly what a
// restarted process has. Cold runs pay the full Ion pipeline + DNA
// extraction per function; warm runs replace every pipeline execution
// with a store read (checksum verify + JSON decode + fuse recompute).
// The gate is the ISSUE's: warm hits >= 5x faster than cold compiles,
// with the warm process executing zero pipelines.
//
// The snapshot leg times the fleet-priming path on the side: bundling
// the prewarmed store and restoring it into a fresh directory.

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/store"
)

// WarmStartReport is the BENCH_warmstart.json payload.
type WarmStartReport struct {
	// ColdNs runs with an empty store and empty cache (full pipeline);
	// WarmNs with an empty cache over the prewarmed store (disk replay).
	// Best of Repeats each.
	ColdNs  int64   `json:"cold_ns"`
	WarmNs  int64   `json:"warm_ns"`
	Speedup float64 `json:"speedup"`

	// Pipeline elimination accounting from the final timed runs.
	ColdCompiles int   `json:"cold_compiles"`
	WarmCompiles int   `json:"warm_compiles"` // gate: must be 0
	WarmHits     int   `json:"warm_cache_hits"`
	StoreRecords int   `json:"store_records"`

	// Fleet-priming leg: one Snapshot of the prewarmed store, one Restore
	// into an empty directory.
	SnapshotNs      int64 `json:"snapshot_ns"`
	RestoreNs       int64 `json:"restore_ns"`
	RestoredRecords int   `json:"restored_records"`
}

// WarmStartBench measures cold-vs-warm over a persistent store rooted at
// dir (which must be empty and writable; the caller owns cleanup).
func WarmStartBench(dir string, cfg Config) (*WarmStartReport, error) {
	cfg = cfg.withDefaults()
	db, _, err := BuildDB(4, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	src := compileHeavySource(6, 120, 25)
	codec := engine.NewCacheCodec(core.NewDetector(db))

	// run executes one simulated process: fresh engine, fresh in-memory
	// cache, persistent tier attached, returning its wall time (parse
	// excluded) and compile/hit counters.
	run := func(st *store.Store) (int64, engine.Stats, error) {
		cache := jitqueue.NewCache(nil)
		cache.AttachTier(st, codec)
		e, err := engine.New(src, engine.Config{BaselineThreshold: 5, IonThreshold: 20, Cache: cache})
		if err != nil {
			return 0, engine.Stats{}, err
		}
		e.SetPolicy(core.NewDetector(db))
		start := time.Now()
		if _, err := e.Run(); err != nil {
			return 0, engine.Stats{}, err
		}
		return time.Since(start).Nanoseconds(), e.Stats(), nil
	}

	rep := &WarmStartReport{}

	// Cold: a fresh, empty store per repetition — every run pays the
	// pipeline (and the store writes, which a fair cold figure includes:
	// a real first boot populates the store as it compiles).
	for i := 0; i < cfg.Repeats; i++ {
		st, err := store.Open(filepath.Join(dir, fmt.Sprintf("cold-%d", i)), store.Options{})
		if err != nil {
			return nil, err
		}
		ns, stats, err := run(st)
		if err != nil {
			return nil, err
		}
		if stats.Compiles == 0 {
			return nil, fmt.Errorf("warmstart bench: cold run executed no pipelines")
		}
		rep.ColdCompiles = stats.Compiles
		if rep.ColdNs == 0 || ns < rep.ColdNs {
			rep.ColdNs = ns
		}
	}

	// Prewarm once, then time warm processes: empty cache, surviving store.
	warmDir := filepath.Join(dir, "warm")
	prewarm, err := store.Open(warmDir, store.Options{})
	if err != nil {
		return nil, err
	}
	if _, _, err := run(prewarm); err != nil {
		return nil, err
	}
	rep.StoreRecords = prewarm.Len()
	for i := 0; i < cfg.Repeats; i++ {
		st, err := store.Open(warmDir, store.Options{})
		if err != nil {
			return nil, err
		}
		ns, stats, err := run(st)
		if err != nil {
			return nil, err
		}
		if stats.Compiles != 0 {
			return nil, fmt.Errorf("warmstart bench: warm run executed %d pipeline(s), want 0", stats.Compiles)
		}
		rep.WarmCompiles = stats.Compiles
		rep.WarmHits = stats.CacheHits
		if rep.WarmNs == 0 || ns < rep.WarmNs {
			rep.WarmNs = ns
		}
	}
	if rep.WarmNs > 0 {
		rep.Speedup = float64(rep.ColdNs) / float64(rep.WarmNs)
	}

	// Fleet-priming leg.
	bundle := filepath.Join(dir, "snapshot.json")
	start := time.Now()
	if err := prewarm.Snapshot(bundle); err != nil {
		return nil, err
	}
	rep.SnapshotNs = time.Since(start).Nanoseconds()
	restored, err := store.Open(filepath.Join(dir, "restored"), store.Options{})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	n, err := restored.Restore(bundle)
	if err != nil {
		return nil, err
	}
	rep.RestoreNs = time.Since(start).Nanoseconds()
	rep.RestoredRecords = n
	return rep, nil
}

// RenderWarmStart renders the report for the terminal.
func RenderWarmStart(r *WarmStartReport) string {
	var sb strings.Builder
	sb.WriteString("Persistent warm start (compile-heavy program, empty cache each run)\n")
	fmt.Fprintf(&sb, "  cold (empty store):     %12d ns  (%d pipeline runs)\n", r.ColdNs, r.ColdCompiles)
	fmt.Fprintf(&sb, "  warm (store replay):    %12d ns  (%d pipeline runs, %d store hits)\n",
		r.WarmNs, r.WarmCompiles, r.WarmHits)
	fmt.Fprintf(&sb, "  speedup:                %12.1fx\n", r.Speedup)
	fmt.Fprintf(&sb, "  store records:          %12d\n", r.StoreRecords)
	fmt.Fprintf(&sb, "  snapshot/restore:       %12d ns / %d ns (%d records)\n",
		r.SnapshotNs, r.RestoreNs, r.RestoredRecords)
	return sb.String()
}

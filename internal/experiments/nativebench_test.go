package experiments

import (
	"testing"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/octane"
)

// benchOctaneNative runs one octane benchmark end-to-end under a fused or
// unfused engine — the profiling harness behind the -native wall-clock
// numbers.
func benchOctaneNative(b *testing.B, name string, nofuse bool) {
	db, bugs, err := BuildDB(4, 100)
	if err != nil {
		b.Fatal(err)
	}
	bench, err := octane.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Source(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := engine.New(src, engine.Config{IonThreshold: 100, Bugs: bugs, NoFuse: nofuse})
		if err != nil {
			b.Fatal(err)
		}
		e.SetPolicy(core.NewDetector(db))
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOctaneRichardsUnfused(b *testing.B) { benchOctaneNative(b, "Richards", true) }
func BenchmarkOctaneRichardsFused(b *testing.B)   { benchOctaneNative(b, "Richards", false) }
func BenchmarkOctaneNavierUnfused(b *testing.B)   { benchOctaneNative(b, "NavierStokes", true) }
func BenchmarkOctaneNavierFused(b *testing.B)     { benchOctaneNative(b, "NavierStokes", false) }

package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/octane"
)

func TestRunParallelMatchesSerial(t *testing.T) {
	db, bugs, err := BuildDB(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	var specs []RunSpec
	for _, b := range octane.Suite() {
		specs = append(specs, RunSpec{
			Name:   b.Name,
			Source: b.Source(1),
			Engine: engine.Config{IonThreshold: 40, Bugs: bugs},
			DB:     db,
		})
	}
	serial := RunParallel(specs, 1)
	parallel := RunParallel(specs, 4)
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("outcome counts: %d serial, %d parallel, want %d", len(serial), len(parallel), len(specs))
	}
	for i := range specs {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: errs %v / %v", specs[i].Name, s.Err, p.Err)
		}
		if s.Name != specs[i].Name || p.Name != specs[i].Name {
			t.Fatalf("outcome %d out of order: %q / %q", i, s.Name, p.Name)
		}
		// Engine behavior is deterministic, so stats and the matched set
		// must be identical regardless of scheduling.
		if s.Stats != p.Stats {
			t.Errorf("%s: stats diverged\nserial   %+v\nparallel %+v", s.Name, s.Stats, p.Stats)
		}
		if !reflect.DeepEqual(s.Matches, p.Matches) {
			t.Errorf("%s: matches diverged\nserial   %+v\nparallel %+v", s.Name, s.Matches, p.Matches)
		}
	}
}

// TestRunParallelSharedMetricsRegistry: engines across the fan-out may
// share one Config.Metrics registry; the engine counters mirror into it
// atomically, so the shared view must equal the sum of every cell's own
// Stats snapshot with no lost updates (the -race CI job runs this test
// through the parallel path).
func TestRunParallelSharedMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	var specs []RunSpec
	for _, b := range octane.Suite() {
		specs = append(specs, RunSpec{
			Name:   b.Name,
			Source: b.Source(1),
			Engine: engine.Config{IonThreshold: 40, Metrics: reg},
		})
	}
	out := RunParallel(specs, 4)
	var wantCompiles, wantJIT int64
	for _, oc := range out {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Name, oc.Err)
		}
		wantCompiles += int64(oc.Stats.Compiles)
		wantJIT += int64(oc.Stats.NrJIT)
	}
	if wantCompiles == 0 {
		t.Fatal("fixture compiled nothing; the aggregation check is vacuous")
	}
	if got := reg.Counter("engine.compiles").Value(); got != wantCompiles {
		t.Errorf("shared engine.compiles = %d, want the per-engine sum %d", got, wantCompiles)
	}
	if got := reg.Counter("engine.nr_jit").Value(); got != wantJIT {
		t.Errorf("shared engine.nr_jit = %d, want the per-engine sum %d", got, wantJIT)
	}
	// Pass-latency histograms also land in the shared registry.
	snap := reg.Snapshot()
	if h, ok := snap["compile.pass_ns"].(obs.HistSnapshot); !ok || h.Count == 0 {
		t.Errorf("compile.pass_ns missing from the shared registry: %+v", snap["compile.pass_ns"])
	}
}

func TestRunParallelPropagatesErrors(t *testing.T) {
	specs := []RunSpec{
		{Name: "bad", Source: "function f( {", Engine: engine.Config{}},
		{Name: "ok", Source: "function f(x) { return x + 1; } f(1);", Engine: engine.Config{}},
	}
	out := RunParallel(specs, 2)
	if out[0].Err == nil {
		t.Error("parse failure not propagated")
	}
	if out[1].Err != nil {
		t.Errorf("healthy spec failed: %v", out[1].Err)
	}
}

// panickyWriter panics on the first write, simulating a pathological
// user-supplied Out sink inside an experiment cell.
type panickyWriter struct{}

func (panickyWriter) Write([]byte) (int, error) { panic("writer exploded") }

func TestRunParallelContainsPanickingCell(t *testing.T) {
	specs := []RunSpec{
		{Name: "boom", Source: `print("hi");`, Engine: engine.Config{Out: panickyWriter{}}},
		{Name: "ok", Source: "function f(x) { return x + 1; } f(1);", Engine: engine.Config{}},
	}
	out := RunParallel(specs, 2)
	if out[0].Err == nil {
		t.Fatal("panicking cell reported no error")
	}
	if want := "experiment cell boom panicked"; !strings.Contains(out[0].Err.Error(), want) {
		t.Errorf("panic error = %v, want it to contain %q", out[0].Err, want)
	}
	if out[1].Err != nil {
		t.Errorf("healthy cell failed alongside the panicking one: %v", out[1].Err)
	}
}

func TestRunParallelEmpty(t *testing.T) {
	if out := RunParallel(nil, 8); len(out) != 0 {
		t.Fatalf("empty spec list gave %d outcomes", len(out))
	}
}

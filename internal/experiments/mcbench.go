package experiments

// Machine-code-tier benchmark: the acceptance measurements of the real
// amd64 tier below LIR, recorded by cmd/jitbull-bench -mc into
// BENCH_mc.json.
//
//  (a) wall-clock of the octane-analogue corpus, machine-code (default)
//      vs NoMC (fused threaded) engines, interleaved best-of-Repeats per
//      benchmark; the gate is the geometric-mean speedup;
//  (b) semantic identity: run value, `result` global, output, VM step
//      count and policy verdicts must be bit-identical between the mc and
//      NoMC cells — the tier may only change how fast the answer arrives;
//  (c) a generated-program divergence sweep (mc vs NoMC, full engine
//      observation) as a second, corpus-independent identity check;
//  (d) kernel-level dispatch measurements at the executor boundary: the
//      same production-pipeline kernels the fused tier is gated on, timed
//      mc vs fused, with bit-identical results and steps required.

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/mc"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/progen"
	"github.com/jitbull/jitbull/internal/value"
)

// MCBenchEntry is one engine-level benchmark's mc-vs-threaded measurement.
type MCBenchEntry struct {
	Name    string  `json:"name"`
	NoMCNs  int64   `json:"nomc_ns"`
	MCNs    int64   `json:"mc_ns"`
	Speedup float64 `json:"speedup"`
	Steps   int64   `json:"steps"` // total VM steps, identical across cells
}

// MCKernelEntry is one kernel's measurement at the executor boundary:
// machine code vs the fused threaded dispatch loop.
type MCKernelEntry struct {
	Name    string  `json:"name"`
	FusedNs int64   `json:"fused_ns"`
	MCNs    int64   `json:"mc_ns"`
	Speedup float64 `json:"speedup"`
	Steps   int64   `json:"steps"` // identical across cells
}

// MCBenchReport is the BENCH_mc.json payload.
type MCBenchReport struct {
	// Supported is false on platforms without the tier; all other fields
	// are zero and the gates do not apply.
	Supported bool   `json:"supported"`
	Arch      string `json:"arch"`

	// Engine-level corpus: whole-run wall clock plus identity.
	Benches        []MCBenchEntry `json:"benches"`
	GeomeanSpeedup float64        `json:"geomean_speedup"`

	// Executor-boundary kernels: the dispatch speedup the perf gate holds
	// to >= 2.0x over the fused tier.
	Kernels        []MCKernelEntry `json:"kernels"`
	KernelGeomean  float64         `json:"kernel_geomean_speedup"`
	KernelMismatch string          `json:"kernel_mismatch,omitempty"`

	// Identity across the mc/NoMC cells (measurement b).
	Identical bool   `json:"identical"`
	Mismatch  string `json:"mismatch,omitempty"`

	// Generated-program sweep (measurement c).
	SweepPrograms   int    `json:"sweep_programs"`
	SweepDiverged   int    `json:"sweep_diverged"`
	SweepFirstDiver string `json:"sweep_first_divergence,omitempty"`
}

// MCBench produces the full report. Timing runs are strictly serial and
// interleaved (NoMC, mc, NoMC, mc, ...) so slow host drift lands on both
// cells; the minimum per cell is compared.
func MCBench(cfg Config) (*MCBenchReport, error) {
	rep := &MCBenchReport{Supported: mc.Supported(), Arch: runtime.GOARCH, Identical: true}
	if !rep.Supported {
		return rep, nil
	}
	cfg = cfg.withDefaults()
	db, bugs, err := BuildDB(4, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}
	// Both cells run the engine's full configuration — OSR so main loops
	// tier up mid-flight instead of idling in the interpreter, speculation
	// for the guarded fast paths — differing only in NoMC. That makes the
	// comparison executor-vs-executor rather than interpreter-vs-
	// interpreter, and exercises the deopt/OSR bridges under timing load.
	mcCfg := engine.Config{IonThreshold: cfg.IonThreshold, Bugs: bugs, OSR: true, Speculate: true}
	nomcCfg := mcCfg
	nomcCfg.NoMC = true

	var logSum float64
	for _, b := range octane.All() {
		src := b.Source(cfg.Scale)
		entry := MCBenchEntry{Name: b.Name}
		var refN, refM nativeObservation
		for r := 0; r < cfg.Repeats; r++ {
			obsN, durN, _, err := observeNative(src, nomcCfg, db)
			if err != nil {
				return nil, fmt.Errorf("%s nomc: %w", b.Name, err)
			}
			obsM, durM, _, err := observeNative(src, mcCfg, db)
			if err != nil {
				return nil, fmt.Errorf("%s mc: %w", b.Name, err)
			}
			if entry.NoMCNs == 0 || durN.Nanoseconds() < entry.NoMCNs {
				entry.NoMCNs = durN.Nanoseconds()
			}
			if entry.MCNs == 0 || durM.Nanoseconds() < entry.MCNs {
				entry.MCNs = durM.Nanoseconds()
			}
			refN, refM = obsN, obsM
		}
		entry.Steps = refM.steps
		if d := refN.diff(refM); d != "" && rep.Identical {
			rep.Identical = false
			rep.Mismatch = fmt.Sprintf("%s: %s", b.Name, d)
		}
		if entry.MCNs > 0 {
			entry.Speedup = float64(entry.NoMCNs) / float64(entry.MCNs)
			logSum += math.Log(entry.Speedup)
		}
		rep.Benches = append(rep.Benches, entry)
	}
	if n := len(rep.Benches); n > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(n))
	}

	// (c) generated-program sweep: behavior-only, no timing.
	const sweep = 40
	rep.SweepPrograms = sweep
	for seed := int64(0); seed < sweep; seed++ {
		src := progen.Generate(seed, progen.Options{})
		obsN, _, _, err := observeNative(src, nomcCfg, db)
		if err != nil {
			return nil, fmt.Errorf("sweep seed %d nomc: %w", seed, err)
		}
		obsM, _, _, err := observeNative(src, mcCfg, db)
		if err != nil {
			return nil, fmt.Errorf("sweep seed %d mc: %w", seed, err)
		}
		if d := obsN.diff(obsM); d != "" {
			rep.SweepDiverged++
			if rep.SweepFirstDiver == "" {
				rep.SweepFirstDiver = fmt.Sprintf("seed %d: %s", seed, d)
			}
		}
	}

	// Kernel section (the perf gate): machine code vs fused dispatch at
	// the executor boundary, same production-pipeline kernels as -native.
	const kernelBudget = int64(1) << 60
	for _, k := range nativeKernels {
		code, err := compileKernel(k.src)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", k.name, err)
		}
		unit, err := mc.Compile(code)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: mc compile: %w", k.name, err)
		}
		args := make([]value.Value, len(k.args))
		for i, a := range k.args {
			args[i] = value.Num(a)
		}
		entry := MCKernelEntry{Name: k.name}
		var pool native.Pool
		for r := 0; r < cfg.Repeats; r++ {
			hf := &kernelHooks{arena: heap.New(1 << 16)}
			hm := &kernelHooks{arena: heap.New(1 << 16)}
			t0 := time.Now()
			rf, sf, ef := native.Exec(code, args, hf, kernelBudget, &pool)
			df := time.Since(t0)
			t0 = time.Now()
			rm, sm, em := unit.Exec(args, hm, kernelBudget, &pool)
			dm := time.Since(t0)
			if ef != nil || sf != native.StatusOK {
				return nil, fmt.Errorf("kernel %s fused: status %v err %v", k.name, sf, ef)
			}
			if em != nil || sm != native.StatusOK {
				return nil, fmt.Errorf("kernel %s mc: status %v err %v", k.name, sm, em)
			}
			if rf.Kind != rm.Kind || math.Float64bits(rf.Val) != math.Float64bits(rm.Val) ||
				rf.Steps != rm.Steps || rf.Checks != rm.Checks {
				if rep.KernelMismatch == "" {
					rep.KernelMismatch = fmt.Sprintf("%s: fused %+v vs mc %+v", k.name, rf, rm)
				}
			}
			if entry.FusedNs == 0 || df.Nanoseconds() < entry.FusedNs {
				entry.FusedNs = df.Nanoseconds()
			}
			if entry.MCNs == 0 || dm.Nanoseconds() < entry.MCNs {
				entry.MCNs = dm.Nanoseconds()
			}
			entry.Steps = rm.Steps
		}
		if entry.MCNs > 0 {
			entry.Speedup = float64(entry.FusedNs) / float64(entry.MCNs)
		}
		rep.Kernels = append(rep.Kernels, entry)
	}
	var klogSum float64
	for _, e := range rep.Kernels {
		klogSum += math.Log(e.Speedup)
	}
	if n := len(rep.Kernels); n > 0 {
		rep.KernelGeomean = math.Exp(klogSum / float64(n))
	}
	return rep, nil
}

// RenderMC renders the report for the terminal.
func RenderMC(r *MCBenchReport) string {
	var sb strings.Builder
	sb.WriteString("Machine-code tier (real amd64 below LIR, W^X install)\n")
	if !r.Supported {
		sb.WriteString(fmt.Sprintf("  not supported on %s: tier disabled, gates do not apply\n", r.Arch))
		return sb.String()
	}
	sb.WriteString("  mc and NoMC cells run the same programs through the same pipeline;\n")
	sb.WriteString("  only the top-tier executor differs. Steps and verdicts must be\n")
	sb.WriteString("  identical — speed is the only permitted difference.\n")
	sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %9s %12s\n", "benchmark", "nomc", "mc", "speedup", "steps"))
	for _, e := range r.Benches {
		sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %8.2fx %12d\n",
			e.Name, time.Duration(e.NoMCNs).Round(time.Microsecond),
			time.Duration(e.MCNs).Round(time.Microsecond), e.Speedup, e.Steps))
	}
	sb.WriteString(fmt.Sprintf("  geomean speedup: %.2fx\n", r.GeomeanSpeedup))
	if r.Identical {
		sb.WriteString("  mc/nomc behavior: identical on every benchmark\n")
	} else {
		sb.WriteString(fmt.Sprintf("  mc/nomc behavior: MISMATCH (%s)\n", r.Mismatch))
	}
	sb.WriteString(fmt.Sprintf("  generated-program sweep: %d programs, %d diverged",
		r.SweepPrograms, r.SweepDiverged))
	if r.SweepFirstDiver != "" {
		sb.WriteString(fmt.Sprintf(" (%s)", r.SweepFirstDiver))
	}
	sb.WriteString("\n")
	sb.WriteString("\nExecutor-boundary kernels (machine code vs fused threaded dispatch)\n")
	sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %9s %12s\n", "kernel", "fused", "mc", "speedup", "steps"))
	for _, e := range r.Kernels {
		sb.WriteString(fmt.Sprintf("  %-14s %12s %12s %8.2fx %12d\n",
			e.Name, time.Duration(e.FusedNs).Round(time.Microsecond),
			time.Duration(e.MCNs).Round(time.Microsecond), e.Speedup, e.Steps))
	}
	sb.WriteString(fmt.Sprintf("  kernel geomean speedup: %.2fx (the perf gate)\n", r.KernelGeomean))
	if r.KernelMismatch != "" {
		sb.WriteString(fmt.Sprintf("  kernel behavior: MISMATCH (%s)\n", r.KernelMismatch))
	}
	return sb.String()
}

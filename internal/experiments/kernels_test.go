package experiments

import (
	"math"
	"testing"

	"github.com/jitbull/jitbull/internal/heap"
	"github.com/jitbull/jitbull/internal/native"
	"github.com/jitbull/jitbull/internal/value"
)

// TestKernelCorpusFuses compiles every bench kernel through the production
// pipeline and checks (a) the fuser finds superinstructions in each —
// the corpus is meant to exercise the fused tier, a kernel that doesn't
// fuse measures nothing — and (b) fused and unfused execution agree
// bit-for-bit at a small scale, including step counts.
func TestKernelCorpusFuses(t *testing.T) {
	for _, k := range nativeKernels {
		code, err := compileKernel(k.src)
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		if code.Fused.Supers == 0 {
			t.Errorf("%s: no superinstructions fused", k.name)
		}
		args := make([]value.Value, len(k.args))
		for i := range k.args {
			args[i] = value.Num(100) // small iteration counts
		}
		if len(args) == 2 {
			args[1] = value.Num(16)
		}
		var pool native.Pool
		hu := &kernelHooks{arena: heap.New(1 << 16)}
		hf := &kernelHooks{arena: heap.New(1 << 16)}
		ru, su, eu := native.ExecUnfused(code, args, hu, 1<<40, &pool)
		rf, sf, ef := native.Exec(code, args, hf, 1<<40, &pool)
		if su != native.StatusOK || eu != nil {
			t.Fatalf("%s unfused: %v %v", k.name, su, eu)
		}
		if sf != su || ef != nil {
			t.Fatalf("%s fused: %v %v", k.name, sf, ef)
		}
		if ru.Kind != rf.Kind || math.Float64bits(ru.Val) != math.Float64bits(rf.Val) || ru.Steps != rf.Steps {
			t.Errorf("%s diverged: unfused %+v fused %+v", k.name, ru, rf)
		}
	}
}

package experiments

import (
	"fmt"
	"strings"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/variants"
	"github.com/jitbull/jitbull/internal/vulndb"
)

// AblationRow reports, for one (Thr, Ratio) comparator setting, both sides
// of the trade-off the paper's §IV-E defaults balance: how many exploit
// variants are still detected, and how many benign functions get flagged.
type AblationRow struct {
	Thr           int
	Ratio         float64
	Detected      int // of DetectTotal variant runs
	DetectTotal   int
	FlaggedPct    float64 // benign functions pass-disabled or de-JITed, %
	BenignTotal   int
	BenignFlagged int
}

// ThresholdAblation sweeps the Δ comparator settings. For each setting it
// (a) replays the four primary CVEs' rename variants against single-VDC
// databases, and (b) runs the benign corpus against a 4-VDC database,
// reporting detection rate and false-positive rate.
func ThresholdAblation(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	sweep := []struct {
		thr   int
		ratio float64
	}{
		{1, 0.25},
		{2, 0.50},
		{3, 0.50}, // the paper's setting
		{4, 0.60},
		{6, 0.80},
	}

	// Pre-extract fingerprints and variants once.
	type armed struct {
		v       vulndb.Vuln
		db      *core.Database
		variant string
	}
	var arms []armed
	for _, v := range vulndb.Primary() {
		vdc, err := vulndb.ExtractVDC(v, cfg.IonThreshold)
		if err != nil {
			return nil, err
		}
		db := &core.Database{}
		db.Add(vdc)
		renamed, err := variants.Rename(v.Demonstrator)
		if err != nil {
			return nil, err
		}
		arms = append(arms, armed{v: v, db: db, variant: renamed})
	}
	db4, bugs4, err := BuildDB(4, cfg.IonThreshold)
	if err != nil {
		return nil, err
	}

	var rows []AblationRow
	for _, s := range sweep {
		row := AblationRow{Thr: s.thr, Ratio: s.ratio}
		for _, arm := range arms {
			row.DetectTotal++
			e, err := engine.New(arm.variant, engine.Config{Bugs: arm.v.Bug(), IonThreshold: cfg.IonThreshold})
			if err != nil {
				return nil, err
			}
			det := core.NewDetector(arm.db)
			det.Thr, det.Ratio = s.thr, s.ratio
			e.SetPolicy(det)
			_, runErr := e.Run()
			exploited := engine.IsCrash(runErr) || engine.IsHijack(runErr) ||
				e.Arena().Crashed() != nil || e.Hijacked() != nil
			if !exploited && len(det.Matches) > 0 {
				row.Detected++
			}
		}
		for _, b := range octane.Suite() {
			e, err := engine.New(b.Source(cfg.Scale), engine.Config{Bugs: bugs4, IonThreshold: cfg.IonThreshold})
			if err != nil {
				return nil, err
			}
			det := core.NewDetector(db4)
			det.Thr, det.Ratio = s.thr, s.ratio
			e.SetPolicy(det)
			if _, err := e.Run(); err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			row.BenignTotal += e.Stats().NrJIT
			row.BenignFlagged += e.Stats().NrDisJIT + e.Stats().NrNoJIT
		}
		if row.BenignTotal > 0 {
			row.FlaggedPct = 100 * float64(row.BenignFlagged) / float64(row.BenignTotal)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblation formats the sweep.
func RenderAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Comparator ablation: detection vs false positives across (Thr, Ratio)\n")
	sb.WriteString("(the paper picks Thr=3, Ratio=50% \"to optimize for a high detection rate,\n thanks to our low overhead in case of a false positive detection\")\n\n")
	fmt.Fprintf(&sb, "  %4s %6s %12s %14s\n", "Thr", "Ratio", "detected", "benign flagged")
	for _, r := range rows {
		marker := " "
		if r.Thr == 3 && r.Ratio == 0.5 {
			marker = "*"
		}
		fmt.Fprintf(&sb, "%s %4d %5.0f%% %9d/%d %12.1f%%\n",
			marker, r.Thr, r.Ratio*100, r.Detected, r.DetectTotal, r.FlaggedPct)
	}
	return sb.String()
}

package vulndb

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/core"
)

// testThreshold keeps exploit tests fast; demonstrators train 2000+ times.
const testThreshold = 300

func TestExploitsFireOnVulnerableEngine(t *testing.T) {
	for _, v := range All() {
		v := v
		t.Run(v.CVE, func(t *testing.T) {
			res := Run(v.Demonstrator, v.Bug(), nil, testThreshold)
			if !res.Exploited() {
				t.Fatalf("%s demonstrator did not exploit (err=%v stats=%+v)", v.CVE, res.Err, res.Stats)
			}
			switch v.Outcome {
			case OutcomeCrash:
				if !res.Crashed {
					t.Errorf("%s: want crash, got hijack=%v", v.CVE, res.Hijacked)
				}
			case OutcomePayload:
				if !res.Hijacked {
					t.Errorf("%s: want payload execution, got crash=%v err=%v", v.CVE, res.Crashed, res.Err)
				}
			}
		})
	}
}

func TestExploitsHarmlessOnSoundEngine(t *testing.T) {
	for _, v := range All() {
		v := v
		t.Run(v.CVE, func(t *testing.T) {
			res := Run(v.Demonstrator, nil, nil, testThreshold)
			if res.Exploited() {
				t.Fatalf("%s exploited a sound engine (crash=%v hijack=%v)", v.CVE, res.Crashed, res.Hijacked)
			}
		})
	}
}

func TestJITBULLNeutralizesDemonstrators(t *testing.T) {
	for _, v := range All() {
		v := v
		t.Run(v.CVE, func(t *testing.T) {
			vdc, err := ExtractVDC(v, testThreshold)
			if err != nil {
				t.Fatal(err)
			}
			db := &core.Database{}
			db.Add(vdc)
			res := Run(v.Demonstrator, v.Bug(), db, testThreshold)
			if res.Exploited() {
				t.Fatalf("%s exploited despite JITBULL (crash=%v hijack=%v matches=%v)",
					v.CVE, res.Crashed, res.Hijacked, res.MatchedPasses())
			}
			matched := res.MatchedPasses()
			if len(matched) == 0 {
				t.Fatalf("%s: JITBULL made no match", v.CVE)
			}
			for _, want := range v.MatchPasses {
				found := false
				for _, got := range matched {
					if got == want {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: expected pass %s to match, got %v", v.CVE, want, matched)
				}
			}
		})
	}
}

func TestVariantsStillExploitUnprotected(t *testing.T) {
	for _, v := range Primary() {
		v := v
		for name, src := range map[string]string{"reorder": v.ReorderVariant, "split": v.SplitVariant} {
			if src == "" {
				continue
			}
			name, src := name, src
			t.Run(v.CVE+"/"+name, func(t *testing.T) {
				res := Run(src, v.Bug(), nil, testThreshold)
				if !res.Exploited() {
					t.Fatalf("%s %s variant did not exploit (err=%v)", v.CVE, name, res.Err)
				}
			})
		}
	}
}

func TestCrossImplementation17026(t *testing.T) {
	v := vuln17026
	if v.AltImplementation == "" {
		t.Fatal("missing second implementation")
	}
	res := Run(v.AltImplementation, v.Bug(), nil, testThreshold)
	if !res.Hijacked {
		t.Fatalf("independent implementation did not exploit (crash=%v err=%v)", res.Crashed, res.Err)
	}
}

func TestCatalogMatchesTableI(t *testing.T) {
	cat := Catalog()
	if len(cat) != 24 {
		t.Fatalf("Table I rows = %d, want 24", len(cat))
	}
	counts := map[string]int{}
	for _, e := range cat {
		counts[e.Target]++
		if !strings.HasPrefix(e.CVE, "CVE-") {
			t.Errorf("bad CVE id %q", e.CVE)
		}
	}
	if counts["TurboFan"] != 7 || counts["IonMonkey"] != 15 || counts["Chakra JIT"] != 2 {
		t.Fatalf("engine counts = %v", counts)
	}
	for _, v := range All() {
		found := false
		for _, e := range cat {
			if e.CVE == v.CVE {
				found = true
				if !e.HasVDC {
					t.Errorf("%s implemented but not marked bold", v.CVE)
				}
			}
		}
		if !found {
			t.Errorf("%s missing from catalogue", v.CVE)
		}
	}
}

func TestWindowStats(t *testing.T) {
	avg := AverageWindowDays()
	if avg < 7 || avg > 11 {
		t.Errorf("average window = %.1f days, paper reports ~9", avg)
	}
	v, err := ByID("CVE-2019-11707")
	if err != nil || v.Window() != 23 {
		t.Errorf("CVE-2019-11707 window = %d, want 23 (paper)", v.Window())
	}
	v, err = ByID("CVE-2020-26952")
	if err != nil || v.Window() != 5 {
		t.Errorf("CVE-2020-26952 window = %d, want 5 (paper)", v.Window())
	}
	n, cves := MaxOverlap(2019)
	if n != 2 {
		t.Fatalf("2019 max overlap = %d (%v), paper reports 2", n, cves)
	}
	has := map[string]bool{}
	for _, c := range cves {
		has[c] = true
	}
	if !has["CVE-2019-9810"] || !has["CVE-2019-9813"] {
		t.Errorf("overlapping pair = %v, want CVE-2019-9810 + CVE-2019-9813", cves)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("CVE-0000-0000"); err == nil {
		t.Fatal("want error for unknown CVE")
	}
}

func TestAllHaveRequiredMetadata(t *testing.T) {
	for _, v := range All() {
		if v.CVSS < 8.8 {
			t.Errorf("%s: CVSS %.1f below the paper's observed minimum", v.CVE, v.CVSS)
		}
		if v.Demonstrator == "" || v.HostPass == "" || len(v.MatchPasses) == 0 {
			t.Errorf("%s: incomplete metadata", v.CVE)
		}
		if v.Window() <= 0 {
			t.Errorf("%s: bad window dates", v.CVE)
		}
	}
	if len(Primary()) != 4 || len(Additional()) != 4 {
		t.Error("want 4 primary + 4 additional CVEs")
	}
	for _, v := range Primary() {
		if v.ReorderVariant == "" || v.SplitVariant == "" {
			t.Errorf("%s: missing manual variants", v.CVE)
		}
	}
}

// Package vulndb catalogues the JIT-engine vulnerabilities the paper
// surveys (Table I), carries report/patch dates for the vulnerability-
// window analysis (§III-C, §VI-D), and implements the eight IonMonkey CVEs
// the evaluation uses as injectable bugs with runnable demonstrator codes
// (VDCs) in the nanojs subset.
//
// Every demonstrator follows the real exploit structure: train the hot
// function past the Ion threshold so the buggy optimization compiles in,
// then trigger with hostile inputs. "Crash" exploits end in a simulated
// segfault (unmapped arena access); "payload" exploits corrupt an adjacent
// array's length header, use the resulting arbitrary read/write to
// overwrite a function's JIT code pointer, and call it — a control-flow
// hijack the engine reports as the payload executing.
package vulndb

import (
	"fmt"
	"time"

	"github.com/jitbull/jitbull/internal/passes"
)

// Outcome is what a successful exploit does.
type Outcome string

// Exploit outcomes.
const (
	OutcomeCrash   Outcome = "crash"
	OutcomePayload Outcome = "payload"
)

// Vuln is one implemented (injectable) vulnerability.
type Vuln struct {
	CVE         string
	Engine      string
	CVSS        float64
	HostPass    string   // pass hosting the injected bug
	MatchPasses []string // passes whose DNA is expected to match (and whose disabling neutralizes)
	Outcome     Outcome
	Reported    string // report date (vulnerability window start)
	Patched     string // patch availability date (window end)
	Description string

	// Demonstrator is the primary VDC source.
	Demonstrator string
	// ReorderVariant and SplitVariant are the manually-written variants of
	// §VI-B (statement reordering + decoy functions; sub-function
	// splitting). Only the four primary CVEs have them, as in the paper.
	ReorderVariant string
	SplitVariant   string
	// AltImplementation is an independent second implementation (only
	// CVE-2019-17026 has two public PoCs by different developers).
	AltImplementation string
}

// Bug returns the BugSet activating only this vulnerability.
func (v Vuln) Bug() passes.BugSet { return passes.BugSet{v.CVE: true} }

// Window returns the vulnerability window duration in days.
func (v Vuln) Window() int {
	r, err1 := time.Parse("2006-01-02", v.Reported)
	p, err2 := time.Parse("2006-01-02", v.Patched)
	if err1 != nil || err2 != nil {
		return 0
	}
	return int(p.Sub(r).Hours() / 24)
}

// All returns the eight implemented vulnerabilities: the four primary ones
// with public demonstrator codes (§VI-B), then the four additional ones
// implemented from bug-tracker descriptions for the scalability analysis
// (§VI-D), in the paper's order.
func All() []Vuln {
	return []Vuln{vuln17026, vuln9810, vuln11707, vuln9791, vuln9792, vuln9795, vuln9813, vuln26952}
}

// Primary returns the four CVEs with public demonstrator codes.
func Primary() []Vuln {
	return []Vuln{vuln17026, vuln9810, vuln11707, vuln9791}
}

// Additional returns the four CVEs written from bug-tracker descriptions.
func Additional() []Vuln {
	return []Vuln{vuln9792, vuln9795, vuln9813, vuln26952}
}

// ByID returns the implemented vulnerability with the given CVE id.
func ByID(cve string) (Vuln, error) {
	for _, v := range All() {
		if v.CVE == cve {
			return v, nil
		}
	}
	return Vuln{}, fmt.Errorf("vulndb: unknown CVE %q", cve)
}

// ---- Table I catalogue ----

// CatalogEntry is one row of the paper's Table I survey.
type CatalogEntry struct {
	CVE    string
	Target string // TurboFan / IonMonkey / Chakra JIT
	HasVDC bool   // bolded in Table I: demonstrator code or write-up available
}

// Catalog returns the full Table I vulnerability survey (V8 TurboFan,
// SpiderMonkey IonMonkey, Chakra JIT, 2015-2021).
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{"CVE-2021-30632", "TurboFan", true},
		{"CVE-2021-30551", "TurboFan", false},
		{"CVE-2020-16009", "TurboFan", false},
		{"CVE-2020-6418", "TurboFan", true},
		{"CVE-2019-2208", "TurboFan", false},
		{"CVE-2018-17463", "TurboFan", true},
		{"CVE-2017-5121", "TurboFan", false},
		{"CVE-2021-29982", "IonMonkey", false},
		{"CVE-2020-26952", "IonMonkey", true},
		{"CVE-2020-15656", "IonMonkey", false},
		{"CVE-2019-17026", "IonMonkey", true},
		{"CVE-2019-11707", "IonMonkey", true},
		{"CVE-2019-9813", "IonMonkey", true},
		{"CVE-2019-9810", "IonMonkey", true},
		{"CVE-2019-9795", "IonMonkey", true},
		{"CVE-2019-9792", "IonMonkey", true},
		{"CVE-2019-9791", "IonMonkey", true},
		{"CVE-2018-12387", "IonMonkey", false},
		{"CVE-2017-5400", "IonMonkey", false},
		{"CVE-2017-5375", "IonMonkey", false},
		{"CVE-2015-4484", "IonMonkey", false},
		{"CVE-2015-0817", "IonMonkey", false},
		{"CVE-2021-34480", "Chakra JIT", false},
		{"CVE-2020-1380", "Chakra JIT", true},
	}
}

// AverageWindowDays returns the mean vulnerability window over the
// implemented CVEs (the paper reports 9 days for its IonMonkey set).
func AverageWindowDays() float64 {
	total := 0
	for _, v := range All() {
		total += v.Window()
	}
	return float64(total) / float64(len(All()))
}

// MaxOverlap returns the maximum number of simultaneously-open
// vulnerability windows in the given year among the implemented CVEs (the
// paper finds at most 2 during 2019: CVE-2019-9810 and CVE-2019-9813) and
// the CVEs involved.
func MaxOverlap(year int) (int, []string) {
	type event struct {
		day  time.Time
		open bool
		cve  string
	}
	var events []event
	for _, v := range All() {
		r, err1 := time.Parse("2006-01-02", v.Reported)
		p, err2 := time.Parse("2006-01-02", v.Patched)
		if err1 != nil || err2 != nil || r.Year() != year {
			continue
		}
		events = append(events, event{day: r, open: true, cve: v.CVE})
		events = append(events, event{day: p, open: false, cve: v.CVE})
	}
	// Sweep chronologically; closings before openings on the same day.
	best, cur := 0, 0
	open := map[string]bool{}
	var bestSet []string
	for {
		var next *event
		for i := range events {
			if events[i].day.IsZero() {
				continue
			}
			if next == nil || events[i].day.Before(next.day) || (events[i].day.Equal(next.day) && !events[i].open && next.open) {
				next = &events[i]
			}
		}
		if next == nil {
			break
		}
		if next.open {
			cur++
			open[next.cve] = true
			if cur > best {
				best = cur
				bestSet = bestSet[:0]
				for c := range open {
					bestSet = append(bestSet, c)
				}
			}
		} else {
			cur--
			delete(open, next.cve)
		}
		next.day = time.Time{}
	}
	return best, bestSet
}

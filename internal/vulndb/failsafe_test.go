package vulndb

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/jitbull/jitbull/internal/core"
)

// TestCorruptDatabaseFailsSafe is the fail-safe acceptance check: when the
// on-disk DNA database is corrupted (torn write or silent bit rot), the
// recovery path must yield a database that denies JIT to everything — so
// the seeded CVE exploit, which needs the JIT tier, does not fire even
// though its fingerprint was lost with the corruption.
func TestCorruptDatabaseFailsSafe(t *testing.T) {
	v := Primary()[0]

	// Sanity: the exploit works against an unprotected vulnerable engine.
	unprotected := Run(v.Demonstrator, v.Bug(), nil, testThreshold)
	if !unprotected.Exploited() {
		t.Fatalf("%s demonstrator lost its exploit (err=%v)", v.CVE, unprotected.Err)
	}

	// Fingerprint the vulnerability and persist the database for real.
	db, err := BuildDatabase([]Vuln{v}, testThreshold)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dna.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		},
	}
	for name, mutate := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			loaded, loadErr := core.LoadDatabaseFailSafe(path)
			if loadErr == nil {
				t.Fatal("corrupted database loaded without an error")
			}
			if !core.IsCorrupt(loadErr) {
				t.Fatalf("corruption not classified: %v", loadErr)
			}
			if !loaded.FailSafe() {
				t.Fatal("recovery did not hand back a fail-safe database")
			}

			protected := Run(v.Demonstrator, v.Bug(), loaded, testThreshold)
			if protected.Exploited() {
				t.Fatalf("%s fired under the fail-safe database (crash=%v hijack=%v)",
					v.CVE, protected.Crashed, protected.Hijacked)
			}
			if protected.Stats.NrNoJIT == 0 {
				t.Error("fail-safe database never forced a NoJIT decision")
			}
			if protected.Stats.NrDisJIT != 0 {
				t.Errorf("fail-safe mode must deny JIT outright, not disable passes (NrDisJIT=%d)", protected.Stats.NrDisJIT)
			}
		})
	}
}

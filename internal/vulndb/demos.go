package vulndb

// The demonstrator codes. Shared structure:
//
//   - `target` is always the first declared function (index 1), so payload
//     exploits overwrite code-pointer cell __codebase()+1.
//   - TRAIN = 2000 exceeds the default Ion threshold (1500), so the hot
//     function is compiled with the buggy pass pipeline before the
//     triggering call.
//   - Payload exploits guard the final corruption steps on observable
//     success (victim.length changed), so that on a sound (or protected)
//     engine the script completes cleanly.

var vuln17026 = Vuln{
	CVE:         "CVE-2019-17026",
	Engine:      "IonMonkey",
	CVSS:        8.8,
	HostPass:    "GVN",
	MatchPasses: []string{"GVN"},
	Outcome:     OutcomePayload,
	Reported:    "2019-12-30",
	Patched:     "2020-01-08",
	Description: "GVN keys initializedlength only by memory epoch, merging the lengths of different arrays; a bounds check against the large array guards a store into the small one, giving a linear OOB write that corrupts the adjacent array's length header.",
	Demonstrator: `
function target() { return 1; }
function oob(a, b, idx, v) {
  var t = b[idx * 2] + b[idx + 3];
  a[idx] = v * 2;
  a[idx + 1] = t * 0 + v;
  var s = a[idx] + a[idx + 1];
  return t + s;
}
var small = new Array(8);
var victim = new Array(8);
var big = new Array(64);
for (var i = 0; i < 64; i++) { big[i] = i; }
var TRAIN = 2000;
var sink = 0;
for (var i = 0; i < TRAIN; i++) { sink += oob(small, big, 2, 7); }
oob(small, big, 7, 500000);
if (victim.length > 8) {
  victim[__codebase() + 1 - __addrof(victim)] = 1337;
  target();
}
`,
	ReorderVariant: `
function target() { return 1; }
function decoy(m, q) {
  var z = 0;
  for (var j = 0; j < q; j++) { z += (m + j) * 3 - (j & 7); }
  return z;
}
function mangled(a, b, idx, v) {
  var s = 0;
  var t = b[idx + 3];
  t = t + b[idx * 2];
  a[idx + 1] = t * 0 + v;
  a[idx] = v * 2;
  s = a[idx + 1] + a[idx];
  return s + t;
}
var pad = 0;
var small = new Array(8);
var victim = new Array(8);
var big = new Array(64);
for (var i = 0; i < 64; i++) { big[i] = i + 1; }
var TRAIN = 2000;
for (var i = 0; i < TRAIN; i++) {
  pad += decoy(i, 6);
  pad += mangled(small, big, 2, 7);
}
mangled(small, big, 7, 500000);
if (victim.length > 8) {
  victim[__codebase() + 1 - __addrof(victim)] = 1337;
  target();
}
`,
	SplitVariant: `
function target() { return 1; }
function core(a, b, idx, v) {
  var t = b[idx * 2] + b[idx + 3];
  a[idx] = v * 2;
  a[idx + 1] = t * 0 + v;
  var s = a[idx] + a[idx + 1];
  return t + s;
}
function wrapped(a, b, idx, v) { return core(a, b, idx, v); }
function trainOnce(a, b, n) { return wrapped(a, b, 2, n); }
var small = new Array(8);
var victim = new Array(8);
var big = new Array(64);
for (var i = 0; i < 64; i++) { big[i] = i; }
var TRAIN = 2000;
var sink = 0;
for (var i = 0; i < TRAIN; i++) { sink += trainOnce(small, big, 7); }
wrapped(small, big, 7, 500000);
if (victim.length > 8) {
  victim[__codebase() + 1 - __addrof(victim)] = 1337;
  target();
}
`,
	AltImplementation: `
function target() { return 1; }
function exploitWrite(arr1, arr2, i, val) {
  var probe = arr2[i] + arr2[i + 2];
  arr1[i] = val;
  arr1[i + 1] = val + 1;
  var verify = arr1[i] + arr1[i + 1];
  return probe - verify;
}
var hole = new Array(8);
var neighbour = new Array(8);
var spray = new Array(96);
var j = 0;
while (j < 96) { spray[j] = j * 2; j = j + 1; }
var ROUNDS = 2200;
var acc = 0;
for (var k = 0; k < ROUNDS; k++) { acc += exploitWrite(hole, spray, 3, 11); }
exploitWrite(hole, spray, 7, 777777);
if (neighbour.length > 8) {
  neighbour[__codebase() + 1 - __addrof(neighbour)] = 4242;
  target();
}
`,
}

var vuln9810 = Vuln{
	CVE:         "CVE-2019-9810",
	Engine:      "IonMonkey",
	CVSS:        8.8,
	HostPass:    "GVN",
	MatchPasses: []string{"GVN"},
	Outcome:     OutcomeCrash,
	Reported:    "2019-03-15",
	Patched:     "2019-03-22",
	Description: "Same root flaw as CVE-2019-17026 (the paper notes the two rely on one system bug); the read-side trigger turns the merged length into a wild out-of-bounds read — a segfault.",
	Demonstrator: `
function reader(a, b, idx) {
  var t = b[idx + 1] + b[idx + 2];
  var u = a[idx] + a[idx + 3];
  var s = a[idx] + a[idx + 3];
  return t + u - s;
}
var big = new Array(30000);
var small = new Array(8);
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) { acc += reader(small, big, 3); }
reader(small, big, 25000);
`,
	ReorderVariant: `
function filler(n) {
  var q = 0;
  for (var w = 0; w < n; w++) { q += w * w - (w >> 1); }
  return q;
}
function fetch(a, b, idx) {
  var t = b[idx + 2];
  t = t + b[idx + 1];
  var u = a[idx + 3];
  u = u + a[idx];
  var s = a[idx] + a[idx + 3];
  return u + t - s;
}
var big = new Array(30000);
var small = new Array(8);
var junk = 0;
var TRAIN = 2000;
for (var i = 0; i < TRAIN; i++) {
  junk += filler(5);
  junk += fetch(small, big, 3);
}
fetch(small, big, 25000);
`,
	SplitVariant: `
function inner(a, b, idx) {
  var t = b[idx + 1] + b[idx + 2];
  var u = a[idx] + a[idx + 3];
  var s = a[idx] + a[idx + 3];
  return t + u - s;
}
function outer(a, b, idx) { return inner(a, b, idx); }
var big = new Array(30000);
var small = new Array(8);
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) { acc += outer(small, big, 3); }
outer(small, big, 25000);
`,
}

var vuln11707 = Vuln{
	CVE:         "CVE-2019-11707",
	Engine:      "IonMonkey",
	CVSS:        8.8,
	HostPass:    "FoldTests",
	MatchPasses: []string{"FoldTests", "BoundsCheckElimination"},
	Outcome:     OutcomePayload,
	Reported:    "2019-04-15",
	Patched:     "2019-05-08",
	Description: "Dominating-test reasoning matches conditions by shape, ignoring memory dependencies: a branch re-testing an array length after a shrinking call is folded against the stale pre-shrink test, and the store's bounds check is eliminated against the stale length; the raw store lands on a freshly-planted array's header.",
	Demonstrator: `
function target() { return 1; }
var planted = 0;
function shrinkAndPlant(x) {
  x.length = 4;
  planted = new Array(2);
}
function t07(a, idx, v) {
  if (idx >= 0) {
    if (idx + 1 < a.length) {
      a[idx] = v;
      a[idx + 1] = v + 1;
      shrinkAndPlant(a);
      if (idx < a.length) { a[idx] = v * 2; }
      if (idx + 1 < a.length) { a[idx + 1] = v * 3; }
    }
  }
}
var TRAIN = 2000;
for (var i = 0; i < TRAIN; i++) { t07(new Array(8), 1, 5); }
var aAtk = new Array(8);
t07(aAtk, 3, 400000);
if (planted.length > 2) {
  planted[__codebase() + 1 - __addrof(planted)] = 1337;
  target();
}
`,
	ReorderVariant: `
function target() { return 1; }
var planted = 0;
var noise = 0;
function chaff(s) {
  var h = 0;
  for (var d = 0; d < s; d++) { h = h * 31 + d; }
  return h;
}
function cutAndDrop(x) {
  x.length = 4;
  planted = new Array(2);
}
function hammer(a, idx, v) {
  if (idx >= 0) {
    if (idx + 1 < a.length) {
      a[idx + 1] = v + 1;
      a[idx] = v;
      cutAndDrop(a);
      if (idx < a.length) { a[idx] = v * 2; }
      if (idx + 1 < a.length) { a[idx + 1] = v * 3; }
    }
  }
}
var TRAIN = 2000;
for (var i = 0; i < TRAIN; i++) {
  noise += chaff(4);
  hammer(new Array(8), 1, 5);
}
var aAtk = new Array(8);
hammer(aAtk, 3, 400000);
if (planted.length > 2) {
  planted[__codebase() + 1 - __addrof(planted)] = 1337;
  target();
}
`,
	SplitVariant: `
function target() { return 1; }
var planted = 0;
function dbl(v) { return v * 2; }
function tpl(v) { return v * 3; }
function shrinkAndPlant(x) {
  x.length = 4;
  planted = new Array(2);
}
function squeeze(a, idx, v) {
  var v2 = dbl(v);
  var v3 = tpl(v);
  if (idx >= 0) {
    if (idx + 1 < a.length) {
      a[idx] = v;
      a[idx + 1] = v + 1;
      shrinkAndPlant(a);
      if (idx < a.length) { a[idx] = v2; }
      if (idx + 1 < a.length) { a[idx + 1] = v3; }
    }
  }
}
var TRAIN = 2000;
for (var i = 0; i < TRAIN; i++) { squeeze(new Array(8), 1, 5); }
var aAtk = new Array(8);
squeeze(aAtk, 3, 400000);
if (planted.length > 2) {
  planted[__codebase() + 1 - __addrof(planted)] = 1337;
  target();
}
`,
}

var vuln9791 = Vuln{
	CVE:         "CVE-2019-9791",
	Engine:      "IonMonkey",
	CVSS:        9.8,
	HostPass:    "ApplyTypes",
	MatchPasses: []string{"ApplyTypes"},
	Outcome:     OutcomeCrash,
	Reported:    "2019-01-10",
	Patched:     "2019-01-18",
	Description: "Type speculation treated as infallible: monomorphic object parameters lose their unbox guards, so an attacker-supplied number is consumed as an object pointer — a wild dereference. ApplyTypes is mandatory, so JITBULL's response is to disable JIT compilation of the matching function (scenario 3).",
	Demonstrator: `
function confuse(a, b, c) {
  return a[0] * 2 + b[1] * 3 + c[2] * 5 + a.length + b.length * 7 - c.length;
}
var x = new Array(8);
var y = new Array(8);
var z = new Array(8);
x[0] = 1; y[1] = 2; z[2] = 3;
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) { acc += confuse(x, y, z); }
confuse(123456789.5, y, z);
`,
	ReorderVariant: `
function mixer(p) { return (p * 17) % 256; }
function typetrap(a, b, c) {
  return c[2] * 5 + a[0] * 2 + b[1] * 3 - c.length + b.length * 7 + a.length;
}
var z = new Array(8);
var y = new Array(8);
var x = new Array(8);
z[2] = 3; y[1] = 2; x[0] = 1;
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) {
  acc += mixer(i);
  acc += typetrap(x, y, z);
}
typetrap(987654321.25, y, z);
`,
	SplitVariant: `
function combine(u, w) { return u + w; }
function shell(a, b, c) {
  var u = a[0] * 2 + b[1] * 3 + c[2] * 5;
  var w = a.length + b.length * 7 - c.length;
  return combine(u, w);
}
var x = new Array(8);
var y = new Array(8);
var z = new Array(8);
x[0] = 1; y[1] = 2; z[2] = 3;
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) { acc += shell(x, y, z); }
shell(123456789.5, y, z);
`,
}

var vuln9792 = Vuln{
	CVE:         "CVE-2019-9792",
	Engine:      "IonMonkey",
	CVSS:        9.8,
	HostPass:    "Sink",
	MatchPasses: []string{"Sink"},
	Outcome:     OutcomeCrash,
	Reported:    "2019-01-28",
	Patched:     "2019-02-04",
	Description: "The sink pass moves a length load into one branch arm although the other arm's bounds checks also use it; those checks are patched with the optimized-out magic value, which is large enough to satisfy any index — wild out-of-bounds reads follow.",
	Demonstrator: `
function leak(a, b, c, flag, idx) {
  var n = a.length;
  var m = b.length;
  var k = c.length;
  if (flag) { return n + m * 2 + k * 3; }
  return a[idx] + b[idx + 1] + c[idx + 2];
}
var p = new Array(8);
var q = new Array(8);
var r = new Array(8);
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) {
  acc += leak(p, q, r, 1, 0);
  acc += leak(p, q, r, 0, 2);
}
leak(p, q, r, 0, 90000);
`,
}

var vuln9795 = Vuln{
	CVE:         "CVE-2019-9795",
	Engine:      "IonMonkey",
	CVSS:        8.8,
	HostPass:    "AliasAnalysis",
	MatchPasses: []string{"GVN"},
	Outcome:     OutcomePayload,
	Reported:    "2019-02-20",
	Patched:     "2019-02-26",
	Description: "Alias analysis miscategorizes setlength as an element store, so GVN merges lengths loaded before and after a shrink; the stale bounds check lets a store land in the tail reclaimed by the shrink — right on a freshly allocated array's header. The root cause lives in a mandatory pass, but the observable effect (and the neutralizing disable) is in GVN.",
	Demonstrator: `
function target() { return 1; }
function stale(a, idx, v) {
  var t = a[idx] + a[idx + 1];
  a.length = 4;
  var w = new Array(6);
  a[idx] = v;
  a[idx + 1] = v + 1;
  return w;
}
var TRAIN = 2000;
var keep = 0;
for (var i = 0; i < TRAIN; i++) { keep = stale(new Array(12), 1, 9); }
var w = stale(new Array(12), 4, 600000);
if (w.length > 6) {
  w[__codebase() + 1 - __addrof(w)] = 1337;
  target();
}
`,
}

var vuln9813 = Vuln{
	CVE:         "CVE-2019-9813",
	Engine:      "IonMonkey",
	CVSS:        9.8,
	HostPass:    "RangeAnalysis",
	MatchPasses: []string{"BoundsCheckElimination"},
	Outcome:     OutcomeCrash,
	Reported:    "2019-03-18",
	Patched:     "2019-03-22",
	Description: "Range analysis widens a `<=` loop bound as if it were `<`, so the induction variable is believed to stay one below the length; bounds check elimination removes the check the final iteration needs, and the one-past-the-end read walks off the last allocation — a segfault.",
	Demonstrator: `
function sumle(a) {
  var s = 0;
  for (var i = 0; i <= a.length; i++) { s = s + a[i]; }
  return s;
}
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) { acc += sumle(new Array(8)); }
acc += sumle(new Array(8));
`,
}

var vuln26952 = Vuln{
	CVE:         "CVE-2020-26952",
	Engine:      "IonMonkey",
	CVSS:        9.8,
	HostPass:    "RangeAnalysis",
	MatchPasses: []string{"BoundsCheckElimination"},
	Outcome:     OutcomePayload,
	Reported:    "2020-09-27",
	Patched:     "2020-10-02",
	Description: "A symbolic range bound is propagated unscaled through a multiplication (and, in the same window, loop-invariant loads are hoisted across calls), so scaled indexes are believed to stay below the array length; the eliminated check lets strided stores run past the array into its neighbour's header.",
	Demonstrator: `
function target() { return 1; }
function spread(a, n, v) {
  for (var i = 0; i < a.length; i++) {
    if (i >= n) { break; }
    a[i * 2] = v + i;
  }
  return a[0];
}
var TRAIN = 2000;
var acc = 0;
for (var i = 0; i < TRAIN; i++) { acc += spread(new Array(8), 3, 1); }
var aAtk = new Array(8);
var victim = new Array(8);
spread(aAtk, 8, 700000);
if (victim.length > 8) {
  victim[__codebase() + 1 - __addrof(victim)] = 1337;
  target();
}
`,
}

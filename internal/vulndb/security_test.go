package vulndb

import (
	"testing"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/variants"
)

// variantSet materializes the paper's four variant-generation approaches
// for a vulnerability: automated renaming and minification, plus the
// manually-written reordering (with decoy JITed functions) and
// sub-function-splitting variants.
func variantSet(t *testing.T, v Vuln) map[string]string {
	t.Helper()
	renamed, err := variants.Rename(v.Demonstrator)
	if err != nil {
		t.Fatalf("rename variant: %v", err)
	}
	minified, err := variants.Minify(v.Demonstrator)
	if err != nil {
		t.Fatalf("minify variant: %v", err)
	}
	return map[string]string{
		"rename":  renamed,
		"minify":  minified,
		"reorder": v.ReorderVariant,
		"split":   v.SplitVariant,
	}
}

// TestSecurityMatrix reproduces the paper's §VI-B evaluation: for each of
// the four primary vulnerabilities, install only the original
// demonstrator's DNA in the database, then run all four variants. Every
// variant must (a) still exploit an unprotected vulnerable engine and
// (b) be neutralized under JITBULL — the paper reports a 100% detection
// rate over this 4x4 matrix.
func TestSecurityMatrix(t *testing.T) {
	for _, v := range Primary() {
		v := v
		vdc, err := ExtractVDC(v, testThreshold)
		if err != nil {
			t.Fatalf("%s: extract: %v", v.CVE, err)
		}
		db := &core.Database{}
		db.Add(vdc)
		for name, src := range variantSet(t, v) {
			name, src := name, src
			t.Run(v.CVE+"/"+name, func(t *testing.T) {
				unprotected := Run(src, v.Bug(), nil, testThreshold)
				if !unprotected.Exploited() {
					t.Fatalf("variant lost its exploit (err=%v)", unprotected.Err)
				}
				protected := Run(src, v.Bug(), db, testThreshold)
				if protected.Exploited() {
					t.Fatalf("JITBULL missed the variant (crash=%v hijack=%v, matches=%v)",
						protected.Crashed, protected.Hijacked, protected.MatchedPasses())
				}
				if len(protected.Matches) == 0 {
					t.Fatalf("variant neutralized but no DNA match recorded")
				}
			})
		}
	}
}

// TestCrossImplementationDetection reproduces §VI-B(a): with one public
// implementation of CVE-2019-17026 in the database, the independent second
// implementation is detected and neutralized, with the GVN pass (the
// BoundCheck-suppressing phase) identified as dangerous.
func TestCrossImplementationDetection(t *testing.T) {
	v := vuln17026
	vdc, err := ExtractVDC(v, testThreshold)
	if err != nil {
		t.Fatal(err)
	}
	db := &core.Database{}
	db.Add(vdc)

	unprotected := Run(v.AltImplementation, v.Bug(), nil, testThreshold)
	if !unprotected.Hijacked {
		t.Fatalf("second implementation does not exploit unprotected engine (err=%v)", unprotected.Err)
	}
	protected := Run(v.AltImplementation, v.Bug(), db, testThreshold)
	if protected.Exploited() {
		t.Fatalf("JITBULL missed the independent implementation (matches=%v)", protected.MatchedPasses())
	}
	gvnMatched := false
	for _, p := range protected.MatchedPasses() {
		if p == "GVN" {
			gvnMatched = true
		}
	}
	if !gvnMatched {
		t.Fatalf("GVN not identified as the dangerous pass; matched %v", protected.MatchedPasses())
	}
}

// TestVariantsNeutralizedForAdditionalCVEs extends the matrix to the four
// bug-tracker-derived CVEs with the automated variants (the paper only had
// manual variants for the primary four).
func TestVariantsNeutralizedForAdditionalCVEs(t *testing.T) {
	for _, v := range Additional() {
		v := v
		vdc, err := ExtractVDC(v, testThreshold)
		if err != nil {
			t.Fatalf("%s: %v", v.CVE, err)
		}
		db := &core.Database{}
		db.Add(vdc)
		for _, name := range []string{"rename", "minify"} {
			name := name
			var src string
			var gerr error
			if name == "rename" {
				src, gerr = variants.Rename(v.Demonstrator)
			} else {
				src, gerr = variants.Minify(v.Demonstrator)
			}
			if gerr != nil {
				t.Fatal(gerr)
			}
			t.Run(v.CVE+"/"+name, func(t *testing.T) {
				unprotected := Run(src, v.Bug(), nil, testThreshold)
				if !unprotected.Exploited() {
					t.Fatalf("variant lost its exploit (err=%v)", unprotected.Err)
				}
				protected := Run(src, v.Bug(), db, testThreshold)
				if protected.Exploited() {
					t.Fatalf("JITBULL missed the variant (matches=%v)", protected.MatchedPasses())
				}
			})
		}
	}
}

// TestProtectionSurvivesMultiVDCDatabase checks detection with all eight
// fingerprints installed at once (the worst-case database of §VI-D).
func TestProtectionSurvivesMultiVDCDatabase(t *testing.T) {
	db, err := BuildDatabase(All(), testThreshold)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range All() {
		v := v
		t.Run(v.CVE, func(t *testing.T) {
			res := Run(v.Demonstrator, v.Bug(), db, testThreshold)
			if res.Exploited() {
				t.Fatalf("exploited with full database (matches=%v)", res.MatchedPasses())
			}
		})
	}
}

// TestDNARemovalReopensWindow: removing a fingerprint (patch applied in
// the paper's workflow — but here the bug is still unpatched) re-exposes
// the engine, confirming protection really came from the DNA entry.
func TestDNARemovalReopensWindow(t *testing.T) {
	v := vuln17026
	vdc, err := ExtractVDC(v, testThreshold)
	if err != nil {
		t.Fatal(err)
	}
	db := &core.Database{}
	db.Add(vdc)
	if res := Run(v.Demonstrator, v.Bug(), db, testThreshold); res.Exploited() {
		t.Fatal("protected run exploited")
	}
	db.Remove(v.CVE)
	if res := Run(v.Demonstrator, v.Bug(), db, testThreshold); !res.Exploited() {
		t.Fatal("removal of the fingerprint should re-expose the vulnerable engine")
	}
}

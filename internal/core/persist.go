package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"github.com/jitbull/jitbull/internal/faults"
)

// On-disk format of the VDC DNA database: a versioned envelope whose
// payload (the legacy v1 {"vdcs": ...} JSON) is covered by a CRC-32C
// checksum, so truncation and bit rot are detected instead of silently
// loading a wrong — and therefore wrongly-permissive — match index.
const (
	dbFormat  = "jitbull-dna"
	dbVersion = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// dbEnvelope is the v2 on-disk layout.
type dbEnvelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	CRC32C  string          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

// CorruptError reports that a database file exists but cannot be trusted:
// torn JSON, an unknown layout, a failed checksum, or an unsupported
// version. Callers on the protection path must treat it as "the database
// is unavailable" and fail safe toward NoJIT, never as "no protection
// configured".
type CorruptError struct {
	Path   string
	Reason string
	Err    error // underlying parse error, when any
}

// Error implements the error interface.
func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("corrupt DNA database %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("corrupt DNA database %s: %s", e.Path, e.Reason)
}

// Unwrap exposes the underlying cause.
func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err marks an untrustworthy database file.
func IsCorrupt(err error) bool {
	var c *CorruptError
	return errors.As(err, &c)
}

// Save writes the database in the checksummed v2 format. The write is
// atomic: the data goes to a temporary file in the destination directory
// which is then renamed over path, so a concurrent reader (or a crash
// mid-write) never observes a torn database.
func (db *Database) Save(path string) error { return db.SaveWith(path, nil) }

// SaveWith is Save with a fault-injection point (inj may be nil). All
// injected fault kinds — including panics — degrade to a returned error:
// persistence contains its own faults.
func (db *Database) SaveWith(path string, inj *faults.Injector) (err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := faults.FromPanic(r)
			if !ok {
				panic(r)
			}
			err = &faults.InjectedError{Fault: f}
		}
	}()
	if err := inj.Check(faults.PointDBSave, path); err != nil {
		return err
	}
	// A dangling chain ID would panic inside Delta.MarshalJSON; reject the
	// database with a descriptive error instead.
	if err := db.Validate(); err != nil {
		return fmt.Errorf("save DNA database: %w", err)
	}
	payload, err := json.MarshalIndent(db, "  ", "  ")
	if err != nil {
		return fmt.Errorf("marshal DNA database: %w", err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n  \"format\": %q,\n  \"version\": %d,\n  \"crc32c\": \"%08x\",\n  \"payload\": %s\n}\n",
		dbFormat, dbVersion, crc32.Checksum(payload, crcTable), payload)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".jitbull-db-*")
	if err != nil {
		return fmt.Errorf("save DNA database: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("save DNA database: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("save DNA database: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("save DNA database: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("save DNA database: %w", err)
	}
	return nil
}

// LoadDatabase reads a database written by Save. It accepts the v2
// checksummed envelope and the legacy v1 plain-JSON form (which has no
// checksum and is only recognized by its "vdcs" key — arbitrary JSON does
// not silently load as an empty database). Untrustworthy files return a
// *CorruptError; structurally-invalid databases (duplicate VDC names,
// dangling chain IDs) are rejected by Validate.
func LoadDatabase(path string) (*Database, error) { return LoadDatabaseWith(path, nil) }

// LoadDatabaseWith is LoadDatabase with a fault-injection point (inj may
// be nil). Injected panics degrade to returned errors.
func LoadDatabaseWith(path string, inj *faults.Injector) (db *Database, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := faults.FromPanic(r)
			if !ok {
				panic(r)
			}
			db, err = nil, &faults.InjectedError{Fault: f}
		}
	}()
	if err := inj.Check(faults.PointDBLoad, path); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}

	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, &CorruptError{Path: path, Reason: "not a JSON object (torn or truncated write?)", Err: err}
	}
	if _, versioned := probe["format"]; !versioned {
		// Legacy v1: a bare {"vdcs": ...} database. No checksum to verify.
		if _, ok := probe["vdcs"]; !ok {
			return nil, &CorruptError{Path: path, Reason: `unrecognized layout: neither a v2 envelope nor a legacy "vdcs" database`}
		}
		db := &Database{}
		if err := json.Unmarshal(data, db); err != nil {
			return nil, &CorruptError{Path: path, Reason: "legacy database does not parse", Err: err}
		}
		if err := db.Validate(); err != nil {
			return nil, fmt.Errorf("invalid DNA database %s: %w", path, err)
		}
		return db, nil
	}

	var env dbEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, &CorruptError{Path: path, Reason: "envelope does not parse", Err: err}
	}
	if env.Format != dbFormat {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unknown format %q", env.Format)}
	}
	if env.Version != dbVersion {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported version %d (want %d)", env.Version, dbVersion)}
	}
	if len(env.Payload) == 0 {
		return nil, &CorruptError{Path: path, Reason: "missing payload"}
	}
	sum := fmt.Sprintf("%08x", crc32.Checksum(env.Payload, crcTable))
	if !strings.EqualFold(sum, env.CRC32C) {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("checksum mismatch: stored crc32c %q, computed %q (bit rot or a tampered file)", env.CRC32C, sum)}
	}
	db = &Database{}
	if err := json.Unmarshal(env.Payload, db); err != nil {
		return nil, &CorruptError{Path: path, Reason: "payload does not parse despite a valid checksum", Err: err}
	}
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("invalid DNA database %s: %w", path, err)
	}
	return db, nil
}

// LoadDatabaseFailSafe loads the database for the protection path. On any
// failure — unreadable file, corruption, checksum mismatch, validation
// error, injected fault — it returns a non-nil fail-safe database (whose
// policy verdict is NoJIT for every function) alongside the error, so the
// caller keeps running protected: JIT disabled beats JIT unprotected.
// Exactly one of (clean database, nil) or (fail-safe database, error) is
// returned.
func LoadDatabaseFailSafe(path string) (*Database, error) {
	db, err := LoadDatabase(path)
	if err != nil {
		return NewFailSafeDatabase(), err
	}
	return db, nil
}

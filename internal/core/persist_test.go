package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/faults"
)

func sampleDB() *Database {
	db := &Database{}
	db.Add(VDC{CVE: "CVE-2019-9813", DNAs: []DNA{{FuncName: "trigger", Passes: map[string]Delta{
		"GVN":           MakeDelta([]string{"shape→load→add", "guard→load"}, nil),
		"AliasAnalysis": MakeDelta(nil, []string{"store→load"}),
	}}}})
	db.Add(VDC{CVE: "CVE-2020-9802", DNAs: []DNA{{FuncName: "cse", Passes: map[string]Delta{}}}})
	return db
}

func saveSample(t *testing.T) (*Database, string) {
	t.Helper()
	db := sampleDB()
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	return db, path
}

func TestSaveLoadV2RoundTrip(t *testing.T) {
	db, path := saveSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"format": "jitbull-dna"`, `"version": 2`, `"crc32c"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("saved file missing %s", want)
		}
	}
	loaded, err := LoadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.VDCs, loaded.VDCs) {
		t.Fatalf("round-trip mismatch:\n%+v\nvs\n%+v", db.VDCs, loaded.VDCs)
	}
	if loaded.FailSafe() {
		t.Error("a cleanly loaded database must not be in fail-safe mode")
	}
}

func TestLoadTruncatedFileIsCorrupt(t *testing.T) {
	_, path := saveSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadDatabase(path)
	if !IsCorrupt(err) {
		t.Fatalf("truncated file: err = %v, want CorruptError", err)
	}
}

func TestLoadBitFlippedPayloadIsCorrupt(t *testing.T) {
	_, path := saveSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the file — inside the payload, where a
	// plain JSON parse would happily accept the altered chain string.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadDatabase(path)
	if !IsCorrupt(err) {
		t.Fatalf("bit-flipped file: err = %v, want CorruptError", err)
	}
}

func TestLoadLegacyV1Layout(t *testing.T) {
	// Pre-envelope databases are a bare {"vdcs": ...} object.
	db := sampleDB()
	path := filepath.Join(t.TempDir(), "legacy.json")
	payload, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDatabase(path)
	if err != nil {
		t.Fatalf("legacy layout rejected: %v", err)
	}
	if !reflect.DeepEqual(db.VDCs, loaded.VDCs) {
		t.Fatal("legacy round-trip mismatch")
	}
}

func TestLoadRejectsForeignJSON(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json": "not json at all {{{",
		"foreign.json": `{"hello": "world"}`,
		"badfmt.json":  `{"format": "something-else", "version": 2, "payload": {}}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDatabase(path); !IsCorrupt(err) {
			t.Errorf("%s: err = %v, want CorruptError", name, err)
		}
	}
}

func TestValidateRejectsDuplicateAndEmptyCVE(t *testing.T) {
	dup := &Database{VDCs: []VDC{{CVE: "CVE-X"}, {CVE: "CVE-X"}}}
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate CVE: err = %v", err)
	}
	if err := dup.Save(filepath.Join(t.TempDir(), "dup.json")); err == nil {
		t.Error("Save accepted a database with duplicate VDC names")
	}
	empty := &Database{VDCs: []VDC{{CVE: ""}}}
	if err := empty.Validate(); err == nil || !strings.Contains(err.Error(), "empty CVE") {
		t.Errorf("empty CVE: err = %v", err)
	}
}

func TestValidateRejectsDanglingChainID(t *testing.T) {
	db := &Database{VDCs: []VDC{{CVE: "CVE-X", DNAs: []DNA{{FuncName: "f", Passes: map[string]Delta{
		"GVN": {Removed: []uint32{1 << 30}},
	}}}}}}
	err := db.Validate()
	if err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("dangling chain ID: err = %v", err)
	}
	for _, frag := range []string{"CVE-X", `"f"`, `"GVN"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %s", err, frag)
		}
	}
	if err := db.Save(filepath.Join(t.TempDir(), "dangling.json")); err == nil {
		t.Error("Save accepted a dangling chain reference")
	}
}

func TestPersistenceFaultInjection(t *testing.T) {
	// Both error and panic injections at the db.save / db.load points must
	// degrade into returned errors — never an escaped panic, never a file
	// half-written or a half-parsed database.
	for _, kind := range []faults.Kind{faults.KindError, faults.KindPanic} {
		t.Run(string(kind), func(t *testing.T) {
			db := sampleDB()
			path := filepath.Join(t.TempDir(), "db.json")
			inj := faults.NewInjector(1, faults.Rule{Point: faults.PointDBSave, Kind: kind, Times: 1})
			if err := db.SaveWith(path, inj); !faults.IsInjected(err) {
				t.Fatalf("SaveWith: err = %v, want injected fault surfaced as error", err)
			}
			if _, statErr := os.Stat(path); statErr == nil {
				t.Error("failed save left a file behind")
			}
			if err := db.SaveWith(path, inj); err != nil { // rule exhausted
				t.Fatal(err)
			}
			linj := faults.NewInjector(1, faults.Rule{Point: faults.PointDBLoad, Kind: kind, Times: 1})
			if _, err := LoadDatabaseWith(path, linj); !faults.IsInjected(err) {
				t.Fatalf("LoadDatabaseWith: err = %v, want injected fault surfaced as error", err)
			}
			if loaded, err := LoadDatabaseWith(path, linj); err != nil || loaded.Size() != 2 {
				t.Fatalf("retry after exhausted rule: %v", err)
			}
		})
	}
}

func TestLoadDatabaseFailSafe(t *testing.T) {
	// A broken database must come back as a usable fail-safe instance plus
	// the diagnostic error, so callers can keep running with JIT denied.
	path := filepath.Join(t.TempDir(), "missing.json")
	db, err := LoadDatabaseFailSafe(path)
	if err == nil {
		t.Fatal("missing file reported no error")
	}
	if db == nil || !db.FailSafe() {
		t.Fatal("fail-safe load did not return a fail-safe database")
	}
	_, good := saveSample(t)
	db, err = LoadDatabaseFailSafe(good)
	if err != nil || db.FailSafe() {
		t.Fatalf("healthy file: err=%v failSafe=%v", err, db.FailSafe())
	}
}

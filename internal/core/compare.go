package core

import (
	"sort"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/passes"
)

// CompareChains implements the COMPARECHAINS function of Algorithm 2: two
// sub-chain sets are similar when the number of chains in common reaches
// both the absolute threshold Thr and the fraction Ratio of the maximum
// possible (the smaller set's size). Inputs must be sorted sets (as
// produced by the extractor).
func CompareChains(a, b []string, ratio float64, thr int) bool {
	maxEq := len(a)
	if len(b) < maxEq {
		maxEq = len(b)
	}
	if maxEq == 0 {
		return false
	}
	eq := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			eq++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return eq >= thr && float64(eq) >= ratio*float64(maxEq)
}

// SimilarDeltas reports whether Δ_i^f ≈ Δ_i^f' — either the removed or
// the added sub-chain sets are similar (Algorithm 2, lines 14-16).
func SimilarDeltas(a, b Delta, ratio float64, thr int) bool {
	return CompareChains(a.Removed, b.Removed, ratio, thr) ||
		CompareChains(a.Added, b.Added, ratio, thr)
}

// Match records one DNA similarity found during a compilation.
type Match struct {
	CVE     string
	VDCFunc string
	Pass    string
}

// Detector is the Δ comparator plus go/no-go policy. It implements
// engine.Policy: install it with Engine.SetPolicy. With an empty database
// Active reports false and the engine skips all snapshotting (zero
// overhead, as §V requires).
type Detector struct {
	DB    *Database
	Thr   int
	Ratio float64

	// Matches accumulates every similarity found (for evaluation runs).
	Matches []Match
}

// NewDetector creates a detector over db with the paper's default
// threshold (3) and ratio (50%).
func NewDetector(db *Database) *Detector {
	return &Detector{DB: db, Thr: DefaultThr, Ratio: DefaultRatio}
}

var _ engine.Policy = (*Detector)(nil)

// Active implements engine.Policy.
func (d *Detector) Active() bool { return d.DB != nil && d.DB.Size() > 0 }

// BeginCompile implements engine.Policy: it returns an observer that
// extracts the function's DNA pass by pass, and a finish function that
// compares it against every VDC DNA in the database and produces the
// go/no-go decision.
func (d *Detector) BeginCompile(fnName string) (passes.Observer, func() engine.CompileDecision) {
	dna := DNA{FuncName: fnName, Passes: map[string]Delta{}}
	var de deltaExtractor
	obs := func(_ int, passName string, before, after *mir.Snapshot) {
		if before == nil || after == nil {
			return // pass skipped (already disabled)
		}
		delta := de.delta(before, after)
		if !delta.Empty() {
			dna.Passes[passName] = delta
		}
	}
	finish := func() engine.CompileDecision {
		disSet := map[string]bool{}
		for _, vdc := range d.DB.VDCs {
			for _, vdna := range vdc.DNAs {
				for passName, vdelta := range vdna.Passes {
					fdelta, ok := dna.Passes[passName]
					if !ok {
						continue
					}
					if SimilarDeltas(fdelta, vdelta, d.Ratio, d.Thr) {
						if !disSet[passName] {
							disSet[passName] = true
						}
						d.Matches = append(d.Matches, Match{CVE: vdc.CVE, VDCFunc: vdna.FuncName, Pass: passName})
					}
				}
			}
		}
		if len(disSet) == 0 {
			return engine.CompileDecision{}
		}
		names := make([]string, 0, len(disSet))
		noJIT := false
		for name := range disSet {
			if !passes.Disableable(name) {
				noJIT = true
			}
			names = append(names, name)
		}
		sort.Strings(names)
		if noJIT {
			// Scenario 3: a matched pass cannot be disabled — disable the
			// JIT for this function entirely (conservative approach, §IV-C).
			return engine.CompileDecision{NoJIT: true, DisabledPasses: names}
		}
		return engine.CompileDecision{DisabledPasses: names}
	}
	return obs, finish
}

// Recorder implements engine.Policy in record-only mode: it extracts the
// DNA of every function the engine compiles without ever vetoing a
// compilation. It is how VDC fingerprints are produced (step 1 of the
// paper's workflow): run the demonstrator code on the vulnerable engine
// with a Recorder installed, then store the collected DNAs in the
// database.
type Recorder struct {
	DNAs []DNA
}

var _ engine.Policy = (*Recorder)(nil)

// Active implements engine.Policy.
func (r *Recorder) Active() bool { return true }

// BeginCompile implements engine.Policy.
func (r *Recorder) BeginCompile(fnName string) (passes.Observer, func() engine.CompileDecision) {
	dna := DNA{FuncName: fnName, Passes: map[string]Delta{}}
	var de deltaExtractor
	obs := func(_ int, passName string, before, after *mir.Snapshot) {
		if before == nil || after == nil {
			return
		}
		delta := de.delta(before, after)
		if !delta.Empty() {
			dna.Passes[passName] = delta
		}
	}
	finish := func() engine.CompileDecision {
		r.DNAs = append(r.DNAs, dna)
		return engine.CompileDecision{}
	}
	return obs, finish
}

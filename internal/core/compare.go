package core

import (
	"sort"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/passes"
)

// CompareChains implements the COMPARECHAINS function of Algorithm 2: two
// sub-chain sets are similar when the number of chains in common reaches
// both the absolute threshold Thr and the fraction Ratio of the maximum
// possible (the smaller set's size). Inputs are sorted interned chain-ID
// sets (as produced by the extractor or InternChains); because chain IDs
// are bijective with chain contents, the verdict is identical to the
// string-based reference.
func CompareChains(a, b []uint32, ratio float64, thr int) bool {
	maxEq := len(a)
	if len(b) < maxEq {
		maxEq = len(b)
	}
	if maxEq == 0 {
		return false
	}
	eq := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			eq++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return eq >= thr && float64(eq) >= ratio*float64(maxEq)
}

// SimilarDeltas reports whether Δ_i^f ≈ Δ_i^f' — either the removed or
// the added sub-chain sets are similar (Algorithm 2, lines 14-16).
func SimilarDeltas(a, b Delta, ratio float64, thr int) bool {
	return CompareChains(a.Removed, b.Removed, ratio, thr) ||
		CompareChains(a.Added, b.Added, ratio, thr)
}

// Match records one DNA similarity found during a compilation, with full
// attribution of which VDC chain witnessed it.
type Match struct {
	CVE     string
	VDCFunc string
	Pass    string
	// ChainID is the interned ID of the witness chain — the smallest chain
	// shared between the candidate DNA and the matched delta on Side — or
	// NoChain when the match needed no shared chain (degenerate
	// thresholds). Render it with ChainString.
	ChainID uint32
	// Side is "removed" or "added" (which δ side witnessed), or "" when
	// ChainID is NoChain.
	Side string
}

// MatchKey is the identity projection of a Match: the (CVE, VDCFunc,
// Pass) triple that defines go/no-go decisions. Attribution fields are
// witnesses, not identity — two detectors are decision-equivalent when
// their match KEY sets agree.
type MatchKey struct {
	CVE     string
	VDCFunc string
	Pass    string
}

// Key projects the match to its identity.
func (m Match) Key() MatchKey { return MatchKey{CVE: m.CVE, VDCFunc: m.VDCFunc, Pass: m.Pass} }

// Chain renders the witness chain ("" when there is none).
func (m Match) Chain() string {
	if m.ChainID == NoChain {
		return ""
	}
	return ChainString(m.ChainID)
}

// Detector is the Δ comparator plus go/no-go policy. It implements
// engine.Policy: install it with Engine.SetPolicy. With an empty database
// Active reports false and the engine skips all snapshotting (zero
// overhead, as §V requires). Comparison goes through the database's
// compiled MatchIndex, so a compilation's finish step visits only deltas
// sharing at least one chain with the candidate DNA.
type Detector struct {
	DB    *Database
	Thr   int
	Ratio float64

	// Matches accumulates every distinct (CVE, VDCFunc, Pass) similarity
	// found (for evaluation runs), each carrying the witness-chain
	// attribution of its first sighting. Duplicates across compilations are
	// suppressed by identity (MatchKey), so the slice stays bounded by the
	// database size on long runs; call Reset to reuse the detector across
	// runs.
	Matches []Match

	// Audit, when set, receives one structured event per go/no-go verdict,
	// with the full match attribution (CVE, VDC function, pass, witness
	// chain).
	Audit *obs.AuditLog
	// Metrics, when set, receives the "dna.delta_chains" histogram (per-pass
	// Δ chain-set sizes of candidate DNAs) and "dna.index_probes" (entries
	// scored per match-index query).
	Metrics *obs.Registry

	seen      map[MatchKey]struct{}
	scratch   matchScratch
	found     []Match
	last      *verdictPayload // most recent Decide verdict (see cachepolicy.go)
	deltaHist *obs.Histogram
	probeHist *obs.Histogram
}

// NewDetector creates a detector over db with the paper's default
// threshold (3) and ratio (50%).
func NewDetector(db *Database) *Detector {
	return &Detector{DB: db, Thr: DefaultThr, Ratio: DefaultRatio}
}

var _ engine.Policy = (*Detector)(nil)

// Active implements engine.Policy. A fail-safe database is active even
// though it is empty: its verdict (NoJIT for everything) must reach the
// engine.
func (d *Detector) Active() bool {
	return d.DB != nil && (d.DB.FailSafe() || d.DB.Size() > 0)
}

// Reset clears the accumulated matches so the detector can be reused
// across evaluation runs.
func (d *Detector) Reset() {
	d.Matches = nil
	d.seen = nil
}

// BeginCompile implements engine.Policy: it returns an observer that
// extracts the function's DNA pass by pass, and a finish function that
// produces the go/no-go decision via Decide.
func (d *Detector) BeginCompile(fnName string) (passes.Observer, func() engine.CompileDecision) {
	if d.DB != nil && d.DB.FailSafe() {
		// The real database could not be trusted: no DNA to compare
		// against, so take no snapshots and veto every compilation.
		return nil, func() engine.CompileDecision {
			d.Audit.Record(obs.AuditEvent{
				Func:    fnName,
				Verdict: obs.VerdictNoJIT,
				Reason:  "fail-safe database: vetoing every compilation",
			})
			return engine.CompileDecision{NoJIT: true}
		}
	}
	dna := DNA{FuncName: fnName, Passes: map[string]Delta{}}
	de := newDeltaExtractor()
	observe := func(_ int, passName string, before, after *mir.Snapshot) {
		if before == nil || after == nil {
			return // pass skipped (already disabled)
		}
		delta := de.delta(before, after)
		if !delta.Empty() {
			dna.Passes[passName] = delta
		}
	}
	finish := func() engine.CompileDecision {
		de.release()
		return d.Decide(&dna)
	}
	return observe, finish
}

// Decide compares one function's DNA against the whole database (the
// finish step of Algorithm 2) and produces the go/no-go decision. Its
// verdicts are defined to be identical to ReferenceDetector.Decide's.
func (d *Detector) Decide(dna *DNA) engine.CompileDecision {
	if d.DB == nil {
		return engine.CompileDecision{}
	}
	if d.DB.FailSafe() {
		return engine.CompileDecision{NoJIT: true}
	}
	if d.Metrics != nil && d.deltaHist == nil {
		d.deltaHist = d.Metrics.Histogram("dna.delta_chains", obs.SizeBuckets)
		d.probeHist = d.Metrics.Histogram("dna.index_probes", obs.SizeBuckets)
	}
	idx := d.DB.Index(d.Thr)
	found := d.found[:0]
	for passName, fdelta := range dna.Passes {
		passName := passName
		d.deltaHist.Observe(int64(len(fdelta.Removed) + len(fdelta.Added)))
		idx.query(passName, fdelta, d.Ratio, d.Thr, &d.scratch, func(cve, vdcFunc string, chain uint32, side matchSide) {
			found = append(found, Match{
				CVE: cve, VDCFunc: vdcFunc, Pass: passName,
				ChainID: chain, Side: side.String(),
			})
		})
		d.probeHist.Observe(int64(d.scratch.probes))
	}
	d.found = found[:0]
	if len(found) == 0 {
		d.last = &verdictPayload{}
		d.Audit.Record(obs.AuditEvent{Func: dna.FuncName, Verdict: obs.VerdictGo})
		return engine.CompileDecision{}
	}
	// dna.Passes iteration is randomized; order deterministically before
	// recording (attribution fields break the rare key tie).
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if a.CVE != b.CVE {
			return a.CVE < b.CVE
		}
		if a.VDCFunc != b.VDCFunc {
			return a.VDCFunc < b.VDCFunc
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		return a.ChainID < b.ChainID
	})
	if d.seen == nil {
		d.seen = map[MatchKey]struct{}{}
	}
	disSet := map[string]bool{}
	for _, m := range found {
		disSet[m.Pass] = true
		if _, dup := d.seen[m.Key()]; !dup {
			d.seen[m.Key()] = struct{}{}
			d.Matches = append(d.Matches, m)
		}
	}
	names := make([]string, 0, len(disSet))
	noJIT := false
	for name := range disSet {
		if !passes.Disableable(name) {
			noJIT = true
		}
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the verdict for the shared compilation cache (the found
	// slice's backing array is reused across compilations, so copy).
	d.last = &verdictPayload{found: append([]Match(nil), found...), names: names, noJIT: noJIT}
	if d.Audit != nil {
		verdict := obs.VerdictDisablePass
		if noJIT {
			verdict = obs.VerdictNoJIT
		}
		am := make([]obs.AuditMatch, len(found))
		for i, m := range found {
			am[i] = obs.AuditMatch{
				CVE: m.CVE, VDCFunc: m.VDCFunc, Pass: m.Pass,
				ChainID: m.ChainID, Side: m.Side, Chain: m.Chain(),
			}
		}
		d.Audit.Record(obs.AuditEvent{
			Func:           dna.FuncName,
			Verdict:        verdict,
			DisabledPasses: names,
			Matches:        am,
		})
	}
	if noJIT {
		// Scenario 3: a matched pass cannot be disabled — disable the
		// JIT for this function entirely (conservative approach, §IV-C).
		return engine.CompileDecision{NoJIT: true, DisabledPasses: names}
	}
	return engine.CompileDecision{DisabledPasses: names}
}

// Recorder implements engine.Policy in record-only mode: it extracts the
// DNA of every function the engine compiles without ever vetoing a
// compilation. It is how VDC fingerprints are produced (step 1 of the
// paper's workflow): run the demonstrator code on the vulnerable engine
// with a Recorder installed, then store the collected DNAs in the
// database.
type Recorder struct {
	DNAs []DNA
}

var _ engine.Policy = (*Recorder)(nil)

// Active implements engine.Policy.
func (r *Recorder) Active() bool { return true }

// BeginCompile implements engine.Policy.
func (r *Recorder) BeginCompile(fnName string) (passes.Observer, func() engine.CompileDecision) {
	dna := DNA{FuncName: fnName, Passes: map[string]Delta{}}
	de := newDeltaExtractor()
	observe := func(_ int, passName string, before, after *mir.Snapshot) {
		if before == nil || after == nil {
			return
		}
		delta := de.delta(before, after)
		if !delta.Empty() {
			dna.Passes[passName] = delta
		}
	}
	finish := func() engine.CompileDecision {
		de.release()
		r.DNAs = append(r.DNAs, dna)
		return engine.CompileDecision{}
	}
	return observe, finish
}

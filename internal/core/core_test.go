package core

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/jitbull/jitbull/internal/mir"
)

// snap builds a snapshot from "id opcode [operand ids...]" lines.
func snap(lines ...string) *mir.Snapshot {
	s := &mir.Snapshot{FuncName: "t"}
	for _, l := range lines {
		parts := strings.Fields(l)
		in := mir.SnapInstr{Opcode: parts[1]}
		in.ID = atoi(parts[0])
		for _, p := range parts[2:] {
			in.Operands = append(in.Operands, atoi(p))
		}
		s.Instrs = append(s.Instrs, in)
	}
	return s
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func TestBuildGraphRootsAndChains(t *testing.T) {
	// Mirrors the paper's Listing 1 shape: boundscheck(unbox,
	// initializedlength(elements(unbox))).
	s := snap(
		"1 parameter",
		"2 unbox 1",
		"6 elements 2",
		"7 initializedlength 6",
		"3 constant",
		"8 boundscheck 3 7",
	)
	chains := chainStringsOf(s)
	want := []string{
		"boundscheck→constant",
		"boundscheck→initializedlength→elements→unbox→parameter",
	}
	if !reflect.DeepEqual(chains, want) {
		t.Fatalf("chains = %v, want %v", chains, want)
	}
	if ref := refChainsOf(s); !reflect.DeepEqual(ref, want) {
		t.Fatalf("reference chains = %v, want %v", ref, want)
	}
}

// chainStringsOf runs the interned chain enumeration and renders the
// result as sorted strings.
func chainStringsOf(s *mir.Snapshot) []string {
	de := newDeltaExtractor()
	defer de.release()
	return ChainStrings(de.chainsOf(s))
}

func TestChainsCutCycles(t *testing.T) {
	// phi <-> add cycle, as loop headers produce.
	s := snap(
		"1 constant",
		"2 phi 1 3",
		"3 add 2 1",
		"4 return 3",
	)
	chains := chainStringsOf(s)
	if len(chains) == 0 {
		t.Fatal("no chains from cyclic graph")
	}
	for _, c := range chains {
		if strings.Count(c, "phi") > 2 {
			t.Fatalf("cycle not cut: %s", c)
		}
	}
}

func TestAlignDiffPaperExample(t *testing.T) {
	// §IV-D: C_{i-1} = A→B→C→D, C_i = B→C→E
	// δ⁻ = {A→B, C→D}, δ⁺ = {C→E}.
	removed, added := alignDiff(
		[]string{"A", "B", "C", "D"},
		[]string{"B", "C", "E"},
	)
	if !reflect.DeepEqual(removed, []string{"A→B", "C→D"}) {
		t.Errorf("removed = %v", removed)
	}
	if !reflect.DeepEqual(added, []string{"C→E"}) {
		t.Errorf("added = %v", added)
	}
}

func TestAlignDiffMiddleRun(t *testing.T) {
	removed, added := alignDiff(
		[]string{"A", "X", "B"},
		[]string{"A", "B"},
	)
	if !reflect.DeepEqual(removed, []string{"A→X→B"}) {
		t.Errorf("removed = %v", removed)
	}
	if len(added) != 0 {
		t.Errorf("added = %v", added)
	}
}

func TestExtractDeltaIdenticalSnapshotsIsEmpty(t *testing.T) {
	s := snap("1 parameter", "2 unbox 1", "3 return 2")
	d := ExtractDelta(s, s)
	if !d.Empty() {
		t.Fatalf("delta of identical IRs must be empty: %+v", d)
	}
}

func TestExtractDeltaRemovedInstruction(t *testing.T) {
	before := snap(
		"1 parameter",
		"2 unbox 1",
		"3 elements 2",
		"4 initializedlength 3",
		"5 constant",
		"6 boundscheck 5 4",
		"7 loadelement 3 5",
		"8 return 7",
	)
	after := snap(
		"1 parameter",
		"2 unbox 1",
		"3 elements 2",
		"4 initializedlength 3",
		"5 constant",
		"7 loadelement 3 5",
		"8 return 7",
	)
	d := ExtractDelta(before, after)
	joined := strings.Join(ChainStrings(d.Removed), " | ")
	if !strings.Contains(joined, "boundscheck") {
		t.Fatalf("removed chains should mention boundscheck: %v", d.Removed)
	}
	// Renumbering between snapshots must not matter: shift all post IDs.
	after2 := snap(
		"11 parameter",
		"12 unbox 11",
		"13 elements 12",
		"14 initializedlength 13",
		"15 constant",
		"17 loadelement 13 15",
		"18 return 17",
	)
	d2 := ExtractDelta(before, after2)
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("delta must be ID-independent:\n%v\nvs\n%v", d, d2)
	}
}

func TestCompareChains(t *testing.T) {
	mk := func(n int, prefix string) []string {
		var out []string
		for i := 0; i < n; i++ {
			out = append(out, prefix+string(rune('a'+i)))
		}
		return out
	}
	tests := []struct {
		a, b []string
		thr  int
		rat  float64
		want bool
	}{
		{mk(4, "x"), mk(4, "x"), 3, 0.5, true},                                                // identical
		{mk(2, "x"), mk(2, "x"), 3, 0.5, false},                                               // below Thr
		{mk(10, "x"), mk(10, "y"), 3, 0.5, false},                                             // disjoint
		{append(mk(3, "x"), mk(9, "y")...), mk(3, "x"), 3, 0.5, true},                         // 3 of min(12,3)=3
		{append(mk(3, "x"), mk(9, "y")...), append(mk(3, "x"), mk(9, "z")...), 3, 0.5, false}, // 3 of 12 < 50%
		{nil, mk(3, "x"), 3, 0.5, false},
	}
	for i, tt := range tests {
		a := InternChains(tt.a)
		b := InternChains(tt.b)
		if got := CompareChains(a, b, tt.rat, tt.thr); got != tt.want {
			t.Errorf("case %d: got %v, want %v", i, got, tt.want)
		}
		ra := sortedSet(append([]string(nil), tt.a...))
		rb := sortedSet(append([]string(nil), tt.b...))
		if got := RefCompareChains(ra, rb, tt.rat, tt.thr); got != tt.want {
			t.Errorf("case %d (reference): got %v, want %v", i, got, tt.want)
		}
	}
}

func TestCompareChainsPropertySymmetric(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		mk := func(v []uint8) []uint32 {
			var out []string
			for _, x := range v {
				out = append(out, strings.Repeat("c", int(x%7)+1))
			}
			return InternChains(out)
		}
		a, b := mk(xs), mk(ys)
		return CompareChains(a, b, 0.5, 3) == CompareChains(b, a, 0.5, 3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarDeltasEitherSideSuffices(t *testing.T) {
	a := MakeDelta([]string{"p", "q", "r"}, nil)
	b := MakeDelta([]string{"p", "q", "r"}, nil)
	if !SimilarDeltas(a, b, 0.5, 3) {
		t.Error("removed-side similarity not detected")
	}
	c := MakeDelta(nil, []string{"p", "q", "r"})
	d := MakeDelta(nil, []string{"p", "q", "r"})
	if !SimilarDeltas(c, d, 0.5, 3) {
		t.Error("added-side similarity not detected")
	}
	if SimilarDeltas(a, d, 0.5, 3) {
		t.Error("removed-vs-added must not match")
	}
}

func TestDatabaseAddRemoveSaveLoad(t *testing.T) {
	db := &Database{}
	db.Add(VDC{CVE: "CVE-1", DNAs: []DNA{{FuncName: "f", Passes: map[string]Delta{
		"GVN": MakeDelta([]string{"a→b", "c→d", "e→f"}, nil),
	}}}})
	db.Add(VDC{CVE: "CVE-2", DNAs: []DNA{{FuncName: "g", Passes: map[string]Delta{}}}})
	if db.Size() != 2 {
		t.Fatalf("size = %d", db.Size())
	}
	db.Add(VDC{CVE: "CVE-1", DNAs: nil}) // replace
	if db.Size() != 2 {
		t.Fatalf("size after replace = %d", db.Size())
	}
	if !db.Remove("CVE-2") || db.Remove("CVE-2") {
		t.Fatal("remove semantics")
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the VDC payload only: the compiled-index cache (unexported)
	// is per-instance state, not part of the database's identity.
	if !reflect.DeepEqual(db.VDCs, loaded.VDCs) {
		t.Fatalf("round-trip mismatch:\n%+v\nvs\n%+v", db.VDCs, loaded.VDCs)
	}
}

func TestSortedSetDedups(t *testing.T) {
	got := sortedSet([]string{"b", "a", "b", "c", "a"})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("sortedSet = %v", got)
	}
}

func TestDiffChainSetsWholeChains(t *testing.T) {
	pre := []string{"a→b→c", "x→y"}
	post := []string{"a→b→c"}
	removed, added := refDiffChainSets(pre, post)
	// x→y has no counterpart with common elements; emitted whole.
	if len(removed) != 1 || removed[0] != "x→y" {
		t.Fatalf("removed = %v", removed)
	}
	if len(added) != 0 {
		t.Fatalf("added = %v", added)
	}
	de := newDeltaExtractor()
	defer de.release()
	rem, add := de.diffChainSets(InternChains(pre), InternChains(post))
	if got := ChainStrings(rem); !reflect.DeepEqual(got, removed) {
		t.Fatalf("interned removed = %v, want %v", got, removed)
	}
	if len(add) != 0 {
		t.Fatalf("interned added = %v", ChainStrings(add))
	}
}

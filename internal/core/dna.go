// Package core implements JITBULL, the paper's contribution: extraction of
// "JIT DNA" — the per-pass effects of the optimization pipeline on a JITed
// function's IR (Algorithm 1) — and comparison of a running function's DNA
// against the DNA of known vulnerability demonstrator codes (Algorithm 2),
// driving a go/no-go policy that disables matched optimization passes (or,
// when a matched pass is mandatory, JIT compilation of that function).
//
// The pipeline runs entirely on interned chain IDs (see Interner) and
// compares candidates through an inverted index compiled from the database
// (see MatchIndex); reference.go retains the original string-based
// implementation, which the equivalence tests hold the fast path to.
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Default comparator settings from §IV-E of the paper: at least Thr
// sub-chains in common, and at least Ratio of the maximum possible.
const (
	DefaultThr   = 3
	DefaultRatio = 0.5
)

// Delta is Δ_i^f: the effect of optimization pass i on function f's IR,
// expressed as the sets of removed (δ⁻) and added (δ⁺) dependency
// sub-chains. Chains are interned: Removed and Added are sorted sets of
// dense chain IDs; the "→"-joined string rendering (the IDs are renumbered
// between passes, so content — not numbering — is what identifies a chain)
// appears only in the JSON form, which is unchanged from earlier versions.
type Delta struct {
	Removed []uint32
	Added   []uint32
}

// deltaJSON is the serialized (and historical) form of a Delta.
type deltaJSON struct {
	Removed []string `json:"removed,omitempty"`
	Added   []string `json:"added,omitempty"`
}

// MarshalJSON renders the chain sets as lexicographically sorted strings.
func (d Delta) MarshalJSON() ([]byte, error) {
	return json.Marshal(deltaJSON{Removed: ChainStrings(d.Removed), Added: ChainStrings(d.Added)})
}

// UnmarshalJSON interns the string chains of the serialized form.
func (d *Delta) UnmarshalJSON(data []byte) error {
	var j deltaJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	d.Removed = InternChains(j.Removed)
	d.Added = InternChains(j.Added)
	return nil
}

// MakeDelta interns string chain sets into a Delta (tools and tests; the
// extractor produces interned deltas directly).
func MakeDelta(removed, added []string) Delta {
	return Delta{Removed: InternChains(removed), Added: InternChains(added)}
}

// Ref renders the delta in the reference (string) representation.
func (d Delta) Ref() RefDelta {
	return RefDelta{Removed: ChainStrings(d.Removed), Added: ChainStrings(d.Added)}
}

// Empty reports whether the pass had no observable effect.
func (d Delta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// DNA is Δ^f = (Δ_1^f ... Δ_n^f) for one JITed function. Passes with an
// empty delta are omitted (they can never reach the comparison threshold).
type DNA struct {
	FuncName string           `json:"func"`
	Passes   map[string]Delta `json:"passes"`
}

// Ref renders the DNA in the reference (string) representation.
func (dna *DNA) Ref() *RefDNA {
	rd := &RefDNA{FuncName: dna.FuncName, Passes: make(map[string]RefDelta, len(dna.Passes))}
	for name, d := range dna.Passes {
		rd.Passes[name] = d.Ref()
	}
	return rd
}

// VDC is the stored fingerprint of one vulnerability demonstrator code:
// the DNA of every function the demonstrator got JIT-compiled.
type VDC struct {
	CVE  string `json:"cve"`
	DNAs []DNA  `json:"dnas"`
}

// Database is the JITBULL VDC DNA database. Entries are installed when a
// vulnerability is reported and removed when its patch ships. The zero
// value is an empty, usable database. Mutations (Add/Remove) must not run
// concurrently with use, but a fully built database may be shared by many
// detectors across goroutines: reads are lock-free and the compiled match
// index is built once under an internal lock.
type Database struct {
	VDCs []VDC `json:"vdcs"`

	// failSafe marks a stand-in for a database that could not be loaded
	// (corrupt, unreadable, invalid): the detector's verdict over it is
	// NoJIT for every function. See NewFailSafeDatabase.
	failSafe bool

	// mu guards the compiled-index cache; indexes is keyed by the Thr the
	// index was pruned for and invalidated wholesale on any mutation.
	mu      sync.Mutex
	indexes map[int]*MatchIndex

	// gen identifies this database's current contents for cross-engine
	// verdict caching: process-unique, assigned lazily on first use and
	// re-assigned on every mutation. See Generation.
	gen atomic.Uint64

	// fp caches the content fingerprint (see Fingerprint); 0 = not yet
	// computed, cleared on every mutation.
	fp atomic.Uint64
}

// dbGen is the process-wide generation allocator; 0 is reserved for
// "not yet assigned".
var dbGen atomic.Uint64

// Generation returns a process-unique identifier of this database
// instance and its current contents. Unlike the raw pointer, a generation
// is never reused: a different database — or this database after an
// Add/Remove — always reports a different value, so a verdict cached
// against an earlier database can never be replayed against a later one.
// Safe for concurrent use by fully built (no longer mutating) databases.
func (db *Database) Generation() uint64 {
	for {
		if g := db.gen.Load(); g != 0 {
			return g
		}
		db.gen.CompareAndSwap(0, dbGen.Add(1))
	}
}

// Fingerprint returns a content-addressed identity of the database: a
// digest of its serialized VDC fingerprints, stable across processes and
// across structurally identical copies. This is what the persistent
// verdict store keys on — a verdict is a deterministic function of (DNA,
// database contents, thresholds), so two databases with equal contents
// may soundly share cached verdicts even across a restart, which the
// process-unique Generation cannot express. Any Add/Remove moves the
// database to a fresh fingerprint. Safe for concurrent use by fully
// built (no longer mutating) databases.
func (db *Database) Fingerprint() (fp uint64) {
	// A dangling chain ID panics inside Delta.MarshalJSON; such a database
	// has no trustworthy identity (Validate rejects it on every persistence
	// path), so degrade to the process-unique generation.
	defer func() {
		if recover() != nil {
			fp = db.Generation()
		}
	}()
	for {
		if f := db.fp.Load(); f != 0 {
			return f
		}
		payload, err := json.Marshal(db.VDCs)
		if err != nil {
			// A database that cannot serialize (dangling chain IDs) has no
			// trustworthy identity; Validate rejects it on every persistence
			// path. Degrade to the process-unique generation.
			return db.Generation()
		}
		sum := sha256.Sum256(payload)
		f := binary.LittleEndian.Uint64(sum[:8]) | 1 // 0 is reserved
		db.fp.CompareAndSwap(0, f)
	}
}

// NewFailSafeDatabase returns the database substituted when the real one
// cannot be trusted: it matches nothing but drives the policy to NoJIT
// for every compilation, so a corrupted database degrades to "JIT
// disabled" rather than "protection silently off" — the same conservative
// direction the paper's scenario 3 takes for unpatchable matches.
func NewFailSafeDatabase() *Database { return &Database{failSafe: true} }

// FailSafe reports whether this is a fail-safe stand-in database.
func (db *Database) FailSafe() bool { return db.failSafe }

// mutated invalidates the compiled-index cache and moves the database to
// a fresh generation, invalidating any cached verdicts keyed to the old
// contents.
func (db *Database) mutated() {
	db.mu.Lock()
	db.indexes = nil
	db.mu.Unlock()
	db.gen.Store(dbGen.Add(1))
	db.fp.Store(0)
}

// Add installs (or replaces) the fingerprint for a CVE.
func (db *Database) Add(v VDC) {
	db.Remove(v.CVE)
	db.VDCs = append(db.VDCs, v)
	db.mutated()
}

// Remove deletes the fingerprint for a CVE (the patch was applied).
// It reports whether an entry was present.
func (db *Database) Remove(cve string) bool {
	for i, v := range db.VDCs {
		if v.CVE == cve {
			db.VDCs = append(db.VDCs[:i], db.VDCs[i+1:]...)
			db.mutated()
			return true
		}
	}
	return false
}

// Size returns the number of installed VDC fingerprints.
func (db *Database) Size() int { return len(db.VDCs) }

// CVEs lists the installed CVE identifiers in order.
func (db *Database) CVEs() []string {
	out := make([]string, len(db.VDCs))
	for i, v := range db.VDCs {
		out[i] = v.CVE
	}
	return out
}

// Index returns the compiled inverted match index for the given Thr,
// building and caching it on first use. Safe for concurrent use.
func (db *Database) Index(thr int) *MatchIndex {
	db.mu.Lock()
	defer db.mu.Unlock()
	if ix, ok := db.indexes[thr]; ok {
		return ix
	}
	ix := buildMatchIndex(db, thr)
	if db.indexes == nil {
		db.indexes = map[int]*MatchIndex{}
	}
	db.indexes[thr] = ix
	return ix
}

// Persistence (Save, LoadDatabase and the checksummed on-disk envelope)
// lives in persist.go; structural validation in validate.go.

// Package core implements JITBULL, the paper's contribution: extraction of
// "JIT DNA" — the per-pass effects of the optimization pipeline on a JITed
// function's IR (Algorithm 1) — and comparison of a running function's DNA
// against the DNA of known vulnerability demonstrator codes (Algorithm 2),
// driving a go/no-go policy that disables matched optimization passes (or,
// when a matched pass is mandatory, JIT compilation of that function).
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Default comparator settings from §IV-E of the paper: at least Thr
// sub-chains in common, and at least Ratio of the maximum possible.
const (
	DefaultThr   = 3
	DefaultRatio = 0.5
)

// Delta is Δ_i^f: the effect of optimization pass i on function f's IR,
// expressed as the sets of removed (δ⁻) and added (δ⁺) dependency
// sub-chains. Chains are rendered as opcode sequences joined by "→" (the
// IDs are renumbered between passes, so content — not numbering — is what
// identifies a chain).
type Delta struct {
	Removed []string `json:"removed,omitempty"`
	Added   []string `json:"added,omitempty"`
}

// Empty reports whether the pass had no observable effect.
func (d Delta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// DNA is Δ^f = (Δ_1^f ... Δ_n^f) for one JITed function. Passes with an
// empty delta are omitted (they can never reach the comparison threshold).
type DNA struct {
	FuncName string           `json:"func"`
	Passes   map[string]Delta `json:"passes"`
}

// VDC is the stored fingerprint of one vulnerability demonstrator code:
// the DNA of every function the demonstrator got JIT-compiled.
type VDC struct {
	CVE  string `json:"cve"`
	DNAs []DNA  `json:"dnas"`
}

// Database is the JITBULL VDC DNA database. Entries are installed when a
// vulnerability is reported and removed when its patch ships.
type Database struct {
	VDCs []VDC `json:"vdcs"`
}

// Add installs (or replaces) the fingerprint for a CVE.
func (db *Database) Add(v VDC) {
	db.Remove(v.CVE)
	db.VDCs = append(db.VDCs, v)
}

// Remove deletes the fingerprint for a CVE (the patch was applied).
// It reports whether an entry was present.
func (db *Database) Remove(cve string) bool {
	for i, v := range db.VDCs {
		if v.CVE == cve {
			db.VDCs = append(db.VDCs[:i], db.VDCs[i+1:]...)
			return true
		}
	}
	return false
}

// Size returns the number of installed VDC fingerprints.
func (db *Database) Size() int { return len(db.VDCs) }

// CVEs lists the installed CVE identifiers in order.
func (db *Database) CVEs() []string {
	out := make([]string, len(db.VDCs))
	for i, v := range db.VDCs {
		out[i] = v.CVE
	}
	return out
}

// MarshalJSON renders the database deterministically.
func (db *Database) Save(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal DNA database: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDatabase reads a database written by Save.
func LoadDatabase(path string) (*Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var db Database
	if err := json.Unmarshal(data, &db); err != nil {
		return nil, fmt.Errorf("parse DNA database %s: %w", path, err)
	}
	return &db, nil
}

// sortedSet sorts and dedups a chain list in place, returning it.
func sortedSet(chains []string) []string {
	if len(chains) == 0 {
		return nil
	}
	sort.Strings(chains)
	out := chains[:1]
	for _, c := range chains[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

package core

// Golden-equivalence tests: the interned fast path (extract.go, index.go,
// compare.go) must be indistinguishable — chain for chain, decision for
// decision — from the retained string-based reference (reference.go).

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/mir"
)

// fuzzOpcodes is the opcode alphabet for generated snapshots. Multiple
// tokens with shared prefixes exercise LCS tie-breaks; a token that sorts
// before and after the others exercises candidate ordering.
var fuzzOpcodes = []string{
	"add", "boundscheck", "constant(0)", "constant(1)",
	"elements", "loadelement", "phi", "unbox",
}

// snapshotFromBytes decodes one synthetic snapshot from a byte stream.
// Layout per instruction: opcode selector, operand count (0-3), then one
// byte per operand selecting a target instruction slot (may be dangling
// or self/backward-referential — the graph builder must tolerate both).
// idStride spreads instruction IDs out to hit the sparse-lookup path.
func snapshotFromBytes(data []byte, n int, idStride int) (*mir.Snapshot, []byte) {
	s := &mir.Snapshot{FuncName: "fuzz"}
	for i := 0; i < n && len(data) > 0; i++ {
		op := fuzzOpcodes[int(data[0])%len(fuzzOpcodes)]
		data = data[1:]
		in := mir.SnapInstr{ID: 1 + i*idStride, Opcode: op}
		if len(data) > 0 {
			nOps := int(data[0]) % 4
			data = data[1:]
			for k := 0; k < nOps && len(data) > 0; k++ {
				slot := int(data[0]) % (n + 2) // may dangle past the end
				data = data[1:]
				in.Operands = append(in.Operands, 1+slot*idStride)
			}
		}
		s.Instrs = append(s.Instrs, in)
	}
	return s, data
}

// checkDeltaEquivalence asserts every fast-path product equals its
// reference counterpart for one snapshot pair.
func checkDeltaEquivalence(t *testing.T, before, after *mir.Snapshot) {
	t.Helper()

	de := newDeltaExtractor()
	gotPre := ChainStrings(de.chainsOf(before))
	gotPost := ChainStrings(de.chainsOf(after))
	de.release()
	wantPre := refChainsOf(before)
	wantPost := refChainsOf(after)
	if !reflect.DeepEqual(gotPre, wantPre) {
		t.Fatalf("chainsOf(before) diverged:\nfast %v\nref  %v", gotPre, wantPre)
	}
	if !reflect.DeepEqual(gotPost, wantPost) {
		t.Fatalf("chainsOf(after) diverged:\nfast %v\nref  %v", gotPost, wantPost)
	}

	got := ExtractDelta(before, after).Ref()
	want := RefExtractDelta(before, after)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta diverged:\nfast %+v\nref  %+v", got, want)
	}

	// COMPARECHAINS must agree across thresholds, including degenerate ones.
	fa := InternChains(want.Removed)
	fb := InternChains(want.Added)
	for _, thr := range []int{0, 1, 3} {
		for _, ratio := range []float64{0, 0.5, 1} {
			if CompareChains(fa, fb, ratio, thr) != RefCompareChains(want.Removed, want.Added, ratio, thr) {
				t.Fatalf("CompareChains diverged at thr=%d ratio=%v for %v vs %v", thr, ratio, want.Removed, want.Added)
			}
		}
	}
}

func FuzzExtractDeltaEquivalence(f *testing.F) {
	f.Add([]byte{}, uint8(3), uint8(3), false)
	f.Add([]byte{1, 2, 0, 3, 1, 1, 2, 2, 0, 4, 2, 1, 2}, uint8(5), uint8(4), false)
	f.Add([]byte{7, 1, 1, 6, 2, 0, 1, 5, 3, 0, 1, 2, 0, 0, 4, 1, 3}, uint8(6), uint8(6), true)
	f.Add([]byte{0, 3, 1, 1, 1, 0, 3, 2, 2, 1, 2, 3, 3, 0, 1, 2}, uint8(8), uint8(2), false)
	f.Fuzz(func(t *testing.T, data []byte, nBefore, nAfter uint8, sparse bool) {
		stride := 1
		if sparse {
			stride = 1000 // force the map-based instruction-ID lookup
		}
		before, rest := snapshotFromBytes(data, int(nBefore)%24, stride)
		after, _ := snapshotFromBytes(rest, int(nAfter)%24, stride)
		checkDeltaEquivalence(t, before, after)
	})
}

// randSnapshot generates a denser random snapshot than the fuzz decoder:
// mostly-forward operand references (DAG-like, as real MIR is) with
// occasional back edges (phi loops).
func randSnapshot(rng *rand.Rand, n int) *mir.Snapshot {
	s := &mir.Snapshot{FuncName: "rand"}
	for i := 0; i < n; i++ {
		in := mir.SnapInstr{ID: i + 1, Opcode: fuzzOpcodes[rng.Intn(len(fuzzOpcodes))]}
		for k := rng.Intn(3); k > 0 && i > 0; k-- {
			if rng.Intn(8) == 0 {
				in.Operands = append(in.Operands, rng.Intn(n)+1) // back/self edge
			} else {
				in.Operands = append(in.Operands, rng.Intn(i)+1)
			}
		}
		s.Instrs = append(s.Instrs, in)
	}
	return s
}

func TestExtractDeltaEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(20)
		before := randSnapshot(rng, n)
		// Mutate a copy, so the pair is related (the interesting regime for
		// the pairing/alignment logic) rather than independent noise.
		after := &mir.Snapshot{FuncName: before.FuncName}
		for _, in := range before.Instrs {
			if rng.Intn(5) == 0 {
				continue // drop instruction
			}
			cp := in
			cp.Operands = append([]int(nil), in.Operands...)
			if rng.Intn(5) == 0 {
				cp.Opcode = fuzzOpcodes[rng.Intn(len(fuzzOpcodes))]
			}
			after.Instrs = append(after.Instrs, cp)
		}
		checkDeltaEquivalence(t, before, after)
	}
}

// randDelta builds a random delta over a fixed chain vocabulary.
func randDelta(rng *rand.Rand, vocab []string) ([]string, []string) {
	pick := func() []string {
		var out []string
		for _, c := range vocab {
			if rng.Intn(3) == 0 {
				out = append(out, c)
			}
		}
		return out
	}
	return pick(), pick()
}

// TestDecideEquivalenceRandomDB drives Detector (inverted index) and
// ReferenceDetector (brute-force scan) over the same random databases and
// candidate DNAs, across threshold settings including the degenerate ones,
// asserting identical CompileDecisions.
func TestDecideEquivalenceRandomDB(t *testing.T) {
	vocab := []string{
		"a→b→c", "a→b→d", "b→c", "c→d→e", "e→f",
		"boundscheck→constant(0)", "boundscheck→elements→unbox",
		"phi→add", "unbox→a", "x→y→z",
	}
	passNames := []string{"GVN", "LICM", "ApplyTypes", "BoundsCheckElimination", "NotARealPass"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		db := &Database{}
		for v := rng.Intn(4); v >= 0; v-- {
			vdc := VDC{CVE: "CVE-" + string(rune('A'+v))}
			for d := rng.Intn(3); d >= 0; d-- {
				dna := DNA{FuncName: "poc" + string(rune('0'+d)), Passes: map[string]Delta{}}
				for _, pn := range passNames {
					if rng.Intn(2) == 0 {
						continue
					}
					rem, add := randDelta(rng, vocab)
					dna.Passes[pn] = MakeDelta(rem, add)
				}
				vdc.DNAs = append(vdc.DNAs, dna)
			}
			db.Add(vdc)
		}

		cand := DNA{FuncName: "victim", Passes: map[string]Delta{}}
		for _, pn := range passNames {
			if rng.Intn(2) == 0 {
				continue
			}
			rem, add := randDelta(rng, vocab)
			cand.Passes[pn] = MakeDelta(rem, add)
		}
		refCand := cand.Ref()

		for _, thr := range []int{0, 1, 3} {
			for _, ratio := range []float64{0, 0.5, 1} {
				fast := NewDetector(db)
				fast.Thr, fast.Ratio = thr, ratio
				ref := NewReferenceDetector(db)
				ref.Thr, ref.Ratio = thr, ratio
				got := fast.Decide(&cand)
				want := ref.Decide(refCand)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d thr=%d ratio=%v: decision diverged\nfast %+v\nref  %+v",
						trial, thr, ratio, got, want)
				}
				// The deduplicated fast-path matches must equal the set of
				// reference matches. Identity is the MatchKey projection:
				// witness-chain attribution is a fast-path-only extra.
				gotSet := map[MatchKey]bool{}
				for _, m := range fast.Matches {
					if gotSet[m.Key()] {
						t.Fatalf("trial %d: duplicate match recorded: %+v", trial, m)
					}
					gotSet[m.Key()] = true
				}
				wantSet := map[MatchKey]bool{}
				for _, m := range ref.Matches {
					wantSet[m.Key()] = true
				}
				if !reflect.DeepEqual(gotSet, wantSet) {
					t.Fatalf("trial %d thr=%d ratio=%v: match sets diverged\nfast %v\nref  %v",
						trial, thr, ratio, fast.Matches, ref.Matches)
				}
			}
		}
	}
}

// TestDetectorMatchesDeduplicated: repeated compilations of the same
// function must not grow Matches past the distinct set, and Reset must
// re-arm accumulation.
func TestDetectorMatchesDeduplicated(t *testing.T) {
	before := richSnap(4)
	after := richSnap(0)
	vdcDelta := ExtractDelta(before, after)
	db := &Database{}
	db.Add(VDC{CVE: "CVE-D", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{"GVN": vdcDelta}}}})
	det := NewDetector(db)
	for i := 0; i < 5; i++ {
		obs, finish := det.BeginCompile("victim")
		fakePassRun(obs, "GVN", before, after)
		if d := finish(); len(d.DisabledPasses) != 1 {
			t.Fatalf("iteration %d: %+v", i, d)
		}
	}
	if len(det.Matches) != 1 {
		t.Fatalf("Matches grew past the distinct set: %+v", det.Matches)
	}
	det.Reset()
	if det.Matches != nil {
		t.Fatal("Reset did not clear Matches")
	}
	obs, finish := det.BeginCompile("victim")
	fakePassRun(obs, "GVN", before, after)
	finish()
	if len(det.Matches) != 1 {
		t.Fatalf("post-Reset accumulation broken: %+v", det.Matches)
	}
}

// TestDetectorAsPolicyEquivalence runs both detectors as engine policies
// over the same observer feed (the integration seam engine.compile uses).
func TestDetectorAsPolicyEquivalence(t *testing.T) {
	before := richSnap(4)
	mid := richSnap(2)
	after := richSnap(0)
	vdcDelta := ExtractDelta(before, after)
	db := &Database{}
	db.Add(VDC{CVE: "CVE-P", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"GVN":  vdcDelta,
		"LICM": vdcDelta,
	}}}})

	run := func(p engine.Policy) engine.CompileDecision {
		obs, finish := p.BeginCompile("victim")
		obs(0, "GVN", before, mid)
		obs(1, "Sink", nil, nil) // skipped pass
		obs(2, "LICM", mid, after)
		return finish()
	}
	got := run(NewDetector(db))
	want := run(NewReferenceDetector(db))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("policy decisions diverged:\nfast %+v\nref  %+v", got, want)
	}
	if len(got.DisabledPasses) == 0 {
		t.Fatal("fixture found no matches; test is vacuous")
	}
}

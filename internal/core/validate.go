package core

import "fmt"

// Validate checks the database's structural integrity: every VDC must have
// a unique, non-empty CVE name, and every delta must reference only chain
// IDs known to the process interner. A dangling ID cannot come from a JSON
// load (strings are interned on the way in) but can from a programmatic
// construction error — and would otherwise panic deep inside serialization
// or silently corrupt the match index. Save and LoadDatabase both call
// this; a failure names the offending entry.
func (db *Database) Validate() error {
	seen := make(map[string]int, len(db.VDCs))
	for i, v := range db.VDCs {
		if v.CVE == "" {
			return fmt.Errorf("VDC entry %d has an empty CVE name", i)
		}
		if j, dup := seen[v.CVE]; dup {
			return fmt.Errorf("duplicate VDC name %q (entries %d and %d)", v.CVE, j, i)
		}
		seen[v.CVE] = i
		for _, dna := range v.DNAs {
			for passName, delta := range dna.Passes {
				if id, ok := danglingChain(delta.Removed); ok {
					return fmt.Errorf("VDC %q, function %q, pass %q: removed-set chain ID %d is not interned (dangling reference)",
						v.CVE, dna.FuncName, passName, id)
				}
				if id, ok := danglingChain(delta.Added); ok {
					return fmt.Errorf("VDC %q, function %q, pass %q: added-set chain ID %d is not interned (dangling reference)",
						v.CVE, dna.FuncName, passName, id)
				}
			}
		}
	}
	return nil
}

// danglingChain returns the first chain ID not known to the interner.
func danglingChain(ids []uint32) (uint32, bool) {
	for _, id := range ids {
		if !KnownChain(id) {
			return id, true
		}
	}
	return 0, false
}

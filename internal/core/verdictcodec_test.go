package core

import (
	"path/filepath"
	"testing"
)

// TestVerdictCodecRoundTrip: a verdict payload survives the wire form
// with its witness chains re-interned — the ChainID may differ across
// "processes", the chain STRING and every other field must not.
func TestVerdictCodecRoundTrip(t *testing.T) {
	d := NewDetector(&Database{})
	chain := InternChain("loadelem→boundscheck→storeelem")
	in := &verdictPayload{
		found: []Match{
			{CVE: "CVE-A", VDCFunc: "f", Pass: "GVN", ChainID: chain, Side: "removed"},
			{CVE: "CVE-B", VDCFunc: "g", Pass: "LICM", ChainID: NoChain},
		},
		names: []string{"GVN", "LICM"},
		noJIT: true,
	}
	data, err := d.EncodeVerdict(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := d.DecodeVerdict(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	out, ok := got.(*verdictPayload)
	if !ok {
		t.Fatalf("decoded %T, want *verdictPayload", got)
	}
	if out.noJIT != in.noJIT || len(out.names) != 2 || out.names[0] != "GVN" {
		t.Errorf("verdict fields lost: %+v", out)
	}
	if len(out.found) != 2 {
		t.Fatalf("matches = %d, want 2", len(out.found))
	}
	if out.found[0].Chain() != in.found[0].Chain() {
		t.Errorf("witness chain lost: %q vs %q", out.found[0].Chain(), in.found[0].Chain())
	}
	if out.found[1].ChainID != NoChain {
		t.Errorf("NoChain sentinel lost: ChainID = %d", out.found[1].ChainID)
	}
	if out.found[0].Key() != in.found[0].Key() || out.found[0].Side != "removed" {
		t.Errorf("match identity lost: %+v", out.found[0])
	}
	// Hostile input errors instead of panicking.
	if _, err := d.DecodeVerdict([]byte("{")); err == nil {
		t.Error("torn JSON decoded without error")
	}
	if _, err := d.EncodeVerdict("not a payload"); err == nil {
		t.Error("foreign payload encoded without error")
	}
}

// TestFingerprintStableAcrossLoads: saving a database and loading it
// twice (two "processes") yields one fingerprint — the property that
// keeps persistent verdict keys valid across a restart — while different
// contents yield different fingerprints.
func TestFingerprintStableAcrossLoads(t *testing.T) {
	db := &Database{}
	db.Add(VDC{CVE: "CVE-FP-1", DNAs: []DNA{{FuncName: "f"}}})
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	a, err := LoadDatabase(path)
	if err != nil {
		t.Fatalf("load a: %v", err)
	}
	b, err := LoadDatabase(path)
	if err != nil {
		t.Fatalf("load b: %v", err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("same contents, different fingerprints: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != db.Fingerprint() {
		t.Errorf("round-tripped fingerprint differs from the original: %x vs %x", a.Fingerprint(), db.Fingerprint())
	}
	b.Add(VDC{CVE: "CVE-FP-2"})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("mutation did not change the fingerprint")
	}
}

package core

import (
	"slices"
	"sort"
	"strings"
	"sync"
)

// Interner maps opcode tokens and whole dependency chains to dense uint32
// IDs. All of the hot-path machinery (Δ extraction, chain-set diffing,
// COMPARECHAINS) operates on interned IDs; the "→"-joined string form of a
// chain exists only at the JSON serialization boundary, so the on-disk
// database format is unchanged.
//
// Chain identity is the opcode-token sequence: two chains get the same ID
// iff their token sequences are equal, which (since no opcode contains the
// separator) is exactly when their string renderings are equal. An Interner
// is safe for concurrent use; IDs are stable for the lifetime of the
// process but are not meaningful across processes — only the string form
// is persisted.
type Interner struct {
	mu       sync.RWMutex
	tokIDs   map[string]uint32
	toks     []string
	chainIDs map[string]uint32 // key: little-endian token-ID bytes
	chains   []chainEntry
}

// chainEntry is the immutable record of one interned chain.
type chainEntry struct {
	str  string   // "→"-joined rendering
	toks []uint32 // token-ID sequence
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		tokIDs:   map[string]uint32{},
		chainIDs: map[string]uint32{},
	}
}

// interner is the process-wide interner behind the package-level helpers.
// Sharing one instance lets parallel experiment runs reuse each other's
// warm tables and lets JSON round-trips resolve to the same IDs.
var interner = NewInterner()

// Token interns an opcode token.
func (it *Interner) Token(s string) uint32 {
	it.mu.RLock()
	id, ok := it.tokIDs[s]
	it.mu.RUnlock()
	if ok {
		return id
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.tokIDs[s]; ok {
		return id
	}
	id = uint32(len(it.toks))
	it.toks = append(it.toks, s)
	it.tokIDs[s] = id
	return id
}

// appendChainKey renders a token sequence as map-key bytes.
func appendChainKey(dst []byte, toks []uint32) []byte {
	for _, t := range toks {
		dst = append(dst, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
	}
	return dst
}

// Chain interns a chain given as a token-ID sequence. The fast path (an
// already-known chain) allocates nothing: the key is built in a stack
// buffer and the map lookup converts it without copying.
func (it *Interner) Chain(toks []uint32) uint32 {
	var arr [4 * (maxChainLen + 1)]byte
	var key []byte
	if 4*len(toks) <= len(arr) {
		key = appendChainKey(arr[:0], toks)
	} else {
		key = appendChainKey(make([]byte, 0, 4*len(toks)), toks)
	}
	it.mu.RLock()
	id, ok := it.chainIDs[string(key)]
	it.mu.RUnlock()
	if ok {
		return id
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.chainIDs[string(key)]; ok {
		return id
	}
	own := make([]uint32, len(toks))
	copy(own, toks)
	var sb strings.Builder
	for i, t := range own {
		if i > 0 {
			sb.WriteString(chainSep)
		}
		sb.WriteString(it.toks[t])
	}
	id = uint32(len(it.chains))
	it.chains = append(it.chains, chainEntry{str: sb.String(), toks: own})
	it.chainIDs[string(key)] = id
	return id
}

// ChainOfString interns a chain given in its "→"-joined string form (the
// JSON boundary and tests; not a hot path).
func (it *Interner) ChainOfString(s string) uint32 {
	parts := strings.Split(s, chainSep)
	toks := make([]uint32, len(parts))
	for i, p := range parts {
		toks[i] = it.Token(p)
	}
	return it.Chain(toks)
}

// ChainString renders an interned chain.
func (it *Interner) ChainString(id uint32) string {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return it.chains[id].str
}

// chainsView returns a stable snapshot of the chain table. Entries are
// immutable and the table only appends, so the returned slice can be read
// lock-free for every ID handed out before the call.
func (it *Interner) chainsView() []chainEntry {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return it.chains
}

// NumChains returns how many distinct chains have been interned.
func (it *Interner) NumChains() int {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return len(it.chains)
}

// InternChain interns a "→"-joined chain string in the process interner.
func InternChain(s string) uint32 { return interner.ChainOfString(s) }

// NumChains returns the process interner's chain count.
func NumChains() int { return interner.NumChains() }

// KnownChain reports whether id is a live chain ID in the process
// interner (database validation uses this to reject dangling references).
func KnownChain(id uint32) bool { return int(id) < interner.NumChains() }

// ChainString renders an interned chain ID back to its string form.
func ChainString(id uint32) string { return interner.ChainString(id) }

// InternChains interns a list of chain strings and returns the sorted,
// deduplicated ID set the comparator operates on.
func InternChains(chains []string) []uint32 {
	if len(chains) == 0 {
		return nil
	}
	ids := make([]uint32, len(chains))
	for i, c := range chains {
		ids[i] = InternChain(c)
	}
	return sortedIDSet(ids)
}

// ChainStrings renders an ID collection back to lexicographically sorted
// chain strings (the serialization order Save has always used). Duplicates
// are preserved, so multisets survive the round trip.
func ChainStrings(ids []uint32) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = interner.ChainString(id)
	}
	sort.Strings(out)
	return out
}

// sortedIDSet sorts and dedups a chain-ID list in place, returning it.
func sortedIDSet(ids []uint32) []uint32 {
	if len(ids) == 0 {
		return nil
	}
	slices.Sort(ids)
	out := ids[:1]
	for _, c := range ids[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

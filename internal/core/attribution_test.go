package core

// Witness-chain attribution tests: a Match must name the chain (and delta
// side) that connected the candidate DNA to the matched VDC delta, the
// audit log must carry the verdict with full attribution, and the
// detector's histograms must observe every query.

import (
	"bytes"
	"testing"

	"github.com/jitbull/jitbull/internal/obs"
)

// smallestShared returns the smallest interned ID common to both sorted
// sets — the witness the index is specified to record.
func smallestShared(a, b []uint32) (uint32, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i], true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return 0, false
}

func TestMatchAttributionWitnessChain(t *testing.T) {
	vdcRem := []string{"a→b→c", "b→c", "c→d→e"}
	vdcAdd := []string{"e→f", "phi→add", "unbox→a"}
	db := &Database{}
	db.Add(VDC{CVE: "CVE-W", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"GVN":  MakeDelta(vdcRem, nil),
		"LICM": MakeDelta(nil, vdcAdd),
	}}}})

	cases := []struct {
		name     string
		pass     string
		cand     Delta
		wantSide string
	}{
		{"removed side", "GVN", MakeDelta([]string{"a→b→c", "b→c", "x→y→z"}, nil), "removed"},
		{"added side", "LICM", MakeDelta(nil, []string{"e→f", "phi→add", "x→y→z"}), "added"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			det := NewDetector(db)
			det.Thr, det.Ratio = 2, 0.5
			dec := det.Decide(&DNA{FuncName: "victim", Passes: map[string]Delta{tc.pass: tc.cand}})
			if len(dec.DisabledPasses) != 1 || len(det.Matches) != 1 {
				t.Fatalf("expected one match, got decision %+v matches %+v", dec, det.Matches)
			}
			m := det.Matches[0]
			if m.Side != tc.wantSide {
				t.Fatalf("Side = %q, want %q", m.Side, tc.wantSide)
			}
			vdcSide, candSide := db.VDCs[0].DNAs[0].Passes[tc.pass].Removed, tc.cand.Removed
			if tc.wantSide == "added" {
				vdcSide, candSide = db.VDCs[0].DNAs[0].Passes[tc.pass].Added, tc.cand.Added
			}
			want, ok := smallestShared(vdcSide, candSide)
			if !ok {
				t.Fatal("fixture broken: no shared chain")
			}
			if m.ChainID != want {
				t.Fatalf("ChainID = %d (%q), want %d (%q)",
					m.ChainID, ChainString(m.ChainID), want, ChainString(want))
			}
			if m.Chain() != ChainString(want) {
				t.Fatalf("Chain() = %q, want %q", m.Chain(), ChainString(want))
			}
		})
	}
}

func TestMatchAttributionDegenerateThreshold(t *testing.T) {
	db := &Database{}
	db.Add(VDC{CVE: "CVE-0", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"GVN": MakeDelta([]string{"a→b→c"}, nil),
	}}}})
	det := NewDetector(db)
	det.Thr, det.Ratio = 0, 0
	// No shared chain at all — the degenerate thresholds still match, and
	// the attribution must say so explicitly rather than invent a witness.
	det.Decide(&DNA{FuncName: "victim", Passes: map[string]Delta{
		"GVN": MakeDelta([]string{"x→y→z"}, nil),
	}})
	if len(det.Matches) != 1 {
		t.Fatalf("expected one degenerate match, got %+v", det.Matches)
	}
	m := det.Matches[0]
	if m.ChainID != NoChain || m.Side != "" || m.Chain() != "" {
		t.Fatalf("degenerate match must carry the NoChain sentinel, got %+v", m)
	}
}

func TestDetectorAuditAndMetrics(t *testing.T) {
	before := richSnap(4)
	after := richSnap(0)
	db := &Database{}
	db.Add(VDC{CVE: "CVE-A", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"GVN": ExtractDelta(before, after),
	}}}})

	var buf bytes.Buffer
	det := NewDetector(db)
	det.Audit = obs.NewAuditLog(&buf)
	det.Metrics = obs.NewRegistry()

	// One hit, one miss.
	o, finish := det.BeginCompile("victim")
	fakePassRun(o, "GVN", before, after)
	if dec := finish(); len(dec.DisabledPasses) != 1 {
		t.Fatalf("expected a disable-pass decision, got %+v", dec)
	}
	o, finish = det.BeginCompile("clean")
	fakePassRun(o, "GVN", before, before) // empty delta: no DNA recorded
	finish()

	evs := det.Audit.Events()
	if len(evs) != 2 {
		t.Fatalf("expected 2 audit events, got %d: %+v", len(evs), evs)
	}
	hit, miss := evs[0], evs[1]
	if hit.Func != "victim" || hit.Verdict != obs.VerdictDisablePass {
		t.Fatalf("hit event wrong: %+v", hit)
	}
	if len(hit.Matches) != 1 || hit.Matches[0].CVE != "CVE-A" || hit.Matches[0].Chain == "" {
		t.Fatalf("hit event lacks attribution: %+v", hit.Matches)
	}
	if len(hit.DisabledPasses) != 1 || hit.DisabledPasses[0] != "GVN" {
		t.Fatalf("hit event lacks disabled passes: %+v", hit)
	}
	if miss.Func != "clean" || miss.Verdict != obs.VerdictGo || len(miss.Matches) != 0 {
		t.Fatalf("miss event wrong: %+v", miss)
	}

	// The JSONL stream must round-trip to the same events.
	read, err := obs.ReadAudit(&buf)
	if err != nil {
		t.Fatalf("ReadAudit: %v", err)
	}
	if len(read) != 2 || read[0].Verdict != hit.Verdict || read[1].Verdict != miss.Verdict {
		t.Fatalf("JSONL round-trip diverged: %+v", read)
	}

	snap := det.Metrics.Snapshot()
	for _, name := range []string{"dna.delta_chains", "dna.index_probes"} {
		h, ok := snap[name].(obs.HistSnapshot)
		if !ok || h.Count < 1 {
			t.Fatalf("%s not observed: %+v", name, snap[name])
		}
	}
}

func TestFailSafeAudit(t *testing.T) {
	det := NewDetector(NewFailSafeDatabase())
	det.Audit = obs.NewAuditLog(nil)
	_, finish := det.BeginCompile("victim")
	if dec := finish(); !dec.NoJIT {
		t.Fatalf("fail-safe database must veto, got %+v", dec)
	}
	evs := det.Audit.Events()
	if len(evs) != 1 || evs[0].Verdict != obs.VerdictNoJIT || evs[0].Reason == "" {
		t.Fatalf("fail-safe verdict not audited: %+v", evs)
	}
}

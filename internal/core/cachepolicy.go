package core

// Verdict caching: Detector implements engine.CachingPolicy so the shared
// cross-engine compilation cache can return a JITBULL verdict together
// with the compiled artifact, without re-running DNA extraction or
// Algorithm 2's comparison. This preserves the paper's decisions exactly:
// the cache key (built by the engine) covers the canonical bytecode, the
// type feedback the MIR was specialized against, the pipeline
// configuration, and — via PolicyCacheKey — the database identity and
// thresholds, so two compilations with equal keys run the identical
// pipeline over identical MIR and extract identical DNA; Algorithms 1–2
// are deterministic functions of that DNA and the database, hence the
// recorded verdict IS the verdict a fresh run would produce. Replay
// re-records the audit trail and the per-detector match accounting so an
// engine served from the cache is observationally identical to one that
// computed the verdict itself.

import (
	"fmt"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/obs"
)

// verdictPayload is the opaque record the engine stores next to a cached
// artifact: the deterministically-sorted matches of one Decide call plus
// the derived decision. Immutable after capture.
type verdictPayload struct {
	found []Match  // sorted as Decide records them; empty = go verdict
	names []string // sorted matched-pass set
	noJIT bool
}

var _ engine.CachingPolicy = (*Detector)(nil)

// PolicyCacheKey implements engine.CachingPolicy. The verdict depends on
// the database's contents and the thresholds; database identity is its
// content Fingerprint — the shared *Database of a RunParallel fleet
// reports one stable value, a mutated or different-content database
// always reports a fresh one, and (unlike the process-unique Generation)
// a restarted process over the same database contents reports the SAME
// one, which is what lets the persistent store replay verdicts across
// process death. Replay is sound precisely because the verdict is a
// deterministic function of (DNA, contents, thresholds): equal contents
// imply equal verdicts regardless of which process computed them. A
// fail-safe database vetoes caching — its NoJIT-everything verdicts are
// a degraded emergency mode, not knowledge worth publishing fleet-wide.
func (d *Detector) PolicyCacheKey() (string, bool) {
	if d.DB == nil || d.DB.FailSafe() {
		return "", false
	}
	return fmt.Sprintf("core.Detector/db=%016x/thr=%d/ratio=%g", d.DB.Fingerprint(), d.Thr, d.Ratio), true
}

// TakeVerdictPayload implements engine.CachingPolicy.
func (d *Detector) TakeVerdictPayload() any {
	p := d.last
	d.last = nil
	if p == nil {
		return nil
	}
	return p
}

// ReplayVerdict implements engine.CachingPolicy: it re-applies a recorded
// verdict for fnName — deduplicating the matches into this detector's
// accounting and re-recording the audit event exactly as the live Decide
// would — and returns the decision.
func (d *Detector) ReplayVerdict(fnName string, payload any) engine.CompileDecision {
	p, ok := payload.(*verdictPayload)
	if !ok || p == nil {
		return engine.CompileDecision{}
	}
	if len(p.found) == 0 {
		d.Audit.Record(obs.AuditEvent{Func: fnName, Verdict: obs.VerdictGo})
		return engine.CompileDecision{}
	}
	if d.seen == nil {
		d.seen = map[MatchKey]struct{}{}
	}
	for _, m := range p.found {
		if _, dup := d.seen[m.Key()]; !dup {
			d.seen[m.Key()] = struct{}{}
			d.Matches = append(d.Matches, m)
		}
	}
	if d.Audit != nil {
		verdict := obs.VerdictDisablePass
		if p.noJIT {
			verdict = obs.VerdictNoJIT
		}
		am := make([]obs.AuditMatch, len(p.found))
		for i, m := range p.found {
			am[i] = obs.AuditMatch{
				CVE: m.CVE, VDCFunc: m.VDCFunc, Pass: m.Pass,
				ChainID: m.ChainID, Side: m.Side, Chain: m.Chain(),
			}
		}
		d.Audit.Record(obs.AuditEvent{
			Func:           fnName,
			Verdict:        verdict,
			DisabledPasses: p.names,
			Matches:        am,
			Reason:         "replayed from shared compilation cache",
		})
	}
	if p.noJIT {
		return engine.CompileDecision{NoJIT: true, DisabledPasses: p.names}
	}
	return engine.CompileDecision{DisabledPasses: p.names}
}

package core

import (
	"testing"

	"github.com/jitbull/jitbull/internal/mir"
)

// fakePassRun feeds synthetic snapshots through a policy's observer.
func fakePassRun(obs func(int, string, *mir.Snapshot, *mir.Snapshot), passName string, before, after *mir.Snapshot) {
	obs(0, passName, before, after)
}

func richSnap(extraChecks int) *mir.Snapshot {
	s := snap(
		"1 parameter#0",
		"2 unbox 1",
		"3 elements 2",
		"4 initializedlength 3",
	)
	id := 10
	for i := 0; i < extraChecks; i++ {
		s.Instrs = append(s.Instrs,
			mir.SnapInstr{ID: id, Opcode: "constant(" + string(rune('0'+i)) + ")"},
			mir.SnapInstr{ID: id + 1, Opcode: "boundscheck", Operands: []int{id, 4}},
		)
		id += 2
	}
	return s
}

func TestDetectorScenario2DisablesPasses(t *testing.T) {
	before := richSnap(4)
	after := richSnap(0)
	vdcDelta := ExtractDelta(before, after)
	if len(vdcDelta.Removed) < 3 {
		t.Fatalf("fixture too poor: %v", vdcDelta.Removed)
	}
	db := &Database{}
	db.Add(VDC{CVE: "CVE-X", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"GVN": vdcDelta,
	}}}})
	det := NewDetector(db)
	obs, finish := det.BeginCompile("victim")
	fakePassRun(obs, "GVN", before, after)
	decision := finish()
	if decision.NoJIT {
		t.Fatal("GVN is disableable; expected scenario 2")
	}
	if len(decision.DisabledPasses) != 1 || decision.DisabledPasses[0] != "GVN" {
		t.Fatalf("decision = %+v", decision)
	}
	if len(det.Matches) == 0 || det.Matches[0].CVE != "CVE-X" {
		t.Fatalf("matches = %+v", det.Matches)
	}
}

func TestDetectorScenario3MandatoryPass(t *testing.T) {
	before := richSnap(4)
	after := richSnap(0)
	vdcDelta := ExtractDelta(before, after)
	db := &Database{}
	db.Add(VDC{CVE: "CVE-Y", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"ApplyTypes": vdcDelta, // mandatory pass
	}}}})
	det := NewDetector(db)
	obs, finish := det.BeginCompile("victim")
	fakePassRun(obs, "ApplyTypes", before, after)
	decision := finish()
	if !decision.NoJIT {
		t.Fatalf("mandatory-pass match must force NoJIT (scenario 3): %+v", decision)
	}
}

func TestDetectorScenario1NoMatch(t *testing.T) {
	db := &Database{}
	db.Add(VDC{CVE: "CVE-Z", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"GVN": MakeDelta([]string{"x→y", "p→q", "r→s"}, nil),
	}}}})
	det := NewDetector(db)
	obs, finish := det.BeginCompile("victim")
	// A pass with a completely different delta.
	before := snap("1 parameter#0", "2 neg 1", "3 return 2")
	after := snap("1 parameter#0", "3 return 1")
	fakePassRun(obs, "GVN", before, after)
	decision := finish()
	if decision.NoJIT || len(decision.DisabledPasses) != 0 {
		t.Fatalf("scenario 1 expected: %+v", decision)
	}
}

func TestDetectorIgnoresSkippedPasses(t *testing.T) {
	db := &Database{}
	db.Add(VDC{CVE: "CVE-W", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{
		"GVN": MakeDelta([]string{"a", "b", "c"}, nil),
	}}}})
	det := NewDetector(db)
	obs, finish := det.BeginCompile("victim")
	obs(0, "GVN", nil, nil) // skipped pass: nil snapshots
	decision := finish()
	if len(decision.DisabledPasses) != 0 {
		t.Fatalf("skipped pass produced a match: %+v", decision)
	}
}

func TestDetectorInactiveWhenEmpty(t *testing.T) {
	det := NewDetector(&Database{})
	if det.Active() {
		t.Fatal("empty DB must be inactive (the zero-overhead contract)")
	}
	det2 := NewDetector(nil)
	if det2.Active() {
		t.Fatal("nil DB must be inactive")
	}
}

func TestRecorderCollectsDNA(t *testing.T) {
	rec := &Recorder{}
	if !rec.Active() {
		t.Fatal("recorder must always be active")
	}
	obs, finish := rec.BeginCompile("fn1")
	before := richSnap(3)
	after := richSnap(0)
	fakePassRun(obs, "GVN", before, after)
	finish()
	if len(rec.DNAs) != 1 || rec.DNAs[0].FuncName != "fn1" {
		t.Fatalf("DNAs = %+v", rec.DNAs)
	}
	if _, ok := rec.DNAs[0].Passes["GVN"]; !ok {
		t.Fatal("GVN delta missing")
	}
}

func TestThresholdAndRatioKnobs(t *testing.T) {
	before := richSnap(1) // only 2 distinct removed chains (const + length path)
	after := richSnap(0)
	delta := ExtractDelta(before, after)
	db := &Database{}
	db.Add(VDC{CVE: "CVE-K", DNAs: []DNA{{FuncName: "poc", Passes: map[string]Delta{"GVN": delta}}}})

	det := NewDetector(db) // Thr = 3: two chains are not enough
	obs, finish := det.BeginCompile("victim")
	fakePassRun(obs, "GVN", before, after)
	if d := finish(); len(d.DisabledPasses) != 0 {
		t.Fatalf("Thr=3 should reject a 2-chain match: %+v", d)
	}

	low := NewDetector(db)
	low.Thr = 1
	obs, finish = low.BeginCompile("victim")
	fakePassRun(obs, "GVN", before, after)
	if d := finish(); len(d.DisabledPasses) != 1 {
		t.Fatalf("Thr=1 should accept: %+v", d)
	}
}

func TestDeltaExtractorMemoization(t *testing.T) {
	var de deltaExtractor
	s1 := richSnap(3)
	s2 := richSnap(1)
	s3 := richSnap(0)
	d1 := de.delta(s1, s2)
	d2 := de.delta(s2, s3) // before == memoized after
	if d1.Empty() || d2.Empty() {
		t.Fatal("expected non-empty deltas")
	}
	// Equality short-circuit must report an empty delta.
	if d := de.delta(s3, s3); !d.Empty() {
		t.Fatalf("identical snapshots gave %+v", d)
	}
	// Cross-check against the non-memoized extractor.
	if want := ExtractDelta(s2, s3); len(want.Removed) != len(d2.Removed) {
		t.Fatalf("memoized delta differs: %v vs %v", want.Removed, d2.Removed)
	}
}

package core

// Tests for the verdict-cache identity: the policy cache key must follow
// the database's *contents*, not its address — a recycled allocation or a
// post-caching mutation must never let an old verdict be replayed against
// a different database.

import "testing"

func TestDatabaseGenerationIdentity(t *testing.T) {
	a, b := &Database{}, &Database{}
	ga, gb := a.Generation(), b.Generation()
	if ga == 0 || gb == 0 {
		t.Fatal("generation 0 is reserved for unassigned")
	}
	if ga == gb {
		t.Fatalf("distinct databases share generation %d", ga)
	}
	if a.Generation() != ga {
		t.Error("generation not stable across calls")
	}
	a.Add(VDC{CVE: "CVE-TEST-1"})
	ga2 := a.Generation()
	if ga2 == ga {
		t.Error("Add did not move the database to a fresh generation")
	}
	if ga2 == gb || ga2 == b.Generation() {
		t.Error("mutated database collided with another database's generation")
	}
	a.Remove("CVE-TEST-1")
	if a.Generation() == ga2 || a.Generation() == ga {
		// Same contents as at ga, but verdicts cached in between must not
		// resurrect: any mutation is a fresh generation.
		t.Error("Remove did not move the database to a fresh generation")
	}
}

func TestPolicyCacheKeyTracksDatabaseContents(t *testing.T) {
	db := &Database{}
	d := NewDetector(db)
	k1, ok := d.PolicyCacheKey()
	if !ok || k1 == "" {
		t.Fatalf("healthy detector vetoed caching: %q %v", k1, ok)
	}
	if k2, _ := d.PolicyCacheKey(); k2 != k1 {
		t.Errorf("key not stable: %q vs %q", k1, k2)
	}
	// Content-addressed identity: a structurally identical database — the
	// same contents loaded by another process, say — shares the key, which
	// is what lets the persistent store replay verdicts across a restart.
	if other, _ := NewDetector(&Database{}).PolicyCacheKey(); other != k1 {
		t.Errorf("detectors over identical contents report different keys: %q vs %q", other, k1)
	}
	db.Add(VDC{CVE: "CVE-TEST-2"})
	k3, _ := d.PolicyCacheKey()
	if k3 == k1 {
		t.Errorf("key %q survived a database mutation", k1)
	}
	// Different contents must never collide.
	other := &Database{}
	other.Add(VDC{CVE: "CVE-TEST-3"})
	if ko, _ := NewDetector(other).PolicyCacheKey(); ko == k3 || ko == k1 {
		t.Errorf("detectors over different contents share key %q", ko)
	}
	if _, ok := NewDetector(nil).PolicyCacheKey(); ok {
		t.Error("nil database did not veto caching")
	}
	if _, ok := NewDetector(NewFailSafeDatabase()).PolicyCacheKey(); ok {
		t.Error("fail-safe database did not veto caching")
	}
}

package core

// The retained reference implementation of Algorithm 1 + Algorithm 2.
//
// This file is the original string-based extraction/matching pipeline,
// kept verbatim: chains are "→"-joined opcode strings, diffing re-splits
// and LCS-aligns them, and the detector brute-force scans every
// VDC × DNA × pass in the database. It exists so the interned fast path
// (extract.go, compare.go, index.go) can be held to a golden-equivalence
// standard — the fuzz, property, and corpus tests assert that the fast
// path produces the same Δ sets and the same CompileDecisions — and so
// the pre-optimization cost can be benchmarked as a baseline
// (BenchmarkDetectorFinish/ref4VDC).

import (
	"sort"
	"strings"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/mir"
	"github.com/jitbull/jitbull/internal/passes"
)

// RefDelta is Δ_i^f in the reference representation: removed and added
// sub-chains as sorted "→"-joined string sets.
type RefDelta struct {
	Removed []string
	Added   []string
}

// Empty reports whether the pass had no observable effect.
func (d RefDelta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// RefDNA is one function's DNA in the reference representation.
type RefDNA struct {
	FuncName string
	Passes   map[string]RefDelta
}

// RefExtractDelta is the reference Algorithm 1: identical semantics to
// ExtractDelta, computed over chain strings.
func RefExtractDelta(before, after *mir.Snapshot) RefDelta {
	pre := refChainsOf(before)
	post := refChainsOf(after)
	removed, added := refDiffChainSets(pre, post)
	return RefDelta{Removed: removed, Added: added}
}

// refDeltaExtractor is the reference per-compilation memo (the original
// deltaExtractor): consecutive passes share IR snapshots, so each
// snapshot's chains are computed exactly once per compilation.
type refDeltaExtractor struct {
	lastSnap   *mir.Snapshot
	lastChains []string
}

func (de *refDeltaExtractor) delta(before, after *mir.Snapshot) RefDelta {
	if snapshotsEqual(before, after) {
		if de.lastSnap == before {
			de.lastSnap = after
		}
		return RefDelta{}
	}
	var pre []string
	if before == de.lastSnap && before != nil {
		pre = de.lastChains
	} else {
		pre = refChainsOf(before)
	}
	post := refChainsOf(after)
	de.lastSnap, de.lastChains = after, post
	removed, added := refDiffChainSets(pre, post)
	return RefDelta{Removed: removed, Added: added}
}

// refDepGraph is the map/slice-based dependency graph of the reference.
type refDepGraph struct {
	ops   []string // opcode by node index
	deps  [][]int  // node -> dependency node indexes
	roots []int
}

func refBuildGraph(s *mir.Snapshot) refDepGraph {
	idToIdx := make(map[int]int, len(s.Instrs))
	for i, in := range s.Instrs {
		idToIdx[in.ID] = i
	}
	g := refDepGraph{
		ops:  make([]string, len(s.Instrs)),
		deps: make([][]int, len(s.Instrs)),
	}
	inGraph := make([]bool, len(s.Instrs))
	isRoot := make([]bool, len(s.Instrs))
	for i, in := range s.Instrs {
		g.ops[i] = in.Opcode
		if len(in.Operands) == 0 {
			continue
		}
		if !inGraph[i] {
			inGraph[i] = true
			isRoot[i] = true
		}
		for _, opID := range in.Operands {
			j, ok := idToIdx[opID]
			if !ok {
				continue
			}
			if isRoot[j] {
				isRoot[j] = false
			}
			inGraph[j] = true
			g.deps[i] = append(g.deps[i], j)
		}
	}
	for i := range s.Instrs {
		if inGraph[i] && isRoot[i] {
			g.roots = append(g.roots, i)
		}
	}
	return g
}

// refChainsOf returns the dependency chains (as opcode-sequence strings)
// of the snapshot — MakeChains over every root, recursively. The result
// is a sorted multiset.
func refChainsOf(s *mir.Snapshot) []string {
	g := refBuildGraph(s)
	var out []string
	var path []string
	onPath := map[int]bool{}
	var walk func(n int)
	walk = func(n int) {
		if len(out) >= maxChains {
			return
		}
		if onPath[n] || len(path) >= maxChainLen {
			// Cycle (phi back edge) or depth cap: terminate the chain here.
			out = append(out, strings.Join(path, chainSep))
			return
		}
		path = append(path, g.ops[n])
		onPath[n] = true
		if len(g.deps[n]) == 0 {
			out = append(out, strings.Join(path, chainSep))
		} else {
			for _, d := range g.deps[n] {
				walk(d)
			}
		}
		onPath[n] = false
		path = path[:len(path)-1]
	}
	for _, r := range g.roots {
		walk(r)
	}
	sort.Strings(out)
	return out
}

// refDiffChainSets computes δ⁻ and δ⁺ between the pre- and post-pass
// chain collections (sorted string multisets).
func refDiffChainSets(pre, post []string) (removed, added []string) {
	preCount := map[string]int{}
	for _, c := range pre {
		preCount[c]++
	}
	postCount := map[string]int{}
	for _, c := range post {
		postCount[c]++
	}
	var p, q []string
	for _, c := range pre {
		if postCount[c] == 0 {
			p = append(p, c)
		}
	}
	for _, c := range post {
		if preCount[c] == 0 {
			q = append(q, c)
		}
	}
	// Multiplicity drops/rises for chains present on both sides.
	seen := map[string]bool{}
	for c, n := range preCount {
		if seen[c] {
			continue
		}
		seen[c] = true
		m := postCount[c]
		if m == 0 {
			continue // handled by the alignment path
		}
		if n > m {
			removed = append(removed, c)
		} else if m > n {
			added = append(added, c)
		}
	}
	if len(p) > maxPairCands {
		p = p[:maxPairCands]
	}
	if len(q) > maxPairCands {
		q = q[:maxPairCands]
	}

	usedQ := make([]bool, len(q))
	for _, pc := range p {
		pt := strings.Split(pc, chainSep)
		bestScore, bestIdx := 0, -1
		for qi, qc := range q {
			score := lcsLen(pt, strings.Split(qc, chainSep))
			if score > bestScore {
				bestScore, bestIdx = score, qi
			}
		}
		if bestIdx < 0 {
			removed = append(removed, pc)
			continue
		}
		usedQ[bestIdx] = true
		qt := strings.Split(q[bestIdx], chainSep)
		rem, add := alignDiff(pt, qt)
		removed = append(removed, rem...)
		added = append(added, add...)
	}
	for qi, qc := range q {
		if !usedQ[qi] {
			added = append(added, qc)
		}
	}
	return sortedSet(removed), sortedSet(added)
}

// lcsLen is the longest-common-subsequence length of two token sequences.
func lcsLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// alignDiff aligns two chains on their LCS and returns the removed runs of
// a and added runs of b, each anchored with the adjacent common element:
// for a = A→B→C→D and b = B→C→E it returns removed {A→B, C→D} and added
// {C→E}, matching §IV-D's example.
func alignDiff(a, b []string) (removed, added []string) {
	keepA, keepB := lcsMask(a, b)
	removed = runsWithAnchors(a, keepA)
	added = runsWithAnchors(b, keepB)
	return removed, added
}

// lcsMask marks the elements of a and b that belong to one LCS.
func lcsMask(a, b []string) (maskA, maskB []bool) {
	la, lb := len(a), len(b)
	dp := make([][]int16, la+1)
	for i := range dp {
		dp[i] = make([]int16, lb+1)
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if a[i-1] == b[j-1] {
				dp[i][j] = dp[i-1][j-1] + 1
			} else if dp[i-1][j] >= dp[i][j-1] {
				dp[i][j] = dp[i-1][j]
			} else {
				dp[i][j] = dp[i][j-1]
			}
		}
	}
	maskA = make([]bool, la)
	maskB = make([]bool, lb)
	for i, j := la, lb; i > 0 && j > 0; {
		switch {
		case a[i-1] == b[j-1]:
			maskA[i-1], maskB[j-1] = true, true
			i--
			j--
		case dp[i-1][j] >= dp[i][j-1]:
			i--
		default:
			j--
		}
	}
	return maskA, maskB
}

// runsWithAnchors extracts each maximal run of non-kept elements, extended
// with the adjacent kept element on each side when present.
func runsWithAnchors(seq []string, kept []bool) []string {
	var out []string
	i := 0
	for i < len(seq) {
		if kept[i] {
			i++
			continue
		}
		j := i
		for j < len(seq) && !kept[j] {
			j++
		}
		start, end := i, j // run [i, j)
		if start > 0 {
			start-- // include preceding kept anchor
		}
		if end < len(seq) {
			end++ // include following kept anchor
		}
		out = append(out, strings.Join(seq[start:end], chainSep))
		i = j
	}
	return out
}

// sortedSet sorts and dedups a chain list in place, returning it.
func sortedSet(chains []string) []string {
	if len(chains) == 0 {
		return nil
	}
	sort.Strings(chains)
	out := chains[:1]
	for _, c := range chains[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// RefCompareChains is the reference COMPARECHAINS over sorted string sets.
func RefCompareChains(a, b []string, ratio float64, thr int) bool {
	maxEq := len(a)
	if len(b) < maxEq {
		maxEq = len(b)
	}
	if maxEq == 0 {
		return false
	}
	eq := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			eq++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return eq >= thr && float64(eq) >= ratio*float64(maxEq)
}

// RefSimilarDeltas is the reference delta similarity.
func RefSimilarDeltas(a, b RefDelta, ratio float64, thr int) bool {
	return RefCompareChains(a.Removed, b.Removed, ratio, thr) ||
		RefCompareChains(a.Added, b.Added, ratio, thr)
}

// ReferenceDetector is the original brute-force detector: string-based Δ
// extraction and a full database scan per compilation. It implements
// engine.Policy so whole engine runs can be replayed against it; the
// equivalence tests assert it and Detector produce identical decisions.
// Unlike Detector it does not deduplicate Matches (the historical
// behavior). The database is converted to the reference representation at
// first use; mutations after that are not observed.
type ReferenceDetector struct {
	DB    *Database
	Thr   int
	Ratio float64

	// Matches accumulates every similarity found, duplicates included.
	Matches []Match

	refVDCs []refVDC
}

type refVDC struct {
	cve  string
	dnas []*RefDNA
}

// NewReferenceDetector creates a reference detector over db with the
// paper's default threshold (3) and ratio (50%).
func NewReferenceDetector(db *Database) *ReferenceDetector {
	return &ReferenceDetector{DB: db, Thr: DefaultThr, Ratio: DefaultRatio}
}

var _ engine.Policy = (*ReferenceDetector)(nil)

// Active implements engine.Policy.
func (r *ReferenceDetector) Active() bool { return r.DB != nil && r.DB.Size() > 0 }

// Reset clears the accumulated matches.
func (r *ReferenceDetector) Reset() { r.Matches = nil }

// refDB converts the database to the reference representation once.
func (r *ReferenceDetector) refDB() []refVDC {
	if r.refVDCs != nil || r.DB == nil {
		return r.refVDCs
	}
	for _, vdc := range r.DB.VDCs {
		rv := refVDC{cve: vdc.CVE}
		for i := range vdc.DNAs {
			rv.dnas = append(rv.dnas, vdc.DNAs[i].Ref())
		}
		r.refVDCs = append(r.refVDCs, rv)
	}
	return r.refVDCs
}

// BeginCompile implements engine.Policy with the reference pipeline.
func (r *ReferenceDetector) BeginCompile(fnName string) (passes.Observer, func() engine.CompileDecision) {
	dna := RefDNA{FuncName: fnName, Passes: map[string]RefDelta{}}
	var de refDeltaExtractor
	obs := func(_ int, passName string, before, after *mir.Snapshot) {
		if before == nil || after == nil {
			return // pass skipped (already disabled)
		}
		delta := de.delta(before, after)
		if !delta.Empty() {
			dna.Passes[passName] = delta
		}
	}
	finish := func() engine.CompileDecision {
		return r.Decide(&dna)
	}
	return obs, finish
}

// Decide is the reference finish step: brute-force comparison of one
// function's DNA against every VDC DNA in the database.
func (r *ReferenceDetector) Decide(dna *RefDNA) engine.CompileDecision {
	disSet := map[string]bool{}
	for _, vdc := range r.refDB() {
		for _, vdna := range vdc.dnas {
			for passName, vdelta := range vdna.Passes {
				fdelta, ok := dna.Passes[passName]
				if !ok {
					continue
				}
				if RefSimilarDeltas(fdelta, vdelta, r.Ratio, r.Thr) {
					if !disSet[passName] {
						disSet[passName] = true
					}
					// The reference scan does not attribute witness chains.
					r.Matches = append(r.Matches, Match{CVE: vdc.cve, VDCFunc: vdna.FuncName, Pass: passName, ChainID: NoChain})
				}
			}
		}
	}
	if len(disSet) == 0 {
		return engine.CompileDecision{}
	}
	names := make([]string, 0, len(disSet))
	noJIT := false
	for name := range disSet {
		if !passes.Disableable(name) {
			noJIT = true
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if noJIT {
		return engine.CompileDecision{NoJIT: true, DisabledPasses: names}
	}
	return engine.CompileDecision{DisabledPasses: names}
}

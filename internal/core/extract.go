package core

import (
	"sort"
	"strings"

	"github.com/jitbull/jitbull/internal/mir"
)

// Resource caps for the Δ extractor. Pathological graphs (deep diamonds)
// can have exponentially many root→leaf paths; extraction truncates
// deterministically instead of blowing up.
const (
	maxChains    = 4096
	maxChainLen  = 48
	maxPairCands = 512
)

// chainSep joins opcode names into a chain string.
const chainSep = "→"

// ExtractDelta implements Algorithm 1: build the instruction dependency
// graphs of IR_{i-1} and IR_i, enumerate their root→leaf dependency
// chains, and compute the removed (δ⁻) and added (δ⁺) sub-chains.
func ExtractDelta(before, after *mir.Snapshot) Delta {
	pre := chainsOf(before)
	post := chainsOf(after)
	removed, added := diffChainSets(pre, post)
	return Delta{Removed: removed, Added: added}
}

// deltaExtractor memoizes the chain multiset of the most recent snapshot:
// consecutive passes share IR snapshots (pass i's "after" is pass i+1's
// "before"), so each snapshot's chains are computed exactly once per
// compilation.
type deltaExtractor struct {
	lastSnap   *mir.Snapshot
	lastChains []string
}

func (de *deltaExtractor) delta(before, after *mir.Snapshot) Delta {
	if snapshotsEqual(before, after) {
		// The pass changed nothing: empty delta, and the memo (if any)
		// stays valid for the new snapshot pointer.
		if de.lastSnap == before {
			de.lastSnap = after
		}
		return Delta{}
	}
	var pre []string
	if before == de.lastSnap && before != nil {
		pre = de.lastChains
	} else {
		pre = chainsOf(before)
	}
	post := chainsOf(after)
	de.lastSnap, de.lastChains = after, post
	removed, added := diffChainSets(pre, post)
	return Delta{Removed: removed, Added: added}
}

// snapshotsEqual reports whether two snapshots are structurally identical
// up to instruction renumbering-free equality (same order, opcodes and
// operand references).
func snapshotsEqual(a, b *mir.Snapshot) bool {
	if len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Instrs {
		x, y := &a.Instrs[i], &b.Instrs[i]
		if x.ID != y.ID || x.Opcode != y.Opcode || len(x.Operands) != len(y.Operands) {
			return false
		}
		for j := range x.Operands {
			if x.Operands[j] != y.Operands[j] {
				return false
			}
		}
	}
	return true
}

// depGraph is the dependency-graph form of one IR snapshot (BuildGraph in
// Algorithm 1): for every instruction with operands, edges point from the
// instruction to each operand ("dependency"); roots are instructions that
// are not a dependency of any other instruction.
type depGraph struct {
	ops   []string // opcode by node index
	deps  [][]int  // node -> dependency node indexes
	roots []int
}

func buildGraph(s *mir.Snapshot) depGraph {
	idToIdx := make(map[int]int, len(s.Instrs))
	for i, in := range s.Instrs {
		idToIdx[in.ID] = i
	}
	g := depGraph{
		ops:  make([]string, len(s.Instrs)),
		deps: make([][]int, len(s.Instrs)),
	}
	inGraph := make([]bool, len(s.Instrs))
	isRoot := make([]bool, len(s.Instrs))
	for i, in := range s.Instrs {
		g.ops[i] = in.Opcode
		if len(in.Operands) == 0 {
			continue
		}
		if !inGraph[i] {
			inGraph[i] = true
			isRoot[i] = true
		}
		for _, opID := range in.Operands {
			j, ok := idToIdx[opID]
			if !ok {
				continue
			}
			if isRoot[j] {
				isRoot[j] = false
			}
			inGraph[j] = true
			g.deps[i] = append(g.deps[i], j)
		}
	}
	for i := range s.Instrs {
		if inGraph[i] && isRoot[i] {
			g.roots = append(g.roots, i)
		}
	}
	return g
}

// chainsOf returns the dependency chains (as opcode-sequence strings) of
// the snapshot — MakeChains over every root. The result is a sorted
// multiset: two different instruction paths with the same opcode sequence
// yield two entries, so duplicate-elimination by later passes stays
// observable.
func chainsOf(s *mir.Snapshot) []string {
	g := buildGraph(s)
	var out []string
	var path []string
	onPath := map[int]bool{}
	var walk func(n int)
	walk = func(n int) {
		if len(out) >= maxChains {
			return
		}
		if onPath[n] || len(path) >= maxChainLen {
			// Cycle (phi back edge) or depth cap: terminate the chain here.
			out = append(out, strings.Join(path, chainSep))
			return
		}
		path = append(path, g.ops[n])
		onPath[n] = true
		if len(g.deps[n]) == 0 {
			out = append(out, strings.Join(path, chainSep))
		} else {
			for _, d := range g.deps[n] {
				walk(d)
			}
		}
		onPath[n] = false
		path = path[:len(path)-1]
	}
	for _, r := range g.roots {
		walk(r)
	}
	sort.Strings(out)
	return out
}

// diffChainSets computes δ⁻ and δ⁺ between the pre- and post-pass chain
// collections. Chains whose multiplicity did not change cancel; a chain
// whose count dropped (classic CSE of a duplicate) is emitted whole into
// δ⁻ (and symmetrically for δ⁺); each remaining brand-new/brand-gone
// chain is aligned with its best-matching counterpart and the differing
// runs (anchored on an adjacent common element, as in the paper's worked
// example) are emitted.
func diffChainSets(pre, post []string) (removed, added []string) {
	preCount := map[string]int{}
	for _, c := range pre {
		preCount[c]++
	}
	postCount := map[string]int{}
	for _, c := range post {
		postCount[c]++
	}
	var p, q []string
	for _, c := range pre {
		if postCount[c] == 0 {
			p = append(p, c)
		}
	}
	for _, c := range post {
		if preCount[c] == 0 {
			q = append(q, c)
		}
	}
	// Multiplicity drops/rises for chains present on both sides.
	seen := map[string]bool{}
	for c, n := range preCount {
		if seen[c] {
			continue
		}
		seen[c] = true
		m := postCount[c]
		if m == 0 {
			continue // handled by the alignment path
		}
		if n > m {
			removed = append(removed, c)
		} else if m > n {
			added = append(added, c)
		}
	}
	if len(p) > maxPairCands {
		p = p[:maxPairCands]
	}
	if len(q) > maxPairCands {
		q = q[:maxPairCands]
	}

	usedQ := make([]bool, len(q))
	for _, pc := range p {
		pt := strings.Split(pc, chainSep)
		bestScore, bestIdx := 0, -1
		for qi, qc := range q {
			score := lcsLen(pt, strings.Split(qc, chainSep))
			if score > bestScore {
				bestScore, bestIdx = score, qi
			}
		}
		if bestIdx < 0 {
			removed = append(removed, pc)
			continue
		}
		usedQ[bestIdx] = true
		qt := strings.Split(q[bestIdx], chainSep)
		rem, add := alignDiff(pt, qt)
		removed = append(removed, rem...)
		added = append(added, add...)
	}
	for qi, qc := range q {
		if !usedQ[qi] {
			added = append(added, qc)
		}
	}
	return sortedSet(removed), sortedSet(added)
}

// lcsLen is the longest-common-subsequence length of two token sequences.
func lcsLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// alignDiff aligns two chains on their LCS and returns the removed runs of
// a and added runs of b, each anchored with the adjacent common element:
// for a = A→B→C→D and b = B→C→E it returns removed {A→B, C→D} and added
// {C→E}, matching §IV-D's example.
func alignDiff(a, b []string) (removed, added []string) {
	keepA, keepB := lcsMask(a, b)
	removed = runsWithAnchors(a, keepA)
	added = runsWithAnchors(b, keepB)
	return removed, added
}

// lcsMask marks the elements of a and b that belong to one LCS.
func lcsMask(a, b []string) (maskA, maskB []bool) {
	la, lb := len(a), len(b)
	dp := make([][]int16, la+1)
	for i := range dp {
		dp[i] = make([]int16, lb+1)
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if a[i-1] == b[j-1] {
				dp[i][j] = dp[i-1][j-1] + 1
			} else if dp[i-1][j] >= dp[i][j-1] {
				dp[i][j] = dp[i-1][j]
			} else {
				dp[i][j] = dp[i][j-1]
			}
		}
	}
	maskA = make([]bool, la)
	maskB = make([]bool, lb)
	for i, j := la, lb; i > 0 && j > 0; {
		switch {
		case a[i-1] == b[j-1]:
			maskA[i-1], maskB[j-1] = true, true
			i--
			j--
		case dp[i-1][j] >= dp[i][j-1]:
			i--
		default:
			j--
		}
	}
	return maskA, maskB
}

// runsWithAnchors extracts each maximal run of non-kept elements, extended
// with the adjacent kept element on each side when present.
func runsWithAnchors(seq []string, kept []bool) []string {
	var out []string
	i := 0
	for i < len(seq) {
		if kept[i] {
			i++
			continue
		}
		j := i
		for j < len(seq) && !kept[j] {
			j++
		}
		start, end := i, j // run [i, j)
		if start > 0 {
			start-- // include preceding kept anchor
		}
		if end < len(seq) {
			end++ // include following kept anchor
		}
		out = append(out, strings.Join(seq[start:end], chainSep))
		i = j
	}
	return out
}

package core

import (
	"slices"
	"strings"
	"sync"

	"github.com/jitbull/jitbull/internal/mir"
)

// Resource caps for the Δ extractor. Pathological graphs (deep diamonds)
// can have exponentially many root→leaf paths; extraction truncates
// deterministically instead of blowing up.
const (
	maxChains    = 4096
	maxChainLen  = 48
	maxPairCands = 512
)

// chainSep joins opcode names into a chain string.
const chainSep = "→"

// ExtractDelta implements Algorithm 1: build the instruction dependency
// graphs of IR_{i-1} and IR_i, enumerate their root→leaf dependency
// chains, and compute the removed (δ⁻) and added (δ⁺) sub-chains, as
// interned chain-ID sets. The result is defined to be identical (chain for
// chain) to RefExtractDelta, the retained string-based reference.
func ExtractDelta(before, after *mir.Snapshot) Delta {
	de := newDeltaExtractor()
	defer de.release()
	pre := de.chainsOf(before)
	post := de.chainsOf(after)
	removed, added := de.diffChainSets(pre, post)
	return Delta{Removed: removed, Added: added}
}

// extractorPool recycles deltaExtractors — and with them the dependency
// graph, DFS, and diff scratch buffers — across compilations.
var extractorPool = sync.Pool{New: func() any { return &deltaExtractor{} }}

// newDeltaExtractor returns a pooled extractor with a cleared memo.
func newDeltaExtractor() *deltaExtractor {
	de := extractorPool.Get().(*deltaExtractor)
	de.lastSnap = nil
	de.lastChains = nil
	return de
}

// release returns the extractor (and its scratch) to the pool.
func (de *deltaExtractor) release() { extractorPool.Put(de) }

// deltaExtractor carries the per-compilation memo plus reusable scratch
// for graph building, chain enumeration, and chain-set diffing, so a
// steady-state Δ extraction allocates only the returned chain sets.
//
// The memo holds the chain multiset of the most recent snapshot:
// consecutive passes share IR snapshots (pass i's "after" is pass i+1's
// "before"), so each snapshot's chains are computed exactly once per
// compilation.
type deltaExtractor struct {
	lastSnap   *mir.Snapshot
	lastChains []uint32

	// buildGraph scratch.
	g       depGraph
	idSlice []int32     // dense ID -> node index (-1 = absent)
	idMap   map[int]int // sparse fallback
	inGraph []bool
	isRoot  []bool

	// chain-walk scratch.
	stack  []walkFrame
	onPath []bool
	path   []uint32

	// diff scratch.
	p, q             []uint32
	usedQ            []bool
	lcsPrev, lcsCur  []int32
	dp               []int16
	maskA, maskB     []bool
	removedB, addedB []uint32
}

func (de *deltaExtractor) delta(before, after *mir.Snapshot) Delta {
	if snapshotsEqual(before, after) {
		// The pass changed nothing: empty delta, and the memo (if any)
		// stays valid for the new snapshot pointer.
		if de.lastSnap == before {
			de.lastSnap = after
		}
		return Delta{}
	}
	var pre []uint32
	if before == de.lastSnap && before != nil {
		pre = de.lastChains
	} else {
		pre = de.chainsOf(before)
	}
	post := de.chainsOf(after)
	de.lastSnap, de.lastChains = after, post
	removed, added := de.diffChainSets(pre, post)
	return Delta{Removed: removed, Added: added}
}

// snapshotsEqual reports whether two snapshots are structurally identical
// up to instruction renumbering-free equality (same order, opcodes and
// operand references).
func snapshotsEqual(a, b *mir.Snapshot) bool {
	if len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Instrs {
		x, y := &a.Instrs[i], &b.Instrs[i]
		if x.ID != y.ID || x.Opcode != y.Opcode || len(x.Operands) != len(y.Operands) {
			return false
		}
		for j := range x.Operands {
			if x.Operands[j] != y.Operands[j] {
				return false
			}
		}
	}
	return true
}

// depGraph is the dependency-graph form of one IR snapshot (BuildGraph in
// Algorithm 1) in compressed-sparse-row layout: node i's dependencies are
// depList[depStart[i]:depStart[i+1]]; roots are instructions that are not
// a dependency of any other instruction. Opcodes are interned tokens.
type depGraph struct {
	toks     []uint32
	depStart []int32
	depList  []int32
	roots    []int32
}

// grow returns s resized to n, reusing its backing array when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// buildGraph rebuilds de.g from the snapshot, reusing all buffers.
func (de *deltaExtractor) buildGraph(s *mir.Snapshot) {
	n := len(s.Instrs)
	g := &de.g
	g.toks = grow(g.toks, n)
	g.depStart = grow(g.depStart, n+1)
	g.depList = g.depList[:0]
	g.roots = g.roots[:0]
	de.inGraph = grow(de.inGraph, n)
	de.isRoot = grow(de.isRoot, n)
	for i := range de.inGraph {
		de.inGraph[i] = false
		de.isRoot[i] = false
	}

	// Instruction-ID resolution: a dense slice when IDs are compact (the
	// common case), a map otherwise.
	maxID := 0
	for i := range s.Instrs {
		if id := s.Instrs[i].ID; id > maxID {
			maxID = id
		}
	}
	var lookup func(id int) (int, bool)
	if maxID >= 0 && maxID <= 4*n+64 {
		de.idSlice = grow(de.idSlice, maxID+1)
		for i := range de.idSlice {
			de.idSlice[i] = -1
		}
		for i := range s.Instrs {
			de.idSlice[s.Instrs[i].ID] = int32(i)
		}
		lookup = func(id int) (int, bool) {
			if id < 0 || id > maxID {
				return 0, false
			}
			j := de.idSlice[id]
			return int(j), j >= 0
		}
	} else {
		if de.idMap == nil {
			de.idMap = make(map[int]int, n)
		} else {
			clear(de.idMap)
		}
		for i := range s.Instrs {
			de.idMap[s.Instrs[i].ID] = i
		}
		lookup = func(id int) (int, bool) {
			j, ok := de.idMap[id]
			return j, ok
		}
	}

	for i := range s.Instrs {
		in := &s.Instrs[i]
		g.toks[i] = interner.Token(in.Opcode)
		g.depStart[i] = int32(len(g.depList))
		if len(in.Operands) == 0 {
			continue
		}
		if !de.inGraph[i] {
			de.inGraph[i] = true
			de.isRoot[i] = true
		}
		for _, opID := range in.Operands {
			j, ok := lookup(opID)
			if !ok {
				continue
			}
			de.isRoot[j] = false
			de.inGraph[j] = true
			g.depList = append(g.depList, int32(j))
		}
	}
	g.depStart[n] = int32(len(g.depList))
	for i := 0; i < n; i++ {
		if de.inGraph[i] && de.isRoot[i] {
			g.roots = append(g.roots, int32(i))
		}
	}
}

// walkFrame is one level of the iterative chain DFS. depIdx < 0 marks a
// node not yet entered; otherwise it is the next dependency to descend.
type walkFrame struct {
	node   int32
	depIdx int32
}

// chainsOf returns the dependency chains of the snapshot as interned chain
// IDs — MakeChains over every root. The result is a fresh, sorted
// multiset: two different instruction paths with the same opcode sequence
// yield two entries, so duplicate-elimination by later passes stays
// observable. The walk is an explicit-stack DFS with []bool on-path marks
// and mirrors the recursive reference step for step (including the
// maxChains and maxChainLen truncation points), so the chain multiset is
// identical to refChainsOf's.
func (de *deltaExtractor) chainsOf(s *mir.Snapshot) []uint32 {
	de.buildGraph(s)
	g := &de.g
	n := len(g.toks)
	de.onPath = grow(de.onPath, n)
	for i := range de.onPath {
		de.onPath[i] = false
	}
	de.path = de.path[:0]
	de.stack = de.stack[:0]
	out := make([]uint32, 0, len(g.roots)*2)

	emit := func() { out = append(out, interner.Chain(de.path)) }

	for _, r := range g.roots {
		de.stack = append(de.stack, walkFrame{node: r, depIdx: -1})
		for len(de.stack) > 0 {
			f := &de.stack[len(de.stack)-1]
			if f.depIdx < 0 {
				if len(out) >= maxChains {
					de.stack = de.stack[:len(de.stack)-1]
					continue
				}
				if de.onPath[f.node] || len(de.path) >= maxChainLen {
					// Cycle (phi back edge) or depth cap: terminate the
					// chain here.
					emit()
					de.stack = de.stack[:len(de.stack)-1]
					continue
				}
				de.path = append(de.path, g.toks[f.node])
				de.onPath[f.node] = true
				if g.depStart[f.node] == g.depStart[f.node+1] {
					emit()
					de.onPath[f.node] = false
					de.path = de.path[:len(de.path)-1]
					de.stack = de.stack[:len(de.stack)-1]
					continue
				}
				f.depIdx = 0
			}
			if next := g.depStart[f.node] + f.depIdx; next < g.depStart[f.node+1] {
				f.depIdx++
				de.stack = append(de.stack, walkFrame{node: g.depList[next], depIdx: -1})
				continue
			}
			de.onPath[f.node] = false
			de.path = de.path[:len(de.path)-1]
			de.stack = de.stack[:len(de.stack)-1]
		}
	}
	slices.Sort(out)
	return out
}

// diffChainSets computes δ⁻ and δ⁺ between the pre- and post-pass chain
// multisets (sorted chain IDs). Chains whose multiplicity did not change
// cancel; a chain whose count dropped (classic CSE of a duplicate) is
// emitted whole into δ⁻ (and symmetrically for δ⁺); each remaining
// brand-new/brand-gone chain is aligned with its best-matching counterpart
// and the differing runs (anchored on an adjacent common element, as in
// the paper's worked example) are emitted. Candidate ordering — which
// fixes the maxPairCands truncation and LCS tie-breaks — follows the
// chains' string forms, exactly as the string-sorted reference does.
func (de *deltaExtractor) diffChainSets(pre, post []uint32) (removed, added []uint32) {
	rem := de.removedB[:0]
	add := de.addedB[:0]
	p := de.p[:0]
	q := de.q[:0]

	// Merge-walk the sorted multisets: one-sided chains collect into p/q
	// (with multiplicity); both-sided chains with a count change are
	// emitted whole.
	i, j := 0, 0
	for i < len(pre) || j < len(post) {
		switch {
		case j >= len(post) || (i < len(pre) && pre[i] < post[j]):
			c := pre[i]
			for i < len(pre) && pre[i] == c {
				p = append(p, c)
				i++
			}
		case i >= len(pre) || post[j] < pre[i]:
			c := post[j]
			for j < len(post) && post[j] == c {
				q = append(q, c)
				j++
			}
		default:
			c := pre[i]
			n, m := 0, 0
			for i < len(pre) && pre[i] == c {
				n++
				i++
			}
			for j < len(post) && post[j] == c {
				m++
				j++
			}
			if n > m {
				rem = append(rem, c)
			} else if m > n {
				add = append(add, c)
			}
		}
	}

	cs := interner.chainsView()
	byStr := func(a, b uint32) int { return strings.Compare(cs[a].str, cs[b].str) }
	slices.SortFunc(p, byStr)
	slices.SortFunc(q, byStr)
	if len(p) > maxPairCands {
		p = p[:maxPairCands]
	}
	if len(q) > maxPairCands {
		q = q[:maxPairCands]
	}

	de.usedQ = grow(de.usedQ, len(q))
	for qi := range de.usedQ {
		de.usedQ[qi] = false
	}
	for _, pc := range p {
		pt := cs[pc].toks
		bestScore, bestIdx := 0, -1
		for qi, qc := range q {
			score := de.lcsLen(pt, cs[qc].toks)
			if score > bestScore {
				bestScore, bestIdx = score, qi
			}
		}
		if bestIdx < 0 {
			rem = append(rem, pc)
			continue
		}
		de.usedQ[bestIdx] = true
		qt := cs[q[bestIdx]].toks
		rem, add = de.alignDiff(pt, qt, rem, add)
	}
	for qi, qc := range q {
		if !de.usedQ[qi] {
			add = append(add, qc)
		}
	}

	de.p, de.q = p, q
	de.removedB, de.addedB = rem, add
	return copyIDSet(rem), copyIDSet(add)
}

// copyIDSet sorts and dedups scratch IDs into a fresh slice.
func copyIDSet(ids []uint32) []uint32 {
	if len(ids) == 0 {
		return nil
	}
	slices.Sort(ids)
	out := make([]uint32, 0, len(ids))
	out = append(out, ids[0])
	for _, c := range ids[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// lcsLen is the longest-common-subsequence length of two token sequences.
func (de *deltaExtractor) lcsLen(a, b []uint32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	de.lcsPrev = grow(de.lcsPrev, len(b)+1)
	de.lcsCur = grow(de.lcsCur, len(b)+1)
	prev, cur := de.lcsPrev, de.lcsCur
	for j := range prev {
		prev[j] = 0
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = 0
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	de.lcsPrev, de.lcsCur = prev, cur
	return int(prev[len(b)])
}

// alignDiff aligns two chains on their LCS and appends the removed runs of
// a and added runs of b (each anchored with the adjacent common element)
// to rem and add: for a = A→B→C→D and b = B→C→E it emits removed
// {A→B, C→D} and added {C→E}, matching §IV-D's example.
func (de *deltaExtractor) alignDiff(a, b []uint32, rem, add []uint32) ([]uint32, []uint32) {
	de.lcsMask(a, b)
	rem = de.runsWithAnchors(a, de.maskA, rem)
	add = de.runsWithAnchors(b, de.maskB, add)
	return rem, add
}

// lcsMask marks (into de.maskA/de.maskB) the elements of a and b that
// belong to one LCS, using the same dp tie-breaks as the reference.
func (de *deltaExtractor) lcsMask(a, b []uint32) {
	la, lb := len(a), len(b)
	w := lb + 1
	de.dp = grow(de.dp, (la+1)*w)
	dp := de.dp
	for j := 0; j <= lb; j++ {
		dp[j] = 0
	}
	for i := 1; i <= la; i++ {
		dp[i*w] = 0
		for j := 1; j <= lb; j++ {
			switch {
			case a[i-1] == b[j-1]:
				dp[i*w+j] = dp[(i-1)*w+j-1] + 1
			case dp[(i-1)*w+j] >= dp[i*w+j-1]:
				dp[i*w+j] = dp[(i-1)*w+j]
			default:
				dp[i*w+j] = dp[i*w+j-1]
			}
		}
	}
	de.maskA = grow(de.maskA, la)
	de.maskB = grow(de.maskB, lb)
	for i := range de.maskA {
		de.maskA[i] = false
	}
	for j := range de.maskB {
		de.maskB[j] = false
	}
	for i, j := la, lb; i > 0 && j > 0; {
		switch {
		case a[i-1] == b[j-1]:
			de.maskA[i-1], de.maskB[j-1] = true, true
			i--
			j--
		case dp[(i-1)*w+j] >= dp[i*w+j-1]:
			i--
		default:
			j--
		}
	}
}

// runsWithAnchors appends each maximal run of non-kept elements, extended
// with the adjacent kept element on each side when present, as an interned
// chain.
func (de *deltaExtractor) runsWithAnchors(seq []uint32, kept []bool, out []uint32) []uint32 {
	i := 0
	for i < len(seq) {
		if kept[i] {
			i++
			continue
		}
		j := i
		for j < len(seq) && !kept[j] {
			j++
		}
		start, end := i, j // run [i, j)
		if start > 0 {
			start-- // include preceding kept anchor
		}
		if end < len(seq) {
			end++ // include following kept anchor
		}
		out = append(out, interner.Chain(seq[start:end]))
		i = j
	}
	return out
}

package core

// Cross-process verdict serialization: the persistent artifact/verdict
// store (internal/store) must carry a recorded go/no-go verdict across
// process death, and the in-memory verdictPayload cannot travel as-is —
// Match.ChainID is an ID in the process-local interner, meaningless to
// any other process. The wire form therefore serializes witness chains by
// their "→"-joined string rendering (exactly what the DNA database has
// always persisted) and re-interns them on decode, so a replayed verdict
// carries the same attribution a live Decide would have produced.

import (
	"encoding/json"
	"fmt"
)

// wireMatch is the cross-process form of one Match: the witness chain by
// string, or "" with HasChain=false for the NoChain sentinel (degenerate
// thresholds match without a shared chain; "" is also a renderable chain
// of one empty token, so absence needs its own bit).
type wireMatch struct {
	CVE      string `json:"cve"`
	VDCFunc  string `json:"vdc_func"`
	Pass     string `json:"pass"`
	Chain    string `json:"chain,omitempty"`
	HasChain bool   `json:"has_chain,omitempty"`
	Side     string `json:"side,omitempty"`
}

// wireVerdict is the cross-process form of one recorded verdict.
type wireVerdict struct {
	Matches []wireMatch `json:"matches,omitempty"`
	Names   []string    `json:"names,omitempty"`
	NoJIT   bool        `json:"nojit,omitempty"`
}

// EncodeVerdict implements engine.VerdictCodec: it renders a verdict
// payload (as produced by TakeVerdictPayload) into self-contained bytes
// with witness chains in string form.
func (d *Detector) EncodeVerdict(payload any) ([]byte, error) {
	p, ok := payload.(*verdictPayload)
	if !ok || p == nil {
		return nil, fmt.Errorf("encode verdict: not a detector payload (%T)", payload)
	}
	w := wireVerdict{Names: p.names, NoJIT: p.noJIT}
	for _, m := range p.found {
		wm := wireMatch{CVE: m.CVE, VDCFunc: m.VDCFunc, Pass: m.Pass, Side: m.Side}
		if m.ChainID != NoChain {
			wm.Chain = ChainString(m.ChainID)
			wm.HasChain = true
		}
		w.Matches = append(w.Matches, wm)
	}
	return json.Marshal(w)
}

// DecodeVerdict implements engine.VerdictCodec: it parses bytes written
// by EncodeVerdict, re-interning every witness chain in this process's
// interner, and returns a payload ReplayVerdict accepts.
func (d *Detector) DecodeVerdict(data []byte) (any, error) {
	var w wireVerdict
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("decode verdict: %w", err)
	}
	p := &verdictPayload{names: w.Names, noJIT: w.NoJIT}
	for _, wm := range w.Matches {
		m := Match{CVE: wm.CVE, VDCFunc: wm.VDCFunc, Pass: wm.Pass, Side: wm.Side, ChainID: NoChain}
		if wm.HasChain {
			m.ChainID = InternChain(wm.Chain)
		}
		p.found = append(p.found, m)
	}
	return p, nil
}

package core

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadDatabase throws arbitrary bytes — seeded with a valid v2
// envelope, its truncations, a mutated checksum, a legacy v1 database,
// and garbage JSON — at the envelope parser and holds it to the
// persistence contract: it never panics, and it either returns a
// database that passes Validate or an error (corruption surfaces as
// *CorruptError, structural invalidity as a Validate error). A fuzz
// input that loads cleanly must also survive a save/load round trip.
func FuzzLoadDatabase(f *testing.F) {
	db := &Database{}
	db.Add(VDC{CVE: "CVE-FUZZ-1", DNAs: []DNA{{FuncName: "f"}}})
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.json")
	if err := db.Save(seedPath); err != nil {
		f.Fatalf("save seed: %v", err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatalf("read seed: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])               // truncation mid-envelope
	f.Add(valid[:len(valid)-2])               // truncation at the tail
	mutated := append([]byte(nil), valid...)  // checksum mismatch
	mutated[len(mutated)/2] ^= 0x20
	f.Add(mutated)
	f.Add([]byte(`{"vdcs": []}`))                                           // legacy v1
	f.Add([]byte(`{"vdcs": [{"cve":"C","dnas":[{"func":"f"}]}]}`))          // legacy v1 with content
	f.Add([]byte(`{"format":"jitbull-dna","version":99,"payload":{}}`))     // version skew
	f.Add([]byte(`{"format":"other","version":2,"payload":{}}`))            // foreign format
	f.Add([]byte(`{"format":"jitbull-dna","version":2,"crc32c":"00000000"}`)) // missing payload
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		db, err := LoadDatabase(path) // must not panic, whatever data holds
		if err != nil {
			if db != nil {
				t.Fatalf("error %v alongside a non-nil database", err)
			}
			return
		}
		if db == nil {
			t.Fatal("nil database with nil error")
		}
		if verr := db.Validate(); verr != nil {
			t.Fatalf("LoadDatabase accepted an invalid database: %v", verr)
		}
		// A database that loaded must round-trip.
		rt := filepath.Join(t.TempDir(), "rt.json")
		if err := db.Save(rt); err != nil {
			t.Fatalf("round-trip save failed: %v", err)
		}
		if _, err := LoadDatabase(rt); err != nil {
			t.Fatalf("round-trip load failed: %v", err)
		}
		// The fail-safe path must always produce a usable database.
		fs, _ := LoadDatabaseFailSafe(path)
		if fs == nil {
			t.Fatal("LoadDatabaseFailSafe returned a nil database")
		}
	})
}

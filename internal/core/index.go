package core

import "sort"

// MatchIndex is an immutable compiled form of a Database: per optimization
// pass, an inverted index from chain ID to the (VDC, DNA) deltas whose δ⁻
// or δ⁺ set contains that chain, with per-delta sizes. A candidate DNA is
// then compared only against deltas that share at least one chain with it
// (everything else cannot reach Thr), instead of scanning every
// VDC × DNA × pass in the database.
//
// Build-time pruning: a delta side with fewer than Thr chains can never
// satisfy eq ≥ Thr (eq is bounded by the smaller set), so its postings are
// dropped entirely. The index is therefore specific to the Thr it was
// built for; Database.Index caches one per Thr.
type MatchIndex struct {
	thr     int
	entries []indexEntry
	byPass  map[string]*passPostings
}

// indexEntry identifies one (VDC, DNA, pass) delta and its side sizes.
type indexEntry struct {
	cve        string
	vdcFunc    string
	pass       string
	removedLen int
	addedLen   int
}

// passPostings is the inverted index of one optimization pass.
type passPostings struct {
	removed map[uint32][]uint32 // chain ID -> entry IDs with the chain in δ⁻
	added   map[uint32][]uint32 // chain ID -> entry IDs with the chain in δ⁺
	all     []uint32            // every entry ID of this pass (degenerate thresholds)
}

// buildMatchIndex compiles db for the given Thr. Deterministic: entries
// are numbered in (VDC, DNA, sorted pass name) order.
func buildMatchIndex(db *Database, thr int) *MatchIndex {
	ix := &MatchIndex{thr: thr, byPass: map[string]*passPostings{}}
	minShared := thr
	if minShared < 1 {
		minShared = 1
	}
	var passNames []string
	for _, vdc := range db.VDCs {
		for _, dna := range vdc.DNAs {
			passNames = passNames[:0]
			for name := range dna.Passes {
				passNames = append(passNames, name)
			}
			sort.Strings(passNames)
			for _, name := range passNames {
				delta := dna.Passes[name]
				id := uint32(len(ix.entries))
				ix.entries = append(ix.entries, indexEntry{
					cve:        vdc.CVE,
					vdcFunc:    dna.FuncName,
					pass:       name,
					removedLen: len(delta.Removed),
					addedLen:   len(delta.Added),
				})
				pp := ix.byPass[name]
				if pp == nil {
					pp = &passPostings{removed: map[uint32][]uint32{}, added: map[uint32][]uint32{}}
					ix.byPass[name] = pp
				}
				pp.all = append(pp.all, id)
				if len(delta.Removed) >= minShared {
					for _, c := range delta.Removed {
						pp.removed[c] = append(pp.removed[c], id)
					}
				}
				if len(delta.Added) >= minShared {
					for _, c := range delta.Added {
						pp.added[c] = append(pp.added[c], id)
					}
				}
			}
		}
	}
	return ix
}

// NoChain is the witness-chain sentinel for matches that needed no shared
// chain (degenerate thresholds accept any pair of non-empty sides).
const NoChain = ^uint32(0)

// matchSide says which delta side witnessed a match.
type matchSide uint8

// Match sides.
const (
	sideNone matchSide = iota
	sideRemoved
	sideAdded
)

// String renders the side as it appears in Match.Side and audit events.
func (s matchSide) String() string {
	switch s {
	case sideRemoved:
		return "removed"
	case sideAdded:
		return "added"
	default:
		return ""
	}
}

// matchScratch is the reusable query state of one Detector: a per-entry
// hit counter with a touched list for O(hits) reset, a matched set so an
// entry similar on both sides is reported once, and per-entry witness
// attribution (the first — smallest, since candidates are sorted — chain
// shared with the entry, and the side it was shared on).
type matchScratch struct {
	counts     []uint32
	matched    []bool
	witness    []uint32 // chain that first touched the entry this side
	touched    []uint32
	matchedIDs []uint32
	sides      []matchSide // parallel to matchedIDs
	chains     []uint32    // parallel to matchedIDs
	probes     int         // entries scored by the last query (metrics)
}

func (sc *matchScratch) ensure(n int) {
	if cap(sc.counts) < n {
		sc.counts = make([]uint32, n)
		sc.matched = make([]bool, n)
		sc.witness = make([]uint32, n)
	} else {
		sc.counts = sc.counts[:n]
		sc.matched = sc.matched[:n]
		sc.witness = sc.witness[:n]
	}
}

// query calls emit for every database delta of the given pass that is
// similar to d under (ratio, thr) — the indexed form of Algorithm 2's
// inner loop. Early exits: a pass absent from the database costs one map
// lookup; a candidate side smaller than Thr is skipped outright; and only
// deltas sharing at least one chain with the candidate are ever visited or
// scored. emit receives the witness attribution: the smallest chain shared
// with the matched delta and the side it was shared on (NoChain/sideNone
// under degenerate thresholds, which need no shared chain).
func (ix *MatchIndex) query(pass string, d Delta, ratio float64, thr int, sc *matchScratch, emit func(cve, vdcFunc string, chain uint32, side matchSide)) {
	pp := ix.byPass[pass]
	if pp == nil {
		return
	}
	sc.ensure(len(ix.entries))
	sc.matchedIDs = sc.matchedIDs[:0]
	sc.sides = sc.sides[:0]
	sc.chains = sc.chains[:0]
	sc.probes = 0
	if thr <= 0 && ratio <= 0 {
		// Degenerate thresholds accept any pair of non-empty sides without
		// needing a shared chain; scan the pass bucket directly.
		for _, id := range pp.all {
			e := &ix.entries[id]
			sc.probes++
			if (len(d.Removed) > 0 && e.removedLen > 0) || (len(d.Added) > 0 && e.addedLen > 0) {
				emit(e.cve, e.vdcFunc, NoChain, sideNone)
			}
		}
		return
	}
	ix.querySide(pp.removed, d.Removed, sideRemoved, ratio, thr, sc)
	ix.querySide(pp.added, d.Added, sideAdded, ratio, thr, sc)
	for i, id := range sc.matchedIDs {
		e := &ix.entries[id]
		emit(e.cve, e.vdcFunc, sc.chains[i], sc.sides[i])
		sc.matched[id] = false
	}
}

// querySide accumulates shared-chain counts for one delta side and records
// the entries reaching both thresholds into sc.matchedIDs. Candidates are
// sorted ascending, so the chain that first touches an entry is the
// smallest shared one — the recorded witness.
func (ix *MatchIndex) querySide(post map[uint32][]uint32, cand []uint32, side matchSide, ratio float64, thr int, sc *matchScratch) {
	minShared := thr
	if minShared < 1 {
		minShared = 1
	}
	if len(cand) < minShared {
		return
	}
	sc.touched = sc.touched[:0]
	for _, c := range cand {
		for _, id := range post[c] {
			if sc.counts[id] == 0 {
				sc.touched = append(sc.touched, id)
				sc.witness[id] = c
			}
			sc.counts[id]++
		}
	}
	sc.probes += len(sc.touched)
	for _, id := range sc.touched {
		eq := int(sc.counts[id])
		sc.counts[id] = 0
		e := &ix.entries[id]
		maxEq := e.removedLen
		if side == sideAdded {
			maxEq = e.addedLen
		}
		if len(cand) < maxEq {
			maxEq = len(cand)
		}
		if eq >= thr && float64(eq) >= ratio*float64(maxEq) && !sc.matched[id] {
			sc.matched[id] = true
			sc.matchedIDs = append(sc.matchedIDs, id)
			sc.sides = append(sc.sides, side)
			sc.chains = append(sc.chains, sc.witness[id])
		}
	}
}

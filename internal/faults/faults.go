// Package faults is the deterministic fault-injection framework behind
// the chaos suite: named injection points are threaded through the entire
// JIT compile path (mirbuild → optimization passes → LIR lowering →
// register allocation → native dispatch) and the VDC database's
// persistence, and an Injector decides — from a seed, per-rule
// probabilities, after-N-hits offsets and fire-count caps — whether a
// given hit of a point fails, panics, or stalls.
//
// Everything is deterministic: the same seed, rules and call sequence
// produce the same faults, so any chaos-suite failure is replayable from
// its (seed, rules, program) triple alone. The injector also records every
// fault it fired, which the chaos suite matches 1:1 against the engine's
// typed CompileError accounting — an injected fault that is not surfaced
// as a supervised, attributed failure is itself a bug.
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/jitbull/jitbull/internal/obs"
)

// Point names one injection site in the compile path or the database
// persistence layer.
type Point string

// The injection points. PointPass is hit once per executed optimization
// pass (detail: the pass name); the others once per entry into their
// stage.
const (
	PointMIRBuild Point = "mirbuild" // MIR graph construction
	PointPass     Point = "pass"     // each optimization pass (detail: pass name)
	PointLower    Point = "lir"      // LIR lowering
	PointRegalloc Point = "regalloc" // register allocation
	PointFuse     Point = "fuse"     // superinstruction fusion
	PointNative   Point = "native"   // native-code dispatch (detail: function)
	// PointMCEmit and PointMCInstall gate the machine-code tier attach:
	// emit is hit before the LIR→amd64 lowering runs, install before the
	// W^X page install. A fault at either point must degrade the function
	// to the threaded tier (the artifact stays installed) with a
	// quarantine verdict on the audit log — never fail the whole compile.
	PointMCEmit    Point = "mc.emit"    // machine-code lowering (detail: function)
	PointMCInstall Point = "mc.install" // W^X page install (detail: function)
	PointDBSave    Point = "db.save"    // VDC database save
	PointDBLoad    Point = "db.load"    // VDC database load
	// PointQueue is hit once per background compile job at startup (detail:
	// function). It is not part of CompilePoints(): randomized chaos
	// schedules run synchronous engines, where the point is never reached;
	// target it explicitly to exercise the queue (stall exhausts the job's
	// step budget, panic must be contained by the worker-side supervisor).
	PointQueue Point = "queue"
	// PointOSR and PointDeopt gate the tier-transition edges of the OSR
	// machinery: PointOSR is hit once per attempted loop-header on-stack
	// replacement (detail: function), immediately before native registers
	// are materialized; PointDeopt once per guard-failure deopt exit
	// (detail: function), before interpreter state is reconstructed. They
	// are not part of CompilePoints() — they sit on the dispatch path, not
	// the compile path, and randomized compile-path schedules would never
	// reach them in interpreter-reference cells; target them explicitly.
	// Containment contract: an injected fault at either point must refuse
	// the transition (stay on the current tier) with 1:1 accounting, never
	// corrupt frame state.
	PointOSR   Point = "osr"   // loop-header OSR entry (detail: function)
	PointDeopt Point = "deopt" // guard-failure deopt exit (detail: function)

	// Store points gate the persistent artifact/verdict store's disk
	// boundary (internal/store): PointStorePut is hit once per record
	// write, PointStoreGet once per record read, PointStoreManifest once
	// per snapshot/restore manifest operation (detail: record key or
	// manifest path). They are not part of CompilePoints() — the store
	// contains its own faults (quarantine + cold-start degradation) and a
	// compile-path schedule would veto cacheability entirely. Target them
	// explicitly; they accept the disk kinds (DiskKinds) in addition to
	// the generic ones.
	PointStorePut      Point = "store.put"
	PointStoreGet      Point = "store.get"
	PointStoreManifest Point = "store.manifest"

	// PointWatchdog seeds the anomaly watchdog (internal/obs): the
	// watchdog's seed probe consults it once per observed signal (detail:
	// "kind:function"), and every fired fault must synthesize exactly one
	// "seeded" anomaly — audit event, metrics bump, flight-recorder
	// episode — with panic kinds contained inside the probe. It is not
	// part of CompilePoints(): it sits on the monitoring path, not the
	// compile path. The chaos campaign uses it to prove 1:1 accounting
	// between injected causes and watchdog findings, and zero false
	// positives when no rules are armed.
	PointWatchdog Point = "watchdog"
)

// StorePoints lists the persistent store's injection points — the disk
// boundary a store chaos campaign sweeps.
func StorePoints() []Point {
	return []Point{PointStorePut, PointStoreGet, PointStoreManifest}
}

// CompilePoints lists the points on the per-function compile/dispatch
// path — the ones a randomized chaos schedule draws from. Database
// persistence points are exercised separately (they are not part of a
// compilation and have their own fail-safe semantics).
func CompilePoints() []Point {
	return []Point{PointMIRBuild, PointPass, PointLower, PointRegalloc, PointFuse, PointMCEmit, PointMCInstall, PointNative}
}

// KnownPoints lists every registered injection point — the compile path,
// database persistence, the background queue, and the OSR/deopt
// tier-transition edges. This is the validation set for ParseRule and the
// chaos CLI's -points flag.
func KnownPoints() []Point {
	pts := append(CompilePoints(), PointDBSave, PointDBLoad, PointQueue, PointOSR, PointDeopt, PointWatchdog)
	return append(pts, StorePoints()...)
}

// Kind is what happens when a scheduled fault fires.
type Kind string

// Fault kinds. KindStall models a pathological compile time (the failure
// class of JIT performance bugs): instead of sleeping, it deterministically
// exhausts the compilation's step budget, so the budget mechanism — not
// wall-clock flakiness — is what the test exercises.
const (
	KindError Kind = "error" // the point returns an injected error
	KindPanic Kind = "panic" // the point panics (supervisor must contain it)
	KindStall Kind = "stall" // pathological compile time: trips the step budget

	// Disk-fault kinds, meaningful at the store points (and accepted, as
	// generic errors, everywhere else). The first three model silent
	// corruption — the store must WRITE the damaged bytes and report
	// success, so detection happens at read time via the record checksum;
	// the last two model I/O errors, one hard (the put is dropped) and one
	// transient (consumed by the store's bounded retry loop).
	KindTornWrite Kind = "torn-write"    // only a prefix of the record reaches disk
	KindBitFlip   Kind = "bit-flip"      // one bit of the record is flipped on disk
	KindTruncate  Kind = "truncate"      // the record file is truncated to zero length
	KindENOSPC    Kind = "enospc"        // hard out-of-space error: the write fails
	KindEIO       Kind = "eio-transient" // transient I/O error: retriable
)

// Kinds lists the generic fault kinds every point accepts — the set
// randomized compile-path schedules draw from. Disk kinds are excluded on
// purpose: outside the store they would just be oddly-named errors.
func Kinds() []Kind { return []Kind{KindError, KindPanic, KindStall} }

// DiskKinds lists the disk-fault kinds of the persistent store's chaos
// campaign.
func DiskKinds() []Kind {
	return []Kind{KindTornWrite, KindBitFlip, KindTruncate, KindENOSPC, KindEIO}
}

// Rule schedules faults at one point.
type Rule struct {
	Point Point `json:"point"`
	Kind  Kind  `json:"kind"`
	// Probability of firing per eligible hit. Values <= 0 or >= 1 fire on
	// every eligible hit (the fully deterministic schedule).
	Probability float64 `json:"probability,omitempty"`
	// AfterHits skips the first N hits of the point before the rule
	// becomes eligible.
	AfterHits int `json:"after_hits,omitempty"`
	// Times caps how often this rule fires in total (0 = unlimited).
	Times int `json:"times,omitempty"`
}

// String renders the rule in the form ParseRule accepts:
// point:kind[:probability[:afterhits[:times]]].
func (r Rule) String() string {
	return fmt.Sprintf("%s:%s:%g:%d:%d", r.Point, r.Kind, r.Probability, r.AfterHits, r.Times)
}

// ParseRule parses "point:kind[:probability[:afterhits[:times]]]", e.g.
// "pass:panic", "native:error:0.25", "mirbuild:stall:1:3:2".
func ParseRule(s string) (Rule, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 5 {
		return Rule{}, fmt.Errorf("fault rule %q: want point:kind[:probability[:afterhits[:times]]]", s)
	}
	r := Rule{Point: Point(parts[0]), Kind: Kind(parts[1])}
	switch r.Kind {
	case KindError, KindPanic, KindStall,
		KindTornWrite, KindBitFlip, KindTruncate, KindENOSPC, KindEIO:
	default:
		return Rule{}, fmt.Errorf("fault rule %q: unknown kind %q", s, parts[1])
	}
	known := false
	for _, p := range KnownPoints() {
		if r.Point == p {
			known = true
		}
	}
	if !known {
		return Rule{}, fmt.Errorf("fault rule %q: unknown point %q", s, parts[0])
	}
	var err error
	if len(parts) > 2 {
		if r.Probability, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return Rule{}, fmt.Errorf("fault rule %q: bad probability: %v", s, err)
		}
	}
	if len(parts) > 3 {
		if r.AfterHits, err = strconv.Atoi(parts[3]); err != nil {
			return Rule{}, fmt.Errorf("fault rule %q: bad afterhits: %v", s, err)
		}
	}
	if len(parts) > 4 {
		if r.Times, err = strconv.Atoi(parts[4]); err != nil {
			return Rule{}, fmt.Errorf("fault rule %q: bad times: %v", s, err)
		}
	}
	return r, nil
}

// Fault is the record of one fired fault.
type Fault struct {
	Point  Point
	Detail string // pass or function name, file path, ... (point-specific)
	Kind   Kind
	Hit    int // 1-based hit ordinal of the point when the fault fired
	Rule   int // index of the rule that fired
}

// String renders the fault for error messages and reports.
func (f Fault) String() string {
	if f.Detail != "" {
		return fmt.Sprintf("%s(%s) hit %d: %s", f.Point, f.Detail, f.Hit, f.Kind)
	}
	return fmt.Sprintf("%s hit %d: %s", f.Point, f.Hit, f.Kind)
}

// InjectedError is the error form of a fired fault (KindError, and
// KindStall at meterless points).
type InjectedError struct {
	Fault Fault
	// Stalled marks a KindStall fault: the compile step budget was
	// deterministically exhausted.
	Stalled bool
}

// Error implements the error interface.
func (e *InjectedError) Error() string { return "injected fault: " + e.Fault.String() }

// InjectedPanic is the panic value of a KindPanic fault. It is not an
// error: it must travel as a panic so recovery is exercised at the real
// stack depth of the injection point.
type InjectedPanic struct{ Fault Fault }

// String renders the panic value.
func (p *InjectedPanic) String() string { return "injected panic: " + p.Fault.String() }

// IsInjected reports whether err (or anything it wraps) is an injected
// fault.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// FromPanic extracts the fault from a recovered panic value, reporting
// whether the panic was injected.
func FromPanic(r any) (Fault, bool) {
	if ip, ok := r.(*InjectedPanic); ok {
		return ip.Fault, true
	}
	return Fault{}, false
}

// ErrCompileBudget is wrapped by every compile-step-budget exhaustion.
var ErrCompileBudget = errors.New("compile step budget exhausted")

// Meter is the step budget of one compilation attempt: every stage charges
// abstract work units (roughly, IR instructions visited) and the first
// charge past the limit fails the compilation. Limit 0 means unlimited.
type Meter struct {
	Used  int64
	Limit int64
}

// Charge adds n steps, returning an ErrCompileBudget-wrapping error once
// the limit is exceeded. A nil meter is unlimited.
func (m *Meter) Charge(n int64) error {
	if m == nil {
		return nil
	}
	m.Used += n
	if m.Limit > 0 && m.Used > m.Limit {
		return fmt.Errorf("%w (used %d of %d steps)", ErrCompileBudget, m.Used, m.Limit)
	}
	return nil
}

// Exhaust burns the remaining budget (the KindStall semantics).
func (m *Meter) Exhaust() {
	if m != nil && m.Limit > 0 && m.Used < m.Limit {
		m.Used = m.Limit
	}
}

// Injector evaluates fault rules deterministically. It is safe for
// concurrent use (parallel experiment cells may share one), but the fault
// sequence is only reproducible when the hit sequence is — give each
// engine its own injector. A nil *Injector is valid and never fires.
type Injector struct {
	mu    sync.Mutex
	rules []Rule
	seed  int64
	state uint64
	hits  map[Point]int
	fires []int
	fired []Fault

	// Trace, when set, receives one CatFault instant event per fired fault
	// (point, kind, detail, schedule seed), so injected failures are visible
	// inline in a compile trace. Set it before the first hit.
	Trace *obs.Tracer
}

// NewInjector builds an injector over the rules with the given PRNG seed.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rules: rules,
		seed:  seed,
		state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		hits:  map[Point]int{},
		fires: make([]int, len(rules)),
	}
}

// Seed returns the PRNG seed the injector was built with.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// splitmix64 is the PRNG step (SplitMix64): tiny, seedable, deterministic.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll records one hit of the point and returns the fault to apply, if
// any. Rules are evaluated in order; the first eligible rule that fires
// wins.
func (in *Injector) roll(p Point, detail string) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[p]++
	hit := in.hits[p]
	for ri, r := range in.rules {
		if r.Point != p || hit <= r.AfterHits {
			continue
		}
		if r.Times > 0 && in.fires[ri] >= r.Times {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 {
			u := float64(splitmix64(&in.state)>>11) / (1 << 53)
			if u >= r.Probability {
				continue
			}
		}
		in.fires[ri]++
		f := Fault{Point: p, Detail: detail, Kind: r.Kind, Hit: hit, Rule: ri}
		in.fired = append(in.fired, f)
		in.Trace.Instant(obs.CatFault, "fault.injected",
			obs.S("point", string(p)), obs.S("kind", string(r.Kind)),
			obs.S("detail", detail), obs.I("seed", in.seed))
		return f, true
	}
	return Fault{}, false
}

// Check evaluates one hit of a meterless point: a KindPanic fault panics
// with an *InjectedPanic, every other kind returns an *InjectedError
// (KindStall degrades to an error where there is no budget to exhaust).
// A nil injector always returns nil.
func (in *Injector) Check(p Point, detail string) error {
	f, ok := in.roll(p, detail)
	if !ok {
		return nil
	}
	if f.Kind == KindPanic {
		panic(&InjectedPanic{Fault: f})
	}
	return &InjectedError{Fault: f, Stalled: f.Kind == KindStall}
}

// WatchdogProbe adapts an injector into the anomaly watchdog's seed
// probe (obs.Watchdog.SetSeedProbe): each observed signal rolls one hit
// on PointWatchdog. Panic kinds propagate out of Check and are contained
// by the watchdog itself — that containment is part of the point's
// contract and is what the chaos campaign verifies.
func WatchdogProbe(in *Injector) func(detail string) error {
	return func(detail string) error { return in.Check(PointWatchdog, detail) }
}

// Fired returns a copy of every fault fired so far, in order.
func (in *Injector) Fired() []Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Fault, len(in.fired))
	copy(out, in.fired)
	return out
}

// FiredCount returns how many faults have fired.
func (in *Injector) FiredCount() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.fired)
}

// CompileCtx travels down one compilation attempt: the engine's fault
// injector (may be nil), the attempt's step-budget meter (may be nil),
// and the engine's tracer (may be nil). A nil *CompileCtx is valid and
// free — packages on the compile path call Step and Span unconditionally
// and pay nothing when no supervisor or tracer is present.
type CompileCtx struct {
	Inj   *Injector
	Meter *Meter
	Func  string      // function being compiled (diagnostics)
	Trace *obs.Tracer // nil = tracing disabled
}

// Tracer returns the attempt's tracer; nil-safe.
func (c *CompileCtx) Tracer() *obs.Tracer {
	if c == nil {
		return nil
	}
	return c.Trace
}

// Span opens a span on the attempt's tracer. On a nil context or nil
// tracer it returns the inert zero span — the disabled fast path.
func (c *CompileCtx) Span(cat, name string) obs.Span {
	if c == nil {
		return obs.Span{}
	}
	return c.Trace.Begin(cat, name)
}

// Step charges cost compile steps and evaluates one hit of the injection
// point: budget exhaustion and KindError faults return errors, KindPanic
// faults panic, KindStall faults exhaust the budget and return a stalled
// injected error.
func (c *CompileCtx) Step(p Point, detail string, cost int64) error {
	if c == nil {
		return nil
	}
	if err := c.Meter.Charge(cost); err != nil {
		return err
	}
	f, ok := c.Inj.roll(p, detail)
	if !ok {
		return nil
	}
	switch f.Kind {
	case KindPanic:
		panic(&InjectedPanic{Fault: f})
	case KindStall:
		c.Meter.Exhaust()
		return &InjectedError{Fault: f, Stalled: true}
	default:
		return &InjectedError{Fault: f}
	}
}

// Plan is a reproducible fault schedule: a seed plus rules. Its JSON form
// is what the chaos CLI writes as a failure reproducer.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Injector builds a fresh injector for the plan. Each call returns an
// independent injector with the same deterministic behavior.
func (p Plan) Injector() *Injector { return NewInjector(p.Seed, p.Rules...) }

// String renders the plan compactly for reports.
func (p Plan) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return fmt.Sprintf("seed=%d rules=[%s]", p.Seed, strings.Join(parts, ", "))
}

// RandomPlan derives a randomized schedule of 1..maxRules rules over the
// given points, deterministically from seed. Probabilities, offsets and
// caps are drawn from small sets that keep schedules both aggressive
// (faults actually fire) and varied (not every compile dies).
func RandomPlan(seed int64, maxRules int, points []Point) Plan {
	if maxRules < 1 {
		maxRules = 1
	}
	if len(points) == 0 {
		points = CompilePoints()
	}
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	next := func(n int) int { return int(splitmix64(&state) % uint64(n)) }
	kinds := Kinds()
	probs := []float64{1, 1, 0.5, 0.25, 0.1}
	n := 1 + next(maxRules)
	rules := make([]Rule, n)
	for i := range rules {
		rules[i] = Rule{
			Point:       points[next(len(points))],
			Kind:        kinds[next(len(kinds))],
			Probability: probs[next(len(probs))],
			AfterHits:   next(4),
			Times:       next(3), // 0 = unlimited
		}
	}
	return Plan{Seed: seed, Rules: rules}
}

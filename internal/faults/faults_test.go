package faults

import (
	"errors"
	"reflect"
	"testing"
)

func TestInjectorDeterministic(t *testing.T) {
	rules := []Rule{
		{Point: PointPass, Kind: KindError, Probability: 0.5},
		{Point: PointNative, Kind: KindPanic, AfterHits: 2, Times: 1},
	}
	sequence := func() []Fault {
		in := NewInjector(42, rules...)
		for i := 0; i < 200; i++ {
			in.roll(PointPass, "GVN")
			in.roll(PointNative, "f")
		}
		return in.Fired()
	}
	a, b := sequence(), sequence()
	if len(a) == 0 {
		t.Fatal("no faults fired over 200 hits with p=0.5")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fault sequences:\n%v\n%v", a, b)
	}
	in := NewInjector(43, rules...)
	for i := 0; i < 200; i++ {
		in.roll(PointPass, "GVN")
		in.roll(PointNative, "f")
	}
	if reflect.DeepEqual(a, in.Fired()) {
		t.Fatal("different seeds produced identical probabilistic sequences")
	}
}

func TestAfterHitsAndTimes(t *testing.T) {
	in := NewInjector(1, Rule{Point: PointLower, Kind: KindError, AfterHits: 3, Times: 2})
	var fired []int
	for hit := 1; hit <= 10; hit++ {
		if _, ok := in.roll(PointLower, ""); ok {
			fired = append(fired, hit)
		}
	}
	if !reflect.DeepEqual(fired, []int{4, 5}) {
		t.Fatalf("fired at hits %v, want [4 5]", fired)
	}
	if in.FiredCount() != 2 {
		t.Fatalf("FiredCount = %d, want 2", in.FiredCount())
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	in := NewInjector(7, Rule{Point: PointPass, Kind: KindError, Probability: 0.5})
	for i := 0; i < 1000; i++ {
		in.roll(PointPass, "")
	}
	n := in.FiredCount()
	if n < 350 || n > 650 {
		t.Fatalf("p=0.5 fired %d of 1000 times", n)
	}
}

func TestCheckKinds(t *testing.T) {
	in := NewInjector(1,
		Rule{Point: PointDBSave, Kind: KindError, Times: 1},
		Rule{Point: PointDBLoad, Kind: KindStall, Times: 1},
		Rule{Point: PointNative, Kind: KindPanic, Times: 1},
	)
	if err := in.Check(PointDBSave, "db.json"); !IsInjected(err) {
		t.Fatalf("error kind: got %v", err)
	}
	err := in.Check(PointDBLoad, "db.json")
	var ie *InjectedError
	if !errors.As(err, &ie) || !ie.Stalled {
		t.Fatalf("stall at meterless point should degrade to a stalled error, got %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic kind did not panic")
			}
			if _, ok := FromPanic(r); !ok {
				t.Fatalf("panic value is not an *InjectedPanic: %v", r)
			}
		}()
		in.Check(PointNative, "f")
	}()
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	if err := in.Check(PointPass, "x"); err != nil {
		t.Fatal(err)
	}
	if in.FiredCount() != 0 || in.Fired() != nil {
		t.Fatal("nil injector recorded faults")
	}
	var c *CompileCtx
	if err := c.Step(PointPass, "x", 100); err != nil {
		t.Fatal(err)
	}
	var m *Meter
	if err := m.Charge(1 << 60); err != nil {
		t.Fatal(err)
	}
}

func TestMeterBudget(t *testing.T) {
	m := &Meter{Limit: 10}
	if err := m.Charge(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.Charge(1)
	if !errors.Is(err, ErrCompileBudget) {
		t.Fatalf("over budget: got %v", err)
	}
	c := &CompileCtx{Meter: &Meter{Limit: 5}}
	if err := c.Step(PointPass, "GVN", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(PointPass, "LICM", 4); !errors.Is(err, ErrCompileBudget) {
		t.Fatalf("ctx over budget: got %v", err)
	}
}

func TestStallExhaustsMeter(t *testing.T) {
	c := &CompileCtx{
		Inj:   NewInjector(1, Rule{Point: PointPass, Kind: KindStall}),
		Meter: &Meter{Limit: 1000},
	}
	err := c.Step(PointPass, "GVN", 1)
	var ie *InjectedError
	if !errors.As(err, &ie) || !ie.Stalled {
		t.Fatalf("got %v", err)
	}
	if c.Meter.Used != c.Meter.Limit {
		t.Fatalf("stall left budget: used %d of %d", c.Meter.Used, c.Meter.Limit)
	}
}

func TestParseRuleRoundTrip(t *testing.T) {
	for _, s := range []string{"pass:panic:0.5:2:1", "native:error:0.25:0:0", "mirbuild:stall:1:0:3"} {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		r2, err := ParseRule(r.String())
		if err != nil || r2 != r {
			t.Fatalf("round trip %s -> %s -> %+v (%v)", s, r.String(), r2, err)
		}
	}
	if r, err := ParseRule("lir:panic"); err != nil || r.Point != PointLower || r.Kind != KindPanic {
		t.Fatalf("short form: %+v, %v", r, err)
	}
	for _, bad := range []string{"", "pass", "pass:explode", "nowhere:error", "pass:error:x"} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(99, 3, nil)
	b := RandomPlan(99, 3, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	if len(a.Rules) < 1 || len(a.Rules) > 3 {
		t.Fatalf("rule count %d out of [1,3]", len(a.Rules))
	}
	seen := map[string]bool{}
	for s := int64(0); s < 50; s++ {
		seen[RandomPlan(s, 3, nil).String()] = true
	}
	if len(seen) < 40 {
		t.Fatalf("only %d distinct plans over 50 seeds", len(seen))
	}
}

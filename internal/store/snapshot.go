// Whole-fleet warm-start snapshots: a single checksummed bundle file
// holding every trustworthy record, so one artifact can prime a fresh
// machine (or a CI job) in one copy. The bundle reuses the record
// envelope discipline — versioned format, per-record CRC re-verified on
// restore, atomic write — and the same fail-safe posture: a corrupt
// bundle is an error (the store stays usable, just cold) and a corrupt
// record INSIDE an otherwise-valid bundle is preserved as quarantine
// evidence and skipped, never installed.
package store

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
)

const (
	manifestFormat  = "jitbull-store-manifest"
	manifestVersion = 1
)

// manifestRecord is one record inside a snapshot bundle. CRC32C covers
// Payload, independently of the bundle's own integrity, so a single
// rotted record cannot poison a restore.
type manifestRecord struct {
	Key     string          `json:"key"`
	CRC32C  string          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

// manifest is the bundle's payload.
type manifest struct {
	Records []manifestRecord `json:"records"`
}

// Snapshot writes every currently-trustworthy record into one bundle
// file at path (atomically). Records that fail verification during the
// walk are quarantined exactly as a Get would and left out of the
// bundle. The operation passes through the store.manifest fault point;
// injected corruption kinds damage the bundle bytes (detected by the
// restoring side), transient EIO is retried, and hard kinds fail the
// snapshot with an error.
func (s *Store) Snapshot(path string) (err error) {
	defer s.containManifestPanic(&err)

	ents, rerr := os.ReadDir(s.objs)
	if rerr != nil {
		return fmt.Errorf("snapshot store: %w", rerr)
	}
	m := manifest{Records: []manifestRecord{}}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		rpath := filepath.Join(s.objs, e.Name())
		key := strings.TrimSuffix(e.Name(), ".json")
		data, rerr := os.ReadFile(rpath)
		if rerr != nil {
			continue
		}
		payload, derr := decodeRecord(rpath, key, data)
		if derr != nil {
			s.quarantine(rpath, key, derr)
			continue
		}
		m.Records = append(m.Records, manifestRecord{
			Key:     key,
			CRC32C:  fmt.Sprintf("%08x", crc32.Checksum(payload, crcTable)),
			Payload: payload,
		})
	}
	payload, merr := json.Marshal(m)
	if merr != nil {
		return fmt.Errorf("snapshot store: %w", merr)
	}
	bundle := []byte(fmt.Sprintf("{\n  \"format\": %q,\n  \"version\": %d,\n  \"key\": \"\",\n  \"crc32c\": \"%08x\",\n  \"payload\": %s\n}\n",
		manifestFormat, manifestVersion, crc32.Checksum(payload, crcTable), payload))

	for attempt := 0; ; attempt++ {
		f, fired := s.checkFault(faults.PointStoreManifest, path)
		if !fired {
			break
		}
		switch f.Kind {
		case faults.KindEIO:
			if attempt < s.retries {
				s.mRetries.Inc()
				s.sleep(retryBase << uint(attempt))
				continue
			}
			return fmt.Errorf("snapshot store: %w", &faults.InjectedError{Fault: f})
		case faults.KindTornWrite:
			bundle = bundle[:len(bundle)/2]
		case faults.KindTruncate:
			bundle = nil
		case faults.KindBitFlip:
			bundle = append([]byte(nil), bundle...)
			bundle[len(bundle)/2] ^= 0x04
		default:
			return fmt.Errorf("snapshot store: %w", &faults.InjectedError{Fault: f})
		}
		break
	}
	if werr := writeAtomic(path, bundle); werr != nil {
		return fmt.Errorf("snapshot store: %w", werr)
	}
	return nil
}

// Restore installs every verifiable record from a snapshot bundle into
// the store (through the normal atomic write path), returning how many
// were installed. A bundle that cannot be trusted as a whole returns a
// *CorruptError and installs nothing; an individual record whose
// checksum or key fails is written into the quarantine directory as
// evidence and skipped. Existing records under the same keys are
// overwritten (the bundle's record verified; content-addressed keys make
// the bytes equivalent anyway).
func (s *Store) Restore(path string) (installed int, err error) {
	defer s.containManifestPanic(&err)

	for attempt := 0; ; attempt++ {
		f, fired := s.checkFault(faults.PointStoreManifest, path)
		if !fired {
			break
		}
		switch f.Kind {
		case faults.KindEIO:
			if attempt < s.retries {
				s.mRetries.Inc()
				s.sleep(retryBase << uint(attempt))
				continue
			}
			return 0, fmt.Errorf("restore store: %w", &faults.InjectedError{Fault: f})
		case faults.KindTornWrite, faults.KindBitFlip, faults.KindTruncate:
			s.damage(path, f.Kind)
			// fall through to the normal read: bundle verification catches it
		default:
			return 0, fmt.Errorf("restore store: %w", &faults.InjectedError{Fault: f})
		}
		break
	}

	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return 0, fmt.Errorf("restore store: %w", rerr)
	}
	var env envelope
	if uerr := json.Unmarshal(data, &env); uerr != nil {
		return 0, &CorruptError{Path: path, Reason: "bundle envelope does not parse", Err: uerr}
	}
	if env.Format != manifestFormat {
		return 0, &CorruptError{Path: path, Reason: fmt.Sprintf("unknown bundle format %q", env.Format)}
	}
	if env.Version != manifestVersion {
		return 0, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported bundle version %d (want %d)", env.Version, manifestVersion)}
	}
	if len(env.Payload) == 0 {
		return 0, &CorruptError{Path: path, Reason: "missing bundle payload"}
	}
	sum := fmt.Sprintf("%08x", crc32.Checksum(env.Payload, crcTable))
	if !strings.EqualFold(sum, env.CRC32C) {
		return 0, &CorruptError{Path: path,
			Reason: fmt.Sprintf("bundle checksum mismatch: stored crc32c %q, computed %q", env.CRC32C, sum)}
	}
	var m manifest
	if uerr := json.Unmarshal(env.Payload, &m); uerr != nil {
		return 0, &CorruptError{Path: path, Reason: "bundle manifest does not parse despite a valid checksum", Err: uerr}
	}

	for i, rec := range m.Records {
		var k jitqueue.Key
		raw, herr := hex.DecodeString(rec.Key)
		recSum := fmt.Sprintf("%08x", crc32.Checksum(rec.Payload, crcTable))
		switch {
		case herr != nil || len(raw) != len(k):
			s.quarantineBundleRecord(path, i, rec, "malformed record key")
			continue
		case !strings.EqualFold(recSum, rec.CRC32C):
			s.quarantineBundleRecord(path, i, rec,
				fmt.Sprintf("record checksum mismatch: stored %q, computed %q", rec.CRC32C, recSum))
			continue
		}
		copy(k[:], raw)
		envBytes, eerr := encodeRecord(rec.Key, rec.Payload)
		if eerr != nil {
			s.quarantineBundleRecord(path, i, rec, eerr.Error())
			continue
		}
		if werr := writeAtomic(s.recordPath(k), envBytes); werr != nil {
			s.dropPut(rec.Key, "restore: "+werr.Error())
			continue
		}
		installed++
	}
	return installed, nil
}

// quarantineBundleRecord preserves one untrustworthy bundle entry as a
// quarantine file (there is no store record to rename, so the entry's
// bytes are written out as evidence) and accounts the degradation.
func (s *Store) quarantineBundleRecord(bundle string, idx int, rec manifestRecord, reason string) {
	evidence, _ := json.Marshal(rec)
	dst := filepath.Join(s.quar, fmt.Sprintf("bundle-record-%d.%d.json", idx, s.qseq.Add(1)))
	writeAtomic(dst, evidence)
	s.mQuarantined.Inc()
	s.opts.Audit.Record(obs.AuditEvent{
		Func:    rec.Key,
		Verdict: obs.VerdictQuarantine,
		Stage:   "store",
		Reason:  fmt.Sprintf("bundle %s record %d quarantined to %s: %s", bundle, idx, dst, reason),
	})
}

// containManifestPanic converts an injected panic unwinding a manifest
// operation into its error form (accounting already happened in
// checkFault's recover; this catches panics that escape deeper I/O).
func (s *Store) containManifestPanic(err *error) {
	if r := recover(); r != nil {
		f, ok := faults.FromPanic(r)
		if !ok {
			panic(r)
		}
		*err = &faults.InjectedError{Fault: f}
	}
}

package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
)

func testKey(b byte) jitqueue.Key {
	var k jitqueue.Key
	for i := range k {
		k[i] = b
	}
	return k
}

// open builds a store with silent backoff and full observability.
func open(t *testing.T, dir string, inj *faults.Injector) (*Store, *obs.Registry, *obs.AuditLog) {
	t.Helper()
	reg := obs.NewRegistry()
	audit := obs.NewAuditLog(nil)
	s, err := Open(dir, Options{
		Metrics: reg,
		Audit:   audit,
		Faults:  inj,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s, reg, audit
}

func payload(s string) []byte { return []byte(fmt.Sprintf(`{"v":1,"data":%q}`, s)) }

func TestStorePutGetRoundTripAndWarmReopen(t *testing.T) {
	dir := t.TempDir()
	s, reg, _ := open(t, dir, nil)
	k := testKey(1)

	if _, ok := s.Get(k); ok {
		t.Fatal("empty store served a record")
	}
	s.Put(k, payload("a"))
	got, ok := s.Get(k)
	if !ok || string(got) != string(payload("a")) {
		t.Fatalf("round trip: ok=%v got=%s", ok, got)
	}
	if reg.Counter("store.puts").Value() != 1 || reg.Counter("store.hits").Value() != 1 ||
		reg.Counter("store.misses").Value() != 1 {
		t.Errorf("counters: puts=%d hits=%d misses=%d",
			reg.Counter("store.puts").Value(), reg.Counter("store.hits").Value(),
			reg.Counter("store.misses").Value())
	}

	// The warm-start path: a fresh process (fresh Store) over the same
	// directory serves the record byte-identically.
	warm, _, _ := open(t, dir, nil)
	got2, ok := warm.Get(k)
	if !ok || string(got2) != string(got) {
		t.Fatalf("reopened store: ok=%v got=%s", ok, got2)
	}
	if warm.Len() != 1 {
		t.Errorf("Len = %d, want 1", warm.Len())
	}
}

func TestStoreQuarantinesHandCorruptedRecord(t *testing.T) {
	dir := t.TempDir()
	s, reg, audit := open(t, dir, nil)
	k := testKey(2)
	s.Put(k, payload("x"))

	// Flip a byte inside the record on disk.
	path := s.recordPath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt record was served")
	}
	if reg.Counter("store.quarantined").Value() != 1 {
		t.Errorf("store.quarantined = %d, want 1", reg.Counter("store.quarantined").Value())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt record still under its serving name")
	}
	ents, _ := os.ReadDir(s.QuarantineDir())
	if len(ents) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(ents))
	}
	found := false
	for _, ev := range audit.Events() {
		if ev.Verdict == obs.VerdictQuarantine && strings.Contains(ev.Reason, "quarantined") {
			found = true
		}
	}
	if !found {
		t.Error("no quarantine audit event")
	}
	// Quarantined means gone: the next read is a clean miss, no re-quarantine.
	if _, ok := s.Get(k); ok {
		t.Fatal("quarantined record re-served")
	}
	if reg.Counter("store.quarantined").Value() != 1 {
		t.Error("miss after quarantine quarantined again")
	}
}

func TestStoreRejectsCrossLinkedRecord(t *testing.T) {
	dir := t.TempDir()
	s, reg, _ := open(t, dir, nil)
	a, b := testKey(3), testKey(4)
	s.Put(a, payload("a"))

	// Copy a's record file to b's name: the envelope's key binding must
	// refuse to serve it for b.
	data, err := os.ReadFile(s.recordPath(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.recordPath(b), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Fatal("cross-linked record served under the wrong key")
	}
	if reg.Counter("store.quarantined").Value() != 1 {
		t.Errorf("store.quarantined = %d, want 1", reg.Counter("store.quarantined").Value())
	}
	// The original stays intact and serving.
	if _, ok := s.Get(a); !ok {
		t.Fatal("original record lost")
	}
}

// TestStorePutFaultKinds drives every disk-fault kind through the put
// path and checks its modeled behavior plus 1:1 accounting.
func TestStorePutFaultKinds(t *testing.T) {
	for _, tc := range []struct {
		kind        faults.Kind
		fileExists  bool // record file present after the faulted put
		servedLater bool // a later Get succeeds
		quarantined bool // a later Get quarantines
	}{
		{faults.KindTornWrite, true, false, true},
		{faults.KindBitFlip, true, false, true},
		{faults.KindTruncate, true, false, true},
		{faults.KindENOSPC, false, false, false},
		{faults.KindError, false, false, false},
		{faults.KindPanic, false, false, false},
		{faults.KindStall, false, false, false},
	} {
		t.Run(string(tc.kind), func(t *testing.T) {
			inj := faults.NewInjector(7, faults.Rule{Point: faults.PointStorePut, Kind: tc.kind, Times: 1})
			s, reg, _ := open(t, t.TempDir(), inj)
			k := testKey(5)
			s.Put(k, payload("v"))

			if inj.FiredCount() != 1 {
				t.Fatalf("fault did not fire: %d", inj.FiredCount())
			}
			if got := reg.Counter("store.faults_injected").Value(); got != 1 {
				t.Errorf("store.faults_injected = %d, want 1 (1:1 accounting)", got)
			}
			if _, err := os.Stat(s.recordPath(k)); (err == nil) != tc.fileExists {
				t.Errorf("record file exists=%v, want %v", err == nil, tc.fileExists)
			}
			_, ok := s.Get(k)
			if ok != tc.servedLater {
				t.Errorf("later Get ok=%v, want %v", ok, tc.servedLater)
			}
			wantQ := int64(0)
			if tc.quarantined {
				wantQ = 1
			}
			if got := reg.Counter("store.quarantined").Value(); got != wantQ {
				t.Errorf("store.quarantined = %d, want %d", got, wantQ)
			}
			// Degradation is never sticky: a clean re-put serves again.
			s.Put(k, payload("v2"))
			if got, ok := s.Get(k); !ok || string(got) != string(payload("v2")) {
				t.Errorf("store did not recover after the fault: ok=%v got=%s", ok, got)
			}
		})
	}
}

func TestStoreTransientEIORetries(t *testing.T) {
	// One transient error, then clean: the bounded retry loop absorbs it
	// and the put lands.
	inj := faults.NewInjector(7, faults.Rule{Point: faults.PointStorePut, Kind: faults.KindEIO, Times: 1})
	s, reg, _ := open(t, t.TempDir(), inj)
	k := testKey(6)
	s.Put(k, payload("v"))
	if _, ok := s.Get(k); !ok {
		t.Fatal("retried put did not land")
	}
	if reg.Counter("store.retries").Value() != 1 {
		t.Errorf("store.retries = %d, want 1", reg.Counter("store.retries").Value())
	}
	if reg.Counter("store.put_drops").Value() != 0 {
		t.Error("absorbed transient error still dropped the put")
	}

	// Unlimited transient errors: the budget exhausts and the put drops —
	// bounded, never an infinite loop.
	inj2 := faults.NewInjector(7, faults.Rule{Point: faults.PointStorePut, Kind: faults.KindEIO})
	s2, reg2, _ := open(t, t.TempDir(), inj2)
	s2.Put(k, payload("v"))
	if _, err := os.Stat(s2.recordPath(k)); err == nil {
		t.Fatal("exhausted retries still wrote the record")
	}
	if reg2.Counter("store.put_drops").Value() != 1 {
		t.Errorf("store.put_drops = %d, want 1", reg2.Counter("store.put_drops").Value())
	}
	if got := reg2.Counter("store.faults_injected").Value(); got != int64(inj2.FiredCount()) {
		t.Errorf("accounting: store.faults_injected=%d, injector fired %d", got, inj2.FiredCount())
	}
}

func TestStoreGetFaultKinds(t *testing.T) {
	for _, tc := range []struct {
		kind        faults.Kind
		quarantined bool // read-side corruption must be caught + quarantined
	}{
		{faults.KindTornWrite, true},
		{faults.KindBitFlip, true},
		{faults.KindTruncate, true},
		{faults.KindENOSPC, false},
		{faults.KindError, false},
		{faults.KindPanic, false},
		{faults.KindStall, false},
		{faults.KindEIO, false}, // unlimited: exhausts the retry budget
	} {
		t.Run(string(tc.kind), func(t *testing.T) {
			inj := faults.NewInjector(11, faults.Rule{Point: faults.PointStoreGet, Kind: tc.kind})
			s, reg, _ := open(t, t.TempDir(), inj)
			k := testKey(7)
			s.Put(k, payload("v"))

			if _, ok := s.Get(k); ok {
				t.Fatalf("faulted get served a value (kind %s)", tc.kind)
			}
			if inj.FiredCount() == 0 {
				t.Fatal("fault did not fire")
			}
			if got := reg.Counter("store.faults_injected").Value(); got != int64(inj.FiredCount()) {
				t.Errorf("accounting: store.faults_injected=%d, injector fired %d", got, inj.FiredCount())
			}
			wantQ := int64(0)
			if tc.quarantined {
				wantQ = 1
			}
			if got := reg.Counter("store.quarantined").Value(); got != wantQ {
				t.Errorf("store.quarantined = %d, want %d", got, wantQ)
			}
		})
	}
}

func TestStoreRefusesNonJSONPayload(t *testing.T) {
	s, reg, _ := open(t, t.TempDir(), nil)
	s.Put(testKey(8), []byte("not json"))
	if s.Len() != 0 {
		t.Fatal("non-JSON payload was persisted")
	}
	if reg.Counter("store.put_drops").Value() != 1 {
		t.Errorf("store.put_drops = %d, want 1", reg.Counter("store.put_drops").Value())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dirA := t.TempDir()
	s, _, _ := open(t, dirA, nil)
	keys := []jitqueue.Key{testKey(1), testKey(2), testKey(3)}
	for i, k := range keys {
		s.Put(k, payload(fmt.Sprintf("v%d", i)))
	}
	// One corrupt record: excluded from the bundle, quarantined during the walk.
	bad := testKey(9)
	s.Put(bad, payload("bad"))
	if err := os.WriteFile(s.recordPath(bad), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	bundle := filepath.Join(t.TempDir(), "snap.json")
	if err := s.Snapshot(bundle); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	dst, reg, _ := open(t, t.TempDir(), nil)
	n, err := dst.Restore(bundle)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != len(keys) {
		t.Fatalf("restored %d records, want %d (corrupt one must be excluded)", n, len(keys))
	}
	for i, k := range keys {
		got, ok := dst.Get(k)
		if !ok || string(got) != string(payload(fmt.Sprintf("v%d", i))) {
			t.Errorf("key %d: ok=%v got=%s", i, ok, got)
		}
	}
	if _, ok := dst.Get(bad); ok {
		t.Error("corrupt record crossed through the bundle")
	}
	if reg.Counter("store.hits").Value() != int64(len(keys)) {
		t.Errorf("store.hits = %d, want %d", reg.Counter("store.hits").Value(), len(keys))
	}
}

func TestRestoreRejectsDamagedBundle(t *testing.T) {
	src, _, _ := open(t, t.TempDir(), nil)
	src.Put(testKey(1), payload("v"))
	bundle := filepath.Join(t.TempDir(), "snap.json")
	if err := src.Snapshot(bundle); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bundle)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(bundle, data, 0o644); err != nil {
		t.Fatal(err)
	}

	dst, _, _ := open(t, t.TempDir(), nil)
	n, err := dst.Restore(bundle)
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("restore of a damaged bundle: n=%d err=%v, want a CorruptError", n, err)
	}
	if n != 0 || dst.Len() != 0 {
		t.Error("damaged bundle installed records")
	}
}

func TestRestoreQuarantinesBadBundleRecord(t *testing.T) {
	// Hand-craft a bundle with one valid and one checksum-broken record.
	good := manifestRecord{Key: keyHex(testKey(1)), Payload: payload("ok")}
	good.CRC32C = fmt.Sprintf("%08x", crcChecksum(good.Payload))
	evil := manifestRecord{Key: keyHex(testKey(2)), Payload: payload("evil"), CRC32C: "00000000"}
	m, _ := json.Marshal(manifest{Records: []manifestRecord{good, evil}})
	bundle := filepath.Join(t.TempDir(), "snap.json")
	env := fmt.Sprintf("{\n  \"format\": %q,\n  \"version\": %d,\n  \"key\": \"\",\n  \"crc32c\": \"%08x\",\n  \"payload\": %s\n}\n",
		manifestFormat, manifestVersion, crcChecksum(m), m)
	if err := os.WriteFile(bundle, []byte(env), 0o644); err != nil {
		t.Fatal(err)
	}

	dst, reg, _ := open(t, t.TempDir(), nil)
	n, err := dst.Restore(bundle)
	if err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v, want 1 installed", n, err)
	}
	if _, ok := dst.Get(testKey(2)); ok {
		t.Fatal("checksum-broken bundle record was installed")
	}
	if reg.Counter("store.quarantined").Value() != 1 {
		t.Errorf("store.quarantined = %d, want 1", reg.Counter("store.quarantined").Value())
	}
	ents, _ := os.ReadDir(dst.QuarantineDir())
	if len(ents) != 1 {
		t.Errorf("quarantine evidence files: %d, want 1", len(ents))
	}
}

func TestManifestFaultKinds(t *testing.T) {
	// Snapshot-side corruption kinds damage the bundle; the restoring side
	// must reject it outright — a corrupt snapshot never poisons a store.
	for _, kind := range []faults.Kind{faults.KindTornWrite, faults.KindBitFlip, faults.KindTruncate} {
		t.Run("snapshot/"+string(kind), func(t *testing.T) {
			inj := faults.NewInjector(13, faults.Rule{Point: faults.PointStoreManifest, Kind: kind, Times: 1})
			s, reg, _ := open(t, t.TempDir(), inj)
			s.Put(testKey(1), payload("v"))
			bundle := filepath.Join(t.TempDir(), "snap.json")
			if err := s.Snapshot(bundle); err != nil {
				t.Fatalf("silent-corruption snapshot must report success: %v", err)
			}
			dst, _, _ := open(t, t.TempDir(), nil)
			if n, err := dst.Restore(bundle); err == nil || n != 0 {
				t.Errorf("restore of a %s-damaged bundle: n=%d err=%v", kind, n, err)
			}
			if got := reg.Counter("store.faults_injected").Value(); got != 1 {
				t.Errorf("accounting: %d, want 1", got)
			}
		})
	}
	for _, kind := range []faults.Kind{faults.KindENOSPC, faults.KindError, faults.KindPanic} {
		t.Run("hard/"+string(kind), func(t *testing.T) {
			inj := faults.NewInjector(13, faults.Rule{Point: faults.PointStoreManifest, Kind: kind})
			s, _, _ := open(t, t.TempDir(), inj)
			s.Put(testKey(1), payload("v"))
			bundle := filepath.Join(t.TempDir(), "snap.json")
			if err := s.Snapshot(bundle); err == nil {
				t.Error("hard manifest fault reported success")
			}
			if _, err := os.Stat(bundle); err == nil {
				t.Error("failed snapshot left a bundle behind")
			}
			if _, err := s.Restore(bundle); err == nil {
				t.Error("hard manifest fault on restore reported success")
			}
		})
	}
	t.Run("eio-retries", func(t *testing.T) {
		inj := faults.NewInjector(13, faults.Rule{Point: faults.PointStoreManifest, Kind: faults.KindEIO, Times: 1})
		s, _, _ := open(t, t.TempDir(), inj)
		s.Put(testKey(1), payload("v"))
		bundle := filepath.Join(t.TempDir(), "snap.json")
		if err := s.Snapshot(bundle); err != nil {
			t.Fatalf("one transient error must be absorbed: %v", err)
		}
		dst, _, _ := open(t, t.TempDir(), nil)
		if n, err := dst.Restore(bundle); err != nil || n != 1 {
			t.Errorf("restore after retried snapshot: n=%d err=%v", n, err)
		}
	})
}

func TestVerifyReportsAndQuarantines(t *testing.T) {
	s, _, _ := open(t, t.TempDir(), nil)
	s.Put(testKey(1), payload("ok"))
	s.Put(testKey(2), payload("bad"))
	if err := os.WriteFile(s.recordPath(testKey(2)), []byte(`{"format":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 || rep.OK != 1 || len(rep.Problems) != 1 || rep.Quarantined != 0 {
		t.Fatalf("report-only verify: %+v", rep)
	}
	if s.Len() != 2 {
		t.Error("report-only verify moved files")
	}

	rep, err = s.Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 || s.Len() != 1 {
		t.Fatalf("quarantining verify: %+v, Len=%d", rep, s.Len())
	}
	// The store is clean now.
	rep, _ = s.Verify(false)
	if rep.Checked != 1 || rep.OK != 1 || len(rep.Problems) != 0 {
		t.Fatalf("post-quarantine verify: %+v", rep)
	}
}

// crcChecksum mirrors the store's CRC for hand-built test fixtures.
func crcChecksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

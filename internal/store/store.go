// Package store is the crash-safe persistent tier under the shared
// compilation cache: a content-addressed, checksummed on-disk map from
// the full compilation-input key (jitqueue.Key — canonical bytecode hash
// plus every other pipeline input, policy identity included) to the
// encoded artifact+verdict record, so a fleet restart replays verdicts
// and installs artifacts without rerunning the pipeline or DNA matching.
//
// Durability discipline is the same as the VDC database's persistence
// (internal/core/persist.go): every record is a versioned JSON envelope
// whose payload is covered by a CRC-32C checksum, and every write goes
// to a temporary file renamed over the final path, so a crash mid-write
// never leaves a half-record under a valid name. What the envelope adds
// here is the record's own key, so a renamed, copied or cross-linked
// file cannot serve bytes for a key it was not written under.
//
// Failure policy is fail-safe degradation, never propagation: the store
// sits under a cache whose contract is "a miss costs a recompile", so
// every failure — unreadable file, torn envelope, checksum mismatch,
// version skew, key mismatch, injected disk fault — degrades to a miss.
// Records that exist but cannot be trusted are quarantined (renamed into
// a sidecar directory, preserving the evidence) with a metric and an
// audit event per degradation; transient I/O errors are retried with
// bounded backoff before giving up. A store failure can cost time, never
// correctness: the verdict either replays bit-identically or is decided
// cold.
package store

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
)

const (
	recordFormat  = "jitbull-store"
	recordVersion = 1

	objectsDir    = "objects"
	quarantineDir = "quarantine"

	// defaultRetries bounds the transient-I/O retry loop (per operation).
	defaultRetries = 3
	// retryBase is the backoff unit: attempt n sleeps retryBase << n.
	retryBase = time.Millisecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// envelope is the on-disk layout of one record. CRC32C covers Payload
// exactly as stored; Key binds the record to the cache key it was
// written under.
type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Key     string          `json:"key"`
	CRC32C  string          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

// CorruptError reports that a record file exists but cannot be trusted.
// The store's callers never see it (corruption degrades to a miss); it
// surfaces through Verify for the offline `jitbull store verify` path.
type CorruptError struct {
	Path   string
	Reason string
	Err    error
}

// Error implements the error interface.
func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("corrupt store record %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("corrupt store record %s: %s", e.Path, e.Reason)
}

// Unwrap exposes the underlying cause.
func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err marks an untrustworthy record.
func IsCorrupt(err error) bool {
	var c *CorruptError
	return errors.As(err, &c)
}

// Options configures a store.
type Options struct {
	// Metrics receives the store.* counters (nil discards).
	Metrics *obs.Registry
	// Audit receives one event per degradation: quarantined record,
	// dropped put, fault-induced miss (nil discards).
	Audit *obs.AuditLog
	// Faults is the chaos injector for the disk boundary (nil = no
	// injection). Give the injector to the store ONLY — an injector on the
	// engine's compile path vetoes cache keys entirely.
	Faults *faults.Injector
	// Retries bounds the transient-I/O retry loop (0 = defaultRetries).
	Retries int
	// Sleep is the backoff sleeper, injectable for tests (nil = time.Sleep).
	Sleep func(time.Duration)
	// Watchdog, when non-nil, receives one SigStoreCorrupt signal per
	// quarantined record — the anomaly watchdog's view of disk rot.
	Watchdog *obs.Watchdog
	// Tracer records one span per Get/Put (nil = no tracing); the span
	// IDs seed the store.{get,put}_ns histogram exemplars so an outlier
	// bucket can be followed back to the retained trace event.
	Tracer *obs.Tracer
}

// Store is the persistent second tier. It implements jitqueue.SecondTier
// and is safe for concurrent use: records are immutable once renamed
// into place, and the quarantine sequence is atomic.
type Store struct {
	dir  string
	objs string
	quar string
	opts Options

	retries int
	sleep   func(time.Duration)
	qseq    atomic.Uint64

	mHits        *obs.Counter
	mMisses      *obs.Counter
	mPuts        *obs.Counter
	mPutDrops    *obs.Counter
	mQuarantined *obs.Counter
	mRetries     *obs.Counter
	mFaults      *obs.Counter
	hGet         *obs.Histogram
	hPut         *obs.Histogram
}

var _ jitqueue.SecondTier = (*Store)(nil)

// Open creates or reopens the store rooted at dir. Reopening an existing
// directory is the warm-start path: whatever records survived the last
// process serve immediately; nothing is scanned or trusted up front
// (records are verified on every read).
func Open(dir string, opts Options) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("open store: %w", err)
		}
	}
	s := &Store{
		dir:     dir,
		objs:    filepath.Join(dir, objectsDir),
		quar:    filepath.Join(dir, quarantineDir),
		opts:    opts,
		retries: opts.Retries,
		sleep:   opts.Sleep,
	}
	if s.retries <= 0 {
		s.retries = defaultRetries
	}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	reg := opts.Metrics
	s.mHits = reg.Counter("store.hits")
	s.mMisses = reg.Counter("store.misses")
	s.mPuts = reg.Counter("store.puts")
	s.mPutDrops = reg.Counter("store.put_drops")
	s.mQuarantined = reg.Counter("store.quarantined")
	s.mRetries = reg.Counter("store.retries")
	s.mFaults = reg.Counter("store.faults_injected")
	s.hGet = reg.Histogram("store.get_ns", obs.LatencyBucketsNs)
	s.hPut = reg.Histogram("store.put_ns", obs.LatencyBucketsNs)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// QuarantineDir returns the sidecar directory corrupt records are moved
// into (evidence for offline inspection and CI artifact upload).
func (s *Store) QuarantineDir() string { return s.quar }

func keyHex(k jitqueue.Key) string { return hex.EncodeToString(k[:]) }

func (s *Store) recordPath(k jitqueue.Key) string {
	return filepath.Join(s.objs, keyHex(k)+".json")
}

// accountFault gives one injected fault the 1:1 accounting the chaos
// campaign matches against the injector's own fired list: a metric tick
// and an audit event naming point, kind and detail.
func (s *Store) accountFault(f faults.Fault) {
	s.mFaults.Inc()
	s.opts.Audit.Record(obs.AuditEvent{
		Func:    f.Detail,
		Verdict: obs.VerdictCompileError,
		Stage:   string(f.Point),
		Reason:  "injected disk fault: " + f.String(),
	})
}

// checkFault evaluates one hit of a store fault point with panic
// containment, returning the fault (if any) for kind-specific handling.
// Injected panics are converted to KindPanic faults here — at the disk
// boundary a panic and a hard error degrade identically.
func (s *Store) checkFault(p faults.Point, detail string) (f faults.Fault, fired bool) {
	defer func() {
		if r := recover(); r != nil {
			pf, ok := faults.FromPanic(r)
			if !ok {
				panic(r)
			}
			s.accountFault(pf)
			f, fired = pf, true
		}
	}()
	err := s.opts.Faults.Check(p, detail)
	if err == nil {
		return faults.Fault{}, false
	}
	var ie *faults.InjectedError
	if !errors.As(err, &ie) {
		// Not constructible from Injector.Check, but degrade anyway.
		return faults.Fault{Point: p, Detail: detail, Kind: faults.KindError}, true
	}
	s.accountFault(ie.Fault)
	return ie.Fault, true
}

// encode renders the record envelope for (key, payload). The payload
// must be valid JSON (the cache codec emits JSON); anything else is
// refused so the envelope itself stays parseable.
func encodeRecord(key string, payload []byte) ([]byte, error) {
	if !json.Valid(payload) {
		return nil, fmt.Errorf("store record payload is not valid JSON")
	}
	return []byte(fmt.Sprintf("{\n  \"format\": %q,\n  \"version\": %d,\n  \"key\": %q,\n  \"crc32c\": \"%08x\",\n  \"payload\": %s\n}\n",
		recordFormat, recordVersion, key, crc32.Checksum(payload, crcTable), payload)), nil
}

// decodeRecord verifies one envelope against the key it was fetched
// under, returning the payload or a *CorruptError.
func decodeRecord(path, wantKey string, data []byte) (json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, &CorruptError{Path: path, Reason: "envelope does not parse (torn or truncated write?)", Err: err}
	}
	if env.Format != recordFormat {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unknown format %q", env.Format)}
	}
	if env.Version != recordVersion {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported version %d (want %d)", env.Version, recordVersion)}
	}
	if wantKey != "" && env.Key != wantKey {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("key mismatch: record written under %q (renamed or cross-linked file?)", env.Key)}
	}
	if len(env.Payload) == 0 {
		return nil, &CorruptError{Path: path, Reason: "missing payload"}
	}
	sum := fmt.Sprintf("%08x", crc32.Checksum(env.Payload, crcTable))
	if !strings.EqualFold(sum, env.CRC32C) {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("checksum mismatch: stored crc32c %q, computed %q (bit rot or a tampered file)", env.CRC32C, sum)}
	}
	return env.Payload, nil
}

// writeAtomic writes data to path with the temp-file + rename discipline:
// a crash at any instruction leaves either the old record or the new one
// under path, never a prefix.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".jitbull-store-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Put implements jitqueue.SecondTier: persist one encoded cache value.
// Failures never propagate (the memory tier already holds the value);
// they are accounted and the record simply stays cold for the next
// process. Injected disk faults get their modeled behavior: silent
// corruption kinds WRITE the damaged bytes and report success (detection
// is the reader's job), ENOSPC and generic errors drop the put, and
// transient EIO is absorbed by the bounded retry loop.
func (s *Store) Put(k jitqueue.Key, data []byte) {
	key := keyHex(k)
	sp := s.opts.Tracer.Begin(obs.CatStore, "store.put")
	start := time.Now()
	defer func() {
		s.hPut.ObserveEx(int64(time.Since(start)), sp.ID())
		sp.End(obs.S("key", key))
	}()
	env, err := encodeRecord(key, data)
	if err != nil {
		s.dropPut(key, err.Error())
		return
	}
	path := s.recordPath(k)

	for attempt := 0; ; attempt++ {
		f, fired := s.checkFault(faults.PointStorePut, key)
		if !fired {
			break
		}
		switch f.Kind {
		case faults.KindEIO:
			if attempt < s.retries {
				s.mRetries.Inc()
				s.sleep(retryBase << uint(attempt))
				continue
			}
			s.dropPut(key, "transient I/O errors exhausted the retry budget")
			return
		case faults.KindTornWrite:
			// A torn write defeats the rename discipline by definition (the
			// filesystem lied about durability): the prefix lands under the
			// FINAL name and the put reports success. The reader's checksum is
			// the only line of defense, which is the point.
			os.WriteFile(path, env[:len(env)/2], 0o644)
			return
		case faults.KindTruncate:
			os.WriteFile(path, nil, 0o644)
			return
		case faults.KindBitFlip:
			// One flipped bit mid-record, then the normal atomic write: the
			// file is well-formed enough to rename but fails its checksum.
			env = append([]byte(nil), env...)
			env[len(env)/2] ^= 0x04
			// fallthrough to the clean write below
		default:
			// enospc, error, panic, stall: the write is lost outright.
			s.dropPut(key, "injected "+string(f.Kind)+" fault dropped the write")
			return
		}
		break
	}

	for attempt := 0; ; attempt++ {
		err := writeAtomic(path, env)
		if err == nil {
			s.mPuts.Inc()
			return
		}
		if attempt < s.retries {
			s.mRetries.Inc()
			s.sleep(retryBase << uint(attempt))
			continue
		}
		s.dropPut(key, err.Error())
		return
	}
}

// dropPut accounts one lost write: the value stays memory-only.
func (s *Store) dropPut(key, reason string) {
	s.mPutDrops.Inc()
	s.opts.Audit.Record(obs.AuditEvent{
		Func:    key,
		Verdict: obs.VerdictCompileError,
		Stage:   string(faults.PointStorePut),
		Reason:  "store put dropped: " + reason,
	})
}

// Get implements jitqueue.SecondTier: fetch and verify one record.
// ok=false is always a plain miss to the caller; internally it may be a
// genuine absence, an injected fault, or a quarantined corruption.
// Injected read-side corruption kinds damage the on-disk bytes before
// the read — modeling rot discovered at read time — so the verification
// and quarantine path is what gets exercised.
func (s *Store) Get(k jitqueue.Key) ([]byte, bool) {
	key := keyHex(k)
	path := s.recordPath(k)
	sp := s.opts.Tracer.Begin(obs.CatStore, "store.get")
	start := time.Now()
	defer func() {
		s.hGet.ObserveEx(int64(time.Since(start)), sp.ID())
		sp.End(obs.S("key", key))
	}()

	for attempt := 0; ; attempt++ {
		f, fired := s.checkFault(faults.PointStoreGet, key)
		if !fired {
			break
		}
		switch f.Kind {
		case faults.KindEIO:
			if attempt < s.retries {
				s.mRetries.Inc()
				s.sleep(retryBase << uint(attempt))
				continue
			}
			s.mMisses.Inc()
			return nil, false
		case faults.KindTornWrite, faults.KindBitFlip, faults.KindTruncate:
			s.damage(path, f.Kind)
			// fall through to the normal read: verification must catch it
		default:
			// enospc, error, panic, stall: the read is lost.
			s.mMisses.Inc()
			return nil, false
		}
		break
	}

	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.opts.Audit.Record(obs.AuditEvent{
				Func:    key,
				Verdict: obs.VerdictCompileError,
				Stage:   string(faults.PointStoreGet),
				Reason:  "store read failed: " + err.Error(),
			})
		}
		s.mMisses.Inc()
		return nil, false
	}
	payload, derr := decodeRecord(path, key, data)
	if derr != nil {
		s.quarantine(path, key, derr)
		s.mMisses.Inc()
		return nil, false
	}
	s.mHits.Inc()
	return payload, true
}

// damage corrupts the on-disk record in place for a read-side injected
// fault (missing file: nothing to damage, the read misses anyway).
func (s *Store) damage(path string, kind faults.Kind) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	switch kind {
	case faults.KindTornWrite:
		data = data[:len(data)/2]
	case faults.KindTruncate:
		data = nil
	case faults.KindBitFlip:
		if len(data) > 0 {
			data = append([]byte(nil), data...)
			data[len(data)/2] ^= 0x04
		}
	}
	os.WriteFile(path, data, 0o644)
}

// quarantine moves one untrustworthy record into the sidecar directory
// (preserving the bytes as evidence) and accounts the degradation. The
// record then reads as a miss forever — it can never be served again.
func (s *Store) quarantine(path, key string, cause error) {
	dst := filepath.Join(s.quar, fmt.Sprintf("%s.%d", filepath.Base(path), s.qseq.Add(1)))
	if err := os.Rename(path, dst); err != nil {
		// Renaming failed (the file vanished, or the quarantine dir did):
		// removing the record still guarantees it is never served.
		os.Remove(path)
		dst = "(unpreserved: " + err.Error() + ")"
	}
	s.mQuarantined.Inc()
	s.opts.Audit.Record(obs.AuditEvent{
		Func:    key,
		Verdict: obs.VerdictQuarantine,
		Stage:   "store",
		Reason:  fmt.Sprintf("record quarantined to %s: %v", dst, cause),
	})
	s.opts.Watchdog.Signal(obs.Signal{Kind: obs.SigStoreCorrupt, Func: key, Cause: cause.Error()})
}

// Len reports how many record files the store currently holds (corrupt
// ones included — they are only discovered on read).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.objs)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// VerifyProblem is one untrustworthy record found by Verify.
type VerifyProblem struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

// VerifyReport summarizes an offline scan.
type VerifyReport struct {
	Checked     int             `json:"checked"`
	OK          int             `json:"ok"`
	Problems    []VerifyProblem `json:"problems,omitempty"`
	Quarantined int             `json:"quarantined,omitempty"`
}

// Verify scans every record offline — envelope format, version, key
// binding, checksum — without serving anything. With quarantineBad set,
// untrustworthy records are moved to the sidecar directory like a failed
// Get would. Used by `jitbull store verify`.
func (s *Store) Verify(quarantineBad bool) (VerifyReport, error) {
	var rep VerifyReport
	ents, err := os.ReadDir(s.objs)
	if err != nil {
		return rep, fmt.Errorf("verify store: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.objs, name)
		rep.Checked++
		key := strings.TrimSuffix(name, ".json")
		data, err := os.ReadFile(path)
		var derr error
		if err != nil {
			derr = err
		} else {
			_, derr = decodeRecord(path, key, data)
		}
		if derr == nil {
			rep.OK++
			continue
		}
		rep.Problems = append(rep.Problems, VerifyProblem{Path: path, Reason: derr.Error()})
		if quarantineBad {
			s.quarantine(path, key, derr)
			rep.Quarantined++
		}
	}
	return rep, nil
}

package mir

// computeIdoms returns the immediate dominator of every block in rpo
// (Cooper-Harvey-Kennedy iterative algorithm). The entry block maps to nil.
// It does not touch any graph or block state, so it is safe to call from
// read-only consumers such as the verifier.
func computeIdoms(rpo []*Block) map[*Block]*Block {
	idom := make(map[*Block]*Block, len(rpo))
	if len(rpo) == 0 {
		return idom
	}
	index := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	entry := rpo[0]
	idom[entry] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = nil
	return idom
}

// BuildDominators computes the dominator tree using the Cooper-Harvey-
// Kennedy iterative algorithm, then numbers the tree for O(1) Dominates
// queries, and recomputes loop depths from back edges.
func (g *Graph) BuildDominators() {
	rpo := g.ReversePostorder()
	if len(rpo) == 0 {
		return
	}
	idoms := computeIdoms(rpo)
	for _, b := range rpo {
		b.idom = idoms[b]
	}
	entry := rpo[0]

	// Number the dominator tree with a DFS interval labeling.
	children := make(map[*Block][]*Block, len(rpo))
	for _, b := range rpo[1:] {
		children[b.idom] = append(children[b.idom], b)
	}
	num := 0
	var dfs func(b *Block)
	dfs = func(b *Block) {
		b.domNum = num
		num++
		for _, c := range children[b] {
			dfs(c)
		}
		b.domLast = num - 1
	}
	dfs(entry)

	g.computeLoopDepths(rpo)
}

// computeLoopDepths finds natural loops (back edges to a dominating header)
// and sets LoopDepth to the nesting level of each block.
func (g *Graph) computeLoopDepths(rpo []*Block) {
	for _, b := range rpo {
		b.LoopDepth = 0
	}
	for _, b := range rpo {
		for _, s := range b.Succs {
			if s.Dominates(b) {
				// back edge b -> s; collect the natural loop of header s.
				for _, lb := range naturalLoop(s, b) {
					lb.LoopDepth++
				}
			}
		}
	}
}

// naturalLoop returns the blocks of the natural loop with the given header
// and back-edge source (header included).
func naturalLoop(header, backEdgeSrc *Block) []*Block {
	body := map[*Block]bool{header: true}
	stack := []*Block{backEdgeSrc}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if body[b] {
			continue
		}
		body[b] = true
		stack = append(stack, b.Preds...)
	}
	out := make([]*Block, 0, len(body))
	for b := range body {
		out = append(out, b)
	}
	return out
}

// LoopBodies returns, for each natural loop, its header and member set.
// Valid after BuildDominators.
func (g *Graph) LoopBodies() []Loop {
	var loops []Loop
	byHeader := map[*Block]int{}
	for _, b := range g.ReversePostorder() {
		for _, s := range b.Succs {
			if !s.Dominates(b) {
				continue
			}
			idx, ok := byHeader[s]
			if !ok {
				idx = len(loops)
				byHeader[s] = idx
				loops = append(loops, Loop{Header: s, Body: map[*Block]bool{}})
			}
			for _, lb := range naturalLoop(s, b) {
				loops[idx].Body[lb] = true
			}
		}
	}
	return loops
}

// Loop is a natural loop: its header block and the set of member blocks
// (header included).
type Loop struct {
	Header *Block
	Body   map[*Block]bool
}

// Contains reports whether the loop body includes b.
func (l Loop) Contains(b *Block) bool { return l.Body[b] }

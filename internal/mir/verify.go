package mir

import "fmt"

// Verify checks the SSA invariants of the graph and returns the list of
// violations (empty when the graph is well-formed). It is the backstop every
// optimization pass is checked against (engine/passes CheckIR mode), so it
// must hold at every pass boundary, not just at the end of the pipeline:
//
//   - every block reachable from entry ends in exactly one control
//     instruction, which is its last instruction;
//   - no block in the graph is unreachable from the entry (passes that cut
//     edges prune eagerly);
//   - phis appear only at block starts and have one operand per predecessor;
//   - operands are live, placed instructions in reachable blocks;
//   - successor/predecessor lists are mutually consistent;
//   - OpTest has exactly two successors, OpGoto exactly one, returns none;
//   - definitions dominate their uses: a non-phi use must be dominated by
//     its operand's definition (same-block uses must come after it), and a
//     phi's i-th input must dominate the i-th predecessor's exit;
//   - types are consistent: every operand carries a result type (TypeNone
//     results are pure effects and cannot be used as values), control and
//     store instructions produce no value, and unbox/guard instructions
//     consume boxed values while typed arithmetic never does.
//
// Verify never mutates the graph: dominance is computed on the side rather
// than through BuildDominators, so it can run between arbitrary passes
// without clobbering pass-maintained state.
func (g *Graph) Verify() []string {
	return g.VerifyOpts(VerifyOptions{Types: true})
}

// VerifyOptions selects which invariant families VerifyOpts checks.
type VerifyOptions struct {
	// Types enables the type-discipline checks. Engine builds with injected
	// vulnerabilities (BugSet non-empty) miscompile *by producing ill-typed
	// IR* — e.g. the CVE-2019-9791 model deletes an unbox guard so its uses
	// see the raw boxed value — which is exactly what this family catches.
	// Such builds therefore verify structure only, keeping the simulated
	// vulnerability window open.
	Types bool
}

// VerifyOpts is Verify with selectable strictness; see VerifyOptions.
func (g *Graph) VerifyOpts(opts VerifyOptions) []string {
	var errs []string
	addErr := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	rpo := g.ReversePostorder()
	reach := make(map[*Block]bool, len(rpo))
	for _, b := range rpo {
		reach[b] = true
	}
	for _, b := range g.Blocks {
		if !reach[b] {
			addErr("block%d is unreachable from entry", b.ID)
		}
	}

	// Liveness and intra-block position of every instruction.
	live := map[*Instr]bool{}
	pos := map[*Instr]int{}
	for _, b := range g.Blocks {
		for i, in := range b.Instrs {
			if !in.Dead {
				live[in] = true
			}
			pos[in] = i
		}
	}

	idoms := computeIdoms(rpo)
	// dominates walks the idom chain; graphs are small, so the O(depth)
	// query is cheaper than building a numbering we would throw away.
	dominates := func(a, b *Block) bool {
		for ; b != nil; b = idoms[b] {
			if b == a {
				return true
			}
		}
		return false
	}

	checkOperand := func(user *Instr, b *Block, op *Instr, idx int) {
		if !live[op] {
			addErr("block%d: instr %d uses dead operand %d", b.ID, user.ID, op.ID)
			return
		}
		if op.Block == nil {
			addErr("block%d: instr %d uses unplaced operand %d", b.ID, user.ID, op.ID)
			return
		}
		if !reach[op.Block] {
			addErr("block%d: instr %d uses operand %d from unreachable block%d",
				b.ID, user.ID, op.ID, op.Block.ID)
			return
		}
		if opts.Types && op.Type == TypeNone {
			addErr("block%d: instr %d uses no-result instruction %d (%s) as a value",
				b.ID, user.ID, op.ID, op.Op)
		}
		if user.Op == OpPhi {
			// The i-th input must be available at the end of the i-th
			// predecessor (SSA's dominance condition for phis).
			if idx < len(b.Preds) {
				pred := b.Preds[idx]
				if !dominates(op.Block, pred) {
					addErr("block%d: phi %d input %d (def in block%d) does not dominate pred block%d",
						b.ID, user.ID, op.ID, op.Block.ID, pred.ID)
				}
			}
			return
		}
		if op.Block == b {
			if pos[op] >= pos[user] {
				addErr("block%d: instr %d uses operand %d defined later in the same block",
					b.ID, user.ID, op.ID)
			}
		} else if !dominates(op.Block, b) {
			addErr("block%d: instr %d uses operand %d whose def (block%d) does not dominate it",
				b.ID, user.ID, op.ID, op.Block.ID)
		}
	}

	for _, b := range rpo {
		ctl := b.Control()
		if ctl == nil {
			addErr("block%d has no control instruction", b.ID)
			continue
		}
		seenNonPhi := false
		for i, in := range b.Instrs {
			if in.Dead {
				continue
			}
			if in.Block != b {
				addErr("block%d: instr %d has wrong Block back-pointer", b.ID, in.ID)
			}
			if in.Op == OpPhi {
				if seenNonPhi {
					addErr("block%d: phi %d after non-phi", b.ID, in.ID)
				}
				if len(in.Operands) != len(b.Preds) {
					addErr("block%d: phi %d has %d inputs for %d preds", b.ID, in.ID, len(in.Operands), len(b.Preds))
				}
			} else {
				seenNonPhi = true
			}
			if in.Op.IsControl() && i != len(b.Instrs)-1 {
				addErr("block%d: control %s not last", b.ID, in)
			}
			if opts.Types {
				if errMsg := checkInstrType(in); errMsg != "" {
					addErr("block%d: instr %d: %s", b.ID, in.ID, errMsg)
				}
			}
			for oi, op := range in.Operands {
				checkOperand(in, b, op, oi)
			}
		}
		wantSuccs := -1
		switch ctl.Op {
		case OpGoto:
			wantSuccs = 1
		case OpTest:
			wantSuccs = 2
		case OpReturn, OpReturnUndef:
			wantSuccs = 0
		}
		if wantSuccs >= 0 && len(b.Succs) != wantSuccs {
			addErr("block%d: %s with %d successors", b.ID, ctl.Op, len(b.Succs))
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				addErr("block%d -> block%d edge missing back-pointer", b.ID, s.ID)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				addErr("block%d <- block%d pred without succ edge", b.ID, p.ID)
			}
		}
	}
	return errs
}

// checkInstrType validates the result/operand type discipline of one
// instruction. It returns "" when consistent. The rules are deliberately
// the ones every pass preserves (validated over the full octane + examples
// + progen corpora), not an exhaustive typing judgment.
func checkInstrType(in *Instr) string {
	switch in.Op {
	case OpGoto, OpTest, OpReturn, OpReturnUndef,
		OpStoreElement, OpStoreGlobal, OpSetLength, OpKeepAlive, OpNop,
		OpOSREntry, OpSnapshot:
		if in.Type != TypeNone {
			return fmt.Sprintf("%s must not produce a value (has type %s)", in.Op, in.Type)
		}
	case OpBoundsCheck:
		// BoundsCheck forwards its index (TypeDouble) so BCE can replace
		// uses of the check with the index itself.
		if in.Type != TypeDouble && in.Type != TypeNone {
			return fmt.Sprintf("boundscheck has type %s", in.Type)
		}
	case OpUnbox, OpGuardType:
		if in.Type == TypeNone || in.Type == TypeValue {
			return fmt.Sprintf("%s must produce an unboxed type (has %s)", in.Op, in.Type)
		}
		if len(in.Operands) > 0 && in.Operands[0].Type != TypeValue {
			return fmt.Sprintf("%s of already-unboxed value %d (%s)",
				in.Op, in.Operands[0].ID, in.Operands[0].Type)
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpPow,
		OpBitAnd, OpBitOr, OpBitXor, OpShl, OpShr, OpUshr, OpNeg, OpMathFunc:
		if in.Type != TypeDouble {
			return fmt.Sprintf("arithmetic %s has type %s", in.Op, in.Type)
		}
		for _, op := range in.Operands {
			if op.Type != TypeDouble {
				return fmt.Sprintf("arithmetic %s consumes non-double operand %d (%s)",
					in.Op, op.ID, op.Type)
			}
		}
	case OpCompare:
		if in.Type != TypeBoolean {
			return fmt.Sprintf("compare has type %s", in.Type)
		}
	case OpElements:
		if in.Type != TypeElements {
			return fmt.Sprintf("elements has type %s", in.Type)
		}
		if len(in.Operands) > 0 && in.Operands[0].Type != TypeObject {
			return fmt.Sprintf("elements of non-object %d (%s)", in.Operands[0].ID, in.Operands[0].Type)
		}
	case OpLoadElement:
		if len(in.Operands) > 0 && in.Operands[0].Type != TypeElements {
			return fmt.Sprintf("loadelement base %d is %s, want elements",
				in.Operands[0].ID, in.Operands[0].Type)
		}
	}
	return ""
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// Package mir defines the SSA mid-level intermediate representation used by
// the optimizing JIT tier, mirroring IonMonkey's MIR: a graph of basic
// blocks holding instructions in static single-assignment form, where each
// instruction references its operands by instruction identity (printed as
// the operand's number, as in the paper's Listing 1).
package mir

import (
	"fmt"
	"strings"
)

// Type is the speculated type of an instruction's result.
type Type uint8

// Result types. TypeValue is an unspecialized boxed value (only parameters
// and call results before unboxing); TypeObject is a verified array handle;
// TypeElements is an elements pointer; TypeNone is for instructions with no
// result (control flow, stores, guards).
const (
	TypeNone Type = iota
	TypeValue
	TypeDouble
	TypeBoolean
	TypeObject
	TypeElements
)

// String returns a short name for the type.
func (t Type) String() string {
	switch t {
	case TypeNone:
		return "none"
	case TypeValue:
		return "value"
	case TypeDouble:
		return "double"
	case TypeBoolean:
		return "bool"
	case TypeObject:
		return "object"
	case TypeElements:
		return "elements"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Op is a MIR opcode.
type Op uint8

// MIR opcodes. The printed names (see opInfo) match the style of
// SpiderMonkey MIR dumps quoted in the paper: lowercase, e.g. "boundscheck",
// "initializedlength", "unbox".
const (
	OpNop Op = iota
	OpParameter
	OpConstant
	OpPhi
	OpGoto
	OpTest
	OpReturn
	OpReturnUndef
	OpUnbox     // guard: operand is of the expected type, produce typed value
	OpGuardType // guard on an already-loaded boxed value (globals, calls)
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpUshr
	OpNeg
	OpNot
	OpCompare  // Aux = CompareKind
	OpMathFunc // Aux = bytecode builtin id (pure math only)
	OpElements
	OpInitializedLength
	OpBoundsCheck
	OpLoadElement
	OpStoreElement
	OpSetLength
	OpArrayPush
	OpArrayPop
	OpNewArray
	OpLoadGlobal  // Aux = global slot
	OpStoreGlobal // Aux = global slot
	OpCall        // Aux = function index
	OpCallSpec    // speculated OpCall: result assumed TypeDouble, deopts otherwise
	OpOSREntry    // loop-header OSR point; operands = frame map (locals in slot order), Aux = loop ordinal
	OpSnapshot    // deopt frame map after a call-assign; operands = [call, locals in slot order], Num = spec ordinal+1
	OpAddrOf
	OpCodeBase
	OpMagic // placeholder for an optimized-out value (sentinel constant)
	OpKeepAlive
	numOps
)

// CompareKind distinguishes comparison operators in OpCompare's Aux field.
type CompareKind int

// Comparison kinds.
const (
	CmpLt CompareKind = iota + 1
	CmpLe
	CmpGt
	CmpGe
	CmpEq
	CmpNe
)

// String returns the operator spelling.
func (k CompareKind) String() string {
	switch k {
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	default:
		return "?"
	}
}

// AliasSet is a bit set of abstract memory categories, used by alias
// analysis to attach memory dependencies to loads.
type AliasSet uint8

// Memory categories.
const (
	AliasNone         AliasSet = 0
	AliasElement      AliasSet = 1 << 0 // array payload cells
	AliasObjectFields AliasSet = 1 << 1 // array headers (length, elements pointer)
	AliasGlobal       AliasSet = 1 << 2 // global variable slots
	AliasAny          AliasSet = AliasElement | AliasObjectFields | AliasGlobal
)

// Intersects reports whether the two sets share a category.
func (s AliasSet) Intersects(o AliasSet) bool { return s&o != 0 }

type opInfoEntry struct {
	name    string
	control bool // terminates a block
	guard   bool // has a side exit (bailout); cannot be dropped by DCE
	movable bool // candidate for LICM / reordering when operands allow
	loads   AliasSet
	stores  AliasSet
}

var opInfo = [numOps]opInfoEntry{
	OpNop:               {name: "nop"},
	OpParameter:         {name: "parameter", movable: false},
	OpConstant:          {name: "constant", movable: true},
	OpPhi:               {name: "phi"},
	OpGoto:              {name: "goto", control: true},
	OpTest:              {name: "test", control: true},
	OpReturn:            {name: "return", control: true},
	OpReturnUndef:       {name: "returnundef", control: true},
	OpUnbox:             {name: "unbox", guard: true},
	OpGuardType:         {name: "guardtype", guard: true},
	OpAdd:               {name: "add", movable: true},
	OpSub:               {name: "sub", movable: true},
	OpMul:               {name: "mul", movable: true},
	OpDiv:               {name: "div", movable: true},
	OpMod:               {name: "mod", movable: true},
	OpPow:               {name: "pow", movable: true},
	OpBitAnd:            {name: "bitand", movable: true},
	OpBitOr:             {name: "bitor", movable: true},
	OpBitXor:            {name: "bitxor", movable: true},
	OpShl:               {name: "shl", movable: true},
	OpShr:               {name: "shr", movable: true},
	OpUshr:              {name: "ushr", movable: true},
	OpNeg:               {name: "neg", movable: true},
	OpNot:               {name: "not", movable: true},
	OpCompare:           {name: "compare", movable: true},
	OpMathFunc:          {name: "mathfunc", movable: true},
	OpElements:          {name: "elements", movable: true, loads: AliasObjectFields},
	OpInitializedLength: {name: "initializedlength", movable: true, loads: AliasObjectFields},
	OpBoundsCheck:       {name: "boundscheck", guard: true, movable: true},
	OpLoadElement:       {name: "loadelement", movable: true, loads: AliasElement},
	OpStoreElement:      {name: "storeelement", stores: AliasElement},
	OpSetLength:         {name: "setlength", stores: AliasObjectFields | AliasElement},
	OpArrayPush:         {name: "arraypush", stores: AliasObjectFields | AliasElement},
	OpArrayPop:          {name: "arraypop", stores: AliasObjectFields | AliasElement},
	OpNewArray:          {name: "newarray"},
	OpLoadGlobal:        {name: "loadglobal", movable: true, loads: AliasGlobal},
	OpStoreGlobal:       {name: "storeglobal", stores: AliasGlobal},
	OpCall:              {name: "call", loads: AliasAny, stores: AliasAny},
	OpCallSpec:          {name: "callspec", loads: AliasAny, stores: AliasAny},
	// OpOSREntry/OpSnapshot produce no value but pin a frame map. They are
	// deliberately alias-neutral (their operands are SSA values, so their
	// position relative to memory ops is irrelevant) so that enabling
	// OSR/speculation does not perturb GVN/LICM decisions — the optimized
	// MIR, and therefore the DNA chains the policy sees, stay identical
	// with the feature on or off. HasEffects lists them explicitly so DCE
	// keeps them (and keeps the locals they reference alive).
	OpOSREntry: {name: "osrentry"},
	OpSnapshot: {name: "snapshot"},
	OpAddrOf:            {name: "addrof", movable: true, loads: AliasObjectFields},
	OpCodeBase:          {name: "codebase", movable: true},
	OpMagic:             {name: "magic", movable: true},
	OpKeepAlive:         {name: "keepalive"},
}

// String returns the MIR dump name of the opcode.
func (o Op) String() string {
	if int(o) < len(opInfo) && opInfo[o].name != "" {
		return opInfo[o].name
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsControl reports whether the op terminates a block.
func (o Op) IsControl() bool { return opInfo[o].control }

// IsGuard reports whether the op has a side exit.
func (o Op) IsGuard() bool { return opInfo[o].guard }

// IsMovable reports whether the op may be moved by LICM/reordering.
func (o Op) IsMovable() bool { return opInfo[o].movable }

// Loads returns the default (correct) alias categories the op reads.
func (o Op) Loads() AliasSet { return opInfo[o].loads }

// Stores returns the default (correct) alias categories the op writes.
func (o Op) Stores() AliasSet { return opInfo[o].stores }

// HasEffects reports whether the op writes memory or performs I/O-like work
// and therefore must not be removed even when unused.
func (o Op) HasEffects() bool {
	switch o {
	case OpStoreElement, OpSetLength, OpArrayPush, OpArrayPop, OpStoreGlobal,
		OpCall, OpCallSpec, OpNewArray, OpKeepAlive, OpOSREntry, OpSnapshot:
		return true
	}
	return opInfo[o].stores != AliasNone
}

// MagicSentinel is the numeric value of an OpMagic instruction at runtime,
// modeling SpiderMonkey's JS_OPTIMIZED_OUT magic value leaking into
// compiled code (CVE-2019-9792). It is large enough to defeat any bounds
// check it wrongly replaces.
const MagicSentinel = 1e9

// Instr is one MIR instruction.
type Instr struct {
	ID       int
	Op       Op
	Type     Type
	Operands []*Instr
	Block    *Block

	// Payloads.
	Num float64 // OpConstant value
	Aux int     // parameter index / global slot / function index / builtin / CompareKind

	// Dependency is the most recent instruction that may write memory this
	// instruction reads, as computed by alias analysis (nil means no
	// clobber since entry). GVN keys loads on it.
	Dependency *Instr

	// Uses is maintained by Graph.ComputeUses.
	Uses []*Instr

	// Dead marks instructions removed by a pass but not yet compacted.
	Dead bool
}

// IsConst reports whether the instruction is a constant with value v.
func (in *Instr) IsConst(v float64) bool { return in.Op == OpConstant && in.Num == v }

// String renders the instruction in the paper's Listing 1 style:
// "num opcode operand1 operand2".
func (in *Instr) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d %s", in.ID, in.Op)
	switch in.Op {
	case OpConstant:
		fmt.Fprintf(&sb, " %v", in.Num)
	case OpParameter, OpLoadGlobal, OpStoreGlobal, OpCall, OpCallSpec,
		OpMathFunc, OpOSREntry:
		fmt.Fprintf(&sb, " #%d", in.Aux)
	case OpCompare:
		fmt.Fprintf(&sb, " %s", CompareKind(in.Aux))
	}
	for _, op := range in.Operands {
		fmt.Fprintf(&sb, " %d", op.ID)
	}
	return sb.String()
}

// Block is a basic block. Instrs holds phis first, then ordinary
// instructions, with exactly one control instruction last (once built).
type Block struct {
	ID        int
	Instrs    []*Instr
	Preds     []*Block
	Succs     []*Block // for OpTest: Succs[0] = true edge, Succs[1] = false edge
	Graph     *Graph
	LoopDepth int

	// idom is filled by BuildDominators.
	idom *Block
	// domNum/domLast support O(1) dominance queries after BuildDominators.
	domNum, domLast int
}

// Control returns the block's terminating instruction, or nil while the
// block is still under construction.
func (b *Block) Control() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsControl() {
		return last
	}
	return nil
}

// Phis returns the block's leading phi instructions.
func (b *Block) Phis() []*Instr {
	for i, in := range b.Instrs {
		if in.Op != OpPhi {
			return b.Instrs[:i]
		}
	}
	return b.Instrs
}

// Idom returns the immediate dominator (nil for the entry block) after
// BuildDominators has run.
func (b *Block) Idom() *Block { return b.idom }

// Dominates reports whether b dominates o (every block dominates itself).
// Valid after BuildDominators.
func (b *Block) Dominates(o *Block) bool {
	return b.domNum <= o.domNum && o.domNum <= b.domLast
}

// Graph is the MIR of one function.
type Graph struct {
	Name      string
	FuncIndex int
	NumParams int
	Blocks    []*Block
	nextInstr int
	nextBlock int
}

// NewGraph creates an empty graph for the named function.
func NewGraph(name string, funcIndex, numParams int) *Graph {
	return &Graph{Name: name, FuncIndex: funcIndex, NumParams: numParams}
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// NewBlock appends a new empty block.
func (g *Graph) NewBlock() *Block {
	b := &Block{ID: g.nextBlock, Graph: g}
	g.nextBlock++
	g.Blocks = append(g.Blocks, b)
	return b
}

// NewInstr creates an instruction (not yet placed in a block).
func (g *Graph) NewInstr(op Op, typ Type, operands ...*Instr) *Instr {
	in := &Instr{ID: g.nextInstr, Op: op, Type: typ, Operands: operands}
	g.nextInstr++
	return in
}

// AddEdge records a CFG edge from pred to succ.
func AddEdge(pred, succ *Block) {
	pred.Succs = append(pred.Succs, succ)
	succ.Preds = append(succ.Preds, pred)
}

// Append places in at the end of block b (before nothing; caller manages
// control placement ordering).
func (b *Block) Append(in *Instr) *Instr {
	in.Block = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBeforeControl places in just before the block's control
// instruction, or at the end if the block has no control yet.
func (b *Block) InsertBeforeControl(in *Instr) *Instr {
	in.Block = b
	if ctl := b.Control(); ctl != nil {
		b.Instrs = append(b.Instrs, nil)
		copy(b.Instrs[len(b.Instrs)-1:], b.Instrs[len(b.Instrs)-2:])
		b.Instrs[len(b.Instrs)-2] = in
		return in
	}
	b.Instrs = append(b.Instrs, in)
	return in
}

// AddPhi prepends a phi instruction to the block.
func (b *Block) AddPhi(in *Instr) *Instr {
	in.Block = b
	b.Instrs = append([]*Instr{in}, b.Instrs...)
	return in
}

// RemoveDead compacts every block, dropping instructions marked Dead.
func (g *Graph) RemoveDead() {
	for _, b := range g.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !in.Dead {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
}

// ReplaceUses rewrites every use of old as a use of new across the graph
// (operands and phi inputs). It does not touch old itself.
func (g *Graph) ReplaceUses(old, new *Instr) {
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			for i, op := range in.Operands {
				if op == old {
					in.Operands[i] = new
				}
			}
		}
	}
}

// ComputeUses recomputes the Uses list of every live instruction.
func (g *Graph) ComputeUses() {
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			in.Uses = in.Uses[:0]
		}
	}
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Dead {
				continue
			}
			for _, op := range in.Operands {
				op.Uses = append(op.Uses, in)
			}
		}
	}
}

// Renumber reassigns dense instruction IDs in reverse-postorder block
// order, as IonMonkey's renumbering pass does.
func (g *Graph) Renumber() {
	id := 0
	for _, b := range g.ReversePostorder() {
		for _, in := range b.Instrs {
			in.ID = id
			id++
		}
	}
	g.nextInstr = id
}

// ReversePostorder returns the blocks in reverse postorder from the entry.
// Unreachable blocks are excluded.
func (g *Graph) ReversePostorder() []*Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make(map[*Block]bool, len(g.Blocks))
	var order []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
		order = append(order, b)
	}
	visit(g.Blocks[0])
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// PruneUnreachable removes blocks not reachable from the entry, fixing up
// predecessor lists and phis of surviving blocks.
func (g *Graph) PruneUnreachable() {
	reach := map[*Block]bool{}
	for _, b := range g.ReversePostorder() {
		reach[b] = true
	}
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		// Drop edges from unreachable predecessors, including phi inputs.
		for i := len(b.Preds) - 1; i >= 0; i-- {
			if !reach[b.Preds[i]] {
				b.RemovePred(i)
			}
		}
	}
	out := g.Blocks[:0]
	for _, b := range g.Blocks {
		if reach[b] {
			out = append(out, b)
		}
	}
	g.Blocks = out
}

// RemovePred removes predecessor index i, dropping the matching phi inputs.
func (b *Block) RemovePred(i int) {
	b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
	for _, phi := range b.Phis() {
		if i < len(phi.Operands) {
			phi.Operands = append(phi.Operands[:i], phi.Operands[i+1:]...)
		}
	}
}

// String renders the whole graph as a MIR dump.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "MIR %s (fn #%d, %d params)\n", g.Name, g.FuncIndex, g.NumParams)
	for _, b := range g.ReversePostorder() {
		fmt.Fprintf(&sb, "block%d", b.ID)
		if len(b.Preds) > 0 {
			sb.WriteString(" <-")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " block%d", p.ID)
			}
		}
		if b.LoopDepth > 0 {
			fmt.Fprintf(&sb, " (loop depth %d)", b.LoopDepth)
		}
		sb.WriteByte('\n')
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		if len(b.Succs) > 0 {
			sb.WriteString("  ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " block%d", s.ID)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// InstrCount returns the number of live instructions.
func (g *Graph) InstrCount() int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if !in.Dead {
				n++
			}
		}
	}
	return n
}

package mir

import "strconv"

// Snapshot is a stable copy of a graph's live instructions taken between
// optimization passes. The JITBULL Δ extractor consumes pairs of snapshots
// (IR_{i-1}, IR_i); it never holds live *Instr pointers, so passes are free
// to mutate the graph afterwards.
type Snapshot struct {
	FuncName string
	Instrs   []SnapInstr
}

// SnapInstr mirrors the paper's IR line format: an instruction number, an
// opcode (with the payload detail a real MIR dump prints, e.g.
// "constant 4", "parameter#1", "compare <"), and operand references (by
// instruction number).
type SnapInstr struct {
	ID       int
	Opcode   string
	Operands []int
}

// snapOpcodeCache holds pre-rendered strings for the payload values that
// dominate real programs: small non-negative integer constants and low
// parameter/builtin indexes. Snapshots are taken between every pass of
// every compilation, so these renderings are hot.
var snapOpcodeCache = func() (c struct {
	constant  [64]string
	parameter [16]string
	mathfunc  [16]string
}) {
	for i := range c.constant {
		c.constant[i] = "constant(" + strconv.Itoa(i) + ")"
	}
	for i := range c.parameter {
		c.parameter[i] = "parameter#" + strconv.Itoa(i)
	}
	for i := range c.mathfunc {
		c.mathfunc[i] = "mathfunc#" + strconv.Itoa(i)
	}
	return c
}()

// snapOpcode renders the opcode with its payload detail. Identity-carrying
// payloads (constant values, parameter indexes, comparison kinds, math
// builtins) distinguish otherwise identical chains; position-dependent
// payloads (global slots, function indexes) are deliberately omitted so
// fingerprints survive code reorganization.
func snapOpcode(in *Instr) string {
	switch in.Op {
	case OpConstant:
		if n := int(in.Num); float64(n) == in.Num && n >= 0 && n < len(snapOpcodeCache.constant) {
			return snapOpcodeCache.constant[n]
		}
		// strconv with 'g'/-1 renders exactly as fmt's %v does for float64.
		return "constant(" + strconv.FormatFloat(in.Num, 'g', -1, 64) + ")"
	case OpParameter:
		if n := in.Aux; n >= 0 && n < len(snapOpcodeCache.parameter) {
			return snapOpcodeCache.parameter[n]
		}
		return "parameter#" + strconv.Itoa(in.Aux)
	case OpCompare:
		return "compare" + CompareKind(in.Aux).String()
	case OpMathFunc:
		if n := in.Aux; n >= 0 && n < len(snapOpcodeCache.mathfunc) {
			return snapOpcodeCache.mathfunc[n]
		}
		return "mathfunc#" + strconv.Itoa(in.Aux)
	case OpCallSpec:
		// Speculated calls fingerprint as plain calls: the speculation is a
		// lowering detail, and DNA chains must not shift when it toggles.
		return opInfo[OpCall].name
	default:
		return in.Op.String()
	}
}

// snapSkip reports whether the op is an OSR/deopt frame-map marker that
// snapshots omit: the markers exist only when OSR/speculation is enabled, and
// chains fed to the DNA policy must stay identical with the feature on vs off.
func snapSkip(op Op) bool { return op == OpOSREntry || op == OpSnapshot }

// Snap captures the current live instructions of the graph in reverse
// postorder. The snapshot is built with exactly two allocations (the
// instruction slice and one flat operand array) on top of the Snapshot
// itself.
func (g *Graph) Snap() *Snapshot {
	rpo := g.ReversePostorder()
	nInstrs, nOps := 0, 0
	for _, b := range rpo {
		for _, in := range b.Instrs {
			if in.Dead || snapSkip(in.Op) {
				continue
			}
			nInstrs++
			nOps += len(in.Operands)
		}
	}
	s := &Snapshot{FuncName: g.Name, Instrs: make([]SnapInstr, 0, nInstrs)}
	var opBuf []int
	if nOps > 0 {
		opBuf = make([]int, 0, nOps)
	}
	for _, b := range rpo {
		for _, in := range b.Instrs {
			if in.Dead || snapSkip(in.Op) {
				continue
			}
			si := SnapInstr{ID: in.ID, Opcode: snapOpcode(in)}
			if len(in.Operands) > 0 {
				start := len(opBuf)
				for _, op := range in.Operands {
					opBuf = append(opBuf, op.ID)
				}
				si.Operands = opBuf[start:len(opBuf):len(opBuf)]
			}
			s.Instrs = append(s.Instrs, si)
		}
	}
	return s
}

// Verify lives in verify.go.

package mir

import (
	"strings"
	"testing"
)

// diamond builds entry -> (left|right) -> join -> ret.
func diamond() (*Graph, *Block, *Block, *Block, *Block) {
	g := NewGraph("d", 0, 0)
	entry := g.NewBlock()
	left := g.NewBlock()
	right := g.NewBlock()
	join := g.NewBlock()
	c := g.NewInstr(OpConstant, TypeDouble)
	entry.Append(c)
	entry.Append(g.NewInstr(OpTest, TypeNone, c))
	AddEdge(entry, left)
	AddEdge(entry, right)
	left.Append(g.NewInstr(OpGoto, TypeNone))
	AddEdge(left, join)
	right.Append(g.NewInstr(OpGoto, TypeNone))
	AddEdge(right, join)
	join.Append(g.NewInstr(OpReturnUndef, TypeNone))
	return g, entry, left, right, join
}

func TestDominatorsDiamond(t *testing.T) {
	g, entry, left, right, join := diamond()
	g.BuildDominators()
	if !entry.Dominates(join) || !entry.Dominates(left) || !entry.Dominates(right) {
		t.Fatal("entry must dominate everything")
	}
	if left.Dominates(join) || right.Dominates(join) {
		t.Fatal("branch arms must not dominate the join")
	}
	if join.Idom() != entry {
		t.Fatalf("idom(join) = %v, want entry", join.Idom())
	}
	if !join.Dominates(join) {
		t.Fatal("dominance is reflexive")
	}
}

func TestLoopDetection(t *testing.T) {
	g := NewGraph("l", 0, 0)
	entry := g.NewBlock()
	header := g.NewBlock()
	body := g.NewBlock()
	exit := g.NewBlock()
	c := g.NewInstr(OpConstant, TypeDouble)
	entry.Append(c)
	entry.Append(g.NewInstr(OpGoto, TypeNone))
	AddEdge(entry, header)
	header.Append(g.NewInstr(OpTest, TypeNone, c))
	AddEdge(header, body)
	AddEdge(header, exit)
	body.Append(g.NewInstr(OpGoto, TypeNone))
	AddEdge(body, header)
	exit.Append(g.NewInstr(OpReturnUndef, TypeNone))
	g.BuildDominators()

	if header.LoopDepth != 1 || body.LoopDepth != 1 {
		t.Fatalf("loop depths: header=%d body=%d, want 1/1", header.LoopDepth, body.LoopDepth)
	}
	if entry.LoopDepth != 0 || exit.LoopDepth != 0 {
		t.Fatal("non-loop blocks must have depth 0")
	}
	loops := g.LoopBodies()
	if len(loops) != 1 || loops[0].Header != header || !loops[0].Contains(body) || loops[0].Contains(exit) {
		t.Fatalf("LoopBodies = %+v", loops)
	}
}

func TestVerifyCatchesBrokenGraphs(t *testing.T) {
	// Missing control instruction.
	g := NewGraph("bad", 0, 0)
	b := g.NewBlock()
	b.Append(g.NewInstr(OpConstant, TypeDouble))
	if errs := g.Verify(); len(errs) == 0 {
		t.Fatal("missing control not caught")
	}

	// Goto with two successors.
	g2, entry, left, _, _ := diamond()
	entry.Instrs[len(entry.Instrs)-1].Op = OpGoto
	_ = left
	if errs := g2.Verify(); len(errs) == 0 {
		t.Fatal("goto with 2 successors not caught")
	}

	// Phi input count mismatch.
	g3, _, _, _, join := diamond()
	phi := g3.NewInstr(OpPhi, TypeDouble)
	phi.Operands = []*Instr{g3.Blocks[0].Instrs[0]} // 1 input, 2 preds
	join.AddPhi(phi)
	if errs := g3.Verify(); len(errs) == 0 {
		t.Fatal("phi arity mismatch not caught")
	}
}

func TestRemoveDeadAndReplaceUses(t *testing.T) {
	g := NewGraph("r", 0, 0)
	b := g.NewBlock()
	c1 := g.NewInstr(OpConstant, TypeDouble)
	c1.Num = 1
	c2 := g.NewInstr(OpConstant, TypeDouble)
	c2.Num = 1
	add := g.NewInstr(OpAdd, TypeDouble, c1, c2)
	ret := g.NewInstr(OpReturn, TypeNone, add)
	b.Append(c1)
	b.Append(c2)
	b.Append(add)
	b.Append(ret)

	g.ReplaceUses(c2, c1)
	if add.Operands[1] != c1 {
		t.Fatal("ReplaceUses did not rewrite the operand")
	}
	c2.Dead = true
	g.RemoveDead()
	if len(b.Instrs) != 3 {
		t.Fatalf("RemoveDead left %d instrs", len(b.Instrs))
	}
	if errs := g.Verify(); len(errs) != 0 {
		t.Fatalf("graph invalid after dead removal: %v", errs)
	}
}

func TestRenumberAndString(t *testing.T) {
	g, _, _, _, _ := diamond()
	g.Renumber()
	dump := g.String()
	for _, want := range []string{"block0", "test", "goto", "returnundef"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if g.InstrCount() != 5 {
		t.Fatalf("InstrCount = %d, want 5", g.InstrCount())
	}
}

func TestSnapshotOpcodeDetail(t *testing.T) {
	g := NewGraph("s", 0, 1)
	b := g.NewBlock()
	p := g.NewInstr(OpParameter, TypeValue)
	p.Aux = 0
	c := g.NewInstr(OpConstant, TypeDouble)
	c.Num = 4
	cmp := g.NewInstr(OpCompare, TypeBoolean, p, c)
	cmp.Aux = int(CmpLt)
	ret := g.NewInstr(OpReturn, TypeNone, cmp)
	for _, in := range []*Instr{p, c, cmp, ret} {
		b.Append(in)
	}
	snap := g.Snap()
	var ops []string
	for _, si := range snap.Instrs {
		ops = append(ops, si.Opcode)
	}
	joined := strings.Join(ops, " ")
	for _, want := range []string{"parameter#0", "constant(4)", "compare<"} {
		if !strings.Contains(joined, want) {
			t.Errorf("snapshot opcodes missing %q: %v", want, ops)
		}
	}
}

func TestPruneUnreachable(t *testing.T) {
	g, _, _, _, _ := diamond()
	orphan := g.NewBlock()
	orphan.Append(g.NewInstr(OpReturnUndef, TypeNone))
	g.PruneUnreachable()
	for _, b := range g.Blocks {
		if b == orphan {
			t.Fatal("unreachable block survived")
		}
	}
}

func TestInsertBeforeControl(t *testing.T) {
	g := NewGraph("i", 0, 0)
	b := g.NewBlock()
	b.Append(g.NewInstr(OpReturnUndef, TypeNone))
	c := g.NewInstr(OpConstant, TypeDouble)
	b.InsertBeforeControl(c)
	if b.Instrs[0] != c || b.Instrs[1].Op != OpReturnUndef {
		t.Fatalf("wrong order: %v then %v", b.Instrs[0].Op, b.Instrs[1].Op)
	}
}

func TestNestedLoopDepths(t *testing.T) {
	// entry -> h1 -> h2 -> b2 -> h2(back) ; h2 -> l1latch -> h1(back); h1 -> exit
	g := NewGraph("n", 0, 0)
	entry := g.NewBlock()
	h1 := g.NewBlock()
	h2 := g.NewBlock()
	b2 := g.NewBlock()
	latch1 := g.NewBlock()
	exit := g.NewBlock()
	c := g.NewInstr(OpConstant, TypeDouble)
	entry.Append(c)
	entry.Append(g.NewInstr(OpGoto, TypeNone))
	AddEdge(entry, h1)
	h1.Append(g.NewInstr(OpTest, TypeNone, c))
	AddEdge(h1, h2)
	AddEdge(h1, exit)
	h2.Append(g.NewInstr(OpTest, TypeNone, c))
	AddEdge(h2, b2)
	AddEdge(h2, latch1)
	b2.Append(g.NewInstr(OpGoto, TypeNone))
	AddEdge(b2, h2)
	latch1.Append(g.NewInstr(OpGoto, TypeNone))
	AddEdge(latch1, h1)
	exit.Append(g.NewInstr(OpReturnUndef, TypeNone))
	g.BuildDominators()
	if h1.LoopDepth != 1 {
		t.Errorf("h1 depth = %d, want 1", h1.LoopDepth)
	}
	if h2.LoopDepth != 2 || b2.LoopDepth != 2 {
		t.Errorf("inner loop depths: h2=%d b2=%d, want 2/2", h2.LoopDepth, b2.LoopDepth)
	}
}

// Package value defines the runtime values of the nanojs language.
//
// A Value is a small tagged struct. Numbers are IEEE-754 float64 (as in
// JavaScript); arrays are handles into the shared heap arena
// (internal/heap); strings are Go strings. nanojs has no first-class
// function values: functions are called directly by name.
package value

import (
	"fmt"
	"math"
	"strconv"
	"unsafe"
)

// Type is the runtime type tag of a Value.
type Type uint8

// Value types. Undefined is deliberately the zero value so that a
// zero-initialized Value is `undefined`.
const (
	Undefined Type = iota
	Null
	Boolean
	Number
	String
	Array
)

// String returns the JavaScript-facing name of the type (as typeof would).
func (t Type) String() string {
	switch t {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case Boolean:
		return "boolean"
	case Number:
		return "number"
	case String:
		return "string"
	case Array:
		return "object"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a nanojs runtime value.
type Value struct {
	typ Type
	num float64 // Number payload; Boolean stores 0/1; Array stores nothing
	ref int32   // Array handle
	str string  // String payload
}

// Layout reports Value's size and the byte offsets of the typ, num and
// ref fields. The machine-code tier reads (and, for number stores,
// writes) global slots directly; publishing the layout from the owning
// package keeps that consumer correct if the struct ever changes. The str
// field is deliberately not exposed: generated code must never touch the
// pointer-carrying field (no write barriers outside Go).
func Layout() (size, typ, num, ref uintptr) {
	var v Value
	return unsafe.Sizeof(v), unsafe.Offsetof(v.typ), unsafe.Offsetof(v.num), unsafe.Offsetof(v.ref)
}

// Undef is the undefined value.
func Undef() Value { return Value{} }

// NullV is the null value.
func NullV() Value { return Value{typ: Null} }

// Bool makes a boolean value.
func Bool(b bool) Value {
	n := 0.0
	if b {
		n = 1
	}
	return Value{typ: Boolean, num: n}
}

// Num makes a number value.
func Num(f float64) Value { return Value{typ: Number, num: f} }

// Str makes a string value.
func Str(s string) Value { return Value{typ: String, str: s} }

// ArrayRef makes an array value from a heap handle.
func ArrayRef(h int32) Value { return Value{typ: Array, ref: h} }

// Type returns the value's type tag.
func (v Value) Type() Type { return v.typ }

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.typ == Undefined }

// IsNumber reports whether v is a number.
func (v Value) IsNumber() bool { return v.typ == Number }

// IsArray reports whether v is an array.
func (v Value) IsArray() bool { return v.typ == Array }

// IsString reports whether v is a string.
func (v Value) IsString() bool { return v.typ == String }

// AsNumber returns the float64 payload of a Number (or Boolean as 0/1).
// It does not convert other types; use ToNumber for coercion.
func (v Value) AsNumber() float64 { return v.num }

// AsBool returns the boolean payload; only valid for Boolean values.
func (v Value) AsBool() bool { return v.num != 0 }

// AsString returns the string payload; only valid for String values.
func (v Value) AsString() string { return v.str }

// Handle returns the array heap handle; only valid for Array values.
func (v Value) Handle() int32 { return v.ref }

// ToBool applies JavaScript truthiness.
func (v Value) ToBool() bool {
	switch v.typ {
	case Undefined, Null:
		return false
	case Boolean:
		return v.num != 0
	case Number:
		return v.num != 0 && !math.IsNaN(v.num)
	case String:
		return v.str != ""
	default:
		return true
	}
}

// ToNumber applies JavaScript ToNumber coercion (simplified: strings parse
// as float or NaN; arrays are NaN; null is 0; undefined is NaN).
func (v Value) ToNumber() float64 {
	switch v.typ {
	case Undefined:
		return math.NaN()
	case Null:
		return 0
	case Boolean, Number:
		return v.num
	case String:
		if v.str == "" {
			return 0
		}
		f, err := strconv.ParseFloat(v.str, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	default:
		return math.NaN()
	}
}

// ToString renders the value as JavaScript's String() would (simplified
// number formatting: %v for floats, integer form when integral).
func (v Value) ToString() string {
	switch v.typ {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case Boolean:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case Number:
		return FormatNumber(v.num)
	case String:
		return v.str
	case Array:
		return "[object Array]"
	default:
		return "<invalid>"
	}
}

// FormatNumber renders a float64 the way nanojs prints numbers: integers
// without a decimal point, NaN/Infinity spelled as in JS.
func FormatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// String implements fmt.Stringer for diagnostics.
func (v Value) String() string { return v.ToString() }

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.typ != b.typ {
		return false
	}
	switch a.typ {
	case Undefined, Null:
		return true
	case Boolean:
		return (a.num != 0) == (b.num != 0)
	case Number:
		return a.num == b.num // NaN != NaN falls out naturally
	case String:
		return a.str == b.str
	case Array:
		return a.ref == b.ref
	default:
		return false
	}
}

// LooseEquals implements == with simplified JS coercion rules: null and
// undefined are mutually equal; mixed number/string/bool compare numerically;
// arrays compare by identity against arrays and are never loosely equal to
// primitives (nanojs arrays have no ToPrimitive).
func LooseEquals(a, b Value) bool {
	if a.typ == b.typ {
		return StrictEquals(a, b)
	}
	aNullish := a.typ == Undefined || a.typ == Null
	bNullish := b.typ == Undefined || b.typ == Null
	if aNullish || bNullish {
		return aNullish && bNullish
	}
	if a.typ == Array || b.typ == Array {
		return false
	}
	return a.ToNumber() == b.ToNumber()
}

// ToInt32 applies JavaScript's ToInt32 (used by bitwise operators).
func ToInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(math.Trunc(f))))
}

// ToUint32 applies JavaScript's ToUint32 (used by >>>).
func ToUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(math.Trunc(f)))
}

// ToArrayIndex converts a number to an array index. ok is false when the
// number is negative, non-integral, NaN or too large for int.
func ToArrayIndex(f float64) (idx int, ok bool) {
	if math.IsNaN(f) || f < 0 || f != math.Trunc(f) || f > float64(math.MaxInt32) {
		return 0, false
	}
	return int(f), true
}

// maxExactInt is 2^53, the largest magnitude below which every integer is
// exactly representable in float64.
const maxExactInt = 9007199254740992

// Mod implements JavaScript's % with the integer fast path every real JS
// engine has: for exactly-representable integral operands it is a machine
// integer remainder (sign follows the dividend, as in JS), falling back to
// the IEEE-754 remainder otherwise.
func Mod(x, y float64) float64 {
	if x == math.Trunc(x) && y == math.Trunc(y) && y != 0 &&
		x > -maxExactInt && x < maxExactInt && y > -maxExactInt && y < maxExactInt {
		return float64(int64(x) % int64(y))
	}
	return math.Mod(x, y)
}

package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroValueIsUndefined(t *testing.T) {
	var v Value
	if !v.IsUndefined() {
		t.Fatal("zero Value must be undefined")
	}
	if v.ToString() != "undefined" {
		t.Fatalf("ToString = %q", v.ToString())
	}
}

func TestTruthiness(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{Undef(), false},
		{NullV(), false},
		{Bool(false), false},
		{Bool(true), true},
		{Num(0), false},
		{Num(math.NaN()), false},
		{Num(1), true},
		{Num(-0.5), true},
		{Str(""), false},
		{Str("x"), true},
		{ArrayRef(0), true},
	}
	for _, tt := range tests {
		if got := tt.v.ToBool(); got != tt.want {
			t.Errorf("ToBool(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestToNumber(t *testing.T) {
	if !math.IsNaN(Undef().ToNumber()) {
		t.Error("undefined should coerce to NaN")
	}
	if NullV().ToNumber() != 0 {
		t.Error("null should coerce to 0")
	}
	if Bool(true).ToNumber() != 1 {
		t.Error("true should coerce to 1")
	}
	if Str("3.5").ToNumber() != 3.5 {
		t.Error(`"3.5" should coerce to 3.5`)
	}
	if Str("").ToNumber() != 0 {
		t.Error(`"" should coerce to 0`)
	}
	if !math.IsNaN(Str("abc").ToNumber()) {
		t.Error(`"abc" should coerce to NaN`)
	}
	if !math.IsNaN(ArrayRef(3).ToNumber()) {
		t.Error("arrays coerce to NaN in nanojs")
	}
}

func TestStrictEquals(t *testing.T) {
	if !StrictEquals(Num(3), Num(3)) {
		t.Error("3 === 3")
	}
	if StrictEquals(Num(math.NaN()), Num(math.NaN())) {
		t.Error("NaN === NaN must be false")
	}
	if StrictEquals(Num(1), Bool(true)) {
		t.Error("1 === true must be false")
	}
	if !StrictEquals(Undef(), Undef()) {
		t.Error("undefined === undefined")
	}
	if StrictEquals(Undef(), NullV()) {
		t.Error("undefined === null must be false")
	}
	if !StrictEquals(ArrayRef(2), ArrayRef(2)) {
		t.Error("same array handle must be ===")
	}
	if StrictEquals(ArrayRef(1), ArrayRef(2)) {
		t.Error("different handles must not be ===")
	}
}

func TestLooseEquals(t *testing.T) {
	if !LooseEquals(Undef(), NullV()) {
		t.Error("undefined == null")
	}
	if !LooseEquals(Num(1), Bool(true)) {
		t.Error("1 == true")
	}
	if !LooseEquals(Str("3"), Num(3)) {
		t.Error(`"3" == 3`)
	}
	if LooseEquals(ArrayRef(0), Num(0)) {
		t.Error("array == 0 must be false in nanojs")
	}
	if LooseEquals(Undef(), Num(0)) {
		t.Error("undefined == 0 must be false")
	}
}

func TestToInt32(t *testing.T) {
	tests := []struct {
		in   float64
		want int32
	}{
		{0, 0},
		{3.7, 3},
		{-3.7, -3},
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{4294967296 + 5, 5},       // wraps mod 2^32
		{2147483648, -2147483648}, // 2^31 wraps negative
	}
	for _, tt := range tests {
		if got := ToInt32(tt.in); got != tt.want {
			t.Errorf("ToInt32(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestToUint32(t *testing.T) {
	if got := ToUint32(-1); got != 4294967295 {
		t.Errorf("ToUint32(-1) = %d", got)
	}
	if got := ToUint32(math.NaN()); got != 0 {
		t.Errorf("ToUint32(NaN) = %d", got)
	}
}

func TestToArrayIndex(t *testing.T) {
	if idx, ok := ToArrayIndex(5); !ok || idx != 5 {
		t.Errorf("ToArrayIndex(5) = %d, %v", idx, ok)
	}
	for _, bad := range []float64{-1, 0.5, math.NaN(), math.Inf(1), 3e9} {
		if _, ok := ToArrayIndex(bad); ok {
			t.Errorf("ToArrayIndex(%v) should fail", bad)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	tests := map[float64]string{
		0:    "0",
		42:   "42",
		-3:   "-3",
		3.5:  "3.5",
		1e20: "1e+20",
	}
	for in, want := range tests {
		if got := FormatNumber(in); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatNumber(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
	if FormatNumber(math.Inf(-1)) != "-Infinity" {
		t.Error("-Inf formatting")
	}
}

func TestStrictEqualsPropertyReflexiveExceptNaN(t *testing.T) {
	f := func(x float64) bool {
		v := Num(x)
		if math.IsNaN(x) {
			return !StrictEquals(v, v)
		}
		return StrictEquals(v, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLooseEqualsPropertySymmetric(t *testing.T) {
	mk := func(tag uint8, n float64, s string) Value {
		switch tag % 5 {
		case 0:
			return Undef()
		case 1:
			return NullV()
		case 2:
			return Bool(n > 0)
		case 3:
			return Num(n)
		default:
			return Str(s)
		}
	}
	f := func(t1, t2 uint8, n1, n2 float64, s1, s2 string) bool {
		a, b := mk(t1, n1, s1), mk(t2, n2, s2)
		return LooseEquals(a, b) == LooseEquals(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	tests := map[Type]string{
		Undefined: "undefined",
		Boolean:   "boolean",
		Number:    "number",
		String:    "string",
		Array:     "object",
	}
	for typ, want := range tests {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

// Package difftest is the correctness backstop of the jitbull reproduction:
// a differential-execution oracle that runs one nanojs program under a
// matrix of engine configurations — interpreter-only, baseline-only, full
// JIT, full JIT with per-pass IR verification, full JIT under the JITBULL
// policy, per-pass ablations, and source-transformed variants — and asserts
// that every configuration observes the same behavior.
//
// The observation model deliberately captures only *semantics*: the
// top-level result value, the `result` global every corpus program
// maintains, printed output, and the error/crash/hijack outcome. Tier and
// bailout statistics differ across configurations by design and are carried
// for diagnostics only.
package difftest

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/experiments"
	"github.com/jitbull/jitbull/internal/interp"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/variants"
)

// Observation is the externally visible behavior of one engine run.
type Observation struct {
	SetupErr string // parse/compile failure (the run never started)
	Result   string // rendered value of the top-level run
	ResultG  string // rendered value of the global `result`
	Output   string // accumulated print output
	ErrKind  string // "", "budget", "crash", "hijack", "runtime"
	ErrMsg   string // full error text (identifier-bearing; see Config.LossyNames)
	Hijacked bool
	Crashed  bool

	// Diagnostics, not compared.
	Stats    engine.Stats
	IRFaults []string // CheckIR verifier rejections (offending pass named)
}

// Config is one cell of the execution matrix.
type Config struct {
	Name string
	// Transform optionally rewrites the source before running (variant
	// configurations: rename, minify).
	Transform func(src string) (string, error)
	// LossyNames marks configurations whose source transform renames
	// identifiers, losing every identifier-keyed observation: error
	// messages (they quote identifiers) and the `result` global (it no
	// longer exists under that name). Only the error kind is compared.
	LossyNames bool
	// Engine is the engine configuration (Out is overridden per run).
	Engine engine.Config
	// Policy optionally builds a fresh JITBULL policy for the run.
	Policy func() engine.Policy
	// Prewarm runs the program once in a throwaway engine (same
	// configuration, discarded output) before the observed run, so
	// shared-cache configurations observe warm-hit behavior: the run under
	// test installs artifacts and replays verdicts from the cache instead
	// of compiling. Warm cells must still diverge in nothing.
	Prewarm bool
}

// Options bounds a Matrix.
type Options struct {
	// IonThreshold for the JIT configurations (default 30, far below the
	// production 1500 so short test programs still tier up).
	IonThreshold int
	// BaselineThreshold (default 10).
	BaselineThreshold int
	// MaxSteps per run (default 200M, ample for every corpus program).
	MaxSteps int64
	// Bugs makes every JIT configuration compile with the injected
	// vulnerabilities active (used to seed deliberate divergences).
	Bugs passes.BugSet
	// Ablate lists passes to disable one at a time (default: the passes
	// whose unsoundness classes the paper's CVEs live in). Each entry adds
	// one configuration.
	Ablate []string
	// JITBULL adds a configuration protected by a 4-VDC detector.
	JITBULL bool
	// Variants adds renamed and minified source-transform configurations.
	Variants bool
	// CheckIR adds a configuration that runs the SSA verifier after every
	// optimization pass.
	CheckIR bool
	// Async adds off-thread-compilation and shared-cache configurations:
	// jit+async (background tier-up through the process-wide queue),
	// jit+cached and jit+async+cached (shared cross-engine code cache,
	// prewarmed so the observed run hits), and — with JITBULL — the same
	// under the policy, exercising verdict replay. Async tier-up may change
	// *when* a function tiers, never what it computes or which verdict it
	// gets, so all cells must stay at zero divergence.
	Async bool
	// Fusion adds the superinstruction-tier contrast cells. Fusion is on by
	// default, so the plain jit cells already execute fused code; these
	// cells run with NoFuse set — jit+nofuse, jit+nofuse+jitbull (with
	// JITBULL), and jit+nofuse+cached (with Async, sharing the cached
	// cells' cache so the NoFuse cache-key byte is what keeps fused and
	// unfused artifacts apart). Fusion changes dispatch, never semantics,
	// so every cell must stay at zero divergence.
	Fusion bool
	// MC adds the machine-code-tier contrast cells. On supported platforms
	// the tier is on by default, so the plain jit cells already execute
	// real machine code; these cells run with NoMC set — jit+nomc (fused
	// threaded top tier), jit+nomc+nofuse (the unfused switch loop),
	// jit+nomc+jitbull (with JITBULL), jit+nomc+osr+deopt (with OSR: both
	// tier transitions against the threaded tiers), and jit+nomc+cached
	// (with Async, sharing the cached cells' cache so the machine-code
	// arch byte in the cache key is what keeps mc-tier and threaded-tier
	// verdict replays apart). Machine code changes instruction dispatch,
	// never semantics, so every cell must stay at zero divergence. On
	// platforms without the tier the cells degenerate to duplicates of
	// their NoMC-free counterparts and still must not diverge.
	MC bool
	// OSR adds the tier-transition contrast cells: jit+osr (loop-header
	// on-stack replacement, back-edge-triggered compilation), jit+deopt
	// (type speculation with guard-based deoptimization), jit+osr+deopt
	// (both transitions in one engine), jit+osr+cached (with Async; both
	// features through the shared cache, whose key carries the OSR and
	// Speculate configuration bytes), and — with JITBULL — jit+jitbull+osr
	// and jit+jitbull+deopt. OSR changes *where* execution enters native
	// code and deopt changes where it leaves, never what either tier
	// computes, so every cell must stay at zero divergence.
	OSR bool
}

func (o Options) withDefaults() Options {
	if o.IonThreshold <= 0 {
		o.IonThreshold = 30
	}
	if o.BaselineThreshold <= 0 {
		o.BaselineThreshold = 10
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200_000_000
	}
	if o.Ablate == nil {
		o.Ablate = DangerousPasses()
	}
	return o
}

// DangerousPasses returns the disableable passes whose mis-optimization
// classes the paper's CVEs exercise — the ablations worth a matrix cell.
func DangerousPasses() []string {
	return []string{
		"GVN", "LICM", "BoundsCheckElimination", "RangeAnalysis",
		"Sink", "FoldTests", "ScalarReplacement",
	}
}

// jitbullDB lazily builds the 4-VDC database once per process; extraction
// replays four exploit demonstrators and is too slow to repeat per run.
var jitbullDB = sync.OnceValues(func() (*core.Database, error) {
	db, _, err := experiments.BuildDB(4, 100)
	return db, err
})

// jitbullPolicy builds a fresh detector over the shared database. Fresh
// detectors share the database pointer, so their PolicyCacheKey is stable
// across runs — exactly the sharing unit of a production fleet.
func jitbullPolicy() engine.Policy {
	db, err := jitbullDB()
	if err != nil {
		panic(fmt.Sprintf("difftest: building JITBULL DB: %v", err))
	}
	return core.NewDetector(db)
}

// sharedQueue is the process-lifetime background-compilation service the
// async cells share; like a browser's helper threads it is never torn
// down, so per-Matrix cells can enqueue against it freely.
var sharedQueue = sync.OnceValue(func() *jitqueue.Queue {
	return jitqueue.New(0, jitqueue.DefaultCapacity, nil)
})

// Matrix returns the configuration matrix for the given options. The first
// configuration is always the interpreter — the semantics reference.
func Matrix(o Options) []Config {
	o = o.withDefaults()
	base := engine.Config{
		BaselineThreshold: o.BaselineThreshold,
		IonThreshold:      o.IonThreshold,
		MaxSteps:          o.MaxSteps,
		Bugs:              o.Bugs,
	}
	interp := base
	interp.DisableJIT = true
	baseline := base
	baseline.IonThreshold = 1 << 30 // hot functions stop at the baseline tier

	cfgs := []Config{
		{Name: "interp", Engine: interp},
		{Name: "baseline", Engine: baseline},
		{Name: "jit", Engine: base},
	}
	if o.CheckIR {
		checked := base
		checked.CheckIR = true
		cfgs = append(cfgs, Config{Name: "jit+checkir", Engine: checked})
	}
	if o.JITBULL {
		cfgs = append(cfgs, Config{Name: "jit+jitbull", Engine: base, Policy: jitbullPolicy})
	}
	for _, pass := range o.Ablate {
		ablated := base
		ablated.DisabledPasses = []string{pass}
		cfgs = append(cfgs, Config{Name: "jit-no-" + pass, Engine: ablated})
	}
	if o.Variants {
		cfgs = append(cfgs,
			Config{Name: "jit+renamed", Engine: base, Transform: variants.Rename, LossyNames: true},
			Config{Name: "jit+minified", Engine: base, Transform: variants.Minify, LossyNames: true},
		)
	}
	// One cache per Matrix call, shared across every cached cell and —
	// when the matrix is reused over many programs — across programs,
	// which is precisely the cross-program key-soundness the canonical
	// hash must guarantee. Policy/policy-free and fused/unfused entries
	// never collide: the key covers the policy's cache key and the NoFuse
	// configuration byte.
	var cache *jitqueue.Cache
	if o.Async {
		cache = jitqueue.NewCache(nil)
		async := base
		async.Queue = sharedQueue()
		cfgs = append(cfgs, Config{Name: "jit+async", Engine: async})
		cached := base
		cached.Cache = cache
		cfgs = append(cfgs, Config{Name: "jit+cached", Engine: cached, Prewarm: true})
		both := async
		both.Cache = cache
		cfgs = append(cfgs, Config{Name: "jit+async+cached", Engine: both, Prewarm: true})
		if o.JITBULL {
			cfgs = append(cfgs,
				Config{Name: "jit+jitbull+async", Engine: async, Policy: jitbullPolicy},
				Config{Name: "jit+jitbull+cached", Engine: cached, Policy: jitbullPolicy, Prewarm: true},
			)
		}
	}
	if o.Fusion {
		nofuse := base
		nofuse.NoFuse = true
		cfgs = append(cfgs, Config{Name: "jit+nofuse", Engine: nofuse})
		if o.JITBULL {
			cfgs = append(cfgs, Config{Name: "jit+nofuse+jitbull", Engine: nofuse, Policy: jitbullPolicy})
		}
		if cache != nil {
			nfCached := nofuse
			nfCached.Cache = cache
			cfgs = append(cfgs, Config{Name: "jit+nofuse+cached", Engine: nfCached, Prewarm: true})
		}
	}
	if o.OSR {
		osr := base
		osr.OSR = true
		cfgs = append(cfgs, Config{Name: "jit+osr", Engine: osr})
		deopt := base
		deopt.Speculate = true
		cfgs = append(cfgs, Config{Name: "jit+deopt", Engine: deopt})
		both := base
		both.OSR = true
		both.Speculate = true
		cfgs = append(cfgs, Config{Name: "jit+osr+deopt", Engine: both})
		if cache != nil {
			// Both features on through the cache shared with the plain
			// cached cells: the OSR and Speculate cache-key bytes are what
			// keep a marker-free artifact from being installed into an
			// engine that expects OSR entries (and vice versa).
			osrCached := both
			osrCached.Cache = cache
			cfgs = append(cfgs, Config{Name: "jit+osr+cached", Engine: osrCached, Prewarm: true})
		}
		if o.JITBULL {
			cfgs = append(cfgs,
				Config{Name: "jit+jitbull+osr", Engine: osr, Policy: jitbullPolicy},
				Config{Name: "jit+jitbull+deopt", Engine: deopt, Policy: jitbullPolicy},
			)
		}
	}
	if o.MC {
		nomc := base
		nomc.NoMC = true
		cfgs = append(cfgs, Config{Name: "jit+nomc", Engine: nomc})
		nomcNofuse := nomc
		nomcNofuse.NoFuse = true
		cfgs = append(cfgs, Config{Name: "jit+nomc+nofuse", Engine: nomcNofuse})
		if o.JITBULL {
			cfgs = append(cfgs, Config{Name: "jit+nomc+jitbull", Engine: nomc, Policy: jitbullPolicy})
		}
		if o.OSR {
			nomcBoth := nomc
			nomcBoth.OSR = true
			nomcBoth.Speculate = true
			cfgs = append(cfgs, Config{Name: "jit+nomc+osr+deopt", Engine: nomcBoth})
		}
		if cache != nil {
			nomcCached := nomc
			nomcCached.Cache = cache
			cfgs = append(cfgs, Config{Name: "jit+nomc+cached", Engine: nomcCached, Prewarm: true})
		}
	}
	return cfgs
}

// Observe runs src under one configuration and captures its behavior.
func Observe(src string, c Config) Observation {
	var obs Observation
	if c.Transform != nil {
		transformed, err := c.Transform(src)
		if err != nil {
			obs.SetupErr = err.Error()
			return obs
		}
		src = transformed
	}
	if c.Prewarm {
		// Warm the shared cache with a throwaway run; its behavior is
		// judged only through the observed run that follows.
		var discard bytes.Buffer
		pcfg := c.Engine
		pcfg.Out = &discard
		if pe, err := engine.New(src, pcfg); err == nil {
			if c.Policy != nil {
				pe.SetPolicy(c.Policy())
			}
			_, _ = pe.Run()
		}
	}
	var out bytes.Buffer
	ecfg := c.Engine
	ecfg.Out = &out
	ecfg.OnCompileError = func(fn string, err error) {
		var ir *passes.IRError
		if errors.As(err, &ir) {
			obs.IRFaults = append(obs.IRFaults, ir.Error())
		}
	}
	e, err := engine.New(src, ecfg)
	if err != nil {
		obs.SetupErr = err.Error()
		return obs
	}
	if c.Policy != nil {
		e.SetPolicy(c.Policy())
	}
	v, runErr := e.Run()
	obs.Result = v.ToString()
	obs.ResultG = e.Global("result").ToString()
	obs.Output = out.String()
	obs.Hijacked = e.Hijacked() != nil
	obs.Crashed = e.Arena().Crashed() != nil
	obs.Stats = e.Stats()
	if runErr != nil {
		obs.ErrMsg = runErr.Error()
		switch {
		case engine.IsHijack(runErr):
			obs.ErrKind = "hijack"
		case engine.IsCrash(runErr):
			obs.ErrKind = "crash"
		case errors.Is(runErr, interp.ErrBudget):
			obs.ErrKind = "budget"
		default:
			obs.ErrKind = "runtime"
		}
	}
	return obs
}

// Divergence is one observed disagreement between a configuration and the
// reference configuration.
type Divergence struct {
	Config string // diverging configuration
	Ref    string // reference configuration
	Field  string // which observation field disagreed
	Got    string // value under Config
	Want   string // value under Ref
}

// String renders the divergence for reports.
func (d Divergence) String() string {
	return fmt.Sprintf("%s vs %s: %s = %q, want %q", d.Config, d.Ref, d.Field, d.Got, d.Want)
}

// compare returns the divergences of obs against the reference observation.
func compare(c Config, obs, ref Observation, refName string) []Divergence {
	var divs []Divergence
	add := func(field, got, want string) {
		if got != want {
			divs = append(divs, Divergence{Config: c.Name, Ref: refName, Field: field, Got: got, Want: want})
		}
	}
	add("setup-error", obs.SetupErr, ref.SetupErr)
	if obs.SetupErr != "" || ref.SetupErr != "" {
		return divs // nothing ran; the remaining fields are vacuous
	}
	add("result", obs.Result, ref.Result)
	add("output", obs.Output, ref.Output)
	add("error-kind", obs.ErrKind, ref.ErrKind)
	if !c.LossyNames {
		add("result-global", obs.ResultG, ref.ResultG)
		add("error-message", obs.ErrMsg, ref.ErrMsg)
	}
	add("hijacked", fmt.Sprint(obs.Hijacked), fmt.Sprint(ref.Hijacked))
	add("crashed", fmt.Sprint(obs.Crashed), fmt.Sprint(ref.Crashed))
	for _, fault := range obs.IRFaults {
		divs = append(divs, Divergence{Config: c.Name, Ref: refName, Field: "ir-verify", Got: fault})
	}
	return divs
}

// Diff runs src under every configuration (configs[0] is the reference) and
// returns the per-config observations plus all divergences.
func Diff(src string, configs []Config) ([]Observation, []Divergence) {
	if len(configs) == 0 {
		return nil, nil
	}
	obs := make([]Observation, len(configs))
	for i, c := range configs {
		obs[i] = Observe(src, c)
	}
	var divs []Divergence
	for i := 1; i < len(configs); i++ {
		divs = append(divs, compare(configs[i], obs[i], obs[0], configs[0].Name)...)
	}
	return obs, divs
}

// Report renders a divergence list (one per line) with a program label.
func Report(label string, divs []Divergence) string {
	if len(divs) == 0 {
		return fmt.Sprintf("%s: no divergences", label)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d divergence(s)\n", label, len(divs))
	for _, d := range divs {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}

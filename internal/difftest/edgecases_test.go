package difftest

import (
	"fmt"
	"testing"
)

// TestEdgeCasesAcrossTiers pins JavaScript numeric and truthiness edge
// cases across every tier: each kernel runs hot enough to Ion-compile, and
// all configurations must agree with the interpreter bit-for-bit (the
// rendered result string distinguishes NaN, Infinity, and -0 via 1/x).
func TestEdgeCasesAcrossTiers(t *testing.T) {
	configs := Matrix(matrixOptions())
	cases := []struct {
		name   string
		kernel string // body of function k(x, y); result accumulates k over a grid
	}{
		{"nan-propagation", `return (x - x) / (y - y) + x;`},
		{"nan-compare", `if (Math.sqrt(0 - x - 1) == Math.sqrt(0 - x - 1)) { return 1; } return 2;`},
		{"negative-zero", `var z = 0 - 0; var w = (0 - x) * 0; return 1 / (z * w + z) + x;`},
		{"div-by-zero", `return (x + 1) / (y - y) - (0 - x - 1) / (y - y);`},
		{"mod-sign", `return (0 - x) % 3 + x % (0 - 3) + (0 - x) % (0 - 3);`},
		{"mod-fractional", `return (x + 0.5) % 0.25 + x % 0.75;`},
		{"shift-wraparound", `return (x << 33) + (x >> 32) + (x >>> 35);`},
		{"int32-overflow", `return ((x * 1000003) | 0) + ((x + 2147483647) | 0);`},
		{"truthiness-zero", `if (x - x) { return 1; } if (x + 1) { return 2; } return 3;`},
		{"truthiness-nan", `if ((x - x) / (y - y)) { return 1; } return 2;`},
		{"ternary-truthiness", `return (x % 2 ? 10 : 20) + (x - x ? 100 : 200);`},
		{"float-precision", `return 0.1 + 0.2 + x * 0.3 - 0.30000000000000004;`},
		{"infinity-arith", `var inf = (x + 1) / (y - y); return inf - inf + (1 / inf);`},
		{"sqrt-negative", `return Math.sqrt(0 - x - 1) + Math.sqrt(x);`},
		{"floor-negative", `return Math.floor(0 - x - 0.5) + Math.floor(x + 0.5);`},
		{"abs-negative-zero", `return 1 / Math.abs((0 - x) * 0 - 0);`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(`
function k(x, y) { %s }
var result = 0;
var probe = "";
for (var r = 0; r < 80; r++) {
  var v = k(r %% 9, r %% 4);
  result = v;
  if (r < 8) { probe = probe + " " + v; }
}
print(probe);
`, tc.kernel)
			_, divs := Diff(src, configs)
			if len(divs) > 0 {
				t.Errorf("%s\nprogram:\n%s", Report(tc.name, divs), src)
			}
		})
	}
}

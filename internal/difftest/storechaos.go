package difftest

// Disk-fault chaos for the persistent store: every (store point × fault
// kind) combination, swept deterministically over generated programs.
// Unlike the compile-path campaign, the injector is armed ONLY on the
// store — an injector on the engine would veto cache keys and the disk
// boundary would never be exercised. The invariants are the store's
// fail-safe contract:
//
//  1. no panic escapes, whatever the schedule does to the disk;
//  2. semantics are interpreter-identical in BOTH simulated processes
//     (the populating cold one and the warm one over the damaged store);
//  3. verdicts are never wrong: each process's go/no-go counters equal
//     the same process's counters in a fault-free control run — a
//     corrupted record may cost a recompile, never change a decision;
//  4. fault accounting is 1:1 — every fault the injector fired is
//     accounted by exactly one store.faults_injected tick;
//  5. no corrupt record survives: after the campaign run, an offline
//     Verify pass over the store must find every remaining record
//     trustworthy once the quarantine sweep has run.

import (
	"bytes"
	"fmt"
	"time"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/progen"
	"github.com/jitbull/jitbull/internal/store"
)

// StoreChaosOptions bounds a store chaos campaign.
type StoreChaosOptions struct {
	// Seed is the base seed; run i uses Seed+i for its program and plan.
	Seed int64
	// Runs is the number of runs (default 216 = 9 sweeps of the full
	// 3-point × 8-kind grid).
	Runs int
	// Dir is the scratch root for the per-run store directories. Each run
	// uses Dir/run-<i>; the caller owns creation and cleanup of Dir.
	Dir string
	// IonThreshold (default 30), BaselineThreshold (default 10), MaxSteps
	// (default 200M) — as in the main matrix.
	IonThreshold      int
	BaselineThreshold int
	MaxSteps          int64
	// JITBULL (default true via withDefaults' doc; set NoJITBULL to drop
	// the policy) arms verdict replay so "zero wrong verdicts" means
	// JITBULL verdicts, not just artifacts.
	NoJITBULL bool
}

func (o StoreChaosOptions) withDefaults() StoreChaosOptions {
	if o.Runs <= 0 {
		o.Runs = 216
	}
	if o.IonThreshold <= 0 {
		o.IonThreshold = 30
	}
	if o.BaselineThreshold <= 0 {
		o.BaselineThreshold = 10
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200_000_000
	}
	return o
}

// storeChaosKinds is the full kind set the campaign sweeps: the five
// disk kinds plus the three generic ones (error, panic, stall — a store
// must contain those too).
func storeChaosKinds() []faults.Kind {
	return append(faults.DiskKinds(), faults.Kinds()...)
}

// storeChaosPlan derives run i's single-rule schedule: the point×kind
// grid is swept in row-major order so every combination is exercised
// every len(points)×len(kinds) runs, with probability/caps varied
// deterministically on top.
func storeChaosPlan(i int, seed int64) faults.Plan {
	points := faults.StorePoints()
	kinds := storeChaosKinds()
	cell := i % (len(points) * len(kinds))
	probs := []float64{1, 1, 0.5}
	return faults.Plan{Seed: seed, Rules: []faults.Rule{{
		Point:       points[cell%len(points)],
		Kind:        kinds[cell/len(points)],
		Probability: probs[i%len(probs)],
		AfterHits:   i % 2,
		Times:       i % 3, // 0 = unlimited
	}}}
}

// storeChaosProcess runs one simulated process over the given store:
// fresh engine, fresh memory cache, persistent tier attached.
func storeChaosProcess(src string, base engine.Config, st *store.Store, jitbull bool) (Observation, error) {
	cache := jitqueue.NewCache(nil)
	cache.AttachTier(st, storeCodec(jitbull))
	var out bytes.Buffer
	cfg := base
	cfg.Cache = cache
	cfg.Out = &out
	e, err := engine.New(src, cfg)
	if err != nil {
		return Observation{SetupErr: err.Error()}, err
	}
	if jitbull {
		e.SetPolicy(storeDetector(nil))
	}
	var o Observation
	v, runErr := e.Run()
	o.Result = v.ToString()
	o.ResultG = e.Global("result").ToString()
	o.Output = out.String()
	o.Hijacked = e.Hijacked() != nil
	o.Crashed = e.Arena().Crashed() != nil
	o.Stats = e.Stats()
	if runErr != nil {
		o.ErrMsg = runErr.Error()
		o.ErrKind = "runtime"
	}
	return o, nil
}

// StoreChaos executes the campaign. Failures carry full (seed, plan,
// program) reproducers like the compile-path campaign's.
func StoreChaos(o StoreChaosOptions) ChaosResult {
	o = o.withDefaults()
	var res ChaosResult
	for i := 0; i < o.Runs; i++ {
		seed := o.Seed + int64(i)
		src := progen.Generate(seed, progen.Options{})
		plan := storeChaosPlan(i, seed)
		dir := fmt.Sprintf("%s/run-%d", o.Dir, i)
		fired, fail := storeChaosOne(seed, src, plan, dir, o)
		res.Runs++
		res.FaultsFired += fired
		if fired > 0 {
			res.FaultedRuns++
		}
		if fail != nil {
			res.Failures = append(res.Failures, *fail)
		}
	}
	return res
}

// StoreChaosReplay re-executes one recorded failure deterministically.
func StoreChaosReplay(f ChaosFailure, dir string, o StoreChaosOptions) (int, *ChaosFailure) {
	o = o.withDefaults()
	return storeChaosOne(f.RunSeed, f.Program, f.Plan, dir, o)
}

// storeChaosOne executes a single (program, plan) pair: an interpreter
// reference, a fault-free control pass (cold + warm), then the faulted
// pass over its own store directory, holding all five invariants.
func storeChaosOne(seed int64, src string, plan faults.Plan, dir string, o StoreChaosOptions) (fired int, fail *ChaosFailure) {
	jitbull := !o.NoJITBULL
	base := engine.Config{
		BaselineThreshold: o.BaselineThreshold,
		IonThreshold:      o.IonThreshold,
		MaxSteps:          o.MaxSteps,
	}
	refCfg := Config{Name: "interp", Engine: base}
	refCfg.Engine.DisableJIT = true
	ref := Observe(src, refCfg)

	mk := func() *ChaosFailure {
		if fail == nil {
			fail = &ChaosFailure{RunSeed: seed, Plan: plan, Program: src}
		}
		return fail
	}
	diverge := func(format string, args ...any) {
		mk().Divergences = append(mk().Divergences, fmt.Sprintf(format, args...))
	}

	// Fault-free control: the verdict-counter reference for both phases.
	ctlStore, err := store.Open(dir+"/control", store.Options{})
	if err != nil {
		diverge("control store: %v", err)
		return 0, fail
	}
	ctlCold, err1 := storeChaosProcess(src, base, ctlStore, jitbull)
	ctlWarm, err2 := storeChaosProcess(src, base, ctlStore, jitbull)
	if err1 != nil || err2 != nil {
		diverge("control run: %v / %v", err1, err2)
		return 0, fail
	}

	// Faulted pass: one injector, one metrics registry, shared by the
	// store across both simulated processes (reopened in between, like a
	// real restart — only the injector and registry survive, standing in
	// for the disk itself).
	inj := plan.Injector()
	reg := obs.NewRegistry()
	sopts := store.Options{Metrics: reg, Faults: inj, Sleep: func(time.Duration) {}}
	panicked := ""
	var cold, warm Observation
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Sprint(r)
			}
		}()
		st1, serr := store.Open(dir+"/store", sopts)
		if serr != nil {
			panic(serr)
		}
		cold, _ = storeChaosProcess(src, base, st1, jitbull)
		// Snapshot/Restore leg: when the plan targets the manifest point,
		// route the restart through a bundle so the point actually fires.
		// Failures degrade (the warm process just starts colder).
		if plan.Rules[0].Point == faults.PointStoreManifest {
			bundle := dir + "/snapshot.json"
			if err := st1.Snapshot(bundle); err == nil {
				if st2, err := store.Open(dir+"/restored", sopts); err == nil {
					st2.Restore(bundle)
				}
			}
		}
		st2, serr := store.Open(dir+"/store", sopts)
		if serr != nil {
			panic(serr)
		}
		warm, _ = storeChaosProcess(src, base, st2, jitbull)
	}()
	fired = inj.FiredCount()

	if panicked != "" {
		mk().Panic = panicked
		return fired, fail
	}
	// Invariant 2: interpreter-identical semantics, both processes.
	for _, d := range compare(Config{Name: "store+chaos+cold"}, cold, ref, "interp") {
		diverge("%s", d)
	}
	for _, d := range compare(Config{Name: "store+chaos+warm"}, warm, ref, "interp") {
		diverge("%s", d)
	}
	// Invariant 3: verdicts never wrong — counters match the fault-free
	// control process-for-process.
	checkVerdicts := func(name string, got, want engine.Stats) {
		if got.NrJIT != want.NrJIT || got.NrDisJIT != want.NrDisJIT || got.NrNoJIT != want.NrNoJIT {
			diverge("%s: verdict counters (%d,%d,%d), control (%d,%d,%d)",
				name, got.NrJIT, got.NrDisJIT, got.NrNoJIT, want.NrJIT, want.NrDisJIT, want.NrNoJIT)
		}
	}
	checkVerdicts("store+chaos+cold", cold.Stats, ctlCold.Stats)
	checkVerdicts("store+chaos+warm", warm.Stats, ctlWarm.Stats)
	// Invariant 4: 1:1 fault accounting.
	if got := reg.Counter("store.faults_injected").Value(); got != int64(fired) {
		mk().Accounting = fmt.Sprintf("injector fired %d fault(s) but the store accounted %d", fired, got)
	}
	// Invariant 5: no corrupt record survives. A fresh fault-free handle
	// sweeps the store; after quarantining, everything left must verify.
	sweep, err := store.Open(dir+"/store", store.Options{})
	if err != nil {
		diverge("verify reopen: %v", err)
		return fired, fail
	}
	if rep, err := sweep.Verify(true); err != nil {
		diverge("verify sweep: %v", err)
	} else if rep2, err := sweep.Verify(false); err != nil || len(rep2.Problems) != 0 {
		diverge("corrupt records survived the quarantine sweep: %+v (first pass %+v, err %v)", rep2, rep, err)
	}
	return fired, fail
}

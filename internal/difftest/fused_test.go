package difftest

import (
	"fmt"
	"testing"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/progen"
)

// fusedOptions is the superinstruction-tier contrast matrix: the default
// (fused) jit/jitbull/cached cells against their NoFuse twins, sharing one
// code cache so the NoFuse key byte is load-bearing.
func fusedOptions() Options {
	return Options{JITBULL: true, Async: true, Fusion: true}
}

// TestMatrixFused is the fusion acceptance oracle: 80 generated programs
// across fused and unfused cells — plain, under the JITBULL policy, and
// through the shared code cache — with zero divergences. Result values,
// output, error kinds and messages must be bit-identical whichever
// executor ran the hot code.
func TestMatrixFused(t *testing.T) {
	configs := Matrix(fusedOptions())
	var names []string
	for _, c := range configs {
		names = append(names, c.Name)
	}
	want := map[string]bool{"jit+nofuse": false, "jit+nofuse+jitbull": false, "jit+nofuse+cached": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("matrix %v lacks the %s cell", names, n)
		}
	}
	const programs = 80
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.Options{})
		_, divs := Diff(src, configs)
		if len(divs) > 0 {
			t.Fatalf("%s\nprogram:\n%s", Report(fmt.Sprintf("seed %d", seed), divs), src)
		}
	}
}

// TestMatrixFusedOctane cross-checks the Octane-analogue corpus — the
// loop-heavy programs where fusion actually rewrites most of the stream —
// across the same fused/unfused cells.
func TestMatrixFusedOctane(t *testing.T) {
	configs := Matrix(fusedOptions())
	for _, b := range octane.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, divs := Diff(b.Source(1), configs)
			if len(divs) > 0 {
				t.Errorf("%s", Report(b.Name, divs))
			}
		})
	}
}

// TestChaosFusePointCampaign concentrates a randomized chaos campaign
// entirely on the new fuse injection point: every fault fired during
// fusion must be contained (quarantine, interpreter semantics) and
// accounted 1:1, like any other pipeline stage.
func TestChaosFusePointCampaign(t *testing.T) {
	res := Chaos(ChaosOptions{Seed: 5, Runs: 60, Points: []faults.Point{faults.PointFuse}})
	for i, f := range res.Failures {
		if i >= 5 {
			t.Errorf("... and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%s\nprogram:\n%s", f, f.Program)
	}
	t.Logf("fuse-point chaos: %s", res.Summary())
	if res.FaultsFired == 0 {
		t.Fatal("no fault fired at the fuse point across the whole campaign")
	}
}

package difftest

import (
	"fmt"
	"testing"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/mc"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/progen"
)

// mcOptions is the machine-code-tier contrast matrix: the default (mc)
// jit/jitbull/cached cells against their NoMC twins — fused threaded and
// unfused switch — sharing one code cache so the mc/arch key byte is
// load-bearing, plus the OSR/deopt transitions on both sides.
func mcOptions() Options {
	return Options{JITBULL: true, Async: true, OSR: true, MC: true}
}

// TestMatrixMC is the machine-code-tier acceptance oracle: 80 generated
// programs across mc and threaded cells — plain, under the JITBULL
// policy, with OSR/deopt transitions, and through the shared code cache —
// with zero divergences. Result values, output, error kinds, step counts
// and policy verdicts must be bit-identical whichever executor ran the
// hot code.
func TestMatrixMC(t *testing.T) {
	configs := Matrix(mcOptions())
	var names []string
	for _, c := range configs {
		names = append(names, c.Name)
	}
	want := map[string]bool{
		"jit+nomc":           false,
		"jit+nomc+nofuse":    false,
		"jit+nomc+jitbull":   false,
		"jit+nomc+osr+deopt": false,
		"jit+nomc+cached":    false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("matrix %v lacks the %s cell", names, n)
		}
	}
	const programs = 80
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.Options{})
		_, divs := Diff(src, configs)
		if len(divs) > 0 {
			t.Fatalf("%s\nprogram:\n%s", Report(fmt.Sprintf("seed %d", seed), divs), src)
		}
	}
}

// TestMatrixMCHotLoops drives the OSR/deopt exercise corpus through the
// mc-vs-threaded cells: mid-loop entries and guard exits on the
// machine-code tier must land at the same interpreter states as on the
// threaded tiers.
func TestMatrixMCHotLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-loop corpus is slow")
	}
	configs := Matrix(mcOptions())
	const programs = 25
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.Options{HotLoops: true})
		_, divs := Diff(src, configs)
		if len(divs) > 0 {
			t.Fatalf("%s\nprogram:\n%s", Report(fmt.Sprintf("hot seed %d", seed), divs), src)
		}
	}
}

// TestMatrixMCOctane cross-checks the Octane-analogue corpus — the
// loop-heavy programs where the machine-code tier carries nearly every
// step — across the same mc/threaded cells.
func TestMatrixMCOctane(t *testing.T) {
	configs := Matrix(mcOptions())
	for _, b := range octane.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, divs := Diff(b.Source(1), configs)
			if len(divs) > 0 {
				t.Errorf("%s", Report(b.Name, divs))
			}
		})
	}
}

// TestChaosMCPointCampaign concentrates a randomized chaos campaign on
// the two machine-code attach points: every fault fired at mc.emit or
// mc.install must be contained — the function keeps its threaded artifact
// and degrades, semantics identical to the clean interpreter — and
// accounted 1:1 like any other pipeline stage.
func TestChaosMCPointCampaign(t *testing.T) {
	if !mc.Supported() {
		t.Skip("machine-code tier not supported on this platform: attach points never fire")
	}
	for _, p := range []faults.Point{faults.PointMCEmit, faults.PointMCInstall} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res := Chaos(ChaosOptions{Seed: 11, Runs: 60, Points: []faults.Point{p}})
			for i, f := range res.Failures {
				if i >= 5 {
					t.Errorf("... and %d more failures", len(res.Failures)-i)
					break
				}
				t.Errorf("%s\nprogram:\n%s", f, f.Program)
			}
			t.Logf("%s chaos: %s", p, res.Summary())
			if res.FaultsFired == 0 {
				t.Fatalf("no fault fired at %s across the whole campaign", p)
			}
		})
	}
}

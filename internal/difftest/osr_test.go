package difftest

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/progen"
)

// osrOptions is the tier-transition contrast matrix: the default cells plus
// OSR (loop-header on-stack replacement), deopt (guard-based speculative
// calls), their combination, the shared-cache variant, and the JITBULL
// policy over both.
func osrOptions() Options {
	return Options{OSR: true, JITBULL: true, Async: true}
}

// TestMatrixOSR is the OSR/deopt acceptance oracle: 80 hot-loop programs —
// long while loops warmed by a single call, helper return types flipping
// mid-loop, arrays shrinking mid-loop — across the OSR, deopt, combined,
// cached, and policy cells, with zero divergences. Where execution enters
// and leaves native code moves; Result, output, and the error/hijack/crash
// outcome must be bit-identical to the interpreter's.
func TestMatrixOSR(t *testing.T) {
	configs := Matrix(osrOptions())
	var names []string
	for _, c := range configs {
		names = append(names, c.Name)
	}
	want := map[string]bool{
		"jit+osr": false, "jit+deopt": false, "jit+osr+deopt": false,
		"jit+osr+cached": false, "jit+jitbull+osr": false, "jit+jitbull+deopt": false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("matrix %v lacks the %s cell", names, n)
		}
	}
	programs := int64(80)
	if testing.Short() {
		programs = 16
	}
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.Options{HotLoops: true})
		_, divs := Diff(src, configs)
		if len(divs) > 0 {
			t.Fatalf("%s\nprogram:\n%s", Report(fmt.Sprintf("seed %d", seed), divs), src)
		}
	}
}

// TestMatrixOSROctane cross-checks the Octane-analogue corpus — loop-heavy
// programs where back-edge-triggered tier-up actually engages — across the
// same OSR/deopt cells.
func TestMatrixOSROctane(t *testing.T) {
	configs := Matrix(osrOptions())
	for _, b := range octane.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, divs := Diff(b.Source(1), configs)
			if len(divs) > 0 {
				t.Errorf("%s", Report(b.Name, divs))
			}
		})
	}
}

// chaosTransitionOptions arms the tier-transition machinery and the
// hot-loop corpus, so faults at the osr/deopt points have transitions to
// hit; the campaign is otherwise the standard three-invariant chaos run.
func chaosTransitionOptions(seed int64, runs int, p faults.Point) ChaosOptions {
	return ChaosOptions{
		Seed: seed, Runs: runs, Points: []faults.Point{p},
		OSR: true, Speculate: true, HotLoops: true,
	}
}

// TestChaosOSRPointCampaign concentrates a randomized chaos campaign on the
// OSR transition point: a fired fault must refuse the entry (the
// interpreter keeps the loop), never corrupt frame state, and surface with
// 1:1 typed accounting.
func TestChaosOSRPointCampaign(t *testing.T) {
	res := Chaos(chaosTransitionOptions(11, 40, faults.PointOSR))
	for i, f := range res.Failures {
		if i >= 5 {
			t.Errorf("... and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%s\nprogram:\n%s", f, f.Program)
	}
	t.Logf("osr-point chaos: %s", res.Summary())
	if res.FaultsFired == 0 {
		t.Fatal("no fault fired at the osr point across the whole campaign")
	}
}

// TestChaosDeoptPointCampaign concentrates the campaign on the deopt
// transition point: the fault is recorded, but state reconstruction is
// mandatory — the exit must still complete with interpreter semantics.
func TestChaosDeoptPointCampaign(t *testing.T) {
	res := Chaos(chaosTransitionOptions(13, 40, faults.PointDeopt))
	for i, f := range res.Failures {
		if i >= 5 {
			t.Errorf("... and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%s\nprogram:\n%s", f, f.Program)
	}
	t.Logf("deopt-point chaos: %s", res.Summary())
	if res.FaultsFired == 0 {
		t.Fatal("no fault fired at the deopt point across the whole campaign")
	}
}

// TestChaosTransitionDeterminismSweep runs every fault kind against every
// transition point with a fully deterministic single-rule schedule, twice
// per combination: both runs must fire the same faults, account them 1:1,
// escape no panic, and observe identical semantics. This is the
// reproducibility guarantee the chaos CLI's reproducer mode rests on.
func TestChaosTransitionDeterminismSweep(t *testing.T) {
	o := ChaosOptions{OSR: true, Speculate: true, HotLoops: true}.withDefaults()
	for _, p := range []faults.Point{faults.PointOSR, faults.PointDeopt} {
		for _, k := range faults.Kinds() {
			name := fmt.Sprintf("%s-%s", p, k)
			t.Run(name, func(t *testing.T) {
				anyFired := false
				for seed := int64(0); seed < 6; seed++ {
					src := progen.Generate(seed, progen.Options{HotLoops: true})
					plan := faults.Plan{Seed: seed, Rules: []faults.Rule{
						{Point: p, Kind: k, AfterHits: int(seed % 3)},
					}}
					fired1, fail1 := chaosOne(seed, src, plan, o)
					fired2, fail2 := chaosOne(seed, src, plan, o)
					if fail1 != nil {
						t.Fatalf("seed %d: %s\nprogram:\n%s", seed, fail1, src)
					}
					if fired1 != fired2 {
						t.Fatalf("seed %d: run 1 fired %d fault(s), run 2 fired %d", seed, fired1, fired2)
					}
					if !reflect.DeepEqual(fail1, fail2) {
						t.Fatalf("seed %d: runs disagree: %v vs %v", seed, fail1, fail2)
					}
					if fired1 > 0 {
						anyFired = true
					}
				}
				if !anyFired {
					t.Fatalf("%s: no fault fired across the sweep", name)
				}
			})
		}
	}
}

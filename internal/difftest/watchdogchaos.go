package difftest

import (
	"fmt"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/progen"
)

// Watchdog chaos: the anomaly watchdog's accounting arm of the chaos
// suite. Each run draws a generated program and a randomized fault
// schedule restricted to the "watchdog" point, arms the schedule as the
// watchdog's seed probe, and holds two invariants:
//
//  1. seeded accounting is 1:1 — every fault the injector fired surfaces
//     as exactly one "seeded" anomaly (a swallowed injected error, or an
//     escaped injected panic, is a watchdog containment bug);
//  2. zero false positives — the same program re-run with the full
//     default detector set and no fault schedule declares no anomaly and
//     stays ready (a benign program must never degrade /healthz).

// WatchdogChaosOptions bounds a watchdog chaos campaign.
type WatchdogChaosOptions struct {
	// Seed is the base seed; run i uses Seed+i.
	Seed int64
	// Runs is the number of randomized runs (default 50).
	Runs int
	// MaxRules caps the rules per fault schedule (default 3).
	MaxRules int
	// IonThreshold for the chaos cell (default 30).
	IonThreshold int
	// BaselineThreshold (default 10).
	BaselineThreshold int
	// MaxSteps per run (default 200M).
	MaxSteps int64
}

func (o WatchdogChaosOptions) withDefaults() WatchdogChaosOptions {
	if o.Runs <= 0 {
		o.Runs = 50
	}
	if o.MaxRules <= 0 {
		o.MaxRules = 3
	}
	if o.IonThreshold <= 0 {
		o.IonThreshold = 30
	}
	if o.BaselineThreshold <= 0 {
		o.BaselineThreshold = 10
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200_000_000
	}
	return o
}

// WatchdogChaosResult summarizes a campaign.
type WatchdogChaosResult struct {
	Runs            int      // runs executed
	FaultsFired     int      // total seeded faults across all runs
	SeededAnomalies int      // total "seeded" anomalies declared
	Failures        []string // invariant violations, with their reproducer seed
}

// OK reports whether every run held both invariants.
func (r WatchdogChaosResult) OK() bool { return len(r.Failures) == 0 }

// Summary renders the campaign for reports.
func (r WatchdogChaosResult) Summary() string {
	return fmt.Sprintf("%d runs, %d seeded faults → %d seeded anomalies, %d failure(s)",
		r.Runs, r.FaultsFired, r.SeededAnomalies, len(r.Failures))
}

// WatchdogChaos executes a campaign of o.Runs randomized runs.
func WatchdogChaos(o WatchdogChaosOptions) WatchdogChaosResult {
	o = o.withDefaults()
	var res WatchdogChaosResult
	for i := 0; i < o.Runs; i++ {
		seed := o.Seed + int64(i)
		src := progen.Generate(seed, progen.Options{})
		res.Runs++

		base := engine.Config{
			BaselineThreshold: o.BaselineThreshold,
			IonThreshold:      o.IonThreshold,
			MaxSteps:          o.MaxSteps,
		}
		fail := func(format string, args ...any) {
			res.Failures = append(res.Failures,
				fmt.Sprintf("watchdog chaos seed=%d: %s", seed, fmt.Sprintf(format, args...)))
		}

		// Seeded run: the fault schedule is the ONLY anomaly source (no
		// detectors), so anomalies must mirror the injector exactly.
		plan := faults.RandomPlan(seed, o.MaxRules, []faults.Point{faults.PointWatchdog})
		inj := plan.Injector()
		seededWdog := obs.NewWatchdog(obs.WatchdogOptions{Detectors: []obs.Detector{}})
		seededWdog.SetSeedProbe(faults.WatchdogProbe(inj))
		seededCfg := Config{Name: "jit+watchdog-seeded", Engine: base}
		seededCfg.Engine.Watchdog = seededWdog
		panicked := ""
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicked = fmt.Sprint(r)
				}
			}()
			Observe(src, seededCfg)
		}()
		if panicked != "" {
			fail("panic escaped the watchdog containment: %s (plan %s)", panicked, plan)
			continue
		}
		fired := inj.FiredCount()
		seeded := 0
		for _, a := range seededWdog.Anomalies() {
			if a.Detector != "seeded" {
				fail("non-seeded anomaly %q on a benign program (plan %s)", a.Detector, plan)
				continue
			}
			seeded++
		}
		res.FaultsFired += fired
		res.SeededAnomalies += seeded
		if seeded != fired {
			fail("injector fired %d fault(s) but the watchdog declared %d seeded anomaly(ies) (plan %s)",
				fired, seeded, plan)
		}

		// Clean control: full default detector set, no schedule. A benign
		// program must produce zero anomalies and stay ready.
		cleanWdog := obs.NewWatchdog(obs.WatchdogOptions{})
		cleanCfg := Config{Name: "jit+watchdog-clean", Engine: base}
		cleanCfg.Engine.Watchdog = cleanWdog
		Observe(src, cleanCfg)
		if an := cleanWdog.Anomalies(); len(an) != 0 {
			fail("false positive on a clean run: %+v", an)
		}
		if state, why := cleanWdog.Health(); state != obs.HealthReady {
			fail("clean run degraded health: %s (%s)", state, why)
		}
	}
	return res
}

package difftest

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/store"
)

// TestWatchdogChaosCampaign runs the randomized watchdog campaign: every
// seeded fault must surface as exactly one "seeded" anomaly (panics
// contained), and clean re-runs with the full detector set must declare
// nothing.
func TestWatchdogChaosCampaign(t *testing.T) {
	runs := 30
	if testing.Short() {
		runs = 10
	}
	res := WatchdogChaos(WatchdogChaosOptions{Seed: 9000, Runs: runs})
	for _, f := range res.Failures {
		t.Error(f)
	}
	if res.FaultsFired == 0 {
		t.Fatalf("campaign never fired a seeded fault (%s) — the schedules are not reaching the watchdog point", res.Summary())
	}
	if res.SeededAnomalies != res.FaultsFired {
		t.Fatalf("campaign totals are not 1:1: %s", res.Summary())
	}
	t.Logf("watchdog chaos: %s", res.Summary())
}

// stormProgram deopt-storms one hot loop: flip returns undefined past
// p=300, breaking the KCallSpec number speculation over and over until
// the engine requalifies hot with TypeSpeculation disabled.
const stormProgram = `
function flip(p, q) { if (p < 300) { return (q + p * 2) % 1000003; } return; }
function hot(n) { var s = 0; var i = 0; while (i < n) { var c = flip(i, s); if (c) { s = (s + c) % 1000003; } i = i + 1; } return s; }
var result = 0; for (var r = 0; r < 24; r++) { result = (result + hot(600)) % 1000003; } print(result);
`

// TestSeededAnomalyEndToEnd is the acceptance scenario: one run seeded
// with a deopt storm, a corrupt store record, and a saturated compile
// queue must produce per-episode flight-recorder dumps, watchdog audit
// events with 1:1 accounting, a /healthz ready→degraded→ready
// transition, and a tier-journey timeline for the storming function.
func TestSeededAnomalyEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	audit := obs.NewAuditLog(nil)
	flight := obs.NewFlightRecorder(t.TempDir(), obs.FlightOptions{RingCapacity: 512})
	wdog := obs.NewWatchdog(obs.WatchdogOptions{Metrics: reg, Audit: audit, Flight: flight, RecoverAfter: 8})
	journal := obs.NewJournal(0)
	mux := obs.NewOpsMux(obs.OpsState{Reg: reg, Audit: audit, Watchdog: wdog, Journal: journal, Flight: flight})
	healthz := func() (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code, rec.Body.String()
	}

	// Ready before anything runs.
	if code, body := healthz(); code != 200 || body != "ready\n" {
		t.Fatalf("initial /healthz: code=%d body=%q", code, body)
	}

	// Queue saturation: a closed queue rejects every submit, so each
	// compile deterministically falls back inline and signals the
	// watchdog.
	queue := jitqueue.New(1, 1, nil)
	queue.Close()

	eng, err := engine.New(stormProgram, engine.Config{
		BaselineThreshold: 4,
		IonThreshold:      10,
		OSR:               true,
		Speculate:         true,
		Metrics:           reg,
		Audit:             audit,
		Watchdog:          wdog,
		Journal:           journal,
		Tracer:            obs.NewTracer(flight),
		Queue:             queue,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Store corruption: a bit-flip on read must quarantine the record and
	// signal the watchdog.
	st, err := store.Open(t.TempDir(), store.Options{
		Metrics:  reg,
		Audit:    audit,
		Watchdog: wdog,
		Faults: faults.NewInjector(1, faults.Rule{
			Point: faults.PointStoreGet, Kind: faults.KindBitFlip,
		}),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	var key jitqueue.Key
	key[0] = 0xAB
	st.Put(key, []byte(`{"artifact":"x"}`))
	if _, ok := st.Get(key); ok {
		t.Fatalf("corrupted record was served")
	}

	// Every seeded cause fired its detector.
	anomalies := wdog.Anomalies()
	byDet := map[string]int{}
	for _, a := range anomalies {
		byDet[a.Detector]++
	}
	if byDet["deopt-storm"] == 0 {
		t.Errorf("no deopt-storm anomaly: %+v", byDet)
	}
	if byDet["queue-saturation"] == 0 {
		t.Errorf("no queue-saturation anomaly: %+v", byDet)
	}
	if byDet["store-corruption"] != 1 {
		t.Errorf("store-corruption anomalies = %d, want exactly 1 (one corrupt record)", byDet["store-corruption"])
	}
	for det, n := range byDet {
		if det != "deopt-storm" && det != "queue-saturation" && det != "store-corruption" {
			t.Errorf("unexpected detector fired %d time(s): %s", n, det)
		}
	}

	// 1:1 accounting: every anomaly is exactly one audit event and one
	// flight episode, and every episode's dump file exists on disk.
	anomalyAudits := 0
	for _, ev := range audit.Events() {
		if ev.Verdict == obs.VerdictAnomaly {
			anomalyAudits++
		}
	}
	if anomalyAudits != len(anomalies) {
		t.Errorf("%d anomalies but %d anomaly audit events", len(anomalies), anomalyAudits)
	}
	eps := flight.Episodes()
	if len(eps) != len(anomalies) {
		t.Errorf("%d anomalies but %d flight episodes", len(anomalies), len(eps))
	}
	if err := flight.Err(); err != nil {
		t.Fatalf("flight dump error: %v", err)
	}
	epReasons := map[string]int{}
	for _, ep := range eps {
		if ep.Path == "" {
			t.Errorf("episode %d (%s) has no dump file", ep.Seq, ep.Reason)
		}
		if ep.Events == 0 {
			t.Errorf("episode %d (%s) captured no ring context", ep.Seq, ep.Reason)
		}
		epReasons[ep.Reason]++
	}
	for det, n := range byDet {
		if epReasons[det] != n {
			t.Errorf("detector %s fired %d time(s) but dumped %d episode(s)", det, n, epReasons[det])
		}
	}

	// /healthz degraded with the last anomaly named, then ready again
	// after RecoverAfter consecutive clean signals.
	if code, body := healthz(); code != 503 || !strings.Contains(body, "degraded") {
		t.Fatalf("post-anomaly /healthz: code=%d body=%q", code, body)
	}
	for i := 0; i < 8; i++ {
		wdog.Signal(obs.Signal{Kind: obs.SigCompile, Value: 1000})
	}
	if code, body := healthz(); code != 200 || body != "ready\n" {
		t.Fatalf("post-recovery /healthz: code=%d body=%q", code, body)
	}

	// The storming function has a complete journey timeline.
	tl := journal.RenderTimeline("hot")
	for _, want := range []string{"interp", "installed", "osr-entry", "deopt", "requalified"} {
		if !strings.Contains(tl, want) {
			t.Errorf("hot's journey timeline missing %q:\n%s", want, tl)
		}
	}
}

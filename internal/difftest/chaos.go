package difftest

import (
	"fmt"
	"path/filepath"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/faults"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/progen"
)

// Chaos is the fault-injection arm of the differential oracle: each run
// draws a generated program and a randomized fault schedule, executes the
// program on a JIT engine with the faults armed, and holds the engine to
// three invariants:
//
//  1. no panic escapes the engine, whatever the schedule does;
//  2. the observed semantics are identical to the clean interpreter's —
//     every contained failure must degrade to interpreter re-execution,
//     never to a wrong answer;
//  3. fault accounting is 1:1 — every fault the injector fired surfaces
//     as exactly one supervised, typed CompileError in the engine stats
//     (a swallowed or double-counted fault is a supervisor bug).
//
// Every failure is reported with its (seed, plan, program) reproducer:
// chaos runs are fully deterministic.

// ChaosOptions bounds a chaos campaign.
type ChaosOptions struct {
	// Seed is the base seed; run i uses Seed+i for both its generated
	// program and its fault schedule.
	Seed int64
	// Runs is the number of randomized runs (default 200).
	Runs int
	// MaxRules caps the rules per fault schedule (default 3).
	MaxRules int
	// IonThreshold for the chaos cell (default 30, as in the matrix).
	IonThreshold int
	// BaselineThreshold (default 10).
	BaselineThreshold int
	// MaxSteps per run (default 200M).
	MaxSteps int64
	// TraceDir, when set, re-executes every failing run deterministically
	// (same seed, same plan) with a compile tracer attached and writes a
	// Chrome trace_event JSON file per failure into the directory; the
	// file's path is recorded in ChaosFailure.TracePath.
	TraceDir string
	// Points restricts the fault schedules to the given injection points
	// (default: every compile-pipeline point). A single-point campaign
	// concentrates the whole fault budget on one stage — how new pipeline
	// stages earn their chaos coverage.
	Points []faults.Point
	// OSR and Speculate arm the tier-transition machinery in the chaos
	// cell, so faults at the osr/deopt points have transitions to hit.
	OSR       bool
	Speculate bool
	// HotLoops generates the OSR/deopt exercise corpus (progen HotLoops)
	// instead of the plain corpus, so transitions actually fire.
	HotLoops bool
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Runs <= 0 {
		o.Runs = 200
	}
	if o.MaxRules <= 0 {
		o.MaxRules = 3
	}
	if o.IonThreshold <= 0 {
		o.IonThreshold = 30
	}
	if o.BaselineThreshold <= 0 {
		o.BaselineThreshold = 10
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200_000_000
	}
	if len(o.Points) == 0 {
		o.Points = faults.CompilePoints()
	}
	return o
}

// ChaosFailure is one failed chaos run with everything needed to replay
// it: the program, the fault plan, and what went wrong.
type ChaosFailure struct {
	RunSeed     int64       `json:"run_seed"`
	Plan        faults.Plan `json:"plan"`
	Program     string      `json:"program"`
	Panic       string      `json:"panic,omitempty"`       // a panic escaped the engine
	Divergences []string    `json:"divergences,omitempty"` // semantics differed from the interpreter
	Accounting  string      `json:"accounting,omitempty"`  // fired faults != accounted faults
	TracePath   string      `json:"trace_path,omitempty"`  // Chrome trace of the deterministic replay
}

// String renders the failure (without the program body) for reports.
func (f ChaosFailure) String() string {
	s := fmt.Sprintf("chaos run seed=%d plan=(%s):", f.RunSeed, f.Plan)
	if f.Panic != "" {
		s += fmt.Sprintf(" panic escaped: %s", f.Panic)
	}
	for _, d := range f.Divergences {
		s += fmt.Sprintf(" divergence: %s;", d)
	}
	if f.Accounting != "" {
		s += " " + f.Accounting
	}
	if f.TracePath != "" {
		s += fmt.Sprintf(" trace=%s", f.TracePath)
	}
	return s
}

// ChaosResult summarizes a campaign.
type ChaosResult struct {
	Runs        int            // runs executed
	FaultsFired int            // total faults fired across all runs
	FaultedRuns int            // runs where at least one fault fired
	Failures    []ChaosFailure // runs that violated an invariant
}

// OK reports whether every run held all three invariants.
func (r ChaosResult) OK() bool { return len(r.Failures) == 0 }

// Summary renders the campaign for reports.
func (r ChaosResult) Summary() string {
	return fmt.Sprintf("%d runs, %d faults fired (%d runs faulted), %d failure(s)",
		r.Runs, r.FaultsFired, r.FaultedRuns, len(r.Failures))
}

// Chaos executes a campaign of o.Runs randomized fault-schedule runs.
func Chaos(o ChaosOptions) ChaosResult {
	o = o.withDefaults()
	var res ChaosResult
	for i := 0; i < o.Runs; i++ {
		seed := o.Seed + int64(i)
		src := progen.Generate(seed, progen.Options{HotLoops: o.HotLoops})
		plan := faults.RandomPlan(seed, o.MaxRules, o.Points)
		fired, fail := chaosOne(seed, src, plan, o)
		res.Runs++
		res.FaultsFired += fired
		if fired > 0 {
			res.FaultedRuns++
		}
		if fail != nil {
			if o.TraceDir != "" {
				fail.TracePath = traceChaosRun(seed, src, plan, o)
			}
			res.Failures = append(res.Failures, *fail)
		}
	}
	return res
}

// traceChaosRun replays one failing (program, plan) pair — chaos runs are
// fully deterministic — with a ring tracer attached and saves the compile
// trace as Chrome trace_event JSON. It returns the written path, or ""
// when the trace could not be saved (the reproducer itself still stands).
func traceChaosRun(seed int64, src string, plan faults.Plan, o ChaosOptions) string {
	ring := obs.NewRing(0)
	cfg := Config{Name: "jit+chaos+trace", Engine: engine.Config{
		BaselineThreshold:   o.BaselineThreshold,
		IonThreshold:        o.IonThreshold,
		MaxSteps:            o.MaxSteps,
		OSR:                 o.OSR,
		Speculate:           o.Speculate,
		Faults:              plan.Injector(),
		Tracer:              obs.NewTracer(ring),
		QuarantineBackoff:   8,
		QuarantineCleanRuns: 2,
		MaxCompileAttempts:  3,
	}}
	func() {
		defer func() { recover() }() // the replayed panic is already reported
		Observe(src, cfg)
	}()
	path := filepath.Join(o.TraceDir, fmt.Sprintf("chaos-seed-%d.trace.json", seed))
	if err := obs.SaveChromeTrace(path, ring.Events()); err != nil {
		return ""
	}
	return path
}

// Replay re-executes one failure's (program, plan) pair under the given
// campaign options — the reproducer contract behind `jitbull chaos -replay`:
// chaos runs are fully deterministic, so a recorded failure either
// reproduces bit-for-bit or the engine no longer exhibits it (nil). The
// options must arm the same machinery as the original campaign (OSR,
// Speculate) for the transition points to be reachable again.
func Replay(f ChaosFailure, o ChaosOptions) (fired int, fail *ChaosFailure) {
	o = o.withDefaults()
	return chaosOne(f.RunSeed, f.Program, f.Plan, o)
}

// chaosOne executes a single (program, plan) pair against the interpreter
// reference and checks the three invariants.
func chaosOne(seed int64, src string, plan faults.Plan, o ChaosOptions) (fired int, fail *ChaosFailure) {
	base := engine.Config{
		BaselineThreshold: o.BaselineThreshold,
		IonThreshold:      o.IonThreshold,
		MaxSteps:          o.MaxSteps,
		OSR:               o.OSR,
		Speculate:         o.Speculate,
	}
	refCfg := Config{Name: "interp", Engine: base}
	refCfg.Engine.DisableJIT = true
	ref := Observe(src, refCfg)

	inj := plan.Injector()
	chaosCfg := Config{Name: "jit+chaos", Engine: base}
	chaosCfg.Engine.Faults = inj
	// Aggressive quarantine knobs: retries (and therefore re-injections)
	// must actually happen inside test-sized runs.
	chaosCfg.Engine.QuarantineBackoff = 8
	chaosCfg.Engine.QuarantineCleanRuns = 2
	chaosCfg.Engine.MaxCompileAttempts = 3

	var obs Observation
	panicked := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Sprint(r)
			}
		}()
		obs = Observe(src, chaosCfg)
	}()
	fired = inj.FiredCount()

	mk := func() *ChaosFailure {
		if fail == nil {
			fail = &ChaosFailure{RunSeed: seed, Plan: plan, Program: src}
		}
		return fail
	}
	if panicked != "" {
		mk().Panic = panicked
		return fired, fail
	}
	for _, d := range compare(chaosCfg, obs, ref, refCfg.Name) {
		mk().Divergences = append(mk().Divergences, d.String())
	}
	if got := obs.Stats.InjectedFaults; got != fired {
		mk().Accounting = fmt.Sprintf("injector fired %d fault(s) but the engine accounted %d", fired, got)
	}
	return fired, fail
}

package difftest

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/faults"
)

// TestChaosCampaign is the acceptance chaos suite: 210 randomized
// fault-schedule runs with zero escaped panics, interpreter-identical
// semantics, and 1:1 fault accounting.
func TestChaosCampaign(t *testing.T) {
	res := Chaos(ChaosOptions{Seed: 1, Runs: 210})
	if res.Runs < 200 {
		t.Fatalf("campaign executed %d runs, want >= 200", res.Runs)
	}
	for i, f := range res.Failures {
		if i >= 5 {
			t.Errorf("... and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%s\nprogram:\n%s", f, f.Program)
	}
	t.Logf("chaos: %s", res.Summary())
	// A campaign where no fault ever fired proves nothing.
	if res.FaultsFired == 0 {
		t.Fatal("no fault fired across the whole campaign; the schedules are vacuous")
	}
	if res.FaultedRuns < res.Runs/4 {
		t.Errorf("only %d/%d runs fired a fault; schedules are too timid", res.FaultedRuns, res.Runs)
	}
}

// TestChaosDeterministic replays one campaign slice and expects identical
// outcomes — the reproducer contract.
func TestChaosDeterministic(t *testing.T) {
	o := ChaosOptions{Seed: 42, Runs: 20}
	a, b := Chaos(o), Chaos(o)
	if a.FaultsFired != b.FaultsFired || a.FaultedRuns != b.FaultedRuns || len(a.Failures) != len(b.Failures) {
		t.Fatalf("campaign not reproducible: %s vs %s", a.Summary(), b.Summary())
	}
}

// TestChaosTraceReplay: the failure-replay tracer must produce a valid
// Chrome trace file containing both compile spans and the injected-fault
// instants (point, kind, seed) of the replayed schedule.
func TestChaosTraceReplay(t *testing.T) {
	src := `
function hot(x) {
  var s = 0;
  for (var i = 0; i < 10; i++) { s = s + x * i; }
  return s;
}
var result = 0;
for (var r = 0; r < 200; r++) { result = (result + hot(r)) % 1000003; }
`
	plan := faults.Plan{Seed: 7, Rules: []faults.Rule{{Point: faults.CompilePoints()[0], Kind: faults.Kinds()[0]}}}
	o := ChaosOptions{TraceDir: t.TempDir()}.withDefaults()
	path := traceChaosRun(7, src, plan, o)
	if path == "" {
		t.Fatal("traceChaosRun wrote no trace")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawCompile, sawFault bool
	for _, ev := range tr.TraceEvents {
		if ev.Cat == "compile" {
			sawCompile = true
		}
		if ev.Name == "fault.injected" {
			sawFault = true
			for _, key := range []string{"point", "kind", "seed"} {
				if _, ok := ev.Args[key]; !ok {
					t.Errorf("fault.injected instant lacks %q: %+v", key, ev.Args)
				}
			}
		}
	}
	if !sawCompile || !sawFault {
		t.Fatalf("trace lacks compile spans (%v) or fault instants (%v) among %d events",
			sawCompile, sawFault, len(tr.TraceEvents))
	}
	if !strings.Contains(path, "chaos-seed-7") {
		t.Fatalf("trace path %q does not name the seed", path)
	}
}

// TestChaosEveryKindFires pins one fully deterministic schedule per fault
// kind on the hot compile path and asserts containment plus accounting.
func TestChaosEveryKindFires(t *testing.T) {
	src := `
function hot(x) {
  var s = 0;
  for (var i = 0; i < 10; i++) { s = s + x * i; }
  return s;
}
var result = 0;
for (var r = 0; r < 200; r++) { result = (result + hot(r)) % 1000003; }
`
	for _, kind := range faults.Kinds() {
		for _, point := range faults.CompilePoints() {
			plan := faults.Plan{Seed: 7, Rules: []faults.Rule{{Point: point, Kind: kind}}}
			fired, fail := chaosOne(7, src, plan, ChaosOptions{}.withDefaults())
			if fail != nil {
				t.Errorf("%s at %s: %s", kind, point, fail)
			}
			if fired == 0 {
				t.Errorf("%s at %s: deterministic rule never fired", kind, point)
			}
		}
	}
}

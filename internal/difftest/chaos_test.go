package difftest

import (
	"testing"

	"github.com/jitbull/jitbull/internal/faults"
)

// TestChaosCampaign is the acceptance chaos suite: 210 randomized
// fault-schedule runs with zero escaped panics, interpreter-identical
// semantics, and 1:1 fault accounting.
func TestChaosCampaign(t *testing.T) {
	res := Chaos(ChaosOptions{Seed: 1, Runs: 210})
	if res.Runs < 200 {
		t.Fatalf("campaign executed %d runs, want >= 200", res.Runs)
	}
	for i, f := range res.Failures {
		if i >= 5 {
			t.Errorf("... and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%s\nprogram:\n%s", f, f.Program)
	}
	t.Logf("chaos: %s", res.Summary())
	// A campaign where no fault ever fired proves nothing.
	if res.FaultsFired == 0 {
		t.Fatal("no fault fired across the whole campaign; the schedules are vacuous")
	}
	if res.FaultedRuns < res.Runs/4 {
		t.Errorf("only %d/%d runs fired a fault; schedules are too timid", res.FaultedRuns, res.Runs)
	}
}

// TestChaosDeterministic replays one campaign slice and expects identical
// outcomes — the reproducer contract.
func TestChaosDeterministic(t *testing.T) {
	o := ChaosOptions{Seed: 42, Runs: 20}
	a, b := Chaos(o), Chaos(o)
	if a.FaultsFired != b.FaultsFired || a.FaultedRuns != b.FaultedRuns || len(a.Failures) != len(b.Failures) {
		t.Fatalf("campaign not reproducible: %s vs %s", a.Summary(), b.Summary())
	}
}

// TestChaosEveryKindFires pins one fully deterministic schedule per fault
// kind on the hot compile path and asserts containment plus accounting.
func TestChaosEveryKindFires(t *testing.T) {
	src := `
function hot(x) {
  var s = 0;
  for (var i = 0; i < 10; i++) { s = s + x * i; }
  return s;
}
var result = 0;
for (var r = 0; r < 200; r++) { result = (result + hot(r)) % 1000003; }
`
	for _, kind := range faults.Kinds() {
		for _, point := range faults.CompilePoints() {
			plan := faults.Plan{Seed: 7, Rules: []faults.Rule{{Point: point, Kind: kind}}}
			fired, fail := chaosOne(7, src, plan, ChaosOptions{}.withDefaults())
			if fail != nil {
				t.Errorf("%s at %s: %s", kind, point, fail)
			}
			if fired == 0 {
				t.Errorf("%s at %s: deterministic rule never fired", kind, point)
			}
		}
	}
}

package difftest

// Example corpus: small hand-written nanojs programs in the style of the
// examples/ directory (the quickstart dot product among them), exercising
// the idioms the generated corpus under-represents — strings, print output,
// array growth, early returns. Every program maintains the `result` global
// so all matrix cells can be cross-checked.

// ExamplePrograms returns the named example corpus.
func ExamplePrograms() map[string]string {
	return map[string]string{
		"quickstart-dot": `
function dot(a, b, n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = s + a[i] * b[i];
  }
  return s;
}
var xs = new Array(64);
var ys = new Array(64);
for (var i = 0; i < 64; i++) {
  xs[i] = i * 0.5;
  ys[i] = 64 - i;
}
var result = 0;
for (var round = 0; round < 200; round++) {
  result = dot(xs, ys, 64);
}
print("dot product:", result);
`,
		"push-pop-growth": `
function churn(a, n) {
  for (var i = 0; i < n; i++) {
    a.push(i * 3 % 17);
  }
  var s = 0;
  for (var j = 0; j < n; j++) {
    s += a.pop();
  }
  return s;
}
var arr = new Array(0);
var result = 0;
for (var r = 0; r < 120; r++) {
  result = (result + churn(arr, 25)) % 1000003;
}
`,
		"early-return-branches": `
function classify(x, y) {
  if (x < 0) { return 0 - x; }
  if (x == y) { return x * 2; }
  if (x > 100) { return x % 97; }
  return x + y;
}
var result = 0;
for (var i = 0; i < 300; i++) {
  result = (result + classify(i - 50, i % 7)) % 1000003;
}
`,
		"string-charcodes": `
function hash(s) {
  var h = 7;
  for (var i = 0; i < s.length; i++) {
    h = (h * 31 + s.charCodeAt(i)) % 1000003;
  }
  return h;
}
function mix(h, k) {
  for (var i = 0; i < 8; i++) {
    h = (h * 33 + k + i) % 1000003;
  }
  return h;
}
var result = 0;
for (var i = 0; i < 250; i++) {
  result = mix(result, hash("nanojs-differential-oracle")) % 1000003;
}
print(result);
`,
		"math-kernels": `
function kernel(x, n) {
  var acc = 0;
  for (var i = 1; i <= n; i++) {
    acc += Math.sqrt(x * i) + Math.abs(x - i) - Math.floor(x / i);
  }
  return acc % 65536;
}
var result = 0;
for (var r = 0; r < 150; r++) {
  result = (result + kernel(r % 23 + 1, 12)) % 1000003;
}
`,
		"global-accumulator": `
var total = 0;
function bump(k) {
  total = (total + k * k) % 1000003;
  return total;
}
var result = 0;
for (var i = 0; i < 400; i++) {
  result = bump(i % 31);
}
`,
	}
}

package difftest

import (
	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/parser"
)

// Shrink minimizes a program while keeping a property true — typically
// "this divergence still reproduces". It deletes statements (including
// whole function declarations) greedily: chunks first, then single
// statements, repeating until a whole sweep removes nothing. keep is called
// on candidate sources; it must return true when the candidate still
// exhibits the property. Candidates that fail to parse are simply rejected
// by keep (a clean parse error is a valid outcome of deletion, not a
// divergence), so the shrinker never needs to special-case them.
//
// The returned source always satisfies keep; if the input itself does not,
// Shrink returns it unchanged.
func Shrink(src string, keep func(string) bool) string {
	if !keep(src) {
		return src
	}
	for {
		next, changed := shrinkSweep(src, keep)
		if !changed {
			return src
		}
		src = next
	}
}

// shrinkSweep performs one full deletion sweep over src, committing every
// deletion that keeps the property: a chunk phase that deletes whole
// statement-list tails (cheap big cuts), then a single-statement phase. It
// reports whether anything was removed.
func shrinkSweep(src string, keep func(string) bool) (string, bool) {
	changed := false
	for _, chunked := range []bool{true, false} {
		// Every committed deletion invalidates slot addresses, so re-parse
		// and restart the scan until a scan commits nothing.
		for {
			prog, err := parser.Parse(src)
			if err != nil {
				return src, changed // unreachable: src always parses
			}
			slots := collectSlots(prog)
			committed := false
			for i := len(slots) - 1; i >= 0 && !committed; i-- {
				n := 1
				if chunked {
					// Delete the slot's whole list tail.
					n = len(*slots[i].list) - slots[i].idx
					if n < 2 {
						continue
					}
				}
				if !slots[i].tryDelete(n) {
					continue
				}
				if candidate := ast.Print(prog, ast.PrintConfig{}); keep(candidate) {
					src = candidate
					changed = true
					committed = true
				} else {
					slots[i].undo()
				}
			}
			if !committed {
				break
			}
		}
	}
	return src, changed
}

// stmtSlot addresses one deletable statement position: the idx-th entry of
// some statement list in the AST.
type stmtSlot struct {
	list    *[]ast.Stmt
	idx     int
	removed []ast.Stmt // saved for undo
	n       int
}

// tryDelete removes n statements starting at the slot (bounded by the list
// length) and reports whether anything was removed.
func (s *stmtSlot) tryDelete(n int) bool {
	l := *s.list
	if s.idx >= len(l) {
		return false
	}
	if s.idx+n > len(l) {
		n = len(l) - s.idx
	}
	s.n = n
	s.removed = append([]ast.Stmt(nil), l[s.idx:s.idx+n]...)
	*s.list = append(l[:s.idx:s.idx], l[s.idx+n:]...)
	return true
}

// undo restores the statements tryDelete removed.
func (s *stmtSlot) undo() {
	l := *s.list
	restored := make([]ast.Stmt, 0, len(l)+s.n)
	restored = append(restored, l[:s.idx]...)
	restored = append(restored, s.removed...)
	restored = append(restored, l[s.idx:]...)
	*s.list = restored
}

// collectSlots enumerates every deletable statement position in the
// program: top-level statements (function declarations included) and every
// statement nested in function bodies, blocks, and control-flow arms.
func collectSlots(prog *ast.Program) []*stmtSlot {
	var slots []*stmtSlot
	addList := func(list *[]ast.Stmt) {
		for i := range *list {
			slots = append(slots, &stmtSlot{list: list, idx: i})
		}
	}
	var visitStmt func(s ast.Stmt)
	visitList := func(list *[]ast.Stmt) {
		addList(list)
		for _, s := range *list {
			visitStmt(s)
		}
	}
	visitStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.FuncDecl:
			visitList(&s.Body.Stmts)
		case *ast.BlockStmt:
			visitList(&s.Stmts)
		case *ast.IfStmt:
			visitStmt(s.Then)
			if s.Else != nil {
				visitStmt(s.Else)
			}
		case *ast.WhileStmt:
			visitStmt(s.Body)
		case *ast.DoWhileStmt:
			visitStmt(s.Body)
		case *ast.ForStmt:
			visitStmt(s.Body)
		}
	}
	visitList(&prog.Stmts)
	return slots
}

// StatementCount counts every statement in the program (declarations,
// expression statements, control flow, blocks excluded as pure grouping).
// It is the shrinker's size metric.
func StatementCount(src string) int {
	prog, err := parser.Parse(src)
	if err != nil {
		return 0
	}
	n := 0
	ast.Walk(prog, func(node ast.Node) bool {
		switch node.(type) {
		case ast.Stmt:
			if _, grouping := node.(*ast.BlockStmt); !grouping {
				n++
			}
		}
		return true
	})
	return n
}

// ShrinkDivergence specializes Shrink to the oracle: it minimizes src while
// the matrix still produces a divergence with the same (config, field)
// signature as the first divergence of the full program. It returns the
// minimized source and the divergences it still exhibits (nil when the
// original program does not diverge at all).
func ShrinkDivergence(src string, configs []Config) (string, []Divergence) {
	_, orig := Diff(src, configs)
	if len(orig) == 0 {
		return src, nil
	}
	sig := orig[0]
	keep := func(candidate string) bool {
		_, divs := Diff(candidate, configs)
		for _, d := range divs {
			if d.Config == sig.Config && d.Field == sig.Field {
				return true
			}
		}
		return false
	}
	min := Shrink(src, keep)
	_, divs := Diff(min, configs)
	return min, divs
}

package difftest

import (
	"fmt"
	"testing"

	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/progen"
)

// TestMatrixAsync is the acceptance oracle for off-thread compilation and
// the shared cross-engine cache: async tier-up may change *when* a
// function tiers, never what it computes or which policy verdict it gets.
// The matrix is built once so the shared cache accumulates entries across
// all programs — cross-program reuse is exactly what the canonical-hash
// key must keep sound.
func TestMatrixAsync(t *testing.T) {
	configs := Matrix(Options{JITBULL: true, Async: true, Ablate: []string{}})
	idx := map[string]int{}
	for i, c := range configs {
		idx[c.Name] = i
	}
	for _, name := range []string{
		"jit+async", "jit+cached", "jit+async+cached",
		"jit+jitbull+async", "jit+jitbull+cached",
	} {
		if _, ok := idx[name]; !ok {
			t.Fatalf("matrix is missing the %q cell", name)
		}
	}
	var asyncCompiles, cacheHits, jbCacheHits int
	const programs = 80
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.Options{})
		obs, divs := Diff(src, configs)
		if len(divs) > 0 {
			t.Fatalf("%s\nprogram:\n%s", Report(fmt.Sprintf("seed %d", seed), divs), src)
		}
		asyncCompiles += obs[idx["jit+async"]].Stats.AsyncCompiles
		cacheHits += obs[idx["jit+cached"]].Stats.CacheHits
		jbCacheHits += obs[idx["jit+jitbull+cached"]].Stats.CacheHits
	}
	// The cells must have genuinely exercised the machinery, not silently
	// fallen back to inline compilation or cold misses.
	if asyncCompiles == 0 {
		t.Error("jit+async never compiled off-thread across the corpus")
	}
	if cacheHits == 0 {
		t.Error("jit+cached never hit the prewarmed shared cache")
	}
	if jbCacheHits == 0 {
		t.Error("jit+jitbull+cached never replayed a cached verdict")
	}
}

// TestMatrixAsyncOctane cross-checks the async/cached cells on the
// Octane-analogue corpus, whose hot loops tier up far more than the
// generated programs.
func TestMatrixAsyncOctane(t *testing.T) {
	configs := Matrix(Options{JITBULL: true, Async: true, Ablate: []string{}})
	for _, b := range octane.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, divs := Diff(b.Source(1), configs)
			if len(divs) > 0 {
				t.Errorf("%s", Report(b.Name, divs))
			}
		})
	}
}

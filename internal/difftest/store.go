package difftest

// Cross-process warm start: the persistent store's correctness cell. A
// "process" here is (engine + in-memory cache); killing it and starting
// the next one means dropping both and keeping only the store directory,
// exactly what survives a real restart. The cell asserts the ISSUE's
// acceptance bar: the second process replays every pipeline verdict from
// disk — zero compilations — and observes behavior bit-identical to the
// first: Result, the result global, printed output, interpreter step
// count, and the full audit verdict sequence (modulo the replay-sourced
// Reason text).

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"

	"github.com/jitbull/jitbull/internal/core"
	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/interp"
	"github.com/jitbull/jitbull/internal/jitqueue"
	"github.com/jitbull/jitbull/internal/obs"
	"github.com/jitbull/jitbull/internal/store"
)

// WarmStartOptions bounds a StoreWarmStart cell.
type WarmStartOptions struct {
	IonThreshold      int
	BaselineThreshold int
	MaxSteps          int64
	// JITBULL runs both processes under the 4-VDC detector, so verdict
	// replay (not just artifact reuse) is what the cell proves.
	JITBULL bool
	// Snapshot routes the warm process through a Snapshot/Restore bundle
	// into a second directory instead of reopening the store in place —
	// the fleet-priming path.
	Snapshot bool
	// OSR/Speculate arm the tier-transition machinery, putting OSR entry
	// and deopt-exit side tables into the persisted artifacts.
	OSR       bool
	Speculate bool
}

func (o WarmStartOptions) withDefaults() WarmStartOptions {
	if o.IonThreshold <= 0 {
		o.IonThreshold = 30
	}
	if o.BaselineThreshold <= 0 {
		o.BaselineThreshold = 10
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200_000_000
	}
	return o
}

// WarmStartRun is one process's full observation.
type WarmStartRun struct {
	Obs   Observation
	Steps int64 // interpreter steps of the run (bit-identity check)
	Audit []obs.AuditEvent
	Stats engine.Stats
}

// WarmStartResult is the cell's outcome: divergences is empty iff the
// warm process eliminated the pipeline AND behaved bit-identically.
type WarmStartResult struct {
	Cold, Warm  WarmStartRun
	Divergences []string
}

// OK reports whether the cell held every invariant.
func (r WarmStartResult) OK() bool { return len(r.Divergences) == 0 }

// storeDetector builds a detector over the shared difftest database with
// a per-run audit log attached.
func storeDetector(audit *obs.AuditLog) *core.Detector {
	db, err := jitbullDB()
	if err != nil {
		panic(fmt.Sprintf("difftest: building JITBULL DB: %v", err))
	}
	d := core.NewDetector(db)
	d.Audit = audit
	return d
}

// storeCodec builds the cache codec for the cell. With JITBULL on, any
// fresh detector over the shared database carries the verdict codec; the
// database pointer is what makes encode/decode sides agree.
func storeCodec(jitbull bool) *engine.CacheCodec {
	if !jitbull {
		return engine.NewCacheCodec(nil)
	}
	return engine.NewCacheCodec(storeDetector(nil))
}

// runStoreProcess is one simulated process: a fresh engine and a fresh
// in-memory cache over the given persistent tier. It mirrors Observe but
// additionally captures the step count, audit stream and engine stats
// the warm-start bit-identity checks need.
func runStoreProcess(src string, base engine.Config, tier *store.Store, o WarmStartOptions) (WarmStartRun, error) {
	var run WarmStartRun
	cache := jitqueue.NewCache(nil)
	cache.AttachTier(tier, storeCodec(o.JITBULL))

	var out bytes.Buffer
	cfg := base
	cfg.Cache = cache
	cfg.Out = &out
	e, err := engine.New(src, cfg)
	if err != nil {
		return run, err
	}
	audit := obs.NewAuditLog(nil)
	if o.JITBULL {
		e.SetPolicy(storeDetector(audit))
	}
	v, runErr := e.Run()
	run.Obs.Result = v.ToString()
	run.Obs.ResultG = e.Global("result").ToString()
	run.Obs.Output = out.String()
	run.Obs.Hijacked = e.Hijacked() != nil
	run.Obs.Crashed = e.Arena().Crashed() != nil
	run.Obs.Stats = e.Stats()
	if runErr != nil {
		run.Obs.ErrMsg = runErr.Error()
		switch {
		case engine.IsHijack(runErr):
			run.Obs.ErrKind = "hijack"
		case engine.IsCrash(runErr):
			run.Obs.ErrKind = "crash"
		case errors.Is(runErr, interp.ErrBudget):
			run.Obs.ErrKind = "budget"
		default:
			run.Obs.ErrKind = "runtime"
		}
	}
	run.Steps = e.VM.Steps()
	run.Audit = audit.Events()
	run.Stats = e.Stats()
	return run, nil
}

// auditIdentity projects one audit event to the fields that must replay
// bit-identically across processes: the function, the verdict, the
// disabled-pass set, and the full match attribution. Reason is excluded
// on purpose — the replay path legitimately stamps its own reason text —
// as are Seq/Time (process-local bookkeeping).
func auditIdentity(ev obs.AuditEvent) obs.AuditEvent {
	return obs.AuditEvent{
		Func:           ev.Func,
		Verdict:        ev.Verdict,
		DisabledPasses: ev.DisabledPasses,
		Matches:        ev.Matches,
	}
}

// StoreWarmStart runs one program through a cold process and then a warm
// process over the surviving store directory (dir must be empty and
// writable; the caller owns cleanup) and checks every warm-start
// invariant. Engine configurations are synchronous — a background queue
// only moves when outcomes land, which is noise this cell does not need.
func StoreWarmStart(src, dir string, o WarmStartOptions) (WarmStartResult, error) {
	o = o.withDefaults()
	var res WarmStartResult

	base := engine.Config{
		BaselineThreshold: o.BaselineThreshold,
		IonThreshold:      o.IonThreshold,
		MaxSteps:          o.MaxSteps,
		OSR:               o.OSR,
		Speculate:         o.Speculate,
	}

	coldDir := filepath.Join(dir, "cold")
	coldStore, err := store.Open(coldDir, store.Options{})
	if err != nil {
		return res, err
	}
	res.Cold, err = runStoreProcess(src, base, coldStore, o)
	if err != nil {
		return res, err
	}

	// Kill the process: the cold engine, cache and store handle are
	// dropped here. Only the directory survives.
	warmDir := coldDir
	if o.Snapshot {
		// Fleet priming: bundle the store and restore it into a different
		// directory; the warm process runs over the restored copy.
		bundle := filepath.Join(dir, "snapshot.json")
		if err := coldStore.Snapshot(bundle); err != nil {
			return res, err
		}
		warmDir = filepath.Join(dir, "restored")
		restored, err := store.Open(warmDir, store.Options{})
		if err != nil {
			return res, err
		}
		if n, err := restored.Restore(bundle); err != nil {
			return res, err
		} else if n == 0 {
			res.Divergences = append(res.Divergences, "snapshot/restore installed 0 records")
		}
	}
	warmStore, err := store.Open(warmDir, store.Options{})
	if err != nil {
		return res, err
	}
	res.Warm, err = runStoreProcess(src, base, warmStore, o)
	if err != nil {
		return res, err
	}

	// Bit-identity: semantics, step count, audit verdict sequence.
	cellName := "store+warm"
	for _, d := range compare(Config{Name: cellName}, res.Warm.Obs, res.Cold.Obs, "store+cold") {
		res.Divergences = append(res.Divergences, d.String())
	}
	if res.Warm.Steps != res.Cold.Steps {
		res.Divergences = append(res.Divergences,
			fmt.Sprintf("%s: steps = %d, want %d (tier behavior differed)", cellName, res.Warm.Steps, res.Cold.Steps))
	}
	if len(res.Warm.Audit) != len(res.Cold.Audit) {
		res.Divergences = append(res.Divergences,
			fmt.Sprintf("%s: %d audit events, want %d", cellName, len(res.Warm.Audit), len(res.Cold.Audit)))
	} else {
		for i := range res.Cold.Audit {
			w, c := auditIdentity(res.Warm.Audit[i]), auditIdentity(res.Cold.Audit[i])
			if !reflect.DeepEqual(w, c) {
				res.Divergences = append(res.Divergences,
					fmt.Sprintf("%s: audit event %d = %s, want %s", cellName, i, w, c))
			}
		}
	}
	// Verdict counters must replay exactly.
	ws, cs := res.Warm.Stats, res.Cold.Stats
	if ws.NrJIT != cs.NrJIT || ws.NrDisJIT != cs.NrDisJIT || ws.NrNoJIT != cs.NrNoJIT {
		res.Divergences = append(res.Divergences,
			fmt.Sprintf("%s: verdict counters (%d,%d,%d), want (%d,%d,%d)", cellName,
				ws.NrJIT, ws.NrDisJIT, ws.NrNoJIT, cs.NrJIT, cs.NrDisJIT, cs.NrNoJIT))
	}
	// 100% pipeline elimination: the warm process never compiles, and
	// everything the cold process compiled arrives through the tier.
	if cs.Compiles == 0 {
		res.Divergences = append(res.Divergences,
			fmt.Sprintf("%s: cold process never compiled — the cell proves nothing", cellName))
	}
	if ws.Compiles != 0 {
		res.Divergences = append(res.Divergences,
			fmt.Sprintf("%s: warm process ran the pipeline %d time(s), want 0", cellName, ws.Compiles))
	}
	if ws.CacheHits == 0 && cs.Compiles > 0 {
		res.Divergences = append(res.Divergences,
			fmt.Sprintf("%s: warm process had no cache hits", cellName))
	}
	return res, nil
}

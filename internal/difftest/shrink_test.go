package difftest

import (
	"strings"
	"testing"
)

func TestStatementCount(t *testing.T) {
	src := `
function f(x) { var a = 1; return a + x; }
var result = 0;
for (var i = 0; i < 3; i++) { result = result + f(i); }
`
	// f decl, var a, return, var result, for, its var i init, assignment = 7.
	if n := StatementCount(src); n != 7 {
		t.Fatalf("StatementCount = %d, want 7", n)
	}
}

// TestShrinkPreservesProperty minimizes against a trivial syntactic
// property and checks the result still satisfies it.
func TestShrinkPreservesProperty(t *testing.T) {
	src := `
var keepme = 42;
var a = 1;
var b = 2;
function unused(x) { var t = x * 2; return t; }
var c = a + b;
var result = keepme;
`
	keep := func(s string) bool { return strings.Contains(s, "keepme") }
	min := Shrink(src, keep)
	if !keep(min) {
		t.Fatalf("shrunk program lost the property:\n%s", min)
	}
	if n := StatementCount(min); n > 2 {
		t.Errorf("shrunk to %d statements, want <= 2:\n%s", n, min)
	}
}

// TestShrinkDivergence is the acceptance check: a seeded divergent program
// (CVE trigger buried in padding) must shrink to <= 25%% of its original
// statement count while still diverging.
func TestShrinkDivergence(t *testing.T) {
	src := divergentProgram()
	configs := buggyConfigs()
	origStmts := StatementCount(src)
	if origStmts == 0 {
		t.Fatal("seed program does not parse")
	}
	min, divs := ShrinkDivergence(src, configs)
	if len(divs) == 0 {
		t.Fatal("shrunk program no longer diverges")
	}
	minStmts := StatementCount(min)
	t.Logf("shrunk %d -> %d statements\n%s", origStmts, minStmts, min)
	if 4*minStmts > origStmts {
		t.Errorf("shrunk program has %d statements, want <= 25%% of %d", minStmts, origStmts)
	}
}

package difftest

import (
	"testing"

	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/mirbuild"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/progen"
	"github.com/jitbull/jitbull/internal/value"
)

// fuzzConfigs is a reduced matrix for fuzzing: interpreter reference,
// baseline, full JIT, and JIT with per-pass verification, under a small
// step budget so looping inputs terminate quickly.
func fuzzConfigs() []Config {
	return Matrix(Options{MaxSteps: 2_000_000, Ablate: []string{}, CheckIR: true})
}

// seedCorpus feeds the generated and hand-written corpora to a fuzz target.
func seedCorpus(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(progen.Generate(seed, progen.Options{}))
	}
	for _, src := range ExamplePrograms() {
		f.Add(src)
	}
}

// FuzzDiffTiers feeds arbitrary sources through the tier matrix and demands
// agreement. Inputs that fail to parse are still interesting: every tier
// must report the same clean setup error, and nothing may panic.
func FuzzDiffTiers(f *testing.F) {
	seedCorpus(f)
	configs := fuzzConfigs()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		obs, divs := Diff(src, configs)
		for _, o := range obs {
			if o.ErrKind == "budget" {
				// Tiers count steps at different granularities, so budget
				// truncation points legitimately differ.
				t.Skip("step budget hit")
			}
		}
		if len(divs) > 0 {
			t.Errorf("%s\nprogram:\n%s", Report("fuzz", divs), src)
		}
	})
}

// FuzzPassPipeline compiles every function of arbitrary sources to MIR and
// runs the full optimization pipeline with per-pass verification: no pass
// may break SSA invariants on any reachable input, and nothing may panic.
func FuzzPassPipeline(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := compiler.Compile(src)
		if err != nil {
			t.Skip("does not compile")
		}
		astProg, err := parser.Parse(src)
		if err != nil {
			t.Skip("does not parse")
		}
		for _, fd := range astProg.Funcs() {
			// Type parameters by the corpus naming convention (a*/b* are
			// arrays); shapes mirbuild cannot type are skipped, not failures.
			types := make([]value.Type, len(fd.Params))
			for i, p := range fd.Params {
				if len(p) > 0 && (p[0] == 'a' || p[0] == 'b') {
					types[i] = value.Array
				} else {
					types[i] = value.Number
				}
			}
			g, err := mirbuild.Build(prog, fd, mirbuild.Options{
				ParamTypes: types,
				GlobalType: func(int) value.Type { return value.Number },
				ReturnType: func(int) value.Type { return value.Number },
			})
			if err != nil {
				continue
			}
			if err := passes.RunWith(g, passes.RunOptions{CheckIR: true}); err != nil {
				t.Errorf("pipeline broke SSA for %s: %v\nprogram:\n%s", fd.Name, err, src)
			}
		}
	})
}

package difftest

import (
	"testing"

	"github.com/jitbull/jitbull/internal/progen"
)

// TestStoreWarmStartBitIdentical is the kill/restart acceptance cell:
// run, "kill" the process (drop engine + memory cache), restart over the
// surviving store directory, and require zero pipeline runs with
// bit-identical results, steps and audit verdicts.
func TestStoreWarmStartBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    WarmStartOptions
	}{
		{"plain", WarmStartOptions{}},
		{"jitbull", WarmStartOptions{JITBULL: true}},
		{"jitbull+osr+deopt", WarmStartOptions{JITBULL: true, OSR: true, Speculate: true}},
		{"jitbull+snapshot", WarmStartOptions{JITBULL: true, Snapshot: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := progen.Generate(401, progen.Options{})
			res, err := StoreWarmStart(src, t.TempDir(), tc.o)
			if err != nil {
				t.Fatalf("warm start: %v", err)
			}
			for _, d := range res.Divergences {
				t.Error(d)
			}
			if t.Failed() {
				t.Logf("cold stats: %+v", res.Cold.Stats)
				t.Logf("warm stats: %+v", res.Warm.Stats)
			}
		})
	}
}

// TestStoreWarmStartAcrossPrograms pins key soundness through the store:
// different programs over one store directory never cross-serve records.
func TestStoreWarmStartAcrossPrograms(t *testing.T) {
	dir := t.TempDir()
	for i, seed := range []int64{402, 403, 404} {
		src := progen.Generate(seed, progen.Options{})
		res, err := StoreWarmStart(src, dir+"/p"+string(rune('0'+i)), WarmStartOptions{JITBULL: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range res.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
	}
}

// TestStoreChaosCampaign sweeps one full point×kind grid (short mode)
// or several (long mode) and requires every invariant to hold.
func TestStoreChaosCampaign(t *testing.T) {
	runs := 24 // one full 3-point × 8-kind sweep
	if !testing.Short() {
		runs = 72
	}
	res := StoreChaos(StoreChaosOptions{Seed: 900, Runs: runs, Dir: t.TempDir()})
	if res.FaultsFired == 0 {
		t.Fatal("campaign fired no faults — the store boundary was never exercised")
	}
	for _, f := range res.Failures {
		t.Error(f.String())
	}
	t.Log(res.Summary())
}

// TestStoreChaosReplayIsDeterministic replays one faulted run and
// requires the identical fired-fault count — the reproducer contract.
func TestStoreChaosReplayIsDeterministic(t *testing.T) {
	o := StoreChaosOptions{Seed: 901, Runs: 6, Dir: t.TempDir()}
	res := StoreChaos(o)
	if len(res.Failures) != 0 {
		t.Fatalf("campaign failed: %v", res.Failures)
	}
	// Re-run one cell by hand and compare fired counts.
	f := ChaosFailure{RunSeed: o.Seed + 2, Plan: storeChaosPlan(2, o.Seed+2), Program: progenAt(o.Seed + 2)}
	fired1, fail1 := StoreChaosReplay(f, t.TempDir(), o)
	fired2, fail2 := StoreChaosReplay(f, t.TempDir(), o)
	if fired1 != fired2 || (fail1 == nil) != (fail2 == nil) {
		t.Errorf("replay diverged: fired %d/%d, fail %v/%v", fired1, fired2, fail1, fail2)
	}
}

func progenAt(seed int64) string { return progen.Generate(seed, progen.Options{}) }

package difftest

import (
	"fmt"
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/octane"
	"github.com/jitbull/jitbull/internal/passes"
	"github.com/jitbull/jitbull/internal/progen"
)

// matrixOptions is the full oracle matrix used by the heavyweight tests.
func matrixOptions() Options {
	return Options{JITBULL: true, Variants: true, CheckIR: true}
}

// TestMatrix is the core acceptance oracle: 200+ generated programs across
// the full configuration matrix with zero divergences.
func TestMatrix(t *testing.T) {
	configs := Matrix(matrixOptions())
	if len(configs) < 5 {
		t.Fatalf("matrix has %d configurations, want >= 5", len(configs))
	}
	const programs = 210
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.Options{})
		_, divs := Diff(src, configs)
		if len(divs) > 0 {
			// The first failure carries the whole program; stop the flood.
			t.Fatalf("%s\nprogram:\n%s", Report(fmt.Sprintf("seed %d", seed), divs), src)
		}
	}
}

// TestMatrixExamples cross-checks the hand-written example corpus.
func TestMatrixExamples(t *testing.T) {
	configs := Matrix(matrixOptions())
	for name, src := range ExamplePrograms() {
		_, divs := Diff(src, configs)
		if len(divs) > 0 {
			t.Errorf("%s", Report(name, divs))
		}
	}
}

// TestMatrixOctane cross-checks the Octane-analogue benchmark corpus,
// including the micro-benchmarks.
func TestMatrixOctane(t *testing.T) {
	configs := Matrix(Options{CheckIR: true, JITBULL: true})
	for _, b := range octane.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, divs := Diff(b.Source(1), configs)
			if len(divs) > 0 {
				t.Errorf("%s", Report(b.Name, divs))
			}
		})
	}
}

// TestCheckIRCorpora asserts the strengthened verifier holds after every
// pass of every compilation across the full corpus: octane + examples +
// generated programs. Any IRFault names the offending pass.
func TestCheckIRCorpora(t *testing.T) {
	cfg := Matrix(Options{CheckIR: true})[3] // the jit+checkir cell
	if cfg.Name != "jit+checkir" {
		t.Fatalf("expected jit+checkir cell, got %s", cfg.Name)
	}
	check := func(label, src string) {
		t.Helper()
		obs := Observe(src, cfg)
		if obs.SetupErr != "" {
			t.Fatalf("%s: setup: %s", label, obs.SetupErr)
		}
		for _, fault := range obs.IRFaults {
			t.Errorf("%s: %s", label, fault)
		}
		if obs.Stats.NrJIT == 0 {
			t.Errorf("%s: no function was Ion-compiled; CheckIR coverage is vacuous", label)
		}
	}
	for _, b := range octane.All() {
		check("octane/"+b.Name, b.Source(1))
	}
	for name, src := range ExamplePrograms() {
		check("examples/"+name, src)
	}
	for seed := int64(0); seed < 60; seed++ {
		check(fmt.Sprintf("progen/%d", seed), progen.Generate(seed, progen.Options{}))
	}
}

// TestSeededDivergenceDetected proves the oracle actually fires: an engine
// build with an injected CVE must diverge from the interpreter on the CVE's
// trigger pattern (crash, hijack, or wrong value).
func TestSeededDivergenceDetected(t *testing.T) {
	src := divergentProgram()
	_, divs := Diff(src, buggyConfigs())
	if len(divs) == 0 {
		t.Fatal("injected CVE-2019-9813 produced no divergence; the oracle is blind")
	}
}

// buggyConfigs is a minimal interp-vs-buggy-JIT matrix: the JIT compiles
// with the CVE-2019-9813 range-widening bug active.
func buggyConfigs() []Config {
	o := Options{Bugs: passes.BugSet{passes.CVE20199813: true}, Ablate: []string{}}
	cfgs := Matrix(o)
	return []Config{cfgs[0], cfgs[2]} // interp (reference), jit (buggy)
}

// divergentProgram returns a program that triggers CVE-2019-9813 (<=
// widened as <, letting an out-of-bounds store through BCE) buried in
// padding statements, for shrinker tests.
func divergentProgram() string {
	var sb strings.Builder
	// Padding: independent benign functions and driver calls.
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "function pad%d(n) {\n", i)
		for j := 0; j < 8; j++ {
			fmt.Fprintf(&sb, "  var p%d = n * %d + %d;\n", j, j+2, i)
		}
		fmt.Fprintf(&sb, "  return p0 + p7;\n}\n")
	}
	// The CVE-2019-9813 trigger pattern (the vulndb demonstrator's shape):
	// a <= loop bound that range analysis widens as <, so BCE removes the
	// check the final iteration needs.
	sb.WriteString(`
function trigger(a) {
  var s = 0;
  for (var i = 0; i <= a.length; i++) { s = s + a[i]; }
  return s;
}
var result = 0;
`)
	sb.WriteString("for (var r = 0; r < 90; r++) {\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "  result = (result + pad%d(r)) %% 1000003;\n", i)
	}
	sb.WriteString("  result = result + trigger(new Array(8));\n}\n")
	return sb.String()
}

package obs

import "sync"

// DefaultRingCapacity holds roughly one long compile run's worth of
// events (a full octane program compiles tens of functions × ~50 events).
const DefaultRingCapacity = 1 << 16

// Ring is a fixed-capacity in-memory Sink: the newest events win, the
// oldest are overwritten. Recording is O(1) and allocation-free after the
// buffer fills; a long-running engine can keep a ring attached forever
// and export the tail on demand.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	total   int64
}

// NewRing returns a ring holding up to capacity events (<= 0 selects
// DefaultRingCapacity).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Sink.
func (r *Ring) Record(ev Event) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events in recording order.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns how many events are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return 0
	}
	return r.total - int64(len(r.buf))
}

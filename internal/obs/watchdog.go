package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SignalKind classifies one runtime observation fed to the watchdog.
type SignalKind uint8

// Watchdog signal kinds. The engine, jitqueue, and store emit these at
// the same hook points that feed metrics; the watchdog turns streams of
// them into discrete anomalies.
const (
	SigCompile        SignalKind = iota // one finished compilation (Value = duration ns)
	SigVerdict                          // one policy verdict (Cause = go|disable-pass|nojit)
	SigDeopt                            // one guard-failure deopt exit
	SigQuarantine                       // supervisor quarantined a function
	SigCacheHit                         // code/verdict cache hit
	SigCacheMiss                        // code/verdict cache miss
	SigQueueSaturated                   // jitqueue rejected a compile (inline fallback)
	SigStoreCorrupt                     // persistent store quarantined a corrupt record
	SigHotInterp                        // policy-pinned (nojit) function still getting hot
)

// String names the kind for reports.
func (k SignalKind) String() string {
	switch k {
	case SigCompile:
		return "compile"
	case SigVerdict:
		return "verdict"
	case SigDeopt:
		return "deopt"
	case SigQuarantine:
		return "quarantine"
	case SigCacheHit:
		return "cache-hit"
	case SigCacheMiss:
		return "cache-miss"
	case SigQueueSaturated:
		return "queue-saturated"
	case SigStoreCorrupt:
		return "store-corrupt"
	case SigHotInterp:
		return "hot-interp"
	}
	return "unknown"
}

// Signal is one observation.
type Signal struct {
	Kind  SignalKind
	Func  string // subject function (may be "")
	Value int64  // kind-specific magnitude (duration ns, call count, ...)
	Cause string // kind-specific detail
}

// Anomaly is one detector verdict: something is wrong, attributed.
type Anomaly struct {
	Detector string `json:"detector"`
	Func     string `json:"func,omitempty"`
	Reason   string `json:"reason"`
}

// Detector is one pluggable anomaly detector. Observe is called under
// the watchdog lock (implementations need no locking of their own) for
// every signal; returning ok=true declares one anomaly.
type Detector interface {
	Name() string
	Observe(sig Signal) (Anomaly, bool)
}

// Health states for the /healthz readiness endpoint.
const (
	HealthReady    = "ready"
	HealthDegraded = "degraded"
)

// Watchdog turns runtime signals into anomalies: each signal is offered
// to every detector; a firing detector emits an audit event (verdict
// "anomaly"), bumps watchdog metrics, triggers a flight-recorder
// episode, and degrades the health state. Health recovers to ready
// after RecoverAfter consecutive anomaly-free signals — a deterministic
// policy, so tests and the chaos campaign can pin the ready→degraded→
// ready transition without clocks.
//
// Two signal kinds are treated as intrinsic anomalies rather than
// detector input: SigQueueSaturated and SigStoreCorrupt each declare
// one anomaly per signal (the event itself is the anomaly — a rejected
// compile or a corrupt record needs no statistics), giving the chaos
// campaign 1:1 accounting against seeded causes.
//
// A nil *Watchdog is inert: Signal costs one nil check.
type Watchdog struct {
	mu        sync.Mutex
	detectors []Detector
	audit     *AuditLog
	flight    *FlightRecorder
	reg       *Registry

	// SeedProbe, when set, is consulted once per signal; a non-nil error
	// (or a panic, which is contained) synthesizes one "seeded" anomaly.
	// The chaos campaign wires this to a faults.Injector rule on the
	// watchdog fault point to prove 1:1 anomaly accounting.
	seedProbe func(detail string) error

	health       string
	cleanStreak  int
	recoverAfter int

	signals   int64
	anomalies []Anomaly
	byDet     map[string]int64
	lastWhy   string
}

// WatchdogOptions configure a Watchdog. All fields optional.
type WatchdogOptions struct {
	Audit        *AuditLog       // anomaly audit destination
	Flight       *FlightRecorder // episode dumps per anomaly
	Metrics      *Registry       // watchdog.* counters and health gauge
	Detectors    []Detector      // nil selects DefaultDetectors()
	RecoverAfter int             // clean signals before ready again; default 64
}

// NewWatchdog builds a watchdog.
func NewWatchdog(opts WatchdogOptions) *Watchdog {
	dets := opts.Detectors
	if dets == nil {
		dets = DefaultDetectors()
	}
	ra := opts.RecoverAfter
	if ra <= 0 {
		ra = 64
	}
	w := &Watchdog{
		detectors:    dets,
		audit:        opts.Audit,
		flight:       opts.Flight,
		reg:          opts.Metrics,
		health:       HealthReady,
		recoverAfter: ra,
		byDet:        map[string]int64{},
	}
	w.reg.Gauge("watchdog.healthy").Set(1)
	return w
}

// SetSeedProbe installs the fault-seeding probe (see SeedProbe above).
func (w *Watchdog) SetSeedProbe(probe func(detail string) error) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.seedProbe = probe
	w.mu.Unlock()
}

// Signal offers one observation to the watchdog. Safe on a nil
// watchdog and for concurrent use (engine owner + queue workers +
// store all emit).
func (w *Watchdog) Signal(sig Signal) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.signals++
	w.reg.Counter("watchdog.signals").Inc()

	var fired []Anomaly

	// Seeded fault probe: at most one synthetic anomaly per signal, with
	// panic containment so an injected panic kind cannot escape into the
	// engine's hot path.
	if w.seedProbe != nil {
		if err := w.probeSeed(sig); err != nil {
			fired = append(fired, Anomaly{Detector: "seeded", Func: sig.Func, Reason: err.Error()})
			w.reg.Counter("watchdog.seeded").Inc()
		}
	}

	// Intrinsic anomalies: the signal itself is the finding.
	switch sig.Kind {
	case SigQueueSaturated:
		fired = append(fired, Anomaly{Detector: "queue-saturation", Func: sig.Func, Reason: "compile queue saturated: " + sig.Cause})
	case SigStoreCorrupt:
		fired = append(fired, Anomaly{Detector: "store-corruption", Func: sig.Func, Reason: "store record corrupt: " + sig.Cause})
	case SigQuarantine:
		// Every quarantine is episode-worthy context (tail sampling), but
		// only the spike detector decides whether it is anomalous.
		w.flight.TriggerEpisode("quarantine", sig.Func+": "+sig.Cause)
	}

	for _, d := range w.detectors {
		if a, ok := d.Observe(sig); ok {
			fired = append(fired, a)
		}
	}

	if len(fired) == 0 {
		w.cleanStreak++
		if w.health == HealthDegraded && w.cleanStreak >= w.recoverAfter {
			w.health = HealthReady
			w.reg.Gauge("watchdog.healthy").Set(1)
		}
		return
	}
	w.cleanStreak = 0
	w.health = HealthDegraded
	w.reg.Gauge("watchdog.healthy").Set(0)
	for _, a := range fired {
		w.anomalies = append(w.anomalies, a)
		w.byDet[a.Detector]++
		w.lastWhy = a.Detector + ": " + a.Reason
		w.reg.Counter("watchdog.anomalies").Inc()
		w.reg.Counter("watchdog.fired." + a.Detector).Inc()
		w.audit.Record(AuditEvent{
			Func:    a.Func,
			Verdict: VerdictAnomaly,
			Stage:   a.Detector,
			Reason:  a.Reason,
		})
		w.flight.TriggerEpisode(a.Detector, a.Reason)
	}
	if len(w.anomalies) > 4096 {
		w.anomalies = w.anomalies[len(w.anomalies)-4096:]
	}
}

// probeSeed runs the seed probe with panic containment.
func (w *Watchdog) probeSeed(sig Signal) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("seeded panic: %v", r)
		}
	}()
	return w.seedProbe(sig.Kind.String() + ":" + sig.Func)
}

// Health returns the current readiness state and the last anomaly line.
func (w *Watchdog) Health() (state, lastAnomaly string) {
	if w == nil {
		return HealthReady, ""
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.health, w.lastWhy
}

// Anomalies returns every recorded anomaly in order.
func (w *Watchdog) Anomalies() []Anomaly {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Anomaly, len(w.anomalies))
	copy(out, w.anomalies)
	return out
}

// Summary renders a one-line operator summary for `jitbull run -stats`.
func (w *Watchdog) Summary() string {
	if w == nil {
		return ""
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: health=%s signals=%d anomalies=%d", w.health, w.signals, len(w.anomalies))
	if len(w.byDet) > 0 {
		names := make([]string, 0, len(w.byDet))
		for n := range w.byDet {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", n, w.byDet[n]))
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Built-in detectors

// DefaultDetectors returns the standard detector set.
func DefaultDetectors() []Detector {
	return []Detector{
		NewDeoptStormDetector(0),
		NewQuarantineSpikeDetector(0, 0),
		NewCacheMissRegressionDetector(0, 0),
		NewVerdictRateShiftDetector(0, 0),
		NewPerfDivergenceDetector(),
	}
}

// deoptStormDetector fires when one function accumulates threshold
// deopt exits; the count then resets so a sustained storm fires once
// per threshold-sized burst, not once per deopt.
type deoptStormDetector struct {
	threshold int
	perFunc   map[string]int
}

// NewDeoptStormDetector builds the detector (threshold <= 0 selects 8,
// matching the engine's requalify-on-storm bound).
func NewDeoptStormDetector(threshold int) Detector {
	if threshold <= 0 {
		threshold = 8
	}
	return &deoptStormDetector{threshold: threshold, perFunc: map[string]int{}}
}

func (d *deoptStormDetector) Name() string { return "deopt-storm" }

func (d *deoptStormDetector) Observe(sig Signal) (Anomaly, bool) {
	if sig.Kind != SigDeopt {
		return Anomaly{}, false
	}
	d.perFunc[sig.Func]++
	if d.perFunc[sig.Func] < d.threshold {
		return Anomaly{}, false
	}
	d.perFunc[sig.Func] = 0
	return Anomaly{
		Detector: d.Name(),
		Func:     sig.Func,
		Reason:   fmt.Sprintf("%d deopt exits (%s)", d.threshold, sig.Cause),
	}, true
}

// quarantineSpikeDetector fires when spike quarantines land within a
// window of recent signals — distinguishing a burst of supervisor
// failures from the occasional flaky compile.
type quarantineSpikeDetector struct {
	spike  int
	window int64
	seen   int64   // total signals observed
	marks  []int64 // signal index of recent quarantines (len <= spike)
}

// NewQuarantineSpikeDetector builds the detector (spike <= 0 selects 3
// quarantines, window <= 0 selects 256 signals).
func NewQuarantineSpikeDetector(spike, window int) Detector {
	if spike <= 0 {
		spike = 3
	}
	if window <= 0 {
		window = 256
	}
	return &quarantineSpikeDetector{spike: spike, window: int64(window)}
}

func (d *quarantineSpikeDetector) Name() string { return "quarantine-spike" }

func (d *quarantineSpikeDetector) Observe(sig Signal) (Anomaly, bool) {
	d.seen++
	if sig.Kind != SigQuarantine {
		return Anomaly{}, false
	}
	d.marks = append(d.marks, d.seen)
	if len(d.marks) > d.spike {
		d.marks = d.marks[1:]
	}
	if len(d.marks) < d.spike || d.seen-d.marks[0] > d.window {
		return Anomaly{}, false
	}
	n := d.spike
	d.marks = d.marks[:0]
	return Anomaly{
		Detector: d.Name(),
		Func:     sig.Func,
		Reason:   fmt.Sprintf("%d quarantines within %d signals", n, d.window),
	}, true
}

// rateShiftState is the shared machinery of the two regression
// detectors: compare a rolling-window "bad event" rate against the
// lifetime baseline and fire when it shifts upward by more than delta.
type rateShiftState struct {
	window    []bool // ring of recent outcomes (true = bad)
	next      int
	filled    bool
	lifeTotal int64
	lifeBad   int64
	minLife   int64
	delta     float64
}

func newRateShiftState(window int, delta float64) rateShiftState {
	return rateShiftState{window: make([]bool, window), minLife: int64(window) * 2, delta: delta}
}

// observe records one outcome; reports whether the window rate now
// exceeds the lifetime rate by delta (and resets the window if so).
func (s *rateShiftState) observe(bad bool) (windowRate, lifeRate float64, fired bool) {
	s.lifeTotal++
	if bad {
		s.lifeBad++
	}
	s.window[s.next] = bad
	s.next++
	if s.next == len(s.window) {
		s.next = 0
		s.filled = true
	}
	if !s.filled || s.lifeTotal < s.minLife {
		return 0, 0, false
	}
	badN := 0
	for _, b := range s.window {
		if b {
			badN++
		}
	}
	windowRate = float64(badN) / float64(len(s.window))
	lifeRate = float64(s.lifeBad) / float64(s.lifeTotal)
	if windowRate <= lifeRate+s.delta {
		return windowRate, lifeRate, false
	}
	// Reset so one sustained regression fires once per window, not once
	// per observation.
	s.filled = false
	s.next = 0
	return windowRate, lifeRate, true
}

// cacheMissRegressionDetector fires when the recent code/verdict cache
// miss rate regresses against the lifetime baseline — the signature of
// an eviction storm, a poisoned store, or a key-scheme bug.
type cacheMissRegressionDetector struct{ st rateShiftState }

// NewCacheMissRegressionDetector builds the detector (window <= 0
// selects 64 lookups, delta <= 0 selects +0.25 absolute miss rate).
func NewCacheMissRegressionDetector(window int, delta float64) Detector {
	if window <= 0 {
		window = 64
	}
	if delta <= 0 {
		delta = 0.25
	}
	return &cacheMissRegressionDetector{st: newRateShiftState(window, delta)}
}

func (d *cacheMissRegressionDetector) Name() string { return "cache-miss-regression" }

func (d *cacheMissRegressionDetector) Observe(sig Signal) (Anomaly, bool) {
	if sig.Kind != SigCacheHit && sig.Kind != SigCacheMiss {
		return Anomaly{}, false
	}
	wr, lr, fired := d.st.observe(sig.Kind == SigCacheMiss)
	if !fired {
		return Anomaly{}, false
	}
	return Anomaly{
		Detector: d.Name(),
		Reason:   fmt.Sprintf("miss rate %.2f vs lifetime %.2f", wr, lr),
	}, true
}

// verdictRateShiftDetector fires when the recent share of non-go
// policy verdicts (disable-pass/nojit) shifts up against the lifetime
// baseline — a DNA update or workload change suddenly tripping the
// go/no-go policy far more often.
type verdictRateShiftDetector struct{ st rateShiftState }

// NewVerdictRateShiftDetector builds the detector (window <= 0 selects
// 32 verdicts, delta <= 0 selects +0.30 absolute non-go rate).
func NewVerdictRateShiftDetector(window int, delta float64) Detector {
	if window <= 0 {
		window = 32
	}
	if delta <= 0 {
		delta = 0.30
	}
	return &verdictRateShiftDetector{st: newRateShiftState(window, delta)}
}

func (d *verdictRateShiftDetector) Name() string { return "verdict-rate-shift" }

func (d *verdictRateShiftDetector) Observe(sig Signal) (Anomaly, bool) {
	if sig.Kind != SigVerdict {
		return Anomaly{}, false
	}
	wr, lr, fired := d.st.observe(sig.Cause != string(VerdictGo))
	if !fired {
		return Anomaly{}, false
	}
	return Anomaly{
		Detector: d.Name(),
		Reason:   fmt.Sprintf("non-go verdict rate %.2f vs lifetime %.2f", wr, lr),
	}, true
}

// perfDivergenceDetector fires once per function that the policy pinned
// to the interpreter (nojit) yet keeps getting hot — the "JITBULL's
// verdict is costing real performance" case the paper's go/no-go
// trade-off creates. The engine emits SigHotInterp at call-count
// milestones for pinned functions; the detector dedups per function.
type perfDivergenceDetector struct {
	flagged map[string]bool
}

// NewPerfDivergenceDetector builds the detector.
func NewPerfDivergenceDetector() Detector {
	return &perfDivergenceDetector{flagged: map[string]bool{}}
}

func (d *perfDivergenceDetector) Name() string { return "perf-divergence" }

func (d *perfDivergenceDetector) Observe(sig Signal) (Anomaly, bool) {
	if sig.Kind != SigHotInterp || d.flagged[sig.Func] {
		return Anomaly{}, false
	}
	d.flagged[sig.Func] = true
	return Anomaly{
		Detector: d.Name(),
		Func:     sig.Func,
		Reason:   fmt.Sprintf("policy-pinned function still hot after %d calls", sig.Value),
	}, true
}

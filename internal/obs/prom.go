package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use dots as
// namespace separators ("store.hits"), which become underscores
// ("store_hits"); any other illegal rune is mapped to '_' too.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm encodes the registry in the Prometheus/OpenMetrics text
// exposition format: TYPE comments, cumulative histogram buckets with
// quoted le labels and a +Inf bucket, and — where a bucket retained an
// exemplar — an OpenMetrics-style exemplar suffix linking the bucket to
// the trace span ID of its most recent extreme observation:
//
//	compile_ns_bucket{le="4000000"} 17 # {span_id="42"} 3917000
//
// Counters are exported as counters, gauges as gauges. Names are
// sanitized via promName; a nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := r.sortedNames()
	for _, name := range names {
		pn := promName(name)
		if c, ok := r.counters[name]; ok {
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, c.Value())
		}
		if g, ok := r.gauges[name]; ok {
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", pn, pn, g.Value())
		}
		if h, ok := r.hists[name]; ok {
			s := h.Snapshot()
			fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
			cum := int64(0)
			for i := range s.Counts {
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fmt.Sprintf("%d", s.Bounds[i])
				}
				cum += s.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d", pn, le, cum)
				if s.Exemplars != nil && s.Exemplars[i].SpanID != 0 {
					fmt.Fprintf(bw, " # {span_id=\"%d\"} %d", s.Exemplars[i].SpanID, s.Exemplars[i].Value)
				}
				bw.WriteByte('\n')
			}
			fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", pn, s.Sum, pn, s.Count)
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the debug HTTP handler: metrics in text and JSON
// form, the recent audit events, and the full net/http/pprof suite. reg
// and audit may be nil (the corresponding endpoints then serve empty
// documents).
//
//	/metrics        expvar-style "name value" text
//	/metrics.json   one JSON object of every metric
//	/audit.json     recorded audit events as a JSON array
//	/debug/pprof/   CPU/heap/goroutine/... profiles
func NewDebugMux(reg *Registry, audit *AuditLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			w.Write([]byte("{}\n"))
			return
		}
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/audit.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(audit.Events())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer listens on addr and serves NewDebugMux in a background
// goroutine, returning the server (for Close) and the bound address
// (useful with ":0"). The pprof endpoints make any long jitbull run
// profileable with the stock `go tool pprof` workflow.
func StartDebugServer(addr string, reg *Registry, audit *AuditLog) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(reg, audit)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// OpsState bundles everything the operational HTTP surface can serve.
// Any field may be nil; the corresponding endpoint then serves an empty
// document (or, for /healthz without a watchdog, unconditional ready).
type OpsState struct {
	Reg      *Registry
	Audit    *AuditLog
	Watchdog *Watchdog
	Journal  *Journal
	Flight   *FlightRecorder
}

// NewDebugMux builds the classic debug handler (metrics, audit, pprof).
// Kept for callers that predate the ops surface; equivalent to
// NewOpsMux with only Reg and Audit set.
func NewDebugMux(reg *Registry, audit *AuditLog) *http.ServeMux {
	return NewOpsMux(OpsState{Reg: reg, Audit: audit})
}

// NewOpsMux builds the full operational HTTP handler:
//
//	/metrics        expvar-style "name value" text
//	/metrics.json   one JSON object of every metric
//	/metrics.prom   Prometheus/OpenMetrics text exposition with exemplars
//	/healthz        200 "ready" / 503 "degraded" from the anomaly watchdog
//	/audit.json     recorded audit events as a JSON array
//	/journey.json   per-function tier-journey timelines
//	/flight.json    declared flight-recorder episodes and dump paths
//	/debug/pprof/   CPU/heap/goroutine/... profiles
func NewOpsMux(s OpsState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.Reg.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.Reg == nil {
			w.Write([]byte("{}\n"))
			return
		}
		s.Reg.WriteJSON(w)
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Reg.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		state, why := s.Watchdog.Health()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if state != HealthReady {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(state + "\n" + why + "\n"))
			return
		}
		w.Write([]byte(state + "\n"))
	})
	mux.HandleFunc("/audit.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Audit.Events())
	})
	mux.HandleFunc("/journey.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.Journal.WriteJSON(w)
	})
	mux.HandleFunc("/flight.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Flight.Episodes())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer listens on addr and serves NewDebugMux in a background
// goroutine, returning the server (for Close) and the bound address
// (useful with ":0"). The pprof endpoints make any long jitbull run
// profileable with the stock `go tool pprof` workflow.
func StartDebugServer(addr string, reg *Registry, audit *AuditLog) (*http.Server, net.Addr, error) {
	return StartOpsServer(addr, OpsState{Reg: reg, Audit: audit})
}

// StartOpsServer listens on addr and serves the full operational mux in
// a background goroutine.
func StartOpsServer(addr string, s OpsState) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewOpsMux(s)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

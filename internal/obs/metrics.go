package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. Safe on a nil counter (no-op).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket atomic histogram: counts[i] holds
// observations <= bounds[i]; the final bucket is the +Inf overflow.
// Each bucket additionally retains one exemplar — the span ID and value
// of its most recent extreme (maximal) observation — so an operator
// looking at a p99 bucket can jump straight to the retained trace span
// that landed there.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	ex     []bucketExemplar // len(counts); per-bucket extreme observation
	sum    atomic.Int64
	n      atomic.Int64
}

// bucketExemplar holds one bucket's exemplar. The two fields are updated
// without a lock: a torn read can at worst pair a span ID with a
// same-bucket value from a racing observation, which is still a valid
// exemplar for operators (both point at a real extreme in that bucket).
type bucketExemplar struct {
	id atomic.Uint64 // span ID of the exemplar observation (0 = none)
	v  atomic.Int64  // observed value
}

// HistExemplar is the encodable form of one bucket's exemplar.
type HistExemplar struct {
	SpanID uint64 `json:"span_id"`
	Value  int64  `json:"value"`
}

// LatencyBucketsNs are the default bounds for nanosecond latencies:
// 1µs .. ~1s, roughly ×4 per bucket.
var LatencyBucketsNs = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000,
	1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000, 1_000_000_000,
}

// SizeBuckets are the default bounds for small cardinalities (chain-set
// sizes, probe counts): 1 .. 4096, ×4 per bucket.
var SizeBuckets = []int64{1, 4, 16, 64, 256, 1024, 4096}

func newHistogram(bounds []int64) *Histogram {
	own := make([]int64, len(bounds))
	copy(own, bounds)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return &Histogram{
		bounds: own,
		counts: make([]atomic.Int64, len(own)+1),
		ex:     make([]bucketExemplar, len(own)+1),
	}
}

// Observe records one sample. Safe on a nil histogram.
func (h *Histogram) Observe(v int64) { h.ObserveEx(v, 0) }

// ObserveEx records one sample linked to a trace span. When spanID is
// non-zero and v is at least as large as the bucket's current exemplar,
// the bucket's exemplar is replaced (ties refresh recency, so the
// exemplar is always the *most recent* extreme). Safe on a nil histogram.
func (h *Histogram) ObserveEx(v int64, spanID uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
	if spanID != 0 && (h.ex[i].id.Load() == 0 || v >= h.ex[i].v.Load()) {
		h.ex[i].v.Store(v)
		h.ex[i].id.Store(spanID)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// HistSnapshot is a consistent-enough read of a histogram for encoding.
type HistSnapshot struct {
	Bounds    []int64        `json:"bounds"`
	Counts    []int64        `json:"counts"` // len(Bounds)+1; last is +Inf overflow
	Sum       int64          `json:"sum"`
	Count     int64          `json:"count"`
	Exemplars []HistExemplar `json:"exemplars,omitempty"` // len(Counts); SpanID 0 = none
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts)), Sum: h.sum.Load(), Count: h.n.Load()}
	any := false
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		if h.ex[i].id.Load() != 0 {
			any = true
		}
	}
	if any {
		s.Exemplars = make([]HistExemplar, len(h.counts))
		for i := range h.ex {
			s.Exemplars[i] = HistExemplar{SpanID: h.ex[i].id.Load(), Value: h.ex[i].v.Load()}
		}
	}
	return s
}

// Registry is a name-keyed collection of metrics. Handle resolution
// (Counter/Gauge/Histogram) takes the registry lock and is meant for
// setup paths; the returned handles are lock-free atomics for the hot
// path. Many engines may share one registry: same-named metrics resolve
// to the same handle, so a parallel fan-out aggregates into one coherent
// view with no races (the -race CI job exercises exactly this).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (discarding) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later bounds are ignored — the first
// registration wins).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric's current value, keyed by name.
// Counters and gauges read as int64, histograms as HistSnapshot.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// sortedNames returns the union of metric names, sorted.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON encodes the registry as one JSON object, names sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteText encodes the registry in expvar-style "name value" lines,
// names sorted; histograms render as count/sum/mean plus per-bucket
// cumulative lines.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := r.sortedNames()
	for _, name := range names {
		if c, ok := r.counters[name]; ok {
			fmt.Fprintf(bw, "%s %d\n", name, c.Value())
		}
		if g, ok := r.gauges[name]; ok {
			fmt.Fprintf(bw, "%s %d\n", name, g.Value())
		}
		if h, ok := r.hists[name]; ok {
			s := h.Snapshot()
			fmt.Fprintf(bw, "%s_count %d\n%s_sum %d\n", name, s.Count, name, s.Sum)
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%d} %d\n", name, b, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=+Inf} %d\n", name, s.Count)
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

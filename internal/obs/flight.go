package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FlightRecorder is a tail-sampling trace sink: it keeps a bounded ring
// of the most recent events and writes a full Chrome-trace dump only
// when an anomalous episode is declared — so steady-state runs cost one
// ring write per event and zero disk, while the trace context *leading
// up to* an anomaly is preserved in full.
//
// Episodes come from two places:
//
//   - Internal triggers: a compile span whose duration exceeds the
//     rolling p99 of recent compiles (after a minimum sample count,
//     with a cooldown so one slow phase produces one dump, not one per
//     compile), and any CatFault "fault.injected" instant.
//   - External triggers: TriggerEpisode, called by the anomaly watchdog
//     (deopt storm, quarantine, store corruption, queue saturation).
//     External triggers are never debounced — every declared episode
//     produces exactly one dump, which the chaos campaign counts 1:1
//     against seeded causes.
//
// Disk use is bounded by MaxDumps and MaxBytes: oldest dumps are
// deleted first. A nil *FlightRecorder is inert, per the package's
// nil-is-off convention.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	next int
	wrap bool

	dir      string
	maxDumps int
	maxBytes int64

	// rolling compile-duration window for the p99 trigger
	durs       []int64
	durNext    int
	durWrap    bool
	minSamples int
	cooldown   int // compile samples remaining before another auto episode

	seq      uint64
	episodes []Episode
	dumpErr  error
}

// Episode is one declared anomaly with its dump location.
type Episode struct {
	Seq    uint64 `json:"seq"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	Path   string `json:"path,omitempty"` // "" if the dump failed or was evicted
	Events int    `json:"events"`         // ring events captured in the dump
}

// FlightOptions tune a FlightRecorder. Zero values select defaults.
type FlightOptions struct {
	RingCapacity int   // retained events; default 8192
	MaxDumps     int   // dump files kept on disk; default 32
	MaxBytes     int64 // total dump bytes kept on disk; default 32 MiB
	MinSamples   int   // compile samples before the p99 trigger arms; default 64
}

// NewFlightRecorder returns a recorder dumping episodes into dir
// (created if missing). A best-effort recorder: if dir cannot be
// created, episodes are still tracked but dumps fail with Err.
func NewFlightRecorder(dir string, opts FlightOptions) *FlightRecorder {
	if opts.RingCapacity <= 0 {
		opts.RingCapacity = 8192
	}
	if opts.MaxDumps <= 0 {
		opts.MaxDumps = 32
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 32 << 20
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 64
	}
	f := &FlightRecorder{
		ring:       make([]Event, opts.RingCapacity),
		dir:        dir,
		maxDumps:   opts.MaxDumps,
		maxBytes:   opts.MaxBytes,
		durs:       make([]int64, 512),
		minSamples: opts.MinSamples,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		f.dumpErr = err
	}
	return f
}

// Record implements Sink: retain the event, then evaluate the internal
// triggers. Safe on a nil recorder.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrap = true
	}
	switch {
	case ev.Kind == KindSpan && ev.Cat == CatCompile && ev.Name == "compile":
		f.observeCompileLocked(ev)
	case ev.Kind == KindInstant && ev.Cat == CatFault:
		f.episodeLocked("fault-injected", ev.Name)
	}
	f.mu.Unlock()
}

// observeCompileLocked maintains the rolling window and fires the p99
// trigger. Called with f.mu held.
func (f *FlightRecorder) observeCompileLocked(ev Event) {
	n := f.durNext
	if f.durWrap {
		n = len(f.durs)
	}
	if f.cooldown > 0 {
		f.cooldown--
	}
	if n >= f.minSamples && f.cooldown == 0 && ev.Dur > f.p99Locked(n) {
		f.episodeLocked("compile-p99", fmt.Sprintf("%s dur=%dns span=%d", ev.Name, ev.Dur, ev.ID))
		f.cooldown = f.minSamples
	}
	f.durs[f.durNext] = ev.Dur
	f.durNext++
	if f.durNext == len(f.durs) {
		f.durNext = 0
		f.durWrap = true
	}
}

// p99Locked computes the window's 99th percentile over its first n
// filled slots. Called with f.mu held; compiles are rare enough that
// the copy+sort is negligible next to the compile itself.
func (f *FlightRecorder) p99Locked(n int) int64 {
	w := make([]int64, n)
	copy(w, f.durs[:n])
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	return w[(n-1)*99/100]
}

// TriggerEpisode declares an external anomaly episode and dumps the
// current ring. Returns the dump path ("" on a nil recorder or failed
// write). Never debounced: one call, one episode.
func (f *FlightRecorder) TriggerEpisode(reason, detail string) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.episodeLocked(reason, detail)
}

// episodeLocked records an episode and dumps the ring to disk. Called
// with f.mu held.
func (f *FlightRecorder) episodeLocked(reason, detail string) string {
	f.seq++
	ep := Episode{Seq: f.seq, Reason: reason, Detail: detail}
	evs := f.eventsLocked()
	ep.Events = len(evs)
	path := filepath.Join(f.dir, fmt.Sprintf("ep%04d-%s.trace.json", f.seq, sanitizeReason(reason)))
	if err := SaveChromeTrace(path, evs); err != nil {
		f.dumpErr = err
	} else {
		ep.Path = path
	}
	f.episodes = append(f.episodes, ep)
	if len(f.episodes) > 4096 {
		f.episodes = f.episodes[len(f.episodes)-4096:]
	}
	f.enforceBoundsLocked()
	return ep.Path
}

// eventsLocked returns the retained ring contents in recording order.
func (f *FlightRecorder) eventsLocked() []Event {
	if !f.wrap {
		out := make([]Event, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]Event, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// enforceBoundsLocked deletes oldest dump files until both the count
// and total-byte bounds hold.
func (f *FlightRecorder) enforceBoundsLocked() {
	type onDisk struct {
		idx  int
		size int64
	}
	var files []onDisk
	var total int64
	for i := range f.episodes {
		if f.episodes[i].Path == "" {
			continue
		}
		st, err := os.Stat(f.episodes[i].Path)
		if err != nil {
			f.episodes[i].Path = ""
			continue
		}
		files = append(files, onDisk{i, st.Size()})
		total += st.Size()
	}
	for len(files) > 0 && (len(files) > f.maxDumps || total > f.maxBytes) {
		victim := files[0]
		os.Remove(f.episodes[victim.idx].Path)
		f.episodes[victim.idx].Path = ""
		total -= victim.size
		files = files[1:]
	}
}

// Episodes returns every declared episode in order.
func (f *FlightRecorder) Episodes() []Episode {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Episode, len(f.episodes))
	copy(out, f.episodes)
	return out
}

// Err returns the most recent dump failure, if any.
func (f *FlightRecorder) Err() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpErr
}

// sanitizeReason maps an episode reason into a safe filename fragment.
func sanitizeReason(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '-' || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "episode"
	}
	return b.String()
}

// MultiSink fans one event stream out to several sinks — e.g. a Ring
// for always-on tail export plus a FlightRecorder for episode dumps.
type MultiSink []Sink

// Record implements Sink.
func (m MultiSink) Record(ev Event) {
	for _, s := range m {
		if s != nil {
			s.Record(ev)
		}
	}
}

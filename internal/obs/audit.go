package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Verdict classifies one audit event.
type Verdict string

// Audit verdicts. The first three are JITBULL go/no-go decisions (one per
// policy-observed compilation); the rest are compilation-supervisor
// transitions.
const (
	VerdictGo           Verdict = "go"            // compile proceeds unmodified
	VerdictDisablePass  Verdict = "disable-pass"  // matched passes disabled, recompile
	VerdictNoJIT        Verdict = "nojit"         // matched pass mandatory: JIT denied
	VerdictCompileError Verdict = "compile-error" // supervised compile failure
	VerdictQuarantine   Verdict = "quarantine"    // failed function parked with backoff
	VerdictRequalify    Verdict = "requalify"     // quarantined function re-promoted
	VerdictPermanent    Verdict = "permanent"     // function pinned to the interpreter
	VerdictAnomaly      Verdict = "anomaly"       // watchdog detector fired
)

// AuditMatch is one DNA similarity behind a verdict, with full
// attribution: the CVE, the VDC function whose DNA matched, the
// optimization pass, and the interned chain that witnessed the match
// (both the process-local ID and its portable string rendering).
type AuditMatch struct {
	CVE     string `json:"cve"`
	VDCFunc string `json:"vdc_func"`
	Pass    string `json:"pass"`
	ChainID uint32 `json:"chain_id"`
	Side    string `json:"side,omitempty"`  // "removed" or "added"
	Chain   string `json:"chain,omitempty"` // "→"-joined chain rendering
}

// AuditEvent is one structured audit record.
type AuditEvent struct {
	Seq            uint64       `json:"seq"`
	TimeUnixNs     int64        `json:"time_unix_ns"`
	Func           string       `json:"func"`
	Verdict        Verdict      `json:"verdict"`
	DisabledPasses []string     `json:"disabled_passes,omitempty"`
	Matches        []AuditMatch `json:"matches,omitempty"`
	Stage          string       `json:"stage,omitempty"`  // compile stage (supervisor events)
	Reason         string       `json:"reason,omitempty"` // error text (supervisor events)
}

// String renders the event as one report line.
func (ev AuditEvent) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "#%-4d %-13s %s", ev.Seq, ev.Verdict, ev.Func)
	if len(ev.DisabledPasses) > 0 {
		fmt.Fprintf(&sb, " disabled=[%s]", strings.Join(ev.DisabledPasses, ","))
	}
	for _, m := range ev.Matches {
		fmt.Fprintf(&sb, " match{%s %s/%s chain#%d}", m.CVE, m.VDCFunc, m.Pass, m.ChainID)
	}
	if ev.Stage != "" {
		fmt.Fprintf(&sb, " stage=%s", ev.Stage)
	}
	if ev.Reason != "" {
		fmt.Fprintf(&sb, " reason=%q", ev.Reason)
	}
	return sb.String()
}

// AuditLog collects audit events in memory and, when constructed over a
// writer, streams each event as one JSON line (JSONL). A nil *AuditLog is
// the disabled log: Record is a no-op costing one nil check.
type AuditLog struct {
	mu     sync.Mutex
	w      io.Writer
	events []AuditEvent
	seq    uint64
	werr   error
}

// NewAuditLog returns a log. w may be nil for in-memory-only operation.
func NewAuditLog(w io.Writer) *AuditLog { return &AuditLog{w: w} }

// Record stamps (sequence, wall time) and stores/streams the event.
func (l *AuditLog) Record(ev AuditEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	if ev.TimeUnixNs == 0 {
		ev.TimeUnixNs = time.Now().UnixNano()
	}
	l.events = append(l.events, ev)
	if l.w != nil && l.werr == nil {
		data, err := json.Marshal(ev)
		if err == nil {
			data = append(data, '\n')
			_, err = l.w.Write(data)
		}
		l.werr = err
	}
}

// Events returns a copy of every recorded event, in order.
func (l *AuditLog) Events() []AuditEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditEvent, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *AuditLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// WriteErr returns the first error encountered streaming JSONL, if any.
func (l *AuditLog) WriteErr() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.werr
}

// ReadAudit decodes a JSONL audit stream (as written by an AuditLog over
// a file). Blank lines are skipped; a malformed line fails with its
// 1-based line number.
func ReadAudit(r io.Reader) ([]AuditEvent, error) {
	var out []AuditEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev AuditEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("audit line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAuditFile decodes a JSONL audit file.
func ReadAuditFile(path string) ([]AuditEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAudit(f)
}

package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// --- Ring under concurrent writers -----------------------------------------

func TestRingConcurrentWritersWraparound(t *testing.T) {
	const (
		cap     = 64
		writers = 8
		each    = 100
	)
	r := NewRing(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(Event{Kind: KindInstant, Cat: CatEngine, Name: fmt.Sprintf("w%d-%d", w, i), TS: int64(i)})
			}
		}(w)
	}
	wg.Wait()

	if got := r.Total(); got != writers*each {
		t.Fatalf("Total = %d, want %d", got, writers*each)
	}
	if got := r.Len(); got != cap {
		t.Fatalf("Len = %d, want %d (wrapped ring keeps exactly its capacity)", got, cap)
	}
	if got := r.Dropped(); got != writers*each-cap {
		t.Fatalf("Dropped = %d, want %d", got, writers*each-cap)
	}
	evs := r.Events()
	if len(evs) != cap {
		t.Fatalf("Events returned %d, want %d", len(evs), cap)
	}
	for i, ev := range evs {
		// Every retained slot must hold a complete event, never a torn or
		// zero-valued one: interleaved writers may not corrupt entries.
		if !strings.HasPrefix(ev.Name, "w") || ev.Cat != CatEngine {
			t.Fatalf("event %d is torn or zero: %+v", i, ev)
		}
	}
}

// --- Chrome exporter edge cases --------------------------------------------

func TestChromeExportZeroEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.TraceEvents == nil {
		t.Fatalf("traceEvents must be an empty array, not null: %s", buf.String())
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("traceEvents has %d entries, want 0", len(out.TraceEvents))
	}
}

func TestChromeExportTruncatedRing(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.Record(Event{Kind: KindInstant, Cat: CatEngine, Name: fmt.Sprintf("ev%d", i), TS: int64(i * 1000)})
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out.TraceEvents) != 8 {
		t.Fatalf("exported %d events from a truncated ring, want 8", len(out.TraceEvents))
	}
	// The newest 8 survive (ev12..ev19), in monotonic timestamp order.
	for i, ce := range out.TraceEvents {
		if want := fmt.Sprintf("ev%d", 12+i); ce.Name != want {
			t.Fatalf("event %d = %q, want %q", i, ce.Name, want)
		}
		if i > 0 && ce.TS < out.TraceEvents[i-1].TS {
			t.Fatalf("timestamps not monotonic at %d", i)
		}
	}
}

func TestChromeExportOverMaxArgsSpan(t *testing.T) {
	ring := NewRing(4)
	tr := NewTracer(ring)
	sp := tr.Begin(CatCompile, "compile")
	sp.End(
		I("a", 1), I("b", 2), I("c", 3), I("d", 4),
		I("overflow1", 5), S("overflow2", "dropped"),
	)
	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	if evs[0].NArgs != MaxArgs {
		t.Fatalf("NArgs = %d, want %d (extras past MaxArgs must be dropped, not corrupt)", evs[0].NArgs, MaxArgs)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	args := out.TraceEvents[0].Args
	for _, k := range []string{"a", "b", "c", "d", "span_id"} {
		if _, ok := args[k]; !ok {
			t.Fatalf("exported args missing %q: %v", k, args)
		}
	}
	for _, k := range []string{"overflow1", "overflow2"} {
		if _, ok := args[k]; ok {
			t.Fatalf("dropped arg %q leaked into export: %v", k, args)
		}
	}
}

// --- Exemplar-linked histograms --------------------------------------------

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("compile.ns", []int64{100, 1000})

	h.ObserveEx(50, 7)    // bucket 0
	h.ObserveEx(40, 8)    // bucket 0, smaller: must NOT replace the exemplar
	h.ObserveEx(60, 9)    // bucket 0, larger: must replace
	h.ObserveEx(500, 11)  // bucket 1
	h.ObserveEx(5000, 0)  // +Inf bucket, spanID 0: counted but no exemplar
	h.ObserveEx(7000, 13) // +Inf bucket

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Exemplars == nil {
		t.Fatalf("snapshot has no exemplars despite span-linked observations")
	}
	if got := s.Exemplars[0]; got.SpanID != 9 || got.Value != 60 {
		t.Fatalf("bucket 0 exemplar = %+v, want span 9 value 60", got)
	}
	if got := s.Exemplars[1]; got.SpanID != 11 || got.Value != 500 {
		t.Fatalf("bucket 1 exemplar = %+v, want span 11 value 500", got)
	}
	if got := s.Exemplars[2]; got.SpanID != 13 || got.Value != 7000 {
		t.Fatalf("+Inf exemplar = %+v, want span 13 value 7000", got)
	}

	// Plain Observe keeps working and never writes an exemplar.
	h2 := reg.Histogram("plain", []int64{10})
	h2.Observe(5)
	if s2 := h2.Snapshot(); s2.Exemplars != nil {
		t.Fatalf("plain Observe produced exemplars: %+v", s2.Exemplars)
	}
}

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("store.hits").Add(3)
	reg.Gauge("watchdog.healthy").Set(1)
	h := reg.Histogram("compile.ns", []int64{100, 1000})
	h.ObserveEx(60, 42)
	h.ObserveEx(500, 7)
	h.ObserveEx(9000, 9)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE store_hits counter",
		"store_hits 3",
		"# TYPE watchdog_healthy gauge",
		"watchdog_healthy 1",
		"# TYPE compile_ns histogram",
		`compile_ns_bucket{le="100"} 1 # {span_id="42"} 60`,
		`compile_ns_bucket{le="1000"} 2 # {span_id="7"} 500`,
		`compile_ns_bucket{le="+Inf"} 3 # {span_id="9"} 9000`,
		"compile_ns_sum 9560",
		"compile_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteProm output missing %q:\n%s", want, out)
		}
	}

	// Nil registry writes nothing and does not error.
	var nilBuf bytes.Buffer
	var nilReg *Registry
	if err := nilReg.WriteProm(&nilBuf); err != nil || nilBuf.Len() != 0 {
		t.Fatalf("nil WriteProm: err=%v len=%d", err, nilBuf.Len())
	}
}

// --- Tier-journey journal ---------------------------------------------------

func TestJournalRecordWrapRenderRoundTrip(t *testing.T) {
	j := NewJournal(4)
	j.Record("hot", StageInterp, "interp", "first call")
	j.Record("hot", StageWarm, "baseline", "calls=4")
	j.Record("hot", StageCompiled, "baseline", "ok: inline")
	j.Record("hot", StageInstalled, "ion", "source=inline ops=9")
	j.Record("hot", StageDeopt, "ion", "exit=0 deopts=1") // evicts the oldest
	j.Record("cold", StageInterp, "interp", "first call")

	if got := j.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := j.Funcs(); len(got) != 2 || got[0] != "cold" || got[1] != "hot" {
		t.Fatalf("Funcs = %v", got)
	}
	evs := j.Events("hot")
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4 (cap)", len(evs))
	}
	if evs[0].Stage != StageWarm || evs[3].Stage != StageDeopt {
		t.Fatalf("wrong retained window: first=%s last=%s", evs[0].Stage, evs[3].Stage)
	}
	if j.Dropped("hot") != 1 {
		t.Fatalf("Dropped = %d, want 1", j.Dropped("hot"))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq || evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order at %d: %+v then %+v", i, evs[i-1], evs[i])
		}
	}

	tl := j.RenderTimeline("hot")
	for _, want := range []string{"hot — 4 event(s) (+1 dropped)", "deopt", "tier=ion", "exit=0 deopts=1"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
	if j.RenderTimeline("unknown") != "" {
		t.Fatalf("unknown function rendered a timeline")
	}

	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := DecodeJourney(&buf)
	if err != nil {
		t.Fatalf("DecodeJourney: %v", err)
	}
	if back.Total() != 6 {
		t.Fatalf("decoded Total = %d, want 6", back.Total())
	}
	bevs := back.Events("hot")
	if len(bevs) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(bevs), len(evs))
	}
	for i := range evs {
		if bevs[i] != evs[i] {
			t.Fatalf("event %d changed across the round trip:\n got %+v\nwant %+v", i, bevs[i], evs[i])
		}
	}
}

func TestJournalNilAndDisabled(t *testing.T) {
	var j *Journal
	j.Record("f", StageInterp, "interp", "x") // must not panic
	if j.Total() != 0 || j.Funcs() != nil || j.Events("f") != nil || j.Dropped("f") != 0 {
		t.Fatalf("nil journal is not inert")
	}
	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil || buf.String() != "{}\n" {
		t.Fatalf("nil WriteJSON = %q, %v", buf.String(), err)
	}
	if j.RenderTimeline("f") != "" || j.RenderAll() != "" {
		t.Fatalf("nil journal rendered output")
	}
}

// --- Flight recorder ---------------------------------------------------------

func flightFor(t *testing.T, opts FlightOptions) *FlightRecorder {
	t.Helper()
	return NewFlightRecorder(t.TempDir(), opts)
}

func TestFlightRecorderP99TriggerWithCooldown(t *testing.T) {
	f := flightFor(t, FlightOptions{MinSamples: 8, RingCapacity: 32})
	compile := func(dur int64) {
		f.Record(Event{Kind: KindSpan, Cat: CatCompile, Name: "compile", Dur: dur, ID: 1})
	}
	for i := 0; i < 8; i++ {
		compile(1000)
	}
	if n := len(f.Episodes()); n != 0 {
		t.Fatalf("episodes before the trigger armed: %d", n)
	}
	compile(50_000) // far over the rolling p99 → one episode
	eps := f.Episodes()
	if len(eps) != 1 || eps[0].Reason != "compile-p99" {
		t.Fatalf("episodes = %+v, want one compile-p99", eps)
	}
	if eps[0].Path == "" {
		t.Fatalf("episode has no dump path (dump error: %v)", f.Err())
	}
	if _, err := os.Stat(eps[0].Path); err != nil {
		t.Fatalf("dump file missing: %v", err)
	}
	// Cooldown: an immediate second outlier must not double-fire.
	compile(60_000)
	if n := len(f.Episodes()); n != 1 {
		t.Fatalf("cooldown violated: %d episodes", n)
	}
}

func TestFlightRecorderFaultTrigger(t *testing.T) {
	f := flightFor(t, FlightOptions{RingCapacity: 16})
	f.Record(Event{Kind: KindInstant, Cat: CatFault, Name: "fault.injected"})
	eps := f.Episodes()
	if len(eps) != 1 || eps[0].Reason != "fault-injected" || eps[0].Detail != "fault.injected" {
		t.Fatalf("episodes = %+v, want one fault-injected", eps)
	}
}

func TestFlightRecorderExternalTriggerAndBounds(t *testing.T) {
	f := flightFor(t, FlightOptions{MaxDumps: 2, RingCapacity: 8})
	f.Record(Event{Kind: KindInstant, Cat: CatEngine, Name: "context"})
	for i := 0; i < 4; i++ {
		if p := f.TriggerEpisode("deopt-storm", fmt.Sprintf("burst %d", i)); p == "" {
			t.Fatalf("external trigger %d produced no dump: %v", i, f.Err())
		}
	}
	eps := f.Episodes()
	if len(eps) != 4 {
		t.Fatalf("external triggers must never be debounced: got %d episodes", len(eps))
	}
	onDisk := 0
	for _, ep := range eps {
		if ep.Path == "" {
			continue
		}
		if _, err := os.Stat(ep.Path); err != nil {
			t.Fatalf("episode path %s missing: %v", ep.Path, err)
		}
		onDisk++
	}
	if onDisk != 2 {
		t.Fatalf("%d dumps on disk, want MaxDumps=2 (oldest deleted first)", onDisk)
	}
	// The survivors are the two newest.
	if eps[0].Path != "" || eps[1].Path != "" || eps[2].Path == "" || eps[3].Path == "" {
		t.Fatalf("wrong eviction order: %+v", eps)
	}
	if f.Err() != nil {
		t.Fatalf("dump error: %v", f.Err())
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(Event{Kind: KindInstant, Cat: CatFault})
	if f.TriggerEpisode("x", "y") != "" || f.Episodes() != nil || f.Err() != nil {
		t.Fatalf("nil flight recorder is not inert")
	}
}

// --- Watchdog ----------------------------------------------------------------

func TestWatchdogIntrinsicAnomaliesAndHealthRecovery(t *testing.T) {
	reg := NewRegistry()
	audit := NewAuditLog(nil)
	w := NewWatchdog(WatchdogOptions{Metrics: reg, Audit: audit, RecoverAfter: 3})

	if st, _ := w.Health(); st != HealthReady {
		t.Fatalf("initial health = %s", st)
	}
	w.Signal(Signal{Kind: SigQueueSaturated, Func: "hot", Cause: "inline fallback"})
	w.Signal(Signal{Kind: SigStoreCorrupt, Func: "abcd", Cause: "checksum mismatch"})

	an := w.Anomalies()
	if len(an) != 2 || an[0].Detector != "queue-saturation" || an[1].Detector != "store-corruption" {
		t.Fatalf("anomalies = %+v", an)
	}
	if st, why := w.Health(); st != HealthDegraded || why == "" {
		t.Fatalf("health after anomalies = %s (%q)", st, why)
	}
	if got := reg.Gauge("watchdog.healthy").Value(); got != 0 {
		t.Fatalf("watchdog.healthy gauge = %d, want 0", got)
	}
	// Each intrinsic anomaly produced exactly one audit event.
	anomalyEvents := 0
	for _, ev := range audit.Events() {
		if ev.Verdict == VerdictAnomaly {
			anomalyEvents++
		}
	}
	if anomalyEvents != 2 {
		t.Fatalf("audit has %d anomaly events, want 2 (1:1 accounting)", anomalyEvents)
	}

	// Recovery after RecoverAfter consecutive clean signals.
	for i := 0; i < 2; i++ {
		w.Signal(Signal{Kind: SigCompile, Value: 1000})
		if st, _ := w.Health(); st != HealthDegraded {
			t.Fatalf("recovered after only %d clean signals", i+1)
		}
	}
	w.Signal(Signal{Kind: SigCompile, Value: 1000})
	if st, _ := w.Health(); st != HealthReady {
		t.Fatalf("did not recover after RecoverAfter clean signals")
	}
	if got := reg.Gauge("watchdog.healthy").Value(); got != 1 {
		t.Fatalf("watchdog.healthy gauge = %d after recovery, want 1", got)
	}
}

func TestWatchdogDeoptStormDetector(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{Detectors: []Detector{NewDeoptStormDetector(4)}})
	for i := 0; i < 3; i++ {
		w.Signal(Signal{Kind: SigDeopt, Func: "hot"})
	}
	if n := len(w.Anomalies()); n != 0 {
		t.Fatalf("fired after %d deopts (threshold 4): %d anomalies", 3, n)
	}
	w.Signal(Signal{Kind: SigDeopt, Func: "hot"})
	an := w.Anomalies()
	if len(an) != 1 || an[0].Detector != "deopt-storm" || an[0].Func != "hot" {
		t.Fatalf("anomalies = %+v", an)
	}
	// Per-function counting: another function's deopts start from zero,
	// and the fired function's counter reset.
	w.Signal(Signal{Kind: SigDeopt, Func: "other"})
	for i := 0; i < 3; i++ {
		w.Signal(Signal{Kind: SigDeopt, Func: "hot"})
	}
	if n := len(w.Anomalies()); n != 1 {
		t.Fatalf("storm counter did not reset: %d anomalies", n)
	}
}

func TestWatchdogQuarantineSpikeTriggersFlightEpisode(t *testing.T) {
	f := flightFor(t, FlightOptions{RingCapacity: 8})
	w := NewWatchdog(WatchdogOptions{Flight: f, Detectors: []Detector{NewQuarantineSpikeDetector(2, 100)}})
	w.Signal(Signal{Kind: SigQuarantine, Func: "a", Cause: "storm"})
	// First quarantine: below the spike → episode context, no anomaly.
	if n := len(w.Anomalies()); n != 0 {
		t.Fatalf("spike fired on a single quarantine")
	}
	if n := len(f.Episodes()); n != 1 {
		t.Fatalf("quarantine did not trigger a context episode: %d", n)
	}
	w.Signal(Signal{Kind: SigQuarantine, Func: "b", Cause: "storm"})
	an := w.Anomalies()
	if len(an) != 1 || an[0].Detector != "quarantine-spike" {
		t.Fatalf("anomalies = %+v", an)
	}
	// The anomaly itself also dumps an episode (context + anomaly = 3).
	if n := len(f.Episodes()); n != 3 {
		t.Fatalf("episodes = %d, want 3 (two quarantine contexts + one anomaly)", n)
	}
}

func TestWatchdogSeedProbe(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{Detectors: []Detector{}})
	var probed []string
	w.SetSeedProbe(func(detail string) error {
		probed = append(probed, detail)
		if strings.HasPrefix(detail, "deopt:") {
			return errors.New("seeded fault")
		}
		if strings.HasPrefix(detail, "quarantine:") {
			panic("seeded panic")
		}
		return nil
	})
	w.Signal(Signal{Kind: SigCompile, Func: "f"})    // clean
	w.Signal(Signal{Kind: SigDeopt, Func: "f"})      // seeded error
	w.Signal(Signal{Kind: SigQuarantine, Func: "g"}) // seeded panic, contained
	if len(probed) != 3 {
		t.Fatalf("probe ran %d times, want once per signal", len(probed))
	}
	if probed[1] != "deopt:f" || probed[2] != "quarantine:g" {
		t.Fatalf("probe details = %v", probed)
	}
	an := w.Anomalies()
	if len(an) != 2 {
		t.Fatalf("anomalies = %+v, want 2 seeded", an)
	}
	for _, a := range an {
		if a.Detector != "seeded" {
			t.Fatalf("anomaly not attributed to the seed probe: %+v", a)
		}
	}
	if !strings.Contains(an[1].Reason, "seeded panic") {
		t.Fatalf("panic not contained into an anomaly: %+v", an[1])
	}
}

func TestWatchdogNil(t *testing.T) {
	var w *Watchdog
	w.Signal(Signal{Kind: SigDeopt})
	w.SetSeedProbe(func(string) error { return nil })
	if st, why := w.Health(); st != HealthReady || why != "" {
		t.Fatalf("nil watchdog health = %s %q", st, why)
	}
	if w.Anomalies() != nil || w.Summary() != "" {
		t.Fatalf("nil watchdog is not inert")
	}
}

// --- Ops server --------------------------------------------------------------

func TestOpsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("store.hits").Add(5)
	audit := NewAuditLog(nil)
	j := NewJournal(0)
	j.Record("hot", StageInterp, "interp", "first call")
	f := NewFlightRecorder(t.TempDir(), FlightOptions{RingCapacity: 8})
	w := NewWatchdog(WatchdogOptions{Metrics: reg, Audit: audit, Flight: f})
	mux := NewOpsMux(OpsState{Reg: reg, Audit: audit, Watchdog: w, Journal: j, Flight: f})

	get := func(path string) (int, string, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String(), rec.Header().Get("Content-Type")
	}

	if code, body, ct := get("/metrics.prom"); code != 200 ||
		!strings.Contains(body, "store_hits 5") ||
		!strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics.prom: code=%d ct=%q body=%q", code, ct, body)
	}
	if code, body, _ := get("/healthz"); code != 200 || body != "ready\n" {
		t.Fatalf("/healthz ready: code=%d body=%q", code, body)
	}

	w.Signal(Signal{Kind: SigStoreCorrupt, Func: "k", Cause: "bad checksum"})
	if code, body, _ := get("/healthz"); code != 503 || !strings.Contains(body, "degraded") ||
		!strings.Contains(body, "store-corruption") {
		t.Fatalf("/healthz degraded: code=%d body=%q", code, body)
	}

	if code, body, _ := get("/journey.json"); code != 200 || !strings.Contains(body, `"hot"`) {
		t.Fatalf("/journey.json: code=%d body=%q", code, body)
	}
	code, body, _ := get("/flight.json")
	if code != 200 {
		t.Fatalf("/flight.json code=%d", code)
	}
	var eps []Episode
	if err := json.Unmarshal([]byte(body), &eps); err != nil {
		t.Fatalf("/flight.json not an episode list: %v\n%s", err, body)
	}
	if len(eps) != 1 || eps[0].Reason != "store-corruption" {
		t.Fatalf("/flight.json episodes = %+v", eps)
	}
	if eps[0].Path != "" {
		if _, err := os.Stat(filepath.Clean(eps[0].Path)); err != nil {
			t.Fatalf("episode dump missing: %v", err)
		}
	}
}

func TestOpsServerNilState(t *testing.T) {
	mux := NewOpsMux(OpsState{})
	for _, path := range []string{"/metrics", "/metrics.json", "/metrics.prom", "/healthz", "/audit.json", "/journey.json", "/flight.json"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s with all-nil state: code=%d", path, rec.Code)
		}
	}
}

// Package obs is the runtime observability layer of the jitbull engine:
// structured compile-lifecycle tracing, an atomic metrics registry, and a
// policy-decision audit log. It is dependency-free (standard library only)
// and designed around a nil-is-off fast path: every entry point is a
// method on a pointer receiver that tolerates a nil receiver, so the
// instrumented compile path pays exactly one predictable nil check when
// observability is disabled — no interface dispatch, no allocation.
//
// The three sub-layers:
//
//   - Tracer (this file, ring.go, chrome.go): span events for the compile
//     lifecycle (mirbuild → each optimization pass → DNA extraction →
//     go/no-go decision → lir → regalloc → native install), recorded into
//     a Sink (typically a Ring) and exportable as Chrome trace_event JSON
//     that opens directly in chrome://tracing or Perfetto.
//   - Registry (metrics.go): named atomic counters, gauges, and
//     fixed-bucket histograms with JSON and expvar-style text encoders,
//     servable over HTTP next to net/http/pprof (server.go).
//   - AuditLog (audit.go): every JITBULL go/no-go verdict and supervisor
//     transition as a structured, JSONL-persistable event.
package obs

import (
	"sync/atomic"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds. A KindSpan is a complete span (Chrome phase "X"); a
// KindInstant is a point-in-time marker (Chrome phase "i").
const (
	KindSpan Kind = iota
	KindInstant
)

// String renders the kind for reports and golden files.
func (k Kind) String() string {
	if k == KindInstant {
		return "instant"
	}
	return "span"
}

// Trace event categories used across the engine. Categories group spans
// into chrome://tracing tracks and make golden tests self-describing.
const (
	CatCompile = "compile" // whole-compilation and stage spans
	CatPass    = "pass"    // one optimization pass execution
	CatDNA     = "dna"     // JITBULL DNA extraction (per-pass observer)
	CatPolicy  = "jitbull" // go/no-go decision
	CatEngine  = "engine"  // tiering, dispatch, bailouts
	CatFault   = "fault"   // fault-injection framework events
	CatStore   = "store"   // persistent artifact store I/O
)

// MaxArgs is the fixed per-event argument capacity. Events carry their
// arguments inline so recording a span never allocates.
const MaxArgs = 4

// Arg is one key/value annotation on an event: either an int64 or a
// string payload.
type Arg struct {
	Key   string
	Val   int64
	Str   string
	IsStr bool
}

// I builds an integer argument.
func I(key string, v int64) Arg { return Arg{Key: key, Val: v} }

// S builds a string argument.
func S(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Event is one recorded trace event. Timestamps are nanoseconds since the
// tracer's epoch and are monotonic (taken from Go's monotonic clock).
type Event struct {
	Kind  Kind
	Cat   string
	Name  string
	ID    uint64 // span ID (0 for instants and pre-ID traces)
	TS    int64  // start time, ns since tracer epoch
	Dur   int64  // span duration in ns (0 for instants)
	NArgs int
	Args  [MaxArgs]Arg
}

// Sink receives recorded events. Implementations must be safe for
// concurrent use (parallel experiment cells may share one tracer).
type Sink interface {
	Record(Event)
}

// Tracer stamps and routes events into a Sink. A nil *Tracer is the
// disabled tracer: every method is a no-op costing one nil check, which
// is the production fast path (benchmarked in BENCH_obs.json).
type Tracer struct {
	sink  Sink
	epoch time.Time
	seq   atomic.Uint64 // span ID sequence; IDs are unique per tracer
	drops atomic.Int64  // events discarded because the sink was nil
}

// NewTracer returns a tracer recording into sink with its epoch at now.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// now returns nanoseconds since the epoch. time.Since reads the monotonic
// clock, so successive calls never go backwards.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// record stamps nothing (the caller did) and routes the event.
func (t *Tracer) record(ev Event) {
	if t.sink == nil {
		t.drops.Add(1)
		return
	}
	t.sink.Record(ev)
}

// Span is an in-flight span handle, returned by value so the disabled
// path allocates nothing. The zero Span (from a nil tracer) is inert.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	id    uint64
	start int64
}

// Begin opens a span. On a nil tracer it returns the inert zero Span.
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, id: t.seq.Add(1), start: t.now()}
}

// Active reports whether the span will record on End.
func (s Span) Active() bool { return s.t != nil }

// ID returns the span's tracer-unique ID (0 for the inert zero Span).
// Exemplar-linked histograms store this ID so a p99 outlier bucket can
// be followed back to the retained trace event that produced it.
func (s Span) ID() uint64 { return s.id }

// End closes the span and records it with up to MaxArgs annotations
// (extras are dropped). Safe on the zero Span.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	ev := Event{Kind: KindSpan, Cat: s.cat, Name: s.name, ID: s.id, TS: s.start, Dur: s.t.now() - s.start}
	for _, a := range args {
		if ev.NArgs == MaxArgs {
			break
		}
		ev.Args[ev.NArgs] = a
		ev.NArgs++
	}
	s.t.record(ev)
}

// EndErr closes the span annotated with an error outcome.
func (s Span) EndErr(err error) {
	if s.t == nil {
		return
	}
	if err != nil {
		s.End(S("error", err.Error()))
		return
	}
	s.End()
}

// Instant records a point-in-time event. Safe on a nil tracer.
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	ev := Event{Kind: KindInstant, Cat: cat, Name: name, TS: t.now()}
	for _, a := range args {
		if ev.NArgs == MaxArgs {
			break
		}
		ev.Args[ev.NArgs] = a
		ev.NArgs++
	}
	t.record(ev)
}

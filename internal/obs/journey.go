package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tier-journey stages. Each one is a waypoint in a function's life under
// the tiering engine; the ordered stream of stages for one function is
// its "journey" — the after-the-fact answer to "why is this function in
// this tier, and what happened to it along the way?".
const (
	StageInterp      = "interp"      // first execution in the interpreter
	StageWarm        = "warm"        // crossed the baseline threshold
	StageEnqueued    = "enqueued"    // compile request handed to the jitqueue
	StageCompiled    = "compiled"    // pipeline produced an artifact (or failed)
	StageInstalled   = "installed"   // artifact installed at a safe point
	StageTier        = "tier"        // top-tier attribution: which executor serves the artifact
	StageOSREntry    = "osr-entry"   // mid-loop transfer onto compiled code
	StageDeopt       = "deopt"       // guard failure, back to a lower tier
	StageRequalified = "requalified" // quarantine/storm lifted, eligible again
	StageQuarantined = "quarantined" // supervisor quarantined the function
	StagePermanent   = "permanent"   // permanently pinned to the interpreter
	StageCacheHit    = "cache-hit"   // artifact served from the in-memory cache
	StageStoreHit    = "store-hit"   // artifact served from the persistent store
	StageBailout     = "bailout"     // runtime bailout during JIT execution
)

// JourneyEvent is one recorded waypoint. TS is nanoseconds since the
// journal's epoch, monotonic.
type JourneyEvent struct {
	Seq   uint64 `json:"seq"`
	TS    int64  `json:"ts_ns"`
	Func  string `json:"func"`
	Stage string `json:"stage"`
	Tier  string `json:"tier,omitempty"`  // tier after this event
	Cause string `json:"cause,omitempty"` // free-form cause/detail
}

// funcJourney is one function's bounded event history: a drop-oldest
// ring so a deopt-storming function cannot grow the journal unboundedly.
type funcJourney struct {
	evs     []JourneyEvent // ring storage, cap = Journal cap
	next    int            // next write slot
	wrapped bool
	dropped int64
}

func (f *funcJourney) ordered() []JourneyEvent {
	if !f.wrapped {
		out := make([]JourneyEvent, len(f.evs))
		copy(out, f.evs)
		return out
	}
	out := make([]JourneyEvent, 0, len(f.evs))
	out = append(out, f.evs[f.next:]...)
	out = append(out, f.evs[:f.next]...)
	return out
}

// Journal records per-function tier-journey events. A nil *Journal is
// the disabled journal: Record costs one nil check, matching the
// package's nil-is-off convention. All methods are safe for concurrent
// use; recording takes one mutex (journey waypoints are rare events —
// tier transitions, not per-call work).
type Journal struct {
	mu    sync.Mutex
	epoch time.Time
	funcs map[string]*funcJourney
	capPF int
	seq   uint64
	total int64
}

// DefaultJourneyCap is the per-function event retention bound.
const DefaultJourneyCap = 256

// NewJournal returns a journal retaining at most capPerFunc events per
// function (oldest dropped first); capPerFunc <= 0 uses the default.
func NewJournal(capPerFunc int) *Journal {
	if capPerFunc <= 0 {
		capPerFunc = DefaultJourneyCap
	}
	return &Journal{epoch: time.Now(), funcs: map[string]*funcJourney{}, capPF: capPerFunc}
}

// Record appends one waypoint for fn. Safe on a nil journal.
func (j *Journal) Record(fn, stage, tier, cause string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	f := j.funcs[fn]
	if f == nil {
		f = &funcJourney{}
		j.funcs[fn] = f
	}
	j.seq++
	j.total++
	ev := JourneyEvent{Seq: j.seq, TS: int64(time.Since(j.epoch)), Func: fn, Stage: stage, Tier: tier, Cause: cause}
	if len(f.evs) < j.capPF {
		f.evs = append(f.evs, ev)
		return
	}
	f.evs[f.next] = ev
	f.next = (f.next + 1) % len(f.evs)
	f.wrapped = true
	f.dropped++
}

// Total returns the number of events ever recorded.
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Funcs returns the journaled function names, sorted.
func (j *Journal) Funcs() []string {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.funcs))
	for fn := range j.funcs {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// Events returns fn's retained waypoints in order (nil if unknown).
func (j *Journal) Events(fn string) []JourneyEvent {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	f := j.funcs[fn]
	if f == nil {
		return nil
	}
	return f.ordered()
}

// Dropped returns how many of fn's oldest events were evicted by the
// per-function retention bound.
func (j *Journal) Dropped(fn string) int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if f := j.funcs[fn]; f != nil {
		return f.dropped
	}
	return 0
}

// journeyJSON is the wire shape of WriteJSON.
type journeyJSON struct {
	Funcs map[string][]JourneyEvent `json:"funcs"`
	Total int64                     `json:"total"`
}

// WriteJSON encodes every function's retained journey as one JSON object.
func (j *Journal) WriteJSON(w io.Writer) error {
	if j == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	j.mu.Lock()
	out := journeyJSON{Funcs: make(map[string][]JourneyEvent, len(j.funcs)), Total: j.total}
	for fn, f := range j.funcs {
		out.Funcs[fn] = f.ordered()
	}
	j.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeJourney parses a WriteJSON dump back into a render-capable
// Journal: Funcs/Events/Render* work on the decoded copy. Per-function
// drop counts are not part of the wire shape and read as zero.
func DecodeJourney(r io.Reader) (*Journal, error) {
	var in journeyJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("decode journey: %w", err)
	}
	j := &Journal{epoch: time.Now(), funcs: make(map[string]*funcJourney, len(in.Funcs)), capPF: DefaultJourneyCap, total: in.Total}
	for fn, evs := range in.Funcs {
		if len(evs) > j.capPF {
			j.capPF = len(evs)
		}
		j.funcs[fn] = &funcJourney{evs: evs}
		for _, ev := range evs {
			if ev.Seq > j.seq {
				j.seq = ev.Seq
			}
		}
	}
	return j, nil
}

// RenderTimeline renders fn's journey as an aligned ASCII timeline:
//
//	hot — 7 event(s)
//	      0.000ms  interp       tier=interp    first call
//	      0.412ms  warm         tier=baseline  calls=4
//	      ...
//
// Returns "" when fn has no retained events.
func (j *Journal) RenderTimeline(fn string) string {
	evs := j.Events(fn)
	if len(evs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d event(s)", fn, len(evs))
	if d := j.Dropped(fn); d > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", d)
	}
	b.WriteByte('\n')
	base := evs[0].TS
	for _, ev := range evs {
		tier := ev.Tier
		if tier == "" {
			tier = "-"
		}
		fmt.Fprintf(&b, "  %10.3fms  %-12s tier=%-9s %s\n",
			float64(ev.TS-base)/1e6, ev.Stage, tier, ev.Cause)
	}
	return b.String()
}

// RenderAll renders every journaled function's timeline, names sorted.
func (j *Journal) RenderAll() string {
	var b strings.Builder
	for _, fn := range j.Funcs() {
		b.WriteString(j.RenderTimeline(fn))
	}
	return b.String()
}

package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin(CatPass, "GVN")
	if sp.Active() {
		t.Fatal("nil tracer span reports active")
	}
	sp.End(I("x", 1))
	sp.EndErr(nil)
	tr.Instant(CatEngine, "bailout", S("fn", "f"))
}

func TestTracerRecordsSpansAndInstants(t *testing.T) {
	ring := NewRing(16)
	tr := NewTracer(ring)
	sp := tr.Begin(CatCompile, "mirbuild")
	time.Sleep(time.Millisecond)
	sp.End(I("instrs", 42))
	tr.Instant(CatEngine, "compile.trigger", S("fn", "hot"), I("calls", 1500))

	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindSpan || evs[0].Name != "mirbuild" || evs[0].Cat != CatCompile {
		t.Fatalf("span event wrong: %+v", evs[0])
	}
	if evs[0].Dur <= 0 {
		t.Fatalf("span duration not positive: %d", evs[0].Dur)
	}
	if evs[0].NArgs != 1 || evs[0].Args[0].Key != "instrs" || evs[0].Args[0].Val != 42 {
		t.Fatalf("span args wrong: %+v", evs[0])
	}
	if evs[1].Kind != KindInstant || evs[1].NArgs != 2 {
		t.Fatalf("instant event wrong: %+v", evs[1])
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	ring := NewRing(4)
	tr := NewTracer(ring)
	for i := 0; i < 10; i++ {
		tr.Instant(CatEngine, "e", I("i", int64(i)))
	}
	evs := ring.Events()
	if len(evs) != 4 || ring.Len() != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for k, ev := range evs {
		if want := int64(6 + k); ev.Args[0].Val != want {
			t.Fatalf("event %d holds i=%d, want %d (oldest must be dropped)", k, ev.Args[0].Val, want)
		}
	}
	if ring.Dropped() != 6 || ring.Total() != 10 {
		t.Fatalf("dropped=%d total=%d, want 6/10", ring.Dropped(), ring.Total())
	}
}

// TestChromeExportValidJSONMonotonic: the exported trace must be valid
// JSON in Chrome trace_event object form with non-decreasing timestamps.
func TestChromeExportValidJSONMonotonic(t *testing.T) {
	ring := NewRing(128)
	tr := NewTracer(ring)
	for i := 0; i < 19; i++ {
		sp := tr.Begin(CatPass, "P")
		sp.End(I("i", int64(i)))
		tr.Instant(CatFault, "fault", S("kind", "panic"))
	}
	// Nested pair: the outer span is recorded at End, i.e. AFTER the inner
	// one despite beginning first — the exporter must re-sort by begin time.
	outer := tr.Begin(CatCompile, "outer")
	inner := tr.Begin(CatPass, "inner")
	inner.End()
	outer.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, ring.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 40 {
		t.Fatalf("got %d trace events, want 40", len(doc.TraceEvents))
	}
	last := -1.0
	for i, ev := range doc.TraceEvents {
		if ev.Phase != "X" && ev.Phase != "i" {
			t.Fatalf("event %d has phase %q", i, ev.Phase)
		}
		if ev.TS < last {
			t.Fatalf("timestamps not monotonic: event %d at %v after %v", i, ev.TS, last)
		}
		last = ev.TS
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("negative time in event %d: %+v", i, ev)
		}
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.compiles")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("engine.compiles") != c {
		t.Fatal("same name resolved to a different counter")
	}
	g := r.Gauge("engine.functions")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	h := r.Histogram("compile.pass_ns", LatencyBucketsNs)
	for _, v := range []int64{500, 2_000, 2_000_000, 5_000_000_000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 5_002_002_500 {
		t.Fatalf("histogram snapshot wrong: %+v", s)
	}
	if s.Counts[0] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("bucket placement wrong: %+v", s.Counts)
	}
	if h.Mean() != 5_002_002_500.0/4 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter retained a value")
	}
	r.Gauge("y").Set(1)
	r.Histogram("z", SizeBuckets).Observe(1)
	if err := r.WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryEncoders(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("c.gauge").Set(-3)
	r.Histogram("d.hist", []int64{10, 100}).Observe(50)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(text.String()), "\n")
	if lines[0] != "a.count 1" || lines[1] != "b.count 2" {
		t.Fatalf("text encoding not name-sorted: %v", lines)
	}
	if !strings.Contains(text.String(), "d.hist_count 1") ||
		!strings.Contains(text.String(), "d.hist_bucket{le=100} 1") {
		t.Fatalf("histogram text encoding missing: %s", text.String())
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON encoding invalid: %v", err)
	}
	if decoded["b.count"] != float64(2) {
		t.Fatalf("JSON counter wrong: %v", decoded["b.count"])
	}
}

func TestRegistryConcurrentAggregation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", LatencyBucketsNs)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat", nil).Count(); got != 8000 {
		t.Fatalf("shared histogram count = %d, want 8000", got)
	}
}

func TestAuditLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLog(&buf)
	l.Record(AuditEvent{Func: "f", Verdict: VerdictNoJIT, Matches: []AuditMatch{
		{CVE: "CVE-2019-9813", VDCFunc: "poc", Pass: "RangeAnalysis", ChainID: 12, Side: "removed", Chain: "a→b"},
	}})
	l.Record(AuditEvent{Func: "g", Verdict: VerdictQuarantine, Stage: "passes", Reason: "injected fault"})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("sequence numbering wrong: %+v", evs)
	}
	if evs[0].TimeUnixNs == 0 {
		t.Fatal("event not timestamped")
	}
	back, err := ReadAudit(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Matches[0].CVE != "CVE-2019-9813" || back[0].Matches[0].ChainID != 12 {
		t.Fatalf("JSONL round trip lost data: %+v", back)
	}
	if back[1].Verdict != VerdictQuarantine || back[1].Reason != "injected fault" {
		t.Fatalf("supervisor event lost: %+v", back[1])
	}
	if err := l.WriteErr(); err != nil {
		t.Fatal(err)
	}
}

func TestNilAuditLog(t *testing.T) {
	var l *AuditLog
	l.Record(AuditEvent{Func: "f"})
	if l.Len() != 0 || l.Events() != nil || l.WriteErr() != nil {
		t.Fatal("nil audit log not inert")
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.compiles").Add(9)
	audit := NewAuditLog(nil)
	audit.Record(AuditEvent{Func: "f", Verdict: VerdictGo})
	srv, addr, err := StartDebugServer("127.0.0.1:0", reg, audit)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if !strings.Contains(get("/metrics"), "engine.compiles 9") {
		t.Fatal("/metrics missing counter")
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &decoded); err != nil {
		t.Fatal(err)
	}
	var evs []AuditEvent
	if err := json.Unmarshal([]byte(get("/audit.json")), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Verdict != VerdictGo {
		t.Fatalf("audit endpoint wrong: %+v", evs)
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("pprof index not served")
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace_event exporter: renders recorded events in the JSON object
// format of the Trace Event Format, so a compile run opens directly in
// chrome://tracing or https://ui.perfetto.dev. Spans become complete
// events (ph "X"), instants become thread-scoped instant events (ph "i").
// Timestamps are microseconds with fractional nanosecond precision, as
// the format specifies.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// toChrome converts one recorded event.
func toChrome(ev Event) chromeEvent {
	ce := chromeEvent{
		Name:  ev.Name,
		Cat:   ev.Cat,
		Phase: "X",
		TS:    float64(ev.TS) / 1e3,
		Dur:   float64(ev.Dur) / 1e3,
		PID:   1,
		TID:   1,
	}
	if ev.Kind == KindInstant {
		ce.Phase = "i"
		ce.Scope = "t"
		ce.Dur = 0
	}
	if ev.NArgs > 0 || ev.ID != 0 {
		ce.Args = make(map[string]any, ev.NArgs+1)
		for i := 0; i < ev.NArgs; i++ {
			a := ev.Args[i]
			if a.IsStr {
				ce.Args[a.Key] = a.Str
			} else {
				ce.Args[a.Key] = a.Val
			}
		}
		// Surface the span ID so histogram exemplars (which store span
		// IDs) can be located inside a dumped trace by text search.
		if ev.ID != 0 {
			ce.Args["span_id"] = ev.ID
		}
	}
	return ce
}

// WriteChromeTrace writes events to w in Chrome trace_event JSON form.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, len(events)), DisplayTimeUnit: "ns"}
	for i, ev := range events {
		out.TraceEvents[i] = toChrome(ev)
	}
	// The ring records spans at End, so an enclosing span lands after its
	// children despite beginning first. Emit in begin-time order (stable,
	// so equal timestamps keep recording order) to keep the file itself
	// monotonic for tools stricter than the trace viewers.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		return out.TraceEvents[i].TS < out.TraceEvents[j].TS
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveChromeTrace writes events to a file at path.
func SaveChromeTrace(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package bytecode

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"github.com/jitbull/jitbull/internal/value"
)

// Hash is a canonical digest of a function's executable content, the key
// space of the shared cross-engine compilation cache.
type Hash [32]byte

// CanonicalHash digests everything that determines how a function
// compiles and executes — arity, frame size, the instruction stream, and
// the constant pool — while excluding every identifier-bearing field (the
// function's name, global variable names). Because the compiler assigns
// global slots and function indices by declaration order, which variable
// renaming and minification preserve, two functions that differ only by a
// Terser-style rename/minify pass hash identically; any change to an
// opcode, operand, or constant changes the hash.
func (f *Function) CanonicalHash() Hash {
	h := sha256.New()
	var buf [8]byte
	wu32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	wu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu32(uint32(f.NumParams))
	wu32(uint32(f.NumLocals))
	wu32(uint32(len(f.Code)))
	for _, in := range f.Code {
		wu32(uint32(in.Op))
		wu32(uint32(in.A))
		wu32(uint32(in.B))
	}
	wu32(uint32(len(f.Consts)))
	for _, c := range f.Consts {
		h.Write([]byte{byte(c.Type())})
		switch c.Type() {
		case value.Number:
			wu64(math.Float64bits(c.AsNumber()))
		case value.String:
			s := c.ToString()
			wu32(uint32(len(s)))
			h.Write([]byte(s))
		case value.Boolean:
			if c.AsBool() {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

package bytecode_test

// Canonical-hash properties: rename/minify invariance (the cache key must
// survive the paper's §VI-B variant transformations) and collision sanity
// over the progen corpus (distinct executable content never collides).

import (
	"fmt"
	"testing"

	"github.com/jitbull/jitbull/internal/bytecode"
	"github.com/jitbull/jitbull/internal/compiler"
	"github.com/jitbull/jitbull/internal/parser"
	"github.com/jitbull/jitbull/internal/progen"
	"github.com/jitbull/jitbull/internal/variants"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := compiler.CompileProgram(astProg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// canonicalBody renders the hash's input domain (everything but names) so
// collision checks compare content, not identifiers.
func canonicalBody(f *bytecode.Function) string {
	s := fmt.Sprintf("p%d l%d|", f.NumParams, f.NumLocals)
	for _, in := range f.Code {
		s += fmt.Sprintf("%d,%d,%d;", in.Op, in.A, in.B)
	}
	s += "|"
	for _, c := range f.Consts {
		s += fmt.Sprintf("%d:%s;", c.Type(), c.ToString())
	}
	return s
}

func TestCanonicalHashRenameMinifyInvariant(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		src := progen.Generate(seed, progen.Options{})
		base := compileSrc(t, src)
		for _, tf := range []struct {
			name string
			fn   func(string) (string, error)
		}{{"rename", variants.Rename}, {"minify", variants.Minify}} {
			vsrc, err := tf.fn(src)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tf.name, err)
			}
			vprog := compileSrc(t, vsrc)
			if len(vprog.Funcs) != len(base.Funcs) {
				t.Fatalf("seed %d %s: %d funcs, want %d", seed, tf.name, len(vprog.Funcs), len(base.Funcs))
			}
			for i, f := range base.Funcs {
				if got, want := vprog.Funcs[i].CanonicalHash(), f.CanonicalHash(); got != want {
					t.Errorf("seed %d %s: fn #%d (%s) hash changed under the variant transform",
						seed, tf.name, i, f.Name)
				}
			}
		}
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	a := compileSrc(t, `function f(x) { return x + 1; }`)
	b := compileSrc(t, `function f(x) { return x + 2; }`)
	c := compileSrc(t, `function f(x) { return x - 1; }`)
	ha, hb, hc := a.Funcs[1].CanonicalHash(), b.Funcs[1].CanonicalHash(), c.Funcs[1].CanonicalHash()
	if ha == hb {
		t.Error("constant change did not change the hash")
	}
	if ha == hc {
		t.Error("opcode change did not change the hash")
	}
}

func TestCanonicalHashCollisionSanityOverCorpus(t *testing.T) {
	seen := map[bytecode.Hash]string{}
	funcs, collisions := 0, 0
	for seed := int64(1); seed <= 150; seed++ {
		src := progen.Generate(seed, progen.Options{Funcs: 3})
		prog := compileSrc(t, src)
		for _, f := range prog.Funcs {
			funcs++
			body := canonicalBody(f)
			h := f.CanonicalHash()
			if prev, ok := seen[h]; ok {
				if prev != body {
					collisions++
					t.Errorf("hash collision between distinct bodies:\n%s\nvs\n%s", prev, body)
				}
				continue
			}
			seen[h] = body
		}
	}
	if funcs < 300 {
		t.Fatalf("corpus too small for a collision check: %d functions", funcs)
	}
	t.Logf("hashed %d functions (%d distinct bodies), %d collisions", funcs, len(seen), collisions)
}

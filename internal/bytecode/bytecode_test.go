package bytecode

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/value"
)

func TestOpStrings(t *testing.T) {
	known := map[Op]string{
		OpConst:       "const",
		OpCall:        "call",
		OpGetElem:     "getelem",
		OpSetLength:   "setlength",
		OpJumpIfFalse: "jumpiffalse",
	}
	for op, want := range known {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if s := Op(250).String(); !strings.Contains(s, "250") {
		t.Errorf("unknown op string = %q", s)
	}
}

func TestBuiltinStrings(t *testing.T) {
	if BMathSqrt.String() != "Math.sqrt" || BArrayPush.String() != "push" {
		t.Error("builtin names wrong")
	}
	if s := Builtin(999).String(); !strings.Contains(s, "999") {
		t.Errorf("unknown builtin string = %q", s)
	}
}

func TestDisassemble(t *testing.T) {
	fn := &Function{
		Name:      "demo",
		NumParams: 1,
		NumLocals: 2,
		Consts:    []value.Value{value.Num(3.5), value.Str("hi")},
		Code: []Instr{
			{Op: OpConst, A: 0},
			{Op: OpLoadLocal, A: 0},
			{Op: OpAdd},
			{Op: OpCall, A: 2, B: 1},
			{Op: OpCallBuiltin, A: int32(BMathSqrt), B: 1},
			{Op: OpJumpIfFalse, A: 7},
			{Op: OpReturn},
			{Op: OpReturnUndef},
		},
	}
	text := fn.Disassemble()
	for _, want := range []string{"function demo", "const", "3.5", "fn=2 argc=1", "Math.sqrt argc=1", "jumpiffalse  7"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestProgramMain(t *testing.T) {
	p := &Program{Funcs: []*Function{{Name: "(main)"}, {Name: "f"}}}
	if p.Main().Name != "(main)" {
		t.Fatal("Main() must return Funcs[0]")
	}
}

// Package bytecode defines the stack bytecode that nanojs sources compile
// to. The interpreter tier executes this bytecode directly; the optimizing
// tier compiles the same functions (from the AST) into MIR.
package bytecode

import (
	"fmt"
	"strings"

	"github.com/jitbull/jitbull/internal/value"
)

// Op is a bytecode opcode.
type Op uint8

// Bytecode opcodes. Operands A and B are encoded in the instruction.
const (
	OpNop Op = iota

	// Stack manipulation.
	OpConst // push Consts[A]
	OpUndef
	OpNull
	OpTrue
	OpFalse
	OpPop
	OpDup
	OpDup2 // duplicate the top two slots (a b -> a b a b)

	// Variables.
	OpLoadLocal   // push locals[A]
	OpStoreLocal  // locals[A] = pop
	OpLoadGlobal  // push globals[A]
	OpStoreGlobal // globals[A] = pop

	// Arithmetic and bitwise (binary ops pop y then x, push x op y).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpUshr

	// Unary.
	OpNeg
	OpNot
	OpBitNot
	OpTypeof

	// Comparison.
	OpEq
	OpNe
	OpStrictEq
	OpStrictNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Control flow (A = absolute target pc).
	OpJump
	OpJumpIfFalse // pops condition
	OpJumpIfTrue  // pops condition

	// Calls.
	OpCall        // A = function index, B = argc; pops args, pushes result
	OpCallBuiltin // A = builtin id, B = argc; pops args, pushes result

	OpReturn // pops result
	OpReturnUndef

	// Arrays.
	OpNewArray  // pops length, pushes array
	OpArrayLit  // A = element count; pops elements, pushes array
	OpGetElem   // pops idx, arr; pushes arr[idx]
	OpSetElem   // pops v, idx, arr; pushes v
	OpGetLength // pops arr, pushes arr.length
	OpSetLength // pops v, arr; pushes v
)

var opNames = [...]string{
	OpNop:         "nop",
	OpConst:       "const",
	OpUndef:       "undef",
	OpNull:        "null",
	OpTrue:        "true",
	OpFalse:       "false",
	OpPop:         "pop",
	OpDup:         "dup",
	OpDup2:        "dup2",
	OpLoadLocal:   "loadlocal",
	OpStoreLocal:  "storelocal",
	OpLoadGlobal:  "loadglobal",
	OpStoreGlobal: "storeglobal",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpDiv:         "div",
	OpMod:         "mod",
	OpPow:         "pow",
	OpBitAnd:      "bitand",
	OpBitOr:       "bitor",
	OpBitXor:      "bitxor",
	OpShl:         "shl",
	OpShr:         "shr",
	OpUshr:        "ushr",
	OpNeg:         "neg",
	OpNot:         "not",
	OpBitNot:      "bitnot",
	OpTypeof:      "typeof",
	OpEq:          "eq",
	OpNe:          "ne",
	OpStrictEq:    "stricteq",
	OpStrictNe:    "strictne",
	OpLt:          "lt",
	OpLe:          "le",
	OpGt:          "gt",
	OpGe:          "ge",
	OpJump:        "jump",
	OpJumpIfFalse: "jumpiffalse",
	OpJumpIfTrue:  "jumpiftrue",
	OpCall:        "call",
	OpCallBuiltin: "callbuiltin",
	OpReturn:      "return",
	OpReturnUndef: "returnundef",
	OpNewArray:    "newarray",
	OpArrayLit:    "arraylit",
	OpGetElem:     "getelem",
	OpSetElem:     "setelem",
	OpGetLength:   "getlength",
	OpSetLength:   "setlength",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Builtin identifies a native helper callable with OpCallBuiltin.
type Builtin int32

// Builtins. Method-style builtins (push, pop, charCodeAt) take their
// receiver as the first argument.
const (
	BPrint Builtin = iota + 1
	BMathAbs
	BMathFloor
	BMathCeil
	BMathRound
	BMathSqrt
	BMathMin
	BMathMax
	BMathPow
	BMathSin
	BMathCos
	BMathTan
	BMathAtan
	BMathAtan2
	BMathExp
	BMathLog
	BMathRandom
	BArrayPush
	BArrayPop
	BCharCodeAt
	BFromCharCode
	// BAddrOf and BCodeBase model the information-leak step of a real
	// exploit chain: our arena layout is deterministic, so the "leak" is a
	// direct query. They exist so vulnerability demonstrator codes stay
	// compact; they grant no write capability by themselves.
	BAddrOf
	BCodeBase
)

var builtinNames = map[Builtin]string{
	BPrint:        "print",
	BMathAbs:      "Math.abs",
	BMathFloor:    "Math.floor",
	BMathCeil:     "Math.ceil",
	BMathRound:    "Math.round",
	BMathSqrt:     "Math.sqrt",
	BMathMin:      "Math.min",
	BMathMax:      "Math.max",
	BMathPow:      "Math.pow",
	BMathSin:      "Math.sin",
	BMathCos:      "Math.cos",
	BMathTan:      "Math.tan",
	BMathAtan:     "Math.atan",
	BMathAtan2:    "Math.atan2",
	BMathExp:      "Math.exp",
	BMathLog:      "Math.log",
	BMathRandom:   "Math.random",
	BArrayPush:    "push",
	BArrayPop:     "pop",
	BCharCodeAt:   "charCodeAt",
	BFromCharCode: "String.fromCharCode",
	BAddrOf:       "__addrof",
	BCodeBase:     "__codebase",
}

// String returns the source-level name of the builtin.
func (b Builtin) String() string {
	if s, ok := builtinNames[b]; ok {
		return s
	}
	return fmt.Sprintf("Builtin(%d)", int32(b))
}

// Instr is one bytecode instruction.
type Instr struct {
	Op Op
	A  int32
	B  int32
}

// OSRSite marks one loop header as an on-stack-replacement entry point.
// Ordinal numbers every loop statement of the function in source order
// (for/while/do-while all consume an ordinal, so the numbering matches the
// MIR builder's walk even though do-while loops — whose back edge is a
// conditional jump — never get a site). HeaderPC is the back-edge target:
// the pc the loop's closing OpJump points at.
type OSRSite struct {
	Ordinal  int
	HeaderPC int
}

// SpecSite marks one speculation-eligible call-assignment statement
// (`x = f(...)` / `var x = f(...)` with a direct call to a declared
// function). Ordinal numbers eligible sites in source order, mirroring the
// MIR builder's numbering; ResumePC is the pc immediately after the
// OpStoreLocal, where a deoptimized frame resumes interpretation; StoreSlot
// is the local the call result lands in.
type SpecSite struct {
	Ordinal   int
	ResumePC  int
	StoreSlot int
}

// Function is one compiled nanojs function.
type Function struct {
	Name      string
	Index     int // index in Program.Funcs
	NumParams int
	NumLocals int // params + declared locals
	Code      []Instr
	Consts    []value.Value

	// OSR/deoptimization metadata (additive: CanonicalHash deliberately
	// excludes it — the executable content is unchanged by its presence).
	OSRSites  []OSRSite
	SpecSites []SpecSite
}

// OSRSiteAt returns the OSR site whose header is pc, if any.
func (f *Function) OSRSiteAt(pc int) (OSRSite, bool) {
	for _, s := range f.OSRSites {
		if s.HeaderPC == pc {
			return s, true
		}
	}
	return OSRSite{}, false
}

// SpecSiteByOrdinal returns the speculation site with the given ordinal.
func (f *Function) SpecSiteByOrdinal(ord int) (SpecSite, bool) {
	for _, s := range f.SpecSites {
		if s.Ordinal == ord {
			return s, true
		}
	}
	return SpecSite{}, false
}

// Program is a compiled script: Funcs[0] is the synthetic top-level entry.
type Program struct {
	Funcs       []*Function
	GlobalNames []string
	FuncByName  map[string]int
	Source      string
}

// Main returns the synthetic top-level function.
func (p *Program) Main() *Function { return p.Funcs[0] }

// Disassemble renders a function's bytecode for diagnostics and tests.
func (f *Function) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s (params=%d locals=%d)\n", f.Name, f.NumParams, f.NumLocals)
	for pc, in := range f.Code {
		fmt.Fprintf(&sb, "%4d  %-12s", pc, in.Op)
		switch in.Op {
		case OpConst:
			fmt.Fprintf(&sb, " %d (%s)", in.A, f.Consts[in.A])
		case OpCall:
			fmt.Fprintf(&sb, " fn=%d argc=%d", in.A, in.B)
		case OpCallBuiltin:
			fmt.Fprintf(&sb, " %s argc=%d", Builtin(in.A), in.B)
		case OpLoadLocal, OpStoreLocal, OpLoadGlobal, OpStoreGlobal,
			OpJump, OpJumpIfFalse, OpJumpIfTrue, OpArrayLit:
			fmt.Fprintf(&sb, " %d", in.A)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Package variants generates exploit variants from demonstrator codes, the
// four approaches of the paper's §VI-B: variable renaming and minification
// (automated, Terser-style), plus manually rewritten variants (statement
// reordering with decoy functions, and sub-function splitting) stored
// alongside each demonstrator in internal/vulndb.
package variants

import (
	"fmt"

	"github.com/jitbull/jitbull/internal/ast"
	"github.com/jitbull/jitbull/internal/parser"
)

// reserved names never renamed: runtime builtins that resolve by name.
var reserved = map[string]bool{
	"Math": true, "String": true, "print": true,
	"__addrof": true, "__codebase": true, "Array": true,
}

// Rename rewrites every user identifier (functions, parameters, variables)
// to a short mangled name, preserving semantics — the paper's first
// variant-generation approach ("demonstrate that JITBULL is not tied to a
// syntactic analysis of the script").
func Rename(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("rename variant: %w", err)
	}
	return ast.Print(prog, ast.PrintConfig{Rename: renameMap(prog)}), nil
}

// Minify renames identifiers and strips all optional whitespace — the
// paper's second approach.
func Minify(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("minify variant: %w", err)
	}
	return ast.Print(prog, ast.PrintConfig{Minify: true, Rename: renameMap(prog)}), nil
}

// Reformat round-trips the source through the printer without renaming
// (useful to verify the printer itself).
func Reformat(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("reformat: %w", err)
	}
	return ast.Print(prog, ast.PrintConfig{}), nil
}

// renameMap assigns each user identifier a fresh short name in first-seen
// order.
func renameMap(prog *ast.Program) map[string]string {
	m := map[string]string{}
	next := 0
	add := func(name string) {
		if name == "" || reserved[name] {
			return
		}
		if _, done := m[name]; done {
			return
		}
		for {
			cand := shortName(next)
			next++
			if !reserved[cand] {
				m[name] = cand
				return
			}
		}
	}
	ast.Walk(prog, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			add(n.Name)
			for _, p := range n.Params {
				add(p)
			}
		case *ast.VarDecl:
			for _, name := range n.Names {
				add(name)
			}
		case *ast.Ident:
			add(n.Name)
		}
		return true
	})
	return m
}

// shortName yields a, b, ..., z, aa, ab, ... skipping nothing; callers
// filter reserved words.
func shortName(i int) string {
	name := ""
	for {
		name = string(rune('a'+i%26)) + name
		i = i/26 - 1
		if i < 0 {
			return "v_" + name // v_ prefix avoids keyword collisions (do, if, ...)
		}
	}
}

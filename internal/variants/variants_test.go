package variants

import (
	"strings"
	"testing"

	"github.com/jitbull/jitbull/internal/engine"
	"github.com/jitbull/jitbull/internal/progen"
)

const sample = `
function compute(width, height) {
  var area = 0;
  for (var row = 0; row < height; row++) {
    area += width * (row % 3 + 1);
  }
  return area;
}
var total = 0;
for (var k = 0; k < 50; k++) { total += compute(k % 7 + 1, 12); }
var result = total;
`

// runRaw executes src and returns everything it printed. Sources under
// test end with `print(result);`, whose output survives identifier
// renaming.
func runRaw(t *testing.T, src string) string {
	t.Helper()
	var out strings.Builder
	e, err := engine.New(src, engine.Config{IonThreshold: 10, Out: &out})
	if err != nil {
		t.Fatalf("setup: %v\n%s", err, src)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return out.String()
}

func TestRenamePreservesSemantics(t *testing.T) {
	renamed, err := Rename(sample + "\nprint(result);\n")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(renamed, "compute") || strings.Contains(renamed, "width") {
		t.Fatalf("identifiers not renamed:\n%s", renamed)
	}
	if runRaw(t, sample+"\nprint(result);\n") != runRaw(t, renamed) {
		t.Fatalf("rename changed semantics:\n%s", renamed)
	}
}

func TestMinifyPreservesSemantics(t *testing.T) {
	minified, err := Minify(sample + "\nprint(result);\n")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(minified, "\n") > 2 {
		t.Fatalf("not minified:\n%q", minified)
	}
	if runRaw(t, sample+"\nprint(result);\n") != runRaw(t, minified) {
		t.Fatalf("minify changed semantics:\n%s", minified)
	}
}

func TestReformatRoundTrip(t *testing.T) {
	formatted, err := Reformat(sample)
	if err != nil {
		t.Fatal(err)
	}
	// Reformatting the reformatted output must be a fixpoint.
	again, err := Reformat(formatted)
	if err != nil {
		t.Fatal(err)
	}
	if formatted != again {
		t.Fatalf("printer not idempotent:\n--1--\n%s\n--2--\n%s", formatted, again)
	}
}

func TestReservedNamesSurvive(t *testing.T) {
	src := `
var a = new Array(4);
a.push(Math.floor(2.5));
print(a.length, __addrof(a), __codebase());
var s = String.fromCharCode(65);
var result = a.pop() + s.length;
`
	renamed, err := Rename(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []string{"Math.floor", "print(", "__addrof", "__codebase", "String.fromCharCode", "new Array", ".push", ".pop", ".length"} {
		if !strings.Contains(renamed, keep) {
			t.Errorf("builtin %q was mangled:\n%s", keep, renamed)
		}
	}
}

// TestVariantsPreserveRandomPrograms cross-checks the printer and the
// mangler against the random program generator: for many seeds, the
// original, renamed, minified and reformatted programs must all agree.
func TestVariantsPreserveRandomPrograms(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(500); seed < int64(500+seeds); seed++ {
		src := progen.Generate(seed, progen.Options{Train: 30}) + "\nprint(result);\n"
		want := runRaw(t, src)
		for name, gen := range map[string]func(string) (string, error){
			"rename":   Rename,
			"minify":   Minify,
			"reformat": Reformat,
		} {
			out, err := gen(src)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if got := runRaw(t, out); want != got {
				t.Fatalf("seed %d %s: want %v got %v\n%s", seed, name, want, got, out)
			}
		}
	}
}

func TestShortNamesAreUniqueAndSafe(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		n := shortName(i)
		if seen[n] {
			t.Fatalf("duplicate short name %q at %d", n, i)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "v_") {
			t.Fatalf("short name %q lacks the keyword-safe prefix", n)
		}
	}
}
